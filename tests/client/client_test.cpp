// Client-side behaviours: endorsement collection, verification, the §3.1
// malicious client, and failure paths — exercised through small networks.
#include <gtest/gtest.h>

#include "core/fabric_network.h"

namespace fl {
namespace {

core::NetworkConfig tiny_config(std::uint64_t seed = 5) {
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 2;
    cfg.clients = 2;
    cfg.seed = seed;
    cfg.channel.priority_enabled = true;
    cfg.channel.block_size = 20;
    cfg.channel.block_timeout = Duration::millis(100);
    return cfg;
}

std::vector<client::TxRecord> run_and_collect(core::FabricNetwork& net) {
    std::vector<client::TxRecord> records;
    net.set_tx_sink([&records](const client::TxRecord& r) { records.push_back(r); });
    net.run();
    return records;
}

TEST(ClientTest, SingleTransactionRoundTrip) {
    core::FabricNetwork net(tiny_config());
    std::vector<client::TxRecord> records;
    net.set_tx_sink([&records](const client::TxRecord& r) { records.push_back(r); });
    net.clients()[0]->submit("record_keeper", "log", {"r1", "hello"});
    net.run();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(is_valid(records[0].code));
    EXPECT_EQ(records[0].client, ClientId{0});
    EXPECT_EQ(records[0].chaincode, "record_keeper");
    EXPECT_EQ(records[0].priority, 2u);  // record_keeper static priority
    EXPECT_GT(records[0].latency().as_seconds(), 0.0);
    EXPECT_EQ(net.clients()[0]->completed(), 1u);
    EXPECT_EQ(net.clients()[0]->pending(), 0u);
}

TEST(ClientTest, ChaincodeFailureReportedClientSide) {
    core::FabricNetwork net(tiny_config());
    net.clients()[0]->submit("asset_transfer", "transfer", {"no", "such", "1"});
    const auto records = run_and_collect(net);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].failed_before_ordering);
    EXPECT_EQ(net.clients()[0]->client_side_failures(), 1u);
}

TEST(ClientTest, UnknownChaincodeFailsCleanly) {
    core::FabricNetwork net(tiny_config());
    net.clients()[0]->submit("no_such_chaincode", "fn", {});
    const auto records = run_and_collect(net);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].failed_before_ordering);
}

TEST(ClientTest, TxIdsUniqueAcrossClients) {
    core::FabricNetwork net(tiny_config());
    std::vector<client::TxRecord> records;
    net.set_tx_sink([&records](const client::TxRecord& r) { records.push_back(r); });
    for (int i = 0; i < 10; ++i) {
        net.clients()[0]->submit("record_keeper", "log", {"a" + std::to_string(i), "x"});
        net.clients()[1]->submit("record_keeper", "log", {"b" + std::to_string(i), "x"});
    }
    net.run();
    ASSERT_EQ(records.size(), 20u);
    std::set<std::uint64_t> ids;
    for (const auto& r : records) {
        ids.insert(r.tx_id.value());
    }
    EXPECT_EQ(ids.size(), 20u);
}

TEST(ClientTest, MaliciousClientCannotPromote) {
    // §3.1: dropping unfavourable endorsements is harmless — every endorser
    // votes the same (static) priority, so dropping keeps the same value,
    // and forging a different one breaks the signatures.
    auto cfg = tiny_config();
    cfg.client_params.drop_unfavorable_endorsements = true;
    core::FabricNetwork net(cfg);
    std::vector<client::TxRecord> records;
    net.set_tx_sink([&records](const client::TxRecord& r) { records.push_back(r); });
    net.clients()[0]->submit("record_keeper", "log", {"r", "x"});
    net.run();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(is_valid(records[0].code));
    EXPECT_EQ(records[0].priority, 2u);  // still the lowest class
}

TEST(ClientTest, MaliciousDropWithDisagreeingEndorsersFailsPolicy) {
    // With noisy calculators the votes differ; a malicious client that keeps
    // only the best votes can end up below the endorsement policy threshold
    // and its transaction dies before ordering — the attack backfires.
    auto cfg = tiny_config();
    cfg.client_params.drop_unfavorable_endorsements = true;
    cfg.endorsement_k = 4;  // all four orgs required
    cfg.calculator_factory = [seed = std::make_shared<std::uint64_t>(100)] {
        return std::make_unique<peer::NoisyCalculator>(
            std::make_unique<peer::StaticChaincodeCalculator>(), 0.5, Rng((*seed)++));
    };
    core::FabricNetwork net(cfg);
    std::uint64_t failed = 0;
    std::uint64_t ok = 0;
    net.set_tx_sink([&](const client::TxRecord& r) {
        r.failed_before_ordering ? ++failed : ++ok;
    });
    for (int i = 0; i < 40; ++i) {
        net.clients()[0]->submit("supply_chain", "create_shipment",
                                 {"s" + std::to_string(i), "a", "b"});
    }
    net.run();
    EXPECT_EQ(failed + ok, 40u);
    EXPECT_GT(failed, 0u);  // the strict policy punishes the dropper
}

TEST(ClientTest, EndorsementsCarriedInEnvelope) {
    core::FabricNetwork net(tiny_config());
    net.set_tx_sink([](const client::TxRecord&) {});
    net.clients()[0]->submit("record_keeper", "log", {"r", "x"});
    net.run();
    const auto& chain = net.peers().front()->chain();
    ASSERT_EQ(chain.height(), 1u);
    ASSERT_EQ(chain.at(0).size(), 1u);
    const ledger::Envelope& tx = chain.at(0).transactions[0];
    EXPECT_EQ(tx.endorsements.size(), 4u);  // one per peer
    EXPECT_EQ(tx.consolidated_priority, 2u);
    // Each endorsement signed by a distinct org.
    std::set<OrgId> orgs;
    for (const auto& e : tx.endorsements) {
        orgs.insert(e.org);
    }
    EXPECT_EQ(orgs.size(), 4u);
}

TEST(ClientTest, SubmitBeforeConnectThrows) {
    sim::Simulator sim;
    sim::Network net(sim, Rng(1));
    crypto::KeyStore keys;
    keys.register_identity({"c", OrgId{0}});
    policy::ChannelConfig channel;
    client::Client c(sim, net, keys, channel, client::ClientParams{}, ClientId{0},
                     NodeId{1}, crypto::Identity{"c", OrgId{0}}, Rng(2));
    EXPECT_THROW(c.submit("cc", "fn", {}), std::logic_error);
}

}  // namespace
}  // namespace fl
