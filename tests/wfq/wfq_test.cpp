#include "wfq/wfq.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fl::wfq {
namespace {

TEST(WfqSchedulerTest, ConstructionValidation) {
    EXPECT_THROW(WfqScheduler<int>({}), std::invalid_argument);
    EXPECT_THROW(WfqScheduler<int>({1.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(WfqScheduler<int>({1.0, -1.0}), std::invalid_argument);
}

TEST(WfqSchedulerTest, EmptyDequeue) {
    WfqScheduler<int> s({1.0, 1.0});
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.dequeue().has_value());
}

TEST(WfqSchedulerTest, SingleFlowFifo) {
    WfqScheduler<int> s({1.0});
    for (int i = 0; i < 5; ++i) {
        s.enqueue(0, 1.0, i);
    }
    for (int i = 0; i < 5; ++i) {
        const auto out = s.dequeue();
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->item, i);
    }
}

TEST(WfqSchedulerTest, PerFlowFifoPreserved) {
    WfqScheduler<int> s({1.0, 1.0});
    for (int i = 0; i < 10; ++i) {
        s.enqueue(static_cast<std::size_t>(i % 2), 1.0, i);
    }
    int last_even = -2;
    int last_odd = -1;
    while (auto out = s.dequeue()) {
        if (out->flow == 0) {
            EXPECT_EQ(out->item, last_even + 2);
            last_even = out->item;
        } else {
            EXPECT_EQ(out->item, last_odd + 2);
            last_odd = out->item;
        }
    }
}

TEST(WfqSchedulerTest, EqualWeightsAlternate) {
    WfqScheduler<int> s({1.0, 1.0});
    for (int i = 0; i < 6; ++i) {
        s.enqueue(0, 1.0, 100 + i);
        s.enqueue(1, 1.0, 200 + i);
    }
    // With equal weights and equal costs, service alternates.
    int count0 = 0;
    int count1 = 0;
    for (int i = 0; i < 6; ++i) {
        const auto out = s.dequeue();
        ASSERT_TRUE(out);
        (out->flow == 0 ? count0 : count1)++;
    }
    EXPECT_EQ(count0 + count1, 6);
    EXPECT_LE(std::abs(count0 - count1), 1);
}

class WfqFairnessSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WfqFairnessSweep, BackloggedFlowsShareByWeight) {
    const auto [w0, w1] = GetParam();
    WfqScheduler<int> s({w0, w1});
    // Both flows continuously backlogged with unit-cost packets.
    const int kPackets = 3000;
    for (int i = 0; i < kPackets; ++i) {
        s.enqueue(0, 1.0, i);
        s.enqueue(1, 1.0, i);
    }
    // Serve a window smaller than either backlog.
    const int kServe = 2000;
    for (int i = 0; i < kServe; ++i) {
        ASSERT_TRUE(s.dequeue().has_value());
    }
    // SFQ bound: |W0/w0 - W1/w1| <= cmax/w0 + cmax/w1.
    const double normalized0 = s.served(0) / w0;
    const double normalized1 = s.served(1) / w1;
    EXPECT_LE(std::abs(normalized0 - normalized1), 1.0 / w0 + 1.0 / w1 + 1e-9)
        << "w0=" << w0 << " w1=" << w1;
    // And absolute shares match the weight ratio within 1%.
    const double expected0 = kServe * w0 / (w0 + w1);
    EXPECT_NEAR(s.served(0), expected0, kServe * 0.01);
}

INSTANTIATE_TEST_SUITE_P(WeightRatios, WfqFairnessSweep,
                         ::testing::Values(std::make_tuple(1.0, 1.0),
                                           std::make_tuple(2.0, 1.0),
                                           std::make_tuple(3.0, 5.0),
                                           std::make_tuple(10.0, 1.0),
                                           std::make_tuple(0.5, 0.25)));

TEST(WfqSchedulerTest, IdleFlowDoesNotAccumulateCredit) {
    WfqScheduler<int> s({1.0, 1.0});
    // Flow 0 served alone for a while.
    for (int i = 0; i < 100; ++i) {
        s.enqueue(0, 1.0, i);
    }
    for (int i = 0; i < 100; ++i) {
        (void)s.dequeue();
    }
    // Flow 1 wakes up; it must NOT monopolize to "catch up" on lost time.
    for (int i = 0; i < 100; ++i) {
        s.enqueue(0, 1.0, 1000 + i);
        s.enqueue(1, 1.0, 2000 + i);
    }
    double served0_before = s.served(0);
    double served1_before = s.served(1);
    for (int i = 0; i < 100; ++i) {
        (void)s.dequeue();
    }
    const double delta0 = s.served(0) - served0_before;
    const double delta1 = s.served(1) - served1_before;
    EXPECT_NEAR(delta0, delta1, 2.0);
}

TEST(WfqSchedulerTest, VariableCostsRespectWork) {
    // Flow 0 sends big packets, flow 1 small ones; *work* should split
    // evenly for equal weights, so flow 1 gets more packets through.
    WfqScheduler<int> s({1.0, 1.0});
    for (int i = 0; i < 400; ++i) {
        s.enqueue(0, 4.0, i);
        s.enqueue(1, 1.0, i);
    }
    int served1 = 0;
    double work = 0.0;
    while (work < 400.0) {
        const auto out = s.dequeue();
        ASSERT_TRUE(out);
        work += out->flow == 0 ? 4.0 : 1.0;
        if (out->flow == 1) ++served1;
    }
    // flow1 should have moved ~200 work = ~200 packets vs flow0 ~50 packets.
    EXPECT_NEAR(served1, 200, 10);
}

TEST(WfqSchedulerTest, BadFlowIndexThrows) {
    WfqScheduler<int> s({1.0});
    EXPECT_THROW(s.enqueue(1, 1.0, 0), std::out_of_range);
}

TEST(WfqSchedulerTest, VirtualTimeAdvancesWithService) {
    // virtual_time() is the WFQ clock the observability layer samples: it
    // starts at 0, never moves on enqueue, and advances to the start tag of
    // each served packet.
    WfqScheduler<int> s({2.0, 1.0});
    EXPECT_DOUBLE_EQ(s.virtual_time(), 0.0);
    for (int i = 0; i < 6; ++i) {
        s.enqueue(0, 1.0, i);
        s.enqueue(1, 1.0, i);
    }
    EXPECT_DOUBLE_EQ(s.virtual_time(), 0.0);
    double prev = 0.0;
    for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(s.dequeue());
        EXPECT_GE(s.virtual_time(), prev);
        prev = s.virtual_time();
    }
    // After draining a fully-backlogged period the clock reached the last
    // start tag of the slower (weight-1) flow: 5 packets at cost 1 each.
    EXPECT_DOUBLE_EQ(s.virtual_time(), 5.0);
}

// ------------------------------------------- shadow hooks (fairness audit)

TEST(WfqSchedulerTest, DequeueFlowServesSpecificFlowInFifoOrder) {
    WfqScheduler<int> s({1.0, 1.0});
    s.enqueue(0, 1.0, 10);
    s.enqueue(0, 1.0, 11);
    s.enqueue(1, 1.0, 20);

    // Pull flow 0 twice even though SFQ would have alternated.
    auto out = s.dequeue_flow(0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, 10);
    out = s.dequeue_flow(0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, 11);
    EXPECT_FALSE(s.dequeue_flow(0).has_value());  // drained: nullopt, no throw
    EXPECT_DOUBLE_EQ(s.served(0), 2.0);
    EXPECT_DOUBLE_EQ(s.served(1), 0.0);

    // The bypassed flow is still intact and served next.
    out = s.dequeue_flow(1);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, 20);
    EXPECT_TRUE(s.empty());
}

TEST(WfqSchedulerTest, DequeueFlowAdvancesVirtualClock) {
    WfqScheduler<int> s({1.0});
    for (int i = 0; i < 3; ++i) {
        s.enqueue(0, 1.0, i);
    }
    EXPECT_DOUBLE_EQ(s.virtual_time(), 0.0);
    // Start tags of a backlogged unit-cost flow are 0, 1, 2: the clock
    // tracks them exactly as dequeue() would.
    (void)s.dequeue_flow(0);
    EXPECT_DOUBLE_EQ(s.virtual_time(), 0.0);
    (void)s.dequeue_flow(0);
    EXPECT_DOUBLE_EQ(s.virtual_time(), 1.0);
    (void)s.dequeue_flow(0);
    EXPECT_DOUBLE_EQ(s.virtual_time(), 2.0);
}

TEST(WfqSchedulerTest, ServiceLagZeroForIdleOrTimelyFlows) {
    WfqScheduler<int> s({1.0, 1.0});
    EXPECT_DOUBLE_EQ(s.service_lag(0), 0.0);  // empty flow never lags
    s.enqueue(0, 1.0, 1);
    s.enqueue(1, 1.0, 2);
    // Nothing served yet: V = 0, both heads start at 0.
    EXPECT_DOUBLE_EQ(s.service_lag(0), 0.0);
    EXPECT_DOUBLE_EQ(s.service_lag(1), 0.0);
    EXPECT_THROW((void)s.service_lag(2), std::out_of_range);
}

TEST(WfqSchedulerTest, ServiceLagGrowsWhenFlowIsBypassed) {
    WfqScheduler<int> s({1.0, 1.0});
    for (int i = 0; i < 4; ++i) {
        s.enqueue(0, 1.0, i);
        s.enqueue(1, 1.0, 100 + i);
    }
    // An unfair scheduler serves only flow 0; ideal SFQ would have
    // alternated, so flow 1's head start tag falls behind V.
    (void)s.dequeue_flow(0);
    (void)s.dequeue_flow(0);
    (void)s.dequeue_flow(0);
    EXPECT_DOUBLE_EQ(s.service_lag(0), 0.0);  // the favored flow never lags
    EXPECT_DOUBLE_EQ(s.service_lag(1), 2.0);  // V = 2, head start tag 0
    // Serving the lagging flow consumes its oldest tags and shrinks the lag.
    (void)s.dequeue_flow(1);
    (void)s.dequeue_flow(1);
    EXPECT_DOUBLE_EQ(s.service_lag(1), 0.0);
}

// ---------------------------------------------------------------- WRR/DRR

TEST(WrrSchedulerTest, SharesFollowWeights) {
    WrrScheduler<int> s({3.0, 1.0});
    for (int i = 0; i < 800; ++i) {
        s.enqueue(0, 1.0, i);
        s.enqueue(1, 1.0, i);
    }
    for (int i = 0; i < 400; ++i) {
        ASSERT_TRUE(s.dequeue().has_value());
    }
    EXPECT_NEAR(s.served(0) / (s.served(1) + 1e-9), 3.0, 0.25);
}

TEST(WrrSchedulerTest, EmptyFlowSkipped) {
    WrrScheduler<int> s({1.0, 1.0});
    s.enqueue(0, 1.0, 42);
    const auto out = s.dequeue();
    ASSERT_TRUE(out);
    EXPECT_EQ(out->item, 42);
    EXPECT_FALSE(s.dequeue().has_value());
}

TEST(WrrSchedulerTest, ConstructionValidation) {
    EXPECT_THROW(WrrScheduler<int>({}), std::invalid_argument);
    EXPECT_THROW(WrrScheduler<int>({-1.0}), std::invalid_argument);
    EXPECT_THROW(WrrScheduler<int>({1.0}, 0.0), std::invalid_argument);
}

TEST(WrrSchedulerTest, ZeroWeightFlowServedOnlyWhenAlone) {
    WrrScheduler<int> s({1.0, 0.0});
    s.enqueue(1, 1.0, 7);
    const auto out = s.dequeue();  // degenerate path: only weight-0 backlogged
    ASSERT_TRUE(out);
    EXPECT_EQ(out->item, 7);
}

// ------------------------------------------------------------------- FIFO

TEST(FifoSchedulerTest, GlobalOrder) {
    FifoScheduler<int> s;
    s.enqueue(1, 1.0, 10);
    s.enqueue(0, 1.0, 20);
    s.enqueue(1, 1.0, 30);
    EXPECT_EQ(s.dequeue()->item, 10);
    EXPECT_EQ(s.dequeue()->item, 20);
    EXPECT_EQ(s.dequeue()->item, 30);
    EXPECT_TRUE(s.empty());
}

TEST(FifoSchedulerTest, NoIsolation) {
    // A flooding flow starves the other — the vanilla-Fabric failure mode.
    FifoScheduler<int> s;
    for (int i = 0; i < 100; ++i) {
        s.enqueue(0, 1.0, i);  // flood
    }
    s.enqueue(1, 1.0, 999);  // victim arrives last
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(s.dequeue()->flow, 0u);
    }
    EXPECT_EQ(s.dequeue()->item, 999);
}

}  // namespace
}  // namespace fl::wfq
