// The observability determinism contract: a sweep instrumented with
// --trace/--timeseries produces byte-identical capture output at any
// --threads value, and the capture never perturbs the sweep results.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace fl::harness {
namespace {

core::NetworkConfig tiny_config(bool priority_enabled) {
    core::NetworkConfig cfg;
    cfg.orgs = 2;
    cfg.osns = 1;
    cfg.clients = 2;
    cfg.channel.priority_enabled = priority_enabled;
    cfg.channel.block_size = 10;
    cfg.channel.block_timeout = Duration::millis(100);
    cfg.endorsement_k = 2;
    return cfg;
}

ExperimentPoint tiny_point(bool priority_enabled, double tps,
                           std::uint64_t seed_group) {
    ExperimentPoint point;
    point.label = fmt(tps, 0) + (priority_enabled ? "/priority" : "/baseline");
    point.params = {{"tps", tps},
                    {"priority_enabled", priority_enabled ? 1.0 : 0.0}};
    point.spec.config = tiny_config(priority_enabled);
    point.spec.make_workload = [tps] {
        Workload w;
        LoadSpec load;
        load.client_index = 0;
        load.tps = tps;
        load.total_txs = 60;
        load.generate = priority_class_mix({1, 2, 1});
        w.loads.push_back(std::move(load));
        return w;
    };
    point.spec.runs = 2;
    point.seed_group = seed_group;
    return point;
}

SweepSpec tiny_sweep(unsigned threads) {
    SweepSpec sweep;
    sweep.name = "tiny_fig5";
    sweep.base_seed = 4242;
    sweep.threads = threads;
    std::uint64_t group = 0;
    for (const double tps : {100.0, 200.0, 300.0}) {
        sweep.points.push_back(tiny_point(false, tps, group));
        sweep.points.push_back(tiny_point(true, tps, group));
        ++group;
    }
    return sweep;
}

SweepCli capture_cli() {
    SweepCli cli;
    cli.trace_path = "trace.json";       // names only select the format;
    cli.timeseries_path = "ts.jsonl";    // nothing is written in these tests
    cli.trace_point = 1;                 // the 100tps/priority point
    return cli;
}

/// Runs the instrumented tiny sweep and serializes everything the capture
/// produced: sweep JSON, Chrome trace, trace JSONL, time-series JSONL.
struct CaptureBytes {
    std::string sweep_json;
    std::string chrome;
    std::string jsonl;
    std::string timeseries;
};

CaptureBytes render(unsigned threads) {
    auto sweep = tiny_sweep(threads);
    TraceCapture capture;
    std::ostringstream status;
    arm_trace_capture(sweep, capture_cli(), capture, status);
    const auto results = run_sweep(sweep);

    CaptureBytes bytes;
    std::ostringstream os;
    write_sweep_json(os, sweep, results);
    bytes.sweep_json = os.str();
    std::ostringstream chrome;
    capture.sink.write_chrome_json(chrome);
    bytes.chrome = chrome.str();
    std::ostringstream jsonl;
    capture.sink.write_jsonl(jsonl);
    bytes.jsonl = jsonl.str();
    if (capture.recorder) {
        std::ostringstream ts;
        capture.recorder->write_jsonl(ts);
        bytes.timeseries = ts.str();
    }
    return bytes;
}

TEST(TraceDeterminismTest, CaptureBytesIdenticalAcrossThreadCounts) {
    const CaptureBytes serial = render(1);
    const CaptureBytes parallel = render(4);
    EXPECT_FALSE(serial.chrome.empty());
    EXPECT_FALSE(serial.jsonl.empty());
    EXPECT_FALSE(serial.timeseries.empty());
    EXPECT_EQ(serial.sweep_json, parallel.sweep_json);
    EXPECT_EQ(serial.chrome, parallel.chrome);
    EXPECT_EQ(serial.jsonl, parallel.jsonl);
    EXPECT_EQ(serial.timeseries, parallel.timeseries);
}

TEST(TraceDeterminismTest, InstrumentationDoesNotPerturbSweepResults) {
    // The same sweep, traced vs untraced, must produce identical JSON.
    auto plain_sweep = tiny_sweep(2);
    const auto plain = run_sweep(plain_sweep);
    std::ostringstream plain_os;
    write_sweep_json(plain_os, plain_sweep, plain);

    auto traced_sweep = tiny_sweep(2);
    TraceCapture capture;
    std::ostringstream status;
    arm_trace_capture(traced_sweep, capture_cli(), capture, status);
    const auto traced = run_sweep(traced_sweep);
    std::ostringstream traced_os;
    write_sweep_json(traced_os, traced_sweep, traced);

    EXPECT_FALSE(capture.sink.empty());
    EXPECT_EQ(plain_os.str(), traced_os.str());
}

TEST(TraceDeterminismTest, OutOfRangeTracePointFallsBackToZero) {
    auto sweep = tiny_sweep(1);
    SweepCli cli = capture_cli();
    cli.trace_point = 99;
    TraceCapture capture;
    std::ostringstream status;
    arm_trace_capture(sweep, cli, capture, status);
    EXPECT_NE(status.str().find("WARNING"), std::string::npos);
    ASSERT_NE(sweep.points[0].spec.instrument, nullptr);
    (void)run_sweep(sweep);
    EXPECT_FALSE(capture.sink.empty());
}

TEST(TraceDeterminismTest, NoFlagsMeansNoInstrumentation) {
    auto sweep = tiny_sweep(1);
    SweepCli cli;  // no --trace / --timeseries
    TraceCapture capture;
    std::ostringstream status;
    arm_trace_capture(sweep, cli, capture, status);
    for (const auto& point : sweep.points) {
        EXPECT_EQ(point.spec.instrument, nullptr);
    }
    EXPECT_TRUE(status.str().empty());
}

TEST(TraceDeterminismTest, EmitTraceFilesPicksFormatByExtension) {
    auto sweep = tiny_sweep(1);
    SweepCli cli = capture_cli();
    const std::string dir = ::testing::TempDir();
    cli.trace_path = dir + "fl_obs_trace.jsonl";
    cli.timeseries_path = dir + "fl_obs_ts.jsonl";
    TraceCapture capture;
    std::ostringstream status;
    arm_trace_capture(sweep, cli, capture, status);
    (void)run_sweep(sweep);
    EXPECT_TRUE(emit_trace_files(cli, capture, status));

    // A ".jsonl" trace is the line-per-event format, not a Chrome document.
    std::ifstream trace(cli.trace_path);
    ASSERT_TRUE(trace.good());
    std::string first_line;
    std::getline(trace, first_line);
    EXPECT_EQ(first_line.find("traceEvents"), std::string::npos);
    EXPECT_NE(first_line.find(R"("t_ns":)"), std::string::npos);

    std::ifstream ts(cli.timeseries_path);
    ASSERT_TRUE(ts.good());
    std::string ts_line;
    std::getline(ts, ts_line);
    EXPECT_NE(ts_line.find(R"({"t_s":)"), std::string::npos);

    std::remove(cli.trace_path.c_str());
    std::remove(cli.timeseries_path.c_str());
}

}  // namespace
}  // namespace fl::harness
