// TraceSink: span stitching, abort reasons, serialization shape, and the
// end-to-end wiring through a live FabricNetwork.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <unordered_map>

#include "core/fabric_network.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "obs/trace.h"

namespace fl::obs {
namespace {

TimePoint at_ms(std::int64_t ms) { return TimePoint::from_nanos(ms * 1'000'000); }

TraceEvent ev(EventType type, std::int64_t t_ms, std::uint64_t tx) {
    TraceEvent e;
    e.at = at_ms(t_ms);
    e.type = type;
    e.tx = tx;
    return e;
}

/// A happy-path lifecycle for tx 7: submit 1ms, broadcast 3ms, block 0 cut
/// at 10ms, commit 12ms, complete 13ms.
void emit_lifecycle(TraceSink& sink) {
    sink.emit(ev(EventType::kSubmit, 1, 7));
    sink.emit(ev(EventType::kBroadcast, 3, 7));
    TraceEvent cut;
    cut.at = at_ms(10);
    cut.type = EventType::kBlockCut;
    cut.actor_kind = ActorKind::kOsn;
    cut.block = 0;
    cut.value = 1;
    sink.emit(cut);
    TraceEvent commit = ev(EventType::kCommit, 12, 7);
    commit.actor_kind = ActorKind::kPeer;
    commit.block = 0;
    commit.priority = 1;
    sink.emit(commit);
    TraceEvent complete = ev(EventType::kComplete, 13, 7);
    complete.block = 0;
    complete.priority = 1;
    sink.emit(complete);
}

TEST(TraceSinkTest, StitchesLifecycleSpans) {
    TraceSink sink;
    emit_lifecycle(sink);

    std::ostringstream os;
    sink.write_chrome_json(os);
    const std::string json = os.str();

    // All four pipeline spans present, on the tx-lifecycle process.
    EXPECT_NE(json.find(R"("name":"endorse")"), std::string::npos);
    EXPECT_NE(json.find(R"("name":"order")"), std::string::npos);
    EXPECT_NE(json.find(R"("name":"validate")"), std::string::npos);
    EXPECT_NE(json.find(R"("name":"notify")"), std::string::npos);
    EXPECT_NE(json.find(R"("name":"tx lifecycle")"), std::string::npos);
    // endorse span: ts=1ms (1000 us), dur=2ms (2000 us).
    EXPECT_NE(json.find(R"("ph":"X","pid":1,"tid":7,"ts":1000,"dur":2000)"),
              std::string::npos);
    // No abort anywhere.
    EXPECT_EQ(json.find("abort"), std::string::npos);
}

TEST(TraceSinkTest, AbortSpanCarriesReasonCode) {
    TraceSink sink;
    sink.emit(ev(EventType::kSubmit, 1, 9));
    sink.emit(ev(EventType::kBroadcast, 3, 9));
    TraceEvent cut;
    cut.at = at_ms(10);
    cut.type = EventType::kBlockCut;
    cut.block = 4;
    sink.emit(cut);
    TraceEvent abort = ev(EventType::kAbort, 12, 9);
    abort.actor_kind = ActorKind::kPeer;
    abort.block = 4;
    abort.priority = 2;
    abort.code = TxValidationCode::kMvccReadConflict;
    sink.emit(abort);

    std::ostringstream os;
    sink.write_chrome_json(os);
    const std::string json = os.str();
    EXPECT_NE(json.find(R"x("name":"validate (abort)")x"), std::string::npos);
    EXPECT_NE(json.find(R"("code":"MVCC_READ_CONFLICT")"), std::string::npos);
}

TEST(TraceSinkTest, ClientFailureBecomesFailedEndorseSpan) {
    TraceSink sink;
    sink.emit(ev(EventType::kSubmit, 1, 3));
    TraceEvent fail = ev(EventType::kClientFail, 5, 3);
    fail.code = TxValidationCode::kEndorsementPolicyFailure;
    sink.emit(fail);

    std::ostringstream os;
    sink.write_chrome_json(os);
    const std::string json = os.str();
    EXPECT_NE(json.find(R"x("name":"endorse (failed)")x"), std::string::npos);
    EXPECT_NE(json.find("ENDORSEMENT_POLICY_FAILURE"), std::string::npos);
    // The failed tx gets no downstream spans.
    EXPECT_EQ(json.find(R"("name":"order")"), std::string::npos);
}

TEST(TraceSinkTest, JsonlOneEventPerLineInEmissionOrder) {
    TraceSink sink;
    emit_lifecycle(sink);

    std::ostringstream os;
    sink.write_jsonl(os);
    const std::string text = os.str();

    std::size_t lines = 0;
    for (const char c : text) lines += c == '\n';
    EXPECT_EQ(lines, sink.size());
    // First line is the submit, with the sentinel-valued fields omitted.
    EXPECT_EQ(text.substr(0, text.find('\n')),
              R"({"t_ns":1000000,"type":"submit","actor":"client","actor_id":0,"tx":7})");
    EXPECT_NE(text.find(R"("type":"block_cut")"), std::string::npos);
}

TEST(TraceSinkTest, EmptySinkStillWritesValidDocument) {
    TraceSink sink;
    std::ostringstream chrome;
    sink.write_chrome_json(chrome);
    EXPECT_NE(chrome.str().find("traceEvents"), std::string::npos);
    std::ostringstream jsonl;
    sink.write_jsonl(jsonl);
    EXPECT_TRUE(jsonl.str().empty());
}

// -- end-to-end wiring -------------------------------------------------------

core::NetworkConfig tiny_config() {
    core::NetworkConfig cfg;
    cfg.orgs = 2;
    cfg.osns = 1;
    cfg.clients = 2;
    cfg.channel.priority_enabled = true;
    cfg.channel.block_size = 10;
    cfg.channel.block_timeout = Duration::millis(100);
    cfg.endorsement_k = 2;
    return cfg;
}

harness::ExperimentSpec tiny_spec() {
    harness::ExperimentSpec spec;
    spec.config = tiny_config();
    spec.make_workload = [] {
        harness::Workload w;
        harness::LoadSpec load;
        load.client_index = 0;
        load.tps = 200;
        load.total_txs = 40;
        load.generate = harness::priority_class_mix({1, 2, 1});
        w.loads.push_back(std::move(load));
        return w;
    };
    spec.runs = 1;
    return spec;
}

TEST(TraceWiringTest, NetworkEmitsFullLifecycle) {
    TraceSink sink;
    harness::ExperimentSpec spec = tiny_spec();
    spec.instrument = [&sink](core::FabricNetwork& net, unsigned run) {
        ASSERT_EQ(run, 0u);
        net.set_trace_sink(&sink);
    };
    const harness::RunResult result = harness::run_once(spec, 777);
    ASSERT_GT(result.metrics.committed_valid(), 0u);

    std::unordered_map<EventType, std::uint64_t> counts;
    for (const TraceEvent& e : sink.events()) ++counts[e.type];

    EXPECT_EQ(counts[EventType::kSubmit], 40u);
    // Every tx endorses at both peers.
    EXPECT_EQ(counts[EventType::kEndorseReply], 80u);
    EXPECT_EQ(counts[EventType::kBroadcast], 40u);
    EXPECT_EQ(counts[EventType::kConsolidate], 40u);
    EXPECT_EQ(counts[EventType::kEnqueue], 40u);
    EXPECT_EQ(counts[EventType::kDequeue], 40u);
    EXPECT_GT(counts[EventType::kBlockCut], 0u);
    // Commit/abort is emitted at both committing peers.
    EXPECT_EQ(counts[EventType::kCommit] + counts[EventType::kAbort], 80u);
    EXPECT_EQ(counts[EventType::kComplete], 40u);

    // The Chrome export covers every transaction's endorse span.
    std::ostringstream os;
    sink.write_chrome_json(os);
    const std::string json = os.str();
    std::size_t endorse_spans = 0;
    for (std::size_t pos = json.find(R"("name":"endorse")");
         pos != std::string::npos;
         pos = json.find(R"("name":"endorse")", pos + 1)) {
        ++endorse_spans;
    }
    EXPECT_EQ(endorse_spans, 40u);
}

TEST(TraceWiringTest, DetachRestoresUntracedBehaviour) {
    TraceSink sink;
    harness::ExperimentSpec spec = tiny_spec();
    spec.instrument = [&sink](core::FabricNetwork& net, unsigned) {
        net.set_trace_sink(&sink);
        net.set_trace_sink(nullptr);  // detach again before anything runs
    };
    const harness::RunResult result = harness::run_once(spec, 777);
    EXPECT_GT(result.metrics.committed_valid(), 0u);
    EXPECT_TRUE(sink.empty());
}

TEST(TraceWiringTest, TracingDoesNotChangeResults) {
    const harness::RunResult plain = harness::run_once(tiny_spec(), 4242);

    TraceSink sink;
    harness::ExperimentSpec traced = tiny_spec();
    traced.instrument = [&sink](core::FabricNetwork& net, unsigned) {
        net.set_trace_sink(&sink);
    };
    const harness::RunResult with_trace = harness::run_once(traced, 4242);

    EXPECT_FALSE(sink.empty());
    EXPECT_EQ(plain.metrics.committed_valid(), with_trace.metrics.committed_valid());
    EXPECT_EQ(plain.blocks, with_trace.blocks);
    EXPECT_DOUBLE_EQ(plain.metrics.throughput_tps(),
                     with_trace.metrics.throughput_tps());
}

}  // namespace
}  // namespace fl::obs
