// MetricRegistry / TimeSeriesRecorder: registration order, simulated-time
// sampling cadence, termination, and JSONL shape.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/fabric_network.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "obs/metric_registry.h"
#include "sim/simulator.h"

namespace fl::obs {
namespace {

TEST(MetricRegistryTest, SamplesInRegistrationOrder) {
    MetricRegistry registry;
    double a = 1.0;
    double b = 2.0;
    registry.add_gauge("alpha", [&a] { return a; });
    registry.add_gauge("beta", [&b] { return b; });
    ASSERT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.names()[0], "alpha");
    EXPECT_EQ(registry.names()[1], "beta");

    a = 10.0;
    const std::vector<double> sample = registry.sample();
    ASSERT_EQ(sample.size(), 2u);
    EXPECT_DOUBLE_EQ(sample[0], 10.0);
    EXPECT_DOUBLE_EQ(sample[1], 2.0);
}

TEST(MetricRegistryTest, RejectsNullGauge) {
    MetricRegistry registry;
    EXPECT_THROW(registry.add_gauge("bad", nullptr), std::invalid_argument);
}

TEST(MetricRegistryTest, RejectsDuplicateGaugeName) {
    MetricRegistry registry;
    registry.add_gauge("depth", [] { return 1.0; });
    EXPECT_THROW(registry.add_gauge("depth", [] { return 2.0; }),
                 std::invalid_argument);
    // The first registration survives the rejected duplicate.
    ASSERT_EQ(registry.size(), 1u);
    EXPECT_DOUBLE_EQ(registry.sample()[0], 1.0);
}

TEST(MetricRegistryTest, EmptyRegistrySamplesToNothing) {
    MetricRegistry registry;
    EXPECT_EQ(registry.size(), 0u);
    EXPECT_TRUE(registry.sample().empty());
}

TEST(TimeSeriesRecorderTest, RejectsNonPositiveCadence) {
    sim::Simulator sim;
    EXPECT_THROW(TimeSeriesRecorder(sim, MetricRegistry{}, Duration::zero()),
                 std::invalid_argument);
}

TEST(TimeSeriesRecorderTest, SamplesOnCadenceAndTerminates) {
    sim::Simulator sim;
    // A workload spanning one simulated second: ten 100ms hops that bump a
    // counter the gauge reads.
    std::uint64_t hops = 0;
    std::function<void(int)> hop = [&](int remaining) {
        ++hops;
        if (remaining > 1) {
            sim.schedule_after(Duration::millis(100), [&, remaining] {
                hop(remaining - 1);
            });
        }
    };
    sim.schedule_after(Duration::millis(50), [&] { hop(10); });

    MetricRegistry registry;
    registry.add_gauge("hops", [&hops] { return static_cast<double>(hops); });
    TimeSeriesRecorder recorder(sim, std::move(registry), Duration::millis(100));
    recorder.start();
    sim.run();  // must drain: the recorder cannot keep the sim alive

    // Immediate sample at t=0 plus one per 100ms while work was pending.
    ASSERT_GE(recorder.samples().size(), 10u);
    EXPECT_EQ(recorder.samples().front().t_ns, 0);
    for (std::size_t i = 0; i < recorder.samples().size(); ++i) {
        EXPECT_EQ(recorder.samples()[i].t_ns,
                  static_cast<std::int64_t>(i) * 100'000'000);
    }
    // The gauge saw monotonically increasing progress.
    EXPECT_DOUBLE_EQ(recorder.samples().front().values[0], 0.0);
    EXPECT_DOUBLE_EQ(recorder.samples().back().values[0], 10.0);
}

TEST(TimeSeriesRecorderTest, StartOnDrainedSimulatorSamplesOnce) {
    sim::Simulator sim;
    MetricRegistry registry;
    registry.add_gauge("g", [] { return 5.0; });
    TimeSeriesRecorder recorder(sim, std::move(registry), Duration::millis(10));
    recorder.start();  // nothing pending: no timer armed
    sim.run();
    ASSERT_EQ(recorder.samples().size(), 1u);
    EXPECT_DOUBLE_EQ(recorder.samples()[0].values[0], 5.0);
}

TEST(TimeSeriesRecorderTest, JsonlHasOneFlatObjectPerSamplePlusSummary) {
    sim::Simulator sim;
    sim.schedule_after(Duration::millis(25), [] {});
    MetricRegistry registry;
    registry.add_gauge("depth", [] { return 3.5; });
    TimeSeriesRecorder recorder(sim, std::move(registry), Duration::millis(10));
    recorder.start();
    sim.run();

    std::ostringstream os;
    recorder.write_jsonl(os);
    const std::string text = os.str();
    std::size_t lines = 0;
    for (const char c : text) lines += c == '\n';
    // One flat object per sample plus the trailing summary footer.
    EXPECT_EQ(lines, recorder.samples().size() + 1);
    EXPECT_EQ(text.substr(0, text.find('\n')), R"({"t_s":0,"depth":3.5})");
    const std::size_t footer_at = text.rfind(R"({"summary":)");
    ASSERT_NE(footer_at, std::string::npos);
    EXPECT_EQ(
        text.substr(footer_at),
        R"({"summary":{"depth":{"min":3.5,"max":3.5,"mean":3.5,"last":3.5}}})"
        "\n");
}

TEST(TimeSeriesRecorderTest, SummaryTracksSeriesEnvelope) {
    sim::Simulator sim;
    double v = 1.0;
    sim.schedule_after(Duration::millis(10), [&v] { v = 9.0; });
    sim.schedule_after(Duration::millis(20), [&v] { v = 2.0; });
    MetricRegistry registry;
    registry.add_gauge("g", [&v] { return v; });
    TimeSeriesRecorder recorder(sim, std::move(registry), Duration::millis(10));
    recorder.start();
    sim.run();
    // Samples: t=0 -> 1, t=10ms -> 9 (same-time event order: fault event
    // first, tick later), t=20ms -> 2.
    std::ostringstream os;
    recorder.write_jsonl(os);
    const std::string text = os.str();
    EXPECT_NE(text.find(R"("g":{"min":1,"max":9,"mean":4,"last":2})"),
              std::string::npos)
        << text;
}

TEST(TimeSeriesRecorderTest, GaugelessRecorderStillFramesJsonl) {
    sim::Simulator sim;
    sim.schedule_after(Duration::millis(5), [] {});
    TimeSeriesRecorder recorder(sim, MetricRegistry{}, Duration::millis(10));
    recorder.start();
    sim.run();
    ASSERT_GE(recorder.samples().size(), 1u);
    EXPECT_TRUE(recorder.samples().front().values.empty());

    std::ostringstream os;
    recorder.write_jsonl(os);
    const std::string text = os.str();
    EXPECT_EQ(text.substr(0, text.find('\n')), R"({"t_s":0})");
    EXPECT_NE(text.find("{\"summary\":{}}\n"), std::string::npos);
}

TEST(TimeSeriesRecorderTest, NetworkGaugesTrackALiveRun) {
    harness::ExperimentSpec spec;
    spec.config.orgs = 2;
    spec.config.osns = 1;
    spec.config.clients = 2;
    spec.config.channel.priority_enabled = true;
    spec.config.channel.block_size = 10;
    spec.config.channel.block_timeout = Duration::millis(100);
    spec.config.endorsement_k = 2;
    spec.make_workload = [] {
        harness::Workload w;
        harness::LoadSpec load;
        load.client_index = 0;
        load.tps = 200;
        load.total_txs = 40;
        load.generate = harness::priority_class_mix({1, 2, 1});
        w.loads.push_back(std::move(load));
        return w;
    };
    spec.runs = 1;

    std::unique_ptr<TimeSeriesRecorder> recorder;
    spec.instrument = [&recorder](core::FabricNetwork& net, unsigned) {
        MetricRegistry registry;
        net.register_metrics(registry);
        recorder = std::make_unique<TimeSeriesRecorder>(
            net.simulator(), std::move(registry), Duration::millis(50));
        recorder->start();
    };
    const harness::RunResult result = harness::run_once(spec, 99);
    ASSERT_GT(result.metrics.committed_valid(), 0u);
    ASSERT_NE(recorder, nullptr);
    ASSERT_GT(recorder->samples().size(), 1u);

    const auto& names = recorder->registry().names();
    const auto index_of = [&names](const std::string& name) -> std::size_t {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (names[i] == name) return i;
        }
        return names.size();
    };
    const std::size_t blocks_idx = index_of("blocks_cut");
    const std::size_t valid_idx = index_of("txs_valid");
    ASSERT_LT(blocks_idx, names.size());
    ASSERT_LT(valid_idx, names.size());
    // Counters start at zero and end at the run totals.
    EXPECT_DOUBLE_EQ(recorder->samples().front().values[blocks_idx], 0.0);
    EXPECT_GT(recorder->samples().back().values[blocks_idx], 0.0);
    EXPECT_DOUBLE_EQ(
        recorder->samples().back().values[valid_idx],
        static_cast<double>(result.metrics.committed_valid() +
                            result.metrics.committed_invalid() -
                            result.txs_invalid));
}

// The audit detector gauges and the fault-injection gauges share one
// registry: with an accountant attached and an OSN crash scheduled, both
// families must register cleanly (no duplicate names) and track their own
// subsystem without perturbing each other's series.
TEST(TimeSeriesRecorderTest, AuditAndFaultGaugesCoexist) {
    harness::ExperimentSpec spec;
    spec.config.orgs = 2;
    spec.config.osns = 2;
    spec.config.clients = 2;
    spec.config.channel.priority_enabled = true;
    spec.config.channel.block_size = 10;
    spec.config.channel.block_timeout = Duration::millis(100);
    spec.config.endorsement_k = 2;
    spec.config.faults.schedule = {
        {Duration::millis(100), fault::FaultKind::kOsnCrash, 1, 1.0},
        {Duration::millis(300), fault::FaultKind::kOsnRestart, 1, 1.0},
    };
    spec.audit = obs::audit::AuditConfig{};
    spec.audit->window = Duration::millis(50);
    spec.make_workload = [] {
        harness::Workload w;
        harness::LoadSpec load;
        load.client_index = 0;
        load.tps = 200;
        load.total_txs = 60;
        load.generate = harness::priority_class_mix({1, 2, 1});
        w.loads.push_back(std::move(load));
        return w;
    };
    spec.runs = 1;

    std::unique_ptr<TimeSeriesRecorder> recorder;
    spec.instrument = [&recorder](core::FabricNetwork& net, unsigned) {
        MetricRegistry registry;
        net.register_metrics(registry);  // must not throw duplicate-name
        recorder = std::make_unique<TimeSeriesRecorder>(
            net.simulator(), std::move(registry), Duration::millis(50));
        recorder->start();
    };
    const harness::RunResult result = harness::run_once(spec, 77);
    ASSERT_GT(result.metrics.committed_valid(), 0u);
    ASSERT_TRUE(result.audit.has_value());
    ASSERT_NE(recorder, nullptr);

    const auto& names = recorder->registry().names();
    const auto index_of = [&names](const std::string& name) -> std::size_t {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (names[i] == name) return i;
        }
        return names.size();
    };
    const std::size_t crashes_idx = index_of("osn_crashes");
    const std::size_t windows_idx = index_of("audit_windows_closed");
    ASSERT_LT(crashes_idx, names.size());
    ASSERT_LT(windows_idx, names.size());

    const auto& first = recorder->samples().front().values;
    const auto& last = recorder->samples().back().values;
    // The fault gauge saw the scheduled crash...
    EXPECT_DOUBLE_EQ(first[crashes_idx], 0.0);
    EXPECT_DOUBLE_EQ(last[crashes_idx], 1.0);
    // ...and the audit gauge advanced with the simulated clock, landing on
    // the same count the finalized report carries (minus any windows closed
    // by finalize itself, which runs after the last sample).
    EXPECT_DOUBLE_EQ(first[windows_idx], 0.0);
    EXPECT_GT(last[windows_idx], 0.0);
    EXPECT_GE(static_cast<double>(result.audit->windows_closed),
              last[windows_idx]);
}

}  // namespace
}  // namespace fl::obs
