// Fairness-audit subsystem: Jain index math, the AuditAccountant's meters,
// window machinery, violation detectors and report serialization — plus the
// end-to-end wiring through FabricNetwork and the passivity guarantee
// (results with and without an accountant attached are byte-identical).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/json.h"
#include "core/fabric_network.h"
#include "core/metrics.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "obs/audit/audit.h"
#include "obs/audit/fairness.h"
#include "obs/trace.h"

namespace fl::obs::audit {
namespace {

// -- fairness math ----------------------------------------------------------

TEST(JainIndexTest, DegenerateInputsAreFair) {
    EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
    EXPECT_DOUBLE_EQ(jain_index({7.0}), 1.0);
    EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0, 0.0}), 1.0);
}

TEST(JainIndexTest, KnownValues) {
    EXPECT_DOUBLE_EQ(jain_index({1.0, 1.0, 1.0, 1.0}), 1.0);
    // One of two users hogs everything: J = n_served/n = 1/2.
    EXPECT_DOUBLE_EQ(jain_index({1.0, 0.0}), 0.5);
    // (4+2+2)^2 / (3 * (16+4+4)) = 64/72.
    EXPECT_DOUBLE_EQ(jain_index({4.0, 2.0, 2.0}), 64.0 / 72.0);
}

TEST(JainIndexTest, NegativesClampToZero) {
    EXPECT_DOUBLE_EQ(jain_index({5.0, -5.0}), jain_index({5.0, 0.0}));
}

TEST(NormalizeByEntitlementTest, DividesAndGuards) {
    const std::vector<double> norm =
        normalize_by_entitlement({6.0, 6.0, 1.0}, {2.0, 3.0, 0.0});
    ASSERT_EQ(norm.size(), 3u);
    EXPECT_DOUBLE_EQ(norm[0], 3.0);
    EXPECT_DOUBLE_EQ(norm[1], 2.0);
    EXPECT_DOUBLE_EQ(norm[2], 0.0);  // non-positive entitlement -> no claim
    EXPECT_THROW(normalize_by_entitlement({1.0}, {1.0, 1.0}),
                 std::invalid_argument);
}

// -- accountant construction -----------------------------------------------

AuditConfig base_config() {
    AuditConfig cfg;
    cfg.window = Duration::seconds(1);
    cfg.starvation_window = Duration::seconds(3);
    cfg.level_weights = {1.0, 1.0};
    return cfg;
}

TEST(AuditAccountantTest, RejectsIllFormedConfig) {
    AuditConfig bad = base_config();
    bad.window = Duration::zero();
    EXPECT_THROW(AuditAccountant{bad}, std::invalid_argument);

    bad = base_config();
    bad.starvation_window = Duration::zero();
    EXPECT_THROW(AuditAccountant{bad}, std::invalid_argument);

    bad = base_config();
    bad.alarm_consecutive = 0;
    EXPECT_THROW(AuditAccountant{bad}, std::invalid_argument);
}

// -- resource meters --------------------------------------------------------

TEST(AuditAccountantTest, ChargeAggregatesByClientAndChaincode) {
    AuditAccountant audit(base_config());
    const TimePoint t0 = TimePoint::origin();
    audit.charge(ResourceKind::kEndorseCpu, 1, "cc_a", 2.0, t0);
    audit.charge(ResourceKind::kEndorseCpu, 1, "cc_b", 3.0, t0);
    audit.charge(ResourceKind::kEndorseCpu, 2, "cc_a", 5.0, t0);
    audit.charge(ResourceKind::kEndorseCpu, 2, "cc_a", 0.0, t0);   // ignored
    audit.charge(ResourceKind::kEndorseCpu, 2, "cc_a", -1.0, t0);  // ignored
    audit.charge(ResourceKind::kStateIo, 1, "cc_a", 4.0, t0);
    audit.finalize(t0 + Duration::seconds(2));

    const AuditReport& r = audit.report();
    const ResourceReport& cpu =
        r.resources[static_cast<std::size_t>(ResourceKind::kEndorseCpu)];
    EXPECT_DOUBLE_EQ(cpu.total, 10.0);
    EXPECT_DOUBLE_EQ(cpu.by_client.at(1), 5.0);
    EXPECT_DOUBLE_EQ(cpu.by_client.at(2), 5.0);
    EXPECT_DOUBLE_EQ(cpu.by_chaincode.at("cc_a"), 7.0);
    EXPECT_DOUBLE_EQ(cpu.by_chaincode.at("cc_b"), 3.0);
    EXPECT_DOUBLE_EQ(cpu.jain_overall, 1.0);  // 5 vs 5 -> perfectly fair

    const ResourceReport& io =
        r.resources[static_cast<std::size_t>(ResourceKind::kStateIo)];
    EXPECT_DOUBLE_EQ(io.total, 4.0);
    EXPECT_DOUBLE_EQ(io.jain_overall, 1.0);  // single client -> trivially fair
}

TEST(AuditAccountantTest, WindowJainTracksWorstWindow) {
    AuditAccountant audit(base_config());
    const TimePoint t0 = TimePoint::origin();
    // Window 1: equal shares.  Window 2: 9-vs-1 skew.
    audit.charge(ResourceKind::kOrderingBandwidth, 1, "cc", 5.0, t0);
    audit.charge(ResourceKind::kOrderingBandwidth, 2, "cc", 5.0, t0);
    const TimePoint t1 = t0 + Duration::millis(1500);
    audit.charge(ResourceKind::kOrderingBandwidth, 1, "cc", 9.0, t1);
    audit.charge(ResourceKind::kOrderingBandwidth, 2, "cc", 1.0, t1);
    audit.finalize(t0 + Duration::seconds(3));

    const ResourceReport& bw = audit.report().resources[static_cast<std::size_t>(
        ResourceKind::kOrderingBandwidth)];
    EXPECT_EQ(bw.windows_evaluated, 2u);
    EXPECT_DOUBLE_EQ(bw.jain_window_min, jain_index({9.0, 1.0}));
    // Cumulative view is fairer than the worst window.
    EXPECT_DOUBLE_EQ(bw.jain_overall, jain_index({14.0, 6.0}));
}

// -- priority-inversion detector -------------------------------------------

TEST(AuditAccountantTest, FifoInversionWithinLevelDetected) {
    AuditAccountant audit(base_config());
    TraceSink sink;
    audit.set_trace(&sink);
    const TimePoint t0 = TimePoint::origin();
    audit.on_enqueue(0, 101, t0);
    audit.on_enqueue(0, 102, t0);
    audit.on_enqueue(0, 103, t0);
    // Block 1 commits 102 before 101: one FIFO violation; 103 after is fine.
    audit.on_commit_order(1, 102, 0, t0);
    audit.on_commit_order(1, 101, 0, t0);
    audit.on_commit_order(1, 103, 0, t0);
    audit.finalize(t0 + Duration::seconds(1));

    const AuditReport& r = audit.report();
    EXPECT_EQ(r.fifo_violations, 1u);
    EXPECT_EQ(r.block_order_violations, 0u);
    EXPECT_EQ(r.priority_inversions, 1u);

    std::size_t inversion_events = 0;
    for (const TraceEvent& ev : sink.events()) {
        inversion_events += ev.type == EventType::kPriorityInversion;
    }
    EXPECT_EQ(inversion_events, 1u);
}

TEST(AuditAccountantTest, BlockLevelMonotonicityEnforced) {
    AuditAccountant audit(base_config());
    const TimePoint t0 = TimePoint::origin();
    audit.on_enqueue(0, 1, t0);
    audit.on_enqueue(1, 2, t0);
    audit.on_enqueue(0, 3, t0);
    // Within block 7: level 1 then level 0 — a canonical-layout violation.
    audit.on_commit_order(7, 2, 1, t0);
    audit.on_commit_order(7, 1, 0, t0);
    // New block resets the tracker: level 0 after level 1 across blocks is fine.
    audit.on_commit_order(8, 3, 0, t0);
    audit.finalize(t0 + Duration::seconds(1));

    EXPECT_EQ(audit.report().block_order_violations, 1u);
    EXPECT_EQ(audit.report().fifo_violations, 0u);
}

TEST(AuditAccountantTest, ReplayAndResubmissionDedupByTxId) {
    AuditAccountant audit(base_config());
    const TimePoint t0 = TimePoint::origin();
    audit.on_enqueue(0, 1, t0);
    audit.on_enqueue(0, 2, t0);
    audit.on_enqueue(0, 1, t0);  // resubmission: keeps original FIFO seat
    audit.on_dequeue(0, 1, t0);
    audit.on_dequeue(0, 1, t0);  // crash replay re-consumes the log
    audit.on_dequeue(0, 2, t0);
    audit.on_commit_order(1, 1, 0, t0);
    audit.on_commit_order(1, 2, 0, t0);
    // A second peer delivers the identical block: indistinguishable replay.
    audit.on_commit_order(1, 1, 0, t0);
    audit.on_commit_order(1, 2, 0, t0);
    audit.finalize(t0 + Duration::seconds(1));

    const AuditReport& r = audit.report();
    EXPECT_EQ(r.priority_inversions, 0u);
    ASSERT_GE(r.levels.size(), 1u);
    EXPECT_EQ(r.levels[0].ordered, 2u);  // replayed dequeues counted once
}

TEST(AuditAccountantTest, UnassignedPriorityMapsToLevelZero) {
    AuditConfig cfg = base_config();
    cfg.level_weights = {1.0};
    AuditAccountant audit(cfg);
    const TimePoint t0 = TimePoint::origin();
    // The FIFO pipeline reports the sentinel; it must account as level 0,
    // not index (and allocate) 2^32 levels.
    audit.on_enqueue(kUnassignedPriority, 1, t0);
    audit.on_dequeue(kUnassignedPriority, 1, t0);
    audit.on_commit_order(1, 1, kUnassignedPriority, t0);
    audit.finalize(t0 + Duration::seconds(1));

    const AuditReport& r = audit.report();
    ASSERT_EQ(r.levels.size(), 1u);
    EXPECT_EQ(r.levels[0].ordered, 1u);
    EXPECT_EQ(r.priority_inversions, 0u);
}

// -- starvation watchdog ----------------------------------------------------

TEST(AuditAccountantTest, StarvationFiresOncePerEpisode) {
    AuditAccountant audit(base_config());  // starvation window 3 s
    TraceSink sink;
    audit.set_trace(&sink);
    const TimePoint t0 = TimePoint::origin();
    audit.on_submit(7, t0);
    // 10 s with pending work and no service: exactly one incident (the
    // client is marked starved; re-marking every window would double-count
    // one continuous episode).
    audit.finalize(t0 + Duration::seconds(10));

    const AuditReport& r = audit.report();
    EXPECT_EQ(r.starvation_incidents, 1u);
    ASSERT_EQ(r.starved_clients.count(7), 1u);
    EXPECT_EQ(r.starved_clients.at(7), 1u);
    std::size_t starvation_events = 0;
    for (const TraceEvent& ev : sink.events()) {
        starvation_events += ev.type == EventType::kStarvation;
    }
    EXPECT_EQ(starvation_events, 1u);
}

TEST(AuditAccountantTest, ServiceClearsStarvationAndReArms) {
    AuditAccountant audit(base_config());
    const TimePoint t0 = TimePoint::origin();
    audit.on_submit(7, t0);
    audit.on_submit(7, t0);
    // Starve past the 3 s window (first incident)...
    const TimePoint t1 = t0 + Duration::seconds(5);
    audit.on_client_terminal(7, t1);  // ...then one tx completes: cleared.
    // Still one tx pending; a fresh 3 s gap is a *second* episode.
    audit.finalize(t1 + Duration::seconds(5));

    EXPECT_EQ(audit.report().starvation_incidents, 2u);
    EXPECT_EQ(audit.report().starved_clients.at(7), 2u);
}

TEST(AuditAccountantTest, ServedClientNeverStarves) {
    AuditAccountant audit(base_config());
    const TimePoint t0 = TimePoint::origin();
    // Submit+complete every second for 10 s: gaps never reach 3 s.
    for (int i = 0; i < 10; ++i) {
        const TimePoint t = t0 + Duration::seconds(i);
        audit.on_submit(3, t);
        audit.on_client_terminal(3, t + Duration::millis(200));
    }
    audit.finalize(t0 + Duration::seconds(11));
    EXPECT_EQ(audit.report().starvation_incidents, 0u);
}

// -- unfairness alarm -------------------------------------------------------

/// One audit window in which client 1 is served and client 2 is not, both
/// clearly backlogged: Jain({served_1, 0}) = 0.5 < threshold.
void skewed_window(AuditAccountant& audit, TimePoint start) {
    for (int i = 0; i < 20; ++i) {
        audit.on_submit(1, start);
        audit.on_submit(2, start);
    }
    for (int i = 0; i < 10; ++i) {
        audit.on_client_terminal(1, start + Duration::millis(10));
    }
}

/// A window where both clients' arrivals are fully served (not backlogged).
void fair_window(AuditAccountant& audit, TimePoint start) {
    audit.on_submit(1, start);
    audit.on_submit(2, start);
    audit.on_client_terminal(1, start + Duration::millis(10));
    audit.on_client_terminal(2, start + Duration::millis(10));
}

TEST(AuditAccountantTest, AlarmTripsAfterKConsecutiveBreaches) {
    AuditConfig cfg = base_config();
    cfg.alarm_consecutive = 2;
    AuditAccountant audit(cfg);
    TraceSink sink;
    audit.set_trace(&sink);
    const TimePoint t0 = TimePoint::origin();

    skewed_window(audit, t0);                         // window 1: breach
    skewed_window(audit, t0 + Duration::seconds(1));  // window 2: breach -> trip
    skewed_window(audit, t0 + Duration::seconds(2));  // window 3: sustained, no re-trip
    audit.finalize(t0 + Duration::seconds(4));

    const AuditReport& r = audit.report();
    EXPECT_EQ(r.alarm_trips, 1u);
    EXPECT_EQ(r.alarm_windows_breached, 3u);
    EXPECT_EQ(r.alarm_windows_evaluated, 3u);
    EXPECT_DOUBLE_EQ(r.alarm_jain_min, 0.5);
    std::size_t alarm_events = 0;
    for (const TraceEvent& ev : sink.events()) {
        alarm_events += ev.type == EventType::kUnfairnessAlarm;
    }
    EXPECT_EQ(alarm_events, 1u);
}

TEST(AuditAccountantTest, RecoveryResetsStreakAndReArmsAlarm) {
    AuditConfig cfg = base_config();
    cfg.alarm_consecutive = 2;
    AuditAccountant audit(cfg);
    const TimePoint t0 = TimePoint::origin();

    skewed_window(audit, t0);                         // breach (streak 1)
    fair_window(audit, t0 + Duration::seconds(1));    // streak resets
    skewed_window(audit, t0 + Duration::seconds(2));  // breach (streak 1)
    skewed_window(audit, t0 + Duration::seconds(3));  // breach -> trip
    audit.finalize(t0 + Duration::seconds(5));

    EXPECT_EQ(audit.report().alarm_trips, 1u);
    EXPECT_EQ(audit.report().alarm_windows_breached, 3u);
}

TEST(AuditAccountantTest, SingleBackloggedClientIsNotUnfairness) {
    AuditConfig cfg = base_config();
    cfg.alarm_consecutive = 1;
    AuditAccountant audit(cfg);
    const TimePoint t0 = TimePoint::origin();
    // Only client 1 is backlogged (a self-inflicted flood has no victim);
    // client 2's single arrival is within slack.
    for (int w = 0; w < 3; ++w) {
        const TimePoint t = t0 + Duration::seconds(w);
        for (int i = 0; i < 20; ++i) audit.on_submit(1, t);
        audit.on_submit(2, t);
    }
    audit.finalize(t0 + Duration::seconds(4));
    EXPECT_EQ(audit.report().alarm_windows_evaluated, 0u);
    EXPECT_EQ(audit.report().alarm_trips, 0u);
}

// -- shadow scheduler -------------------------------------------------------

TEST(AuditAccountantTest, ShadowLagMeasuresUnservedBackloggedLevel) {
    AuditAccountant audit(base_config());  // weights {1, 1}
    const TimePoint t0 = TimePoint::origin();
    for (std::uint64_t i = 0; i < 3; ++i) {
        audit.on_enqueue(0, 100 + i, t0);
        audit.on_enqueue(1, 200 + i, t0);
    }
    // The "generator" serves only level 0: ideal SFQ would have alternated,
    // so level 1 accumulates service lag while level 0 never lags.
    for (std::uint64_t i = 0; i < 3; ++i) {
        audit.on_dequeue(0, 100 + i, t0 + Duration::millis(10));
    }
    audit.finalize(t0 + Duration::seconds(1));

    const AuditReport& r = audit.report();
    ASSERT_EQ(r.levels.size(), 2u);
    EXPECT_DOUBLE_EQ(r.levels[0].max_service_lag, 0.0);
    EXPECT_GT(r.levels[1].max_service_lag, 0.0);
    EXPECT_GT(r.shadow_virtual_time, 0.0);
    // Ordering share: level 0 consumed everything the generator served.
    EXPECT_DOUBLE_EQ(r.levels[0].share, 1.0);
    EXPECT_DOUBLE_EQ(r.levels[0].entitled, 0.5);
    EXPECT_DOUBLE_EQ(r.levels[0].deviation, 0.5);
}

TEST(AuditAccountantTest, BestEffortLevelExcludedFromShadow) {
    AuditConfig cfg = base_config();
    cfg.level_weights = {1.0, 0.0};  // "1:0" policy: level 1 is best-effort
    AuditAccountant audit(cfg);
    const TimePoint t0 = TimePoint::origin();
    audit.on_enqueue(1, 1, t0);
    audit.on_enqueue(0, 2, t0);
    audit.on_dequeue(0, 2, t0);
    audit.finalize(t0 + Duration::seconds(1));

    const AuditReport& r = audit.report();
    ASSERT_EQ(r.levels.size(), 2u);
    // No ideal-SFQ notion of a zero-weight flow: lag pinned at 0.
    EXPECT_DOUBLE_EQ(r.levels[1].max_service_lag, 0.0);
    EXPECT_DOUBLE_EQ(r.levels[1].entitled, 0.0);
}

// -- finalize + serialization ----------------------------------------------

TEST(AuditAccountantTest, FinalizeIsIdempotentAndFreezesState) {
    AuditAccountant audit(base_config());
    const TimePoint t0 = TimePoint::origin();
    audit.charge(ResourceKind::kEndorseCpu, 1, "cc", 1.0, t0);
    audit.finalize(t0 + Duration::seconds(2));
    const std::uint64_t windows = audit.report().windows_closed;

    // Late observations and repeated finalize must change nothing.
    audit.charge(ResourceKind::kEndorseCpu, 1, "cc", 99.0, t0 + Duration::seconds(5));
    audit.on_submit(1, t0 + Duration::seconds(5));
    audit.finalize(t0 + Duration::seconds(10));
    EXPECT_EQ(audit.report().windows_closed, windows);
    EXPECT_DOUBLE_EQ(
        audit.report().resources[0].total, 1.0);
}

TEST(AuditAccountantTest, JsonBytesAreAPureFunctionOfTheEventStream) {
    const auto feed = [](AuditAccountant& audit) {
        const TimePoint t0 = TimePoint::origin();
        audit.charge(ResourceKind::kEndorseCpu, 2, "cc_b", 1.5, t0);
        audit.charge(ResourceKind::kOrderingBandwidth, 1, "cc_a", 512.0, t0);
        audit.on_submit(1, t0);
        audit.on_enqueue(0, 42, t0);
        audit.on_dequeue(0, 42, t0 + Duration::millis(100));
        audit.on_commit_order(1, 42, 0, t0 + Duration::millis(200));
        audit.on_client_terminal(1, t0 + Duration::millis(300));
        audit.finalize(t0 + Duration::seconds(2));
    };
    const auto render = [&feed] {
        AuditAccountant audit(base_config());
        feed(audit);
        std::ostringstream os;
        JsonWriter json(os);
        write_audit_json(json, audit.report());
        return os.str();
    };
    const std::string a = render();
    const std::string b = render();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    // Spot-check the schema: resource keys and detector counters present.
    EXPECT_NE(a.find("\"endorse_cpu\""), std::string::npos);
    EXPECT_NE(a.find("\"state_io\""), std::string::npos);
    EXPECT_NE(a.find("\"priority_inversions\""), std::string::npos);
    EXPECT_NE(a.find("\"alarm_trips\""), std::string::npos);
}

// -- end-to-end through FabricNetwork --------------------------------------

harness::ExperimentSpec small_spec(bool with_audit) {
    harness::ExperimentSpec spec;
    spec.config.orgs = 2;
    spec.config.osns = 1;
    spec.config.clients = 2;
    spec.config.channel.priority_enabled = true;
    spec.config.channel.block_size = 10;
    spec.config.channel.block_timeout = Duration::millis(100);
    spec.config.endorsement_k = 2;
    spec.make_workload = [] {
        harness::Workload w;
        for (std::size_t c = 0; c < 2; ++c) {
            harness::LoadSpec load;
            load.client_index = c;
            load.tps = 150;
            load.total_txs = 30;
            load.generate = harness::priority_class_mix({1, 2, 1});
            w.loads.push_back(std::move(load));
        }
        return w;
    };
    spec.runs = 1;
    if (with_audit) {
        spec.audit = AuditConfig{};
        spec.audit->window = Duration::millis(200);
    }
    return spec;
}

TEST(AuditEndToEndTest, MetersEveryPipelineStage) {
    const harness::RunResult result = harness::run_once(small_spec(true), 1234);
    ASSERT_TRUE(result.audit.has_value());
    const AuditReport& r = *result.audit;
    ASSERT_GT(result.metrics.committed_valid(), 0u);

    for (std::size_t k = 0; k < kResourceCount; ++k) {
        EXPECT_GT(r.resources[k].total, 0.0)
            << "resource " << to_string(static_cast<ResourceKind>(k));
        // Both clients touched every meter.
        EXPECT_EQ(r.resources[k].by_client.size(), 2u);
    }
    EXPECT_GT(r.windows_closed, 0u);
    // Symmetric clients, weighted-fair scheduler: no detector may fire.
    EXPECT_EQ(r.priority_inversions, 0u);
    EXPECT_EQ(r.starvation_incidents, 0u);
    EXPECT_EQ(r.alarm_trips, 0u);
    // Every ordered tx is accounted at some level.
    std::uint64_t ordered = 0;
    for (const LevelReport& level : r.levels) ordered += level.ordered;
    EXPECT_EQ(ordered, result.metrics.committed_valid() +
                           result.metrics.committed_invalid());
}

TEST(AuditEndToEndTest, AccountantIsPassive) {
    // The same (spec, seed) with and without an accountant must produce
    // byte-identical metrics JSON: attaching the audit schedules no events
    // and draws no randomness.
    const harness::RunResult with = harness::run_once(small_spec(true), 77);
    const harness::RunResult without = harness::run_once(small_spec(false), 77);
    EXPECT_FALSE(without.audit.has_value());

    std::ostringstream os_with;
    std::ostringstream os_without;
    core::write_metrics_json(os_with, with.metrics);
    core::write_metrics_json(os_without, without.metrics);
    EXPECT_EQ(os_with.str(), os_without.str());
}

TEST(AuditEndToEndTest, AuditBlockEmbedsInMetricsJson) {
    const harness::RunResult result = harness::run_once(small_spec(true), 5);
    ASSERT_TRUE(result.audit.has_value());

    std::ostringstream plain;
    core::write_metrics_json(plain, result.metrics);
    std::ostringstream with_audit;
    core::write_metrics_json(with_audit, result.metrics, &*result.audit);

    EXPECT_EQ(plain.str().find("\"audit\""), std::string::npos);
    EXPECT_NE(with_audit.str().find("\"audit\""), std::string::npos);
    // The nullptr overload is the 2-arg overload, byte for byte.
    std::ostringstream null_audit;
    core::write_metrics_json(null_audit, result.metrics, nullptr);
    EXPECT_EQ(plain.str(), null_audit.str());
}

TEST(AuditEndToEndTest, ReportIsDeterministicAcrossRuns) {
    const auto render = [] {
        const harness::RunResult result = harness::run_once(small_spec(true), 99);
        std::ostringstream os;
        JsonWriter json(os);
        write_audit_json(json, *result.audit);
        return os.str();
    };
    EXPECT_EQ(render(), render());
}

}  // namespace
}  // namespace fl::obs::audit
