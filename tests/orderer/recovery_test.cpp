// Orderer crash-recovery: an OSN that (re)starts from nothing rebuilds the
// exact chain purely from the queue logs — no timers needed, because every
// cut decision (quota fills and TTC markers) is materialized in the total
// order.  This is the operational payoff of the TTC design: ordering state
// is fully log-determined.
#include <gtest/gtest.h>

#include "mq/broker.h"
#include "orderer/block_generator.h"
#include "orderer/record.h"

namespace fl::orderer {
namespace {

std::shared_ptr<const ledger::Envelope> tx(std::uint64_t id, PriorityLevel level) {
    auto env = std::make_shared<ledger::Envelope>();
    env->proposal.tx_id = TxId{id};
    env->consolidated_priority = level;
    return env;
}

struct Cluster {
    sim::Simulator sim;
    sim::Network net{sim, Rng(11), link()};
    mq::Broker<OrderedRecord> broker{sim, net};
    std::vector<std::string> topics{"p0", "p1", "p2"};

    static sim::LinkParams link() {
        sim::LinkParams p;
        p.base_latency = Duration::micros(200);
        p.jitter_stddev = Duration::micros(50);
        return p;
    }

    Cluster() {
        for (const auto& t : topics) {
            broker.create_topic(t);
        }
    }

    std::unique_ptr<MultiQueueBlockGenerator> make_generator(
        NodeId node, std::vector<std::vector<std::uint64_t>>& out,
        bool send_ttcs) {
        GeneratorConfig cfg;
        cfg.quotas = {4, 6, 2};
        cfg.block_size = 12;
        cfg.timeout = Duration::millis(50);
        MultiQueueBlockGenerator::Subscriptions subs;
        for (const auto& t : topics) {
            subs.push_back(broker.subscribe(t, node));
        }
        return std::make_unique<MultiQueueBlockGenerator>(
            sim, cfg, std::move(subs),
            [this, node, send_ttcs](BlockNumber bn) {
                if (!send_ttcs) return;  // a recovering node stays passive
                for (const auto& t : topics) {
                    broker.produce(t, node, 24, OrderedRecord::time_to_cut(bn, OsnId{7}));
                }
            },
            [&out](CutResult r) {
                std::vector<std::uint64_t> ids;
                for (const auto& env : r.transactions) {
                    ids.push_back(env->proposal.tx_id.value());
                }
                out.push_back(std::move(ids));
            });
    }

    void traffic(int txs) {
        Rng rng(3);
        TimePoint at = TimePoint::origin();
        for (int i = 1; i <= txs; ++i) {
            at += Duration::from_seconds(rng.exponential(0.004));
            const auto level = static_cast<std::size_t>(rng.next_below(3));
            sim.schedule_at(at, [this, level, i] {
                broker.produce(topics[level], NodeId{900}, 100,
                               OrderedRecord::transaction(
                                   tx(static_cast<std::uint64_t>(i),
                                      static_cast<PriorityLevel>(level))));
            });
        }
    }
};

TEST(RecoveryTest, RestartedOsnRebuildsIdenticalChainFromLogs) {
    Cluster c;
    std::vector<std::vector<std::uint64_t>> live_blocks;
    auto live = c.make_generator(NodeId{1}, live_blocks, /*send_ttcs=*/true);
    c.traffic(200);
    c.sim.run();
    ASSERT_FALSE(live_blocks.empty());

    // "Crash recovery": a brand-new OSN subscribes from offset zero after
    // the fact and replays.  It sends no TTCs of its own — the original
    // markers in the logs fully determine every cut.
    std::vector<std::vector<std::uint64_t>> replay_blocks;
    auto replayed = c.make_generator(NodeId{2}, replay_blocks, /*send_ttcs=*/false);
    c.sim.run();

    EXPECT_EQ(replay_blocks, live_blocks);
    EXPECT_EQ(replayed->blocks_cut(), live->blocks_cut());
    EXPECT_EQ(replayed->ttcs_sent(), 0u);
}

TEST(RecoveryTest, MidStreamJoinerConvergesOnRemainingBlocks) {
    Cluster c;
    std::vector<std::vector<std::uint64_t>> live_blocks;
    auto live = c.make_generator(NodeId{1}, live_blocks, /*send_ttcs=*/true);
    c.traffic(200);
    // Let roughly half the traffic flow, then a second OSN joins from
    // offset zero (Kafka consumers always can) and catches up.
    c.sim.run_until(TimePoint::origin() + Duration::from_seconds(0.4));
    std::vector<std::vector<std::uint64_t>> joiner_blocks;
    auto joiner = c.make_generator(NodeId{2}, joiner_blocks, /*send_ttcs=*/true);
    c.sim.run();

    EXPECT_EQ(joiner_blocks, live_blocks);
    EXPECT_EQ(joiner->blocks_cut(), live->blocks_cut());
}

TEST(RecoveryTest, ReplayIsTimerFree) {
    // The replaying generator must never arm a batch timer for already-
    // complete blocks: every block's cut condition is satisfied from log
    // content alone, so recovery latency is bounded by consumption, not by
    // block timeouts.
    Cluster c;
    std::vector<std::vector<std::uint64_t>> live_blocks;
    auto live = c.make_generator(NodeId{1}, live_blocks, /*send_ttcs=*/true);
    c.traffic(100);
    c.sim.run();
    const TimePoint live_done = c.sim.now();

    std::vector<std::vector<std::uint64_t>> replay_blocks;
    auto replayed = c.make_generator(NodeId{2}, replay_blocks, /*send_ttcs=*/false);
    c.sim.run();
    // Replay completes within roughly network-delay time; the clock may
    // additionally drain one armed-then-cancelled 50 ms batch timer, but a
    // timer-driven replay would need one timeout per block (>= 0.4 s here).
    EXPECT_LT((c.sim.now() - live_done).as_seconds(), 0.08);
    EXPECT_EQ(replay_blocks, live_blocks);
    (void)live;
    (void)replayed;
}

}  // namespace
}  // namespace fl::orderer
