#include "orderer/block_generator.h"

#include <gtest/gtest.h>

#include "orderer/record.h"

namespace fl::orderer {
namespace {

std::shared_ptr<const ledger::Envelope> tx(std::uint64_t id, PriorityLevel level) {
    auto env = std::make_shared<ledger::Envelope>();
    env->proposal.tx_id = TxId{id};
    env->consolidated_priority = level;
    return env;
}

/// Single-OSN generator over an in-process broker with near-zero latency.
struct Fixture {
    sim::Simulator sim;
    sim::Network net{sim, Rng(5), fast_link()};
    mq::Broker<OrderedRecord> broker{sim, net};
    std::vector<CutResult> cuts;
    std::unique_ptr<MultiQueueBlockGenerator> gen;
    OsnId self{0};

    static sim::LinkParams fast_link() {
        sim::LinkParams p;
        p.base_latency = Duration::micros(10);
        p.jitter_stddev = Duration::zero();
        return p;
    }

    void build(std::vector<std::uint32_t> quotas, std::uint32_t block_size,
               Duration timeout = Duration::millis(100)) {
        for (std::size_t i = 0; i < quotas.size(); ++i) {
            broker.create_topic(topic(i));
        }
        GeneratorConfig cfg;
        cfg.quotas = std::move(quotas);
        cfg.block_size = block_size;
        cfg.timeout = timeout;
        MultiQueueBlockGenerator::Subscriptions subs;
        for (std::size_t i = 0; i < cfg.quotas.size(); ++i) {
            subs.push_back(broker.subscribe(topic(i), NodeId{50}));
        }
        gen = std::make_unique<MultiQueueBlockGenerator>(
            sim, cfg, std::move(subs),
            [this, n = cfg.quotas.size()](BlockNumber bn) {
                for (std::size_t i = 0; i < n; ++i) {
                    broker.produce(topic(i), NodeId{50}, 24,
                                   OrderedRecord::time_to_cut(bn, self));
                }
            },
            [this](CutResult r) { cuts.push_back(std::move(r)); });
    }

    static std::string topic(std::size_t level) {
        return "p" + std::to_string(level);
    }

    void produce_tx(std::size_t level, std::uint64_t id) {
        broker.produce(topic(level), NodeId{60}, 100,
                       OrderedRecord::transaction(tx(id, static_cast<PriorityLevel>(level))));
    }

    std::vector<std::uint64_t> block_tx_ids(const CutResult& r) {
        std::vector<std::uint64_t> ids;
        for (const auto& env : r.transactions) {
            ids.push_back(env->proposal.tx_id.value());
        }
        return ids;
    }
};

TEST(GeneratorTest, ConstructionValidation) {
    Fixture f;
    f.broker.create_topic("p0");
    GeneratorConfig cfg;
    cfg.quotas = {10, 10};
    cfg.block_size = 15;  // quotas exceed BS
    MultiQueueBlockGenerator::Subscriptions subs;
    subs.push_back(f.broker.subscribe("p0", NodeId{1}));
    subs.push_back(f.broker.subscribe("p0", NodeId{1}));
    EXPECT_THROW(MultiQueueBlockGenerator(f.sim, cfg, subs, [](BlockNumber) {},
                                          [](CutResult) {}),
                 std::invalid_argument);
    cfg.quotas = {0, 0};
    cfg.block_size = 15;
    EXPECT_THROW(MultiQueueBlockGenerator(f.sim, cfg, subs, [](BlockNumber) {},
                                          [](CutResult) {}),
                 std::invalid_argument);
    cfg.quotas = {10};
    EXPECT_THROW(MultiQueueBlockGenerator(f.sim, cfg, subs, [](BlockNumber) {},
                                          [](CutResult) {}),
                 std::invalid_argument);  // size mismatch with 2 subs
}

TEST(GeneratorTest, CutBySizeWhenAllQuotasFill) {
    Fixture f;
    f.build({2, 3, 1}, 6);
    std::uint64_t id = 0;
    for (std::size_t level = 0; level < 3; ++level) {
        for (std::uint32_t i = 0; i < (level == 0 ? 2u : level == 1 ? 3u : 1u); ++i) {
            f.produce_tx(level, ++id);
        }
    }
    f.sim.run_until(TimePoint::origin() + Duration::millis(50));
    ASSERT_EQ(f.cuts.size(), 1u);
    EXPECT_EQ(f.cuts[0].transactions.size(), 6u);
    EXPECT_FALSE(f.cuts[0].by_timeout);
    EXPECT_EQ(f.cuts[0].per_level_counts, (std::vector<std::uint32_t>{2, 3, 1}));
    EXPECT_EQ(f.gen->ttcs_sent(), 0u);  // never reached timeout
}

TEST(GeneratorTest, CutByTimeoutWithPartialQuotas) {
    Fixture f;
    f.build({2, 3, 1}, 6, Duration::millis(100));
    f.produce_tx(0, 1);  // lone high-priority tx
    f.sim.run();
    ASSERT_EQ(f.cuts.size(), 1u);
    EXPECT_TRUE(f.cuts[0].by_timeout);
    EXPECT_EQ(f.cuts[0].transactions.size(), 1u);
    EXPECT_EQ(f.gen->ttcs_sent(), 1u);
}

TEST(GeneratorTest, NoTrafficNoBlocks) {
    Fixture f;
    f.build({2, 3, 1}, 6, Duration::millis(100));
    f.sim.run();
    EXPECT_TRUE(f.cuts.empty());
    EXPECT_EQ(f.gen->ttcs_sent(), 0u);  // timer never armed
}

TEST(GeneratorTest, BestEffortLevelOnlyViaSurplus) {
    // Policy <4:0:0>: levels 1-2 are best effort.  A lone level-2 tx must
    // still commit after the timeout via surplus transfer.
    Fixture f;
    f.build({4, 0, 0}, 4, Duration::millis(100));
    f.produce_tx(2, 7);
    f.sim.run();
    ASSERT_EQ(f.cuts.size(), 1u);
    EXPECT_EQ(f.block_tx_ids(f.cuts[0]), (std::vector<std::uint64_t>{7}));
    EXPECT_TRUE(f.cuts[0].by_timeout);
}

TEST(GeneratorTest, BestEffortServedAfterReservedLevels) {
    Fixture f;
    f.build({2, 0, 0}, 2, Duration::millis(100));
    // More high-priority than quota plus low-priority extras.
    f.produce_tx(0, 1);
    f.produce_tx(0, 2);
    f.produce_tx(0, 3);
    f.produce_tx(2, 100);
    f.sim.run_until(TimePoint::origin() + Duration::millis(20));
    // First block: quota path with exactly the 2 reserved high-priority txs.
    ASSERT_GE(f.cuts.size(), 1u);
    EXPECT_EQ(f.block_tx_ids(f.cuts[0]), (std::vector<std::uint64_t>{1, 2}));
    f.sim.run();
    // Next block (timeout): leftover high tx first, then the low-priority one.
    ASSERT_EQ(f.cuts.size(), 2u);
    EXPECT_EQ(f.block_tx_ids(f.cuts[1]), (std::vector<std::uint64_t>{3, 100}));
}

TEST(GeneratorTest, SurplusTransfersDownward) {
    // Quotas 2:2:2 but only level 2 has traffic: after timeout the whole
    // block is level-2 transactions (up to the full block size).
    Fixture f;
    f.build({2, 2, 2}, 6, Duration::millis(100));
    for (std::uint64_t i = 1; i <= 5; ++i) {
        f.produce_tx(2, i);
    }
    f.sim.run();
    ASSERT_EQ(f.cuts.size(), 1u);
    EXPECT_EQ(f.block_tx_ids(f.cuts[0]), (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
    EXPECT_EQ(f.cuts[0].per_level_counts[2], 5u);
}

TEST(GeneratorTest, FifoPreservedWithinLevel) {
    Fixture f;
    f.build({3, 3}, 6, Duration::millis(100));
    f.produce_tx(0, 10);
    f.produce_tx(1, 20);
    f.produce_tx(0, 11);
    f.produce_tx(1, 21);
    f.produce_tx(0, 12);
    f.produce_tx(1, 22);
    f.sim.run();
    ASSERT_EQ(f.cuts.size(), 1u);
    // Canonical layout: level 0 txs (FIFO) then level 1 txs (FIFO).
    EXPECT_EQ(f.block_tx_ids(f.cuts[0]),
              (std::vector<std::uint64_t>{10, 11, 12, 20, 21, 22}));
}

TEST(GeneratorTest, ConsecutiveBlocksNumberSequentially) {
    Fixture f;
    f.build({2}, 2, Duration::millis(50));
    for (std::uint64_t i = 1; i <= 6; ++i) {
        f.produce_tx(0, i);
    }
    f.sim.run();
    ASSERT_EQ(f.cuts.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(f.cuts[i].number, i);
        EXPECT_EQ(f.cuts[i].transactions.size(), 2u);
    }
    EXPECT_EQ(f.gen->blocks_cut(), 3u);
}

TEST(GeneratorTest, DuplicateTtcIgnored) {
    Fixture f;
    f.build({4}, 4, Duration::millis(100));
    f.produce_tx(0, 1);
    // Two other OSNs also time out and enqueue TTC for block 0.
    f.sim.schedule_after(Duration::millis(120), [&f] {
        f.broker.produce("p0", NodeId{70}, 24, OrderedRecord::time_to_cut(0, OsnId{1}));
        f.broker.produce("p0", NodeId{71}, 24, OrderedRecord::time_to_cut(0, OsnId{2}));
    });
    f.produce_tx(0, 2);
    f.sim.run();
    // Block 0 cut on the first TTC; the duplicates are skipped as stale by
    // block 1's generation and do not produce an empty block.
    ASSERT_GE(f.cuts.size(), 1u);
    EXPECT_EQ(f.cuts[0].number, 0u);
    for (const auto& cut : f.cuts) {
        EXPECT_FALSE(cut.transactions.empty());
    }
    EXPECT_GE(f.gen->stale_ttcs_skipped(), 1u);
}

TEST(GeneratorTest, TimerNotRearmedAfterTtcSent) {
    Fixture f;
    f.build({10}, 10, Duration::millis(50));
    f.produce_tx(0, 1);
    f.sim.run();
    EXPECT_EQ(f.gen->ttcs_sent(), 1u);  // exactly one TTC for the block
    ASSERT_EQ(f.cuts.size(), 1u);
}

TEST(GeneratorTest, OverloadRespectsQuotasPerBlock) {
    Fixture f;
    f.build({2, 3, 1}, 6, Duration::millis(100));
    // Flood every level with exactly 6 blocks' worth of quota.
    std::uint64_t id = 0;
    const std::uint32_t per_level[] = {12, 18, 6};
    for (std::size_t level = 0; level < 3; ++level) {
        for (std::uint32_t i = 0; i < per_level[level]; ++i) {
            f.produce_tx(level, ++id);
        }
    }
    f.sim.run();
    // 36 txs / 6 per block = 6 blocks, each respecting 2:3:1.
    ASSERT_EQ(f.cuts.size(), 6u);
    for (const auto& cut : f.cuts) {
        EXPECT_EQ(cut.per_level_counts, (std::vector<std::uint32_t>{2, 3, 1}));
        EXPECT_FALSE(cut.by_timeout);
    }
}

TEST(GeneratorTest, SingleQueueBaselineIsFifo) {
    Fixture f;
    f.build({4}, 4, Duration::millis(100));
    for (std::uint64_t i = 1; i <= 4; ++i) {
        f.produce_tx(0, i);
    }
    f.sim.run();
    ASSERT_EQ(f.cuts.size(), 1u);
    EXPECT_EQ(f.block_tx_ids(f.cuts[0]), (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace fl::orderer
