// Runtime block-formation-policy updates (paper §3.3's online
// reconfiguration, unimplemented in the paper's prototype): a channel
// configuration record travels through the highest-priority queue, so every
// OSN applies the new quotas at the same block boundary.
#include <gtest/gtest.h>

#include "core/fabric_network.h"
#include "harness/workload.h"
#include "orderer/block_generator.h"

namespace fl {
namespace {

// ---------------------------------------------------------- generator level

std::shared_ptr<const ledger::Envelope> tx(std::uint64_t id, PriorityLevel level) {
    auto env = std::make_shared<ledger::Envelope>();
    env->proposal.tx_id = TxId{id};
    env->consolidated_priority = level;
    return env;
}

struct GenFixture {
    sim::Simulator sim;
    sim::Network net{sim, Rng(5), fast_link()};
    mq::Broker<orderer::OrderedRecord> broker{sim, net};
    std::vector<orderer::CutResult> cuts;
    std::unique_ptr<orderer::MultiQueueBlockGenerator> gen;

    static sim::LinkParams fast_link() {
        sim::LinkParams p;
        p.base_latency = Duration::micros(10);
        p.jitter_stddev = Duration::zero();
        return p;
    }

    GenFixture() {
        for (int i = 0; i < 2; ++i) {
            broker.create_topic("p" + std::to_string(i));
        }
        orderer::GeneratorConfig cfg;
        cfg.quotas = {3, 1};
        cfg.block_size = 4;
        cfg.timeout = Duration::millis(100);
        orderer::MultiQueueBlockGenerator::Subscriptions subs;
        for (int i = 0; i < 2; ++i) {
            subs.push_back(broker.subscribe("p" + std::to_string(i), NodeId{50}));
        }
        gen = std::make_unique<orderer::MultiQueueBlockGenerator>(
            sim, cfg, std::move(subs),
            [this](BlockNumber bn) {
                for (int i = 0; i < 2; ++i) {
                    broker.produce("p" + std::to_string(i), NodeId{50}, 24,
                                   orderer::OrderedRecord::time_to_cut(bn, OsnId{0}));
                }
            },
            [this](orderer::CutResult r) { cuts.push_back(std::move(r)); });
    }

    void produce_tx(int level, std::uint64_t id) {
        broker.produce("p" + std::to_string(level), NodeId{60}, 100,
                       orderer::OrderedRecord::transaction(
                           tx(id, static_cast<PriorityLevel>(level))));
    }
};

TEST(ConfigUpdateTest, AppliesAtNextBlockBoundary) {
    GenFixture f;
    // Block 0 under 3:1: three high, one low — cut by size.
    for (std::uint64_t i = 1; i <= 3; ++i) f.produce_tx(0, i);
    f.produce_tx(1, 10);
    f.sim.run_until(TimePoint::origin() + Duration::millis(20));
    ASSERT_EQ(f.cuts.size(), 1u);
    EXPECT_EQ(f.cuts[0].per_level_counts, (std::vector<std::uint32_t>{3, 1}));

    // The config record flips the quotas to 1:3.  It is consumed while
    // block 1 is being formed and takes effect from the following block.
    f.broker.produce("p0", NodeId{70}, 64,
                     orderer::OrderedRecord::config_update({1, 3}));
    for (std::uint64_t i = 4; i <= 6; ++i) f.produce_tx(0, i);
    f.produce_tx(1, 11);
    f.sim.run_until(TimePoint::origin() + Duration::millis(40));
    ASSERT_EQ(f.cuts.size(), 2u);
    // Block 1 still used the old 3:1 quotas...
    EXPECT_EQ(f.cuts[1].per_level_counts, (std::vector<std::uint32_t>{3, 1}));
    // ...and the staged update is now in force.
    EXPECT_EQ(f.gen->config_updates_applied(), 1u);
    EXPECT_EQ(f.gen->current_quotas(), (std::vector<std::uint32_t>{1, 3}));

    // Block 2 cuts by size under the new 1:3 policy.
    f.produce_tx(0, 7);
    for (std::uint64_t i = 12; i <= 14; ++i) f.produce_tx(1, i);
    f.sim.run();
    ASSERT_EQ(f.cuts.size(), 3u);
    EXPECT_EQ(f.cuts[2].per_level_counts, (std::vector<std::uint32_t>{1, 3}));
    EXPECT_FALSE(f.cuts[2].by_timeout);
}

TEST(ConfigUpdateTest, ConfigRecordConsumesNoTxSlot) {
    GenFixture f;
    f.broker.produce("p0", NodeId{70}, 64,
                     orderer::OrderedRecord::config_update({2, 2}));
    for (std::uint64_t i = 1; i <= 3; ++i) f.produce_tx(0, i);
    f.produce_tx(1, 10);
    f.sim.run();
    ASSERT_EQ(f.cuts.size(), 1u);
    EXPECT_EQ(f.cuts[0].transactions.size(), 4u);  // full block despite config
}

TEST(ConfigUpdateTest, LastUpdateInBlockWins) {
    GenFixture f;
    f.broker.produce("p0", NodeId{70}, 64,
                     orderer::OrderedRecord::config_update({1, 3}));
    f.broker.produce("p0", NodeId{70}, 64,
                     orderer::OrderedRecord::config_update({2, 2}));
    for (std::uint64_t i = 1; i <= 3; ++i) f.produce_tx(0, i);
    f.produce_tx(1, 10);
    f.sim.run();
    ASSERT_GE(f.cuts.size(), 1u);
    EXPECT_EQ(f.gen->current_quotas(), (std::vector<std::uint32_t>{2, 2}));
}

// ------------------------------------------------------------ network level

TEST(ConfigUpdateTest, AllOsnsSwitchAtSameBoundary) {
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = 31;
    cfg.channel.priority_enabled = true;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("2:3:1");
    cfg.channel.block_size = 60;
    cfg.channel.block_timeout = Duration::millis(200);
    core::FabricNetwork net(cfg);
    net.set_tx_sink([](const client::TxRecord&) {});

    harness::Workload workload;
    for (std::size_t c = 0; c < 3; ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = 100.0;
        load.generate = harness::priority_class_mix({1, 2, 1});
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(900);
    harness::WorkloadDriver driver(net, std::move(workload), Rng(1));
    driver.start();

    // Mid-run, flip to an aggressive high-priority policy.
    net.simulator().schedule_after(Duration::millis(1200), [&net] {
        net.update_block_policy(policy::BlockFormationPolicy::parse("10:1:1"));
    });
    net.run();

    EXPECT_TRUE(net.osn_blocks_identical());
    EXPECT_TRUE(net.chains_identical());
    for (const auto& osn : net.osns()) {
        ASSERT_NE(osn->generator(), nullptr);
        EXPECT_EQ(osn->generator()->config_updates_applied(), 1u);
        EXPECT_EQ(osn->generator()->current_quotas(),
                  policy::BlockFormationPolicy::parse("10:1:1").quotas(60));
    }
}

TEST(ConfigUpdateTest, RejectedInBaselineMode) {
    core::NetworkConfig cfg;
    cfg.channel.priority_enabled = false;
    core::FabricNetwork net(cfg);
    EXPECT_THROW(
        net.update_block_policy(policy::BlockFormationPolicy::parse("1:1:1")),
        std::logic_error);
}

TEST(ConfigUpdateTest, LevelMismatchRejected) {
    core::NetworkConfig cfg;
    cfg.channel.priority_levels = 3;
    core::FabricNetwork net(cfg);
    EXPECT_THROW(net.update_block_policy(policy::BlockFormationPolicy::parse("1:1")),
                 std::invalid_argument);
}

}  // namespace
}  // namespace fl
