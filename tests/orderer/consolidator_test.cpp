#include "orderer/consolidator.h"

#include <gtest/gtest.h>

namespace fl::orderer {
namespace {

struct Fixture {
    crypto::KeyStore keys;
    policy::ChannelConfig channel;

    Fixture() {
        channel.priority_levels = 3;
        channel.consolidation_spec = "kofn:2";
        for (std::uint64_t org = 0; org < 4; ++org) {
            keys.register_identity({"org" + std::to_string(org) + ".peer0",
                                    OrgId{org}});
        }
    }

    ledger::Envelope envelope_with_votes(std::vector<PriorityLevel> votes,
                                         bool valid_sigs = true) {
        ledger::Envelope env;
        env.proposal.tx_id = TxId{1};
        env.proposal.chaincode = "cc";
        env.rwset.writes.push_back(ledger::KvWrite{"k", "v", false});
        for (std::size_t i = 0; i < votes.size(); ++i) {
            ledger::Endorsement e;
            e.endorser_identity = "org" + std::to_string(i % 4) + ".peer0";
            e.org = OrgId{i % 4};
            e.priority = votes[i];
            const Bytes payload = ledger::Envelope::endorsement_payload(
                env.proposal, env.rwset, e.priority);
            e.response_hash =
                crypto::sha256(BytesView(payload.data(), payload.size()));
            e.signature = keys.sign(e.endorser_identity,
                                    BytesView(payload.data(), payload.size()));
            if (!valid_sigs) {
                e.signature.mac[0] ^= 0xFF;
            }
            env.endorsements.push_back(e);
        }
        return env;
    }
};

TEST(ConsolidatorTest, AgreementConsolidates) {
    Fixture f;
    const Consolidator c(f.channel, f.keys);
    const auto r = c.consolidate(f.envelope_with_votes({1, 1, 1, 1}));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.priority, 1u);
}

TEST(ConsolidatorTest, PartialAgreementStillConsolidates) {
    Fixture f;
    const Consolidator c(f.channel, f.keys);
    const auto r = c.consolidate(f.envelope_with_votes({0, 0, 2, 1}));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.priority, 0u);  // two endorsers agreed on 0
}

TEST(ConsolidatorTest, NoAgreementFails) {
    Fixture f;
    const Consolidator c(f.channel, f.keys);
    const auto r = c.consolidate(f.envelope_with_votes({0, 1, 2}));
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
}

TEST(ConsolidatorTest, NoEndorsementsFails) {
    Fixture f;
    const Consolidator c(f.channel, f.keys);
    const auto r = c.consolidate(f.envelope_with_votes({}));
    EXPECT_FALSE(r.ok);
}

TEST(ConsolidatorTest, ForgedSignaturesIgnoredWhenVerifying) {
    Fixture f;
    const Consolidator c(f.channel, f.keys, /*verify_signatures=*/true);
    const auto r = c.consolidate(f.envelope_with_votes({1, 1, 1, 1},
                                                       /*valid_sigs=*/false));
    EXPECT_FALSE(r.ok);  // no valid endorsements left
}

TEST(ConsolidatorTest, ForgedSignaturesCountWhenTrusting) {
    // Crash-fault mode: the OSN trusts endorsements without re-verifying
    // (committers still catch forgeries later).
    Fixture f;
    const Consolidator c(f.channel, f.keys, /*verify_signatures=*/false);
    const auto r = c.consolidate(f.envelope_with_votes({1, 1, 1, 1},
                                                       /*valid_sigs=*/false));
    EXPECT_TRUE(r.ok);
}

TEST(ConsolidatorTest, AveragePolicyRounds) {
    Fixture f;
    f.channel.consolidation_spec = "average";
    const Consolidator c(f.channel, f.keys);
    const auto r = c.consolidate(f.envelope_with_votes({0, 1, 2, 2}));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.priority, 1u);  // mean 1.25 -> 1
}

}  // namespace
}  // namespace fl::orderer
