// Property test for the paper's central consistency claim (§3.3): with
// unsynchronized local timers, multiple OSNs independently running the
// Multi-Queue Block Generator over the same totally-ordered queues cut
// IDENTICAL block sequences, because time-to-cut markers occupy fixed log
// positions.
//
// Sweeps random seeds x timer-skew configurations x block policies, with
// network jitter delaying each OSN's view of the queues differently.
#include <gtest/gtest.h>

#include <map>

#include "mq/broker.h"
#include "orderer/block_generator.h"
#include "orderer/record.h"

namespace fl::orderer {
namespace {

struct OsnSim {
    OsnId id;
    NodeId node;
    std::unique_ptr<MultiQueueBlockGenerator> gen;
    std::vector<CutResult> cuts;
};

struct Cluster {
    sim::Simulator sim;
    sim::Network net;
    mq::Broker<OrderedRecord> broker;
    std::vector<std::unique_ptr<OsnSim>> osns;
    std::vector<std::string> topics;

    explicit Cluster(std::uint64_t seed)
        : net(sim, Rng(seed), jittery_link()), broker(sim, net) {}

    static sim::LinkParams jittery_link() {
        sim::LinkParams p;
        p.base_latency = Duration::micros(500);
        p.jitter_stddev = Duration::micros(200);  // heavy reordering pressure
        return p;
    }

    void build(std::size_t n_osns, std::vector<std::uint32_t> quotas,
               std::uint32_t block_size, Duration timeout, Duration max_skew,
               std::uint64_t seed, Duration consume_per_record = Duration::zero()) {
        for (std::size_t i = 0; i < quotas.size(); ++i) {
            topics.push_back("p" + std::to_string(i));
            broker.create_topic(topics.back());
        }
        Rng rng(seed);
        for (std::size_t i = 0; i < n_osns; ++i) {
            auto osn = std::make_unique<OsnSim>();
            osn->id = OsnId{i};
            osn->node = NodeId{500 + i};
            GeneratorConfig cfg;
            cfg.quotas = quotas;
            cfg.block_size = block_size;
            cfg.timeout = timeout;
            cfg.clock_skew =
                Duration::from_seconds(rng.uniform(0.0, max_skew.as_seconds()));
            cfg.consume_per_record = consume_per_record;
            cfg.consume_burst = 16;
            MultiQueueBlockGenerator::Subscriptions subs;
            for (const std::string& t : topics) {
                subs.push_back(broker.subscribe(t, osn->node));
            }
            OsnSim* raw = osn.get();
            osn->gen = std::make_unique<MultiQueueBlockGenerator>(
                sim, cfg, std::move(subs),
                [this, raw](BlockNumber bn) {
                    for (const std::string& t : topics) {
                        broker.produce(t, raw->node, 24,
                                       OrderedRecord::time_to_cut(bn, raw->id));
                    }
                },
                [raw](CutResult r) { raw->cuts.push_back(std::move(r)); });
            osns.push_back(std::move(osn));
        }
    }

    void random_traffic(std::uint64_t seed, int txs, double mean_gap_ms,
                        const std::vector<double>& level_weights) {
        Rng rng(seed);
        TimePoint at = TimePoint::origin();
        for (int i = 0; i < txs; ++i) {
            at += Duration::from_seconds(rng.exponential(mean_gap_ms / 1000.0));
            double pick = rng.uniform(0.0, 1.0);
            std::size_t level = 0;
            double acc = 0.0;
            for (std::size_t l = 0; l < level_weights.size(); ++l) {
                acc += level_weights[l];
                if (pick < acc) {
                    level = l;
                    break;
                }
                level = l;
            }
            // A baseline (single-topic) cluster funnels every class into
            // topic 0, as the real OSN does when priorities are disabled.
            level = std::min(level, topics.size() - 1);
            auto env = std::make_shared<ledger::Envelope>();
            env->proposal.tx_id = TxId{static_cast<std::uint64_t>(i + 1)};
            env->consolidated_priority = static_cast<PriorityLevel>(level);
            sim.schedule_at(at, [this, level, env] {
                broker.produce(topics[level], NodeId{900}, 100,
                               OrderedRecord::transaction(env));
            });
        }
    }

    /// Flattened (block -> tx ids) sequence per OSN.
    std::vector<std::vector<std::uint64_t>> sequence(std::size_t osn) const {
        std::vector<std::vector<std::uint64_t>> out;
        for (const CutResult& cut : osns[osn]->cuts) {
            std::vector<std::uint64_t> ids;
            for (const auto& env : cut.transactions) {
                ids.push_back(env->proposal.tx_id.value());
            }
            out.push_back(std::move(ids));
        }
        return out;
    }
};

struct Params {
    std::uint64_t seed;
    std::vector<std::uint32_t> quotas;
    std::uint32_t block_size;
    double skew_ms;
    /// Consume-loop cost (0 = unlimited) — the rate-limited path must be
    /// just as deterministic as the unlimited one.
    std::int64_t consume_us = 0;
};

class TtcDeterminismSweep : public ::testing::TestWithParam<Params> {};

TEST_P(TtcDeterminismSweep, AllOsnsCutIdenticalBlocks) {
    const Params p = GetParam();
    Cluster cluster(p.seed);
    cluster.build(/*n_osns=*/3, p.quotas, p.block_size, Duration::millis(100),
                  Duration::millis(p.skew_ms > 0 ? static_cast<std::int64_t>(p.skew_ms)
                                                 : 0),
                  p.seed * 31 + 7, Duration::micros(p.consume_us));
    cluster.random_traffic(p.seed * 17 + 3, /*txs=*/400, /*mean_gap_ms=*/2.0,
                           {0.25, 0.5, 0.25});
    cluster.sim.run();

    const auto reference = cluster.sequence(0);
    ASSERT_FALSE(reference.empty());
    std::size_t total = 0;
    for (const auto& block : reference) {
        total += block.size();
        EXPECT_FALSE(block.empty());  // the protocol never cuts empty blocks
    }
    EXPECT_EQ(total, 400u);  // nothing lost, nothing duplicated

    for (std::size_t i = 1; i < 3; ++i) {
        EXPECT_EQ(cluster.sequence(i), reference)
            << "OSN " << i << " diverged (seed=" << p.seed << ")";
    }
}

std::vector<Params> sweep_params() {
    std::vector<Params> out;
    const std::vector<std::vector<std::uint32_t>> policies = {
        {10, 20, 10},   // balanced-ish
        {20, 15, 5},    // skewed
        {40, 0, 0},     // best-effort lower levels
        {40},           // single queue (vanilla Fabric baseline)
    };
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
            std::uint32_t bs = 0;
            for (const std::uint32_t q : policies[pi]) bs += q;
            out.push_back(Params{seed * 1000 + pi, policies[pi], bs, 40.0});
        }
    }
    // Extreme skew cases.
    out.push_back(Params{777, {10, 20, 10}, 40, 90.0});
    out.push_back(Params{778, {10, 20, 10}, 40, 0.0});
    // Rate-limited consume loop (the production capacity model): the
    // 400 txs arrive at ~500 tps against ~285 rec/s capacity, so queues
    // back up and the surplus/TTC machinery works through deep backlogs.
    for (std::uint64_t seed = 50; seed < 55; ++seed) {
        out.push_back(Params{seed, {10, 20, 10}, 40, 60.0, /*consume_us=*/3500});
    }
    out.push_back(Params{60, {40, 0, 0}, 40, 60.0, /*consume_us=*/3500});
    return out;
}

INSTANTIATE_TEST_SUITE_P(SeedsPoliciesSkews, TtcDeterminismSweep,
                         ::testing::ValuesIn(sweep_params()));

}  // namespace
}  // namespace fl::orderer
