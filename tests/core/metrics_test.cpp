// MetricsCollector: accounting, per-dimension histograms, phase breakdowns,
// and NetworkConfig/FabricNetwork construction validation.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/fabric_network.h"
#include "core/metrics.h"
#include "obs/audit/audit.h"

namespace fl::core {
namespace {

client::TxRecord make_record(std::uint64_t id, PriorityLevel priority,
                             double latency_s, TxValidationCode code,
                             std::uint64_t client = 0) {
    client::TxRecord r;
    r.tx_id = TxId{id};
    r.client = ClientId{client};
    r.chaincode = "cc";
    r.priority = priority;
    r.submitted_at = TimePoint::origin();
    r.broadcast_at = TimePoint::origin() + Duration::from_seconds(latency_s * 0.1);
    r.block_cut_at = TimePoint::origin() + Duration::from_seconds(latency_s * 0.7);
    r.committed_at = TimePoint::origin() + Duration::from_seconds(latency_s * 0.9);
    r.completed_at = TimePoint::origin() + Duration::from_seconds(latency_s);
    r.code = code;
    return r;
}

TEST(MetricsTest, CountsByOutcome) {
    MetricsCollector m;
    m.record(make_record(1, 0, 1.0, TxValidationCode::kValid));
    m.record(make_record(2, 0, 1.0, TxValidationCode::kMvccReadConflict));
    client::TxRecord failed = make_record(3, 0, 1.0, TxValidationCode::kValid);
    failed.failed_before_ordering = true;
    m.record(failed);
    EXPECT_EQ(m.committed_valid(), 1u);
    EXPECT_EQ(m.committed_invalid(), 1u);
    EXPECT_EQ(m.client_failures(), 1u);
    EXPECT_EQ(m.total(), 3u);
}

TEST(MetricsTest, OnlyValidTxsEnterLatencyStats) {
    MetricsCollector m;
    m.record(make_record(1, 0, 2.0, TxValidationCode::kValid));
    m.record(make_record(2, 0, 100.0, TxValidationCode::kWriteConflict));
    EXPECT_EQ(m.overall().count(), 1u);
    EXPECT_NEAR(m.avg_latency(), 2.0, 1e-9);
}

TEST(MetricsTest, PerPriorityAndPerClientBuckets) {
    MetricsCollector m;
    m.record(make_record(1, 0, 1.0, TxValidationCode::kValid, 0));
    m.record(make_record(2, 2, 3.0, TxValidationCode::kValid, 1));
    m.record(make_record(3, 2, 5.0, TxValidationCode::kValid, 1));
    EXPECT_NEAR(m.avg_latency_for_priority(0), 1.0, 1e-9);
    EXPECT_NEAR(m.avg_latency_for_priority(2), 4.0, 1e-9);
    EXPECT_EQ(m.avg_latency_for_priority(1), 0.0);  // no traffic
    EXPECT_NEAR(m.avg_latency_for_client(ClientId{1}), 4.0, 1e-9);
}

TEST(MetricsTest, PhaseBreakdownSumsToLatency) {
    MetricsCollector m;
    m.record(make_record(1, 1, 2.0, TxValidationCode::kValid));
    const auto& phases = m.phases_by_priority().at(1);
    const double total = phases.endorsement.mean() + phases.ordering.mean() +
                         phases.validation.mean() + phases.notification.mean();
    EXPECT_NEAR(total, 2.0, 1e-9);
    EXPECT_NEAR(phases.endorsement.mean(), 0.2, 1e-9);
    EXPECT_NEAR(phases.ordering.mean(), 1.2, 1e-9);   // 0.7 - 0.1
    EXPECT_NEAR(phases.validation.mean(), 0.4, 1e-9);  // 0.9 - 0.7
    EXPECT_NEAR(phases.notification.mean(), 0.2, 1e-9);
}

TEST(MetricsTest, ThroughputOverMeasurementSpan) {
    MetricsCollector m;
    for (int i = 0; i < 10; ++i) {
        auto r = make_record(static_cast<std::uint64_t>(i), 0, 1.0,
                             TxValidationCode::kValid);
        r.submitted_at = TimePoint::origin() + Duration::seconds(i);
        r.completed_at = r.submitted_at + Duration::seconds(1);
        m.record(r);
    }
    // 10 txs over a [0, 10s] span.
    EXPECT_NEAR(m.throughput_tps(), 1.0, 1e-9);
}

TEST(MetricsTest, EmptyCollectorSafe) {
    MetricsCollector m;
    EXPECT_EQ(m.avg_latency(), 0.0);
    EXPECT_EQ(m.throughput_tps(), 0.0);
    EXPECT_EQ(m.total(), 0u);
}

// ------------------------------------------------------ degradation counters

TEST(MetricsTest, DegradationCountedForEveryTerminalRecord) {
    MetricsCollector m;
    // Committed after one endorse retry.
    auto committed = make_record(1, 0, 1.0, TxValidationCode::kValid);
    committed.endorse_retries = 1;
    m.record(committed);
    // Aborted (invalid) after a resubmission.
    auto aborted = make_record(2, 0, 1.0, TxValidationCode::kMvccReadConflict);
    aborted.resubmissions = 1;
    m.record(aborted);
    // Client-side endorsement-timeout failure: retries must still count even
    // though the record short-circuits out of the latency stats.
    auto failed = make_record(3, 0, 1.0, TxValidationCode::kEndorsementTimeout);
    failed.failed_before_ordering = true;
    failed.endorse_retries = 2;
    m.record(failed);
    // Commit-timeout failure after exhausting resubmissions.
    auto timed_out = make_record(4, 0, 1.0, TxValidationCode::kCommitTimeout);
    timed_out.failed_before_ordering = true;
    timed_out.resubmissions = 3;
    m.record(timed_out);

    EXPECT_EQ(m.endorse_retries_total(), 3u);
    EXPECT_EQ(m.resubmissions_total(), 4u);
    EXPECT_EQ(m.endorse_timeout_failures(), 1u);
    EXPECT_EQ(m.commit_timeout_failures(), 1u);
    ASSERT_TRUE(m.degradation_by_chaincode().contains("cc"));
    EXPECT_EQ(m.degradation_by_chaincode().at("cc").endorse_retries, 3u);
    EXPECT_EQ(m.degradation_by_chaincode().at("cc").resubmissions, 4u);
}

TEST(MetricsTest, DegradationJsonSchemaPinned) {
    MetricsCollector m;
    auto r = make_record(1, 0, 1.0, TxValidationCode::kValid);
    r.chaincode = "asset_transfer";
    r.endorse_retries = 3;
    r.resubmissions = 2;
    m.record(r);
    auto failed = make_record(2, 0, 1.0, TxValidationCode::kCommitTimeout);
    failed.failed_before_ordering = true;
    m.record(failed);

    std::ostringstream os;
    write_metrics_json(os, m);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"degradation\": {"), std::string::npos);
    EXPECT_NE(json.find("\"endorse_retries\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"resubmissions\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"endorse_timeout_failures\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"commit_timeout_failures\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"by_chaincode\""), std::string::npos);
    EXPECT_NE(json.find("\"asset_transfer\""), std::string::npos);
}

TEST(MetricsTest, DegradationBlockAlwaysPresentWithZeros) {
    // Schema stability: fault-free runs emit the same keys, all zero, so
    // JSON consumers need no fallback paths.
    MetricsCollector m;
    m.record(make_record(1, 0, 1.0, TxValidationCode::kValid));
    std::ostringstream os;
    write_metrics_json(os, m);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"degradation\": {"), std::string::npos);
    EXPECT_NE(json.find("\"endorse_retries\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"resubmissions\": 0"), std::string::npos);
    // No retries recorded -> the per-chaincode degradation map is empty.
    EXPECT_NE(json.find("\"by_chaincode\": {}"), std::string::npos);
}

// --------------------------------------------- percentile + audit JSON schema

TEST(MetricsTest, PhaseLatencyByPriorityJsonSchemaPinned) {
    MetricsCollector m;
    // 100 txs at level 1 with latencies 0.01..1.00 s: the histogram's
    // percentile estimates are well-populated and deterministic.
    for (int i = 1; i <= 100; ++i) {
        m.record(make_record(static_cast<std::uint64_t>(i), 1, i * 0.01,
                             TxValidationCode::kValid));
    }
    std::ostringstream os;
    write_metrics_json(os, m);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"phase_latency_by_priority\": {"), std::string::npos);
    EXPECT_NE(json.find("\"1\": {"), std::string::npos);
    for (const char* phase : {"\"endorsement\"", "\"ordering\"",
                              "\"validation\"", "\"notification\""}) {
        EXPECT_NE(json.find(phase), std::string::npos) << phase;
    }
    for (const char* key : {"\"count\"", "\"mean_s\"", "\"p50_s\"", "\"p95_s\"",
                            "\"p99_s\"", "\"min_s\"", "\"max_s\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

TEST(MetricsTest, PercentilesOrderedAndBracketedByEnvelope) {
    MetricsCollector m;
    for (int i = 1; i <= 100; ++i) {
        m.record(make_record(static_cast<std::uint64_t>(i), 0, i * 0.01,
                             TxValidationCode::kValid));
    }
    const Histogram& overall = m.overall();
    EXPECT_EQ(overall.count(), 100u);
    EXPECT_LE(overall.min(), overall.percentile(50.0));
    EXPECT_LE(overall.percentile(50.0), overall.percentile(95.0));
    EXPECT_LE(overall.percentile(95.0), overall.percentile(99.0));
    EXPECT_LE(overall.percentile(99.0), overall.max());
    // Uniform 0.01..1.00 s: the median estimate must land near 0.5 s.
    EXPECT_NEAR(overall.percentile(50.0), 0.5, 0.1);
}

TEST(MetricsTest, AuditBlockOnlyWithReport) {
    MetricsCollector m;
    m.record(make_record(1, 0, 1.0, TxValidationCode::kValid));

    std::ostringstream without;
    write_metrics_json(without, m);
    EXPECT_EQ(without.str().find("\"audit\""), std::string::npos);

    // The 3-arg overload with nullptr is the 2-arg overload, byte for byte.
    std::ostringstream with_null;
    write_metrics_json(with_null, m, nullptr);
    EXPECT_EQ(without.str(), with_null.str());

    obs::audit::AuditReport report;
    report.window_s = 1.0;
    report.alarm_trips = 2;
    std::ostringstream with_audit;
    write_metrics_json(with_audit, m, &report);
    const std::string json = with_audit.str();
    EXPECT_NE(json.find("\"audit\""), std::string::npos);
    EXPECT_NE(json.find("\"alarm_trips\""), std::string::npos);
    EXPECT_NE(json.find("\"priority_inversions\""), std::string::npos);
}

// --------------------------------------------------------- config validation

TEST(NetworkConfigTest, RejectsZeroComponents) {
    for (int field = 0; field < 4; ++field) {
        NetworkConfig cfg;
        if (field == 0) cfg.orgs = 0;
        if (field == 1) cfg.peers_per_org = 0;
        if (field == 2) cfg.osns = 0;
        if (field == 3) cfg.clients = 0;
        EXPECT_THROW(FabricNetwork net(cfg), std::invalid_argument) << field;
    }
}

TEST(NetworkConfigTest, EndorsementKClampedToOrgs) {
    NetworkConfig cfg;
    cfg.orgs = 3;
    cfg.endorsement_k = 99;
    FabricNetwork net(cfg);  // must not throw
    EXPECT_EQ(net.config().orgs, 3u);
}

TEST(NetworkConfigTest, PeersPerOrgMultipliesPeers) {
    NetworkConfig cfg;
    cfg.orgs = 3;
    cfg.peers_per_org = 2;
    FabricNetwork net(cfg);
    EXPECT_EQ(net.peers().size(), 6u);
    // Two peers of the same org share the org id but not the identity.
    EXPECT_EQ(net.peers()[0]->org(), net.peers()[1]->org());
    EXPECT_NE(net.peers()[0]->identity().name, net.peers()[1]->identity().name);
}

TEST(NetworkConfigTest, BaselineModeHasSingleTopic) {
    NetworkConfig cfg;
    cfg.channel.priority_enabled = false;
    cfg.channel.priority_levels = 3;
    FabricNetwork net(cfg);
    EXPECT_TRUE(net.broker().has_topic(cfg.channel.topic_for_level(0)));
    EXPECT_FALSE(net.broker().has_topic(cfg.channel.topic_for_level(1)));
}

TEST(NetworkConfigTest, PriorityModeHasTopicPerLevel) {
    NetworkConfig cfg;
    cfg.channel.priority_enabled = true;
    cfg.channel.priority_levels = 3;
    FabricNetwork net(cfg);
    for (PriorityLevel l = 0; l < 3; ++l) {
        EXPECT_TRUE(net.broker().has_topic(cfg.channel.topic_for_level(l)));
    }
}

}  // namespace
}  // namespace fl::core
