// Serial-vs-partitioned engine equivalence (DESIGN.md §17).
//
// The partitioned engine's contract is byte-identity: at ANY partition
// layout, window stepping and worker count, a run produces exactly the
// serial engine's output — trace JSONL, transaction-record stream (content
// AND sink order), metrics JSON, chain/state fingerprints.  These tests pin
// that contract over full networks (both ordering backends, with and
// without component faults); unit tests for the window algebra itself live
// in tests/sim/partition_test.cpp.
#include "core/fabric_network.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/metrics.h"
#include "harness/workload.h"
#include "obs/audit/audit.h"
#include "obs/trace.h"

namespace fl::core {
namespace {

NetworkConfig small_config(std::uint64_t seed, PartitionScheme scheme) {
    NetworkConfig cfg;
    cfg.orgs = 2;
    cfg.peers_per_org = 1;
    cfg.osns = 2;
    cfg.clients = 2;
    cfg.seed = seed;
    cfg.partition.scheme = scheme;
    return cfg;
}

harness::Workload small_workload(std::uint32_t clients, std::uint64_t total) {
    harness::Workload wl;
    for (std::uint32_t c = 0; c < clients; ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = 400.0;
        load.generate = harness::priority_class_mix({1, 2, 1});
        wl.loads.push_back(std::move(load));
    }
    wl.distribute_total(total);
    return wl;
}

/// Everything observable about one run, for byte-for-byte comparison.
struct RunOutput {
    std::string trace_jsonl;
    std::string tx_log;  ///< serialized TxRecords in sink-callback order
    std::string metrics_json;
    std::uint64_t chain_fp = 0;
    std::uint64_t state_fp = 0;
    std::uint64_t blocks = 0;
    std::uint64_t submitted = 0;
    std::uint64_t faults = 0;
    std::size_t groups = 0;
    bool consistent = false;

    friend bool operator==(const RunOutput&, const RunOutput&) = default;
};

/// Builds a network, drives the standard workload and captures every
/// observable output.  `step` > 0 drains via repeated advance_until windows
/// of that size instead of run() — output must not depend on the stepping.
RunOutput drive(NetworkConfig cfg, ThreadPool* pool = nullptr,
                std::uint64_t total_txs = 240,
                Duration step = Duration::zero()) {
    FabricNetwork net(std::move(cfg));
    MetricsCollector metrics;
    std::ostringstream txlog;
    net.set_tx_sink([&](const client::TxRecord& r) {
        metrics.record(r);
        txlog << r.tx_id.value() << ' ' << r.client.value() << ' ' << r.chaincode
              << ' ' << static_cast<int>(r.priority) << ' '
              << r.submitted_at.as_nanos() << ' ' << r.broadcast_at.as_nanos()
              << ' ' << r.block_cut_at.as_nanos() << ' '
              << r.committed_at.as_nanos() << ' ' << r.completed_at.as_nanos()
              << ' ' << static_cast<int>(r.code) << ' ' << r.failed_before_ordering
              << ' ' << r.endorse_retries << ' ' << r.resubmissions << '\n';
    });
    obs::TraceSink trace;
    net.set_trace_sink(&trace);

    harness::WorkloadDriver driver(
        net, small_workload(net.config().clients, total_txs),
        Rng(net.config().seed ^ 0x574B4C44ull));
    driver.start();

    if (step > Duration::zero()) {
        TimePoint at = TimePoint::origin();
        while (net.next_event_time() != TimePoint::max()) {
            at = at + step;
            net.advance_until(at, pool);
        }
    } else {
        net.run(pool);
    }

    RunOutput out;
    std::ostringstream ts;
    trace.write_jsonl(ts);
    out.trace_jsonl = ts.str();
    out.tx_log = txlog.str();
    std::ostringstream ms;
    write_metrics_json(ms, metrics);
    out.metrics_json = ms.str();
    out.chain_fp = net.peers().front()->chain().chain_fingerprint();
    out.state_fp = net.peers().front()->state().fingerprint();
    out.blocks = net.peers().front()->chain().height();
    out.submitted = driver.submitted();
    out.faults = net.faults_applied();
    out.groups = net.partition_groups();
    out.consistent = net.chains_identical() && net.states_identical() &&
                     net.osn_blocks_identical();
    return out;
}

void expect_identical(const RunOutput& serial, const RunOutput& part) {
    // Field-by-field first so a mismatch names the diverging artifact.
    EXPECT_EQ(serial.trace_jsonl, part.trace_jsonl);
    EXPECT_EQ(serial.tx_log, part.tx_log);
    EXPECT_EQ(serial.metrics_json, part.metrics_json);
    EXPECT_EQ(serial.chain_fp, part.chain_fp);
    EXPECT_EQ(serial.state_fp, part.state_fp);
    EXPECT_EQ(serial.blocks, part.blocks);
    EXPECT_EQ(serial.submitted, part.submitted);
    EXPECT_EQ(serial.faults, part.faults);
    EXPECT_TRUE(serial.consistent);
    EXPECT_TRUE(part.consistent);
}

TEST(PartitionedEngineTest, DefaultConfigRunsSerialEngine) {
    NetworkConfig cfg = small_config(1, PartitionScheme::kSingle);
    FabricNetwork net(cfg);
    EXPECT_EQ(net.partition_groups(), 1u);
    EXPECT_NO_THROW(net.simulator());
    EXPECT_EQ(net.partition_windows(), 0u);
}

TEST(PartitionedEngineTest, RolesLayoutMatchesSerialByteForByte) {
    for (const std::uint64_t seed : {1ull, 42ull}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        const RunOutput serial = drive(small_config(seed, PartitionScheme::kSingle));
        const RunOutput part = drive(small_config(seed, PartitionScheme::kRoles));
        EXPECT_EQ(serial.groups, 1u);
        // clients | org0 | org1 | ordering
        EXPECT_EQ(part.groups, 4u);
        expect_identical(serial, part);
    }
}

TEST(PartitionedEngineTest, PerNodeLayoutMatchesSerial) {
    const RunOutput serial = drive(small_config(7, PartitionScheme::kSingle));
    const RunOutput part = drive(small_config(7, PartitionScheme::kPerNode));
    // 2 clients + 2 peers + ordering
    EXPECT_EQ(part.groups, 5u);
    expect_identical(serial, part);
}

TEST(PartitionedEngineTest, WorkerThreadsDoNotChangeOutput) {
    ThreadPool pool(4);
    const RunOutput inline_run = drive(small_config(1234, PartitionScheme::kRoles));
    const RunOutput pooled_run =
        drive(small_config(1234, PartitionScheme::kRoles), &pool);
    EXPECT_EQ(inline_run, pooled_run);
}

TEST(PartitionedEngineTest, WindowSteppingDoesNotChangeOutput) {
    // advance_until at arbitrary external boundaries (the multi-channel
    // engine's drive mode) must equal a single run() drain.
    const RunOutput whole = drive(small_config(42, PartitionScheme::kRoles));
    const RunOutput fine = drive(small_config(42, PartitionScheme::kRoles),
                                 nullptr, 240, Duration::millis(3));
    const RunOutput coarse = drive(small_config(42, PartitionScheme::kRoles),
                                   nullptr, 240, Duration::millis(97));
    EXPECT_EQ(whole, fine);
    EXPECT_EQ(whole, coarse);
}

TEST(PartitionedEngineTest, CustomLayoutMatchesSerial) {
    NetworkConfig cfg = small_config(42, PartitionScheme::kCustom);
    // Irregular split: client 0 + org-0 peer | client 1 | ordering + org-1
    // peer.  Ordering only has to be together, not alone.
    cfg.partition.groups = {
        {kClientNodeBase + 0, 0}, {kPeerNodeBase + 0, 0},
        {kClientNodeBase + 1, 1},
        {kPeerNodeBase + 1, 2},   {kOsnNodeBase + 0, 2},
        {kOsnNodeBase + 1, 2},    {kBrokerNode, 2},
    };
    const RunOutput part = drive(std::move(cfg));
    EXPECT_EQ(part.groups, 3u);
    const RunOutput serial = drive(small_config(42, PartitionScheme::kSingle));
    expect_identical(serial, part);
}

TEST(PartitionedEngineTest, CustomLayoutValidation) {
    {  // missing node assignment
        NetworkConfig cfg = small_config(1, PartitionScheme::kCustom);
        cfg.partition.groups = {{kClientNodeBase, 0}};
        EXPECT_THROW(FabricNetwork net(cfg), std::invalid_argument);
    }
    {  // ordering service split across groups
        NetworkConfig cfg = small_config(1, PartitionScheme::kCustom);
        for (std::uint64_t c = 0; c < 2; ++c) cfg.partition.groups[kClientNodeBase + c] = 0;
        for (std::uint64_t p = 0; p < 2; ++p) cfg.partition.groups[kPeerNodeBase + p] = 0;
        cfg.partition.groups[kOsnNodeBase + 0] = 1;
        cfg.partition.groups[kOsnNodeBase + 1] = 2;
        cfg.partition.groups[kBrokerNode] = 1;
        EXPECT_THROW(FabricNetwork net(cfg), std::invalid_argument);
    }
    {  // non-contiguous group indices
        NetworkConfig cfg = small_config(1, PartitionScheme::kCustom);
        for (std::uint64_t c = 0; c < 2; ++c) cfg.partition.groups[kClientNodeBase + c] = 0;
        for (std::uint64_t p = 0; p < 2; ++p) cfg.partition.groups[kPeerNodeBase + p] = 0;
        cfg.partition.groups[kOsnNodeBase + 0] = 5;
        cfg.partition.groups[kOsnNodeBase + 1] = 5;
        cfg.partition.groups[kBrokerNode] = 5;
        EXPECT_THROW(FabricNetwork net(cfg), std::invalid_argument);
    }
}

TEST(PartitionedEngineTest, ComponentFaultScheduleMatchesSerial) {
    const auto with_faults = [](PartitionScheme scheme) {
        NetworkConfig cfg = small_config(42, scheme);
        cfg.faults.schedule = {
            {Duration::millis(50), fault::FaultKind::kOsnCrash, 1},
            {Duration::millis(100), fault::FaultKind::kEndorserSlow, 0, 4.0},
            {Duration::millis(300), fault::FaultKind::kOsnRestart, 1},
            {Duration::millis(400), fault::FaultKind::kEndorserNormal, 0},
        };
        return cfg;
    };
    const RunOutput serial = drive(with_faults(PartitionScheme::kSingle));
    const RunOutput part = drive(with_faults(PartitionScheme::kPerNode));
    EXPECT_EQ(serial.faults, 4u);
    EXPECT_GT(part.groups, 1u);
    expect_identical(serial, part);
}

TEST(PartitionedEngineTest, RaftBackendMatchesSerial) {
    const auto raft_cfg = [](PartitionScheme scheme) {
        NetworkConfig cfg = small_config(7, scheme);
        cfg.ordering_backend = orderer::OrderingBackendKind::kRaft;
        return cfg;
    };
    const RunOutput serial = drive(raft_cfg(PartitionScheme::kSingle), nullptr, 120);
    const RunOutput part = drive(raft_cfg(PartitionScheme::kRoles), nullptr, 120);
    EXPECT_GT(part.groups, 1u);
    expect_identical(serial, part);
}

TEST(PartitionedEngineTest, MessageFaultsDemoteToSerialEngine) {
    // Per-message fault draws consume one shared rng stream in global send
    // order — unsafe across concurrent groups, so the build demotes to the
    // serial engine rather than silently diverging.
    NetworkConfig cfg = small_config(1, PartitionScheme::kRoles);
    cfg.faults.messages.drop_prob = 0.01;
    FabricNetwork net(cfg);
    EXPECT_EQ(net.partition_groups(), 1u);
    EXPECT_NO_THROW(net.simulator());
}

TEST(PartitionedEngineTest, MultiGroupRejectsGlobalOrderObservers) {
    FabricNetwork net(small_config(1, PartitionScheme::kRoles));
    ASSERT_GT(net.partition_groups(), 1u);
    EXPECT_THROW(net.simulator(), std::logic_error);
    obs::audit::AuditAccountant audit{obs::audit::AuditConfig{}};
    EXPECT_THROW(net.set_audit(&audit), std::logic_error);
}

TEST(PartitionedEngineTest, LookaheadIsPositiveAndWindowsAdvance) {
    FabricNetwork net(small_config(1, PartitionScheme::kRoles));
    EXPECT_GT(net.lookahead(), Duration::zero());
    harness::WorkloadDriver driver(net, small_workload(2, 40),
                                   Rng(net.config().seed ^ 0x574B4C44ull));
    driver.start();
    net.run(nullptr);
    EXPECT_GT(net.partition_windows(), 0u);
    EXPECT_GT(net.events_executed(), 0u);
}

}  // namespace
}  // namespace fl::core
