// Multi-channel configuration + channel-sharded engine tests.
//
// Covers the four contracts of core/multi_channel.h / harness/channels.h:
//   1. config validation — zero channels, duplicate ids, bad sync window —
//      and per-channel policy defaulting over the base NetworkConfig;
//   2. 1-channel legacy byte-identity: the sharded engine (serial AND
//      parallel) reproduces harness::run_once bit for bit;
//   3. serial-vs-parallel differential over random seeds × channel counts:
//      every per-channel artifact and the cross-channel meter agree;
//   4. engine-knob invariance: sync_window and pool size never change
//      per-channel bytes; gauge prefixes and trace tags are well-formed.
#include "core/multi_channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "harness/channels.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace fl::core {
namespace {

harness::Workload small_workload(std::size_t clients, std::uint64_t total_txs) {
    harness::Workload w;
    for (std::size_t c = 0; c < clients; ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = 400.0 / static_cast<double>(clients);
        load.generate = harness::priority_class_mix({1, 2, 1});
        w.loads.push_back(std::move(load));
    }
    w.distribute_total(total_txs);
    return w;
}

harness::MultiChannelSpec small_spec(std::size_t channels, std::uint64_t seed,
                                     std::uint64_t txs_per_channel = 120) {
    harness::MultiChannelSpec spec;
    spec.config = MultiChannelConfig::uniform(NetworkConfig{}, channels);
    const std::size_t clients = spec.config.base.clients;
    spec.make_workload = [clients, txs_per_channel](std::size_t) {
        return small_workload(clients, txs_per_channel);
    };
    spec.seed = seed;
    spec.capture_trace = true;
    return spec;
}

void expect_identical(const harness::MultiChannelResult& a,
                      const harness::MultiChannelResult& b,
                      const std::string& what) {
    ASSERT_EQ(a.channels.size(), b.channels.size()) << what;
    for (std::size_t i = 0; i < a.channels.size(); ++i) {
        SCOPED_TRACE(what + ": channel " + std::to_string(i));
        EXPECT_EQ(a.channels[i].metrics_json, b.channels[i].metrics_json);
        EXPECT_EQ(a.channels[i].trace_jsonl, b.channels[i].trace_jsonl);
        EXPECT_EQ(a.channels[i].chain_fingerprint, b.channels[i].chain_fingerprint);
        EXPECT_EQ(a.channels[i].state_fingerprint, b.channels[i].state_fingerprint);
        EXPECT_EQ(a.channels[i].blocks, b.channels[i].blocks);
        EXPECT_TRUE(a.channels[i].consistent);
        EXPECT_TRUE(b.channels[i].consistent);
    }
    EXPECT_EQ(a.events_executed, b.events_executed) << what;
    EXPECT_EQ(a.windows, b.windows) << what;
    ASSERT_EQ(a.meter.windows.size(), b.meter.windows.size()) << what;
    for (std::size_t w = 0; w < a.meter.windows.size(); ++w) {
        SCOPED_TRACE(what + ": meter window " + std::to_string(w));
        EXPECT_EQ(a.meter.windows[w].end, b.meter.windows[w].end);
        EXPECT_EQ(a.meter.windows[w].committed_per_channel,
                  b.meter.windows[w].committed_per_channel);
        EXPECT_EQ(a.meter.windows[w].endorse_cpu_per_org,
                  b.meter.windows[w].endorse_cpu_per_org);
        EXPECT_EQ(a.meter.windows[w].completed_per_client,
                  b.meter.windows[w].completed_per_client);
        EXPECT_EQ(a.meter.windows[w].channel_jain, b.meter.windows[w].channel_jain);
        EXPECT_EQ(a.meter.windows[w].client_jain, b.meter.windows[w].client_jain);
    }
    EXPECT_EQ(a.meter.committed_per_channel, b.meter.committed_per_channel) << what;
    EXPECT_EQ(a.meter.completed_per_client, b.meter.completed_per_client) << what;
    EXPECT_EQ(a.meter.endorse_cpu_per_org, b.meter.endorse_cpu_per_org) << what;
}

// -- configuration validation + defaulting ----------------------------------

TEST(MultiChannelConfig, RejectsZeroChannels) {
    MultiChannelConfig cfg;
    cfg.channels.clear();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(MultiChannelConfig, RejectsDuplicateChannelIds) {
    MultiChannelConfig cfg;
    cfg.channels.assign(2, ChannelSpec{});
    cfg.channels[0].id = ChannelId{7};
    cfg.channels[1].id = ChannelId{7};
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    // Auto ids collide with an explicit id too: base id 1 + index.
    MultiChannelConfig auto_cfg;
    auto_cfg.channels.assign(2, ChannelSpec{});
    auto_cfg.channels[1].id = ChannelId{1};  // == auto id of channel 0
    EXPECT_THROW(auto_cfg.validate(), std::invalid_argument);
}

TEST(MultiChannelConfig, RejectsNonPositiveSyncWindow) {
    MultiChannelConfig cfg;
    cfg.sync_window = Duration::zero();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(MultiChannelConfig, AutoIdsFollowBaseChannelId) {
    MultiChannelConfig cfg = MultiChannelConfig::uniform(NetworkConfig{}, 3);
    EXPECT_NO_THROW(cfg.validate());
    // Base channel id is 1 (policy::ChannelConfig default).
    EXPECT_EQ(cfg.resolved_id(0).value(), 1u);
    EXPECT_EQ(cfg.resolved_id(1).value(), 2u);
    EXPECT_EQ(cfg.resolved_id(2).value(), 3u);
    cfg.channels[1].id = ChannelId{40};
    EXPECT_EQ(cfg.resolved_id(1).value(), 40u);
}

TEST(MultiChannelConfig, PerChannelPolicyDefaulting) {
    MultiChannelConfig cfg = MultiChannelConfig::uniform(NetworkConfig{}, 2);
    cfg.base.channel.block_size = 200;
    cfg.channels[1].priority_enabled = false;
    cfg.channels[1].block_size = 64;
    cfg.channels[1].block_timeout = Duration::millis(500);
    cfg.channels[1].consolidation_spec = "kofn:3";

    // Channel 0: pure base settings, only the id differs.
    const NetworkConfig c0 = cfg.channel_config(0);
    EXPECT_TRUE(c0.channel.priority_enabled);
    EXPECT_EQ(c0.channel.block_size, 200u);
    EXPECT_EQ(c0.channel.consolidation_spec, cfg.base.channel.consolidation_spec);
    EXPECT_EQ(c0.channel.id.value(), 1u);

    // Channel 1: overrides applied, everything else inherited.
    const NetworkConfig c1 = cfg.channel_config(1);
    EXPECT_FALSE(c1.channel.priority_enabled);
    EXPECT_EQ(c1.channel.block_size, 64u);
    EXPECT_EQ(c1.channel.block_timeout, Duration::millis(500));
    EXPECT_EQ(c1.channel.consolidation_spec, "kofn:3");
    EXPECT_EQ(c1.channel.priority_levels, cfg.base.channel.priority_levels);
    EXPECT_EQ(c1.channel.id.value(), 2u);
    EXPECT_EQ(c1.orgs, cfg.base.orgs);
}

TEST(MultiChannelConfig, ChannelSeedsAreDistinctAndStable) {
    EXPECT_EQ(channel_seed(42, 0), 42u);  // channel 0 keeps the run seed
    std::vector<std::uint64_t> seeds;
    for (std::size_t i = 0; i < 16; ++i) seeds.push_back(channel_seed(42, i));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
    EXPECT_EQ(channel_seed(42, 5), channel_seed(42, 5));
    EXPECT_NE(channel_seed(42, 5), channel_seed(43, 5));
}

// -- legacy byte-identity ----------------------------------------------------

TEST(MultiChannelEngine, OneChannelMatchesLegacyRunOnceByteForByte) {
    const std::uint64_t seed = 42;
    harness::MultiChannelSpec spec = small_spec(1, seed);

    // Legacy single-network run with a trace attached the same way.
    harness::ExperimentSpec legacy;
    legacy.config = spec.config.channel_config(0);
    const std::size_t clients = legacy.config.clients;
    legacy.make_workload = [clients] { return small_workload(clients, 120); };
    obs::TraceSink sink;
    legacy.instrument = [&sink](FabricNetwork& net, unsigned) {
        net.set_trace_sink(&sink);
    };
    std::uint64_t chain_fp = 0;
    std::uint64_t state_fp = 0;
    legacy.run_probe = [&](FabricNetwork& net, std::map<std::string, double>&) {
        chain_fp = net.peers().front()->chain().chain_fingerprint();
        state_fp = net.peers().front()->state().fingerprint();
    };
    const harness::RunResult gold = harness::run_once(legacy, seed);
    std::ostringstream gold_metrics;
    write_metrics_json(gold_metrics, gold.metrics, nullptr);
    std::ostringstream gold_trace;
    sink.write_jsonl(gold_trace);

    ThreadPool pool(4);
    for (ThreadPool* engine_pool : {static_cast<ThreadPool*>(nullptr), &pool}) {
        SCOPED_TRACE(engine_pool ? "parallel engine" : "serial engine");
        const harness::MultiChannelResult r =
            harness::run_multi_channel(spec, engine_pool);
        ASSERT_EQ(r.channels.size(), 1u);
        EXPECT_EQ(r.channels[0].metrics_json, gold_metrics.str());
        EXPECT_EQ(r.channels[0].trace_jsonl, gold_trace.str());
        EXPECT_EQ(r.channels[0].chain_fingerprint, chain_fp);
        EXPECT_EQ(r.channels[0].state_fingerprint, state_fp);
        EXPECT_FALSE(r.channels[0].trace_jsonl.find("\"ch\":") == 0)
            << "1-channel traces must stay untagged";
    }
}

// -- serial vs parallel differential ------------------------------------------

TEST(MultiChannelEngine, SerialAndParallelEnginesAgreeAcrossSeedsAndCounts) {
    ThreadPool pool(4);
    Rng rng(20260808);
    for (const std::size_t channels : {2u, 3u, 5u}) {
        for (int rep = 0; rep < 2; ++rep) {
            const std::uint64_t seed = rng.next_u64();
            harness::MultiChannelSpec spec = small_spec(channels, seed, 80);
            const harness::MultiChannelResult serial =
                harness::run_multi_channel(spec, nullptr);
            const harness::MultiChannelResult parallel =
                harness::run_multi_channel(spec, &pool);
            expect_identical(serial, parallel,
                             std::to_string(channels) + " channels, seed " +
                                 std::to_string(seed));
            // Channels must actually differ from each other (distinct seeds).
            EXPECT_NE(serial.channels[0].trace_jsonl.substr(0, 400),
                      serial.channels[1].trace_jsonl.substr(0, 400));
        }
    }
}

TEST(MultiChannelEngine, HeterogeneousChannelPoliciesRunAndStayConsistent) {
    harness::MultiChannelSpec spec = small_spec(2, 7, 100);
    spec.config.channels[1].priority_enabled = false;  // vanilla-Fabric channel
    ThreadPool pool(2);
    const harness::MultiChannelResult serial =
        harness::run_multi_channel(spec, nullptr);
    const harness::MultiChannelResult parallel =
        harness::run_multi_channel(spec, &pool);
    expect_identical(serial, parallel, "heterogeneous policies");
    for (const auto& ch : serial.channels) {
        EXPECT_TRUE(ch.consistent);
        EXPECT_GT(ch.blocks, 0u);
    }
}

// -- engine-knob invariance ---------------------------------------------------

TEST(MultiChannelEngine, SyncWindowNeverChangesPerChannelBytes) {
    harness::MultiChannelSpec coarse = small_spec(3, 1234, 80);
    harness::MultiChannelSpec fine = coarse;
    coarse.config.sync_window = Duration::millis(400);
    fine.config.sync_window = Duration::millis(50);
    const harness::MultiChannelResult a = harness::run_multi_channel(coarse);
    const harness::MultiChannelResult b = harness::run_multi_channel(fine);
    ASSERT_EQ(a.channels.size(), b.channels.size());
    for (std::size_t i = 0; i < a.channels.size(); ++i) {
        EXPECT_EQ(a.channels[i].metrics_json, b.channels[i].metrics_json);
        EXPECT_EQ(a.channels[i].trace_jsonl, b.channels[i].trace_jsonl);
        EXPECT_EQ(a.channels[i].chain_fingerprint, b.channels[i].chain_fingerprint);
    }
    // The meter cadence is the knob that DOES move; cumulative totals agree.
    EXPECT_GT(b.windows, a.windows);
    EXPECT_EQ(a.meter.committed_per_channel, b.meter.committed_per_channel);
    EXPECT_EQ(a.meter.completed_per_client, b.meter.completed_per_client);
}

TEST(MultiChannelEngine, PoolSizeNeverChangesResults) {
    const harness::MultiChannelSpec spec = small_spec(4, 99, 60);
    ThreadPool small(2);
    ThreadPool large(8);
    const harness::MultiChannelResult a = harness::run_multi_channel(spec, &small);
    const harness::MultiChannelResult b = harness::run_multi_channel(spec, &large);
    expect_identical(a, b, "pool 2 vs pool 8");
}

// -- observability ------------------------------------------------------------

TEST(MultiChannelEngine, GaugesArePrefixedPerChannel) {
    MultiChannelConfig cfg = MultiChannelConfig::uniform(NetworkConfig{}, 2);
    MultiChannelNetwork net(std::move(cfg));
    obs::MetricRegistry registry;
    net.register_metrics(registry);  // duplicate names would throw here
    const auto& names = registry.names();
    const auto has = [&names](const std::string& n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(has("ch1_txs_valid"));
    EXPECT_TRUE(has("ch2_txs_valid"));
    EXPECT_TRUE(has("ch1_blocks_cut"));
    EXPECT_TRUE(has("ch2_queue_depth_p0"));
    EXPECT_FALSE(has("txs_valid"));  // nothing unprefixed
}

TEST(MultiChannelEngine, MultiChannelTracesCarryChannelTags) {
    ThreadPool pool(2);
    const harness::MultiChannelSpec spec = small_spec(2, 11, 40);
    const harness::MultiChannelResult r = harness::run_multi_channel(spec, &pool);
    ASSERT_EQ(r.channels.size(), 2u);
    for (const auto& ch : r.channels) {
        ASSERT_FALSE(ch.trace_jsonl.empty());
        const std::string expect =
            "{\"ch\":" + std::to_string(ch.id.value()) + ",";
        std::istringstream lines(ch.trace_jsonl);
        std::string line;
        while (std::getline(lines, line)) {
            ASSERT_EQ(line.rfind(expect, 0), 0u)
                << "line missing channel tag: " << line;
        }
    }
}

TEST(MultiChannelEngine, MeterTracksCommitsAndJain) {
    const harness::MultiChannelSpec spec = small_spec(2, 3, 100);
    const harness::MultiChannelResult r = harness::run_multi_channel(spec);
    std::uint64_t total = 0;
    for (const std::uint64_t c : r.meter.committed_per_channel) total += c;
    EXPECT_EQ(total, 200u);  // both channels drain their whole workload
    EXPECT_GT(r.windows, 0u);
    EXPECT_EQ(r.meter.windows.size(), r.windows);
    EXPECT_GT(r.meter.channel_jain_overall(), 0.9);  // uniform channels
    EXPECT_LE(r.meter.channel_jain_min, 1.0);
    // Endorse CPU accrued on every org, on both channels.
    for (const double cpu : r.meter.endorse_cpu_per_org) EXPECT_GT(cpu, 0.0);
}

}  // namespace
}  // namespace fl::core
