#include "policy/endorsement_policy.h"

#include <gtest/gtest.h>

namespace fl::policy {
namespace {

std::set<OrgId> orgs(std::initializer_list<std::uint64_t> ids) {
    std::set<OrgId> out;
    for (const std::uint64_t id : ids) {
        out.insert(OrgId{id});
    }
    return out;
}

TEST(EndorsementPolicyTest, SingleOrg) {
    const auto p = EndorsementPolicy::org(OrgId{2});
    EXPECT_TRUE(p.satisfied_by(orgs({2})));
    EXPECT_TRUE(p.satisfied_by(orgs({1, 2, 3})));
    EXPECT_FALSE(p.satisfied_by(orgs({1, 3})));
    EXPECT_FALSE(p.satisfied_by({}));
    EXPECT_EQ(p.min_orgs_required(), 1u);
}

TEST(EndorsementPolicyTest, AllOf) {
    const auto p = EndorsementPolicy::all_of(
        {EndorsementPolicy::org(OrgId{0}), EndorsementPolicy::org(OrgId{1})});
    EXPECT_TRUE(p.satisfied_by(orgs({0, 1})));
    EXPECT_FALSE(p.satisfied_by(orgs({0})));
    EXPECT_FALSE(p.satisfied_by(orgs({1})));
    EXPECT_EQ(p.min_orgs_required(), 2u);
}

TEST(EndorsementPolicyTest, AnyOf) {
    const auto p = EndorsementPolicy::any_of(
        {EndorsementPolicy::org(OrgId{0}), EndorsementPolicy::org(OrgId{1})});
    EXPECT_TRUE(p.satisfied_by(orgs({0})));
    EXPECT_TRUE(p.satisfied_by(orgs({1})));
    EXPECT_FALSE(p.satisfied_by(orgs({2})));
    EXPECT_EQ(p.min_orgs_required(), 1u);
}

TEST(EndorsementPolicyTest, KOfN) {
    const auto p = EndorsementPolicy::k_of_n_orgs(2, 4);
    EXPECT_FALSE(p.satisfied_by(orgs({0})));
    EXPECT_TRUE(p.satisfied_by(orgs({0, 3})));
    EXPECT_TRUE(p.satisfied_by(orgs({0, 1, 2, 3})));
    EXPECT_FALSE(p.satisfied_by(orgs({4, 5})));  // outside the set
    EXPECT_EQ(p.min_orgs_required(), 2u);
}

TEST(EndorsementPolicyTest, NestedPolicy) {
    // (Org0 AND Org1) OR (2 of {Org2, Org3, Org4})
    const auto p = EndorsementPolicy::any_of(
        {EndorsementPolicy::all_of(
             {EndorsementPolicy::org(OrgId{0}), EndorsementPolicy::org(OrgId{1})}),
         EndorsementPolicy::out_of(2, {EndorsementPolicy::org(OrgId{2}),
                                       EndorsementPolicy::org(OrgId{3}),
                                       EndorsementPolicy::org(OrgId{4})})});
    EXPECT_TRUE(p.satisfied_by(orgs({0, 1})));
    EXPECT_TRUE(p.satisfied_by(orgs({2, 4})));
    EXPECT_FALSE(p.satisfied_by(orgs({0, 2})));
    EXPECT_FALSE(p.satisfied_by(orgs({2})));
    EXPECT_EQ(p.min_orgs_required(), 2u);
}

TEST(EndorsementPolicyTest, OutOfValidation) {
    EXPECT_THROW(EndorsementPolicy::out_of(1, {}), std::invalid_argument);
    EXPECT_THROW(
        EndorsementPolicy::out_of(3, {EndorsementPolicy::org(OrgId{0}),
                                      EndorsementPolicy::org(OrgId{1})}),
        std::invalid_argument);
    EXPECT_THROW(EndorsementPolicy::k_of_n_orgs(1, 0), std::invalid_argument);
}

TEST(EndorsementPolicyTest, ZeroOfNAlwaysSatisfied) {
    const auto p = EndorsementPolicy::k_of_n_orgs(0, 3);
    EXPECT_TRUE(p.satisfied_by({}));
}

TEST(EndorsementPolicyTest, ToStringReadable) {
    const auto p = EndorsementPolicy::k_of_n_orgs(2, 3);
    EXPECT_EQ(p.to_string(), "OutOf(2, Org(0), Org(1), Org(2))");
}

class KofNSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KofNSweep, ExactThreshold) {
    const auto [k, n] = GetParam();
    const auto p = EndorsementPolicy::k_of_n_orgs(static_cast<std::size_t>(k),
                                                  static_cast<std::size_t>(n));
    for (int have = 0; have <= n; ++have) {
        std::set<OrgId> s;
        for (int i = 0; i < have; ++i) {
            s.insert(OrgId{static_cast<std::uint64_t>(i)});
        }
        EXPECT_EQ(p.satisfied_by(s), have >= k) << "k=" << k << " n=" << n
                                                << " have=" << have;
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, KofNSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(4, 6, 8)));

}  // namespace
}  // namespace fl::policy
