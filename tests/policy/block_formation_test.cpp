#include "policy/block_formation_policy.h"

#include <gtest/gtest.h>

#include <numeric>

namespace fl::policy {
namespace {

TEST(BlockFormationTest, ParseAndToString) {
    const auto p = BlockFormationPolicy::parse("2:3:1");
    EXPECT_EQ(p.levels(), 3u);
    EXPECT_EQ(p.weights(), (std::vector<std::uint32_t>{2, 3, 1}));
    EXPECT_EQ(p.to_string(), "2:3:1");
}

TEST(BlockFormationTest, ParseErrors) {
    EXPECT_THROW(BlockFormationPolicy::parse(""), std::invalid_argument);
    EXPECT_THROW(BlockFormationPolicy::parse("1::2"), std::invalid_argument);
    EXPECT_THROW(BlockFormationPolicy::parse("0:0:0"), std::invalid_argument);
}

TEST(BlockFormationTest, EmptyWeightsRejected) {
    EXPECT_THROW(BlockFormationPolicy(std::vector<std::uint32_t>{}),
                 std::invalid_argument);
}

TEST(BlockFormationTest, QuotasSumToBlockSize) {
    const auto p = BlockFormationPolicy::parse("2:3:1");
    const auto q = p.quotas(500);
    EXPECT_EQ(std::accumulate(q.begin(), q.end(), 0u), 500u);
    // 2:3:1 of 500 = 166.67 : 250 : 83.33 -> largest remainder.
    EXPECT_EQ(q[1], 250u);
    EXPECT_EQ(q[0] + q[2], 250u);
    EXPECT_GT(q[0], q[2]);
}

TEST(BlockFormationTest, PaperDefault121) {
    const auto q = BlockFormationPolicy::parse("1:2:1").quotas(500);
    EXPECT_EQ(q, (std::vector<std::uint32_t>{125, 250, 125}));
}

TEST(BlockFormationTest, BestEffortZeroLevels) {
    // The paper's <100:0:0>: all reserved capacity to the top level.
    const auto q = BlockFormationPolicy::parse("100:0:0").quotas(500);
    EXPECT_EQ(q, (std::vector<std::uint32_t>{500, 0, 0}));
}

TEST(BlockFormationTest, MixedZeroAndNonZero) {
    const auto q = BlockFormationPolicy::parse("1:0:1").quotas(100);
    EXPECT_EQ(q, (std::vector<std::uint32_t>{50, 0, 50}));
}

TEST(BlockFormationTest, Fractions) {
    const auto f = BlockFormationPolicy::parse("2:3:1").fractions();
    EXPECT_NEAR(f[0], 2.0 / 6.0, 1e-12);
    EXPECT_NEAR(f[1], 3.0 / 6.0, 1e-12);
    EXPECT_NEAR(f[2], 1.0 / 6.0, 1e-12);
}

class QuotaSweep : public ::testing::TestWithParam<
                       std::tuple<const char*, std::uint32_t>> {};

TEST_P(QuotaSweep, SumInvariantAndZeroPreservation) {
    const auto [spec, bs] = GetParam();
    const auto p = BlockFormationPolicy::parse(spec);
    const auto q = p.quotas(bs);
    EXPECT_EQ(std::accumulate(q.begin(), q.end(), 0u), bs);
    for (std::size_t i = 0; i < q.size(); ++i) {
        if (p.weights()[i] == 0) {
            EXPECT_EQ(q[i], 0u);
        } else if (bs >= q.size()) {
            EXPECT_GT(q[i], 0u);
        }
    }
}

TEST_P(QuotaSweep, ProportionalWithinOne) {
    const auto [spec, bs] = GetParam();
    const auto p = BlockFormationPolicy::parse(spec);
    const auto q = p.quotas(bs);
    const auto f = p.fractions();
    for (std::size_t i = 0; i < q.size(); ++i) {
        EXPECT_NEAR(static_cast<double>(q[i]), f[i] * bs, 1.0) << spec << " bs=" << bs;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByBlockSize, QuotaSweep,
    ::testing::Combine(::testing::Values("1:2:1", "1:1:1", "2:3:1", "3:5:1",
                                         "100:0:0", "7:11:3", "1:0:2"),
                       ::testing::Values(10u, 100u, 500u, 501u, 997u)));

}  // namespace
}  // namespace fl::policy
