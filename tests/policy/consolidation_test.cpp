#include "policy/consolidation_policy.h"

#include <gtest/gtest.h>

#include <vector>

namespace fl::policy {
namespace {

std::optional<PriorityLevel> run(const ConsolidationPolicy& p,
                                 std::vector<PriorityLevel> votes,
                                 std::uint32_t levels = 3) {
    return p.consolidate(votes, levels);
}

TEST(KOfNMatchTest, AgreementWins) {
    const KOfNMatchPolicy p(2);
    EXPECT_EQ(run(p, {1, 1, 2}), 1u);
    EXPECT_EQ(run(p, {0, 0, 0, 0}), 0u);
}

TEST(KOfNMatchTest, InsufficientAgreementInvalid) {
    const KOfNMatchPolicy p(3);
    EXPECT_FALSE(run(p, {0, 1, 2}).has_value());
    EXPECT_FALSE(run(p, {1, 1, 2, 2}).has_value());
}

TEST(KOfNMatchTest, MostAgreedValueWins) {
    const KOfNMatchPolicy p(2);
    EXPECT_EQ(run(p, {2, 2, 2, 1, 1}), 2u);
}

TEST(KOfNMatchTest, TieResolvesToHigherPriority) {
    const KOfNMatchPolicy p(2);
    EXPECT_EQ(run(p, {1, 1, 2, 2}), 1u);  // smaller level = higher priority
}

TEST(KOfNMatchTest, EmptyVotesInvalid) {
    const KOfNMatchPolicy p(1);
    EXPECT_FALSE(run(p, {}).has_value());
}

TEST(KOfNMatchTest, KZeroRejected) {
    EXPECT_THROW(KOfNMatchPolicy(0), std::invalid_argument);
}

TEST(AverageTest, RoundsToNearest) {
    const AveragePolicy p;
    EXPECT_EQ(run(p, {0, 1}), 1u);     // 0.5 rounds to 1 (llround half away)
    EXPECT_EQ(run(p, {0, 0, 1}), 0u);  // 0.33 -> 0
    EXPECT_EQ(run(p, {2, 2, 1}), 2u);  // 1.67 -> 2
    EXPECT_EQ(run(p, {1, 1, 1}), 1u);
}

TEST(AverageTest, ClampsToLevels) {
    const AveragePolicy p;
    EXPECT_EQ(run(p, {5, 5, 5}, 3), 2u);
}

TEST(MedianTest, LowerMedian) {
    const MedianPolicy p;
    EXPECT_EQ(run(p, {0, 1, 2}), 1u);
    EXPECT_EQ(run(p, {0, 1, 2, 2}), 1u);  // lower median on even count
    EXPECT_EQ(run(p, {2}), 2u);
}

TEST(BestWorstTest, Extremes) {
    const BestPolicy best;
    const WorstPolicy worst;
    EXPECT_EQ(run(best, {2, 0, 1}), 0u);
    EXPECT_EQ(run(worst, {2, 0, 1}), 2u);
}

TEST(PolicyFactoryTest, ParsesSpecs) {
    EXPECT_EQ(make_consolidation_policy("kofn:2")->name(), "kofn:2");
    EXPECT_EQ(make_consolidation_policy("average")->name(), "average");
    EXPECT_EQ(make_consolidation_policy("median")->name(), "median");
    EXPECT_EQ(make_consolidation_policy("best")->name(), "best");
    EXPECT_EQ(make_consolidation_policy("worst")->name(), "worst");
    EXPECT_THROW(make_consolidation_policy("nonsense"), std::invalid_argument);
}

TEST(PolicyFactoryTest, EmptyVotesAlwaysInvalid) {
    for (const char* spec : {"kofn:1", "average", "median", "best", "worst"}) {
        const auto p = make_consolidation_policy(spec);
        EXPECT_FALSE(p->consolidate({}, 3).has_value()) << spec;
    }
}

class UnanimousSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(UnanimousSweep, UnanimousVotesPassThrough) {
    const auto [spec, level] = GetParam();
    const auto p = make_consolidation_policy(spec);
    const std::vector<PriorityLevel> votes(4, static_cast<PriorityLevel>(level));
    EXPECT_EQ(p->consolidate(votes, 3), static_cast<PriorityLevel>(level));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, UnanimousSweep,
    ::testing::Combine(::testing::Values("kofn:2", "kofn:4", "average", "median",
                                         "best", "worst"),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace fl::policy
