// Byzantine ordering-service behaviour (paper §3.3's note): committers
// re-derive the priority consolidation from the endorsers' *signed* votes,
// so an orderer that promotes transactions to a higher priority class gets
// those transactions invalidated at commit time.
#include <gtest/gtest.h>

#include "core/fabric_network.h"
#include "harness/workload.h"

namespace fl {
namespace {

core::NetworkConfig byzantine_config(bool byzantine) {
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 2;
    cfg.clients = 2;
    cfg.seed = 61;
    cfg.channel.priority_enabled = true;
    cfg.channel.block_size = 20;
    cfg.channel.block_timeout = Duration::millis(150);
    cfg.osn_params.byzantine_promote_all = byzantine;
    return cfg;
}

TEST(ByzantineOsnTest, PromotedTransactionsInvalidatedByCommitters) {
    core::FabricNetwork net(byzantine_config(true));
    std::uint64_t valid = 0;
    std::uint64_t invalid = 0;
    std::vector<TxValidationCode> codes;
    net.set_tx_sink([&](const client::TxRecord& r) {
        if (r.failed_before_ordering) return;
        is_valid(r.code) ? ++valid : ++invalid;
        codes.push_back(r.code);
    });
    // record_keeper consolidates to level 2; the byzantine OSN stamps 0.
    for (int i = 0; i < 30; ++i) {
        net.clients()[0]->submit("record_keeper", "log",
                                 {"r" + std::to_string(i), "x"});
    }
    net.run();
    EXPECT_EQ(valid, 0u);
    EXPECT_EQ(invalid, 30u);
    for (const auto code : codes) {
        EXPECT_EQ(code, TxValidationCode::kBadPriorityConsolidation);
    }
    // Peers still converge on the (all-invalid) chain.
    EXPECT_TRUE(net.chains_identical());
    EXPECT_TRUE(net.states_identical());
}

TEST(ByzantineOsnTest, HonestOsnsUnaffectedControl) {
    core::FabricNetwork net(byzantine_config(false));
    std::uint64_t valid = 0;
    net.set_tx_sink([&valid](const client::TxRecord& r) {
        if (is_valid(r.code)) ++valid;
    });
    for (int i = 0; i < 30; ++i) {
        net.clients()[0]->submit("record_keeper", "log",
                                 {"r" + std::to_string(i), "x"});
    }
    net.run();
    EXPECT_EQ(valid, 30u);
}

TEST(ByzantineOsnTest, PromotionGainsNothing) {
    // Even before invalidation, the promoted transactions cannot be read
    // back: no byzantine-promoted write reaches the world state.
    core::FabricNetwork net(byzantine_config(true));
    net.set_tx_sink([](const client::TxRecord&) {});
    net.clients()[0]->submit("record_keeper", "log", {"stolen", "gold"});
    net.run();
    EXPECT_FALSE(net.peers().front()->state().get("rec/stolen").has_value());
}

}  // namespace
}  // namespace fl
