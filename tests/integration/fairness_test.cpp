// Integration tests for the paper's headline behaviours: prioritization
// under overload (Figures 3/5) and per-client resource fairness (Figure 6),
// at reduced scale so they run in seconds.
#include <gtest/gtest.h>

#include "core/fabric_network.h"
#include "harness/experiment.h"
#include "harness/workload.h"

namespace fl {
namespace {

core::NetworkConfig overload_config(bool priority_enabled, std::uint64_t seed) {
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = seed;
    cfg.channel.priority_enabled = priority_enabled;
    cfg.channel.priority_levels = 3;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("2:3:1");
    cfg.channel.block_size = 100;
    cfg.channel.block_timeout = Duration::millis(500);
    // Orderer consume loop at 5 ms/record => capacity ~200 tps.
    cfg.osn_params.consume_per_record_cost = Duration::millis(5);
    cfg.osn_params.priority_consume_overhead = Duration::micros(100);
    cfg.osn_params.consume_burst = 24;  // scaled to the small block size
    return cfg;
}

harness::Workload mixed_load(std::size_t clients, double total_tps,
                             std::uint64_t total_txs) {
    harness::Workload w;
    for (std::size_t c = 0; c < clients; ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = total_tps / static_cast<double>(clients);
        load.generate = harness::priority_class_mix({1, 2, 1});
        w.loads.push_back(std::move(load));
    }
    w.distribute_total(total_txs);
    return w;
}

harness::AggregateResult run(bool priority_enabled, double total_tps,
                             std::uint64_t total_txs, unsigned runs = 2) {
    harness::ExperimentSpec spec;
    spec.config = overload_config(priority_enabled, 0);
    spec.make_workload = [total_tps, total_txs] {
        return mixed_load(3, total_tps, total_txs);
    };
    spec.runs = runs;
    spec.base_seed = 4242;
    return harness::run_experiment(spec);
}

TEST(OverloadTest, UnderCapacityPrioritiesBarelyMatter) {
    // 120 tps << 200 tps capacity: every class near the baseline.
    const auto with = run(true, 120.0, 600);
    const auto without = run(false, 120.0, 600);
    ASSERT_TRUE(with.all_consistent);
    const double base = without.overall_latency.mean();
    ASSERT_GT(base, 0.0);
    for (const PriorityLevel level : {0u, 1u, 2u}) {
        EXPECT_NEAR(with.priority_latency(level) / base, 1.0, 0.35)
            << "level " << level;
    }
}

TEST(OverloadTest, OverCapacityHighPriorityProtected) {
    // 250 tps > 200 tps capacity: high priority must beat the baseline
    // clearly and low priority must pay for it.
    const auto with = run(true, 250.0, 1500);
    const auto without = run(false, 250.0, 1500);
    ASSERT_TRUE(with.all_consistent);
    ASSERT_TRUE(without.all_consistent);
    const double base = without.overall_latency.mean();
    EXPECT_LT(with.priority_latency(0), 0.8 * base);
    EXPECT_GT(with.priority_latency(2), 1.2 * base);
    // And the ordering between classes is strict.
    EXPECT_LT(with.priority_latency(0), with.priority_latency(1));
    EXPECT_LT(with.priority_latency(1), with.priority_latency(2));
}

TEST(OverloadTest, EveryTransactionEventuallyCommits) {
    // Starvation-freedom: even the overloaded run commits everything.
    const auto with = run(true, 250.0, 1500, /*runs=*/1);
    EXPECT_EQ(with.total_committed, 1500u);
    EXPECT_EQ(with.total_client_failures, 0u);
}

// ------------------------------------------------------------- Figure 6 (mini)

core::NetworkConfig fairness_config(bool priority_enabled, std::uint64_t seed) {
    auto cfg = overload_config(priority_enabled, seed);
    // Fair share per client: policy 1:1:1, one class per client.
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("1:1:1");
    cfg.calculator_factory = [] {
        return std::make_unique<peer::ClientClassCalculator>(
            std::unordered_map<ClientId, PriorityLevel>{
                {ClientId{0}, 0}, {ClientId{1}, 1}, {ClientId{2}, 2}},
            0);
    };
    return cfg;
}

harness::AggregateResult run_flood(bool priority_enabled, double flood_tps) {
    harness::ExperimentSpec spec;
    spec.config = fairness_config(priority_enabled, 0);
    spec.make_workload = [flood_tps] {
        harness::Workload w;
        for (std::size_t c = 0; c < 3; ++c) {
            harness::LoadSpec load;
            load.client_index = c;
            load.tps = c == 0 ? flood_tps : 60.0;
            load.generate = harness::single_chaincode("record_keeper");
            w.loads.push_back(std::move(load));
        }
        w.distribute_total(
            static_cast<std::uint64_t>((flood_tps + 120.0) * 6.0));  // ~6 s of load
        return w;
    };
    spec.runs = 2;
    spec.base_seed = 777;
    return harness::run_experiment(spec);
}

TEST(FairnessTest, FloodingHurtsEveryoneWithoutPriority) {
    const auto calm = run_flood(false, 60.0);   // 180 tps total, under capacity
    const auto flood = run_flood(false, 300.0);  // C1 floods: 420 tps total
    const double calm_c2 = calm.client_latency(1);
    const double flood_c2 = flood.client_latency(1);
    ASSERT_GT(calm_c2, 0.0);
    // Victims' latency degrades substantially (unfair).
    EXPECT_GT(flood_c2 / calm_c2, 1.5);
}

TEST(FairnessTest, FloodingIsolatedWithPriority) {
    const auto calm = run_flood(true, 60.0);
    const auto flood = run_flood(true, 300.0);
    ASSERT_TRUE(flood.all_consistent);
    // Victims stay near their calm latency...
    for (const std::uint64_t victim : {1ull, 2ull}) {
        const double ratio =
            flood.client_latency(victim) / calm.client_latency(victim);
        EXPECT_LT(ratio, 1.35) << "victim client " << victim;
    }
    // ...while the flooder pays.
    EXPECT_GT(flood.client_latency(0) / calm.client_latency(0), 2.0);
}

}  // namespace
}  // namespace fl
