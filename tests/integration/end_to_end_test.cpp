// End-to-end integration: full networks driving the complete paper pipeline.
#include <gtest/gtest.h>

#include "core/fabric_network.h"
#include "harness/workload.h"

namespace fl {
namespace {

core::NetworkConfig small_config(bool priority_enabled, std::uint64_t seed = 11) {
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = seed;
    cfg.channel.priority_enabled = priority_enabled;
    cfg.channel.priority_levels = 3;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("2:3:1");
    cfg.channel.block_size = 50;
    cfg.channel.block_timeout = Duration::millis(200);
    return cfg;
}

struct Outcome {
    std::vector<client::TxRecord> records;
    core::MetricsCollector metrics;
};

Outcome drive(core::FabricNetwork& net, std::uint64_t total, double tps_per_client,
          harness::TxGenerator (*gen_factory)() = nullptr) {
    Outcome out;
    net.set_tx_sink([&out](const client::TxRecord& r) {
        out.records.push_back(r);
        out.metrics.record(r);
    });
    harness::Workload workload;
    for (std::size_t c = 0; c < net.clients().size(); ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = tps_per_client;
        load.generate = gen_factory ? gen_factory()
                                    : harness::priority_class_mix({1, 2, 1});
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(total);
    harness::WorkloadDriver driver(net, std::move(workload), Rng(net.config().seed));
    driver.start();
    net.run();
    return out;
}

TEST(EndToEndTest, AllTransactionsCommitUnderLightLoad) {
    core::FabricNetwork net(small_config(true));
    const Outcome out = drive(net, 300, 50.0);
    EXPECT_EQ(out.metrics.committed_valid(), 300u);
    EXPECT_EQ(out.metrics.committed_invalid(), 0u);
    EXPECT_EQ(out.metrics.client_failures(), 0u);
}

TEST(EndToEndTest, ChainsAndStatesConvergeAcrossPeers) {
    core::FabricNetwork net(small_config(true));
    drive(net, 300, 50.0);
    EXPECT_TRUE(net.chains_identical());
    EXPECT_TRUE(net.states_identical());
    EXPECT_TRUE(net.osn_blocks_identical());
    for (const auto& peer : net.peers()) {
        EXPECT_TRUE(peer->chain().verify_chain());
        EXPECT_GT(peer->chain().height(), 0u);
    }
}

TEST(EndToEndTest, BaselineModeAlsoConverges) {
    core::FabricNetwork net(small_config(false));
    const Outcome out = drive(net, 300, 50.0);
    EXPECT_EQ(out.metrics.committed_valid(), 300u);
    EXPECT_TRUE(net.chains_identical());
    EXPECT_TRUE(net.osn_blocks_identical());
}

TEST(EndToEndTest, DeterministicAcrossIdenticalSeeds) {
    core::FabricNetwork a(small_config(true, 99));
    core::FabricNetwork b(small_config(true, 99));
    const Outcome ra = drive(a, 200, 50.0);
    const Outcome rb = drive(b, 200, 50.0);
    ASSERT_EQ(ra.records.size(), rb.records.size());
    EXPECT_DOUBLE_EQ(ra.metrics.avg_latency(), rb.metrics.avg_latency());
    EXPECT_EQ(a.peers().front()->chain().chain_fingerprint(),
              b.peers().front()->chain().chain_fingerprint());
}

TEST(EndToEndTest, DifferentSeedsDiffer) {
    core::FabricNetwork a(small_config(true, 1));
    core::FabricNetwork b(small_config(true, 2));
    const Outcome ra = drive(a, 200, 50.0);
    const Outcome rb = drive(b, 200, 50.0);
    EXPECT_NE(ra.metrics.avg_latency(), rb.metrics.avg_latency());
}

TEST(EndToEndTest, PriorityLevelsTaggedByChaincode) {
    core::FabricNetwork net(small_config(true));
    const Outcome out = drive(net, 400, 60.0);
    ASSERT_EQ(out.metrics.by_priority().size(), 3u);
    // Arrival ratio 1:2:1 -> counts roughly 100:200:100.
    const auto& by_priority = out.metrics.by_priority();
    EXPECT_NEAR(static_cast<double>(by_priority.at(1).count()),
                static_cast<double>(by_priority.at(0).count() +
                                    by_priority.at(2).count()),
                80.0);
}

TEST(EndToEndTest, CommittedStateMatchesWorkload) {
    core::FabricNetwork net(small_config(true));
    drive(net, 200, 50.0);
    // Every committed create/log wrote exactly one unique key: state size
    // equals (committed account-creates) + (shipment creates write 3 keys)
    // + (record logs write 1).  Just sanity-check non-trivial state and
    // agreement between two peers' stores.
    EXPECT_GT(net.peers().front()->state().key_count(), 100u);
    EXPECT_EQ(net.peers().front()->state().fingerprint(),
              net.peers().back()->state().fingerprint());
}

TEST(EndToEndTest, ClientFairnessCalculatorRoutesPerClient) {
    auto cfg = small_config(true);
    cfg.calculator_factory = [] {
        return std::make_unique<peer::ClientClassCalculator>(
            std::unordered_map<ClientId, PriorityLevel>{
                {ClientId{0}, 0}, {ClientId{1}, 1}, {ClientId{2}, 2}},
            0);
    };
    core::FabricNetwork net(cfg);
    const Outcome out = drive(net, 300, 50.0, +[] {
        return harness::single_chaincode("record_keeper");
    });
    EXPECT_EQ(out.metrics.committed_valid(), 300u);
    // Each client's txs landed in its own priority level.
    for (const auto& record : out.records) {
        EXPECT_EQ(record.priority, record.client.value());
    }
}

TEST(EndToEndTest, ContendedWorkloadInvalidatesSomeTransactions) {
    auto cfg = small_config(true);
    cfg.channel.block_size = 30;
    core::FabricNetwork net(cfg);
    harness::seed_hot_accounts(net, 4);
    const Outcome out = drive(net, 300, 80.0, +[] {
        return harness::contended_transfers(4);
    });
    // With 4 hot accounts at 240 tps and multi-tx blocks, intra-block
    // conflicts are certain; invalid txs must be reported, and peers must
    // still converge.
    // A few transactions may also die at endorsement time when endorsers
    // simulate against divergent mid-commit states (real Fabric behaviour
    // under an all-orgs endorsement policy).
    EXPECT_GT(out.metrics.committed_invalid(), 0u);
    EXPECT_GT(out.metrics.committed_valid(), 0u);
    EXPECT_EQ(out.metrics.total(), 300u);
    EXPECT_LT(out.metrics.client_failures(), 30u);
    EXPECT_TRUE(net.states_identical());
    EXPECT_TRUE(net.chains_identical());
}

TEST(EndToEndTest, SeededStateVisibleToChaincode) {
    core::FabricNetwork net(small_config(true));
    net.seed_state("acct/genesis", "1000");
    net.set_tx_sink([](const client::TxRecord&) {});
    net.clients()[0]->submit("asset_transfer", "query", {"genesis"});
    net.run();
    EXPECT_EQ(net.clients()[0]->completed(), 1u);
}

}  // namespace
}  // namespace fl
