#include "chaincode/chaincode.h"

#include <gtest/gtest.h>

#include "chaincode/analytics.h"
#include "chaincode/asset_transfer.h"
#include "chaincode/record_keeper.h"
#include "chaincode/registry.h"
#include "chaincode/supply_chain.h"

namespace fl::chaincode {
namespace {

using ledger::KvWrite;
using ledger::Version;
using ledger::WorldState;

// ---------------------------------------------------------------- TxContext

TEST(TxContextTest, GetRecordsReadVersion) {
    WorldState ws;
    ws.apply(KvWrite{"k", "v", false}, Version{3, 1});
    TxContext ctx(ws);
    EXPECT_EQ(ctx.get("k"), "v");
    ASSERT_EQ(ctx.rwset().reads.size(), 1u);
    EXPECT_EQ(ctx.rwset().reads[0].key, "k");
    EXPECT_EQ(ctx.rwset().reads[0].version, (Version{3, 1}));
}

TEST(TxContextTest, GetAbsentRecordsNullVersion) {
    WorldState ws;
    TxContext ctx(ws);
    EXPECT_FALSE(ctx.get("missing").has_value());
    ASSERT_EQ(ctx.rwset().reads.size(), 1u);
    EXPECT_FALSE(ctx.rwset().reads[0].version.has_value());
}

TEST(TxContextTest, RepeatedReadRecordedOnce) {
    WorldState ws;
    ws.apply(KvWrite{"k", "v", false}, Version{1, 0});
    TxContext ctx(ws);
    (void)ctx.get("k");
    (void)ctx.get("k");
    EXPECT_EQ(ctx.rwset().reads.size(), 1u);
}

TEST(TxContextTest, ReadYourOwnWrites) {
    WorldState ws;
    ws.apply(KvWrite{"k", "old", false}, Version{1, 0});
    TxContext ctx(ws);
    ctx.put("k", "new");
    EXPECT_EQ(ctx.get("k"), "new");
    // The read was served from the pending write: no read recorded.
    EXPECT_TRUE(ctx.rwset().reads.empty());
}

TEST(TxContextTest, ReadYourOwnDelete) {
    WorldState ws;
    ws.apply(KvWrite{"k", "v", false}, Version{1, 0});
    TxContext ctx(ws);
    ctx.del("k");
    EXPECT_FALSE(ctx.get("k").has_value());
}

TEST(TxContextTest, LastWriteWins) {
    WorldState ws;
    TxContext ctx(ws);
    ctx.put("k", "first");
    ctx.put("k", "second");
    EXPECT_EQ(ctx.get("k"), "second");
}

TEST(TxContextTest, RangeRecordsObservedVersions) {
    WorldState ws;
    ws.apply(KvWrite{"p/a", "1", false}, Version{1, 0});
    ws.apply(KvWrite{"p/b", "2", false}, Version{1, 1});
    ws.apply(KvWrite{"q/x", "3", false}, Version{1, 2});
    TxContext ctx(ws);
    const auto rows = ctx.range("p/", "p/\x7f");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].first, "p/a");
    EXPECT_EQ(rows[1].second, "2");
    ASSERT_EQ(ctx.rwset().range_reads.size(), 1u);
    EXPECT_EQ(ctx.rwset().range_reads[0].observed.size(), 2u);
}

TEST(TxContextTest, TakeRwsetMovesEverything) {
    WorldState ws;
    TxContext ctx(ws);
    ctx.put("a", "1");
    (void)ctx.get("b");
    ledger::ReadWriteSet s = std::move(ctx).take_rwset();
    EXPECT_EQ(s.writes.size(), 1u);
    EXPECT_EQ(s.reads.size(), 1u);
}

// ------------------------------------------------------------ AssetTransfer

class AssetTransferTest : public ::testing::Test {
protected:
    WorldState ws_;
    AssetTransferChaincode cc_;

    Response invoke(const std::string& fn, std::vector<std::string> args,
                    bool commit = true) {
        TxContext ctx(ws_);
        const Response r = cc_.invoke(ctx, fn, args);
        if (commit && r.ok) {
            ws_.apply_all(ctx.rwset(), Version{1, 0});
        }
        return r;
    }
};

TEST_F(AssetTransferTest, CreateAndQuery) {
    EXPECT_TRUE(invoke("create", {"alice", "100"}).ok);
    const Response q = invoke("query", {"alice"});
    EXPECT_TRUE(q.ok);
    EXPECT_EQ(q.message, "100");
}

TEST_F(AssetTransferTest, TransferMovesBalance) {
    ASSERT_TRUE(invoke("create", {"alice", "100"}).ok);
    ASSERT_TRUE(invoke("create", {"bob", "10"}).ok);
    EXPECT_TRUE(invoke("transfer", {"alice", "bob", "30"}).ok);
    EXPECT_EQ(invoke("query", {"alice"}).message, "70");
    EXPECT_EQ(invoke("query", {"bob"}).message, "40");
}

TEST_F(AssetTransferTest, TransferInsufficientFunds) {
    ASSERT_TRUE(invoke("create", {"alice", "10"}).ok);
    ASSERT_TRUE(invoke("create", {"bob", "0"}).ok);
    EXPECT_FALSE(invoke("transfer", {"alice", "bob", "30"}).ok);
}

TEST_F(AssetTransferTest, TransferUnknownAccount) {
    ASSERT_TRUE(invoke("create", {"alice", "10"}).ok);
    EXPECT_FALSE(invoke("transfer", {"alice", "ghost", "5"}).ok);
    EXPECT_FALSE(invoke("transfer", {"ghost", "alice", "5"}).ok);
}

TEST_F(AssetTransferTest, BadArguments) {
    EXPECT_FALSE(invoke("create", {"alice"}).ok);
    EXPECT_FALSE(invoke("create", {"alice", "not-a-number"}).ok);
    EXPECT_FALSE(invoke("transfer", {"a", "b", "-5"}).ok);
    EXPECT_FALSE(invoke("nosuch", {}).ok);
    EXPECT_FALSE(invoke("query", {"ghost"}).ok);
}

TEST_F(AssetTransferTest, MintCreatesThenTopsUp) {
    EXPECT_TRUE(invoke("mint", {"alice", "40"}).ok);  // create path
    EXPECT_EQ(invoke("query", {"alice"}).message, "40");
    EXPECT_TRUE(invoke("mint", {"alice", "5"}).ok);  // top-up path
    EXPECT_EQ(invoke("query", {"alice"}).message, "45");
}

TEST_F(AssetTransferTest, MintBadArguments) {
    EXPECT_FALSE(invoke("mint", {"alice"}).ok);
    EXPECT_FALSE(invoke("mint", {"alice", "-1"}).ok);
    EXPECT_FALSE(invoke("mint", {"alice", "ten"}).ok);
}

TEST_F(AssetTransferTest, MintRwsetShape) {
    // One read (existence probe) + one write — the single-key traffic the
    // Zipfian scale workload relies on.
    TxContext ctx(ws_);
    ASSERT_TRUE(cc_.invoke(ctx, "mint", std::vector<std::string>{"a", "7"}).ok);
    EXPECT_EQ(ctx.rwset().reads.size(), 1u);
    EXPECT_EQ(ctx.rwset().writes.size(), 1u);
}

TEST_F(AssetTransferTest, TransferRwsetShape) {
    ASSERT_TRUE(invoke("create", {"a", "50"}).ok);
    ASSERT_TRUE(invoke("create", {"b", "50"}).ok);
    TxContext ctx(ws_);
    ASSERT_TRUE(cc_.invoke(ctx, "transfer", std::vector<std::string>{"a", "b", "1"}).ok);
    EXPECT_EQ(ctx.rwset().reads.size(), 2u);
    EXPECT_EQ(ctx.rwset().writes.size(), 2u);
}

// ------------------------------------------------------------ RecordKeeper

TEST(RecordKeeperTest, LogIsBlindWrite) {
    WorldState ws;
    RecordKeeperChaincode cc;
    TxContext ctx(ws);
    ASSERT_TRUE(cc.invoke(ctx, "log", std::vector<std::string>{"r1", "data"}).ok);
    EXPECT_TRUE(ctx.rwset().reads.empty());  // never conflicts
    EXPECT_EQ(ctx.rwset().writes.size(), 1u);
}

TEST(RecordKeeperTest, GetReadsBack) {
    WorldState ws;
    RecordKeeperChaincode cc;
    {
        TxContext ctx(ws);
        ASSERT_TRUE(cc.invoke(ctx, "log", std::vector<std::string>{"r1", "data"}).ok);
        ws.apply_all(ctx.rwset(), Version{1, 0});
    }
    TxContext ctx(ws);
    const Response r = cc.invoke(ctx, "get", std::vector<std::string>{"r1"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.message, "data");
    EXPECT_FALSE(cc.invoke(ctx, "get", std::vector<std::string>{"nope"}).ok);
}

// ------------------------------------------------------------- SupplyChain

class SupplyChainTest : public ::testing::Test {
protected:
    WorldState ws_;
    SupplyChainChaincode cc_;
    std::uint32_t seq_ = 0;

    Response invoke(const std::string& fn, std::vector<std::string> args) {
        TxContext ctx(ws_);
        const Response r = cc_.invoke(ctx, fn, args);
        if (r.ok) {
            ws_.apply_all(ctx.rwset(), Version{1, seq_++});
        }
        return r;
    }
};

TEST_F(SupplyChainTest, LifecycleAndTrack) {
    ASSERT_TRUE(invoke("create_shipment", {"sh1", "delhi", "paris"}).ok);
    ASSERT_TRUE(invoke("update_status", {"sh1", "in-transit"}).ok);
    ASSERT_TRUE(invoke("handoff", {"sh1", "air-carrier"}).ok);
    ASSERT_TRUE(invoke("update_status", {"sh1", "delivered"}).ok);
    const Response r = invoke("track", {"sh1"});
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.message,
              "created,status=in-transit,custodian=air-carrier,status=delivered");
}

TEST_F(SupplyChainTest, DuplicateCreateRejected) {
    ASSERT_TRUE(invoke("create_shipment", {"sh1", "a", "b"}).ok);
    EXPECT_FALSE(invoke("create_shipment", {"sh1", "a", "b"}).ok);
}

TEST_F(SupplyChainTest, UpdateUnknownShipment) {
    EXPECT_FALSE(invoke("update_status", {"ghost", "x"}).ok);
    EXPECT_FALSE(invoke("handoff", {"ghost", "x"}).ok);
}

TEST_F(SupplyChainTest, UpdateIsReadModifyWrite) {
    ASSERT_TRUE(invoke("create_shipment", {"sh1", "a", "b"}).ok);
    TxContext ctx(ws_);
    ASSERT_TRUE(
        cc_.invoke(ctx, "update_status", std::vector<std::string>{"sh1", "x"}).ok);
    EXPECT_FALSE(ctx.rwset().reads.empty());  // conflicts with other updates
    EXPECT_FALSE(ctx.rwset().writes.empty());
}

// --------------------------------------------------------------- Analytics

TEST(AnalyticsTest, IngestAndReport) {
    WorldState ws;
    AnalyticsChaincode cc;
    std::uint32_t seq = 0;
    for (const char* v : {"1.0", "2.0", "3.0"}) {
        TxContext ctx(ws);
        ASSERT_TRUE(cc.invoke(ctx, "ingest",
                              std::vector<std::string>{"cpu", std::string("p") +
                                                                  v,
                                                       v})
                        .ok);
        ws.apply_all(ctx.rwset(), Version{1, seq++});
    }
    TxContext ctx(ws);
    const Response r =
        cc.invoke(ctx, "report", std::vector<std::string>{"cpu", "weekly"});
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(ctx.rwset().range_reads.size(), 1u);  // wide scan
    ws.apply_all(ctx.rwset(), Version{2, 0});
    EXPECT_TRUE(ws.get("an/cpu/report/weekly").has_value());
    EXPECT_NE(ws.get("an/cpu/report/weekly")->find("n=3"), std::string::npos);
}

TEST(AnalyticsTest, ReportOnEmptySeries) {
    WorldState ws;
    AnalyticsChaincode cc;
    TxContext ctx(ws);
    EXPECT_TRUE(cc.invoke(ctx, "report", std::vector<std::string>{"none", "r"}).ok);
}

// ---------------------------------------------------------------- Registry

TEST(RegistryTest, StandardContractsAndPriorities) {
    const Registry r = Registry::with_standard_contracts(3);
    EXPECT_EQ(r.size(), 4u);
    EXPECT_EQ(r.static_priority("asset_transfer"), 0u);
    EXPECT_EQ(r.static_priority("supply_chain"), 1u);
    EXPECT_EQ(r.static_priority("analytics"), 1u);
    EXPECT_EQ(r.static_priority("record_keeper"), 2u);
}

TEST(RegistryTest, LevelClamping) {
    const Registry r = Registry::with_standard_contracts(2);
    EXPECT_EQ(r.static_priority("record_keeper"), 1u);
}

TEST(RegistryTest, UnknownChaincodeThrows) {
    const Registry r = Registry::with_standard_contracts();
    EXPECT_FALSE(r.has("ghost"));
    EXPECT_THROW((void)r.get("ghost"), std::invalid_argument);
    EXPECT_THROW((void)r.static_priority("ghost"), std::invalid_argument);
}

TEST(RegistryTest, DuplicateDeployThrows) {
    Registry r;
    r.deploy(std::make_unique<RecordKeeperChaincode>(), 0);
    EXPECT_THROW(r.deploy(std::make_unique<RecordKeeperChaincode>(), 1),
                 std::invalid_argument);
}

TEST(RegistryTest, NullDeployThrows) {
    Registry r;
    EXPECT_THROW(r.deploy(nullptr, 0), std::invalid_argument);
}

TEST(RegistryTest, ZeroLevelsRejected) {
    EXPECT_THROW(Registry::with_standard_contracts(0), std::invalid_argument);
}

}  // namespace
}  // namespace fl::chaincode
