#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fl {
namespace {

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
    ThreadPool pool;
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ExplicitSize) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeDestruction) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 200; ++i) {
            pool.submit([&counter] { counter.fetch_add(1); });
        }
    }  // destructor drains the queues
    EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, TasksSubmittedFromWorkersRun) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) {
            // Worker-submitted tasks go to the worker's own deque.
            pool.submit([&pool, &counter] {
                pool.submit([&counter] { counter.fetch_add(1); });
            });
        }
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForEachTest, VisitsEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    parallel_for_each(pool, n, [&visits](std::size_t i) {
        visits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelForEachTest, ZeroTasksReturnsImmediately) {
    ThreadPool pool(2);
    bool ran = false;
    parallel_for_each(pool, 0, [&ran](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelForEachTest, SingleTaskRunsOnCaller) {
    ThreadPool pool(2);
    int value = 0;
    parallel_for_each(pool, 1, [&value](std::size_t i) {
        value = static_cast<int>(i) + 41;
    });
    EXPECT_EQ(value, 41);
}

TEST(ParallelForEachTest, ResultsLandInPreSizedSlots) {
    ThreadPool pool(4);
    const std::size_t n = 257;
    std::vector<std::size_t> out(n, 0);
    parallel_for_each(pool, n, [&out](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelForEachTest, PropagatesFirstException) {
    ThreadPool pool(4);
    EXPECT_THROW(
        parallel_for_each(pool, 100,
                          [](std::size_t i) {
                              if (i == 13) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
}

TEST(ParallelForEachTest, PoolUsableAfterException) {
    ThreadPool pool(4);
    try {
        parallel_for_each(pool, 50, [](std::size_t) {
            throw std::runtime_error("boom");
        });
        FAIL() << "expected throw";
    } catch (const std::runtime_error&) {
    }
    std::atomic<int> counter{0};
    parallel_for_each(pool, 64,
                      [&counter](std::size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelForEachTest, ManyMoreTasksThanThreads) {
    ThreadPool pool(2);
    const std::size_t n = 5000;
    std::atomic<std::uint64_t> sum{0};
    parallel_for_each(pool, n, [&sum](std::size_t i) {
        sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ParallelForEachTest, NestedForkJoinCompletes) {
    // A body that itself calls parallel_for_each on the same pool — the
    // shape the parallel block validator creates from inside a sweep point.
    ThreadPool pool(2);
    const std::size_t outer = 8, inner = 16;
    std::vector<std::atomic<std::uint64_t>> sums(outer);
    parallel_for_each(pool, outer, [&](std::size_t i) {
        parallel_for_each(pool, inner, [&sums, i](std::size_t j) {
            sums[i].fetch_add(j + 1);
        });
    });
    for (std::size_t i = 0; i < outer; ++i) {
        EXPECT_EQ(sums[i].load(), inner * (inner + 1) / 2);
    }
}

TEST(ParallelForEachTest, SaturatedNestedCallersDoNotDeadlock) {
    // Worst case: a 1-worker pool where the single worker is itself an
    // outer caller, so every helper task for the inner loops sits queued
    // behind callers.  Waiting on queued (never-started) helpers would
    // deadlock here; runner accounting must not.
    ThreadPool pool(1);
    std::atomic<std::uint64_t> total{0};
    parallel_for_each(pool, 4, [&pool, &total](std::size_t) {
        parallel_for_each(pool, 32,
                          [&total](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 4u * 32u);
}

TEST(ParallelForEachTest, NestedInnerExceptionPropagates) {
    ThreadPool pool(3);
    EXPECT_THROW(parallel_for_each(pool, 6,
                                   [&pool](std::size_t i) {
                                       parallel_for_each(
                                           pool, 6, [i](std::size_t j) {
                                               if (i == j) {
                                                   throw std::runtime_error("inner");
                                               }
                                           });
                                   }),
                 std::runtime_error);
    // Pool still healthy afterwards.
    std::atomic<int> counter{0};
    parallel_for_each(pool, 10, [&counter](std::size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace fl
