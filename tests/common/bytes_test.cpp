#include "common/bytes.h"

#include <gtest/gtest.h>

namespace fl {
namespace {

TEST(BytesTest, HexRoundTrip) {
    const Bytes data = {0x00, 0x01, 0x7f, 0x80, 0xff};
    EXPECT_EQ(to_hex(data), "00017f80ff");
    EXPECT_EQ(from_hex("00017f80ff"), data);
}

TEST(BytesTest, HexUppercaseAccepted) {
    EXPECT_EQ(from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(BytesTest, EmptyHex) {
    EXPECT_EQ(to_hex(Bytes{}), "");
    EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, OddLengthHexThrows) {
    EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, InvalidCharacterThrows) {
    EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(BytesTest, StringRoundTrip) {
    const Bytes b = to_bytes("hello");
    EXPECT_EQ(b.size(), 5u);
    EXPECT_EQ(to_string(b), "hello");
}

TEST(BytesTest, AppendU32BigEndian) {
    Bytes out;
    append_u32(out, 0x01020304u);
    EXPECT_EQ(out, (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(BytesTest, AppendU64BigEndian) {
    Bytes out;
    append_u64(out, 0x0102030405060708ull);
    EXPECT_EQ(out, (Bytes{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08}));
}

TEST(BytesTest, AppendConcatenates) {
    Bytes out = to_bytes("ab");
    append(out, "cd");
    const Bytes more = {0x01};
    append(out, BytesView(more.data(), more.size()));
    EXPECT_EQ(out, (Bytes{'a', 'b', 'c', 'd', 0x01}));
}

}  // namespace
}  // namespace fl
