#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace fl {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(RngTest, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
    EXPECT_EQ(rng.next_below(0), 0u);
    EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowCoversAllValues) {
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        seen.insert(rng.next_below(5));
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, UniformRange) {
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.uniform(-2.0, 3.0);
        EXPECT_GE(d, -2.0);
        EXPECT_LT(d, 3.0);
    }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
    Rng rng(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        sum += rng.exponential(2.5);
    }
    EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, ExponentialAlwaysPositive) {
    Rng rng(19);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_GE(rng.exponential(1.0), 0.0);
    }
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
    Rng rng(23);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(10.0, 2.0, /*non_negative=*/false);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, NormalNonNegativeClamps) {
    Rng rng(29);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_GE(rng.normal(0.1, 5.0, /*non_negative=*/true), 0.0);
    }
}

TEST(RngTest, ChanceExtremes) {
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ChanceFrequency) {
    Rng rng(37);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.chance(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitStreamsIndependent) {
    Rng parent(42);
    Rng a = parent.split("a");
    Rng b = parent.split("b");
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitDeterministicAcrossInstances) {
    Rng p1(42);
    Rng p2(42);
    Rng c1 = p1.split("child");
    Rng c2 = p2.split("child");
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(c1.next_u64(), c2.next_u64());
    }
}

TEST(RngTest, ExponentialDurationMatchesMean) {
    Rng rng(53);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += rng.exponential_duration(Duration::millis(10)).as_seconds();
    }
    EXPECT_NEAR(sum / n, 0.010, 0.0005);
}

}  // namespace
}  // namespace fl
