#include "common/time.h"

#include <gtest/gtest.h>

namespace fl {
namespace {

TEST(DurationTest, Constructors) {
    EXPECT_EQ(Duration::nanos(5).as_nanos(), 5);
    EXPECT_EQ(Duration::micros(5).as_nanos(), 5'000);
    EXPECT_EQ(Duration::millis(5).as_nanos(), 5'000'000);
    EXPECT_EQ(Duration::seconds(5).as_nanos(), 5'000'000'000);
    EXPECT_EQ(Duration::from_seconds(0.5).as_nanos(), 500'000'000);
}

TEST(DurationTest, Conversions) {
    EXPECT_DOUBLE_EQ(Duration::millis(1500).as_seconds(), 1.5);
    EXPECT_DOUBLE_EQ(Duration::micros(2500).as_millis(), 2.5);
}

TEST(DurationTest, Arithmetic) {
    const Duration a = Duration::millis(10);
    const Duration b = Duration::millis(4);
    EXPECT_EQ((a + b).as_nanos(), Duration::millis(14).as_nanos());
    EXPECT_EQ((a - b).as_nanos(), Duration::millis(6).as_nanos());
    EXPECT_EQ((a * 3).as_nanos(), Duration::millis(30).as_nanos());
    EXPECT_EQ((a / 2).as_nanos(), Duration::millis(5).as_nanos());
    Duration c = a;
    c += b;
    EXPECT_EQ(c, Duration::millis(14));
    c -= a;
    EXPECT_EQ(c, b);
}

TEST(DurationTest, Comparisons) {
    EXPECT_LT(Duration::millis(1), Duration::millis(2));
    EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
    EXPECT_GT(Duration::zero(), Duration::millis(-5));
}

TEST(TimePointTest, OriginAndArithmetic) {
    const TimePoint t0 = TimePoint::origin();
    EXPECT_EQ(t0.as_nanos(), 0);
    const TimePoint t1 = t0 + Duration::seconds(2);
    EXPECT_DOUBLE_EQ(t1.as_seconds(), 2.0);
    EXPECT_EQ(t1 - t0, Duration::seconds(2));
    EXPECT_EQ(t1 - Duration::seconds(1), t0 + Duration::seconds(1));
    TimePoint t2 = t1;
    t2 += Duration::millis(500);
    EXPECT_DOUBLE_EQ(t2.as_seconds(), 2.5);
}

TEST(TimePointTest, Comparisons) {
    const TimePoint a = TimePoint::from_nanos(10);
    const TimePoint b = TimePoint::from_nanos(20);
    EXPECT_LT(a, b);
    EXPECT_LE(a, a);
    EXPECT_LT(a, TimePoint::max());
}

}  // namespace
}  // namespace fl
