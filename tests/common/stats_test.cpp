#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fl {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
    RunningStats s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(v);
    }
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
    RunningStats all;
    RunningStats left;
    RunningStats right;
    for (int i = 0; i < 100; ++i) {
        const double v = std::sin(i) * 10.0;
        all.add(v);
        (i < 40 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_EQ(left.min(), all.min());
    EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
    RunningStats a;
    a.add(1.0);
    RunningStats b;
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.mean(), 1.0);
}

TEST(HistogramTest, CountAndMean) {
    Histogram h;
    h.add(0.001);
    h.add(0.002);
    h.add(0.003);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_NEAR(h.mean(), 0.002, 1e-12);
}

TEST(HistogramTest, PercentileBoundedRelativeError) {
    Histogram h(1e-6, 1e4, 100);
    // 1000 samples spread geometrically.
    for (int i = 0; i < 1000; ++i) {
        h.add(1e-3 * std::pow(10.0, i / 500.0));
    }
    const double p50 = h.percentile(50);
    const double exact = 1e-3 * std::pow(10.0, 499.0 / 500.0);
    EXPECT_NEAR(p50 / exact, 1.0, 0.05);
}

TEST(HistogramTest, PercentileMonotone) {
    Histogram h;
    for (int i = 0; i < 1000; ++i) {
        h.add(0.001 * (1 + i % 100));
    }
    double prev = 0.0;
    for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
        const double v = h.percentile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(HistogramTest, MaxPercentileCappedAtObservedMax) {
    Histogram h;
    h.add(0.5);
    h.add(1.5);
    EXPECT_LE(h.percentile(100), 1.5);
}

TEST(HistogramTest, ValuesBelowMinClampToFirstBucket) {
    Histogram h(1e-3, 10.0, 10);
    h.add(1e-9);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_LE(h.percentile(100), 1e-3);
}

TEST(HistogramTest, TracksUnderflowAndOverflow) {
    Histogram h(1e-3, 10.0, 10);
    h.add(1e-9);   // below min_value: clamped into the first bucket
    h.add(0.5);    // in range
    h.add(100.0);  // above max_value: clamped into the last bucket
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    // mean/min/max stay exact even for clamped samples.
    EXPECT_DOUBLE_EQ(h.min(), 1e-9);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(HistogramTest, MergeAccumulatesUnderflowAndOverflow) {
    Histogram a(1e-3, 10.0, 10);
    Histogram b(1e-3, 10.0, 10);
    a.add(1e-9);
    b.add(1e-9);
    b.add(100.0);
    a.merge(b);
    EXPECT_EQ(a.underflow(), 2u);
    EXPECT_EQ(a.overflow(), 1u);
}

TEST(HistogramTest, MergeAddsCounts) {
    Histogram a;
    Histogram b;
    a.add(0.01);
    b.add(0.02);
    b.add(0.03);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_NEAR(a.mean(), 0.02, 1e-12);
}

TEST(HistogramTest, BadConstructionThrows) {
    EXPECT_THROW(Histogram(0.0, 1.0, 10), std::invalid_argument);
    EXPECT_THROW(Histogram(1.0, 0.5, 10), std::invalid_argument);
    EXPECT_THROW(Histogram(1e-6, 1.0, 0), std::invalid_argument);
}

TEST(RunAggregatorTest, MeanAndCi) {
    RunAggregator agg;
    for (const double v : {10.0, 12.0, 8.0, 11.0, 9.0}) {
        agg.add_run(v);
    }
    EXPECT_DOUBLE_EQ(agg.mean(), 10.0);
    EXPECT_GT(agg.ci95_half_width(), 0.0);
    EXPECT_LT(agg.ci95_half_width(), 3.0);
    EXPECT_EQ(agg.runs(), 5u);
}

TEST(RunAggregatorTest, SingleRunHasNoCi) {
    RunAggregator agg;
    agg.add_run(1.0);
    EXPECT_EQ(agg.ci95_half_width(), 0.0);
}

TEST(FormatFixedTest, Rounds) {
    EXPECT_EQ(format_fixed(1.2345, 2), "1.23");
    EXPECT_EQ(format_fixed(1.2355, 2), "1.24");
    EXPECT_EQ(format_fixed(-0.5, 0), "-0");  // printf rounding to even
}

}  // namespace
}  // namespace fl
