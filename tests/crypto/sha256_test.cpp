#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace fl::crypto {
namespace {

// NIST FIPS 180-4 / standard test vectors.
TEST(Sha256Test, EmptyString) {
    EXPECT_EQ(to_hex(sha256(std::string_view{})),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
    EXPECT_EQ(to_hex(sha256("abc")),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
    EXPECT_EQ(to_hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, LongMessage) {
    // One million 'a' characters.
    const std::string a(1'000'000, 'a');
    EXPECT_EQ(to_hex(sha256(a)),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, FoxVector) {
    EXPECT_EQ(to_hex(sha256("The quick brown fox jumps over the lazy dog")),
              "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
    const std::string msg = "the quick brown fox jumps over the lazy dog many times";
    Sha256 ctx;
    for (char c : msg) {
        ctx.update(std::string_view(&c, 1));
    }
    EXPECT_EQ(ctx.finish(), sha256(msg));
}

TEST(Sha256Test, ChunkedSplitsMatchOneShot) {
    std::string msg;
    for (int i = 0; i < 300; ++i) {
        msg += static_cast<char>('a' + i % 26);
    }
    for (const std::size_t split : {1u, 7u, 63u, 64u, 65u, 127u, 128u, 200u}) {
        Sha256 ctx;
        std::size_t pos = 0;
        while (pos < msg.size()) {
            const std::size_t take = std::min(split, static_cast<std::size_t>(msg.size() - pos));
            ctx.update(std::string_view(msg).substr(pos, take));
            pos += take;
        }
        EXPECT_EQ(ctx.finish(), sha256(msg)) << "split=" << split;
    }
}

TEST(Sha256Test, BoundaryLengths) {
    // Exercise every padding branch around the 64-byte block boundary.
    for (const std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
        const std::string msg(len, 'x');
        Sha256 one;
        one.update(msg);
        Sha256 two;
        two.update(std::string_view(msg).substr(0, len / 2));
        two.update(std::string_view(msg).substr(len / 2));
        EXPECT_EQ(one.finish(), two.finish()) << "len=" << len;
    }
}

TEST(Sha256Test, ResetReusesContext) {
    Sha256 ctx;
    ctx.update("abc");
    (void)ctx.finish();
    ctx.reset();
    ctx.update("abc");
    EXPECT_EQ(to_hex(ctx.finish()),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
    EXPECT_NE(sha256("a"), sha256("b"));
    EXPECT_NE(sha256("abc"), sha256("abd"));
    EXPECT_NE(sha256(""), sha256(std::string(1, '\0')));
}

TEST(Sha256Test, ToBytesMatches) {
    const Digest d = sha256("abc");
    const Bytes b = to_bytes(d);
    ASSERT_EQ(b.size(), 32u);
    EXPECT_TRUE(std::equal(b.begin(), b.end(), d.begin()));
}

}  // namespace
}  // namespace fl::crypto
