#include "crypto/merkle.h"

#include <gtest/gtest.h>

namespace fl::crypto {
namespace {

std::vector<Digest> make_leaves(std::size_t n) {
    std::vector<Digest> leaves;
    leaves.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        leaves.push_back(sha256("leaf" + std::to_string(i)));
    }
    return leaves;
}

TEST(MerkleTest, EmptyListHasDefinedRoot) {
    EXPECT_EQ(merkle_root({}), sha256(std::string_view{}));
}

TEST(MerkleTest, SingleLeafRootIsLeaf) {
    const auto leaves = make_leaves(1);
    EXPECT_EQ(merkle_root(leaves), leaves[0]);
}

TEST(MerkleTest, RootDeterministic) {
    const auto leaves = make_leaves(7);
    EXPECT_EQ(merkle_root(leaves), merkle_root(leaves));
}

TEST(MerkleTest, RootSensitiveToLeafChange) {
    auto leaves = make_leaves(8);
    const Digest original = merkle_root(leaves);
    leaves[3] = sha256("tampered");
    EXPECT_NE(merkle_root(leaves), original);
}

TEST(MerkleTest, RootSensitiveToOrder) {
    auto leaves = make_leaves(4);
    const Digest original = merkle_root(leaves);
    std::swap(leaves[0], leaves[1]);
    EXPECT_NE(merkle_root(leaves), original);
}

TEST(MerkleTest, RootSensitiveToCount) {
    const auto four = make_leaves(4);
    auto five = four;
    five.push_back(sha256("extra"));
    EXPECT_NE(merkle_root(four), merkle_root(five));
}

TEST(MerkleTest, ProofOutOfRange) {
    EXPECT_FALSE(merkle_proof(make_leaves(3), 3).has_value());
    EXPECT_FALSE(merkle_proof({}, 0).has_value());
}

class MerkleProofSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofSweep, EveryLeafProvable) {
    const std::size_t n = GetParam();
    const auto leaves = make_leaves(n);
    const Digest root = merkle_root(leaves);
    for (std::size_t i = 0; i < n; ++i) {
        const auto proof = merkle_proof(leaves, i);
        ASSERT_TRUE(proof.has_value()) << "leaf " << i << " of " << n;
        EXPECT_TRUE(verify_proof(leaves[i], *proof, root))
            << "leaf " << i << " of " << n;
    }
}

TEST_P(MerkleProofSweep, WrongLeafFailsProof) {
    const std::size_t n = GetParam();
    if (n < 2) return;  // a single-leaf tree has an empty proof for its root
    const auto leaves = make_leaves(n);
    const Digest root = merkle_root(leaves);
    for (std::size_t i = 0; i < n; ++i) {
        const auto proof = merkle_proof(leaves, i);
        ASSERT_TRUE(proof.has_value());
        EXPECT_FALSE(verify_proof(sha256("imposter"), *proof, root));
    }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MerkleProofSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17,
                                           31, 33, 100));

TEST(MerkleTest, ProofAgainstWrongRootFails) {
    const auto leaves = make_leaves(8);
    const auto proof = merkle_proof(leaves, 2);
    ASSERT_TRUE(proof.has_value());
    EXPECT_FALSE(verify_proof(leaves[2], *proof, sha256("not-the-root")));
}

}  // namespace
}  // namespace fl::crypto
