#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace fl::crypto {
namespace {

// RFC 4231 HMAC-SHA-256 test vectors.
TEST(HmacTest, Rfc4231Case1) {
    const Bytes key(20, 0x0b);
    EXPECT_EQ(fl::to_hex(BytesView(hmac_sha256(key, fl::to_bytes("Hi There")))),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
    EXPECT_EQ(fl::to_hex(BytesView(
                  hmac_sha256("Jefe", "what do ya want for nothing?"))),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
    const Bytes key(20, 0xaa);
    const Bytes msg(50, 0xdd);
    EXPECT_EQ(fl::to_hex(BytesView(hmac_sha256(key, msg))),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case4) {
    Bytes key;
    for (std::uint8_t i = 1; i <= 25; ++i) key.push_back(i);
    const Bytes msg(50, 0xcd);
    EXPECT_EQ(fl::to_hex(BytesView(hmac_sha256(key, msg))),
              "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
    const Bytes key(131, 0xaa);
    EXPECT_EQ(fl::to_hex(BytesView(hmac_sha256(
                  key, fl::to_bytes("Test Using Larger Than Block-Size Key - Hash Key First")))),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, Rfc4231Case7LongKeyAndData) {
    const Bytes key(131, 0xaa);
    const std::string msg =
        "This is a test using a larger than block-size key and a larger than "
        "block-size data. The key needs to be hashed before being used by the "
        "HMAC algorithm.";
    EXPECT_EQ(fl::to_hex(BytesView(hmac_sha256(key, fl::to_bytes(msg)))),
              "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacTest, KeySensitivity) {
    EXPECT_NE(hmac_sha256("key1", "msg"), hmac_sha256("key2", "msg"));
}

TEST(HmacTest, MessageSensitivity) {
    EXPECT_NE(hmac_sha256("key", "msg1"), hmac_sha256("key", "msg2"));
}

TEST(HmacTest, ExactBlockSizeKey) {
    const Bytes key(64, 0x42);
    const Digest a = hmac_sha256(key, fl::to_bytes("data"));
    const Digest b = hmac_sha256(key, fl::to_bytes("data"));
    EXPECT_EQ(a, b);
    EXPECT_NE(a, hmac_sha256(Bytes(63, 0x42), fl::to_bytes("data")));
}

}  // namespace
}  // namespace fl::crypto
