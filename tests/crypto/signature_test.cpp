#include "crypto/signature.h"

#include <gtest/gtest.h>

namespace fl::crypto {
namespace {

KeyStore make_store() {
    KeyStore ks;
    ks.set_seed(0xABCD);
    ks.register_identity({"org0.peer0", OrgId{0}});
    ks.register_identity({"org1.peer0", OrgId{1}});
    ks.register_identity({"client0", OrgId{0}});
    return ks;
}

TEST(KeyStoreTest, RegistrationAndLookup) {
    const KeyStore ks = make_store();
    EXPECT_TRUE(ks.has_identity("org0.peer0"));
    EXPECT_FALSE(ks.has_identity("ghost"));
    EXPECT_EQ(ks.size(), 3u);
    EXPECT_EQ(ks.org_of("org1.peer0"), OrgId{1});
    EXPECT_FALSE(ks.org_of("ghost").has_value());
}

TEST(KeyStoreTest, EmptyNameRejected) {
    KeyStore ks;
    EXPECT_THROW(ks.register_identity({"", OrgId{0}}), std::invalid_argument);
}

TEST(KeyStoreTest, ReRegistrationIdempotent) {
    KeyStore ks = make_store();
    const Bytes msg = fl::to_bytes("payload");
    const Signature before = ks.sign("org0.peer0", BytesView(msg.data(), msg.size()));
    ks.register_identity({"org0.peer0", OrgId{0}});
    const Signature after = ks.sign("org0.peer0", BytesView(msg.data(), msg.size()));
    EXPECT_EQ(before, after);
}

TEST(SignatureTest, SignVerifyRoundTrip) {
    const KeyStore ks = make_store();
    const Bytes msg = fl::to_bytes("transaction payload");
    const Signature sig = ks.sign("org0.peer0", BytesView(msg.data(), msg.size()));
    EXPECT_EQ(sig.signer, "org0.peer0");
    EXPECT_TRUE(ks.verify(sig, BytesView(msg.data(), msg.size())));
}

TEST(SignatureTest, TamperedMessageFails) {
    const KeyStore ks = make_store();
    const Bytes msg = fl::to_bytes("original");
    const Bytes other = fl::to_bytes("tampered");
    const Signature sig = ks.sign("org0.peer0", BytesView(msg.data(), msg.size()));
    EXPECT_FALSE(ks.verify(sig, BytesView(other.data(), other.size())));
}

TEST(SignatureTest, WrongClaimedSignerFails) {
    const KeyStore ks = make_store();
    const Bytes msg = fl::to_bytes("message");
    Signature sig = ks.sign("org0.peer0", BytesView(msg.data(), msg.size()));
    sig.signer = "org1.peer0";  // claim someone else signed it
    EXPECT_FALSE(ks.verify(sig, BytesView(msg.data(), msg.size())));
}

TEST(SignatureTest, UnknownSignerFailsVerification) {
    const KeyStore ks = make_store();
    const Bytes msg = fl::to_bytes("message");
    Signature sig = ks.sign("org0.peer0", BytesView(msg.data(), msg.size()));
    sig.signer = "ghost";
    EXPECT_FALSE(ks.verify(sig, BytesView(msg.data(), msg.size())));
}

TEST(SignatureTest, UnknownSignerCannotSign) {
    const KeyStore ks = make_store();
    const Bytes msg = fl::to_bytes("message");
    EXPECT_THROW((void)ks.sign("ghost", BytesView(msg.data(), msg.size())),
                 std::invalid_argument);
}

TEST(SignatureTest, DistinctSignersDistinctSignatures) {
    const KeyStore ks = make_store();
    const Bytes msg = fl::to_bytes("message");
    const Signature a = ks.sign("org0.peer0", BytesView(msg.data(), msg.size()));
    const Signature b = ks.sign("org1.peer0", BytesView(msg.data(), msg.size()));
    EXPECT_NE(a.mac, b.mac);
}

TEST(SignatureTest, SeedChangesSecrets) {
    KeyStore a;
    a.set_seed(1);
    a.register_identity({"x", OrgId{0}});
    KeyStore b;
    b.set_seed(2);
    b.register_identity({"x", OrgId{0}});
    const Bytes msg = fl::to_bytes("m");
    EXPECT_NE(a.sign("x", BytesView(msg.data(), msg.size())).mac,
              b.sign("x", BytesView(msg.data(), msg.size())).mac);
}

TEST(SignatureTest, CrossStoreVerificationRequiresSameSeed) {
    KeyStore a;
    a.set_seed(7);
    a.register_identity({"x", OrgId{0}});
    KeyStore b;
    b.set_seed(7);
    b.register_identity({"x", OrgId{0}});
    const Bytes msg = fl::to_bytes("m");
    const Signature sig = a.sign("x", BytesView(msg.data(), msg.size()));
    EXPECT_TRUE(b.verify(sig, BytesView(msg.data(), msg.size())));
}

}  // namespace
}  // namespace fl::crypto
