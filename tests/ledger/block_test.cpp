#include "ledger/block.h"

#include <gtest/gtest.h>

#include "ledger/block_store.h"

namespace fl::ledger {
namespace {

Envelope make_tx(std::uint64_t id) {
    Envelope env;
    env.proposal.tx_id = TxId{id};
    env.proposal.chaincode = "cc";
    env.proposal.function = "fn";
    env.proposal.args = {"a" + std::to_string(id)};
    env.rwset.writes.push_back(KvWrite{"k" + std::to_string(id), "v", false});
    return env;
}

std::vector<Envelope> make_txs(std::size_t n, std::uint64_t base = 0) {
    std::vector<Envelope> txs;
    for (std::size_t i = 0; i < n; ++i) {
        txs.push_back(make_tx(base + i));
    }
    return txs;
}

TEST(BlockTest, MakeBlockComputesDataHash) {
    const Block b = make_block(0, nullptr, make_txs(5));
    EXPECT_EQ(b.header.data_hash, b.compute_data_hash());
    EXPECT_EQ(b.size(), 5u);
}

TEST(BlockTest, DataHashChangesWithContent) {
    const Block a = make_block(0, nullptr, make_txs(3));
    const Block b = make_block(0, nullptr, make_txs(3, 100));
    EXPECT_NE(a.header.data_hash, b.header.data_hash);
}

TEST(BlockTest, HeaderHashChainsPrevious) {
    const Block genesis = make_block(0, nullptr, make_txs(1));
    const crypto::Digest h0 = genesis.header.hash();
    const Block next = make_block(1, &h0, make_txs(1, 50));
    EXPECT_EQ(next.header.previous_hash, h0);
    EXPECT_NE(next.header.hash(), h0);
}

TEST(BlockTest, HeaderHashDependsOnNumber) {
    const Block a = make_block(0, nullptr, {});
    Block b = a;
    b.header.number = 1;
    EXPECT_NE(a.header.hash(), b.header.hash());
}

TEST(BlockTest, EmptyBlockHasDefinedHash) {
    const Block b = make_block(0, nullptr, {});
    EXPECT_EQ(b.size(), 0u);
    EXPECT_EQ(b.header.data_hash, crypto::merkle_root({}));
}

TEST(BlockTest, WireSizeGrowsWithTxs) {
    EXPECT_LT(make_block(0, nullptr, make_txs(1)).wire_size(),
              make_block(0, nullptr, make_txs(10)).wire_size());
}

TEST(BlockStoreTest, AppendAndQuery) {
    BlockStore store;
    EXPECT_TRUE(store.empty());
    store.append(make_block(0, nullptr, make_txs(2)));
    const crypto::Digest h0 = store.last().header.hash();
    store.append(make_block(1, &h0, make_txs(3, 10)));
    EXPECT_EQ(store.height(), 2u);
    EXPECT_EQ(store.at(0).size(), 2u);
    EXPECT_EQ(store.at(1).size(), 3u);
    EXPECT_EQ(store.total_transactions(), 5u);
    EXPECT_EQ(store.tip_hash(), store.at(1).header.hash());
}

TEST(BlockStoreTest, RejectsNonSequentialNumber) {
    BlockStore store;
    EXPECT_THROW(store.append(make_block(1, nullptr, {})), std::invalid_argument);
}

TEST(BlockStoreTest, RejectsBrokenPrevHash) {
    BlockStore store;
    store.append(make_block(0, nullptr, make_txs(1)));
    const crypto::Digest wrong = crypto::sha256("wrong");
    EXPECT_THROW(store.append(make_block(1, &wrong, make_txs(1, 5))),
                 std::invalid_argument);
}

TEST(BlockStoreTest, RejectsTamperedDataHash) {
    BlockStore store;
    Block b = make_block(0, nullptr, make_txs(2));
    b.transactions.push_back(make_tx(99));  // content no longer matches header
    EXPECT_THROW(store.append(std::move(b)), std::invalid_argument);
}

TEST(BlockStoreTest, VerifyChainDetectsDeepTampering) {
    BlockStore store;
    store.append(make_block(0, nullptr, make_txs(1)));
    for (BlockNumber n = 1; n <= 5; ++n) {
        const crypto::Digest prev = store.last().header.hash();
        store.append(make_block(n, &prev, make_txs(1, n * 10)));
    }
    EXPECT_TRUE(store.verify_chain());
}

TEST(BlockStoreTest, EmptyStoreAccessors) {
    BlockStore store;
    EXPECT_FALSE(store.tip_hash().has_value());
    EXPECT_THROW((void)store.last(), std::out_of_range);
    EXPECT_THROW((void)store.at(0), std::out_of_range);
    EXPECT_TRUE(store.verify_chain());
    EXPECT_EQ(store.chain_fingerprint(), BlockStore().chain_fingerprint());
}

TEST(BlockStoreTest, FingerprintDistinguishesChains) {
    BlockStore a;
    a.append(make_block(0, nullptr, make_txs(1)));
    BlockStore b;
    b.append(make_block(0, nullptr, make_txs(1, 7)));
    EXPECT_NE(a.chain_fingerprint(), b.chain_fingerprint());

    BlockStore c;
    c.append(make_block(0, nullptr, make_txs(1)));
    EXPECT_EQ(a.chain_fingerprint(), c.chain_fingerprint());
}

TEST(EnvelopeTest, DigestCoversEndorsements) {
    Envelope a = make_tx(1);
    Envelope b = a;
    Endorsement e;
    e.endorser_identity = "org0.peer0";
    b.endorsements.push_back(e);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(EnvelopeTest, DigestCoversRwset) {
    Envelope a = make_tx(1);
    Envelope b = a;
    b.rwset.writes.push_back(KvWrite{"extra", "v", false});
    EXPECT_NE(a.digest(), b.digest());
}

TEST(ProposalTest, SerializeDistinguishesArgs) {
    Envelope a = make_tx(1);
    Envelope b = make_tx(1);
    b.proposal.args = {"different"};
    EXPECT_NE(a.proposal.serialize(), b.proposal.serialize());
}

TEST(ProposalTest, EndorsementPayloadCoversPriority) {
    const Envelope env = make_tx(1);
    EXPECT_NE(Envelope::endorsement_payload(env.proposal, env.rwset, 0),
              Envelope::endorsement_payload(env.proposal, env.rwset, 1));
}

}  // namespace
}  // namespace fl::ledger
