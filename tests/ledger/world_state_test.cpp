#include "ledger/world_state.h"

#include <gtest/gtest.h>

namespace fl::ledger {
namespace {

TEST(WorldStateTest, GetAbsentKey) {
    WorldState ws;
    EXPECT_FALSE(ws.get("missing").has_value());
    EXPECT_FALSE(ws.version_of("missing").has_value());
    EXPECT_EQ(ws.key_count(), 0u);
}

TEST(WorldStateTest, ApplyAndGet) {
    WorldState ws;
    ws.apply(KvWrite{"k", "v", false}, Version{1, 2});
    EXPECT_EQ(ws.get("k"), "v");
    EXPECT_EQ(ws.version_of("k"), (Version{1, 2}));
}

TEST(WorldStateTest, OverwriteBumpsVersion) {
    WorldState ws;
    ws.apply(KvWrite{"k", "v1", false}, Version{1, 0});
    ws.apply(KvWrite{"k", "v2", false}, Version{2, 3});
    EXPECT_EQ(ws.get("k"), "v2");
    EXPECT_EQ(ws.version_of("k"), (Version{2, 3}));
}

TEST(WorldStateTest, DeleteRemovesKey) {
    WorldState ws;
    ws.apply(KvWrite{"k", "v", false}, Version{1, 0});
    ws.apply(KvWrite{"k", "", true}, Version{2, 0});
    EXPECT_FALSE(ws.get("k").has_value());
    EXPECT_FALSE(ws.version_of("k").has_value());
}

TEST(WorldStateTest, ApplyAllWritesEverything) {
    WorldState ws;
    ReadWriteSet s;
    s.writes.push_back(KvWrite{"a", "1", false});
    s.writes.push_back(KvWrite{"b", "2", false});
    ws.apply_all(s, Version{5, 9});
    EXPECT_EQ(ws.get("a"), "1");
    EXPECT_EQ(ws.get("b"), "2");
    EXPECT_EQ(ws.version_of("b"), (Version{5, 9}));
}

TEST(WorldStateTest, RangeScanOrderedAndBounded) {
    WorldState ws;
    for (const char* k : {"b", "d", "a", "c", "e"}) {
        ws.apply(KvWrite{k, "v", false}, Version{1, 0});
    }
    const auto result = ws.range("b", "e");
    ASSERT_EQ(result.size(), 3u);
    EXPECT_EQ(result[0].key, "b");
    EXPECT_EQ(result[1].key, "c");
    EXPECT_EQ(result[2].key, "d");
}

TEST(WorldStateTest, ValidateReadsMatchingVersion) {
    WorldState ws;
    ws.apply(KvWrite{"k", "v", false}, Version{1, 4});
    ReadWriteSet s;
    s.reads.push_back(KvRead{"k", Version{1, 4}});
    EXPECT_TRUE(ws.validate_reads(s));
}

TEST(WorldStateTest, ValidateReadsStaleVersionFails) {
    WorldState ws;
    ws.apply(KvWrite{"k", "v", false}, Version{2, 0});
    ReadWriteSet s;
    s.reads.push_back(KvRead{"k", Version{1, 0}});
    EXPECT_FALSE(ws.validate_reads(s));
}

TEST(WorldStateTest, ValidateReadsAbsenceSemantics) {
    WorldState ws;
    ReadWriteSet read_absent;
    read_absent.reads.push_back(KvRead{"k", std::nullopt});
    EXPECT_TRUE(ws.validate_reads(read_absent));  // still absent -> fine

    ws.apply(KvWrite{"k", "v", false}, Version{1, 0});
    EXPECT_FALSE(ws.validate_reads(read_absent));  // appeared -> conflict

    ReadWriteSet read_present;
    read_present.reads.push_back(KvRead{"gone", Version{1, 0}});
    EXPECT_FALSE(ws.validate_reads(read_present));  // vanished -> conflict
}

TEST(WorldStateTest, ValidateRangeReadsPhantomDetection) {
    WorldState ws;
    ws.apply(KvWrite{"k1", "v", false}, Version{1, 0});
    ws.apply(KvWrite{"k3", "v", false}, Version{1, 1});

    ReadWriteSet s;
    s.range_reads.push_back(RangeRead{"k0", "k9", ws.range("k0", "k9")});
    EXPECT_TRUE(ws.validate_reads(s));

    // Phantom insert inside the range invalidates the scan.
    ws.apply(KvWrite{"k2", "v", false}, Version{2, 0});
    EXPECT_FALSE(ws.validate_reads(s));
}

TEST(WorldStateTest, ValidateRangeReadsVersionBump) {
    WorldState ws;
    ws.apply(KvWrite{"k1", "v", false}, Version{1, 0});
    ReadWriteSet s;
    s.range_reads.push_back(RangeRead{"k0", "k9", ws.range("k0", "k9")});
    ws.apply(KvWrite{"k1", "v2", false}, Version{2, 0});  // same key, new version
    EXPECT_FALSE(ws.validate_reads(s));
}

TEST(WorldStateTest, FingerprintEqualForEqualStates) {
    WorldState a;
    WorldState b;
    // Insert in different orders; state content is identical.
    a.apply(KvWrite{"x", "1", false}, Version{1, 0});
    a.apply(KvWrite{"y", "2", false}, Version{1, 1});
    b.apply(KvWrite{"y", "2", false}, Version{1, 1});
    b.apply(KvWrite{"x", "1", false}, Version{1, 0});
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(WorldStateTest, FingerprintSensitiveToValueAndVersion) {
    WorldState a;
    WorldState b;
    a.apply(KvWrite{"x", "1", false}, Version{1, 0});
    b.apply(KvWrite{"x", "2", false}, Version{1, 0});
    EXPECT_NE(a.fingerprint(), b.fingerprint());

    WorldState c;
    c.apply(KvWrite{"x", "1", false}, Version{2, 0});
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(WorldStateTest, ExplicitShardCountIsObservablyIdentical) {
    // Sharding is an implementation knob: a 1-shard, a 5-shard and the
    // default store fed the same writes agree on every observable.  (The
    // deep randomized version lives in sharded_state_test.cpp.)
    WorldState one(1);
    WorldState five(5);
    WorldState dflt;
    EXPECT_EQ(one.shard_count(), 1u);
    EXPECT_EQ(five.shard_count(), 5u);
    EXPECT_EQ(dflt.shard_count(), WorldState::kDefaultShards);
    for (int i = 0; i < 40; ++i) {
        const KvWrite w{"key" + std::to_string(i), std::to_string(i), false};
        const Version v{1, static_cast<std::uint32_t>(i)};
        one.apply(w, v);
        five.apply(w, v);
        dflt.apply(w, v);
    }
    EXPECT_EQ(one.fingerprint(), five.fingerprint());
    EXPECT_EQ(one.fingerprint(), dflt.fingerprint());
    EXPECT_EQ(one.key_count(), five.key_count());
    const auto r1 = one.range("key1", "key2");
    const auto r5 = five.range("key1", "key2");
    ASSERT_EQ(r1.size(), r5.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].key, r5[i].key);
    }
}

TEST(WorldStateTest, ZeroShardCountClampsToOne) {
    WorldState ws(0);
    EXPECT_EQ(ws.shard_count(), 1u);
    ws.apply(KvWrite{"k", "v", false}, Version{1, 0});
    EXPECT_EQ(ws.get("k"), "v");
}

}  // namespace
}  // namespace fl::ledger
