// Differential tests: sharded WorldState vs the single-map reference.
//
// The sharding determinism contract (ledger/world_state.h, DESIGN.md §13)
// says a WorldState at ANY shard count is observably identical to the
// pre-sharding single-map implementation.  These tests machine-check that:
// randomized write/delete streams are replayed into a ReferenceWorldState
// and into WorldStates at several shard counts (including the 1-shard
// degenerate case), and every observable — get, version_of, range,
// validate_reads, key_count, fingerprint — must agree.  A TSan-able stress
// test drives concurrent readers against the store to exercise the
// per-shard locking the wave validator relies on.
#include "ledger/world_state.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "ledger/reference_state.h"

namespace fl::ledger {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 3, 8, 16, 64};

std::string random_key(std::mt19937_64& rng) {
    // Small enough space to hit overwrite/delete paths, wide enough to
    // spread over 64 shards; mixed prefixes exercise the range merge.
    static const char* const prefixes[] = {"acct/u", "hot", "k", "zz/"};
    return prefixes[rng() % 4] + std::to_string(rng() % 400);
}

/// One random mutation applied identically to every store under test.
template <typename... Stores>
void apply_random(std::mt19937_64& rng, std::uint64_t step,
                  Stores&... stores) {
    const std::string key = random_key(rng);
    const bool is_delete = rng() % 8 == 0;
    const KvWrite write{key, is_delete ? "" : "v" + std::to_string(rng() % 100),
                        is_delete};
    const Version version{step / 16 + 1, static_cast<std::uint32_t>(step % 16)};
    (stores.apply(write, version), ...);
}

TEST(ShardedStateTest, RandomizedDifferentialAgainstReference) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        for (const std::size_t shards : kShardCounts) {
            std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL);
            ReferenceWorldState reference;
            WorldState sharded(shards);
            for (std::uint64_t step = 0; step < 600; ++step) {
                apply_random(rng, step, reference, sharded);
            }
            const std::string ctx = "seed " + std::to_string(seed) +
                                    " shards " + std::to_string(shards);
            SCOPED_TRACE(ctx);
            ASSERT_EQ(reference.key_count(), sharded.key_count());
            ASSERT_EQ(reference.fingerprint(), sharded.fingerprint());

            // Point lookups across the whole key space (present and absent).
            for (std::uint64_t probe = 0; probe < 400; ++probe) {
                const std::string key = random_key(rng);
                EXPECT_EQ(reference.get(key), sharded.get(key)) << key;
                EXPECT_EQ(reference.version_of(key), sharded.version_of(key))
                    << key;
            }

            // Range scans must merge back into global key order.
            const std::pair<const char*, const char*> ranges[] = {
                {"", "\x7f"}, {"acct/", "acct0"}, {"hot1", "hot4"},
                {"k", "l"},   {"zz/", "zz0"},     {"nope", "nopf"},
            };
            for (const auto& [lo, hi] : ranges) {
                const auto expect = reference.range(lo, hi);
                const auto got = sharded.range(lo, hi);
                ASSERT_EQ(expect.size(), got.size()) << lo << ".." << hi;
                for (std::size_t i = 0; i < expect.size(); ++i) {
                    EXPECT_EQ(expect[i].key, got[i].key);
                    EXPECT_EQ(expect[i].version, got[i].version);
                }
            }

            // validate_reads: matching, stale and phantom cases.
            ReadWriteSet ok;
            ok.range_reads.push_back(
                RangeRead{"acct/", "acct0", reference.range("acct/", "acct0")});
            for (std::uint64_t probe = 0; probe < 50; ++probe) {
                ok.reads.push_back(
                    KvRead{random_key(rng),
                           reference.version_of(random_key(rng))});
            }
            EXPECT_EQ(reference.validate_reads(ok), sharded.validate_reads(ok));
            ReadWriteSet stale = ok;
            stale.reads.push_back(KvRead{"k1", Version{999, 0}});
            EXPECT_FALSE(sharded.validate_reads(stale));
        }
    }
}

TEST(ShardedStateTest, FingerprintIdenticalAcrossShardCounts) {
    // Same stream into every shard count at once: all fingerprints equal.
    std::vector<std::unique_ptr<WorldState>> stores;
    for (const std::size_t shards : kShardCounts) {
        stores.push_back(std::make_unique<WorldState>(shards));
    }
    std::mt19937_64 rng(42);
    for (std::uint64_t step = 0; step < 500; ++step) {
        const std::string key = random_key(rng);
        const KvWrite write{key, "v" + std::to_string(step), rng() % 9 == 0};
        for (auto& store : stores) {
            store->apply(write, Version{1, static_cast<std::uint32_t>(step)});
        }
    }
    for (std::size_t i = 1; i < stores.size(); ++i) {
        EXPECT_EQ(stores[0]->fingerprint(), stores[i]->fingerprint());
        EXPECT_EQ(stores[0]->key_count(), stores[i]->key_count());
    }
}

TEST(ShardedStateTest, ShardStatsAccounting) {
    WorldState ws(4);
    EXPECT_EQ(ws.shard_count(), 4u);
    EXPECT_EQ(ws.approx_memory_bytes(), 0u);

    ws.apply(KvWrite{"alpha", "12345", false}, Version{1, 0});
    ws.apply(KvWrite{"beta", "6", false}, Version{1, 1});
    WorldState::ShardStats totals = ws.total_stats();
    EXPECT_EQ(totals.keys, 2u);
    // Payload bytes: |alpha|+|12345| + |beta|+|6| = 10 + 5.
    EXPECT_EQ(totals.bytes, 15u);
    EXPECT_EQ(ws.approx_memory_bytes(),
              15u + 2u * WorldState::kPerEntryOverhead);
    EXPECT_GE(ws.max_shard_keys(), 1u);
    EXPECT_LE(ws.max_shard_keys(), 2u);

    // Overwrite adjusts bytes in place; delete releases them.
    ws.apply(KvWrite{"alpha", "1", false}, Version{2, 0});
    EXPECT_EQ(ws.total_stats().bytes, 11u);
    ws.apply(KvWrite{"alpha", "", true}, Version{3, 0});
    ws.apply(KvWrite{"beta", "", true}, Version{3, 1});
    totals = ws.total_stats();
    EXPECT_EQ(totals.keys, 0u);
    EXPECT_EQ(totals.bytes, 0u);
    EXPECT_EQ(ws.approx_memory_bytes(), 0u);

    // Five applies, each under the exclusive lock; per-shard sums match.
    EXPECT_EQ(totals.write_locks, 5u);
    std::uint64_t summed = 0;
    for (std::size_t s = 0; s < ws.shard_count(); ++s) {
        summed += ws.shard_stats(s).write_locks;
    }
    EXPECT_EQ(summed, 5u);
}

TEST(ShardedStateTest, ReadLockCountsAreDeterministic) {
    // The acquisition counters feed deterministic JSON: the same access
    // sequence must produce the same totals, run after run.
    const auto run_once = [] {
        WorldState ws(8);
        for (int i = 0; i < 50; ++i) {
            ws.apply(KvWrite{"k" + std::to_string(i), "v", false}, Version{1, 0});
        }
        for (int i = 0; i < 100; ++i) {
            (void)ws.get("k" + std::to_string(i % 60));
        }
        (void)ws.range("k1", "k5");
        (void)ws.fingerprint();
        return ws.total_stats();
    };
    const WorldState::ShardStats a = run_once();
    const WorldState::ShardStats b = run_once();
    EXPECT_EQ(a.read_locks, b.read_locks);
    EXPECT_EQ(a.write_locks, b.write_locks);
    EXPECT_GT(a.read_locks, 0u);
}

TEST(ShardedStateTest, ConcurrentReadersSeeConsistentState) {
    // TSan-able: many reader threads against a committed store, exactly the
    // access pattern of the wave validator's parallel MVCC prechecks.
    WorldState ws;
    ReferenceWorldState reference;
    for (int i = 0; i < 500; ++i) {
        const KvWrite w{"acct/u" + std::to_string(i), std::to_string(i), false};
        ws.apply(w, Version{1, static_cast<std::uint32_t>(i)});
        reference.apply(w, Version{1, static_cast<std::uint32_t>(i)});
    }
    const std::uint64_t want_fp = reference.fingerprint();

    ThreadPool pool(4);
    std::atomic<int> failures{0};
    parallel_for_each(pool, 64, [&](std::size_t task) {
        std::mt19937_64 rng(task);
        for (int i = 0; i < 200; ++i) {
            const std::string key = "acct/u" + std::to_string(rng() % 600);
            const auto value = ws.get(key);
            const auto version = ws.version_of(key);
            if (value.has_value() != version.has_value()) {
                failures.fetch_add(1);
            }
            ReadWriteSet s;
            s.reads.push_back(KvRead{key, version});
            if (!ws.validate_reads(s)) failures.fetch_add(1);
        }
        if (ws.fingerprint() != want_fp) failures.fetch_add(1);
        if (ws.range("acct/u10", "acct/u12").size() !=
            reference.range("acct/u10", "acct/u12").size()) {
            failures.fetch_add(1);
        }
    });
    EXPECT_EQ(failures.load(), 0);
}

TEST(ShardedStateTest, ConcurrentReadersWithWriterOnDisjointShards) {
    // Readers and a writer on different keys: per-shard locking must keep
    // this race-free (TSan checks the locking, the asserts check values).
    WorldState ws(16);
    for (int i = 0; i < 100; ++i) {
        ws.apply(KvWrite{"stable" + std::to_string(i), "s", false},
                 Version{1, 0});
    }
    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};
    std::thread writer([&] {
        for (int i = 0; i < 2000 && !stop.load(); ++i) {
            ws.apply(KvWrite{"moving" + std::to_string(i % 50),
                             std::to_string(i), false},
                     Version{2, static_cast<std::uint32_t>(i)});
        }
    });
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&, t] {
            for (int i = 0; i < 2000; ++i) {
                const auto v = ws.get("stable" + std::to_string((i + t) % 100));
                if (!v || *v != "s") failures.fetch_add(1);
            }
        });
    }
    for (auto& r : readers) r.join();
    stop.store(true);
    writer.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(ws.total_stats().keys, 150u);
}

}  // namespace
}  // namespace fl::ledger
