#include "ledger/rwset.h"

#include <gtest/gtest.h>

namespace fl::ledger {
namespace {

ReadWriteSet reads(std::vector<std::string> keys) {
    ReadWriteSet s;
    for (auto& k : keys) {
        s.reads.push_back(KvRead{std::move(k), Version{1, 0}});
    }
    return s;
}

ReadWriteSet writes(std::vector<std::string> keys) {
    ReadWriteSet s;
    for (auto& k : keys) {
        s.writes.push_back(KvWrite{std::move(k), "v", false});
    }
    return s;
}

TEST(RwSetTest, EmptyDetection) {
    ReadWriteSet s;
    EXPECT_TRUE(s.empty());
    s.reads.push_back(KvRead{"k", std::nullopt});
    EXPECT_FALSE(s.empty());
}

TEST(RwSetTest, ReadWriteConflict) {
    const ReadWriteSet reader = reads({"x"});
    const ReadWriteSet writer = writes({"x"});
    EXPECT_TRUE(reader.conflicts_with(writer));
}

TEST(RwSetTest, WriteWriteConflict) {
    EXPECT_TRUE(writes({"x"}).conflicts_with(writes({"x"})));
}

TEST(RwSetTest, NoConflictOnDisjointKeys) {
    EXPECT_FALSE(reads({"a"}).conflicts_with(writes({"b"})));
    EXPECT_FALSE(writes({"a"}).conflicts_with(writes({"b"})));
}

TEST(RwSetTest, ReadReadNeverConflicts) {
    EXPECT_FALSE(reads({"x"}).conflicts_with(reads({"x"})));
}

TEST(RwSetTest, ConflictIsDirectional) {
    // `a.conflicts_with(b)` asks whether b's writes disturb a.
    const ReadWriteSet reader = reads({"x"});
    const ReadWriteSet writer = writes({"x"});
    EXPECT_TRUE(reader.conflicts_with(writer));
    EXPECT_FALSE(writer.conflicts_with(reader));  // reader writes nothing
}

TEST(RwSetTest, RangeReadConflictsWithWriteInside) {
    ReadWriteSet scanner;
    scanner.range_reads.push_back(RangeRead{"k1", "k5", {}});
    EXPECT_TRUE(scanner.conflicts_with(writes({"k3"})));
    EXPECT_FALSE(scanner.conflicts_with(writes({"k5"})));  // end exclusive
    EXPECT_FALSE(scanner.conflicts_with(writes({"k0"})));
    EXPECT_TRUE(scanner.conflicts_with(writes({"k1"})));  // start inclusive
}

TEST(RwSetTest, SerializeDeterministic) {
    ReadWriteSet s;
    s.reads.push_back(KvRead{"key1", Version{3, 7}});
    s.reads.push_back(KvRead{"key2", std::nullopt});
    s.writes.push_back(KvWrite{"key3", "value", false});
    s.writes.push_back(KvWrite{"key4", "", true});
    s.range_reads.push_back(RangeRead{"a", "z", {KvRead{"m", Version{1, 1}}}});
    EXPECT_EQ(s.serialize(), s.serialize());
}

TEST(RwSetTest, SerializeDistinguishesContent) {
    ReadWriteSet a;
    a.writes.push_back(KvWrite{"k", "v1", false});
    ReadWriteSet b;
    b.writes.push_back(KvWrite{"k", "v2", false});
    EXPECT_NE(a.serialize(), b.serialize());

    ReadWriteSet del;
    del.writes.push_back(KvWrite{"k", "v1", true});
    EXPECT_NE(a.serialize(), del.serialize());
}

TEST(RwSetTest, SerializeDistinguishesVersionPresence) {
    ReadWriteSet a;
    a.reads.push_back(KvRead{"k", Version{0, 0}});
    ReadWriteSet b;
    b.reads.push_back(KvRead{"k", std::nullopt});
    EXPECT_NE(a.serialize(), b.serialize());
}

TEST(RwSetTest, WireSizeGrowsWithContent) {
    ReadWriteSet small = writes({"k"});
    ReadWriteSet big = writes({"k", "l", "m"});
    EXPECT_LT(small.wire_size(), big.wire_size());
}

TEST(RwSetTest, VersionOrdering) {
    EXPECT_LT((Version{1, 5}), (Version{2, 0}));
    EXPECT_LT((Version{2, 0}), (Version{2, 1}));
    EXPECT_EQ((Version{3, 3}), (Version{3, 3}));
}

}  // namespace
}  // namespace fl::ledger
