// Unit tests for the fault-schedule generator: determinism, pairing of
// down/up events, ordering, and rate realisation (DESIGN.md §11).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/fault_spec.h"
#include "fault/injector.h"

namespace fl::fault {
namespace {

FaultProfile busy_profile() {
    FaultProfile p;
    p.horizon = Duration::seconds(10);
    p.expected_osn_crashes = 2.0;
    p.osn_downtime_mean = Duration::seconds(1);
    p.expected_endorser_outages = 2.0;
    p.endorser_downtime_mean = Duration::millis(500);
    p.expected_endorser_slowdowns = 1.0;
    p.endorser_slow_mean = Duration::seconds(1);
    p.endorser_slow_factor = 3.0;
    p.expected_broker_outages = 1.0;
    p.broker_outage_mean = Duration::millis(300);
    return p;
}

bool same_schedule(const std::vector<ScheduledFault>& a,
                   const std::vector<ScheduledFault>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].at != b[i].at || a[i].kind != b[i].kind ||
            a[i].target != b[i].target || a[i].factor != b[i].factor) {
            return false;
        }
    }
    return true;
}

TEST(InjectorTest, SameProfileAndSeedGiveIdenticalSchedules) {
    const FaultProfile p = busy_profile();
    const auto a = make_fault_schedule(p, Rng(77), 3, 4);
    const auto b = make_fault_schedule(p, Rng(77), 3, 4);
    EXPECT_TRUE(same_schedule(a, b));
    EXPECT_FALSE(a.empty());
}

TEST(InjectorTest, DifferentSeedsGiveDifferentSchedules) {
    const FaultProfile p = busy_profile();
    const auto a = make_fault_schedule(p, Rng(1), 3, 4);
    const auto b = make_fault_schedule(p, Rng(2), 3, 4);
    EXPECT_FALSE(same_schedule(a, b));
}

TEST(InjectorTest, ScheduleIsSortedByTime) {
    const auto sched = make_fault_schedule(busy_profile(), Rng(5), 3, 4);
    for (std::size_t i = 1; i < sched.size(); ++i) {
        EXPECT_LE(sched[i - 1].at.as_nanos(), sched[i].at.as_nanos());
    }
}

TEST(InjectorTest, EveryDownEventHasAMatchingLaterUpEvent) {
    const auto sched = make_fault_schedule(busy_profile(), Rng(9), 3, 4);
    const std::map<FaultKind, FaultKind> recovery = {
        {FaultKind::kOsnCrash, FaultKind::kOsnRestart},
        {FaultKind::kEndorserDown, FaultKind::kEndorserUp},
        {FaultKind::kEndorserSlow, FaultKind::kEndorserNormal},
        {FaultKind::kBrokerDown, FaultKind::kBrokerUp},
    };
    for (const auto& [down, up] : recovery) {
        // Per target: equal numbers of down and up events, and scanning in
        // time order the down count never trails the up count (each outage
        // opens before it closes).
        std::map<std::uint32_t, int> open;
        for (const ScheduledFault& f : sched) {
            if (f.kind == down) ++open[f.target];
            if (f.kind == up) {
                --open[f.target];
                EXPECT_GE(open[f.target], 0)
                    << "recovery before outage for " << to_string(up);
            }
        }
        for (const auto& [target, n] : open) {
            EXPECT_EQ(n, 0) << to_string(down) << " target " << target
                            << " never recovers";
        }
    }
}

TEST(InjectorTest, IntegerRatesRealiseExactly) {
    // With a whole-number expectation the fractional part is 0, so the
    // realised count is exactly floor(expected) for every seed.
    FaultProfile p;
    p.horizon = Duration::seconds(10);
    p.expected_osn_crashes = 3.0;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        const auto sched = make_fault_schedule(p, Rng(seed), 3, 4);
        int crashes = 0;
        int restarts = 0;
        for (const ScheduledFault& f : sched) {
            crashes += f.kind == FaultKind::kOsnCrash;
            restarts += f.kind == FaultKind::kOsnRestart;
        }
        EXPECT_EQ(crashes, 3);
        EXPECT_EQ(restarts, 3);
    }
}

TEST(InjectorTest, ZeroRatesGiveEmptySchedule) {
    const FaultProfile p;  // all expected_* default to 0
    EXPECT_TRUE(make_fault_schedule(p, Rng(42), 3, 4).empty());
}

TEST(InjectorTest, TargetsStayInRange) {
    const auto sched = make_fault_schedule(busy_profile(), Rng(13), 3, 4);
    for (const ScheduledFault& f : sched) {
        switch (f.kind) {
            case FaultKind::kOsnCrash:
            case FaultKind::kOsnRestart:
                EXPECT_LT(f.target, 3u);
                break;
            case FaultKind::kEndorserDown:
            case FaultKind::kEndorserUp:
            case FaultKind::kEndorserSlow:
            case FaultKind::kEndorserNormal:
                EXPECT_LT(f.target, 4u);
                break;
            case FaultKind::kBrokerDown:
            case FaultKind::kBrokerUp:
                EXPECT_EQ(f.target, 0u);
                break;
            case FaultKind::kRaftLeaderKill:
            case FaultKind::kRaftPartition:
            case FaultKind::kRaftNodeCrash:
            case FaultKind::kRaftHeal:
            case FaultKind::kRaftDrop:
                EXPECT_LT(f.target, 3u);
                break;
            case FaultKind::kRaftNodeRestart:
                EXPECT_TRUE(f.target < 3u || f.target == 0xFFFFFFFFu);
                break;
        }
    }
}

TEST(InjectorTest, FaultSpecEnabledFlags) {
    FaultSpec spec;
    EXPECT_FALSE(spec.enabled());
    spec.messages.drop_prob = 0.01;
    EXPECT_TRUE(spec.enabled());

    FaultSpec with_schedule;
    with_schedule.schedule.push_back({Duration::seconds(1), FaultKind::kOsnCrash, 0});
    EXPECT_TRUE(with_schedule.enabled());

    FaultSpec with_profile;
    with_profile.profile = FaultProfile{};
    EXPECT_TRUE(with_profile.enabled());
}

TEST(InjectorTest, FaultKindNamesAreDistinct) {
    std::set<std::string> names;
    for (FaultKind k :
         {FaultKind::kOsnCrash, FaultKind::kOsnRestart, FaultKind::kEndorserDown,
          FaultKind::kEndorserUp, FaultKind::kEndorserSlow,
          FaultKind::kEndorserNormal, FaultKind::kBrokerDown,
          FaultKind::kBrokerUp}) {
        names.insert(to_string(k));
    }
    EXPECT_EQ(names.size(), 8u);
}

}  // namespace
}  // namespace fl::fault
