// Chaos integration tests: the full pipeline under deterministic fault
// injection — OSN crash/recovery with log replay, endorser outages and
// slow-downs, broker unavailability, message drop/duplication/delay, and
// client-side retry/resubmission (DESIGN.md §11).
//
// The invariants asserted for every chaos seed are the ISSUE's acceptance
// criteria:
//   1. all surviving OSNs emit byte-identical block sequences (prefix
//      consistency; full identity once every crashed OSN has replayed);
//   2. every committed ledger's hash chain verifies;
//   3. no transaction commits twice;
//   4. every client submission terminates in exactly one of
//      {committed, aborted, failed(reason)};
//   5. the whole run is a pure function of (config, seed): re-running
//      produces byte-identical metrics JSON.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/fabric_network.h"
#include "harness/workload.h"

namespace fl {
namespace {

core::NetworkConfig chaos_config(std::uint64_t seed) {
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = seed;
    // k-of-n endorsement so a single endorser outage is survivable.
    cfg.endorsement_k = 2;
    cfg.channel.priority_enabled = true;
    cfg.channel.priority_levels = 3;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("2:3:1");
    cfg.channel.block_size = 50;
    cfg.channel.block_timeout = Duration::millis(200);

    client::RetryParams& retry = cfg.client_params.retry;
    retry.enabled = true;
    retry.endorsement_timeout = Duration::millis(300);
    retry.max_endorse_retries = 3;
    retry.commit_timeout = Duration::seconds(3);
    retry.max_resubmissions = 3;
    retry.backoff_base = Duration::millis(50);

    fault::FaultSpec& faults = cfg.faults;
    faults.messages.drop_prob = 0.03;
    faults.messages.dup_prob = 0.02;
    faults.messages.delay_prob = 0.05;
    faults.messages.delay_mean = Duration::millis(40);
    fault::FaultProfile profile;
    profile.horizon = Duration::seconds(6);
    profile.expected_osn_crashes = 1.5;
    profile.osn_downtime_mean = Duration::seconds(1);
    profile.expected_endorser_outages = 1.0;
    profile.endorser_downtime_mean = Duration::millis(800);
    profile.expected_endorser_slowdowns = 1.0;
    profile.endorser_slow_mean = Duration::seconds(1);
    profile.endorser_slow_factor = 4.0;
    profile.expected_broker_outages = 0.7;
    profile.broker_outage_mean = Duration::millis(400);
    faults.profile = profile;
    return cfg;
}

struct Outcome {
    std::vector<client::TxRecord> records;
    core::MetricsCollector metrics;
};

Outcome drive(core::FabricNetwork& net, std::uint64_t total, double tps_per_client) {
    Outcome out;
    net.set_tx_sink([&out](const client::TxRecord& r) {
        out.records.push_back(r);
        out.metrics.record(r);
    });
    harness::Workload workload;
    for (std::size_t c = 0; c < net.clients().size(); ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = tps_per_client;
        load.generate = harness::priority_class_mix({1, 2, 1});
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(total);
    harness::WorkloadDriver driver(net, std::move(workload), Rng(net.config().seed));
    driver.start();
    net.run();
    return out;
}

std::string metrics_json(const core::MetricsCollector& metrics) {
    std::ostringstream os;
    core::write_metrics_json(os, metrics);
    return os.str();
}

void check_invariants(core::FabricNetwork& net, const Outcome& out) {
    // (1) Block-sequence agreement across the ordering service.  The chaos
    // profile pairs every crash with a restart, so by drain time every OSN
    // has replayed the shared log in full.
    EXPECT_TRUE(net.osn_blocks_prefix_consistent());
    bool all_alive = true;
    for (const auto& osn : net.osns()) {
        EXPECT_EQ(osn->replay_hash_mismatches(), 0u);
        all_alive = all_alive && osn->alive();
    }
    EXPECT_TRUE(all_alive);
    if (all_alive) {
        EXPECT_TRUE(net.osn_blocks_identical());
    }

    // (2) Every committed ledger verifies end to end.
    for (const auto& peer : net.peers()) {
        EXPECT_TRUE(peer->chain().verify_chain());
        EXPECT_GT(peer->chain().height(), 0u);
    }

    // (3) No transaction commits twice: on any peer's chain a tx id carries
    // the VALID verdict at most once (resubmitted duplicates must land as
    // kDuplicateTxId, never as a second commit).
    const ledger::BlockStore& chain = net.peers().front()->chain();
    std::set<TxId> committed;
    for (std::size_t b = 0; b < chain.height(); ++b) {
        const ledger::Block& block = chain.at(b);
        ASSERT_EQ(block.validation_codes.size(), block.transactions.size());
        for (std::size_t i = 0; i < block.transactions.size(); ++i) {
            if (block.validation_codes[i] == TxValidationCode::kValid) {
                EXPECT_TRUE(committed.insert(block.transactions[i].tx_id()).second)
                    << "tx committed twice";
            }
        }
    }

    // (4) Exactly one terminal state per submission: nothing is left
    // pending, and every submitted tx is accounted committed / aborted /
    // failed-with-reason.
    std::uint64_t submitted = 0;
    for (const auto& client : net.clients()) {
        EXPECT_EQ(client->pending(), 0u);
        EXPECT_EQ(client->submitted(),
                  client->completed() + client->client_side_failures());
        submitted += client->submitted();
    }
    EXPECT_EQ(out.metrics.total(), submitted);
    EXPECT_EQ(out.records.size(), submitted);
}

TEST(ChaosTest, InvariantsHoldAcrossSeeds) {
    // The ISSUE requires the invariant suite to pass for >= 5 distinct seeds.
    for (std::uint64_t seed : {101u, 202u, 303u, 404u, 505u, 606u}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        core::FabricNetwork net(chaos_config(seed));
        EXPECT_FALSE(net.fault_schedule().empty());
        const Outcome out = drive(net, 300, 50.0);
        check_invariants(net, out);
        // The fault mix must actually exercise the degradation machinery in
        // at least some runs; this seed set does (pinned by determinism).
        EXPECT_GT(net.faults_applied(), 0u);
    }
}

TEST(ChaosTest, ChaosRunIsAPureFunctionOfConfigAndSeed) {
    core::FabricNetwork a(chaos_config(777));
    core::FabricNetwork b(chaos_config(777));
    const Outcome ra = drive(a, 250, 50.0);
    const Outcome rb = drive(b, 250, 50.0);
    // Identical fault schedules...
    ASSERT_EQ(a.fault_schedule().size(), b.fault_schedule().size());
    for (std::size_t i = 0; i < a.fault_schedule().size(); ++i) {
        EXPECT_EQ(a.fault_schedule()[i].at, b.fault_schedule()[i].at);
        EXPECT_EQ(a.fault_schedule()[i].kind, b.fault_schedule()[i].kind);
        EXPECT_EQ(a.fault_schedule()[i].target, b.fault_schedule()[i].target);
    }
    // ...identical retry timelines (same retry/resubmission counters per
    // client), identical ledgers, and byte-identical metrics JSON.
    ASSERT_EQ(a.clients().size(), b.clients().size());
    for (std::size_t c = 0; c < a.clients().size(); ++c) {
        EXPECT_EQ(a.clients()[c]->endorse_retries(), b.clients()[c]->endorse_retries());
        EXPECT_EQ(a.clients()[c]->resubmissions(), b.clients()[c]->resubmissions());
        EXPECT_EQ(a.clients()[c]->endorse_timeouts(), b.clients()[c]->endorse_timeouts());
        EXPECT_EQ(a.clients()[c]->commit_timeouts(), b.clients()[c]->commit_timeouts());
    }
    EXPECT_EQ(a.peers().front()->chain().chain_fingerprint(),
              b.peers().front()->chain().chain_fingerprint());
    EXPECT_EQ(metrics_json(ra.metrics), metrics_json(rb.metrics));
}

TEST(ChaosTest, DifferentSeedsGiveDifferentChaos) {
    core::FabricNetwork a(chaos_config(11));
    core::FabricNetwork b(chaos_config(12));
    const Outcome ra = drive(a, 250, 50.0);
    const Outcome rb = drive(b, 250, 50.0);
    EXPECT_NE(metrics_json(ra.metrics), metrics_json(rb.metrics));
}

TEST(ChaosTest, ExplicitCrashWithoutRestartLeavesConsistentPrefixes) {
    // A hand-written fault plan: OSN 0 crashes at 800 ms and never comes
    // back.  Its block sequence must be a strict prefix of the survivors',
    // peers fed by it hold a valid (shorter) chain, and clients anchored to
    // those peers terminate via commit-timeout failure instead of hanging.
    core::NetworkConfig cfg = chaos_config(99);
    cfg.faults.messages = {};
    cfg.faults.profile.reset();
    cfg.faults.schedule = {{Duration::millis(800), fault::FaultKind::kOsnCrash, 0}};
    core::FabricNetwork net(cfg);
    const Outcome out = drive(net, 300, 50.0);

    EXPECT_EQ(net.faults_applied(), 1u);
    EXPECT_FALSE(net.osns()[0]->alive());
    EXPECT_TRUE(net.osn_blocks_prefix_consistent());
    EXPECT_LT(net.osns()[0]->block_hashes().size(),
              net.osns()[1]->block_hashes().size());
    for (const auto& peer : net.peers()) {
        EXPECT_TRUE(peer->chain().verify_chain());
    }
    std::uint64_t submitted = 0;
    for (const auto& client : net.clients()) {
        EXPECT_EQ(client->pending(), 0u);
        EXPECT_EQ(client->submitted(),
                  client->completed() + client->client_side_failures());
        submitted += client->submitted();
    }
    EXPECT_EQ(out.metrics.total(), submitted);
    // Peers 0 and 3 stream from the dead OSN, so their clients' later txs
    // must fail with the typed commit-timeout reason.
    EXPECT_GT(out.metrics.commit_timeout_failures(), 0u);
}

TEST(ChaosTest, EndorserOutageSurvivedByKofNPolicy) {
    // One endorser down for the whole run: with k=2-of-4 every transaction
    // can still gather a satisfying endorsement set after the timeout fires.
    core::NetworkConfig cfg = chaos_config(7);
    cfg.faults.messages = {};
    cfg.faults.profile.reset();
    cfg.faults.schedule = {{Duration::millis(1), fault::FaultKind::kEndorserDown, 1}};
    core::FabricNetwork net(cfg);
    const Outcome out = drive(net, 200, 50.0);

    EXPECT_GT(net.peers()[1]->proposals_dropped(), 0u);
    // Every submission still terminates, and the endorsement timeouts that
    // fired resolved via the partial-quorum path (k satisfied), so no
    // endorsement-timeout failures occur.
    std::uint64_t timeouts = 0;
    for (const auto& client : net.clients()) {
        EXPECT_EQ(client->pending(), 0u);
        timeouts += client->endorse_timeouts();
    }
    EXPECT_GT(timeouts, 0u);
    EXPECT_EQ(out.metrics.endorse_timeout_failures(), 0u);
    EXPECT_EQ(out.metrics.client_failures(), 0u);
    EXPECT_TRUE(net.chains_identical());
    EXPECT_TRUE(net.states_identical());
}

TEST(ChaosTest, FaultFreeRunWithRetryArmedSeesNoDegradation) {
    // Retry machinery enabled but no faults configured: timers must never
    // fire under light load and the degradation counters stay zero.
    core::NetworkConfig cfg = chaos_config(11);
    cfg.faults = {};
    ASSERT_FALSE(cfg.faults.enabled());
    cfg.client_params.retry.endorsement_timeout = Duration::millis(500);
    core::FabricNetwork net(cfg);
    const Outcome out = drive(net, 300, 50.0);

    EXPECT_EQ(out.metrics.committed_valid(), 300u);
    EXPECT_EQ(out.metrics.client_failures(), 0u);
    EXPECT_EQ(out.metrics.endorse_retries_total(), 0u);
    EXPECT_EQ(out.metrics.resubmissions_total(), 0u);
    for (const auto& client : net.clients()) {
        EXPECT_EQ(client->endorse_timeouts(), 0u);
        EXPECT_EQ(client->commit_timeouts(), 0u);
    }
    EXPECT_TRUE(net.osn_blocks_identical());
    EXPECT_TRUE(net.chains_identical());
}

TEST(ChaosTest, OsnCrashAndRestartReplaysToIdenticalChain) {
    // Crash OSN 1 mid-run and bring it back: Kafka-style replay from the
    // broker log must rebuild the exact block sequence (hash-verified
    // internally via replay_hash_mismatches).
    core::NetworkConfig cfg = chaos_config(31);
    cfg.faults.messages = {};
    cfg.faults.profile.reset();
    cfg.faults.schedule = {
        {Duration::millis(700), fault::FaultKind::kOsnCrash, 1},
        {Duration::millis(2200), fault::FaultKind::kOsnRestart, 1},
    };
    core::FabricNetwork net(cfg);
    drive(net, 300, 50.0);

    EXPECT_EQ(net.osns()[1]->crashes(), 1u);
    EXPECT_EQ(net.osns()[1]->restarts(), 1u);
    EXPECT_EQ(net.osns()[1]->replay_hash_mismatches(), 0u);
    EXPECT_TRUE(net.osns()[1]->alive());
    EXPECT_TRUE(net.osn_blocks_identical());
    EXPECT_TRUE(net.chains_identical());
    EXPECT_TRUE(net.states_identical());
}

}  // namespace
}  // namespace fl
