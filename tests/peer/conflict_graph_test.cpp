#include "peer/conflict_graph.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fl::peer {
namespace {

/// Builds a ReadWriteSet from plain key lists (versions don't matter for
/// scheduling — only which keys are touched).
ledger::ReadWriteSet rw(std::vector<std::string> reads,
                        std::vector<std::string> writes,
                        std::vector<std::pair<std::string, std::string>> ranges = {}) {
    ledger::ReadWriteSet s;
    for (auto& k : reads) s.reads.push_back(ledger::KvRead{std::move(k), {}});
    for (auto& k : writes) s.writes.push_back(ledger::KvWrite{std::move(k), "v", false});
    for (auto& [lo, hi] : ranges) {
        s.range_reads.push_back(ledger::RangeRead{std::move(lo), std::move(hi), {}});
    }
    return s;
}

std::vector<const ledger::ReadWriteSet*> ptrs(const std::vector<ledger::ReadWriteSet>& sets) {
    std::vector<const ledger::ReadWriteSet*> out;
    out.reserve(sets.size());
    for (const auto& s : sets) out.push_back(&s);
    return out;
}

TEST(ConflictGraphTest, EmptyInput) {
    const WaveSchedule ws = build_wave_schedule({});
    EXPECT_EQ(ws.wave_count, 0u);
    EXPECT_TRUE(ws.waves.empty());
    EXPECT_EQ(ws.component_count, 0u);
    EXPECT_EQ(ws.edge_count, 0u);
}

TEST(ConflictGraphTest, IndependentTransactionsFormOneWave) {
    const std::vector<ledger::ReadWriteSet> disjoint = {
        rw({}, {"a"}), rw({}, {"b"}), rw({"x"}, {"c"})};
    const WaveSchedule ws = build_wave_schedule(ptrs(disjoint));
    EXPECT_EQ(ws.wave_count, 1u);
    EXPECT_EQ(ws.waves[0], (std::vector<std::uint32_t>{0, 1, 2}));
    EXPECT_EQ(ws.component_count, 3u);
    EXPECT_EQ(ws.max_component_size, 1u);
    EXPECT_EQ(ws.edge_count, 0u);
}

TEST(ConflictGraphTest, WriteWriteChainSerializes) {
    const std::vector<ledger::ReadWriteSet> sets = {
        rw({}, {"k"}), rw({}, {"k"}), rw({}, {"k"})};
    const WaveSchedule ws = build_wave_schedule(ptrs(sets));
    EXPECT_EQ(ws.wave_of, (std::vector<std::uint32_t>{0, 1, 2}));
    EXPECT_EQ(ws.wave_count, 3u);
    EXPECT_EQ(ws.component_count, 1u);
    EXPECT_EQ(ws.max_component_size, 3u);
    // Immediate-predecessor links only: 1->0 and 2->1.
    EXPECT_EQ(ws.edge_count, 2u);
}

TEST(ConflictGraphTest, ReadAfterWriteDepends) {
    const std::vector<ledger::ReadWriteSet> sets = {rw({}, {"k"}),
                                                    rw({"k"}, {"out"})};
    const WaveSchedule ws = build_wave_schedule(ptrs(sets));
    EXPECT_EQ(ws.wave_of, (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(ws.component_count, 1u);
}

TEST(ConflictGraphTest, WriteAfterReadDoesNotDepend) {
    // An earlier READER never constrains a later writer: accepted entries
    // carry writes only, exactly like the serial conflict scan.
    const std::vector<ledger::ReadWriteSet> sets = {rw({"k"}, {"out"}),
                                                    rw({}, {"k"})};
    const WaveSchedule ws = build_wave_schedule(ptrs(sets));
    EXPECT_EQ(ws.wave_of, (std::vector<std::uint32_t>{0, 0}));
    EXPECT_EQ(ws.wave_count, 1u);
    EXPECT_EQ(ws.edge_count, 0u);
    EXPECT_EQ(ws.component_count, 2u);
}

TEST(ConflictGraphTest, TransitivityThroughWriterChain) {
    // Writers of "k" at 0 and 2; a reader at 4 links only to 2, but lands in
    // wave 2 because the chain 0 -> 2 -> 4 is transitive through waves.
    const std::vector<ledger::ReadWriteSet> sets = {
        rw({}, {"k"}), rw({}, {"u1"}), rw({}, {"k"}), rw({}, {"u2"}),
        rw({"k"}, {"out"})};
    const WaveSchedule ws = build_wave_schedule(ptrs(sets));
    EXPECT_EQ(ws.wave_of, (std::vector<std::uint32_t>{0, 0, 1, 0, 2}));
    EXPECT_EQ(ws.wave_count, 3u);
    EXPECT_EQ(ws.waves[0], (std::vector<std::uint32_t>{0, 1, 3}));
    EXPECT_EQ(ws.waves[1], (std::vector<std::uint32_t>{2}));
    EXPECT_EQ(ws.waves[2], (std::vector<std::uint32_t>{4}));
    EXPECT_EQ(ws.edge_count, 2u);  // 2->0 and 4->2, not 4->0
}

TEST(ConflictGraphTest, RangeReadCoversWritersInside) {
    const std::vector<ledger::ReadWriteSet> sets = {
        rw({}, {"r/m"}),   // inside [r/, r/z)
        rw({}, {"s/x"}),   // outside
        rw({}, {}, {{"r/", "r/z"}})};
    const WaveSchedule ws = build_wave_schedule(ptrs(sets));
    EXPECT_EQ(ws.wave_of, (std::vector<std::uint32_t>{0, 0, 1}));
    EXPECT_EQ(ws.edge_count, 1u);
    EXPECT_EQ(ws.component_count, 2u);
}

TEST(ConflictGraphTest, NullEntriesAreInertSingletons) {
    // Position 1 failed an order-independent check: its write of "k" must
    // neither serialize 0 and 2 against it nor appear in any wave list.
    const ledger::ReadWriteSet a = rw({}, {"k"});
    const ledger::ReadWriteSet c = rw({"k"}, {"out"});
    const WaveSchedule ws = build_wave_schedule({&a, nullptr, &c});
    EXPECT_EQ(ws.wave_of, (std::vector<std::uint32_t>{0, 0, 1}));
    ASSERT_EQ(ws.wave_count, 2u);
    EXPECT_EQ(ws.waves[0], (std::vector<std::uint32_t>{0}));
    EXPECT_EQ(ws.waves[1], (std::vector<std::uint32_t>{2}));
    // Two components: {0, 2} linked through "k", and the null singleton.
    EXPECT_EQ(ws.component_count, 2u);
    EXPECT_EQ(ws.component_of[0], ws.component_of[2]);
    EXPECT_NE(ws.component_of[1], ws.component_of[0]);
}

TEST(ConflictGraphTest, DisjointChainsAreSeparateComponents) {
    const std::vector<ledger::ReadWriteSet> sets = {
        rw({}, {"a"}), rw({}, {"b"}), rw({}, {"a"}), rw({}, {"b"}),
        rw({}, {"c"})};
    const WaveSchedule ws = build_wave_schedule(ptrs(sets));
    EXPECT_EQ(ws.wave_of, (std::vector<std::uint32_t>{0, 0, 1, 1, 0}));
    EXPECT_EQ(ws.component_count, 3u);
    EXPECT_EQ(ws.max_component_size, 2u);
    // Components are numbered by first appearance.
    EXPECT_EQ(ws.component_of[0], ws.component_of[2]);
    EXPECT_EQ(ws.component_of[1], ws.component_of[3]);
    EXPECT_NE(ws.component_of[0], ws.component_of[1]);
    EXPECT_NE(ws.component_of[4], ws.component_of[0]);
}

TEST(ConflictGraphTest, WavesPartitionCandidatesAscending) {
    const std::vector<ledger::ReadWriteSet> sets = {
        rw({}, {"a"}), rw({"a"}, {"b"}), rw({"b"}, {"c"}), rw({}, {"z"}),
        rw({"a"}, {"y"})};
    const WaveSchedule ws = build_wave_schedule(ptrs(sets));
    std::vector<bool> seen(sets.size(), false);
    std::size_t total = 0;
    for (const auto& wave : ws.waves) {
        for (std::size_t k = 1; k < wave.size(); ++k) {
            EXPECT_LT(wave[k - 1], wave[k]);
        }
        for (const std::uint32_t pos : wave) {
            EXPECT_FALSE(seen[pos]);
            seen[pos] = true;
            ++total;
        }
    }
    EXPECT_EQ(total, sets.size());
}

TEST(ConflictGraphTest, DuplicateWritesOfOneKeyCountOnce) {
    ledger::ReadWriteSet twice;
    twice.writes.push_back(ledger::KvWrite{"k", "v1", false});
    twice.writes.push_back(ledger::KvWrite{"k", "v2", false});
    const ledger::ReadWriteSet reader = rw({"k"}, {});
    const WaveSchedule ws = build_wave_schedule({&twice, &reader});
    EXPECT_EQ(ws.wave_of, (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(ws.edge_count, 1u);
}

}  // namespace
}  // namespace fl::peer
