#include "peer/endorser.h"

#include <gtest/gtest.h>

namespace fl::peer {
namespace {

struct Fixture {
    chaincode::Registry registry = chaincode::Registry::with_standard_contracts(3);
    ledger::WorldState state;
    crypto::KeyStore keys;
    crypto::Identity endorser_id{"org0.peer0", OrgId{0}};
    StaticChaincodeCalculator calculator;

    Fixture() {
        keys.register_identity(endorser_id);
        keys.register_identity({"org1.peer0", OrgId{1}});
    }

    CalculatorContext ctx() {
        CalculatorContext c;
        c.registry = &registry;
        c.priority_levels = 3;
        return c;
    }

    ledger::Proposal proposal(const std::string& cc, const std::string& fn,
                              std::vector<std::string> args) {
        ledger::Proposal p;
        p.tx_id = TxId{1};
        p.chaincode = cc;
        p.function = fn;
        p.args = std::move(args);
        return p;
    }
};

TEST(EndorserTest, SuccessfulEndorsement) {
    Fixture f;
    const auto result = endorse(f.proposal("record_keeper", "log", {"r1", "x"}),
                                f.state, f.registry, f.calculator, f.ctx(), f.keys,
                                f.endorser_id);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.endorsement.endorser_identity, "org0.peer0");
    EXPECT_EQ(result.endorsement.org, OrgId{0});
    EXPECT_EQ(result.endorsement.priority, 2u);  // record_keeper static priority
    EXPECT_EQ(result.rwset.writes.size(), 1u);
}

TEST(EndorserTest, SignatureVerifies) {
    Fixture f;
    const auto p = f.proposal("asset_transfer", "create", {"alice", "100"});
    const auto result =
        endorse(p, f.state, f.registry, f.calculator, f.ctx(), f.keys, f.endorser_id);
    ASSERT_TRUE(result.ok);
    EXPECT_TRUE(verify_endorsement(p, result.rwset, result.endorsement, f.keys));
}

TEST(EndorserTest, UnknownChaincodeFails) {
    Fixture f;
    const auto result = endorse(f.proposal("ghost", "fn", {}), f.state, f.registry,
                                f.calculator, f.ctx(), f.keys, f.endorser_id);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("unknown chaincode"), std::string::npos);
}

TEST(EndorserTest, ChaincodeFailurePropagates) {
    Fixture f;
    const auto result =
        endorse(f.proposal("asset_transfer", "transfer", {"ghost", "x", "1"}),
                f.state, f.registry, f.calculator, f.ctx(), f.keys, f.endorser_id);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.error.empty());
}

TEST(EndorserTest, TamperedRwsetFailsVerification) {
    Fixture f;
    const auto p = f.proposal("record_keeper", "log", {"r1", "x"});
    const auto result =
        endorse(p, f.state, f.registry, f.calculator, f.ctx(), f.keys, f.endorser_id);
    ASSERT_TRUE(result.ok);
    ledger::ReadWriteSet tampered = result.rwset;
    tampered.writes[0].value = "evil";
    EXPECT_FALSE(verify_endorsement(p, tampered, result.endorsement, f.keys));
}

TEST(EndorserTest, TamperedPriorityFailsVerification) {
    // A client cannot promote a transaction by editing the signed vote.
    Fixture f;
    const auto p = f.proposal("record_keeper", "log", {"r1", "x"});
    auto result =
        endorse(p, f.state, f.registry, f.calculator, f.ctx(), f.keys, f.endorser_id);
    ASSERT_TRUE(result.ok);
    ASSERT_EQ(result.endorsement.priority, 2u);
    result.endorsement.priority = 0;  // forged promotion
    EXPECT_FALSE(verify_endorsement(p, result.rwset, result.endorsement, f.keys));
}

TEST(EndorserTest, TamperedProposalFailsVerification) {
    Fixture f;
    const auto p = f.proposal("record_keeper", "log", {"r1", "x"});
    const auto result =
        endorse(p, f.state, f.registry, f.calculator, f.ctx(), f.keys, f.endorser_id);
    ASSERT_TRUE(result.ok);
    auto p2 = p;
    p2.args = {"r1", "forged"};
    EXPECT_FALSE(verify_endorsement(p2, result.rwset, result.endorsement, f.keys));
}

TEST(EndorserTest, StateReadsReflectEndorserState) {
    Fixture f;
    f.state.apply(ledger::KvWrite{"acct/alice", "500", false}, ledger::Version{3, 7});
    const auto result =
        endorse(f.proposal("asset_transfer", "query", {"alice"}), f.state, f.registry,
                f.calculator, f.ctx(), f.keys, f.endorser_id);
    ASSERT_TRUE(result.ok);
    ASSERT_EQ(result.rwset.reads.size(), 1u);
    EXPECT_EQ(result.rwset.reads[0].version, (ledger::Version{3, 7}));
}

}  // namespace
}  // namespace fl::peer
