// Differential tests: the conflict-graph wave validator must reproduce the
// serial reference validator bit for bit — codes, counters, applied state —
// on adversarial randomized workloads and at every pool size.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "peer/validator.h"

namespace fl::peer {
namespace {

struct Fixture {
    crypto::KeyStore keys;
    policy::ChannelConfig channel;
    std::unique_ptr<policy::ConsolidationPolicy> consolidation;

    Fixture() {
        channel.priority_levels = 3;
        channel.priority_enabled = true;
        channel.consolidation_spec = "kofn:2";
        channel.endorsement_policy = policy::EndorsementPolicy::k_of_n_orgs(2, 4);
        consolidation = policy::make_consolidation_policy(channel.consolidation_spec);
        for (std::uint64_t org = 0; org < 4; ++org) {
            keys.register_identity(
                {"org" + std::to_string(org) + ".peer0", OrgId{org}});
        }
    }

    void endorse(ledger::Envelope& env, PriorityLevel priority) {
        env.endorsements.clear();
        for (std::uint64_t org = 0; org < 4; ++org) {
            ledger::Endorsement e;
            e.endorser_identity = "org" + std::to_string(org) + ".peer0";
            e.org = OrgId{org};
            e.priority = priority;
            const Bytes payload = ledger::Envelope::endorsement_payload(
                env.proposal, env.rwset, priority);
            e.response_hash =
                crypto::sha256(BytesView(payload.data(), payload.size()));
            e.signature = keys.sign(e.endorser_identity,
                                    BytesView(payload.data(), payload.size()));
            env.endorsements.push_back(e);
        }
    }
};

/// One validator's full lifecycle state, advanced block by block.
struct Committer {
    ledger::WorldState state;
    std::unordered_set<std::uint64_t> seen;
    ValidatorConfig cfg;

    ValidationOutcome commit(const Fixture& f, const ledger::Block& block) {
        ValidationOutcome out =
            validate_block(block, state, f.channel, f.consolidation.get(), f.keys,
                           seen, cfg);
        apply_block(block, out, state);
        return out;
    }
};

void expect_same_decisions(const ValidationOutcome& a, const ValidationOutcome& b,
                           const char* context) {
    SCOPED_TRACE(context);
    EXPECT_EQ(a.codes, b.codes);
    EXPECT_EQ(a.valid_count, b.valid_count);
    EXPECT_EQ(a.conflicts_priority_resolved, b.conflicts_priority_resolved);
    EXPECT_EQ(a.conflicts_fifo_resolved, b.conflicts_fifo_resolved);
}

/// Adversarial random block: hot-key contention, priority ties, duplicate tx
/// ids, forged endorsements, stale reads, bad consolidations, range reads.
ledger::Block random_block(Fixture& f, std::mt19937_64& rng,
                           const ledger::WorldState& state, BlockNumber number,
                           std::uint64_t& next_id, std::size_t n) {
    const auto hot = [&rng] { return "hot" + std::to_string(rng() % 12); };
    std::vector<ledger::Envelope> txs;
    txs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ledger::Envelope env;
        // ~1/12 replays: reuse an id from this or an earlier block.
        const bool duplicate = next_id > 1 && rng() % 12 == 0;
        env.proposal.tx_id =
            TxId{duplicate ? 1 + rng() % (next_id - 1) : next_id++};
        env.proposal.chaincode = "test";
        env.proposal.function = "fn";
        const PriorityLevel priority = static_cast<PriorityLevel>(rng() % 3);
        env.consolidated_priority = priority;
        for (std::uint64_t r = rng() % 3; r > 0; --r) {
            const std::string key = hot();
            auto version = state.version_of(key);
            if (rng() % 10 == 0) {
                version = ledger::Version{number + 77, 0};  // stale vs committed
            }
            env.rwset.reads.push_back(ledger::KvRead{key, version});
        }
        for (std::uint64_t w = 1 + rng() % 2; w > 0; --w) {
            env.rwset.writes.push_back(ledger::KvWrite{hot(), "v", false});
        }
        if (rng() % 8 == 0) {
            // Covers hot2..hot6 ("hot10"/"hot11" sort before "hot2").
            env.rwset.range_reads.push_back(ledger::RangeRead{"hot2", "hot7", {}});
        }
        f.endorse(env, priority);
        if (rng() % 12 == 0) {
            // Forge 3 of 4 signatures -> the 2-of-4 policy must fail.
            for (std::size_t e = 1; e < env.endorsements.size(); ++e) {
                env.endorsements[e].signature.mac[0] ^= 0xFF;
            }
        } else if (rng() % 12 == 0) {
            env.consolidated_priority = (priority + 1) % 3;  // bad consolidation
        }
        txs.push_back(std::move(env));
    }
    return ledger::make_block(number, nullptr, std::move(txs));
}

TEST(ParallelValidatorTest, RandomizedDifferentialAgainstSerialOracle) {
    ThreadPool pool(3);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Fixture f;
        std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL);
        Committer serial;
        serial.cfg.prioritized = true;
        serial.cfg.verify_consolidation = true;
        Committer parallel;  // WorldState is non-copyable; clone the cfg only
        parallel.cfg = serial.cfg;
        parallel.cfg.mode = ValidationMode::kParallel;
        parallel.cfg.pool = &pool;

        std::uint64_t next_id = 1;
        for (BlockNumber b = 1; b <= 3; ++b) {
            const ledger::Block block =
                random_block(f, rng, serial.state, b, next_id, 48);
            const ValidationOutcome s = serial.commit(f, block);
            const ValidationOutcome p = parallel.commit(f, block);
            const std::string ctx =
                "seed " + std::to_string(seed) + " block " + std::to_string(b);
            expect_same_decisions(s, p, ctx.c_str());
            ASSERT_EQ(serial.state.fingerprint(), parallel.state.fingerprint())
                << ctx;
            // The wave path must actually have run (48 txs >= min 16).
            EXPECT_GT(p.parallel_waves, 0u) << ctx;
            EXPECT_EQ(s.parallel_waves, 0u) << ctx;
        }
    }
}

TEST(ParallelValidatorTest, VanillaFifoModeAlsoMatches) {
    // Block-order (non-prioritized) processing through the wave path.
    ThreadPool pool(2);
    for (std::uint64_t seed = 20; seed < 24; ++seed) {
        Fixture f;
        std::mt19937_64 rng(seed);
        Committer serial;  // prioritized off, consolidation off
        Committer parallel;
        parallel.cfg.mode = ValidationMode::kParallel;
        parallel.cfg.pool = &pool;
        std::uint64_t next_id = 1;
        const ledger::Block block =
            random_block(f, rng, serial.state, 1, next_id, 40);
        expect_same_decisions(serial.commit(f, block), parallel.commit(f, block),
                              "vanilla");
        EXPECT_EQ(serial.state.fingerprint(), parallel.state.fingerprint());
    }
}

TEST(ParallelValidatorTest, OutcomeIdenticalAcrossPoolSizes) {
    Fixture f;
    std::mt19937_64 rng(7);
    ledger::WorldState state;
    std::uint64_t next_id = 1;
    const ledger::Block block = random_block(f, rng, state, 1, next_id, 64);

    std::vector<ValidationOutcome> outcomes;
    for (const unsigned threads : {1u, 3u, 8u}) {
        ThreadPool pool(threads);
        Committer c;
        c.cfg.prioritized = true;
        c.cfg.verify_consolidation = true;
        c.cfg.mode = ValidationMode::kParallel;
        c.cfg.pool = &pool;
        outcomes.push_back(c.commit(f, block));
    }
    for (std::size_t i = 1; i < outcomes.size(); ++i) {
        expect_same_decisions(outcomes[0], outcomes[i], "pool size");
        // The schedule is a pure function of the block: stats match too.
        EXPECT_EQ(outcomes[0].parallel_waves, outcomes[i].parallel_waves);
        EXPECT_EQ(outcomes[0].conflict_components, outcomes[i].conflict_components);
        EXPECT_EQ(outcomes[0].conflict_edges, outcomes[i].conflict_edges);
        EXPECT_EQ(outcomes[0].largest_component, outcomes[i].largest_component);
        EXPECT_EQ(outcomes[0].wave_sizes, outcomes[i].wave_sizes);
    }
    EXPECT_GT(outcomes[0].parallel_waves, 0u);
}

TEST(ParallelValidatorTest, FallsBackToSerialWithoutPoolOrOnSmallBlocks) {
    Fixture f;
    std::mt19937_64 rng(3);
    ledger::WorldState state;
    std::uint64_t next_id = 1;

    Committer no_pool;
    no_pool.cfg.prioritized = true;
    no_pool.cfg.verify_consolidation = true;
    no_pool.cfg.mode = ValidationMode::kParallel;  // pool stays null
    const ledger::Block big = random_block(f, rng, state, 1, next_id, 32);
    EXPECT_EQ(no_pool.commit(f, big).parallel_waves, 0u);

    ThreadPool pool(2);
    Committer small_blocks;
    small_blocks.cfg.prioritized = true;
    small_blocks.cfg.verify_consolidation = true;
    small_blocks.cfg.mode = ValidationMode::kParallel;
    small_blocks.cfg.pool = &pool;
    const ledger::Block small = random_block(f, rng, state, 1, next_id, 8);
    EXPECT_EQ(small_blocks.commit(f, small).parallel_waves, 0u);  // 8 < 16

    small_blocks.cfg.parallel_min_txs = 4;
    const ledger::Block small2 = random_block(f, rng, state, 2, next_id, 8);
    EXPECT_GT(small_blocks.commit(f, small2).parallel_waves, 0u);
}

TEST(ParallelValidatorTest, PriorityWinVisibleEarlyDoesNotLeakAcrossOrder) {
    // Regression for the order_pos filter: a LOW-priority tx early in block
    // order writes "k" and is independent (wave 0); a HIGH-priority tx later
    // in block order also writes "k".  In prioritized processing order the
    // high tx comes first and must win — even though wave processing could
    // have decided the low tx in the same wave batch.
    Fixture f;
    ThreadPool pool(2);
    Committer serial;
    serial.cfg.prioritized = true;
    serial.cfg.verify_consolidation = true;
    serial.cfg.parallel_min_txs = 2;
    Committer parallel;
    parallel.cfg = serial.cfg;
    parallel.cfg.mode = ValidationMode::kParallel;
    parallel.cfg.pool = &pool;

    std::vector<ledger::Envelope> txs;
    std::uint64_t id = 1;
    const auto tx = [&](PriorityLevel prio, std::vector<std::string> writes) {
        ledger::Envelope env;
        env.proposal.tx_id = TxId{id++};
        env.proposal.chaincode = "test";
        env.proposal.function = "fn";
        for (auto& k : writes) {
            env.rwset.writes.push_back(ledger::KvWrite{std::move(k), "v", false});
        }
        env.consolidated_priority = prio;
        f.endorse(env, prio);
        return env;
    };
    txs.push_back(tx(2, {"k"}));        // low priority, first in block
    txs.push_back(tx(0, {"k", "m"}));   // high priority, later in block
    txs.push_back(tx(1, {"m", "q"}));   // chained behind the high tx via "m"
    const ledger::Block block = ledger::make_block(1, nullptr, txs);

    const ValidationOutcome s = serial.commit(f, block);
    const ValidationOutcome p = parallel.commit(f, block);
    expect_same_decisions(s, p, "early-visibility");
    EXPECT_EQ(s.codes[0], TxValidationCode::kWriteConflict);  // low loses "k"
    EXPECT_TRUE(is_valid(s.codes[1]));                        // high wins both
    EXPECT_EQ(s.codes[2], TxValidationCode::kWriteConflict);  // mid loses "m"
    EXPECT_EQ(s.conflicts_priority_resolved, 2u);
    EXPECT_EQ(serial.state.fingerprint(), parallel.state.fingerprint());
}

TEST(ParallelValidatorTest, EndToEndNetworkMatchesSerialReference) {
    // Full pipeline: two single-run experiments with identical seeds, one
    // committing serially, one through the wave validator, must produce the
    // same world state and hash chain on every peer.
    harness::ExperimentSpec spec;
    spec.config.channel.priority_enabled = true;
    spec.config.channel.block_size = 50;
    spec.config.channel.block_timeout = Duration::millis(300);
    spec.runs = 1;
    spec.base_seed = 91;
    spec.make_workload = [] {
        harness::Workload w;
        for (std::size_t c = 0; c < 3; ++c) {
            harness::LoadSpec load;
            load.client_index = c;
            load.tps = 120.0;
            load.generate = harness::contended_transfers(5);
            w.loads.push_back(std::move(load));
        }
        w.distribute_total(600);
        return w;
    };
    spec.instrument = [](core::FabricNetwork& net, unsigned) {
        harness::seed_hot_accounts(net, 5);
    };
    spec.run_probe = [](core::FabricNetwork& net,
                        std::map<std::string, double>& extra) {
        const auto& p = *net.peers().front();
        extra["state_lo"] = static_cast<double>(p.state().fingerprint() & 0xFFFFFFFF);
        extra["state_hi"] = static_cast<double>(p.state().fingerprint() >> 32);
        extra["chain_lo"] =
            static_cast<double>(p.chain().chain_fingerprint() & 0xFFFFFFFF);
        extra["chain_hi"] = static_cast<double>(p.chain().chain_fingerprint() >> 32);
        extra["valid"] = static_cast<double>(p.txs_valid());
        extra["wave_blocks"] = static_cast<double>(p.blocks_wave_validated());
    };

    const harness::AggregateResult serial = harness::run_experiment(spec);

    ThreadPool pool(3);
    spec.config.peer_params.validation_mode = ValidationMode::kParallel;
    spec.config.peer_params.validation_pool = &pool;
    const harness::AggregateResult parallel = harness::run_experiment(spec);

    for (const char* key : {"state_lo", "state_hi", "chain_lo", "chain_hi", "valid"}) {
        EXPECT_EQ(serial.extra_total(key), parallel.extra_total(key)) << key;
    }
    EXPECT_EQ(serial.extra_total("wave_blocks"), 0.0);
    EXPECT_GT(parallel.extra_total("wave_blocks"), 0.0);
    EXPECT_TRUE(serial.all_consistent);
    EXPECT_TRUE(parallel.all_consistent);
}

}  // namespace
}  // namespace fl::peer
