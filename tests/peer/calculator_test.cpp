#include "peer/priority_calculator.h"

#include <gtest/gtest.h>

namespace fl::peer {
namespace {

ledger::Proposal make_proposal(const std::string& chaincode, std::uint64_t client = 0) {
    ledger::Proposal p;
    p.chaincode = chaincode;
    p.client = ClientId{client};
    return p;
}

CalculatorContext ctx_with(const chaincode::Registry& registry,
                           double load = 0.0, std::uint32_t levels = 3) {
    CalculatorContext ctx;
    ctx.registry = &registry;
    ctx.observed_load_tps = load;
    ctx.priority_levels = levels;
    return ctx;
}

TEST(StaticChaincodeCalculatorTest, UsesDeployTimePriority) {
    const auto registry = chaincode::Registry::with_standard_contracts(3);
    StaticChaincodeCalculator calc;
    const auto ctx = ctx_with(registry);
    EXPECT_EQ(calc.calculate(make_proposal("asset_transfer"), ctx), 0u);
    EXPECT_EQ(calc.calculate(make_proposal("supply_chain"), ctx), 1u);
    EXPECT_EQ(calc.calculate(make_proposal("record_keeper"), ctx), 2u);
}

TEST(StaticChaincodeCalculatorTest, ClampsToConfiguredLevels) {
    const auto registry = chaincode::Registry::with_standard_contracts(3);
    StaticChaincodeCalculator calc;
    const auto ctx = ctx_with(registry, 0.0, /*levels=*/2);
    EXPECT_EQ(calc.calculate(make_proposal("record_keeper"), ctx), 1u);
}

TEST(StaticChaincodeCalculatorTest, MissingRegistryThrows) {
    StaticChaincodeCalculator calc;
    CalculatorContext ctx;
    EXPECT_THROW((void)calc.calculate(make_proposal("x"), ctx), std::logic_error);
}

TEST(ClientClassCalculatorTest, MapsClientsToLevels) {
    ClientClassCalculator calc({{ClientId{0}, 0}, {ClientId{1}, 1}, {ClientId{2}, 2}},
                               /*default_level=*/1);
    const auto registry = chaincode::Registry::with_standard_contracts(3);
    const auto ctx = ctx_with(registry);
    EXPECT_EQ(calc.calculate(make_proposal("any", 0), ctx), 0u);
    EXPECT_EQ(calc.calculate(make_proposal("any", 1), ctx), 1u);
    EXPECT_EQ(calc.calculate(make_proposal("any", 2), ctx), 2u);
    EXPECT_EQ(calc.calculate(make_proposal("any", 99), ctx), 1u);  // default
}

TEST(LoadAwareCalculatorTest, DemotesUnderLoad) {
    const auto registry = chaincode::Registry::with_standard_contracts(3);
    LoadAwareCalculator calc(std::make_unique<StaticChaincodeCalculator>(),
                             /*load_threshold_tps=*/100.0);
    EXPECT_EQ(calc.calculate(make_proposal("asset_transfer"),
                             ctx_with(registry, 50.0)),
              0u);
    EXPECT_EQ(calc.calculate(make_proposal("asset_transfer"),
                             ctx_with(registry, 500.0)),
              1u);
    // Already at the bottom: stays clamped.
    EXPECT_EQ(calc.calculate(make_proposal("record_keeper"),
                             ctx_with(registry, 500.0)),
              2u);
}

TEST(LoadAwareCalculatorTest, NullBaseRejected) {
    EXPECT_THROW(LoadAwareCalculator(nullptr, 1.0), std::invalid_argument);
}

TEST(NoisyCalculatorTest, ZeroProbabilityIsTransparent) {
    const auto registry = chaincode::Registry::with_standard_contracts(3);
    NoisyCalculator calc(std::make_unique<StaticChaincodeCalculator>(), 0.0, Rng(1));
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(calc.calculate(make_proposal("supply_chain"), ctx_with(registry)),
                  1u);
    }
}

TEST(NoisyCalculatorTest, FlipsStayWithinRange) {
    const auto registry = chaincode::Registry::with_standard_contracts(3);
    NoisyCalculator calc(std::make_unique<StaticChaincodeCalculator>(), 1.0, Rng(2));
    int deviations = 0;
    for (int i = 0; i < 200; ++i) {
        const PriorityLevel out =
            calc.calculate(make_proposal("supply_chain"), ctx_with(registry));
        EXPECT_LT(out, 3u);
        if (out != 1u) ++deviations;
    }
    EXPECT_GT(deviations, 150);  // p=1.0 flips essentially always
}

TEST(NoisyCalculatorTest, EdgeLevelsFlipInward) {
    const auto registry = chaincode::Registry::with_standard_contracts(3);
    NoisyCalculator top(std::make_unique<StaticChaincodeCalculator>(), 1.0, Rng(3));
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(top.calculate(make_proposal("asset_transfer"), ctx_with(registry)),
                  1u);  // 0 can only flip to 1
    }
    NoisyCalculator bottom(std::make_unique<StaticChaincodeCalculator>(), 1.0, Rng(4));
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(
            bottom.calculate(make_proposal("record_keeper"), ctx_with(registry)),
            1u);  // 2 can only flip to 1
    }
}

}  // namespace
}  // namespace fl::peer
