#include "peer/validator.h"

#include <gtest/gtest.h>

#include "peer/endorser.h"

namespace fl::peer {
namespace {

/// Builds properly-endorsed envelopes against a channel with 4 orgs and a
/// 2-of-4 endorsement policy, then validates hand-assembled blocks.
struct Fixture {
    crypto::KeyStore keys;
    policy::ChannelConfig channel;
    std::unique_ptr<policy::ConsolidationPolicy> consolidation;
    ledger::WorldState state;
    std::unordered_set<std::uint64_t> seen;
    std::uint64_t next_tx_id = 1;

    Fixture() {
        channel.priority_levels = 3;
        channel.priority_enabled = true;
        channel.consolidation_spec = "kofn:2";
        channel.endorsement_policy = policy::EndorsementPolicy::k_of_n_orgs(2, 4);
        consolidation = policy::make_consolidation_policy(channel.consolidation_spec);
        for (std::uint64_t org = 0; org < 4; ++org) {
            keys.register_identity(
                {"org" + std::to_string(org) + ".peer0", OrgId{org}});
        }
    }

    /// An envelope reading `reads`, writing `writes`, at `priority`, endorsed
    /// by orgs 0..3 (all voting `priority`).
    ledger::Envelope make_tx(std::vector<std::string> reads,
                             std::vector<std::string> writes,
                             PriorityLevel priority) {
        ledger::Envelope env;
        env.proposal.tx_id = TxId{next_tx_id++};
        env.proposal.chaincode = "test";
        env.proposal.function = "fn";
        for (const std::string& k : reads) {
            env.rwset.reads.push_back(ledger::KvRead{k, state.version_of(k)});
        }
        for (const std::string& k : writes) {
            env.rwset.writes.push_back(ledger::KvWrite{k, "v", false});
        }
        env.consolidated_priority = priority;
        for (std::uint64_t org = 0; org < 4; ++org) {
            endorse_with(env, org, priority);
        }
        return env;
    }

    void endorse_with(ledger::Envelope& env, std::uint64_t org,
                      PriorityLevel priority) {
        ledger::Endorsement e;
        e.endorser_identity = "org" + std::to_string(org) + ".peer0";
        e.org = OrgId{org};
        e.priority = priority;
        const Bytes payload =
            ledger::Envelope::endorsement_payload(env.proposal, env.rwset, priority);
        e.response_hash = crypto::sha256(BytesView(payload.data(), payload.size()));
        e.signature =
            keys.sign(e.endorser_identity, BytesView(payload.data(), payload.size()));
        env.endorsements.push_back(e);
    }

    ValidationOutcome validate(const std::vector<ledger::Envelope>& txs,
                               bool prioritized, BlockNumber number = 1) {
        const ledger::Block block = ledger::make_block(number, nullptr, txs);
        ValidatorConfig cfg;
        cfg.prioritized = prioritized;
        cfg.verify_consolidation = true;
        return validate_block(block, state, channel, consolidation.get(), keys, seen,
                              cfg);
    }
};

TEST(ValidatorTest, CleanBlockAllValid) {
    Fixture f;
    const std::vector<ledger::Envelope> txs = {
        f.make_tx({}, {"a"}, 0), f.make_tx({}, {"b"}, 1), f.make_tx({}, {"c"}, 2)};
    const auto out = f.validate(txs, /*prioritized=*/true);
    EXPECT_EQ(out.valid_count, 3u);
    for (const auto code : out.codes) {
        EXPECT_TRUE(is_valid(code));
    }
}

TEST(ValidatorTest, StandardValidatorFirstInBlockWins) {
    Fixture f;
    // Low priority appears first in the block; both write "k".
    const std::vector<ledger::Envelope> txs = {f.make_tx({}, {"k"}, 2),
                                               f.make_tx({}, {"k"}, 0)};
    const auto out = f.validate(txs, /*prioritized=*/false);
    EXPECT_TRUE(is_valid(out.codes[0]));  // earlier tx wins
    EXPECT_EQ(out.codes[1], TxValidationCode::kWriteConflict);
}

TEST(ValidatorTest, PrioritizedValidatorHigherPriorityWins) {
    Fixture f;
    // Same block: with the prioritized validator the level-0 tx survives
    // even though it appears later in block order (paper §3.4).
    const std::vector<ledger::Envelope> txs = {f.make_tx({}, {"k"}, 2),
                                               f.make_tx({}, {"k"}, 0)};
    const auto out = f.validate(txs, /*prioritized=*/true);
    EXPECT_EQ(out.codes[0], TxValidationCode::kWriteConflict);
    EXPECT_TRUE(is_valid(out.codes[1]));
}

TEST(ValidatorTest, PrioritizedReadWriteConflict) {
    Fixture f;
    f.state.apply(ledger::KvWrite{"k", "v0", false}, ledger::Version{0, 0});
    // Reader at low priority first in block, writer at high priority later.
    const std::vector<ledger::Envelope> txs = {f.make_tx({"k"}, {"out"}, 2),
                                               f.make_tx({}, {"k"}, 0)};
    const auto out = f.validate(txs, /*prioritized=*/true);
    EXPECT_EQ(out.codes[0], TxValidationCode::kMvccReadConflict);
    EXPECT_TRUE(is_valid(out.codes[1]));
}

TEST(ValidatorTest, SamePriorityConflictFifoWins) {
    Fixture f;
    // Equal priority: the earlier transaction must win (stable order).
    const std::vector<ledger::Envelope> txs = {f.make_tx({}, {"k"}, 1),
                                               f.make_tx({}, {"k"}, 1)};
    const auto out = f.validate(txs, /*prioritized=*/true);
    EXPECT_TRUE(is_valid(out.codes[0]));
    EXPECT_EQ(out.codes[1], TxValidationCode::kWriteConflict);
}

TEST(ValidatorTest, MvccStaleReadRejected) {
    Fixture f;
    f.state.apply(ledger::KvWrite{"k", "v0", false}, ledger::Version{0, 0});
    ledger::Envelope tx = f.make_tx({"k"}, {"out"}, 0);
    // State moves on after endorsement.
    f.state.apply(ledger::KvWrite{"k", "v1", false}, ledger::Version{1, 0});
    const auto out = f.validate({tx}, true, /*number=*/2);
    EXPECT_EQ(out.codes[0], TxValidationCode::kMvccReadConflict);
    EXPECT_EQ(out.valid_count, 0u);
}

TEST(ValidatorTest, DuplicateTxIdRejected) {
    Fixture f;
    ledger::Envelope tx = f.make_tx({}, {"a"}, 0);
    const auto first = f.validate({tx}, true, 1);
    EXPECT_TRUE(is_valid(first.codes[0]));
    const auto replay = f.validate({tx}, true, 2);
    EXPECT_EQ(replay.codes[0], TxValidationCode::kDuplicateTxId);
}

TEST(ValidatorTest, InsufficientEndorsementsRejected) {
    Fixture f;
    ledger::Envelope tx = f.make_tx({}, {"a"}, 0);
    tx.endorsements.resize(1);  // 1 org < 2-of-4 policy
    const auto out = f.validate({tx}, true);
    EXPECT_EQ(out.codes[0], TxValidationCode::kEndorsementPolicyFailure);
}

TEST(ValidatorTest, ForgedEndorsementsDoNotCount) {
    Fixture f;
    ledger::Envelope tx = f.make_tx({}, {"a"}, 0);
    // Corrupt all but one signature.
    for (std::size_t i = 1; i < tx.endorsements.size(); ++i) {
        tx.endorsements[i].signature.mac[0] ^= 0xFF;
    }
    const auto out = f.validate({tx}, true);
    EXPECT_EQ(out.codes[0], TxValidationCode::kEndorsementPolicyFailure);
}

TEST(ValidatorTest, WrongConsolidatedPriorityRejected) {
    Fixture f;
    ledger::Envelope tx = f.make_tx({}, {"a"}, 2);
    tx.consolidated_priority = 0;  // OSN (or attacker) promoted it
    const auto out = f.validate({tx}, true);
    EXPECT_EQ(out.codes[0], TxValidationCode::kBadPriorityConsolidation);
}

TEST(ValidatorTest, ConsolidationNotCheckedWhenDisabled) {
    Fixture f;
    ledger::Envelope tx = f.make_tx({}, {"a"}, 2);
    tx.consolidated_priority = 0;
    const ledger::Block block = ledger::make_block(1, nullptr, {tx});
    ValidatorConfig cfg;  // both flags off = vanilla Fabric
    const auto out = validate_block(block, f.state, f.channel, nullptr, f.keys,
                                    f.seen, cfg);
    EXPECT_TRUE(is_valid(out.codes[0]));
}

TEST(ValidatorTest, PhantomConflictDetected) {
    Fixture f;
    // Tx A range-reads [r/, r/z); tx B (higher priority) inserts inside.
    ledger::Envelope reader = f.make_tx({}, {"out"}, 2);
    reader.endorsements.clear();
    reader.rwset.range_reads.push_back(ledger::RangeRead{"r/", "r/z", {}});
    for (std::uint64_t org = 0; org < 4; ++org) {
        f.endorse_with(reader, org, 2);
    }
    const ledger::Envelope writer = f.make_tx({}, {"r/new"}, 0);
    const auto out = f.validate({reader, writer}, /*prioritized=*/true);
    EXPECT_EQ(out.codes[0], TxValidationCode::kPhantomReadConflict);
    EXPECT_TRUE(is_valid(out.codes[1]));
}

TEST(ValidatorTest, ApplyBlockWritesValidOnly) {
    Fixture f;
    const std::vector<ledger::Envelope> txs = {f.make_tx({}, {"k"}, 2),
                                               f.make_tx({}, {"k"}, 0),
                                               f.make_tx({}, {"other"}, 1)};
    const ledger::Block block = ledger::make_block(1, nullptr, txs);
    const auto out = f.validate(txs, /*prioritized=*/true);
    apply_block(block, out, f.state);
    // Only the high-priority "k" writer and "other" landed.
    EXPECT_EQ(f.state.version_of("k"), (ledger::Version{1, 1}));  // block index 1
    EXPECT_EQ(f.state.version_of("other"), (ledger::Version{1, 2}));
}

TEST(ValidatorTest, ValidationCodesReportedInBlockOrder) {
    Fixture f;
    const std::vector<ledger::Envelope> txs = {
        f.make_tx({}, {"x"}, 2), f.make_tx({}, {"x"}, 1), f.make_tx({}, {"x"}, 0)};
    const auto out = f.validate(txs, /*prioritized=*/true);
    ASSERT_EQ(out.codes.size(), 3u);
    // Highest priority (block position 2) wins; others conflict.
    EXPECT_EQ(out.codes[0], TxValidationCode::kWriteConflict);
    EXPECT_EQ(out.codes[1], TxValidationCode::kWriteConflict);
    EXPECT_TRUE(is_valid(out.codes[2]));
    EXPECT_EQ(out.valid_count, 1u);
}

class ConflictMatrixSweep
    : public ::testing::TestWithParam<std::tuple<PriorityLevel, PriorityLevel>> {};

TEST_P(ConflictMatrixSweep, HigherPriorityAlwaysSurvives) {
    const auto [pa, pb] = GetParam();
    Fixture f;
    const std::vector<ledger::Envelope> txs = {f.make_tx({}, {"hot"}, pa),
                                               f.make_tx({}, {"hot"}, pb)};
    const auto out = f.validate(txs, /*prioritized=*/true);
    const std::size_t winner = pa <= pb ? 0u : 1u;  // tie -> earlier in block
    EXPECT_TRUE(is_valid(out.codes[winner]));
    EXPECT_FALSE(is_valid(out.codes[1 - winner]));
}

INSTANTIATE_TEST_SUITE_P(AllPairs, ConflictMatrixSweep,
                         ::testing::Combine(::testing::Values(0u, 1u, 2u),
                                            ::testing::Values(0u, 1u, 2u)));

}  // namespace
}  // namespace fl::peer
