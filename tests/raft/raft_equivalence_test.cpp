// The OrderingBackend equivalence contract (DESIGN.md §15): a fault-free run
// on the Raft backend is byte-identical to the same run on the mq backend —
// identical ledgers, identical OSN block sequences, byte-identical metrics
// JSON and byte-identical trace JSONL.  Raft node 0 sits at the broker's
// address and bootstraps as leader of term 1, so the client-visible traffic
// traverses the same links in the same order; this suite is the gate that
// keeps that argument true.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/fabric_network.h"
#include "harness/workload.h"
#include "obs/trace.h"

namespace fl {
namespace {

core::NetworkConfig base_config(orderer::OrderingBackendKind backend,
                                std::uint64_t seed) {
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = seed;
    cfg.ordering_backend = backend;
    cfg.channel.priority_enabled = true;
    cfg.channel.priority_levels = 3;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("2:3:1");
    cfg.channel.block_size = 50;
    cfg.channel.block_timeout = Duration::millis(200);
    return cfg;
}

struct Outcome {
    std::vector<client::TxRecord> records;
    core::MetricsCollector metrics;
};

Outcome drive(core::FabricNetwork& net, std::uint64_t total) {
    Outcome out;
    net.set_tx_sink([&out](const client::TxRecord& r) {
        out.records.push_back(r);
        out.metrics.record(r);
    });
    harness::Workload workload;
    for (std::size_t c = 0; c < net.clients().size(); ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = 50.0;
        load.generate = harness::priority_class_mix({1, 2, 1});
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(total);
    harness::WorkloadDriver driver(net, std::move(workload), Rng(net.config().seed));
    driver.start();
    net.run();
    return out;
}

std::string metrics_json(const core::MetricsCollector& metrics) {
    std::ostringstream os;
    core::write_metrics_json(os, metrics);
    return os.str();
}

std::string trace_jsonl(const obs::TraceSink& sink) {
    std::ostringstream os;
    sink.write_jsonl(os);
    return os.str();
}

TEST(RaftEquivalenceTest, FaultFreeRunsAreByteIdenticalAcrossBackends) {
    for (std::uint64_t seed : {11u, 42u, 1234u}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        core::FabricNetwork mq(base_config(orderer::OrderingBackendKind::kMq, seed));
        core::FabricNetwork rf(base_config(orderer::OrderingBackendKind::kRaft, seed));
        const Outcome om = drive(mq, 300);
        const Outcome orf = drive(rf, 300);

        // Same terminal accounting, byte for byte.
        EXPECT_EQ(metrics_json(om.metrics), metrics_json(orf.metrics));
        ASSERT_EQ(om.records.size(), orf.records.size());

        // Same ledgers on every peer, same block sequence on every OSN.
        ASSERT_EQ(mq.peers().size(), rf.peers().size());
        for (std::size_t p = 0; p < mq.peers().size(); ++p) {
            EXPECT_EQ(mq.peers()[p]->chain().chain_fingerprint(),
                      rf.peers()[p]->chain().chain_fingerprint());
            EXPECT_EQ(mq.peers()[p]->state().fingerprint(),
                      rf.peers()[p]->state().fingerprint());
        }
        ASSERT_EQ(mq.osns().size(), rf.osns().size());
        for (std::size_t o = 0; o < mq.osns().size(); ++o) {
            EXPECT_TRUE(mq.osns()[o]->block_hashes() == rf.osns()[o]->block_hashes());
        }

        // A fault-free Raft run never leaves term 1: node 0 is the bootstrap
        // leader and nothing challenges it.
        ASSERT_NE(rf.raft_backend(), nullptr);
        EXPECT_EQ(rf.raft_backend()->current_term(), 1u);
        EXPECT_EQ(rf.raft_backend()->elections_started(), 0u);
        EXPECT_EQ(rf.raft_backend()->leader_changes(), 0u);
        EXPECT_EQ(rf.raft_backend()->pending_submissions(), 0u);
        EXPECT_EQ(mq.raft_backend(), nullptr);
    }
}

TEST(RaftEquivalenceTest, TracesAreByteIdenticalAcrossBackends) {
    core::FabricNetwork mq(base_config(orderer::OrderingBackendKind::kMq, 7));
    core::FabricNetwork rf(base_config(orderer::OrderingBackendKind::kRaft, 7));
    obs::TraceSink mq_trace;
    obs::TraceSink rf_trace;
    mq.set_trace_sink(&mq_trace);
    rf.set_trace_sink(&rf_trace);
    drive(mq, 200);
    drive(rf, 200);
    ASSERT_FALSE(mq_trace.empty());
    // No elections fire fault-free, so no Raft-typed events exist and the
    // append hook emits the same kEnqueue/kTtcEnqueue stream as the broker.
    EXPECT_EQ(trace_jsonl(mq_trace), trace_jsonl(rf_trace));
}

TEST(RaftEquivalenceTest, BrokerAccessorThrowsUnderRaft) {
    core::FabricNetwork rf(base_config(orderer::OrderingBackendKind::kRaft, 7));
    EXPECT_THROW((void)rf.broker(), std::logic_error);
    EXPECT_NO_THROW((void)rf.ordering());
    core::FabricNetwork mq(base_config(orderer::OrderingBackendKind::kMq, 7));
    EXPECT_NO_THROW((void)mq.broker());
}

TEST(RaftEquivalenceTest, RaftRunIsAPureFunctionOfConfigAndSeed) {
    core::FabricNetwork a(base_config(orderer::OrderingBackendKind::kRaft, 99));
    core::FabricNetwork b(base_config(orderer::OrderingBackendKind::kRaft, 99));
    const Outcome ra = drive(a, 200);
    const Outcome rb = drive(b, 200);
    EXPECT_EQ(metrics_json(ra.metrics), metrics_json(rb.metrics));
    EXPECT_EQ(a.peers().front()->chain().chain_fingerprint(),
              b.peers().front()->chain().chain_fingerprint());
}

}  // namespace
}  // namespace fl
