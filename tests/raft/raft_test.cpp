// Unit tests for the deterministic simulated-time Raft ordering backend:
// fault-free replication, leader failover, the stale-minority-leader
// scenario, whole-cluster outages, snapshot install for lagging followers,
// exactly-once apply under leader-change retries, and quiescence (every
// scenario must drain — a perpetual timer would hang sim.run()).
#include "raft/raft.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "orderer/record.h"

namespace fl::raft {
namespace {

using orderer::OrderedRecord;

std::shared_ptr<const ledger::Envelope> tx(std::uint64_t id) {
    auto env = std::make_shared<ledger::Envelope>();
    env->proposal.tx_id = TxId{id};
    return env;
}

OrderedRecord rec(std::uint64_t id) { return OrderedRecord::transaction(tx(id)); }

std::vector<std::uint64_t> tx_ids(const std::vector<OrderedRecord>& log) {
    std::vector<std::uint64_t> ids;
    for (const OrderedRecord& r : log) ids.push_back(r.envelope->tx_id().value());
    return ids;
}

struct Fixture {
    explicit Fixture(RaftParams params = {}, std::uint64_t seed = 7)
        : raft(sim, net, Rng(seed), params) {
        raft.create_topic("t");
    }

    static sim::LinkParams link() {
        sim::LinkParams p;
        p.base_latency = Duration::micros(500);
        p.jitter_stddev = Duration::micros(100);
        return p;
    }

    sim::Simulator sim;
    sim::Network net{sim, Rng(3), link()};
    RaftOrderingBackend raft;
};

TEST(RaftTest, FaultFreeRunCommitsInOrderWithoutElections) {
    Fixture f;
    auto sub = f.raft.subscribe("t", NodeId{50});
    for (std::uint64_t i = 0; i < 10; ++i) f.raft.produce_local("t", 100, rec(i));
    f.sim.run();

    EXPECT_EQ(f.raft.topic_size("t"), 10u);
    EXPECT_EQ(tx_ids(f.raft.log_of("t")),
              (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
    ASSERT_TRUE(f.raft.leader().has_value());
    EXPECT_EQ(*f.raft.leader(), 0u);  // bootstrap leader still in office
    EXPECT_EQ(f.raft.current_term(), 1u);
    EXPECT_EQ(f.raft.elections_started(), 0u);
    EXPECT_EQ(f.raft.leader_changes(), 0u);
    EXPECT_EQ(f.raft.pending_submissions(), 0u);
    EXPECT_EQ(f.raft.replication_lag(), 0u);
    EXPECT_EQ(f.raft.duplicate_commits_skipped(), 0u);
    EXPECT_TRUE(f.raft.committed_prefixes_consistent());
    // The subscriber saw every record, in offset order.
    std::vector<std::uint64_t> seen;
    while (sub->has_ready()) seen.push_back(sub->pop().envelope->tx_id().value());
    EXPECT_EQ(seen.size(), 10u);
}

TEST(RaftTest, ProduceWithNetworkHopAlsoCommits) {
    Fixture f;
    for (std::uint64_t i = 0; i < 5; ++i) {
        f.raft.produce("t", NodeId{300}, 100, rec(i));
    }
    f.sim.run();
    EXPECT_EQ(f.raft.topic_size("t"), 5u);
    EXPECT_EQ(f.raft.commit_index(), 5u + 0u);  // no no-ops in term 1
}

TEST(RaftTest, SubscribeBoundarySemanticsMatchTheBroker) {
    Fixture f;
    for (std::uint64_t i = 0; i < 3; ++i) f.raft.produce_local("t", 100, rec(i));
    f.sim.run();
    // Offset == size is the live tail; past it is a caller bug.
    auto tail = f.raft.subscribe("t", NodeId{50}, 3);
    EXPECT_THROW((void)f.raft.subscribe("t", NodeId{50}, 4), std::out_of_range);
    auto mid = f.raft.subscribe("t", NodeId{51}, 1);
    f.sim.run();
    EXPECT_FALSE(tail->has_ready());
    std::vector<std::uint64_t> suffix;
    while (mid->has_ready()) suffix.push_back(mid->pop().envelope->tx_id().value());
    EXPECT_EQ(suffix, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_THROW((void)f.raft.read("t", 3), std::out_of_range);
    EXPECT_EQ(f.raft.read("t", 0).envelope->tx_id().value(), 0u);
}

TEST(RaftTest, LeaderCrashMidReplicationElectsAndCommitsExactlyOnce) {
    Fixture f;
    // Submit with the appends still in flight, then crash the leader at the
    // same instant: the followers hold the entries, the leader is gone.
    for (std::uint64_t i = 0; i < 4; ++i) f.raft.produce_local("t", 100, rec(i));
    f.raft.kill_leader();
    EXPECT_FALSE(f.raft.leader().has_value());
    f.sim.run();

    EXPECT_GE(f.raft.elections_started(), 1u);
    EXPECT_GE(f.raft.leader_changes(), 1u);
    ASSERT_TRUE(f.raft.leader().has_value());
    EXPECT_NE(*f.raft.leader(), 0u);
    EXPECT_GE(f.raft.current_term(), 2u);
    // Every submission applied exactly once, in arrival order.
    EXPECT_EQ(tx_ids(f.raft.log_of("t")), (std::vector<std::uint64_t>{0, 1, 2, 3}));
    EXPECT_EQ(f.raft.pending_submissions(), 0u);
    EXPECT_TRUE(f.raft.committed_prefixes_consistent());
}

TEST(RaftTest, SubmissionsDuringLeaderlessWindowAreBufferedThenOrdered) {
    Fixture f;
    f.raft.kill_leader();
    for (std::uint64_t i = 0; i < 6; ++i) f.raft.produce_local("t", 100, rec(i));
    EXPECT_EQ(f.raft.deferred_appends_total(), 6u);
    f.sim.run();

    EXPECT_EQ(tx_ids(f.raft.log_of("t")),
              (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
    // The elected leader proposed the whole backlog itself.
    EXPECT_EQ(f.raft.leader_resubmissions(), 6u);
    EXPECT_EQ(f.raft.duplicate_commits_skipped(), 0u);
}

TEST(RaftTest, PartitionedMinorityLeaderIsSupersededAndTruncated) {
    Fixture f;
    // Isolate the leader; clients can still reach it, so it keeps accepting
    // submissions that can never commit.
    f.raft.partition_node(0);
    for (std::uint64_t i = 0; i < 5; ++i) f.raft.produce_local("t", 100, rec(i));
    f.sim.run();

    // The majority side elected a successor, which re-proposed every
    // uncommitted submission (none of them had reached its log).
    ASSERT_TRUE(f.raft.leader().has_value());
    EXPECT_NE(*f.raft.leader(), 0u);
    EXPECT_GE(f.raft.current_term(), 2u);
    EXPECT_EQ(f.raft.leader_resubmissions(), 5u);
    EXPECT_EQ(tx_ids(f.raft.log_of("t")),
              (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(f.raft.duplicate_commits_skipped(), 0u);
    EXPECT_EQ(f.raft.node_term(0), 1u);  // stale leader still in its old term

    // Heal: the stale leader hears the higher term, steps down, and its
    // never-committed suffix is truncated in favor of the winner's log.
    f.raft.heal_partitions();
    f.sim.run();
    EXPECT_GE(f.raft.log_truncations(), 1u);
    EXPECT_TRUE(f.raft.committed_prefixes_consistent());
    EXPECT_EQ(f.raft.topic_size("t"), 5u);  // still exactly once
    EXPECT_EQ(f.raft.replication_lag(), 0u);
}

TEST(RaftTest, WholeClusterOutageBuffersAndRecovers) {
    Fixture f;
    f.raft.produce_local("t", 100, rec(100));
    f.sim.run();

    f.raft.set_down(true);
    EXPECT_TRUE(f.raft.is_down());
    EXPECT_EQ(f.raft.outages(), 1u);
    for (std::uint64_t i = 0; i < 4; ++i) f.raft.produce_local("t", 100, rec(i));
    EXPECT_EQ(f.raft.deferred_appends_total(), 4u);
    EXPECT_EQ(f.raft.topic_size("t"), 1u);

    f.raft.set_down(false);
    f.sim.run();
    EXPECT_EQ(tx_ids(f.raft.log_of("t")),
              (std::vector<std::uint64_t>{100, 0, 1, 2, 3}));
    EXPECT_GE(f.raft.leader_changes(), 1u);  // the cluster re-elected
    EXPECT_TRUE(f.raft.committed_prefixes_consistent());
}

TEST(RaftTest, CrashedFollowerCatchesUpViaSnapshotInstall) {
    RaftParams params;
    params.snapshot_threshold = 8;
    Fixture f(params);
    f.raft.crash_node(2);
    for (std::uint64_t i = 0; i < 20; ++i) f.raft.produce_local("t", 100, rec(i));
    f.sim.run();

    // Majority (nodes 0+1) committed everything and compacted past the
    // crashed follower's position.
    EXPECT_EQ(f.raft.topic_size("t"), 20u);
    EXPECT_GE(f.raft.compactions(), 1u);

    f.raft.restart_node(2);
    f.sim.run();
    EXPECT_GE(f.raft.snapshot_installs(), 1u);
    EXPECT_TRUE(f.raft.node_alive(2));
    EXPECT_EQ(f.raft.replication_lag(), 0u);
    EXPECT_TRUE(f.raft.committed_prefixes_consistent());
}

TEST(RaftTest, RestartedFollowerWithoutCompactionReplaysTheLog) {
    Fixture f;  // default threshold 4096: no compaction in this run
    f.raft.crash_node(1);
    for (std::uint64_t i = 0; i < 10; ++i) f.raft.produce_local("t", 100, rec(i));
    f.sim.run();
    EXPECT_EQ(f.raft.topic_size("t"), 10u);

    f.raft.restart_node(1);
    f.sim.run();
    EXPECT_EQ(f.raft.snapshot_installs(), 0u);
    EXPECT_EQ(f.raft.replication_lag(), 0u);
    EXPECT_TRUE(f.raft.committed_prefixes_consistent());
}

TEST(RaftTest, MessageDropsAreRetriedToCompletion) {
    RaftParams params;
    params.drop_prob = 0.2;
    Fixture f(params);
    auto sub = f.raft.subscribe("t", NodeId{50});
    for (std::uint64_t i = 0; i < 25; ++i) f.raft.produce_local("t", 100, rec(i));
    f.sim.run();

    EXPECT_GT(f.raft.messages_dropped(), 0u);
    EXPECT_EQ(f.raft.topic_size("t"), 25u);
    EXPECT_EQ(f.raft.pending_submissions(), 0u);
    EXPECT_EQ(f.raft.replication_lag(), 0u);
    std::vector<std::uint64_t> seen;
    while (sub->has_ready()) seen.push_back(sub->pop().envelope->tx_id().value());
    EXPECT_EQ(seen.size(), 25u);  // exactly once despite the lossy backplane
}

TEST(RaftTest, SingleNodeClusterCommitsSynchronously) {
    RaftParams params;
    params.nodes = 1;
    Fixture f(params);
    EXPECT_EQ(f.raft.produce_local("t", 100, rec(1)), 0u);
    EXPECT_EQ(f.raft.topic_size("t"), 1u);  // no peers to wait for
    EXPECT_EQ(f.raft.elections_started(), 0u);
    f.sim.run();
    EXPECT_EQ(f.raft.consensus_messages(), 0u);
}

TEST(RaftTest, FiveNodeClusterSurvivesTwoCrashes) {
    RaftParams params;
    params.nodes = 5;
    Fixture f(params);
    f.raft.crash_node(3);
    f.raft.kill_leader();
    for (std::uint64_t i = 0; i < 8; ++i) f.raft.produce_local("t", 100, rec(i));
    f.sim.run();
    EXPECT_EQ(f.raft.topic_size("t"), 8u);
    ASSERT_TRUE(f.raft.leader().has_value());
    EXPECT_TRUE(f.raft.committed_prefixes_consistent());
}

TEST(RaftTest, SameSeedSameTimelineDifferentSeedDifferentElections) {
    // The entire chaos timeline — who wins, in which term, after how many
    // elections — is a pure function of the seed.
    const auto run = [](std::uint64_t seed) {
        Fixture f(RaftParams{}, seed);
        f.raft.kill_leader();
        for (std::uint64_t i = 0; i < 6; ++i) f.raft.produce_local("t", 100, rec(i));
        f.sim.run();
        return std::tuple(*f.raft.leader(), f.raft.current_term(),
                          f.raft.elections_started(), f.raft.consensus_messages());
    };
    EXPECT_EQ(run(7), run(7));
    bool any_differs = false;
    const auto base = run(7);
    for (std::uint64_t seed : {8u, 9u, 10u, 11u}) {
        any_differs = any_differs || run(seed) != base;
    }
    EXPECT_TRUE(any_differs);
}

TEST(RaftTest, TtcMarkersStayExactlyOnceUnderLeaderChange) {
    // TTC markers are submissions like any other: a leader change mid-flight
    // must not duplicate or drop them (the block-cut-consistency hazard).
    Fixture f;
    f.raft.produce_local("t", 100, rec(1));
    f.raft.produce_local("t", 24, OrderedRecord::time_to_cut(0, OsnId{0}));
    f.raft.produce_local("t", 24, OrderedRecord::time_to_cut(0, OsnId{1}));
    f.raft.kill_leader();
    f.sim.run();

    const auto& log = f.raft.log_of("t");
    ASSERT_EQ(log.size(), 3u);
    int ttcs = 0;
    for (const OrderedRecord& r : log) ttcs += r.is_ttc();
    EXPECT_EQ(ttcs, 2);
    EXPECT_EQ(f.raft.duplicate_commits_skipped(), 0u);
}

}  // namespace
}  // namespace fl::raft
