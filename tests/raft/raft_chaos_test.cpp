// Chaos integration for the Raft ordering backend: the full pipeline under
// leader kills, minority partitions, lossy consensus windows and OSN
// crash/restart replay — all from the deterministic fault schedule.  Asserts
// the chaos_test invariant suite plus the Raft safety properties (committed
// prefixes consistent across nodes, exactly-once apply, byte-identical
// reruns), and the ISSUE's OSN-restart × term-change replay scenario.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/fabric_network.h"
#include "harness/workload.h"

namespace fl {
namespace {

core::NetworkConfig raft_chaos_config(std::uint64_t seed) {
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = seed;
    cfg.endorsement_k = 2;
    cfg.ordering_backend = orderer::OrderingBackendKind::kRaft;
    cfg.channel.priority_enabled = true;
    cfg.channel.priority_levels = 3;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("2:3:1");
    cfg.channel.block_size = 50;
    cfg.channel.block_timeout = Duration::millis(200);

    client::RetryParams& retry = cfg.client_params.retry;
    retry.enabled = true;
    retry.endorsement_timeout = Duration::millis(300);
    retry.max_endorse_retries = 3;
    retry.commit_timeout = Duration::seconds(3);
    retry.max_resubmissions = 3;
    retry.backoff_base = Duration::millis(50);

    fault::FaultProfile profile;
    profile.horizon = Duration::seconds(6);
    profile.expected_osn_crashes = 1.0;
    profile.osn_downtime_mean = Duration::seconds(1);
    profile.expected_raft_leader_kills = 1.5;
    profile.raft_leader_downtime_mean = Duration::millis(800);
    profile.expected_raft_partitions = 1.0;
    profile.raft_partition_mean = Duration::millis(600);
    profile.expected_raft_drop_windows = 1.0;
    profile.raft_drop_window_mean = Duration::millis(500);
    profile.raft_drop_prob = 0.1;
    cfg.faults.profile = profile;
    return cfg;
}

struct Outcome {
    std::vector<client::TxRecord> records;
    core::MetricsCollector metrics;
};

Outcome drive(core::FabricNetwork& net, std::uint64_t total) {
    Outcome out;
    net.set_tx_sink([&out](const client::TxRecord& r) {
        out.records.push_back(r);
        out.metrics.record(r);
    });
    harness::Workload workload;
    for (std::size_t c = 0; c < net.clients().size(); ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = 50.0;
        load.generate = harness::priority_class_mix({1, 2, 1});
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(total);
    harness::WorkloadDriver driver(net, std::move(workload), Rng(net.config().seed));
    driver.start();
    net.run();
    return out;
}

std::string metrics_json(const core::MetricsCollector& metrics) {
    std::ostringstream os;
    core::write_metrics_json(os, metrics);
    return os.str();
}

void check_invariants(core::FabricNetwork& net, const Outcome& out) {
    // The chaos_test suite: block-sequence agreement, verified chains, no
    // double commit, exactly one terminal state per submission.
    EXPECT_TRUE(net.osn_blocks_prefix_consistent());
    bool all_alive = true;
    for (const auto& osn : net.osns()) {
        EXPECT_EQ(osn->replay_hash_mismatches(), 0u);
        all_alive = all_alive && osn->alive();
    }
    EXPECT_TRUE(all_alive);
    if (all_alive) {
        EXPECT_TRUE(net.osn_blocks_identical());
    }

    for (const auto& peer : net.peers()) {
        EXPECT_TRUE(peer->chain().verify_chain());
        EXPECT_GT(peer->chain().height(), 0u);
    }

    const ledger::BlockStore& chain = net.peers().front()->chain();
    std::set<TxId> committed;
    for (std::size_t b = 0; b < chain.height(); ++b) {
        const ledger::Block& block = chain.at(b);
        ASSERT_EQ(block.validation_codes.size(), block.transactions.size());
        for (std::size_t i = 0; i < block.transactions.size(); ++i) {
            if (block.validation_codes[i] == TxValidationCode::kValid) {
                EXPECT_TRUE(committed.insert(block.transactions[i].tx_id()).second)
                    << "tx committed twice";
            }
        }
    }

    std::uint64_t submitted = 0;
    for (const auto& client : net.clients()) {
        EXPECT_EQ(client->pending(), 0u);
        EXPECT_EQ(client->submitted(),
                  client->completed() + client->client_side_failures());
        submitted += client->submitted();
    }
    EXPECT_EQ(out.metrics.total(), submitted);
    EXPECT_EQ(out.records.size(), submitted);

    // Raft safety on top: every pair of node logs agrees over the committed
    // prefix, and nothing a client submitted is stuck in flight.
    ASSERT_NE(net.raft_backend(), nullptr);
    EXPECT_TRUE(net.raft_backend()->committed_prefixes_consistent());
    EXPECT_EQ(net.raft_backend()->pending_submissions(), 0u);
}

TEST(RaftChaosTest, InvariantsHoldAcrossSeeds) {
    std::uint64_t total_leader_changes = 0;
    std::uint64_t total_dup_skips = 0;
    for (std::uint64_t seed : {101u, 202u, 303u, 404u, 505u, 606u}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        core::FabricNetwork net(raft_chaos_config(seed));
        EXPECT_FALSE(net.fault_schedule().empty());
        const Outcome out = drive(net, 300);
        check_invariants(net, out);
        EXPECT_GT(net.faults_applied(), 0u);
        total_leader_changes += net.raft_backend()->leader_changes();
        total_dup_skips += net.raft_backend()->duplicate_commits_skipped();
    }
    // The seed set must actually exercise failover (pinned by determinism):
    // the cluster re-elected at least once, and the exactly-once guard is
    // what kept those runs duplicate-free — not luck.
    EXPECT_GT(total_leader_changes, 0u);
    (void)total_dup_skips;  // may be 0 if every kill landed between batches
}

TEST(RaftChaosTest, ChaosRunIsAPureFunctionOfConfigAndSeed) {
    core::FabricNetwork a(raft_chaos_config(777));
    core::FabricNetwork b(raft_chaos_config(777));
    const Outcome ra = drive(a, 250);
    const Outcome rb = drive(b, 250);
    ASSERT_EQ(a.fault_schedule().size(), b.fault_schedule().size());
    for (std::size_t i = 0; i < a.fault_schedule().size(); ++i) {
        EXPECT_EQ(a.fault_schedule()[i].at, b.fault_schedule()[i].at);
        EXPECT_EQ(a.fault_schedule()[i].kind, b.fault_schedule()[i].kind);
        EXPECT_EQ(a.fault_schedule()[i].target, b.fault_schedule()[i].target);
    }
    // The entire consensus timeline replays: same elections, same terms,
    // same winners, same message loss — then identical ledgers and bytes.
    EXPECT_EQ(a.raft_backend()->elections_started(),
              b.raft_backend()->elections_started());
    EXPECT_EQ(a.raft_backend()->leader_changes(), b.raft_backend()->leader_changes());
    EXPECT_EQ(a.raft_backend()->current_term(), b.raft_backend()->current_term());
    EXPECT_EQ(a.raft_backend()->messages_dropped(),
              b.raft_backend()->messages_dropped());
    EXPECT_EQ(a.raft_backend()->consensus_messages(),
              b.raft_backend()->consensus_messages());
    EXPECT_EQ(a.peers().front()->chain().chain_fingerprint(),
              b.peers().front()->chain().chain_fingerprint());
    EXPECT_EQ(metrics_json(ra.metrics), metrics_json(rb.metrics));
}

TEST(RaftChaosTest, DifferentSeedsGiveDifferentChaos) {
    core::FabricNetwork a(raft_chaos_config(11));
    core::FabricNetwork b(raft_chaos_config(12));
    const Outcome ra = drive(a, 250);
    const Outcome rb = drive(b, 250);
    EXPECT_NE(metrics_json(ra.metrics), metrics_json(rb.metrics));
}

TEST(RaftChaosTest, OsnRestartReplaysAcrossATermChange) {
    // The ISSUE's combined scenario: OSN 1 crashes, the Raft leader is then
    // killed (term change + re-election while the OSN is down), the cluster
    // heals, and OSN 1 restarts.  Its replay reads the committed projection
    // — which now spans two terms — and must rebuild the exact block
    // sequence with zero hash mismatches and no double-counted records.
    core::NetworkConfig cfg = raft_chaos_config(31);
    cfg.faults.profile.reset();
    cfg.faults.schedule = {
        {Duration::millis(700), fault::FaultKind::kOsnCrash, 1},
        {Duration::millis(900), fault::FaultKind::kRaftLeaderKill, 0},
        {Duration::millis(1700), fault::FaultKind::kRaftNodeRestart, raft::kAllNodes},
        {Duration::millis(2400), fault::FaultKind::kOsnRestart, 1},
    };
    core::FabricNetwork net(cfg);
    const Outcome out = drive(net, 300);

    EXPECT_EQ(net.faults_applied(), 4u);
    EXPECT_EQ(net.osns()[1]->crashes(), 1u);
    EXPECT_EQ(net.osns()[1]->restarts(), 1u);
    EXPECT_EQ(net.osns()[1]->replay_hash_mismatches(), 0u);
    EXPECT_TRUE(net.osns()[1]->alive());
    EXPECT_TRUE(net.osn_blocks_identical());
    EXPECT_TRUE(net.chains_identical());
    EXPECT_TRUE(net.states_identical());

    ASSERT_NE(net.raft_backend(), nullptr);
    EXPECT_GE(net.raft_backend()->node_crashes(), 1u);
    EXPECT_GE(net.raft_backend()->leader_changes(), 1u);
    EXPECT_GE(net.raft_backend()->current_term(), 2u);
    EXPECT_TRUE(net.raft_backend()->committed_prefixes_consistent());
    check_invariants(net, out);
}

TEST(RaftChaosTest, PartitionedMinorityWindowKeepsSafety) {
    // Partition Raft node 0 (the bootstrap leader) for a window mid-run:
    // the majority side elects a successor and every submission accepted by
    // the stale leader is re-proposed — committed exactly once.
    core::NetworkConfig cfg = raft_chaos_config(42);
    cfg.faults.profile.reset();
    cfg.faults.schedule = {
        {Duration::millis(600), fault::FaultKind::kRaftPartition, 0},
        {Duration::millis(1400), fault::FaultKind::kRaftHeal, 0},
    };
    core::FabricNetwork net(cfg);
    const Outcome out = drive(net, 300);

    EXPECT_EQ(net.faults_applied(), 2u);
    ASSERT_NE(net.raft_backend(), nullptr);
    EXPECT_GE(net.raft_backend()->leader_changes(), 1u);
    EXPECT_GT(net.raft_backend()->leader_resubmissions(), 0u);
    check_invariants(net, out);
}

TEST(RaftChaosTest, LossyConsensusWindowRetriesToCompletion) {
    core::NetworkConfig cfg = raft_chaos_config(7);
    cfg.faults.profile.reset();
    cfg.faults.schedule = {
        {Duration::millis(200), fault::FaultKind::kRaftDrop, 0, 0.25},
        {Duration::millis(2500), fault::FaultKind::kRaftDrop, 0, 0.0},
    };
    core::FabricNetwork net(cfg);
    const Outcome out = drive(net, 300);

    ASSERT_NE(net.raft_backend(), nullptr);
    EXPECT_GT(net.raft_backend()->messages_dropped(), 0u);
    EXPECT_EQ(net.raft_backend()->replication_lag(), 0u);
    check_invariants(net, out);
}

}  // namespace
}  // namespace fl
