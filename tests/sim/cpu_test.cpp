#include "sim/cpu.h"

#include <gtest/gtest.h>

#include <vector>

namespace fl::sim {
namespace {

TEST(CpuStationTest, SingleServerSerializesJobs) {
    Simulator sim;
    CpuStation cpu(sim, 1);
    std::vector<double> completions;
    for (int i = 0; i < 3; ++i) {
        cpu.submit(Duration::millis(10),
                   [&] { completions.push_back(sim.now().as_seconds()); });
    }
    sim.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_NEAR(completions[0], 0.010, 1e-9);
    EXPECT_NEAR(completions[1], 0.020, 1e-9);
    EXPECT_NEAR(completions[2], 0.030, 1e-9);
}

TEST(CpuStationTest, ParallelServersOverlap) {
    Simulator sim;
    CpuStation cpu(sim, 3);
    std::vector<double> completions;
    for (int i = 0; i < 3; ++i) {
        cpu.submit(Duration::millis(10),
                   [&] { completions.push_back(sim.now().as_seconds()); });
    }
    sim.run();
    ASSERT_EQ(completions.size(), 3u);
    for (const double c : completions) {
        EXPECT_NEAR(c, 0.010, 1e-9);
    }
}

TEST(CpuStationTest, MixedLoadQueues) {
    Simulator sim;
    CpuStation cpu(sim, 2);
    std::vector<double> completions;
    for (int i = 0; i < 4; ++i) {
        cpu.submit(Duration::millis(10),
                   [&] { completions.push_back(sim.now().as_seconds()); });
    }
    sim.run();
    ASSERT_EQ(completions.size(), 4u);
    EXPECT_NEAR(completions[0], 0.010, 1e-9);
    EXPECT_NEAR(completions[1], 0.010, 1e-9);
    EXPECT_NEAR(completions[2], 0.020, 1e-9);
    EXPECT_NEAR(completions[3], 0.020, 1e-9);
}

TEST(CpuStationTest, IdleServerStartsImmediately) {
    Simulator sim;
    CpuStation cpu(sim, 1);
    double first = 0.0;
    cpu.submit(Duration::millis(5), [&] { first = sim.now().as_seconds(); });
    sim.run();
    double second = 0.0;
    sim.schedule_after(Duration::millis(100), [&] {
        cpu.submit(Duration::millis(5), [&] { second = sim.now().as_seconds(); });
    });
    sim.run();
    EXPECT_NEAR(first, 0.005, 1e-9);
    EXPECT_NEAR(second, 0.110, 1e-9);  // no carry-over of idle time
}

TEST(CpuStationTest, BacklogReporting) {
    Simulator sim;
    CpuStation cpu(sim, 1);
    EXPECT_EQ(cpu.current_backlog(), Duration::zero());
    cpu.submit(Duration::millis(10), [] {});
    cpu.submit(Duration::millis(10), [] {});
    EXPECT_EQ(cpu.current_backlog(), Duration::millis(20));
    sim.run();
    EXPECT_EQ(cpu.current_backlog(), Duration::zero());
}

TEST(CpuStationTest, ZeroCostJobRunsAtNow) {
    Simulator sim;
    CpuStation cpu(sim, 1);
    double at = -1.0;
    cpu.submit(Duration::zero(), [&] { at = sim.now().as_seconds(); });
    sim.run();
    EXPECT_EQ(at, 0.0);
}

TEST(CpuStationTest, NegativeCostClampsToZero) {
    Simulator sim;
    CpuStation cpu(sim, 1);
    bool ran = false;
    cpu.submit(Duration::millis(-10), [&] { ran = true; });
    sim.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(sim.now(), TimePoint::origin());
}

TEST(CpuStationTest, StatsTrackCompletionAndUtilization) {
    Simulator sim;
    CpuStation cpu(sim, 2);
    for (int i = 0; i < 4; ++i) {
        cpu.submit(Duration::millis(10), [] {});
    }
    sim.run();
    EXPECT_EQ(cpu.jobs_completed(), 4u);
    EXPECT_EQ(cpu.busy_time(), Duration::millis(40));
    // 40 ms of work on 2 servers over 20 ms elapsed = 100% utilization.
    EXPECT_NEAR(cpu.utilization(), 1.0, 1e-9);
}

TEST(CpuStationTest, ZeroParallelismRejected) {
    Simulator sim;
    EXPECT_THROW(CpuStation(sim, 0), std::invalid_argument);
}

class CpuSaturationSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CpuSaturationSweep, ThroughputCapsAtParallelism) {
    // Offer 2x the station's capacity for 1 simulated second; completed
    // work must equal parallelism * 1 s within one job.
    const unsigned k = GetParam();
    Simulator sim;
    CpuStation cpu(sim, k);
    const Duration job = Duration::millis(10);
    const int jobs = static_cast<int>(2 * k * 100);
    int completed_by_1s = 0;
    for (int i = 0; i < jobs; ++i) {
        cpu.submit(job, [&] {
            if (sim.now() <= TimePoint::origin() + Duration::seconds(1)) {
                ++completed_by_1s;
            }
        });
    }
    sim.run();
    EXPECT_NEAR(completed_by_1s, static_cast<int>(k * 100), static_cast<int>(k));
}

INSTANTIATE_TEST_SUITE_P(Parallelism, CpuSaturationSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace fl::sim
