// Conservative-window engine unit tests (sim/partition.h) plus the SmallFn
// event-functor contract (sim/small_fn.h).  End-to-end serial-vs-partitioned
// equivalence over full networks lives in tests/core/partitioned_engine_test.
#include "sim/partition.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/small_fn.h"

namespace fl::sim {
namespace {

constexpr Duration kLookahead = Duration::micros(100);

TEST(EventKeyTest, OrdersByTimeThenDomainThenSequence) {
    const EventKey a{TimePoint::from_nanos(10), 5, 7};
    EXPECT_LT(a, (EventKey{TimePoint::from_nanos(11), 0, 0}));
    EXPECT_LT(a, (EventKey{TimePoint::from_nanos(10), 6, 0}));
    EXPECT_LT(a, (EventKey{TimePoint::from_nanos(10), 5, 8}));
    EXPECT_EQ(a, (EventKey{TimePoint::from_nanos(10), 5, 7}));
}

TEST(PartitionSetTest, RejectsZeroOrNegativeLookaheadWithMultipleGroups) {
    Simulator a;
    Simulator b;
    // A zero-latency cross-group link admits no conservative window.
    EXPECT_THROW(PartitionSet({&a, &b}, Duration::zero()), std::invalid_argument);
    EXPECT_THROW(PartitionSet({&a, &b}, Duration::nanos(-1)), std::invalid_argument);
    // One group is the serial engine; the lookahead is unused there.
    EXPECT_NO_THROW(PartitionSet({&a}, Duration::zero()));
}

TEST(PartitionSetTest, RejectsEmptyAndValidatesDomains) {
    EXPECT_THROW(PartitionSet({}, kLookahead), std::invalid_argument);
    Simulator a;
    Simulator b;
    PartitionSet ps({&a, &b}, kLookahead);
    EXPECT_THROW(ps.map_domain(1, 2), std::out_of_range);
    ps.map_domain(7, 1);
    EXPECT_EQ(ps.group_of(7), 1u);
    EXPECT_TRUE(ps.has_domain(7));
    EXPECT_FALSE(ps.has_domain(8));
    EXPECT_THROW(ps.group_of(8), std::out_of_range);
    EXPECT_EQ(&ps.sim_of(7), &b);
}

TEST(PartitionSetTest, SingleGroupRunsPlainSimulatorLoop) {
    Simulator a;
    PartitionSet ps({&a}, kLookahead);
    int ran = 0;
    a.schedule_after(Duration::millis(1), [&] { ++ran; });
    a.schedule_after(Duration::millis(2), [&] { ++ran; });
    EXPECT_EQ(ps.run(nullptr), 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(ps.windows(), 0u);  // serial fast path cuts no windows
}

TEST(PartitionSetTest, CrossGroupMessageExecutesAtItsKey) {
    Simulator a;
    Simulator b;
    PartitionSet ps({&a, &b}, kLookahead);
    ps.map_domain(0, 0);
    ps.map_domain(1, 1);

    TimePoint delivered_at;
    DomainId delivered_domain = 99;
    {
        DomainScope scope(a, 0);
        a.schedule_at(TimePoint::from_nanos(10), [&] {
            const EventKey key = a.make_key(a.now() + kLookahead);
            ps.post(0, 1,
                    InterPartitionMessage{key, 1, [&] {
                                              delivered_at = b.now();
                                              delivered_domain = b.domain();
                                          }});
        });
    }
    ps.run(nullptr);
    EXPECT_EQ(delivered_at, TimePoint::from_nanos(10) + kLookahead);
    // The receiving run loop installs the message's executing domain.
    EXPECT_EQ(delivered_domain, 1u);
}

TEST(PartitionSetTest, WindowBoundaryEventRunsInNextWindow) {
    // Windows are [T, T + L): an event exactly at the boundary belongs to
    // the next window.  Two events L apart must therefore cut two windows.
    Simulator a;
    Simulator b;  // second group so the windowed loop (not the fast path) runs
    PartitionSet ps({&a, &b}, kLookahead);
    std::vector<int> order;
    a.schedule_at(TimePoint::origin(), [&] { order.push_back(0); });
    a.schedule_at(TimePoint::origin() + kLookahead, [&] { order.push_back(1); });
    EXPECT_EQ(ps.run(nullptr), 2u);
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(ps.windows(), 2u);
    // Both events inside one window would have cut a single one.
    Simulator c;
    Simulator d;
    PartitionSet ps2({&c, &d}, kLookahead);
    int ran = 0;
    c.schedule_at(TimePoint::origin(), [&] { ++ran; });
    c.schedule_at(TimePoint::origin() + kLookahead - Duration::nanos(1),
                  [&] { ++ran; });
    EXPECT_EQ(ps2.run(nullptr), 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(ps2.windows(), 1u);
}

TEST(PartitionSetTest, EqualTimestampCrossGroupMessagesTiebreakByKey) {
    // Two source groups deliver into one destination group at the same
    // simulated instant; execution must follow the (domain, sequence) key
    // tiebreak — source-post order and flush order are irrelevant.
    Simulator g0;
    Simulator g1;
    Simulator g2;
    PartitionSet ps({&g0, &g1, &g2}, kLookahead);
    ps.map_domain(0, 0);
    ps.map_domain(1, 1);
    ps.map_domain(2, 2);

    std::vector<std::string> order;
    const TimePoint t0 = TimePoint::from_nanos(40);
    {
        // Schedule the higher-domain sender first: if delivery order ever
        // depended on posting order, this would flip the result.
        DomainScope scope(g1, 1);
        g1.schedule_at(t0, [&] {
            ps.post(1, 2,
                    InterPartitionMessage{g1.make_key(g1.now() + kLookahead), 2,
                                          [&] { order.push_back("domain1"); }});
        });
    }
    {
        DomainScope scope(g0, 0);
        g0.schedule_at(t0, [&] {
            ps.post(0, 2,
                    InterPartitionMessage{g0.make_key(g0.now() + kLookahead), 2,
                                          [&] { order.push_back("domain0"); }});
        });
    }
    ps.run(nullptr);
    EXPECT_EQ(order, (std::vector<std::string>{"domain0", "domain1"}));
}

TEST(PartitionSetTest, BuildTimeOutboxMessagesAreFlushedBeforeFirstWindow) {
    // Component construction posts before any run loop exists (empty heaps,
    // loaded outboxes); next_event_time()/run() must surface them.
    Simulator a;
    Simulator b;
    PartitionSet ps({&a, &b}, kLookahead);
    ps.map_domain(0, 0);
    ps.map_domain(1, 1);
    bool ran = false;
    {
        DomainScope scope(a, 0);
        ps.post(0, 1,
                InterPartitionMessage{a.make_key(TimePoint::from_nanos(5)), 1,
                                      [&] { ran = true; }});
    }
    EXPECT_EQ(ps.next_event_time(), TimePoint::from_nanos(5));
    EXPECT_EQ(ps.run(nullptr), 1u);
    EXPECT_TRUE(ran);
}

TEST(PartitionSetTest, AdvanceUntilIsInclusiveAndAdvancesAllClocks) {
    Simulator a;
    Simulator b;
    PartitionSet ps({&a, &b}, kLookahead);
    const TimePoint end = TimePoint::origin() + Duration::millis(1);
    int ran = 0;
    a.schedule_at(end, [&] { ++ran; });                          // exactly at end
    b.schedule_at(end + Duration::nanos(1), [&] { ++ran; });     // beyond
    EXPECT_EQ(ps.advance_until(end, nullptr), 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(a.now(), end);
    EXPECT_EQ(b.now(), end);  // run_until semantics: clocks finish at end
    EXPECT_EQ(ps.run(nullptr), 1u);
    EXPECT_EQ(ran, 2);
}

TEST(PartitionSetTest, LastEventAtIsMaxAcrossGroups) {
    Simulator a;
    Simulator b;
    PartitionSet ps({&a, &b}, kLookahead);
    a.schedule_at(TimePoint::from_nanos(10), [] {});
    b.schedule_at(TimePoint::from_nanos(30), [] {});
    ps.run(nullptr);
    EXPECT_EQ(ps.last_event_at(), TimePoint::from_nanos(30));
}

// -- SmallFn ----------------------------------------------------------------

TEST(SmallFnTest, DefaultIsEmptyAndBoolTestable) {
    SmallFn fn;
    EXPECT_FALSE(fn);
    SmallFn null_fn(nullptr);
    EXPECT_FALSE(null_fn);
    fn = [] {};
    EXPECT_TRUE(fn);
}

TEST(SmallFnTest, InvokesInlineCapture) {
    int hits = 0;
    SmallFn fn = [&hits] { ++hits; };
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(SmallFnTest, InvokesOversizedHeapCapture) {
    // Larger than kInlineSize, forcing the heap fallback path.
    struct Big {
        unsigned char payload[SmallFn::kInlineSize * 2] = {};
    };
    Big big;
    big.payload[0] = 7;
    int seen = -1;
    SmallFn fn = [big, &seen] { seen = big.payload[0]; };
    fn();
    EXPECT_EQ(seen, 7);
}

TEST(SmallFnTest, CopyIsIndependent) {
    auto counter = std::make_shared<int>(0);
    SmallFn fn = [counter] { ++*counter; };
    SmallFn copy = fn;
    fn();
    copy();
    EXPECT_EQ(*counter, 2);
    EXPECT_TRUE(fn);
    EXPECT_TRUE(copy);
}

TEST(SmallFnTest, MoveTransfersAndEmptiesSource) {
    int hits = 0;
    SmallFn fn = [&hits] { ++hits; };
    SmallFn moved = std::move(fn);
    EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move): pinned contract
    EXPECT_TRUE(moved);
    moved();
    EXPECT_EQ(hits, 1);
}

TEST(SmallFnTest, DestroysCaptureOnResetAndReassign) {
    auto tracker = std::make_shared<int>(42);
    std::weak_ptr<int> weak = tracker;
    {
        SmallFn fn = [tracker] {};
        tracker.reset();
        EXPECT_FALSE(weak.expired());  // capture keeps it alive
        fn = [] {};                    // reassignment destroys the old capture
        EXPECT_TRUE(weak.expired());
    }
    // And destruction destroys a live capture too.
    auto tracker2 = std::make_shared<int>(1);
    std::weak_ptr<int> weak2 = tracker2;
    {
        SmallFn fn = [tracker2] {};
        tracker2.reset();
        EXPECT_FALSE(weak2.expired());
    }
    EXPECT_TRUE(weak2.expired());
}

TEST(SmallFnTest, OversizedCaptureCopyAndMove) {
    struct Big {
        unsigned char payload[SmallFn::kInlineSize * 2] = {};
    };
    auto counter = std::make_shared<int>(0);
    Big big;
    SmallFn fn = [counter, big] { ++*counter; };
    SmallFn copy = fn;        // deep-copies the heap target
    SmallFn moved = std::move(fn);
    EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move)
    copy();
    moved();
    EXPECT_EQ(*counter, 2);
}

}  // namespace
}  // namespace fl::sim
