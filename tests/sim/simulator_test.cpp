#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

namespace fl::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(TimePoint::from_nanos(30), [&] { order.push_back(3); });
    sim.schedule_at(TimePoint::from_nanos(10), [&] { order.push_back(1); });
    sim.schedule_at(TimePoint::from_nanos(20), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
    Simulator sim;
    std::vector<int> order;
    const TimePoint t = TimePoint::from_nanos(5);
    for (int i = 0; i < 10; ++i) {
        sim.schedule_at(t, [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[i], i);
    }
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
    Simulator sim;
    TimePoint seen;
    sim.schedule_after(Duration::millis(7), [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, TimePoint::origin() + Duration::millis(7));
    EXPECT_EQ(sim.now(), seen);
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
    Simulator sim;
    sim.schedule_after(Duration::millis(10), [&] {
        // Scheduling "in the past" must not rewind the clock.
        sim.schedule_at(TimePoint::from_nanos(1), [&] {
            EXPECT_GE(sim.now().as_nanos(), Duration::millis(10).as_nanos());
        });
    });
    sim.run();
    EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(SimulatorTest, NegativeDelayClampsToZero) {
    Simulator sim;
    bool ran = false;
    sim.schedule_after(Duration::millis(-5), [&] { ran = true; });
    sim.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(sim.now(), TimePoint::origin());
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5) {
            sim.schedule_after(Duration::millis(1), recurse);
        }
    };
    sim.schedule_after(Duration::zero(), recurse);
    sim.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(4));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
    Simulator sim;
    int count = 0;
    for (int i = 1; i <= 10; ++i) {
        sim.schedule_at(TimePoint::origin() + Duration::millis(i), [&] { ++count; });
    }
    sim.run_until(TimePoint::origin() + Duration::millis(5));
    EXPECT_EQ(count, 5);
    EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(5));
    sim.run();
    EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnEmptyQueue) {
    Simulator sim;
    sim.run_until(TimePoint::origin() + Duration::seconds(3));
    EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(3));
}

TEST(SimulatorTest, StepExecutesOne) {
    Simulator sim;
    int count = 0;
    sim.schedule_after(Duration::millis(1), [&] { ++count; });
    sim.schedule_after(Duration::millis(2), [&] { ++count; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, TimerCancellation) {
    Simulator sim;
    bool fired = false;
    TimerHandle h = sim.schedule_timer(Duration::millis(5), [&] { fired = true; });
    EXPECT_TRUE(h.active());
    h.cancel();
    EXPECT_FALSE(h.active());
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelledTimerDoesNotCountAsExecution) {
    Simulator sim;
    TimerHandle h = sim.schedule_timer(Duration::millis(5), [] {});
    h.cancel();
    sim.schedule_after(Duration::millis(10), [] {});
    EXPECT_EQ(sim.run(), 1u);
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
    Simulator sim;
    bool fired = false;
    TimerHandle h = sim.schedule_timer(Duration::millis(1), [&] { fired = true; });
    sim.run();
    EXPECT_TRUE(fired);
    h.cancel();  // must not crash
    EXPECT_FALSE(h.active());
}

TEST(SimulatorTest, DefaultTimerHandleInactive) {
    TimerHandle h;
    EXPECT_FALSE(h.active());
    h.cancel();  // no-op
}

TEST(SimulatorTest, EventLimitThrows) {
    Simulator sim;
    sim.set_event_limit(10);
    std::function<void()> forever = [&] { sim.schedule_after(Duration::millis(1), forever); };
    sim.schedule_after(Duration::zero(), forever);
    EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(SimulatorTest, PendingCount) {
    Simulator sim;
    EXPECT_TRUE(sim.empty());
    sim.schedule_after(Duration::millis(1), [] {});
    sim.schedule_after(Duration::millis(2), [] {});
    EXPECT_EQ(sim.pending(), 2u);
}

TEST(SimulatorTest, NextEventTimeReportsEarliestLiveEvent) {
    Simulator sim;
    EXPECT_EQ(sim.next_event_time(), TimePoint::max());
    sim.schedule_after(Duration::millis(10), [] {});
    sim.schedule_after(Duration::millis(3), [] {});
    EXPECT_EQ(sim.next_event_time(), TimePoint::origin() + Duration::millis(3));
}

TEST(SimulatorTest, NextEventTimeSkipsCancelledHead) {
    // Regression: a cancelled timer sitting at the queue head used to be
    // reported as the next event time, making engines wait on (or cut
    // windows around) an event that would never run.
    Simulator sim;
    TimerHandle h = sim.schedule_timer(Duration::millis(5), [] {});
    sim.schedule_after(Duration::millis(10), [] {});
    h.cancel();
    EXPECT_EQ(sim.next_event_time(), TimePoint::origin() + Duration::millis(10));
    EXPECT_EQ(sim.run(), 1u);
}

TEST(SimulatorTest, NextEventTimeAllCancelledReportsIdle) {
    Simulator sim;
    TimerHandle a = sim.schedule_timer(Duration::millis(1), [] {});
    TimerHandle b = sim.schedule_timer(Duration::millis(2), [] {});
    a.cancel();
    b.cancel();
    EXPECT_EQ(sim.next_event_time(), TimePoint::max());
    EXPECT_EQ(sim.run(), 0u);
}

TEST(SimulatorTest, NextEventTimePrunePreservesRunSemantics) {
    // Pruning mirrors run_one's cancelled-pop bookkeeping, so peeking the
    // next event time before running changes nothing observable.
    const auto drive = [](bool peek) {
        Simulator sim;
        TimerHandle h = sim.schedule_timer(Duration::millis(3), [] {});
        sim.schedule_after(Duration::millis(8), [] {});
        h.cancel();
        if (peek) {
            (void)sim.next_event_time();
        }
        const std::uint64_t executed = sim.run();
        return std::tuple{executed, sim.now(), sim.last_event_at()};
    };
    EXPECT_EQ(drive(true), drive(false));
}

}  // namespace
}  // namespace fl::sim
