#include "sim/network.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace fl::sim {
namespace {

LinkParams no_jitter(Duration latency, double bandwidth) {
    LinkParams p;
    p.base_latency = latency;
    p.bandwidth_bps = bandwidth;
    p.jitter_stddev = Duration::zero();
    return p;
}

TEST(NetworkTest, BaseLatencyApplied) {
    Simulator sim;
    Network net(sim, Rng(1), no_jitter(Duration::millis(2), 0.0));
    double delivered_at = -1.0;
    net.send(NodeId{1}, NodeId{2}, 100, [&] { delivered_at = sim.now().as_seconds(); });
    sim.run();
    EXPECT_NEAR(delivered_at, 0.002, 1e-9);
}

TEST(NetworkTest, TransmissionDelayScalesWithSize) {
    Simulator sim;
    Network net(sim, Rng(1), no_jitter(Duration::zero(), 8e6));  // 8 Mbps = 1 MB/s
    double delivered_at = -1.0;
    net.send(NodeId{1}, NodeId{2}, 500'000, [&] { delivered_at = sim.now().as_seconds(); });
    sim.run();
    EXPECT_NEAR(delivered_at, 0.5, 1e-9);
}

TEST(NetworkTest, JitterVariesDelays) {
    Simulator sim;
    LinkParams p;
    p.base_latency = Duration::millis(1);
    p.bandwidth_bps = 0.0;
    p.jitter_stddev = Duration::micros(200);
    Network net(sim, Rng(7), p);
    RunningStats delays;
    for (int i = 0; i < 2000; ++i) {
        delays.add(net.sample_delay(NodeId{1}, NodeId{2}, 0).as_seconds());
    }
    EXPECT_NEAR(delays.mean(), 0.001, 0.0001);
    EXPECT_GT(delays.stddev(), 0.0001);
    EXPECT_GE(delays.min(), 0.0);  // delays never negative
}

TEST(NetworkTest, PerLinkOverride) {
    Simulator sim;
    Network net(sim, Rng(1), no_jitter(Duration::millis(1), 0.0));
    net.set_link(NodeId{1}, NodeId{2}, no_jitter(Duration::millis(50), 0.0));
    double fast = -1.0;
    double slow = -1.0;
    net.send(NodeId{1}, NodeId{2}, 0, [&] { slow = sim.now().as_seconds(); });
    net.send(NodeId{2}, NodeId{1}, 0, [&] { fast = sim.now().as_seconds(); });
    sim.run();
    EXPECT_NEAR(slow, 0.050, 1e-9);  // overridden direction
    EXPECT_NEAR(fast, 0.001, 1e-9);  // default the other way
}

TEST(NetworkTest, CountsTraffic) {
    Simulator sim;
    Network net(sim, Rng(1), no_jitter(Duration::millis(1), 1e9));
    net.send(NodeId{1}, NodeId{2}, 100, [] {});
    net.send(NodeId{1}, NodeId{2}, 200, [] {});
    sim.run();
    EXPECT_EQ(net.messages_sent(), 2u);
    EXPECT_EQ(net.bytes_sent(), 300u);
}

TEST(NetworkTest, ZeroBandwidthMeansNoTransmissionDelay) {
    Simulator sim;
    Network net(sim, Rng(1), no_jitter(Duration::millis(3), 0.0));
    double at = -1.0;
    net.send(NodeId{1}, NodeId{2}, 1'000'000, [&] { at = sim.now().as_seconds(); });
    sim.run();
    EXPECT_NEAR(at, 0.003, 1e-9);
}

}  // namespace
}  // namespace fl::sim
