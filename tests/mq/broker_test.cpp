#include "mq/broker.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fl::mq {
namespace {

struct Fixture {
    sim::Simulator sim;
    sim::Network net{sim, Rng(3), make_link()};
    Broker<int> broker{sim, net};

    static sim::LinkParams make_link() {
        sim::LinkParams p;
        p.base_latency = Duration::micros(500);
        p.jitter_stddev = Duration::micros(100);  // deliberately reorder-prone
        return p;
    }
};

TEST(BrokerTest, UnknownTopicThrows) {
    Fixture f;
    EXPECT_THROW(f.broker.produce("ghost", NodeId{1}, 10, 42), std::invalid_argument);
    EXPECT_THROW((void)f.broker.subscribe("ghost", NodeId{1}), std::invalid_argument);
    EXPECT_THROW((void)f.broker.log_of("ghost"), std::invalid_argument);
}

TEST(BrokerTest, CreateTopicIdempotent) {
    Fixture f;
    f.broker.create_topic("t");
    f.broker.create_topic("t");
    EXPECT_TRUE(f.broker.has_topic("t"));
    EXPECT_EQ(f.broker.topic_size("t"), 0u);
}

TEST(BrokerTest, ProduceAppendsInArrivalOrder) {
    Fixture f;
    f.broker.create_topic("t");
    for (int i = 0; i < 20; ++i) {
        f.broker.produce("t", NodeId{1}, 10, i);
    }
    f.sim.run();
    EXPECT_EQ(f.broker.topic_size("t"), 20u);
}

TEST(BrokerTest, SubscriberReceivesAllInLogOrder) {
    Fixture f;
    f.broker.create_topic("t");
    auto sub = f.broker.subscribe("t", NodeId{5});
    for (int i = 0; i < 50; ++i) {
        f.broker.produce("t", NodeId{1}, 10, i);
    }
    f.sim.run();
    // Jitter may reorder pushes in flight; the subscription must still
    // deliver in offset order.
    std::vector<int> received;
    while (sub->has_ready()) {
        received.push_back(sub->pop());
    }
    EXPECT_EQ(received, f.broker.log_of("t"));
    ASSERT_EQ(received.size(), 50u);
    for (std::size_t i = 1; i < received.size(); ++i) {
        // Values equal the log sequence, which is total order.
        EXPECT_EQ(f.broker.log_of("t")[i], received[i]);
    }
}

TEST(BrokerTest, AllSubscribersSeeSameSequence) {
    Fixture f;
    f.broker.create_topic("t");
    auto s1 = f.broker.subscribe("t", NodeId{5});
    auto s2 = f.broker.subscribe("t", NodeId{6});
    auto s3 = f.broker.subscribe("t", NodeId{7});
    // Interleave producers.
    for (int i = 0; i < 30; ++i) {
        f.broker.produce("t", NodeId{static_cast<std::uint64_t>(1 + i % 3)}, 10, i * 7);
    }
    f.sim.run();
    std::vector<std::vector<int>> seqs(3);
    for (auto* s : {s1.get(), s2.get(), s3.get()}) {
        std::vector<int> v;
        while (s->has_ready()) v.push_back(s->pop());
        seqs[static_cast<std::size_t>(s == s2.get() ? 1 : (s == s3.get() ? 2 : 0))] = v;
    }
    EXPECT_EQ(seqs[0], seqs[1]);
    EXPECT_EQ(seqs[1], seqs[2]);
    EXPECT_EQ(seqs[0].size(), 30u);
}

TEST(BrokerTest, LateSubscriberReplaysFromBeginning) {
    Fixture f;
    f.broker.create_topic("t");
    for (int i = 0; i < 10; ++i) {
        f.broker.produce("t", NodeId{1}, 10, i);
    }
    f.sim.run();
    auto sub = f.broker.subscribe("t", NodeId{9});
    f.sim.run();
    std::vector<int> received;
    while (sub->has_ready()) received.push_back(sub->pop());
    EXPECT_EQ(received, f.broker.log_of("t"));
}

TEST(BrokerTest, PeekDoesNotConsume) {
    Fixture f;
    f.broker.create_topic("t");
    auto sub = f.broker.subscribe("t", NodeId{5});
    f.broker.produce("t", NodeId{1}, 10, 99);
    f.sim.run();
    ASSERT_TRUE(sub->has_ready());
    EXPECT_EQ(sub->peek(), 99);
    EXPECT_EQ(sub->peek_offset(), 0u);
    EXPECT_EQ(sub->ready_count(), 1u);
    EXPECT_EQ(sub->pop(), 99);
    EXPECT_FALSE(sub->has_ready());
}

TEST(BrokerTest, EmptySubscriptionAccessThrows) {
    Subscription<int> sub;
    EXPECT_THROW((void)sub.peek(), std::logic_error);
    EXPECT_THROW((void)sub.peek_offset(), std::logic_error);
    EXPECT_THROW((void)sub.pop(), std::logic_error);
}

TEST(BrokerTest, OnReadyFiresOnArrival) {
    Fixture f;
    f.broker.create_topic("t");
    auto sub = f.broker.subscribe("t", NodeId{5});
    int signals = 0;
    sub->set_on_ready([&] { ++signals; });
    for (int i = 0; i < 5; ++i) {
        f.broker.produce("t", NodeId{1}, 10, i);
    }
    f.sim.run();
    EXPECT_GE(signals, 1);
    EXPECT_EQ(sub->ready_count(), 5u);
}

TEST(BrokerTest, DroppedSubscriptionDoesNotCrash) {
    Fixture f;
    f.broker.create_topic("t");
    {
        auto sub = f.broker.subscribe("t", NodeId{5});
        f.broker.produce("t", NodeId{1}, 10, 1);
    }  // subscription destroyed with a push in flight
    f.broker.produce("t", NodeId{1}, 10, 2);
    f.sim.run();
    EXPECT_EQ(f.broker.topic_size("t"), 2u);
}

TEST(BrokerTest, ProduceLocalIsImmediateAndOrdered) {
    Fixture f;
    f.broker.create_topic("t");
    EXPECT_EQ(f.broker.produce_local("t", 10, 5), 0u);
    EXPECT_EQ(f.broker.produce_local("t", 10, 6), 1u);
    EXPECT_EQ(f.broker.log_of("t"), (std::vector<int>{5, 6}));
}

TEST(BrokerTest, MultipleTopicsIndependent) {
    Fixture f;
    f.broker.create_topic("a");
    f.broker.create_topic("b");
    f.broker.produce_local("a", 10, 1);
    f.broker.produce_local("b", 10, 2);
    f.broker.produce_local("b", 10, 3);
    EXPECT_EQ(f.broker.topic_size("a"), 1u);
    EXPECT_EQ(f.broker.topic_size("b"), 2u);
}

}  // namespace
}  // namespace fl::mq
