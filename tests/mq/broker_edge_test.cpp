// Edge cases of the Kafka stand-in: offset-range errors, empty-topic
// consumption, unavailability windows, expired subscribers, and duplicate
// time-to-cut markers inside one block window.
#include "mq/broker.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "orderer/block_generator.h"
#include "orderer/record.h"

namespace fl::mq {
namespace {

struct Fixture {
    sim::Simulator sim;
    sim::Network net{sim, Rng(3), make_link()};
    Broker<int> broker{sim, net};

    static sim::LinkParams make_link() {
        sim::LinkParams p;
        p.base_latency = Duration::micros(500);
        p.jitter_stddev = Duration::micros(100);
        return p;
    }
};

TEST(BrokerEdgeTest, SubscribePastEndOfTopicThrowsOutOfRange) {
    Fixture f;
    f.broker.create_topic("t");
    for (int i = 0; i < 3; ++i) f.broker.produce_local("t", 10, i);
    EXPECT_THROW((void)f.broker.subscribe("t", NodeId{5}, 4), std::out_of_range);
    EXPECT_THROW((void)f.broker.subscribe("t", NodeId{5}, 1000), std::out_of_range);
}

TEST(BrokerEdgeTest, SubscribeAtEndOfTopicSeesOnlyNewRecords) {
    Fixture f;
    f.broker.create_topic("t");
    for (int i = 0; i < 3; ++i) f.broker.produce_local("t", 10, i);
    // Offset == size is the live tail, not an error (Kafka's "latest").
    auto sub = f.broker.subscribe("t", NodeId{5}, 3);
    f.sim.run();
    EXPECT_FALSE(sub->has_ready());
    f.broker.produce("t", NodeId{1}, 10, 99);
    f.sim.run();
    ASSERT_TRUE(sub->has_ready());
    EXPECT_EQ(sub->peek_offset(), 3u);
    EXPECT_EQ(sub->pop(), 99);
}

TEST(BrokerEdgeTest, SubscribeFromMidLogReplaysSuffixOnly) {
    Fixture f;
    f.broker.create_topic("t");
    for (int i = 0; i < 5; ++i) f.broker.produce_local("t", 10, i * 10);
    auto sub = f.broker.subscribe("t", NodeId{5}, 2);
    f.sim.run();
    std::vector<int> received;
    while (sub->has_ready()) received.push_back(sub->pop());
    EXPECT_EQ(received, (std::vector<int>{20, 30, 40}));
}

TEST(BrokerEdgeTest, ReadUnknownTopicThrowsInvalidArgument) {
    Fixture f;
    EXPECT_THROW((void)f.broker.read("ghost", 0), std::invalid_argument);
}

TEST(BrokerEdgeTest, ReadOutOfRangeOffsetThrowsOutOfRange) {
    Fixture f;
    f.broker.create_topic("t");
    EXPECT_THROW((void)f.broker.read("t", 0), std::out_of_range);
    f.broker.produce_local("t", 10, 7);
    EXPECT_EQ(f.broker.read("t", 0), 7);
    EXPECT_THROW((void)f.broker.read("t", 1), std::out_of_range);
}

TEST(BrokerEdgeTest, EmptyTopicConsumeIsEmptyAndPopThrows) {
    Fixture f;
    f.broker.create_topic("t");
    auto sub = f.broker.subscribe("t", NodeId{5});
    f.sim.run();
    EXPECT_FALSE(sub->has_ready());
    EXPECT_EQ(sub->ready_count(), 0u);
    EXPECT_THROW((void)sub->pop(), std::logic_error);
}

TEST(BrokerEdgeTest, ConsumingPastEndOfTopicThrows) {
    Fixture f;
    f.broker.create_topic("t");
    auto sub = f.broker.subscribe("t", NodeId{5});
    f.broker.produce("t", NodeId{1}, 10, 1);
    f.sim.run();
    EXPECT_EQ(sub->pop(), 1);
    EXPECT_THROW((void)sub->pop(), std::logic_error);  // nothing past the end
}

TEST(BrokerEdgeTest, OutageDefersAppendsAndFlushesInArrivalOrder) {
    Fixture f;
    f.broker.create_topic("t");
    auto sub = f.broker.subscribe("t", NodeId{5});
    f.broker.produce_local("t", 10, 1);

    f.broker.set_down(true);
    EXPECT_TRUE(f.broker.is_down());
    f.broker.produce_local("t", 10, 2);
    f.broker.produce_local("t", 10, 3);
    EXPECT_EQ(f.broker.topic_size("t"), 1u);  // deferred, not appended
    EXPECT_EQ(f.broker.deferred_appends_total(), 2u);

    f.broker.set_down(false);
    EXPECT_EQ(f.broker.topic_size("t"), 3u);
    EXPECT_EQ(f.broker.log_of("t"), (std::vector<int>{1, 2, 3}));
    f.sim.run();
    std::vector<int> received;
    while (sub->has_ready()) received.push_back(sub->pop());
    EXPECT_EQ(received, (std::vector<int>{1, 2, 3}));
}

TEST(BrokerEdgeTest, OutageTransitionsAreIdempotentAndCounted) {
    Fixture f;
    f.broker.create_topic("t");
    f.broker.set_down(true);
    f.broker.set_down(true);  // no second outage
    EXPECT_EQ(f.broker.outages(), 1u);
    f.broker.set_down(false);
    f.broker.set_down(false);
    EXPECT_FALSE(f.broker.is_down());
    f.broker.set_down(true);
    EXPECT_EQ(f.broker.outages(), 2u);
    f.broker.set_down(false);
}

TEST(BrokerEdgeTest, DeferredProducesClaimDistinctOffsets) {
    // Regression: during an outage every produce_local used to report
    // log.records.size() — so all deferred appends claimed the same slot.
    // The promised offset must account for deferred records ahead of it.
    Fixture f;
    f.broker.create_topic("t");
    f.broker.create_topic("u");
    EXPECT_EQ(f.broker.produce_local("t", 10, 1), 0u);

    f.broker.set_down(true);
    EXPECT_EQ(f.broker.produce_local("t", 10, 2), 1u);
    EXPECT_EQ(f.broker.produce_local("t", 10, 3), 2u);
    // A different topic's deferred queue does not shift this topic's offsets.
    EXPECT_EQ(f.broker.produce_local("u", 10, 9), 0u);
    EXPECT_EQ(f.broker.produce_local("t", 10, 4), 3u);

    f.broker.set_down(false);
    EXPECT_EQ(f.broker.log_of("t"), (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(f.broker.log_of("u"), (std::vector<int>{9}));
}

TEST(BrokerEdgeTest, SubscribeDuringOutageReceivesTheFlush) {
    // A consumer that subscribes mid-outage sees the committed prefix only;
    // deferred records arrive like any other post-subscribe append.
    Fixture f;
    f.broker.create_topic("t");
    f.broker.produce_local("t", 10, 1);

    f.broker.set_down(true);
    f.broker.produce_local("t", 10, 2);
    auto sub = f.broker.subscribe("t", NodeId{5});
    // Offset == committed size is legal during the outage too: the deferred
    // record is not yet part of the log.
    auto tail = f.broker.subscribe("t", NodeId{6}, 1);
    // ...but the deferred append's eventual offset is still out of range.
    EXPECT_THROW((void)f.broker.subscribe("t", NodeId{7}, 2), std::out_of_range);

    f.broker.set_down(false);
    f.sim.run();
    std::vector<int> full;
    while (sub->has_ready()) full.push_back(sub->pop());
    EXPECT_EQ(full, (std::vector<int>{1, 2}));
    std::vector<int> suffix;
    while (tail->has_ready()) suffix.push_back(tail->pop());
    EXPECT_EQ(suffix, (std::vector<int>{2}));
}

TEST(BrokerEdgeTest, ExpiredSubscriberIsPrunedNotPushed) {
    Fixture f;
    f.broker.create_topic("t");
    auto keep = f.broker.subscribe("t", NodeId{5});
    {
        auto dropped = f.broker.subscribe("t", NodeId{6});
    }  // consumer gone (e.g. a crashed OSN's generator)
    f.broker.produce_local("t", 10, 1);
    f.broker.produce_local("t", 10, 2);
    f.sim.run();
    EXPECT_EQ(keep->ready_count(), 2u);
    EXPECT_EQ(f.broker.topic_size("t"), 2u);
}

// -- duplicate TTC markers in one block window -------------------------------

std::shared_ptr<const ledger::Envelope> tx(std::uint64_t id, PriorityLevel level) {
    auto env = std::make_shared<ledger::Envelope>();
    env->proposal.tx_id = TxId{id};
    env->consolidated_priority = level;
    return env;
}

TEST(BrokerEdgeTest, DuplicateTtcMarkersInOneWindowCutExactlyOnce) {
    // Two TTC markers for the same block number land in every queue inside
    // one window (e.g. two OSN timers fired before either marker was
    // consumed).  Exactly one block must be cut for that number, and the
    // generator must not wedge or emit an extra empty block.
    sim::Simulator sim;
    sim::LinkParams link;
    link.base_latency = Duration::micros(10);
    link.jitter_stddev = Duration::zero();
    sim::Network net(sim, Rng(5), link);
    Broker<orderer::OrderedRecord> broker(sim, net);
    broker.create_topic("p0");
    broker.create_topic("p1");

    std::vector<orderer::CutResult> cuts;
    orderer::GeneratorConfig cfg;
    cfg.quotas = {2, 2};
    cfg.block_size = 4;
    cfg.timeout = Duration::seconds(100);  // local timer never fires
    orderer::MultiQueueBlockGenerator::Subscriptions subs;
    subs.push_back(broker.subscribe("p0", NodeId{50}));
    subs.push_back(broker.subscribe("p1", NodeId{50}));
    orderer::MultiQueueBlockGenerator gen(
        sim, cfg, std::move(subs), [](BlockNumber) {},
        [&cuts](orderer::CutResult r) { cuts.push_back(std::move(r)); });

    broker.produce_local("p0", 100, orderer::OrderedRecord::transaction(tx(1, 0)));
    broker.produce_local("p1", 100, orderer::OrderedRecord::transaction(tx(2, 1)));
    for (int dup = 0; dup < 2; ++dup) {
        broker.produce_local("p0", 24,
                             orderer::OrderedRecord::time_to_cut(0, OsnId{0}));
        broker.produce_local("p1", 24,
                             orderer::OrderedRecord::time_to_cut(0, OsnId{1}));
    }
    sim.run();

    ASSERT_EQ(cuts.size(), 1u);
    EXPECT_EQ(cuts[0].number, 0u);
    EXPECT_TRUE(cuts[0].by_timeout);
    EXPECT_EQ(cuts[0].transactions.size(), 2u);

    // The generator is still healthy: the next window cuts block 1.
    broker.produce_local("p0", 100, orderer::OrderedRecord::transaction(tx(3, 0)));
    broker.produce_local("p0", 24, orderer::OrderedRecord::time_to_cut(1, OsnId{0}));
    broker.produce_local("p1", 24, orderer::OrderedRecord::time_to_cut(1, OsnId{0}));
    sim.run();
    ASSERT_EQ(cuts.size(), 2u);
    EXPECT_EQ(cuts[1].number, 1u);
    EXPECT_EQ(cuts[1].transactions.size(), 1u);
}

}  // namespace
}  // namespace fl::mq
