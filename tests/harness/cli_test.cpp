// CLI hardening for the bench drivers: strict numeric parsing and typed
// rejection (exit code 2) of malformed / zero / negative count flags.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "harness/sweep.h"

namespace fl::harness {
namespace {

// -- parse_cli_u64: the strict parser itself --------------------------------

TEST(CliParseTest, AcceptsPlainDigits) {
    EXPECT_EQ(parse_cli_u64("0"), std::uint64_t{0});
    EXPECT_EQ(parse_cli_u64("1"), std::uint64_t{1});
    EXPECT_EQ(parse_cli_u64("123456789"), std::uint64_t{123456789});
    EXPECT_EQ(parse_cli_u64("18446744073709551615"),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(CliParseTest, RejectsSignsWhitespaceAndGarbage) {
    EXPECT_EQ(parse_cli_u64("-1"), std::nullopt);   // strtoull would wrap this
    EXPECT_EQ(parse_cli_u64("+1"), std::nullopt);
    EXPECT_EQ(parse_cli_u64(" 1"), std::nullopt);
    EXPECT_EQ(parse_cli_u64("1 "), std::nullopt);
    EXPECT_EQ(parse_cli_u64("12abc"), std::nullopt);
    EXPECT_EQ(parse_cli_u64("abc"), std::nullopt);
    EXPECT_EQ(parse_cli_u64("0x10"), std::nullopt);
    EXPECT_EQ(parse_cli_u64("1.5"), std::nullopt);
    EXPECT_EQ(parse_cli_u64(""), std::nullopt);
    EXPECT_EQ(parse_cli_u64(nullptr), std::nullopt);
}

TEST(CliParseTest, RejectsOverflow) {
    EXPECT_EQ(parse_cli_u64("18446744073709551616"), std::nullopt);  // 2^64
    EXPECT_EQ(parse_cli_u64("99999999999999999999999"), std::nullopt);
}

// -- parse_sweep_cli: rejection paths exit with code 2 -----------------------

SweepCli parse(std::vector<const char*> argv) {
    argv.insert(argv.begin(), "bench");
    return parse_sweep_cli(static_cast<int>(argv.size()),
                           const_cast<char**>(argv.data()), 42, "cli_test");
}

TEST(CliDeathTest, ZeroTxsRejected) {
    EXPECT_EXIT(parse({"--txs", "0"}), ::testing::ExitedWithCode(2),
                "must be >= 1");
}

TEST(CliDeathTest, NegativeTxsRejected) {
    EXPECT_EXIT(parse({"--txs", "-5"}), ::testing::ExitedWithCode(2),
                "not a non-negative integer");
}

TEST(CliDeathTest, MalformedTxsRejected) {
    EXPECT_EXIT(parse({"--txs", "12abc"}), ::testing::ExitedWithCode(2),
                "not a non-negative integer");
}

TEST(CliDeathTest, ZeroRunsRejected) {
    EXPECT_EXIT(parse({"--runs", "0"}), ::testing::ExitedWithCode(2),
                "must be >= 1");
}

TEST(CliDeathTest, NegativeRunsRejected) {
    EXPECT_EXIT(parse({"--runs", "-1"}), ::testing::ExitedWithCode(2),
                "not a non-negative integer");
}

TEST(CliDeathTest, ZeroThreadsRejected) {
    EXPECT_EXIT(parse({"--threads", "0"}), ::testing::ExitedWithCode(2),
                "must be >= 1");
}

TEST(CliDeathTest, MalformedThreadsRejected) {
    EXPECT_EXIT(parse({"--threads", "two"}), ::testing::ExitedWithCode(2),
                "not a non-negative integer");
}

TEST(CliDeathTest, MalformedSeedRejected) {
    EXPECT_EXIT(parse({"--seed", "0x10"}), ::testing::ExitedWithCode(2),
                "not a non-negative integer");
}

TEST(CliDeathTest, MissingValueRejected) {
    EXPECT_EXIT(parse({"--txs"}), ::testing::ExitedWithCode(2), "missing value");
}

// -- bench-specific flags (BenchFlag) ----------------------------------------

struct BenchParse {
    BenchFlag accounts{"--accounts", "account count", 1'000'000, true};
    BenchFlag shards{"--shards", "shard count", 0, true, 256};
    BenchFlag zipf{"--zipf", "skew hundredths", 99, false, 99};
    SweepCli cli;

    explicit BenchParse(std::vector<const char*> argv) {
        argv.insert(argv.begin(), "bench");
        cli = parse_sweep_cli(static_cast<int>(argv.size()),
                              const_cast<char**>(argv.data()), 42, "cli_test",
                              {&accounts, &shards, &zipf});
    }
};

TEST(CliParseTest, BenchFlagsKeepDefaultsWhenAbsent) {
    const BenchParse p({"--txs", "10"});
    EXPECT_EQ(p.accounts.value, 1'000'000u);
    EXPECT_FALSE(p.accounts.seen);
    EXPECT_EQ(p.shards.value, 0u);
    EXPECT_FALSE(p.shards.seen);
    EXPECT_EQ(p.zipf.value, 99u);
}

TEST(CliParseTest, BenchFlagsParseAlongsideSharedFlags) {
    const BenchParse p({"--accounts", "5000", "--threads", "2", "--shards",
                        "8", "--zipf", "0"});
    EXPECT_EQ(p.accounts.value, 5000u);
    EXPECT_TRUE(p.accounts.seen);
    EXPECT_EQ(p.shards.value, 8u);
    EXPECT_TRUE(p.shards.seen);
    EXPECT_EQ(p.zipf.value, 0u);  // positive=false: zero allowed
    EXPECT_TRUE(p.zipf.seen);
    EXPECT_EQ(p.cli.threads, 2u);
}

TEST(CliDeathTest, MalformedBenchFlagRejected) {
    EXPECT_EXIT(BenchParse({"--accounts", "1e6"}),
                ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeathTest, NegativeBenchFlagRejected) {
    EXPECT_EXIT(BenchParse({"--accounts", "-3"}),
                ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeathTest, ZeroPositiveBenchFlagRejected) {
    EXPECT_EXIT(BenchParse({"--shards", "0"}), ::testing::ExitedWithCode(2),
                "must be >= 1");
}

TEST(CliDeathTest, BenchFlagAboveMaxRejected) {
    EXPECT_EXIT(BenchParse({"--zipf", "100"}), ::testing::ExitedWithCode(2),
                "must be <= 99");
    EXPECT_EXIT(BenchParse({"--shards", "257"}), ::testing::ExitedWithCode(2),
                "must be <= 256");
}

TEST(CliDeathTest, BenchFlagMissingValueRejected) {
    EXPECT_EXIT(BenchParse({"--accounts"}), ::testing::ExitedWithCode(2),
                "missing value");
}

TEST(CliDeathTest, UnknownFlagStillRejectedWithBenchFlags) {
    EXPECT_EXIT(BenchParse({"--nope", "1"}), ::testing::ExitedWithCode(2),
                "unknown option");
}

// -- accepted values round-trip ---------------------------------------------

TEST(CliParseTest, ValidFlagsParse) {
    const SweepCli cli =
        parse({"--txs", "1000", "--runs", "3", "--threads", "4", "--seed", "7"});
    ASSERT_TRUE(cli.total_txs.has_value());
    EXPECT_EQ(*cli.total_txs, 1000u);
    ASSERT_TRUE(cli.runs.has_value());
    EXPECT_EQ(*cli.runs, 3u);
    EXPECT_EQ(cli.threads, 4u);
    EXPECT_EQ(cli.base_seed, 7u);
}

TEST(CliParseTest, SeedZeroIsAllowed) {
    // --seed is a raw u64, not a count: 0 is a legitimate seed.
    EXPECT_EQ(parse({"--seed", "0"}).base_seed, 0u);
}

// -- fairness-audit flags -----------------------------------------------------

TEST(CliParseTest, AuditFlagsDefaultOff) {
    const SweepCli cli = parse({"--txs", "10"});
    EXPECT_FALSE(cli.audit);
    EXPECT_FALSE(cli.audit_window_seen);
    EXPECT_EQ(cli.audit_window_ms, 1000u);
}

TEST(CliParseTest, AuditFlagsParse) {
    const SweepCli cli = parse({"--audit", "--audit-window", "250"});
    EXPECT_TRUE(cli.audit);
    EXPECT_TRUE(cli.audit_window_seen);
    EXPECT_EQ(cli.audit_window_ms, 250u);
    EXPECT_EQ(cli.audit_config().window, Duration::millis(250));
}

TEST(CliParseTest, AuditWindowDefaultsToOneSecond) {
    EXPECT_EQ(parse({"--audit"}).audit_config().window, Duration::seconds(1));
}

TEST(CliDeathTest, AuditWindowMissingValueRejected) {
    EXPECT_EXIT(parse({"--audit-window"}), ::testing::ExitedWithCode(2),
                "missing value");
}

TEST(CliDeathTest, MalformedAuditWindowRejected) {
    EXPECT_EXIT(parse({"--audit-window", "2s"}), ::testing::ExitedWithCode(2),
                "not a non-negative integer");
}

TEST(CliDeathTest, ZeroAuditWindowRejected) {
    EXPECT_EXIT(parse({"--audit-window", "0"}), ::testing::ExitedWithCode(2),
                "must be >= 1");
}

// -- apply_audit_cli ----------------------------------------------------------

SweepSpec two_point_spec() {
    SweepSpec spec;
    spec.points.resize(2);
    spec.points[0].label = "plain";
    spec.points[1].label = "preconfigured";
    spec.points[1].spec.audit = obs::audit::AuditConfig{};
    spec.points[1].spec.audit->window = Duration::millis(2000);
    return spec;
}

TEST(CliParseTest, ApplyAuditCliAttachesDefaultConfig) {
    SweepSpec spec = two_point_spec();
    apply_audit_cli(spec, parse({"--audit"}));
    ASSERT_TRUE(spec.points[0].spec.audit.has_value());
    EXPECT_EQ(spec.points[0].spec.audit->window, Duration::seconds(1));
    // A bench-provided audit config (its window tuned to its scenario) wins.
    EXPECT_EQ(spec.points[1].spec.audit->window, Duration::millis(2000));
}

TEST(CliParseTest, ApplyAuditCliExplicitWindowOverridesEveryPoint) {
    SweepSpec spec = two_point_spec();
    apply_audit_cli(spec, parse({"--audit", "--audit-window", "500"}));
    EXPECT_EQ(spec.points[0].spec.audit->window, Duration::millis(500));
    EXPECT_EQ(spec.points[1].spec.audit->window, Duration::millis(500));
}

TEST(CliParseTest, ApplyAuditCliIsANoOpWithoutFlags) {
    SweepSpec spec = two_point_spec();
    apply_audit_cli(spec, parse({"--txs", "10"}));
    EXPECT_FALSE(spec.points[0].spec.audit.has_value());
    EXPECT_EQ(spec.points[1].spec.audit->window, Duration::millis(2000));
}

}  // namespace
}  // namespace fl::harness
