// Parallel sweep harness: deterministic seed derivation, scheduling-independent
// results, CLI parsing and JSON emission.
//
// The centerpiece is SweepDeterminismTest.JsonIdenticalAcrossThreadCounts: a
// miniature fig5-style sweep (paired baseline/priority points across send
// rates) executed at --threads 1 and --threads 4 must serialize to the
// byte-identical JSON document.  This is the regression test for the
// determinism contract documented in harness/sweep.h.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/rng.h"
#include "harness/report.h"
#include "harness/sweep.h"

namespace fl::harness {
namespace {

core::NetworkConfig tiny_config(bool priority_enabled) {
    core::NetworkConfig cfg;
    cfg.orgs = 2;
    cfg.osns = 1;
    cfg.clients = 2;
    cfg.channel.priority_enabled = priority_enabled;
    cfg.channel.block_size = 10;
    cfg.channel.block_timeout = Duration::millis(100);
    cfg.endorsement_k = 2;
    return cfg;
}

ExperimentPoint tiny_point(bool priority_enabled, double tps,
                           std::uint64_t seed_group) {
    ExperimentPoint point;
    point.label = fmt(tps, 0) + (priority_enabled ? "/priority" : "/baseline");
    point.params = {{"tps", tps},
                    {"priority_enabled", priority_enabled ? 1.0 : 0.0}};
    point.spec.config = tiny_config(priority_enabled);
    point.spec.make_workload = [tps] {
        Workload w;
        LoadSpec load;
        load.client_index = 0;
        load.tps = tps;
        load.total_txs = 60;
        load.generate = priority_class_mix({1, 2, 1});
        w.loads.push_back(std::move(load));
        return w;
    };
    point.spec.runs = 2;
    point.seed_group = seed_group;
    return point;
}

SweepSpec tiny_sweep(unsigned threads) {
    // Miniature fig5: paired baseline/priority points over three send rates,
    // each pair sharing a derived seed through its seed_group.
    SweepSpec sweep;
    sweep.name = "tiny_fig5";
    sweep.base_seed = 4242;
    sweep.threads = threads;
    std::uint64_t group = 0;
    for (const double tps : {100.0, 200.0, 300.0}) {
        sweep.points.push_back(tiny_point(false, tps, group));
        sweep.points.push_back(tiny_point(true, tps, group));
        ++group;
    }
    return sweep;
}

TEST(PointSeedTest, MatchesSplitmixStream) {
    // point_seed(base, i) must be the i-th output of the SplitMix64 sequence
    // seeded at base — the same stream Rng uses — accessed randomly.
    EXPECT_EQ(point_seed(77, 0), derive_seed(77, 0));
    EXPECT_EQ(point_seed(77, 3), derive_seed(77, 3));
    EXPECT_NE(point_seed(77, 0), point_seed(77, 1));
    EXPECT_NE(point_seed(77, 0), point_seed(78, 0));
    // Random access: value independent of evaluation order.
    const auto late = point_seed(9000, 11);
    const auto early = point_seed(9000, 2);
    EXPECT_EQ(point_seed(9000, 11), late);
    EXPECT_EQ(point_seed(9000, 2), early);
}

TEST(PointSeedTest, DistinctAcrossManyIndices) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(point_seed(1000, i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(SweepTest, ResultsIndexedInPointOrder) {
    const auto sweep = tiny_sweep(2);
    const auto results = run_sweep(sweep);
    ASSERT_EQ(results.size(), sweep.points.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].label, sweep.points[i].label);
        EXPECT_GT(results[i].result.total_committed, 0u);
    }
}

TEST(SweepTest, SeedGroupsPairPoints) {
    const auto sweep = tiny_sweep(1);
    const auto results = run_sweep(sweep);
    // Paired points share the derived seed; distinct groups differ.
    EXPECT_EQ(results[0].seed, results[1].seed);
    EXPECT_EQ(results[2].seed, results[3].seed);
    EXPECT_NE(results[0].seed, results[2].seed);
    EXPECT_EQ(results[0].seed, point_seed(sweep.base_seed, 0));
    EXPECT_EQ(results[2].seed, point_seed(sweep.base_seed, 1));
}

TEST(SweepDeterminismTest, JsonIdenticalAcrossThreadCounts) {
    const auto render = [](unsigned threads) {
        const auto sweep = tiny_sweep(threads);
        const auto results = run_sweep(sweep);
        std::ostringstream os;
        write_sweep_json(os, sweep, results);
        return os.str();
    };
    const std::string serial = render(1);
    const std::string parallel = render(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(SweepTest, ProbesAggregateIntoExtra) {
    auto sweep = tiny_sweep(2);
    for (auto& point : sweep.points) {
        point.spec.tx_probe = [](const client::TxRecord& r, core::FabricNetwork&,
                                 std::map<std::string, double>& extra) {
            if (!r.failed_before_ordering && is_valid(r.code)) {
                extra["committed_seen"] += 1.0;
            }
        };
        point.spec.run_probe = [](core::FabricNetwork& net,
                                  std::map<std::string, double>& extra) {
            extra["height"] +=
                static_cast<double>(net.peers().front()->chain().height());
        };
    }
    const auto results = run_sweep(sweep);
    for (const auto& r : results) {
        // tx_probe fires once per committed transaction in every run.
        EXPECT_NEAR(r.result.extra_total("committed_seen"),
                    static_cast<double>(r.result.total_committed), 0.5);
        EXPECT_GT(r.result.extra_mean("height"), 0.0);
    }
}

TEST(SweepTest, ValidatesPoints) {
    SweepSpec sweep;
    sweep.name = "invalid";
    ExperimentPoint point;
    point.spec.config = tiny_config(true);
    // no make_workload
    sweep.points.push_back(std::move(point));
    EXPECT_THROW((void)run_sweep(sweep), std::invalid_argument);
}

TEST(SweepCliTest, Defaults) {
    const char* argv[] = {"bench"};
    const auto cli = parse_sweep_cli(1, const_cast<char**>(argv), 9200, "fig5");
    EXPECT_EQ(cli.threads, 0u);  // 0 = hardware concurrency
    EXPECT_EQ(cli.base_seed, 9200u);
    EXPECT_TRUE(cli.json_enabled);
    EXPECT_EQ(cli.json_path, "BENCH_local_fig5.json");
    EXPECT_FALSE(cli.runs.has_value());
    EXPECT_EQ(cli.runs_or(3), 3u);
    EXPECT_EQ(cli.txs_or(1000), 1000u);
}

TEST(SweepCliTest, ParsesFlags) {
    const char* argv[] = {"bench", "--threads", "8",    "--seed", "42",
                          "--runs", "5",        "--txs", "2500",  "--json",
                          "out.json"};
    const auto cli = parse_sweep_cli(11, const_cast<char**>(argv), 9200, "fig5");
    EXPECT_EQ(cli.threads, 8u);
    EXPECT_EQ(cli.base_seed, 42u);
    EXPECT_EQ(cli.runs_or(3), 5u);
    EXPECT_EQ(cli.txs_or(1000), 2500u);
    EXPECT_EQ(cli.json_path, "out.json");
    EXPECT_TRUE(cli.json_enabled);
}

TEST(SweepCliTest, NoJsonDisablesEmission) {
    const char* argv[] = {"bench", "--no-json"};
    const auto cli = parse_sweep_cli(2, const_cast<char**>(argv), 1, "x");
    EXPECT_FALSE(cli.json_enabled);
}

}  // namespace
}  // namespace fl::harness
