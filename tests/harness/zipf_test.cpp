// ZipfSampler: the YCSB-style skewed sampler behind the scale workload.
#include "harness/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace fl::harness {
namespace {

TEST(ZipfSamplerTest, RanksStayInBounds) {
    ZipfSampler z(1000, 0.99);
    Rng rng(1);
    for (int i = 0; i < 10'000; ++i) {
        EXPECT_LT(z.next_rank(rng), 1000u);
        EXPECT_LT(z.next(rng), 1000u);
    }
}

TEST(ZipfSamplerTest, ThetaZeroIsUniform) {
    // theta = 0 degenerates to the uniform distribution: over many draws
    // every decile of the rank space gets ~10% of the mass.
    ZipfSampler z(1000, 0.0);
    Rng rng(7);
    std::vector<int> decile(10, 0);
    const int draws = 50'000;
    for (int i = 0; i < draws; ++i) {
        ++decile[z.next_rank(rng) / 100];
    }
    for (const int count : decile) {
        EXPECT_GT(count, draws / 10 - draws / 40);
        EXPECT_LT(count, draws / 10 + draws / 40);
    }
}

TEST(ZipfSamplerTest, HighThetaConcentratesOnHotRanks) {
    // At theta = 0.99 YCSB's construction puts a large constant share on
    // the hottest ranks regardless of n.
    ZipfSampler z(100'000, 0.99);
    Rng rng(3);
    const int draws = 20'000;
    int rank0 = 0, top10 = 0;
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t r = z.next_rank(rng);
        if (r == 0) ++rank0;
        if (r < 10) ++top10;
    }
    EXPECT_GT(rank0, draws / 20);   // hottest rank alone: >5% of traffic
    EXPECT_GT(top10, draws / 8);    // top-10 ranks: well over 12%
    EXPECT_LT(rank0, draws / 2);    // ...but not degenerate
}

TEST(ZipfSamplerTest, DeterministicAcrossInstances) {
    ZipfSampler a(5000, 0.8);
    ZipfSampler b(5000, 0.8);
    Rng ra(99), rb(99);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(ra), b.next(rb));
    }
}

TEST(ZipfSamplerTest, ScrambleIsStableAndSpreads) {
    ZipfSampler z(1'000'000, 0.99);
    EXPECT_EQ(z.scramble(0), z.scramble(0));  // pure function of rank
    // The hot ranks must not land on adjacent indices (that would put them
    // on correlated world-state shards).
    std::map<std::uint64_t, int> hits;
    for (std::uint64_t r = 0; r < 16; ++r) {
        ++hits[z.scramble(r)];
    }
    EXPECT_GE(hits.size(), 14u);  // near-collision-free for tiny rank sets
}

TEST(ZipfSamplerTest, RejectsBadParameters) {
    EXPECT_THROW(ZipfSampler(0, 0.5), std::invalid_argument);
    EXPECT_THROW(ZipfSampler(10, 1.0), std::invalid_argument);
    EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(ZipfWorkloadTest, GeneratorValidation) {
    EXPECT_THROW(zipfian_transfers(1, 0.5), std::invalid_argument);
    EXPECT_THROW(zipfian_transfers(100, 0.5, 1.5), std::invalid_argument);
    EXPECT_NO_THROW(zipfian_transfers(100, 0.0, 0.5));
}

TEST(ZipfWorkloadTest, ScaleAccountNames) {
    EXPECT_EQ(scale_account_name(0), "u0");
    EXPECT_EQ(scale_account_name(999'999), "u999999");
}

}  // namespace
}  // namespace fl::harness
