// Harness: workload distribution, driver scheduling, experiment aggregation
// and report rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/workload.h"

namespace fl::harness {
namespace {

core::NetworkConfig tiny_config() {
    core::NetworkConfig cfg;
    cfg.orgs = 2;
    cfg.osns = 1;
    cfg.clients = 2;
    cfg.channel.priority_enabled = true;
    cfg.channel.block_size = 10;
    cfg.channel.block_timeout = Duration::millis(100);
    cfg.endorsement_k = 2;
    return cfg;
}

TEST(WorkloadTest, DistributeTotalProportional) {
    Workload w;
    for (const double tps : {100.0, 200.0, 100.0}) {
        LoadSpec load;
        load.tps = tps;
        load.generate = single_chaincode("record_keeper");
        w.loads.push_back(std::move(load));
    }
    w.distribute_total(1000);
    EXPECT_EQ(w.loads[0].total_txs + w.loads[1].total_txs + w.loads[2].total_txs,
              1000u);
    EXPECT_EQ(w.loads[1].total_txs, 500u);
    EXPECT_NEAR(static_cast<double>(w.loads[0].total_txs), 250.0, 1.0);
}

TEST(WorkloadTest, DistributeRemainderExact) {
    Workload w;
    for (int i = 0; i < 3; ++i) {
        LoadSpec load;
        load.tps = 1.0;
        load.generate = single_chaincode("record_keeper");
        w.loads.push_back(std::move(load));
    }
    w.distribute_total(100);  // 100/3 does not divide evenly
    std::uint64_t sum = 0;
    for (const auto& l : w.loads) sum += l.total_txs;
    EXPECT_EQ(sum, 100u);
}

TEST(WorkloadTest, DistributeZeroRateThrows) {
    Workload w;
    LoadSpec load;
    load.tps = 0.0;
    w.loads.push_back(std::move(load));
    EXPECT_THROW(w.distribute_total(10), std::invalid_argument);
}

TEST(WorkloadDriverTest, ValidatesSpecs) {
    core::FabricNetwork net(tiny_config());
    {
        Workload w;  // empty
        EXPECT_THROW(WorkloadDriver(net, std::move(w), Rng(1)), std::invalid_argument);
    }
    {
        Workload w;
        LoadSpec load;
        load.client_index = 99;  // out of range
        load.tps = 10.0;
        load.generate = single_chaincode("record_keeper");
        w.loads.push_back(std::move(load));
        EXPECT_THROW(WorkloadDriver(net, std::move(w), Rng(1)), std::invalid_argument);
    }
    {
        Workload w;
        LoadSpec load;
        load.tps = 10.0;  // no generator
        w.loads.push_back(std::move(load));
        EXPECT_THROW(WorkloadDriver(net, std::move(w), Rng(1)), std::invalid_argument);
    }
}

TEST(WorkloadDriverTest, SubmitsExactlyTotal) {
    core::FabricNetwork net(tiny_config());
    std::uint64_t completed = 0;
    net.set_tx_sink([&completed](const client::TxRecord&) { ++completed; });
    Workload w;
    for (std::size_t c = 0; c < 2; ++c) {
        LoadSpec load;
        load.client_index = c;
        load.tps = 100.0;
        load.generate = single_chaincode("record_keeper");
        w.loads.push_back(std::move(load));
    }
    w.distribute_total(60);
    WorkloadDriver driver(net, std::move(w), Rng(3));
    driver.start();
    net.run();
    EXPECT_EQ(driver.submitted(), 60u);
    EXPECT_EQ(completed, 60u);
}

TEST(WorkloadDriverTest, DeterministicArrivals) {
    // Same seed, two networks: identical inter-arrival sequences.
    auto run_one = [](std::uint64_t seed) {
        core::FabricNetwork net(tiny_config());
        double last_completion = 0.0;
        net.set_tx_sink([&last_completion](const client::TxRecord& r) {
            last_completion = r.completed_at.as_seconds();
        });
        Workload w;
        LoadSpec load;
        load.client_index = 0;
        load.tps = 200.0;
        load.total_txs = 50;
        load.generate = single_chaincode("record_keeper");
        w.loads.push_back(std::move(load));
        WorkloadDriver driver(net, std::move(w), Rng(seed));
        driver.start();
        net.run();
        return last_completion;
    };
    EXPECT_EQ(run_one(9), run_one(9));
    EXPECT_NE(run_one(9), run_one(10));
}

TEST(GeneratorFactoryTest, ClassGeneratorsHitExpectedChaincode) {
    core::FabricNetwork net(tiny_config());
    std::vector<std::string> seen;
    net.set_tx_sink([&seen](const client::TxRecord& r) { seen.push_back(r.chaincode); });
    Rng rng(1);
    class_tx_generator(0)(*net.clients()[0], rng);
    class_tx_generator(1)(*net.clients()[0], rng);
    class_tx_generator(2)(*net.clients()[0], rng);
    net.run();
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_TRUE(std::count(seen.begin(), seen.end(), "asset_transfer") == 1);
    EXPECT_TRUE(std::count(seen.begin(), seen.end(), "supply_chain") == 1);
    EXPECT_TRUE(std::count(seen.begin(), seen.end(), "record_keeper") == 1);
}

TEST(GeneratorFactoryTest, MixRespectsWeights) {
    core::FabricNetwork net(tiny_config());
    std::map<std::string, int> counts;
    net.set_tx_sink([&counts](const client::TxRecord& r) { ++counts[r.chaincode]; });
    auto gen = priority_class_mix({1, 2, 1});
    Rng rng(77);
    for (int i = 0; i < 800; ++i) {
        gen(*net.clients()[0], rng);
    }
    net.run();
    EXPECT_NEAR(counts["supply_chain"],
                counts["asset_transfer"] + counts["record_keeper"], 120);
}

TEST(GeneratorFactoryTest, InvalidSpecsThrow) {
    EXPECT_THROW(priority_class_mix({}), std::invalid_argument);
    EXPECT_THROW(priority_class_mix({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(priority_class_mix({-1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(single_chaincode("ghost"), std::invalid_argument);
    EXPECT_THROW(contended_transfers(1), std::invalid_argument);
}

TEST(ExperimentTest, AggregatesAcrossRuns) {
    ExperimentSpec spec;
    spec.config = tiny_config();
    spec.make_workload = [] {
        Workload w;
        LoadSpec load;
        load.client_index = 0;
        load.tps = 100.0;
        load.total_txs = 40;
        load.generate = single_chaincode("record_keeper");
        w.loads.push_back(std::move(load));
        return w;
    };
    spec.runs = 3;
    spec.base_seed = 500;
    const AggregateResult agg = run_experiment(spec);
    EXPECT_EQ(agg.total_committed, 120u);
    EXPECT_EQ(agg.overall_latency.runs(), 3u);
    EXPECT_GT(agg.overall_latency.mean(), 0.0);
    EXPECT_TRUE(agg.all_consistent);
    EXPECT_GT(agg.throughput_tps.mean(), 0.0);
}

TEST(ExperimentTest, ValidatesSpec) {
    ExperimentSpec spec;
    spec.config = tiny_config();
    EXPECT_THROW((void)run_experiment(spec), std::invalid_argument);  // no workload
    spec.make_workload = [] { return Workload{}; };
    spec.runs = 0;
    EXPECT_THROW((void)run_experiment(spec), std::invalid_argument);
}

TEST(ReportTest, TableRendersAligned) {
    Table t({"name", "value"});
    t.add_row({"alpha", "1.0"});
    t.add_row({"a-very-long-name", "2"});
    t.add_row({"short"});  // missing cells padded
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name "), std::string::npos);
    EXPECT_NE(out.find("a-very-long-name"), std::string::npos);
    // All lines equal length (aligned columns).
    std::istringstream is(out);
    std::string line;
    std::size_t len = 0;
    while (std::getline(is, line)) {
        if (len == 0) len = line.size();
        EXPECT_EQ(line.size(), len);
    }
}

TEST(ReportTest, FmtFormats) {
    EXPECT_EQ(fmt(1.23456), "1.235");
    EXPECT_EQ(fmt(2.0, 1), "2.0");
}

}  // namespace
}  // namespace fl::harness
