// Endorsement logic: simulate the chaincode, compute the priority vote,
// sign (proposal, rwset, priority).  Pure with respect to the simulator —
// the Peer wraps this in CPU-cost accounting and network replies.
#pragma once

#include <memory>

#include "chaincode/registry.h"
#include "crypto/signature.h"
#include "ledger/transaction.h"
#include "ledger/world_state.h"
#include "peer/priority_calculator.h"

namespace fl::peer {

/// Result of simulating one proposal at one endorser.
struct EndorsementResult {
    bool ok = false;
    std::string error;                 ///< chaincode failure message if !ok
    ledger::ReadWriteSet rwset;
    ledger::Endorsement endorsement;
};

/// Executes `proposal` against `state` via `registry`, votes a priority with
/// `calculator` and signs as `identity`.
[[nodiscard]] EndorsementResult endorse(
    const ledger::Proposal& proposal, const ledger::WorldState& state,
    const chaincode::Registry& registry, PriorityCalculator& calculator,
    const CalculatorContext& ctx, const crypto::KeyStore& keys,
    const crypto::Identity& identity);

/// Client-side check of one endorsement against the envelope's rwset.
[[nodiscard]] bool verify_endorsement(const ledger::Proposal& proposal,
                                      const ledger::ReadWriteSet& rwset,
                                      const ledger::Endorsement& endorsement,
                                      const crypto::KeyStore& keys);

}  // namespace fl::peer
