// Peer node: endorser + committer on the simulated network.
//
// Endorsement path: proposals arrive (network), queue on the peer's CPU
// station (execute + sign cost), run the chaincode against this peer's
// committed state, vote a priority (Priority Calculator) and reply.
//
// Commit path: blocks arrive from the ordering service, are validated one
// block at a time (validation is a serial pipeline whose per-block duration
// models the peer's internal signature-check parallelism), applied to the
// world state, appended to the block store, and committed transactions are
// notified to their submitting clients.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "chaincode/registry.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "ledger/block_store.h"
#include "ledger/world_state.h"
#include "peer/endorser.h"
#include "peer/priority_calculator.h"
#include "peer/validator.h"
#include "policy/consolidation_policy.h"
#include "sim/cpu.h"
#include "sim/network.h"

namespace fl::obs {
class TraceSink;
}
namespace fl::obs::audit {
class AuditAccountant;
}

namespace fl::peer {

struct PeerParams {
    unsigned cpu_parallelism = 8;

    /// Mean chaincode execute+simulate cost per proposal (exponential).
    Duration endorse_execute_cost = Duration::micros(1500);
    /// Signing the endorsement response.
    Duration endorse_sign_cost = Duration::micros(250);

    /// Per-block validation pipeline costs.  Endorsement-signature checking
    /// dominates and scales with the endorsement count (= peer count here),
    /// which is what makes absolute latency grow with network size in the
    /// paper's Figure 4.
    Duration validate_per_tx_cost = Duration::micros(120);
    Duration verify_per_endorsement_cost = Duration::micros(500);
    Duration commit_per_tx_cost = Duration::micros(60);
    Duration block_overhead_cost = Duration::millis(2);
    /// Effective parallelism of signature verification inside the validator
    /// (Fabric v1.0's VSCC path had very limited concurrency).
    unsigned validation_parallelism = 4;

    /// Extra per-transaction validation cost when priorities are enabled
    /// (consolidation re-check) — part of the scheme's overhead.
    Duration priority_check_per_tx_cost = Duration::micros(15);

    /// Execution strategy for validate_block.  This changes HOST wall-clock
    /// only: the simulated validation duration above is a model and is not
    /// touched, so switching modes (or pool sizes) leaves every simulated
    /// timestamp, metric and trace byte unchanged except for the extra
    /// conflict-graph/wave trace events the parallel path emits.
    ValidationMode validation_mode = ValidationMode::kSerial;
    /// Borrowed pool for kParallel (null ⇒ serial fallback).  The sweep
    /// harness wires its own pool in; safe because parallel_for_each
    /// supports nested fork-join (common/thread_pool.h).
    ThreadPool* validation_pool = nullptr;
    /// Blocks below this size validate serially even in kParallel.
    std::size_t validation_parallel_min_txs = 16;

    /// Stripe width of this peer's world state (ledger/world_state.h).
    /// Purely an implementation knob: every observable result is identical
    /// at any shard count (DESIGN.md §13); it only moves the lock
    /// granularity / merge-cost trade-off that bench/scale_state sweeps.
    std::size_t state_shards = ledger::WorldState::kDefaultShards;
};

/// Per-commit notification delivered back to the submitting client.
struct CommitNotice {
    TxId tx_id;
    TxValidationCode code = TxValidationCode::kValid;
    PriorityLevel priority = kUnassignedPriority;
    BlockNumber block = 0;
    /// When the ordering service cut the containing block (latency
    /// breakdown: ordering phase ends here).
    TimePoint block_cut_at;
    TimePoint committed_at;
};

class Peer {
public:
    Peer(sim::Simulator& sim, sim::Network& net, const crypto::KeyStore& keys,
         const chaincode::Registry& registry, const policy::ChannelConfig& channel,
         PeerParams params, PeerId id, NodeId node, crypto::Identity identity,
         std::unique_ptr<PriorityCalculator> calculator, Rng rng);

    Peer(const Peer&) = delete;
    Peer& operator=(const Peer&) = delete;

    [[nodiscard]] PeerId id() const { return id_; }
    [[nodiscard]] NodeId node() const { return node_; }
    [[nodiscard]] OrgId org() const { return identity_.org; }
    [[nodiscard]] const crypto::Identity& identity() const { return identity_; }

    /// Endorsement entry point; `reply` fires at this peer when the
    /// endorsement completes (the caller routes it back over the network).
    void handle_proposal(const ledger::Proposal& proposal,
                         std::function<void(EndorsementResult)> reply);

    /// Ordering-service delivery entry point.
    void deliver_block(std::shared_ptr<const ledger::Block> block);

    /// Registers a client for commit notifications of its transactions.
    void register_client(ClientId client, NodeId client_node,
                         std::function<void(CommitNotice)> on_commit);

    [[nodiscard]] const ledger::WorldState& state() const { return state_; }
    [[nodiscard]] const ledger::BlockStore& chain() const { return chain_; }

    /// Test/bootstrap helper: injects a committed key-value pair directly
    /// (version {0,0}), bypassing the pipeline.  Must be applied identically
    /// on every peer before traffic starts.
    void seed_state(const std::string& key, const std::string& value);

    /// Attaches a trace sink (null detaches).  Emit sites branch on null, so
    /// untraced peers pay one predicted-not-taken branch per event site.
    void set_trace(obs::TraceSink* sink) { trace_ = sink; }

    /// Attaches the fairness-audit accountant (null detaches); charges
    /// endorse/validation CPU and state I/O, and reports commit order.
    void set_audit(obs::audit::AuditAccountant* audit) { audit_ = audit; }

    // -- fault injection ----------------------------------------------------
    /// Takes the endorsement service down (true) or up (false).  While down,
    /// proposals are silently dropped — the client's endorsement timeout is
    /// the only signal, exactly like a crashed endorser process.  The commit
    /// path is unaffected: Fabric peers run endorsement and validation as
    /// separate services, and the chaos model faults them independently.
    void set_endorser_down(bool down) { endorser_down_ = down; }
    [[nodiscard]] bool endorser_down() const { return endorser_down_; }

    /// Scales the chaincode-execution cost (1.0 = configured speed).  Models
    /// an overloaded or degraded endorser that still answers, just late.
    void set_endorse_slowdown(double factor) { endorse_slowdown_ = factor; }
    [[nodiscard]] double endorse_slowdown() const { return endorse_slowdown_; }

    /// Proposals dropped while the endorsement service was down.
    [[nodiscard]] std::uint64_t proposals_dropped() const { return proposals_dropped_; }

    // -- statistics ---------------------------------------------------------
    [[nodiscard]] std::uint64_t proposals_endorsed() const { return endorsed_; }
    /// Cumulative simulated CPU time the endorsement station spent busy —
    /// the per-org "shared endorser CPU" meter the multi-channel engine
    /// aggregates across channels at window boundaries (core/multi_channel.h).
    [[nodiscard]] Duration endorse_cpu_busy() const {
        return endorse_cpu_.busy_time();
    }
    [[nodiscard]] std::uint64_t blocks_committed() const { return blocks_committed_; }
    [[nodiscard]] std::uint64_t txs_valid() const { return txs_valid_; }
    [[nodiscard]] std::uint64_t txs_invalid() const { return txs_invalid_; }
    [[nodiscard]] const std::unordered_map<TxValidationCode, std::uint64_t>&
    invalid_by_code() const { return invalid_by_code_; }
    /// Intra-block conflicts where priority order picked the winner.
    [[nodiscard]] std::uint64_t mvcc_priority_wins() const {
        return mvcc_priority_wins_;
    }
    /// Intra-block conflicts resolved by plain arrival order.
    [[nodiscard]] std::uint64_t mvcc_fifo_wins() const { return mvcc_fifo_wins_; }

    // -- parallel-validation statistics (0 unless the wave path ran) --------
    /// Blocks validated via the conflict-graph wave path.
    [[nodiscard]] std::uint64_t blocks_wave_validated() const {
        return blocks_wave_validated_;
    }
    /// Conflict-resolution waves across all wave-validated blocks.
    [[nodiscard]] std::uint64_t validation_waves() const { return validation_waves_; }
    /// Conflict-graph dependency edges across all wave-validated blocks.
    [[nodiscard]] std::uint64_t conflict_edges() const { return conflict_edges_; }
    /// Transactions whose order-independent checks ran on the pool.
    [[nodiscard]] std::uint64_t txs_parallel_checked() const {
        return txs_parallel_checked_;
    }
    /// Largest conflict component seen in any wave-validated block.
    [[nodiscard]] std::uint64_t largest_conflict_component() const {
        return largest_conflict_component_;
    }

private:
    struct ClientRoute {
        NodeId node;
        std::function<void(CommitNotice)> on_commit;
    };

    void pump_validation();
    [[nodiscard]] Duration block_validation_cost(const ledger::Block& block) const;
    void commit_block(const ledger::Block& block);
    [[nodiscard]] double observed_load_tps();

    sim::Simulator& sim_;
    sim::Network& net_;
    const crypto::KeyStore& keys_;
    const chaincode::Registry& registry_;
    const policy::ChannelConfig& channel_;
    PeerParams params_;
    PeerId id_;
    NodeId node_;
    crypto::Identity identity_;
    std::unique_ptr<PriorityCalculator> calculator_;
    std::unique_ptr<policy::ConsolidationPolicy> consolidation_;
    Rng rng_;

    sim::CpuStation endorse_cpu_;
    ledger::WorldState state_;
    ledger::BlockStore chain_;
    std::unordered_set<std::uint64_t> seen_tx_ids_;

    std::deque<std::shared_ptr<const ledger::Block>> inbound_blocks_;
    bool validating_ = false;

    std::unordered_map<ClientId, ClientRoute> clients_;

    // load tracking for dynamic calculators
    TimePoint load_window_start_;
    std::uint64_t load_window_count_ = 0;
    double last_window_tps_ = 0.0;

    bool endorser_down_ = false;
    double endorse_slowdown_ = 1.0;
    std::uint64_t proposals_dropped_ = 0;

    std::uint64_t endorsed_ = 0;
    std::uint64_t blocks_committed_ = 0;
    std::uint64_t txs_valid_ = 0;
    std::uint64_t txs_invalid_ = 0;
    std::uint64_t mvcc_priority_wins_ = 0;
    std::uint64_t mvcc_fifo_wins_ = 0;
    std::uint64_t blocks_wave_validated_ = 0;
    std::uint64_t validation_waves_ = 0;
    std::uint64_t conflict_edges_ = 0;
    std::uint64_t txs_parallel_checked_ = 0;
    std::uint64_t largest_conflict_component_ = 0;
    std::unordered_map<TxValidationCode, std::uint64_t> invalid_by_code_;

    obs::TraceSink* trace_ = nullptr;
    obs::audit::AuditAccountant* audit_ = nullptr;
};

}  // namespace fl::peer
