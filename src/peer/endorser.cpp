#include "peer/endorser.h"

#include "chaincode/chaincode.h"
#include "common/log.h"
#include "crypto/sha256.h"

namespace fl::peer {

EndorsementResult endorse(const ledger::Proposal& proposal,
                          const ledger::WorldState& state,
                          const chaincode::Registry& registry,
                          PriorityCalculator& calculator,
                          const CalculatorContext& ctx, const crypto::KeyStore& keys,
                          const crypto::Identity& identity) {
    EndorsementResult out;
    if (!registry.has(proposal.chaincode)) {
        out.error = "unknown chaincode " + proposal.chaincode;
        FL_DEBUG("endorser " << identity.name << ": tx " << proposal.tx_id.value()
                             << " rejected: unknown chaincode "
                             << proposal.chaincode);
        return out;
    }

    chaincode::TxContext tx_ctx(state);
    const chaincode::Response resp = registry.get(proposal.chaincode)
                                         .invoke(tx_ctx, proposal.function, proposal.args);
    if (!resp.ok) {
        out.error = resp.message;
        FL_DEBUG("endorser " << identity.name << ": tx " << proposal.tx_id.value()
                             << " chaincode " << proposal.chaincode
                             << " failed: " << resp.message);
        return out;
    }
    out.rwset = std::move(tx_ctx).take_rwset();

    ledger::Endorsement e;
    e.endorser_identity = identity.name;
    e.org = identity.org;
    e.priority = calculator.calculate(proposal, ctx);

    const Bytes payload =
        ledger::Envelope::endorsement_payload(proposal, out.rwset, e.priority);
    e.response_hash = crypto::sha256(BytesView(payload.data(), payload.size()));
    e.signature = keys.sign(identity.name, BytesView(payload.data(), payload.size()));

    out.endorsement = std::move(e);
    out.ok = true;
    FL_TRACE("endorser " << identity.name << ": tx " << proposal.tx_id.value()
                         << " endorsed, priority vote "
                         << out.endorsement.priority);
    return out;
}

bool verify_endorsement(const ledger::Proposal& proposal,
                        const ledger::ReadWriteSet& rwset,
                        const ledger::Endorsement& endorsement,
                        const crypto::KeyStore& keys) {
    const Bytes payload =
        ledger::Envelope::endorsement_payload(proposal, rwset, endorsement.priority);
    if (endorsement.response_hash !=
        crypto::sha256(BytesView(payload.data(), payload.size()))) {
        return false;
    }
    return keys.verify(endorsement.signature, BytesView(payload.data(), payload.size()));
}

}  // namespace fl::peer
