#include "peer/conflict_graph.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>

namespace fl::peer {

namespace {

/// Disjoint-set forest over positions (path halving, union by size).
class UnionFind {
public:
    explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
        for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::uint32_t>(i);
    }

    std::uint32_t find(std::uint32_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(std::uint32_t a, std::uint32_t b) {
        a = find(a);
        b = find(b);
        if (a == b) return;
        if (size_[a] < size_[b]) std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
    }

    [[nodiscard]] std::size_t size_of(std::uint32_t root) const { return size_[root]; }

private:
    std::vector<std::uint32_t> parent_;
    std::vector<std::size_t> size_;
};

}  // namespace

WaveSchedule build_wave_schedule(
    const std::vector<const ledger::ReadWriteSet*>& rwsets) {
    const std::size_t n = rwsets.size();
    WaveSchedule out;
    out.wave_of.assign(n, 0);
    out.component_of.assign(n, 0);
    if (n == 0) return out;

    // Writers of each key, positions ascending (a position appears once even
    // if it writes the key twice).  Ordered map so range reads can scan
    // [start, end) without touching unrelated keys.
    std::map<std::string, std::vector<std::uint32_t>, std::less<>> writers;
    for (std::size_t i = 0; i < n; ++i) {
        if (rwsets[i] == nullptr) continue;
        for (const ledger::KvWrite& w : rwsets[i]->writes) {
            std::vector<std::uint32_t>& v = writers[w.key];
            if (v.empty() || v.back() != i) v.push_back(static_cast<std::uint32_t>(i));
        }
    }

    // Last writer of a key strictly before position i, if any.  Linking to
    // the immediate predecessor suffices: all writers of one key chain
    // through each other, so every earlier writer lands in an earlier wave
    // transitively (header comment).
    const auto pred_writer = [](const std::vector<std::uint32_t>& v,
                                std::uint32_t i) -> std::optional<std::uint32_t> {
        const auto it = std::lower_bound(v.begin(), v.end(), i);
        if (it == v.begin()) return std::nullopt;
        return *(it - 1);
    };

    UnionFind uf(n);
    std::vector<std::uint32_t> preds;  // reused per transaction
    for (std::size_t i = 0; i < n; ++i) {
        const ledger::ReadWriteSet* rw = rwsets[i];
        if (rw == nullptr) continue;  // non-candidate: wave 0, own component
        const auto pos = static_cast<std::uint32_t>(i);
        preds.clear();
        const auto consider = [&](const std::string& key) {
            if (const auto it = writers.find(key); it != writers.end()) {
                if (const auto p = pred_writer(it->second, pos)) {
                    preds.push_back(*p);
                }
            }
        };
        for (const ledger::KvRead& r : rw->reads) consider(r.key);
        for (const ledger::KvWrite& w : rw->writes) consider(w.key);
        for (const ledger::RangeRead& rr : rw->range_reads) {
            for (auto it = writers.lower_bound(rr.start_key);
                 it != writers.end() && it->first < rr.end_key; ++it) {
                if (const auto p = pred_writer(it->second, pos)) {
                    preds.push_back(*p);
                }
            }
        }
        std::sort(preds.begin(), preds.end());
        preds.erase(std::unique(preds.begin(), preds.end()), preds.end());

        std::uint32_t wave = 0;
        for (const std::uint32_t j : preds) {
            wave = std::max(wave, out.wave_of[j] + 1);
            uf.unite(pos, j);
        }
        out.wave_of[i] = wave;
        out.edge_count += preds.size();
    }

    // Dense component ids in order of first appearance.
    std::map<std::uint32_t, std::uint32_t> root_to_id;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t root = uf.find(static_cast<std::uint32_t>(i));
        const auto [it, inserted] =
            root_to_id.emplace(root, static_cast<std::uint32_t>(root_to_id.size()));
        out.component_of[i] = it->second;
        if (inserted) {
            out.max_component_size = std::max(out.max_component_size, uf.size_of(root));
        }
    }
    out.component_count = static_cast<std::uint32_t>(root_to_id.size());

    // Per-wave position lists (candidates only; non-candidates are decided
    // before wave processing starts and never enter the conflict scan).
    for (std::size_t i = 0; i < n; ++i) {
        if (rwsets[i] == nullptr) continue;
        out.wave_count = std::max(out.wave_count, out.wave_of[i] + 1);
    }
    out.waves.resize(out.wave_count);
    for (std::size_t i = 0; i < n; ++i) {
        if (rwsets[i] == nullptr) continue;
        out.waves[out.wave_of[i]].push_back(static_cast<std::uint32_t>(i));
    }
    return out;
}

}  // namespace fl::peer
