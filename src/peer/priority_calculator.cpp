#include "peer/priority_calculator.h"

#include <algorithm>
#include <stdexcept>

namespace fl::peer {

namespace {
PriorityLevel clamp_level(PriorityLevel level, std::uint32_t levels) {
    return std::min<PriorityLevel>(level, levels > 0 ? levels - 1 : 0);
}
}  // namespace

PriorityLevel StaticChaincodeCalculator::calculate(const ledger::Proposal& proposal,
                                                   const CalculatorContext& ctx) {
    if (ctx.registry == nullptr) {
        throw std::logic_error("StaticChaincodeCalculator: no registry in context");
    }
    return clamp_level(ctx.registry->static_priority(proposal.chaincode),
                       ctx.priority_levels);
}

ClientClassCalculator::ClientClassCalculator(
    std::unordered_map<ClientId, PriorityLevel> classes, PriorityLevel default_level)
    : classes_(std::move(classes)), default_level_(default_level) {}

PriorityLevel ClientClassCalculator::calculate(const ledger::Proposal& proposal,
                                               const CalculatorContext& ctx) {
    const auto it = classes_.find(proposal.client);
    const PriorityLevel level = it == classes_.end() ? default_level_ : it->second;
    return clamp_level(level, ctx.priority_levels);
}

LoadAwareCalculator::LoadAwareCalculator(std::unique_ptr<PriorityCalculator> base,
                                         double load_threshold_tps)
    : base_(std::move(base)), load_threshold_tps_(load_threshold_tps) {
    if (!base_) throw std::invalid_argument("LoadAwareCalculator: null base");
}

PriorityLevel LoadAwareCalculator::calculate(const ledger::Proposal& proposal,
                                             const CalculatorContext& ctx) {
    PriorityLevel level = base_->calculate(proposal, ctx);
    if (ctx.observed_load_tps > load_threshold_tps_) {
        ++level;  // demote under load
    }
    return clamp_level(level, ctx.priority_levels);
}

NoisyCalculator::NoisyCalculator(std::unique_ptr<PriorityCalculator> base,
                                 double flip_probability, Rng rng)
    : base_(std::move(base)), flip_probability_(flip_probability), rng_(rng) {
    if (!base_) throw std::invalid_argument("NoisyCalculator: null base");
}

PriorityLevel NoisyCalculator::calculate(const ledger::Proposal& proposal,
                                         const CalculatorContext& ctx) {
    PriorityLevel level = base_->calculate(proposal, ctx);
    if (rng_.chance(flip_probability_)) {
        if (level == 0) {
            ++level;
        } else if (level + 1 >= ctx.priority_levels) {
            --level;
        } else {
            level = rng_.chance(0.5) ? level + 1 : level - 1;
        }
    }
    return clamp_level(level, ctx.priority_levels);
}

}  // namespace fl::peer
