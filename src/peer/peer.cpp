#include "peer/peer.h"

#include <algorithm>

#include "common/log.h"
#include "obs/audit/audit.h"
#include "obs/trace.h"

namespace fl::peer {

Peer::Peer(sim::Simulator& sim, sim::Network& net, const crypto::KeyStore& keys,
           const chaincode::Registry& registry, const policy::ChannelConfig& channel,
           PeerParams params, PeerId id, NodeId node, crypto::Identity identity,
           std::unique_ptr<PriorityCalculator> calculator, Rng rng)
    : sim_(sim),
      net_(net),
      keys_(keys),
      registry_(registry),
      channel_(channel),
      params_(params),
      id_(id),
      node_(node),
      identity_(std::move(identity)),
      calculator_(std::move(calculator)),
      rng_(rng),
      endorse_cpu_(sim, params.cpu_parallelism),
      state_(params.state_shards) {
    if (!calculator_) {
        throw std::invalid_argument("Peer: null priority calculator");
    }
    if (channel_.priority_enabled) {
        consolidation_ = policy::make_consolidation_policy(channel_.consolidation_spec);
    }
}

double Peer::observed_load_tps() {
    // One-second tumbling window over proposal arrivals.
    const Duration window = Duration::seconds(1);
    if (sim_.now() - load_window_start_ >= window) {
        const double elapsed = (sim_.now() - load_window_start_).as_seconds();
        last_window_tps_ = static_cast<double>(load_window_count_) / std::max(elapsed, 1e-9);
        load_window_start_ = sim_.now();
        load_window_count_ = 0;
    }
    ++load_window_count_;
    return last_window_tps_;
}

void Peer::handle_proposal(const ledger::Proposal& proposal,
                           std::function<void(EndorsementResult)> reply) {
    if (endorser_down_) {
        // Dropped before any load accounting or rng draws, so taking an
        // endorser down does not shift this peer's random stream.
        ++proposals_dropped_;
        return;
    }
    const double load = observed_load_tps();
    Duration cost = rng_.exponential_duration(params_.endorse_execute_cost) +
                    params_.endorse_sign_cost;
    if (endorse_slowdown_ != 1.0) {
        cost = Duration::from_seconds(cost.as_seconds() * endorse_slowdown_);
    }
    if (audit_) {
        audit_->charge(obs::audit::ResourceKind::kEndorseCpu, proposal.client.value(),
                       proposal.chaincode, cost.as_seconds(), sim_.now());
    }
    endorse_cpu_.submit(cost, [this, proposal, load, reply = std::move(reply)] {
        CalculatorContext ctx;
        ctx.registry = &registry_;
        ctx.observed_load_tps = load;
        ctx.priority_levels = channel_.effective_levels();
        EndorsementResult result =
            endorse(proposal, state_, registry_, *calculator_, ctx, keys_, identity_);
        ++endorsed_;
        if (trace_) {
            obs::TraceEvent ev;
            ev.at = sim_.now();
            ev.type = obs::EventType::kEndorseReply;
            ev.actor_kind = obs::ActorKind::kPeer;
            ev.actor = id_.value();
            ev.tx = proposal.tx_id.value();
            ev.priority = result.ok ? result.endorsement.priority
                                    : kUnassignedPriority;
            ev.value = result.ok ? 1 : 0;
            trace_->emit(ev);
        }
        reply(std::move(result));
    });
}

void Peer::deliver_block(std::shared_ptr<const ledger::Block> block) {
    inbound_blocks_.push_back(std::move(block));
    pump_validation();
}

Duration Peer::block_validation_cost(const ledger::Block& block) const {
    const auto n = static_cast<std::int64_t>(block.size());
    std::int64_t endorsement_count = 0;
    for (const ledger::Envelope& tx : block.transactions) {
        endorsement_count += static_cast<std::int64_t>(tx.endorsements.size());
    }
    Duration cost = params_.block_overhead_cost +
                    (params_.validate_per_tx_cost + params_.commit_per_tx_cost) * n +
                    params_.verify_per_endorsement_cost * endorsement_count /
                        params_.validation_parallelism;
    if (channel_.priority_enabled) {
        cost += params_.priority_check_per_tx_cost * n;
    }
    return cost;
}

void Peer::pump_validation() {
    if (validating_ || inbound_blocks_.empty()) return;
    validating_ = true;
    std::shared_ptr<const ledger::Block> block = inbound_blocks_.front();
    inbound_blocks_.pop_front();
    sim_.schedule_after(block_validation_cost(*block), [this, block] {
        commit_block(*block);
        validating_ = false;
        pump_validation();
    });
}

void Peer::commit_block(const ledger::Block& block) {
    ValidatorConfig vcfg;
    vcfg.prioritized = channel_.priority_enabled;
    vcfg.verify_consolidation = channel_.priority_enabled;
    vcfg.mode = params_.validation_mode;
    vcfg.pool = params_.validation_pool;
    vcfg.parallel_min_txs = params_.validation_parallel_min_txs;

    const ValidationOutcome outcome = validate_block(
        block, state_, channel_, consolidation_.get(), keys_, seen_tx_ids_, vcfg);
    apply_block(block, outcome, state_);

    if (outcome.parallel_waves > 0) {
        ++blocks_wave_validated_;
        validation_waves_ += outcome.parallel_waves;
        conflict_edges_ += outcome.conflict_edges;
        txs_parallel_checked_ += outcome.parallel_checked;
        largest_conflict_component_ =
            std::max(largest_conflict_component_, outcome.largest_component);
        if (trace_) {
            obs::TraceEvent ev;
            ev.at = sim_.now();
            ev.type = obs::EventType::kConflictGraph;
            ev.actor_kind = obs::ActorKind::kPeer;
            ev.actor = id_.value();
            ev.block = block.header.number;
            ev.value = outcome.conflict_components;
            ev.value2 = outcome.conflict_edges;
            trace_->emit(ev);
            for (std::size_t w = 0; w < outcome.wave_sizes.size(); ++w) {
                ev.type = obs::EventType::kValidationWave;
                ev.value = w;
                ev.value2 = outcome.wave_sizes[w];
                trace_->emit(ev);
            }
        }
    }

    ledger::Block stored = block;  // own copy carrying the validation codes
    stored.validation_codes = outcome.codes;
    chain_.append(std::move(stored));

    ++blocks_committed_;
    txs_valid_ += outcome.valid_count;
    txs_invalid_ += block.size() - outcome.valid_count;
    mvcc_priority_wins_ += outcome.conflicts_priority_resolved;
    mvcc_fifo_wins_ += outcome.conflicts_fifo_resolved;
    for (std::size_t i = 0; i < block.transactions.size(); ++i) {
        if (!is_valid(outcome.codes[i])) {
            ++invalid_by_code_[outcome.codes[i]];
        }
    }

    // Notify submitting clients registered at this peer.
    for (std::size_t i = 0; i < block.transactions.size(); ++i) {
        const ledger::Envelope& tx = block.transactions[i];
        if (audit_) {
            // Attribute this tx's slice of block_validation_cost (the
            // per-block overhead is unattributable and stays out); state
            // I/O counts applied writes, so only valid txs pay it.
            Duration vcost =
                params_.validate_per_tx_cost + params_.commit_per_tx_cost +
                params_.verify_per_endorsement_cost *
                    static_cast<std::int64_t>(tx.endorsements.size()) /
                    params_.validation_parallelism;
            if (channel_.priority_enabled) {
                vcost += params_.priority_check_per_tx_cost;
            }
            audit_->charge(obs::audit::ResourceKind::kValidationCpu,
                           tx.proposal.client.value(), tx.proposal.chaincode,
                           vcost.as_seconds(), sim_.now());
            if (is_valid(outcome.codes[i])) {
                audit_->charge(obs::audit::ResourceKind::kStateIo,
                               tx.proposal.client.value(), tx.proposal.chaincode,
                               static_cast<double>(tx.rwset.writes.size()),
                               sim_.now());
            }
            audit_->on_commit_order(block.header.number, tx.tx_id().value(),
                                    tx.consolidated_priority, sim_.now());
        }
        if (trace_) {
            obs::TraceEvent ev;
            ev.at = sim_.now();
            ev.type = is_valid(outcome.codes[i]) ? obs::EventType::kCommit
                                                 : obs::EventType::kAbort;
            ev.actor_kind = obs::ActorKind::kPeer;
            ev.actor = id_.value();
            ev.tx = tx.tx_id().value();
            ev.priority = tx.consolidated_priority;
            ev.block = block.header.number;
            ev.code = outcome.codes[i];
            trace_->emit(ev);
        }
        const auto it = clients_.find(tx.proposal.client);
        if (it == clients_.end()) continue;
        CommitNotice notice;
        notice.tx_id = tx.tx_id();
        notice.code = outcome.codes[i];
        notice.priority = tx.consolidated_priority;
        notice.block = block.header.number;
        notice.block_cut_at = block.cut_at;
        notice.committed_at = sim_.now();
        net_.send(node_, it->second.node, 128,
                  [cb = it->second.on_commit, notice] { cb(notice); });
    }

    FL_DEBUG("peer " << id_.value() << " committed block " << block.header.number
                     << " (" << outcome.valid_count << "/" << block.size()
                     << " valid)");
}

void Peer::register_client(ClientId client, NodeId client_node,
                           std::function<void(CommitNotice)> on_commit) {
    clients_[client] = ClientRoute{client_node, std::move(on_commit)};
}

void Peer::seed_state(const std::string& key, const std::string& value) {
    state_.apply(ledger::KvWrite{key, value, false}, ledger::Version{0, 0});
}

}  // namespace fl::peer
