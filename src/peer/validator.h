// Block validation — including the paper's Prioritized Validator (§3.4).
//
// For every transaction in a block the committer checks, in order:
//   1. duplicate transaction id (replay);
//   2. endorsement signatures + endorsement policy;
//   3. (priority mode) that the consolidated priority the OSN stamped is
//      what the consolidation policy yields from the endorsers' signed
//      votes — a byzantine/buggy OSN cannot silently promote a transaction;
//   4. MVCC read-set validity against committed state;
//   5. intra-block conflicts against already-accepted transactions.
//
// Conflict resolution order is the one novel bit: the standard Fabric
// validator accepts the transaction that appears *earlier in the block*;
// the prioritized validator processes transactions in consolidated-priority
// order (stable within a level, preserving the generator's per-level FIFO),
// so on a rw/ww conflict the higher-priority transaction survives.
// Validation codes are reported in block order either way, and writes are
// applied with block-order version stamps, so all committers converge.
#pragma once

#include <unordered_set>
#include <vector>

#include "crypto/signature.h"
#include "ledger/block.h"
#include "ledger/world_state.h"
#include "policy/channel_config.h"
#include "policy/consolidation_policy.h"

namespace fl::peer {

struct ValidationOutcome {
    /// One code per transaction, in block order.
    std::vector<TxValidationCode> codes;
    std::size_t valid_count = 0;
    /// Intra-block conflicts where the surviving transaction had a strictly
    /// higher (numerically lower) priority than the loser — i.e. where the
    /// prioritized processing order changed who wins vs vanilla Fabric.
    std::uint64_t conflicts_priority_resolved = 0;
    /// Intra-block conflicts resolved purely by arrival order (equal
    /// priorities, or the validator is running in vanilla block-order mode).
    std::uint64_t conflicts_fifo_resolved = 0;
};

struct ValidatorConfig {
    /// Resolve intra-block conflicts by priority (the paper's validator)
    /// instead of block order (vanilla Fabric).
    bool prioritized = false;
    /// Re-check the OSN's consolidated priority against endorser votes.
    bool verify_consolidation = false;
};

/// Validates `block` against `state`.  `seen_tx_ids` is the committer's
/// replay filter; validated ids are inserted into it.  Does not modify
/// `state` — call apply_block() afterwards.
[[nodiscard]] ValidationOutcome validate_block(
    const ledger::Block& block, const ledger::WorldState& state,
    const policy::ChannelConfig& channel, const policy::ConsolidationPolicy* consolidation,
    const crypto::KeyStore& keys, std::unordered_set<std::uint64_t>& seen_tx_ids,
    const ValidatorConfig& cfg);

/// Applies the writes of all valid transactions, stamping versions with the
/// block number and the *block-order* transaction index.
void apply_block(const ledger::Block& block, const ValidationOutcome& outcome,
                 ledger::WorldState& state);

}  // namespace fl::peer
