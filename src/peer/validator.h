// Block validation — including the paper's Prioritized Validator (§3.4).
//
// For every transaction in a block the committer checks, in order:
//   1. duplicate transaction id (replay);
//   2. endorsement signatures + endorsement policy;
//   3. (priority mode) that the consolidated priority the OSN stamped is
//      what the consolidation policy yields from the endorsers' signed
//      votes — a byzantine/buggy OSN cannot silently promote a transaction;
//   4. MVCC read-set validity against committed state;
//   5. intra-block conflicts against already-accepted transactions.
//
// Conflict resolution order is the one novel bit: the standard Fabric
// validator accepts the transaction that appears *earlier in the block*;
// the prioritized validator processes transactions in consolidated-priority
// order (stable within a level, preserving the generator's per-level FIFO),
// so on a rw/ww conflict the higher-priority transaction survives.
// Validation codes are reported in block order either way, and writes are
// applied with block-order version stamps, so all committers converge.
//
// Two execution strategies produce that result (ValidationMode):
//   * kSerial — the reference oracle: one pass over the processing order.
//   * kParallel — checks 1–4 for all transactions fan out over a borrowed
//     ThreadPool (signature verification dominates block validation cost,
//     per the Fabric bottleneck studies in PAPERS.md), then step 5 runs in
//     conflict-graph waves (peer/conflict_graph.h): transactions with no
//     write-set dependency on an undecided predecessor are resolved
//     concurrently, wave by wave.  The outcome — codes, counters, applied
//     state — is bit-identical to kSerial at any pool size; the equivalence
//     argument is spelled out in DESIGN.md §12 and enforced by the
//     differential tests and bench/ablation_validation.
#pragma once

#include <unordered_set>
#include <vector>

#include "crypto/signature.h"
#include "ledger/block.h"
#include "ledger/world_state.h"
#include "policy/channel_config.h"
#include "policy/consolidation_policy.h"

namespace fl {
class ThreadPool;
}

namespace fl::peer {

/// How validate_block executes (never what it computes).
enum class ValidationMode : std::uint8_t {
    kSerial = 0,   ///< single-threaded reference path
    kParallel = 1  ///< pool-parallel signature phase + conflict-graph waves
};

struct ValidationOutcome {
    /// One code per transaction, in block order.
    std::vector<TxValidationCode> codes;
    std::size_t valid_count = 0;
    /// Intra-block conflicts where the surviving transaction had a strictly
    /// higher (numerically lower) priority than the loser — i.e. where the
    /// prioritized processing order changed who wins vs vanilla Fabric.
    std::uint64_t conflicts_priority_resolved = 0;
    /// Intra-block conflicts resolved purely by arrival order (equal
    /// priorities, or the validator is running in vanilla block-order mode).
    std::uint64_t conflicts_fifo_resolved = 0;

    // -- parallel-path schedule statistics ----------------------------------
    // Filled only when the wave path ran (parallel_waves > 0); pure
    // functions of the block contents, so identical at any pool size.
    /// Conflict-resolution waves the block needed (1 = fully independent).
    std::uint32_t parallel_waves = 0;
    /// Connected components of the conflict graph over the candidate txs.
    std::uint32_t conflict_components = 0;
    /// Dependency edges in the conflict graph.
    std::uint64_t conflict_edges = 0;
    /// Largest conflict component (bounds achievable wave parallelism).
    std::uint64_t largest_component = 0;
    /// Transactions whose checks 1–4 ran on the pool.
    std::uint64_t parallel_checked = 0;
    /// Candidate transactions per wave, in wave order (for trace events).
    std::vector<std::uint32_t> wave_sizes;
};

struct ValidatorConfig {
    /// Resolve intra-block conflicts by priority (the paper's validator)
    /// instead of block order (vanilla Fabric).
    bool prioritized = false;
    /// Re-check the OSN's consolidated priority against endorser votes.
    bool verify_consolidation = false;
    /// Execution strategy; kParallel needs `pool` (falls back to the serial
    /// path when the pool is null or the block is below parallel_min_txs).
    ValidationMode mode = ValidationMode::kSerial;
    /// Borrowed worker pool for kParallel.  Safe to pass the sweep harness's
    /// pool even though validation runs inside a sweep-point task —
    /// parallel_for_each supports nested fork-join (common/thread_pool.h).
    ThreadPool* pool = nullptr;
    /// Blocks smaller than this run serially even in kParallel: fan-out
    /// overhead beats the win on tiny blocks, and the outcome is identical
    /// either way.
    std::size_t parallel_min_txs = 16;
};

/// Validates `block` against `state`.  `seen_tx_ids` is the committer's
/// replay filter; validated ids are inserted into it.  Does not modify
/// `state` — call apply_block() afterwards.
[[nodiscard]] ValidationOutcome validate_block(
    const ledger::Block& block, const ledger::WorldState& state,
    const policy::ChannelConfig& channel, const policy::ConsolidationPolicy* consolidation,
    const crypto::KeyStore& keys, std::unordered_set<std::uint64_t>& seen_tx_ids,
    const ValidatorConfig& cfg);

/// Applies the writes of all valid transactions, stamping versions with the
/// block number and the *block-order* transaction index.
void apply_block(const ledger::Block& block, const ValidationOutcome& outcome,
                 ledger::WorldState& state);

}  // namespace fl::peer
