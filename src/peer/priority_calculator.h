// Priority Calculators (paper §3.1).
//
// Each endorsing peer independently assigns a priority to every transaction
// it endorses; the value is signed into the endorsement so clients cannot
// forge it.  The assignment criteria are pluggable and fixed "apriori":
//
//   * StaticChaincodeCalculator — the paper's primary example: priority
//     assigned per chaincode at deployment time;
//   * ClientClassCalculator    — per-client classes, used by the resource-
//     fairness experiment (Figure 6) where each client maps to one queue;
//   * LoadAwareCalculator      — the paper's dynamic example: priority
//     degraded when this endorser observes high load from an application;
//   * NoisyCalculator          — decorator that perturbs another
//     calculator's vote with some probability, modelling endorser
//     disagreement (exercises the consolidation policies).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "chaincode/registry.h"
#include "common/rng.h"
#include "common/types.h"
#include "ledger/transaction.h"

namespace fl::peer {

/// Everything an endorser-side calculator may consult.
struct CalculatorContext {
    const chaincode::Registry* registry = nullptr;
    /// This endorser's recent proposal arrival rate (proposals/sec) —
    /// the "load perceived by different nodes" of §3.
    double observed_load_tps = 0.0;
    std::uint32_t priority_levels = 3;
};

class PriorityCalculator {
public:
    virtual ~PriorityCalculator() = default;

    /// Priority for `proposal` (0 = highest).  Must return < levels.
    [[nodiscard]] virtual PriorityLevel calculate(
        const ledger::Proposal& proposal, const CalculatorContext& ctx) = 0;
};

/// Deploy-time static priority of the invoked chaincode.
class StaticChaincodeCalculator final : public PriorityCalculator {
public:
    [[nodiscard]] PriorityLevel calculate(const ledger::Proposal& proposal,
                                          const CalculatorContext& ctx) override;
};

/// Fixed mapping client -> level; unmapped clients get `default_level`.
class ClientClassCalculator final : public PriorityCalculator {
public:
    explicit ClientClassCalculator(std::unordered_map<ClientId, PriorityLevel> classes,
                                   PriorityLevel default_level = 0);

    [[nodiscard]] PriorityLevel calculate(const ledger::Proposal& proposal,
                                          const CalculatorContext& ctx) override;

private:
    std::unordered_map<ClientId, PriorityLevel> classes_;
    PriorityLevel default_level_;
};

/// Starts from a base calculator and demotes by one level while the
/// endorser-observed load exceeds `load_threshold_tps`.
class LoadAwareCalculator final : public PriorityCalculator {
public:
    LoadAwareCalculator(std::unique_ptr<PriorityCalculator> base,
                        double load_threshold_tps);

    [[nodiscard]] PriorityLevel calculate(const ledger::Proposal& proposal,
                                          const CalculatorContext& ctx) override;

private:
    std::unique_ptr<PriorityCalculator> base_;
    double load_threshold_tps_;
};

/// With probability `flip_probability`, perturbs the base vote by ±1 level.
class NoisyCalculator final : public PriorityCalculator {
public:
    NoisyCalculator(std::unique_ptr<PriorityCalculator> base, double flip_probability,
                    Rng rng);

    [[nodiscard]] PriorityLevel calculate(const ledger::Proposal& proposal,
                                          const CalculatorContext& ctx) override;

private:
    std::unique_ptr<PriorityCalculator> base_;
    double flip_probability_;
    Rng rng_;
};

/// Factory used by network builders: one fresh calculator per endorser.
using CalculatorFactory = std::function<std::unique_ptr<PriorityCalculator>()>;

}  // namespace fl::peer
