#include "peer/validator.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>

#include "common/log.h"
#include "common/thread_pool.h"
#include "peer/conflict_graph.h"
#include "peer/endorser.h"

namespace fl::peer {

namespace {

/// Accumulated effects of transactions already accepted in this block.  Each
/// written key remembers which transaction won it, so a later conflict can
/// report (and count) who displaced whom.
///
/// Ordered map on purpose: the phantom scan below reports the first
/// overlapping key in LEXICOGRAPHIC order, which is a pure function of the
/// map's contents — unlike unordered iteration, it cannot depend on
/// insertion history, so the serial and wave-parallel paths attribute
/// conflicts to the same winner.
struct AcceptedWrites {
    struct Winner {
        PriorityLevel priority = kUnassignedPriority;
        std::uint64_t tx = 0;
        /// Position of the winning transaction in the processing order.
        /// The wave-parallel path decides transactions out of processing
        /// order, so its map can briefly hold writes of transactions that
        /// come LATER in processing order than the one being checked; the
        /// conflict scan filters those out to match the serial validator,
        /// where they simply would not have been inserted yet.
        std::uint32_t order_pos = 0;
    };
    std::map<std::string, Winner, std::less<>> keys;

    void add(const ledger::ReadWriteSet& rwset, PriorityLevel priority,
             std::uint64_t tx, std::uint32_t order_pos) {
        for (const ledger::KvWrite& w : rwset.writes) {
            keys.emplace(w.key, Winner{priority, tx, order_pos});
        }
    }
};

struct IntraBlockConflict {
    TxValidationCode code = TxValidationCode::kValid;
    AcceptedWrites::Winner winner;  ///< accepted tx that caused the failure
};

/// First failing intra-block conflict of `rwset` against accepted writes of
/// transactions earlier than `order_pos` in the processing order.
IntraBlockConflict intra_block_conflict(const ledger::ReadWriteSet& rwset,
                                        const AcceptedWrites& accepted,
                                        std::uint32_t order_pos) {
    const auto earlier = [order_pos](const AcceptedWrites::Winner& w) {
        return w.order_pos < order_pos;
    };
    for (const ledger::KvRead& r : rwset.reads) {
        if (const auto it = accepted.keys.find(r.key);
            it != accepted.keys.end() && earlier(it->second)) {
            return {TxValidationCode::kMvccReadConflict, it->second};
        }
    }
    for (const ledger::RangeRead& rr : rwset.range_reads) {
        for (auto it = accepted.keys.lower_bound(rr.start_key);
             it != accepted.keys.end() && it->first < rr.end_key; ++it) {
            if (earlier(it->second)) {
                return {TxValidationCode::kPhantomReadConflict, it->second};
            }
        }
    }
    for (const ledger::KvWrite& w : rwset.writes) {
        if (const auto it = accepted.keys.find(w.key);
            it != accepted.keys.end() && earlier(it->second)) {
            return {TxValidationCode::kWriteConflict, it->second};
        }
    }
    return {};
}

TxValidationCode check_endorsements(const ledger::Envelope& tx,
                                    const policy::ChannelConfig& channel,
                                    const policy::ConsolidationPolicy* consolidation,
                                    const crypto::KeyStore& keys,
                                    const ValidatorConfig& cfg) {
    std::set<OrgId> valid_orgs;
    std::vector<PriorityLevel> votes;
    votes.reserve(tx.endorsements.size());
    for (const ledger::Endorsement& e : tx.endorsements) {
        if (!verify_endorsement(tx.proposal, tx.rwset, e, keys)) {
            continue;  // forged / stale endorsement simply doesn't count
        }
        valid_orgs.insert(e.org);
        votes.push_back(e.priority);
    }
    if (!channel.endorsement_policy.satisfied_by(valid_orgs)) {
        return TxValidationCode::kEndorsementPolicyFailure;
    }
    if (cfg.verify_consolidation) {
        if (consolidation == nullptr) {
            return TxValidationCode::kBadPriorityConsolidation;
        }
        const auto expect =
            consolidation->consolidate(votes, channel.effective_levels());
        if (!expect || *expect != tx.consolidated_priority) {
            return TxValidationCode::kBadPriorityConsolidation;
        }
    }
    return TxValidationCode::kValid;
}

/// Processing order: block order, or stable priority order for the
/// prioritized validator.  Stability preserves per-level FIFO, so equal-
/// priority conflicts still resolve to the earlier transaction (§3.4).
std::vector<std::size_t> processing_order(const ledger::Block& block,
                                          const ValidatorConfig& cfg) {
    std::vector<std::size_t> order(block.transactions.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (cfg.prioritized) {
        std::stable_sort(order.begin(), order.end(),
                         [&block](std::size_t a, std::size_t b) {
                             return block.transactions[a].consolidated_priority <
                                    block.transactions[b].consolidated_priority;
                         });
    }
    return order;
}

/// Records one intra-block loss: code, counters, debug log.  Shared by both
/// paths so the accounting cannot drift between them.
void record_conflict(const ledger::Block& block, std::size_t idx,
                     const IntraBlockConflict& conflict, const ValidatorConfig& cfg,
                     ValidationOutcome& out) {
    const ledger::Envelope& tx = block.transactions[idx];
    out.codes[idx] = conflict.code;
    // Lower numeric level = higher priority.  A strict win means the
    // prioritized order decided the outcome; a tie (or vanilla mode)
    // is plain first-come-first-served.
    if (cfg.prioritized && conflict.winner.priority < tx.consolidated_priority) {
        ++out.conflicts_priority_resolved;
    } else {
        ++out.conflicts_fifo_resolved;
    }
    FL_DEBUG("validator: tx " << tx.tx_id().value() << " (level "
                              << tx.consolidated_priority << ") loses "
                              << to_string(conflict.code) << " to tx "
                              << conflict.winner.tx << " (level "
                              << conflict.winner.priority << ") in block "
                              << block.header.number);
}

/// The reference oracle: one pass over the processing order.
ValidationOutcome validate_serial(const ledger::Block& block,
                                  const ledger::WorldState& state,
                                  const policy::ChannelConfig& channel,
                                  const policy::ConsolidationPolicy* consolidation,
                                  const crypto::KeyStore& keys,
                                  std::unordered_set<std::uint64_t>& seen_tx_ids,
                                  const ValidatorConfig& cfg,
                                  const std::vector<std::size_t>& order) {
    ValidationOutcome out;
    out.codes.assign(block.transactions.size(), TxValidationCode::kValid);

    AcceptedWrites accepted;
    std::uint32_t rank = 0;
    for (const std::size_t idx : order) {
        const ledger::Envelope& tx = block.transactions[idx];
        const std::uint32_t my_rank = rank++;

        if (!seen_tx_ids.insert(tx.tx_id().value()).second) {
            out.codes[idx] = TxValidationCode::kDuplicateTxId;
            continue;
        }
        const TxValidationCode endorse_code =
            check_endorsements(tx, channel, consolidation, keys, cfg);
        if (!is_valid(endorse_code)) {
            out.codes[idx] = endorse_code;
            continue;
        }
        if (!state.validate_reads(tx.rwset)) {
            out.codes[idx] = TxValidationCode::kMvccReadConflict;
            FL_DEBUG("validator: tx " << tx.tx_id().value()
                                      << " stale read vs committed state (block "
                                      << block.header.number << ")");
            continue;
        }
        const IntraBlockConflict conflict =
            intra_block_conflict(tx.rwset, accepted, my_rank);
        if (!is_valid(conflict.code)) {
            record_conflict(block, idx, conflict, cfg, out);
            continue;
        }
        accepted.add(tx.rwset, tx.consolidated_priority, tx.tx_id().value(), my_rank);
        ++out.valid_count;
    }
    return out;
}

/// The parallel path.  Equivalence to validate_serial (DESIGN.md §12):
///   * the replay filter depends only on the processing order, so it runs
///     serially up front — same insertions, same kDuplicateTxId codes;
///   * endorsement/consolidation checks and the MVCC scan against COMMITTED
///     state are pure per-transaction functions of read-only inputs — they
///     fan out over the pool and land in per-transaction slots;
///   * intra-block resolution processes the conflict-graph waves in order:
///     every transaction a wave member could possibly collide with sits in
///     an earlier wave (conflict_graph.h), so checking against the map
///     frozen at the wave boundary sees exactly the accepted writes the
///     serial scan would have seen (the order_pos filter hides writes of
///     later-in-order transactions that were decided early).
ValidationOutcome validate_parallel(const ledger::Block& block,
                                    const ledger::WorldState& state,
                                    const policy::ChannelConfig& channel,
                                    const policy::ConsolidationPolicy* consolidation,
                                    const crypto::KeyStore& keys,
                                    std::unordered_set<std::uint64_t>& seen_tx_ids,
                                    const ValidatorConfig& cfg,
                                    const std::vector<std::size_t>& order) {
    const std::size_t n = block.transactions.size();
    ValidationOutcome out;
    out.codes.assign(n, TxValidationCode::kValid);

    // Phase 1 (serial, cheap): the replay filter.  Insertion order is the
    // processing order, exactly like the serial path — note the serial path
    // also inserts ids of transactions that later fail other checks.
    for (const std::size_t idx : order) {
        if (!seen_tx_ids.insert(block.transactions[idx].tx_id().value()).second) {
            out.codes[idx] = TxValidationCode::kDuplicateTxId;
        }
    }

    // Phase 2 (parallel): signature + digest + consolidation + committed-
    // state MVCC for every non-duplicate transaction.  Each body reads only
    // const state and writes its own slot.
    std::vector<std::size_t> checkable;
    checkable.reserve(n);
    for (const std::size_t idx : order) {
        if (is_valid(out.codes[idx])) checkable.push_back(idx);
    }
    std::vector<TxValidationCode> precheck(n, TxValidationCode::kValid);
    parallel_for_each(*cfg.pool, checkable.size(), [&](std::size_t k) {
        const ledger::Envelope& tx = block.transactions[checkable[k]];
        TxValidationCode code =
            check_endorsements(tx, channel, consolidation, keys, cfg);
        if (is_valid(code) && !state.validate_reads(tx.rwset)) {
            code = TxValidationCode::kMvccReadConflict;
        }
        precheck[checkable[k]] = code;
    });
    out.parallel_checked = checkable.size();
    for (const std::size_t idx : checkable) {
        if (!is_valid(precheck[idx])) {
            out.codes[idx] = precheck[idx];
            if (precheck[idx] == TxValidationCode::kMvccReadConflict) {
                FL_DEBUG("validator: tx " << block.transactions[idx].tx_id().value()
                                          << " stale read vs committed state (block "
                                          << block.header.number << ")");
            }
        }
    }

    // Phase 3: wave schedule over the surviving candidates, compacted in
    // processing order (position k below = k-th candidate in that order).
    std::vector<const ledger::ReadWriteSet*> rwsets;
    std::vector<std::size_t> cand_idx;  // candidate position -> block index
    rwsets.reserve(n);
    cand_idx.reserve(n);
    for (const std::size_t idx : order) {
        if (!is_valid(out.codes[idx])) continue;
        rwsets.push_back(&block.transactions[idx].rwset);
        cand_idx.push_back(idx);
    }
    const WaveSchedule schedule = build_wave_schedule(rwsets);
    out.parallel_waves = schedule.wave_count;
    out.conflict_components = schedule.component_count;
    out.conflict_edges = schedule.edge_count;
    out.largest_component = schedule.max_component_size;
    out.wave_sizes.reserve(schedule.waves.size());

    // Phase 4: resolve wave by wave.  The conflict scans of one wave are
    // independent (read the frozen map, write their own slot) and fan out;
    // the merge applies decisions serially in processing order, so the map
    // contents — and therefore every later wave's scans — are deterministic.
    AcceptedWrites accepted;
    std::vector<IntraBlockConflict> conflicts;
    for (const std::vector<std::uint32_t>& wave : schedule.waves) {
        out.wave_sizes.push_back(static_cast<std::uint32_t>(wave.size()));
        conflicts.assign(wave.size(), IntraBlockConflict{});
        const auto scan = [&](std::size_t k) {
            const std::uint32_t pos = wave[k];
            conflicts[k] = intra_block_conflict(*rwsets[pos], accepted, pos);
        };
        if (wave.size() > 1) {
            parallel_for_each(*cfg.pool, wave.size(), scan);
        } else {
            for (std::size_t k = 0; k < wave.size(); ++k) scan(k);
        }
        for (std::size_t k = 0; k < wave.size(); ++k) {
            const std::uint32_t pos = wave[k];
            const std::size_t idx = cand_idx[pos];
            if (!is_valid(conflicts[k].code)) {
                record_conflict(block, idx, conflicts[k], cfg, out);
                continue;
            }
            const ledger::Envelope& tx = block.transactions[idx];
            accepted.add(tx.rwset, tx.consolidated_priority, tx.tx_id().value(),
                         pos);
            ++out.valid_count;
        }
    }
    return out;
}

}  // namespace

ValidationOutcome validate_block(const ledger::Block& block,
                                 const ledger::WorldState& state,
                                 const policy::ChannelConfig& channel,
                                 const policy::ConsolidationPolicy* consolidation,
                                 const crypto::KeyStore& keys,
                                 std::unordered_set<std::uint64_t>& seen_tx_ids,
                                 const ValidatorConfig& cfg) {
    const std::vector<std::size_t> order = processing_order(block, cfg);
    if (cfg.mode == ValidationMode::kParallel && cfg.pool != nullptr &&
        block.transactions.size() >= cfg.parallel_min_txs) {
        return validate_parallel(block, state, channel, consolidation, keys,
                                 seen_tx_ids, cfg, order);
    }
    return validate_serial(block, state, channel, consolidation, keys, seen_tx_ids,
                           cfg, order);
}

void apply_block(const ledger::Block& block, const ValidationOutcome& outcome,
                 ledger::WorldState& state) {
    for (std::size_t i = 0; i < block.transactions.size(); ++i) {
        if (!is_valid(outcome.codes[i])) continue;
        state.apply_all(block.transactions[i].rwset,
                        ledger::Version{block.header.number,
                                        static_cast<std::uint32_t>(i)});
    }
}

}  // namespace fl::peer
