#include "peer/validator.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <unordered_map>

#include "common/log.h"
#include "peer/endorser.h"

namespace fl::peer {

namespace {

/// Accumulated effects of transactions already accepted in this block.  Each
/// written key remembers which transaction won it, so a later conflict can
/// report (and count) who displaced whom.
struct AcceptedWrites {
    struct Winner {
        PriorityLevel priority = kUnassignedPriority;
        std::uint64_t tx = 0;
    };
    std::unordered_map<std::string, Winner> keys;

    void add(const ledger::ReadWriteSet& rwset, PriorityLevel priority,
             std::uint64_t tx) {
        for (const ledger::KvWrite& w : rwset.writes) {
            keys.emplace(w.key, Winner{priority, tx});
        }
    }
};

struct IntraBlockConflict {
    TxValidationCode code = TxValidationCode::kValid;
    AcceptedWrites::Winner winner;  ///< accepted tx that caused the failure
};

/// First failing intra-block conflict of `rwset` against accepted writes.
IntraBlockConflict intra_block_conflict(const ledger::ReadWriteSet& rwset,
                                        const AcceptedWrites& accepted) {
    for (const ledger::KvRead& r : rwset.reads) {
        if (const auto it = accepted.keys.find(r.key); it != accepted.keys.end()) {
            return {TxValidationCode::kMvccReadConflict, it->second};
        }
    }
    for (const ledger::RangeRead& rr : rwset.range_reads) {
        for (const auto& [key, winner] : accepted.keys) {
            if (key >= rr.start_key && key < rr.end_key) {
                return {TxValidationCode::kPhantomReadConflict, winner};
            }
        }
    }
    for (const ledger::KvWrite& w : rwset.writes) {
        if (const auto it = accepted.keys.find(w.key); it != accepted.keys.end()) {
            return {TxValidationCode::kWriteConflict, it->second};
        }
    }
    return {};
}

TxValidationCode check_endorsements(const ledger::Envelope& tx,
                                    const policy::ChannelConfig& channel,
                                    const policy::ConsolidationPolicy* consolidation,
                                    const crypto::KeyStore& keys,
                                    const ValidatorConfig& cfg) {
    std::set<OrgId> valid_orgs;
    std::vector<PriorityLevel> votes;
    votes.reserve(tx.endorsements.size());
    for (const ledger::Endorsement& e : tx.endorsements) {
        if (!verify_endorsement(tx.proposal, tx.rwset, e, keys)) {
            continue;  // forged / stale endorsement simply doesn't count
        }
        valid_orgs.insert(e.org);
        votes.push_back(e.priority);
    }
    if (!channel.endorsement_policy.satisfied_by(valid_orgs)) {
        return TxValidationCode::kEndorsementPolicyFailure;
    }
    if (cfg.verify_consolidation) {
        if (consolidation == nullptr) {
            return TxValidationCode::kBadPriorityConsolidation;
        }
        const auto expect =
            consolidation->consolidate(votes, channel.effective_levels());
        if (!expect || *expect != tx.consolidated_priority) {
            return TxValidationCode::kBadPriorityConsolidation;
        }
    }
    return TxValidationCode::kValid;
}

}  // namespace

ValidationOutcome validate_block(const ledger::Block& block,
                                 const ledger::WorldState& state,
                                 const policy::ChannelConfig& channel,
                                 const policy::ConsolidationPolicy* consolidation,
                                 const crypto::KeyStore& keys,
                                 std::unordered_set<std::uint64_t>& seen_tx_ids,
                                 const ValidatorConfig& cfg) {
    const std::size_t n = block.transactions.size();
    ValidationOutcome out;
    out.codes.assign(n, TxValidationCode::kValid);

    // Processing order: block order, or stable priority order for the
    // prioritized validator.  Stability preserves per-level FIFO, so equal-
    // priority conflicts still resolve to the earlier transaction (§3.4).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (cfg.prioritized) {
        std::stable_sort(order.begin(), order.end(),
                         [&block](std::size_t a, std::size_t b) {
                             return block.transactions[a].consolidated_priority <
                                    block.transactions[b].consolidated_priority;
                         });
    }

    AcceptedWrites accepted;
    for (const std::size_t idx : order) {
        const ledger::Envelope& tx = block.transactions[idx];

        if (!seen_tx_ids.insert(tx.tx_id().value()).second) {
            out.codes[idx] = TxValidationCode::kDuplicateTxId;
            continue;
        }
        const TxValidationCode endorse_code =
            check_endorsements(tx, channel, consolidation, keys, cfg);
        if (!is_valid(endorse_code)) {
            out.codes[idx] = endorse_code;
            continue;
        }
        if (!state.validate_reads(tx.rwset)) {
            out.codes[idx] = TxValidationCode::kMvccReadConflict;
            FL_DEBUG("validator: tx " << tx.tx_id().value()
                                      << " stale read vs committed state (block "
                                      << block.header.number << ")");
            continue;
        }
        const IntraBlockConflict conflict = intra_block_conflict(tx.rwset, accepted);
        if (!is_valid(conflict.code)) {
            out.codes[idx] = conflict.code;
            // Lower numeric level = higher priority.  A strict win means the
            // prioritized order decided the outcome; a tie (or vanilla mode)
            // is plain first-come-first-served.
            if (cfg.prioritized &&
                conflict.winner.priority < tx.consolidated_priority) {
                ++out.conflicts_priority_resolved;
            } else {
                ++out.conflicts_fifo_resolved;
            }
            FL_DEBUG("validator: tx " << tx.tx_id().value() << " (level "
                                      << tx.consolidated_priority << ") loses "
                                      << to_string(conflict.code) << " to tx "
                                      << conflict.winner.tx << " (level "
                                      << conflict.winner.priority << ") in block "
                                      << block.header.number);
            continue;
        }
        accepted.add(tx.rwset, tx.consolidated_priority, tx.tx_id().value());
        ++out.valid_count;
    }
    return out;
}

void apply_block(const ledger::Block& block, const ValidationOutcome& outcome,
                 ledger::WorldState& state) {
    for (std::size_t i = 0; i < block.transactions.size(); ++i) {
        if (!is_valid(outcome.codes[i])) continue;
        state.apply_all(block.transactions[i].rwset,
                        ledger::Version{block.header.number,
                                        static_cast<std::uint32_t>(i)});
    }
}

}  // namespace fl::peer
