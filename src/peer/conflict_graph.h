// Conflict-graph wave scheduling for parallel block validation.
//
// The serial validator (validator.cpp) decides transactions one at a time in
// a fixed *processing order* (block order, or stable consolidated-priority
// order in prioritized mode); a transaction's fate depends only on the
// accepted writes of transactions EARLIER in that order whose write sets
// intersect its own read/write/range-read keys.  That dependency structure
// is a DAG, and this module extracts it:
//
//   * an edge j -> i exists iff j precedes i in processing order and j
//     writes a key that i reads, writes, or covers with a range read;
//   * wave(i) = 0 if i has no predecessor, else 1 + max(wave(j)) over its
//     predecessors.
//
// All writers of one key form a chain in processing order (each linked to
// the previous writer), so linking every toucher of a key to that key's
// *immediately preceding* writer is enough: transitivity through the chain
// puts every earlier writer of a shared key in a strictly earlier wave.
//
// Transactions in the same wave are mutually independent — no write of one
// can affect the conflict check of another — so a wave can be validated in
// parallel against the accepted-writes map frozen at the wave boundary, and
// the result is provably identical to the serial scan (DESIGN.md §12).
//
// Everything here is a pure function of the read/write sets in processing
// order: no randomness, no scheduling dependence, so the schedule (and any
// statistic derived from it) is byte-identical across thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "ledger/rwset.h"

namespace fl::peer {

/// Wave schedule over a sequence of read/write sets given in processing
/// order.  Indices below are positions in that sequence (NOT block order —
/// the prioritized validator reorders before scheduling).
struct WaveSchedule {
    /// Wave index per position; wave 0 transactions have no intra-block
    /// dependency at all.
    std::vector<std::uint32_t> wave_of;
    /// Number of waves (max wave_of + 1; 0 for an empty schedule).
    std::uint32_t wave_count = 0;
    /// Positions per wave, ascending within each wave — the parallel
    /// validator iterates these directly.
    std::vector<std::vector<std::uint32_t>> waves;

    /// Connected-component id per position (ids are dense, assigned in
    /// order of each component's first member).
    std::vector<std::uint32_t> component_of;
    std::uint32_t component_count = 0;
    /// Size of the largest connected component (1 when fully independent).
    std::size_t max_component_size = 0;
    /// Dependency edges found (immediate-predecessor links, deduplicated
    /// per (tx, key-chain) pair).
    std::size_t edge_count = 0;
};

/// Builds the wave schedule for `rwsets` (borrowed pointers, processing
/// order).  Null entries are allowed and mean "not a candidate" — the
/// transaction already failed an order-independent check (duplicate id,
/// endorsement, stale read against committed state) and can neither win a
/// key nor constrain anyone; it is assigned wave 0 and its own component.
[[nodiscard]] WaveSchedule build_wave_schedule(
    const std::vector<const ledger::ReadWriteSet*>& rwsets);

}  // namespace fl::peer
