// Network model: point-to-point message delivery with propagation latency,
// transmission time (size / bandwidth) and jitter.  All experiment nodes sit
// on one LAN segment, matching the paper's single-datacenter SoftLayer
// deployment; per-pair overrides allow modelling a remote organization.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace fl::sim {

struct LinkParams {
    Duration base_latency = Duration::micros(500);  ///< one-way propagation
    double bandwidth_bps = 1e9;                     ///< 1 Gbps
    Duration jitter_stddev = Duration::micros(50);
};

class Network {
public:
    Network(Simulator& sim, Rng rng, LinkParams defaults = {});

    /// Overrides the link parameters for the (from, to) ordered pair.
    void set_link(NodeId from, NodeId to, LinkParams params);

    /// Delivers a message of `size_bytes` from `from` to `to`, invoking
    /// `deliver` at the receiver after the modelled delay.
    void send(NodeId from, NodeId to, std::size_t size_bytes, EventFn deliver);

    /// The delay the next send on this link would experience (samples jitter).
    [[nodiscard]] Duration sample_delay(NodeId from, NodeId to, std::size_t size_bytes);

    [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
    [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

private:
    [[nodiscard]] const LinkParams& params_for(NodeId from, NodeId to) const;

    Simulator& sim_;
    Rng rng_;
    LinkParams defaults_;
    std::map<std::pair<NodeId, NodeId>, LinkParams> overrides_;
    std::uint64_t messages_ = 0;
    std::uint64_t bytes_ = 0;
};

}  // namespace fl::sim
