// Network model: point-to-point message delivery with propagation latency,
// transmission time (size / bandwidth) and jitter.  All experiment nodes sit
// on one LAN segment, matching the paper's single-datacenter SoftLayer
// deployment; per-pair overrides allow modelling a remote organization.
//
// Fault injection: `set_message_faults` arms seeded drop / duplication /
// extra-delay faults on the *unreliable* datagram path (`send`), which
// carries the request/reply traffic that the protocol layer protects with
// timeouts, retries and deduplication (proposals, endorsement replies,
// envelope broadcasts, commit notices).  `send_reliable` models an ordered
// reliable stream (TCP/gRPC: Kafka produce/fetch, block delivery) — it is
// exempt from injected faults and behaves exactly like the fault-free
// `send`.  The fault decisions draw from their own Rng stream, so arming
// faults never perturbs the jitter sequence, and a config with all fault
// probabilities zero is byte-identical to one with faults unset.
//
// Partitioned mode (`attach_partitions`): when the owning engine splits the
// node set across group simulators (sim/partition.h), the network becomes
// the partition boundary.  Every sender draws jitter from its own Rng
// stream (seeded by node id, so the sequence a sender observes depends only
// on its own send order — identical under any layout or interleaving) and
// keeps its own message counters; sends targeting another group are posted
// as keyed inter-partition messages instead of being scheduled locally.
// All senders must be registered up front (`register_node`) — the per-from
// tables are read-only while workers run.  Jitter is Irwin–Hall (bounded at
// ±6σ), so `base_latency − 6·jitter_stddev` is a hard per-link delay floor:
// the minimum cross-group floor is the engine's lookahead, and `set_link`
// rejects cross-group overrides that would undercut it.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "sim/partition.h"
#include "sim/simulator.h"

namespace fl::sim {

struct LinkParams {
    Duration base_latency = Duration::micros(500);  ///< one-way propagation
    double bandwidth_bps = 1e9;                     ///< 1 Gbps
    Duration jitter_stddev = Duration::micros(50);
};

/// Message-level fault rates for the unreliable send path.  All decisions
/// are drawn from the dedicated fault Rng, so every loss/duplication
/// schedule is a pure function of (params, fault seed).
struct MessageFaultParams {
    double drop_prob = 0.0;       ///< message silently lost
    double dup_prob = 0.0;        ///< message delivered twice
    double delay_prob = 0.0;      ///< message held back an extra delay
    Duration delay_mean = Duration::millis(5);  ///< mean of the extra delay (exponential)

    [[nodiscard]] bool any() const {
        return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0;
    }
};

class Network {
public:
    Network(Simulator& sim, Rng rng, LinkParams defaults = {});

    /// Guaranteed minimum one-way delay of a link: propagation latency minus
    /// the worst-case (bounded, Irwin–Hall ±6σ) negative jitter excursion.
    /// Transmission time only adds.  This is what lookahead derives from.
    [[nodiscard]] static Duration link_floor(const LinkParams& p) {
        return p.base_latency - p.jitter_stddev * 6;
    }

    /// Switches the network into partitioned routing (see file comment).
    /// Call before any `register_node`; `partitions` must outlive the
    /// network.  Consumes one draw from the jitter Rng to seed the
    /// per-sender stream family.
    void attach_partitions(PartitionSet* partitions);

    [[nodiscard]] bool partitioned() const { return partitions_ != nullptr; }

    /// Registers `node` as a sender (partitioned mode only): allocates its
    /// jitter stream and counter slots.  Idempotent.  Must be called for
    /// every sender before the engine starts — unknown senders throw, so a
    /// lazily-inserted table can never race across group workers.
    void register_node(NodeId node);

    /// Overrides the link parameters for the (from, to) ordered pair.  In
    /// partitioned mode a cross-group override whose floor undercuts the
    /// engine lookahead is rejected (it would break window safety).
    void set_link(NodeId from, NodeId to, LinkParams params);

    /// Arms message faults on the unreliable path.  `rng` seeds the fault
    /// decision stream (independent of the jitter stream).  Rejected when
    /// more than one partition group is attached: the fault state is shared
    /// across senders, so fault runs execute single-group (the engine
    /// demotes such configs to one partition).
    void set_message_faults(MessageFaultParams params, Rng rng);

    /// Delivers a message of `size_bytes` from `from` to `to`, invoking
    /// `deliver` at the receiver after the modelled delay.  Subject to the
    /// armed message faults (drop / duplicate / extra delay).
    void send(NodeId from, NodeId to, std::size_t size_bytes, EventFn deliver);

    /// Reliable ordered-stream send: same delay model, never subject to
    /// injected faults.  Use for transports the real system runs over TCP
    /// with retransmission (Kafka produce/consume, block delivery).
    void send_reliable(NodeId from, NodeId to, std::size_t size_bytes, EventFn deliver);

    /// The delay the next send on this link would experience (samples jitter
    /// from the shared stream; unpartitioned use only).
    [[nodiscard]] Duration sample_delay(NodeId from, NodeId to, std::size_t size_bytes);

    [[nodiscard]] std::uint64_t messages_sent() const;
    [[nodiscard]] std::uint64_t bytes_sent() const;
    [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
    [[nodiscard]] std::uint64_t messages_duplicated() const { return duplicated_; }
    [[nodiscard]] std::uint64_t messages_delayed() const { return delayed_; }

private:
    /// Per-sender state (partitioned mode).  Mutated only by the sender's
    /// group worker; the containing map is frozen after registration.
    struct PerFrom {
        Rng jitter;
        std::uint64_t messages = 0;
        std::uint64_t bytes = 0;
    };

    [[nodiscard]] const LinkParams& params_for(NodeId from, NodeId to) const;
    [[nodiscard]] PerFrom& slot(NodeId from);
    [[nodiscard]] Duration partitioned_delay(PerFrom& pf, NodeId from, NodeId to,
                                             std::size_t size_bytes);
    void send_partitioned(NodeId from, NodeId to, std::size_t size_bytes,
                          EventFn deliver);
    /// Schedules `deliver` (possibly cross-group) `delay` after the sending
    /// group's clock, keyed at the sender.
    void route_partitioned(NodeId from, NodeId to, Duration delay, EventFn deliver);

    Simulator& sim_;
    Rng rng_;
    Rng fault_rng_;
    LinkParams defaults_;
    MessageFaultParams faults_;
    std::map<std::pair<NodeId, NodeId>, LinkParams> overrides_;
    PartitionSet* partitions_ = nullptr;
    std::uint64_t stream_base_ = 0;  ///< per-sender jitter seed family
    std::unordered_map<std::uint64_t, PerFrom> per_from_;
    std::uint64_t messages_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t duplicated_ = 0;
    std::uint64_t delayed_ = 0;
};

}  // namespace fl::sim
