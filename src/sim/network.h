// Network model: point-to-point message delivery with propagation latency,
// transmission time (size / bandwidth) and jitter.  All experiment nodes sit
// on one LAN segment, matching the paper's single-datacenter SoftLayer
// deployment; per-pair overrides allow modelling a remote organization.
//
// Fault injection: `set_message_faults` arms seeded drop / duplication /
// extra-delay faults on the *unreliable* datagram path (`send`), which
// carries the request/reply traffic that the protocol layer protects with
// timeouts, retries and deduplication (proposals, endorsement replies,
// envelope broadcasts, commit notices).  `send_reliable` models an ordered
// reliable stream (TCP/gRPC: Kafka produce/fetch, block delivery) — it is
// exempt from injected faults and behaves exactly like the fault-free
// `send`.  The fault decisions draw from their own Rng stream, so arming
// faults never perturbs the jitter sequence, and a config with all fault
// probabilities zero is byte-identical to one with faults unset.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace fl::sim {

struct LinkParams {
    Duration base_latency = Duration::micros(500);  ///< one-way propagation
    double bandwidth_bps = 1e9;                     ///< 1 Gbps
    Duration jitter_stddev = Duration::micros(50);
};

/// Message-level fault rates for the unreliable send path.  All decisions
/// are drawn from the dedicated fault Rng, so every loss/duplication
/// schedule is a pure function of (params, fault seed).
struct MessageFaultParams {
    double drop_prob = 0.0;       ///< message silently lost
    double dup_prob = 0.0;        ///< message delivered twice
    double delay_prob = 0.0;      ///< message held back an extra delay
    Duration delay_mean = Duration::millis(5);  ///< mean of the extra delay (exponential)

    [[nodiscard]] bool any() const {
        return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0;
    }
};

class Network {
public:
    Network(Simulator& sim, Rng rng, LinkParams defaults = {});

    /// Overrides the link parameters for the (from, to) ordered pair.
    void set_link(NodeId from, NodeId to, LinkParams params);

    /// Arms message faults on the unreliable path.  `rng` seeds the fault
    /// decision stream (independent of the jitter stream).
    void set_message_faults(MessageFaultParams params, Rng rng);

    /// Delivers a message of `size_bytes` from `from` to `to`, invoking
    /// `deliver` at the receiver after the modelled delay.  Subject to the
    /// armed message faults (drop / duplicate / extra delay).
    void send(NodeId from, NodeId to, std::size_t size_bytes, EventFn deliver);

    /// Reliable ordered-stream send: same delay model, never subject to
    /// injected faults.  Use for transports the real system runs over TCP
    /// with retransmission (Kafka produce/consume, block delivery).
    void send_reliable(NodeId from, NodeId to, std::size_t size_bytes, EventFn deliver);

    /// The delay the next send on this link would experience (samples jitter).
    [[nodiscard]] Duration sample_delay(NodeId from, NodeId to, std::size_t size_bytes);

    [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
    [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }
    [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
    [[nodiscard]] std::uint64_t messages_duplicated() const { return duplicated_; }
    [[nodiscard]] std::uint64_t messages_delayed() const { return delayed_; }

private:
    [[nodiscard]] const LinkParams& params_for(NodeId from, NodeId to) const;

    Simulator& sim_;
    Rng rng_;
    Rng fault_rng_;
    LinkParams defaults_;
    MessageFaultParams faults_;
    std::map<std::pair<NodeId, NodeId>, LinkParams> overrides_;
    std::uint64_t messages_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t duplicated_ = 0;
    std::uint64_t delayed_ = 0;
};

}  // namespace fl::sim
