#include "sim/partition.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"

namespace fl::sim {

PartitionSet::PartitionSet(std::vector<Simulator*> sims, Duration lookahead)
    : sims_(std::move(sims)), lookahead_(lookahead) {
    if (sims_.empty()) {
        throw std::invalid_argument("PartitionSet: no simulators");
    }
    if (sims_.size() > 1 && lookahead_ <= Duration::zero()) {
        throw std::invalid_argument(
            "PartitionSet: non-positive lookahead — a zero-latency cross-group "
            "link admits no conservative window; merge the groups or raise the "
            "link latency");
    }
    out_.resize(sims_.size() * sims_.size());
    counts_.resize(sims_.size());
}

void PartitionSet::map_domain(DomainId d, std::size_t group) {
    if (group >= sims_.size()) {
        throw std::out_of_range("PartitionSet: group index out of range");
    }
    group_of_[d] = group;
}

std::size_t PartitionSet::group_of(DomainId d) const {
    const auto it = group_of_.find(d);
    if (it == group_of_.end()) {
        throw std::out_of_range("PartitionSet: unmapped domain");
    }
    return it->second;
}

void PartitionSet::post(std::size_t src_group, std::size_t dst_group,
                        InterPartitionMessage msg) {
    out_[src_group * sims_.size() + dst_group].push_back(std::move(msg));
}

void PartitionSet::flush() {
    const std::size_t k = sims_.size();
    for (std::size_t src = 0; src < k; ++src) {
        for (std::size_t dst = 0; dst < k; ++dst) {
            auto& box = out_[src * k + dst];
            for (auto& msg : box) {
                sims_[dst]->schedule_keyed(msg.key, msg.exec_domain, std::move(msg.fn));
            }
            box.clear();
        }
    }
}

template <typename Fn>
void PartitionSet::for_each_group(ThreadPool* pool, Fn&& fn) {
    const std::size_t k = sims_.size();
    if (pool != nullptr && pool->size() > 0 && k > 1) {
        parallel_for_each(*pool, k, fn);
    } else {
        for (std::size_t g = 0; g < k; ++g) fn(g);
    }
}

std::uint64_t PartitionSet::run(ThreadPool* pool) {
    if (sims_.size() == 1) {
        return sims_[0]->run();
    }
    std::uint64_t total = 0;
    for (;;) {
        const TimePoint t = next_event_time();
        if (t == TimePoint::max()) break;
        const TimePoint window_end = t + lookahead_;
        for_each_group(pool, [&](std::size_t g) {
            counts_[g] = sims_[g]->run_until_before(window_end);
        });
        flush();
        ++windows_;
        for (const std::uint64_t c : counts_) total += c;
    }
    return total;
}

std::uint64_t PartitionSet::advance_until(TimePoint end, ThreadPool* pool) {
    if (sims_.size() == 1) {
        return sims_[0]->run_until(end);
    }
    std::uint64_t total = 0;
    for (;;) {
        const TimePoint t = next_event_time();
        if (t >= end) break;
        const TimePoint window_end = std::min(t + lookahead_, end);
        for_each_group(pool, [&](std::size_t g) {
            counts_[g] = sims_[g]->run_until_before(window_end);
        });
        flush();
        ++windows_;
        for (const std::uint64_t c : counts_) total += c;
    }
    // Close the outer window inclusively: events AT `end` are safe to run in
    // parallel (their cross-group sends land >= end + L, beyond the window),
    // and every clock must finish at `end` exactly like Simulator::run_until.
    for_each_group(pool, [&](std::size_t g) {
        counts_[g] = sims_[g]->run_until(end);
    });
    flush();
    for (const std::uint64_t c : counts_) total += c;
    return total;
}

TimePoint PartitionSet::next_event_time() {
    // Setup code (component construction, workload bootstrap) sends before
    // any run loop exists; surface those outbox messages before looking at
    // the heaps.  Only ever called between windows, so this is safe.
    flush();
    TimePoint earliest = TimePoint::max();
    for (Simulator* sim : sims_) {
        earliest = std::min(earliest, sim->next_event_time());
    }
    return earliest;
}

TimePoint PartitionSet::last_event_at() const {
    TimePoint latest = TimePoint::origin();
    for (const Simulator* sim : sims_) {
        latest = std::max(latest, sim->last_event_at());
    }
    return latest;
}

}  // namespace fl::sim
