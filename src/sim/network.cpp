#include "sim/network.h"

#include <stdexcept>

namespace fl::sim {

Network::Network(Simulator& sim, Rng rng, LinkParams defaults)
    : sim_(sim), rng_(rng), defaults_(defaults) {}

void Network::attach_partitions(PartitionSet* partitions) {
    if (partitions == nullptr) {
        throw std::invalid_argument("Network: null partition set");
    }
    if (!per_from_.empty()) {
        throw std::logic_error("Network: attach_partitions after register_node");
    }
    partitions_ = partitions;
    stream_base_ = rng_.next_u64();
}

void Network::register_node(NodeId node) {
    if (partitions_ == nullptr) {
        throw std::logic_error("Network: register_node without partitions");
    }
    per_from_.try_emplace(node.value(),
                          PerFrom{Rng(derive_seed(stream_base_, node.value()))});
}

Network::PerFrom& Network::slot(NodeId from) {
    const auto it = per_from_.find(from.value());
    if (it == per_from_.end()) {
        // Registration is eager precisely so this lookup never inserts: a
        // lazily-grown table would race across concurrently-sending groups.
        throw std::logic_error("Network: send from unregistered node");
    }
    return it->second;
}

void Network::set_link(NodeId from, NodeId to, LinkParams params) {
    if (partitions_ != nullptr && partitions_->group_count() > 1 &&
        partitions_->has_domain(from.value()) && partitions_->has_domain(to.value()) &&
        partitions_->group_of(from.value()) != partitions_->group_of(to.value()) &&
        link_floor(params) < partitions_->lookahead()) {
        throw std::invalid_argument(
            "Network: cross-group link override undercuts the engine lookahead");
    }
    overrides_[{from, to}] = params;
}

void Network::set_message_faults(MessageFaultParams params, Rng rng) {
    if (partitions_ != nullptr && partitions_->group_count() > 1) {
        throw std::logic_error(
            "Network: message faults share sender state — run single-group "
            "(the engine demotes message-fault configs to one partition)");
    }
    faults_ = params;
    fault_rng_ = rng;
}

const LinkParams& Network::params_for(NodeId from, NodeId to) const {
    const auto it = overrides_.find({from, to});
    return it == overrides_.end() ? defaults_ : it->second;
}

Duration Network::sample_delay(NodeId from, NodeId to, std::size_t size_bytes) {
    const LinkParams& p = params_for(from, to);
    const double transmit_s =
        p.bandwidth_bps > 0.0 ? static_cast<double>(size_bytes) * 8.0 / p.bandwidth_bps : 0.0;
    const double jitter_s =
        rng_.normal(0.0, p.jitter_stddev.as_seconds(), /*non_negative=*/false);
    double total = p.base_latency.as_seconds() + transmit_s + jitter_s;
    if (total < 0.0) total = 0.0;
    return Duration::from_seconds(total);
}

Duration Network::partitioned_delay(PerFrom& pf, NodeId from, NodeId to,
                                    std::size_t size_bytes) {
    const LinkParams& p = params_for(from, to);
    const double transmit_s =
        p.bandwidth_bps > 0.0 ? static_cast<double>(size_bytes) * 8.0 / p.bandwidth_bps : 0.0;
    const double jitter_s =
        pf.jitter.normal(0.0, p.jitter_stddev.as_seconds(), /*non_negative=*/false);
    double total = p.base_latency.as_seconds() + transmit_s + jitter_s;
    if (total < 0.0) total = 0.0;
    return Duration::from_seconds(total);
}

void Network::route_partitioned(NodeId from, NodeId to, Duration delay,
                                EventFn deliver) {
    const std::size_t src = partitions_->group_of(from.value());
    const std::size_t dst = partitions_->group_of(to.value());
    Simulator& src_sim = partitions_->sim_of_group(src);
    // The key is allocated at the sender, under the currently-executing
    // domain: the receiver's heap then reproduces the exact serial merge
    // order (timestamp, then scheduling domain, then per-domain sequence).
    const EventKey key = src_sim.make_key(src_sim.now() + delay);
    if (src == dst) {
        src_sim.schedule_keyed(key, to.value(), std::move(deliver));
    } else {
        partitions_->post(src, dst,
                          InterPartitionMessage{key, to.value(), std::move(deliver)});
    }
}

void Network::send_partitioned(NodeId from, NodeId to, std::size_t size_bytes,
                               EventFn deliver) {
    PerFrom& pf = slot(from);
    if (!faults_.any()) {
        ++pf.messages;
        pf.bytes += size_bytes;
        route_partitioned(from, to, partitioned_delay(pf, from, to, size_bytes),
                          std::move(deliver));
        return;
    }
    // Fault state is shared across senders, so this branch is only reachable
    // single-group (set_message_faults enforces it) and runs serially.
    // Fixed draw order (drop, delay, dup) keeps the fault stream aligned
    // with the message sequence regardless of outcomes.
    if (fault_rng_.chance(faults_.drop_prob)) {
        ++dropped_;
        return;
    }
    ++pf.messages;
    pf.bytes += size_bytes;
    Duration delay = partitioned_delay(pf, from, to, size_bytes);
    if (fault_rng_.chance(faults_.delay_prob)) {
        delay = delay + fault_rng_.exponential_duration(faults_.delay_mean);
        ++delayed_;
    }
    if (fault_rng_.chance(faults_.dup_prob)) {
        ++duplicated_;
        ++pf.messages;
        pf.bytes += size_bytes;
        const Duration dup_delay =
            delay + fault_rng_.exponential_duration(faults_.delay_mean);
        route_partitioned(from, to, dup_delay, EventFn(deliver));
    }
    route_partitioned(from, to, delay, std::move(deliver));
}

void Network::send(NodeId from, NodeId to, std::size_t size_bytes, EventFn deliver) {
    if (partitions_ != nullptr) {
        send_partitioned(from, to, size_bytes, std::move(deliver));
        return;
    }
    if (!faults_.any()) {
        ++messages_;
        bytes_ += size_bytes;
        sim_.schedule_after(sample_delay(from, to, size_bytes), std::move(deliver));
        return;
    }
    // Fixed draw order (drop, delay, dup) keeps the fault stream aligned
    // with the message sequence regardless of outcomes.
    if (fault_rng_.chance(faults_.drop_prob)) {
        ++dropped_;
        return;
    }
    ++messages_;
    bytes_ += size_bytes;
    Duration delay = sample_delay(from, to, size_bytes);
    if (fault_rng_.chance(faults_.delay_prob)) {
        delay = delay + fault_rng_.exponential_duration(faults_.delay_mean);
        ++delayed_;
    }
    if (fault_rng_.chance(faults_.dup_prob)) {
        // The duplicate models a retransmitted datagram: it arrives strictly
        // after the original, offset by an exponential retransmission gap.
        ++duplicated_;
        ++messages_;
        bytes_ += size_bytes;
        const Duration dup_delay =
            delay + fault_rng_.exponential_duration(faults_.delay_mean);
        sim_.schedule_after(dup_delay, EventFn(deliver));
    }
    sim_.schedule_after(delay, std::move(deliver));
}

void Network::send_reliable(NodeId from, NodeId to, std::size_t size_bytes,
                            EventFn deliver) {
    if (partitions_ != nullptr) {
        PerFrom& pf = slot(from);
        ++pf.messages;
        pf.bytes += size_bytes;
        route_partitioned(from, to, partitioned_delay(pf, from, to, size_bytes),
                          std::move(deliver));
        return;
    }
    ++messages_;
    bytes_ += size_bytes;
    sim_.schedule_after(sample_delay(from, to, size_bytes), std::move(deliver));
}

std::uint64_t Network::messages_sent() const {
    std::uint64_t total = messages_;
    for (const auto& [node, pf] : per_from_) total += pf.messages;
    return total;
}

std::uint64_t Network::bytes_sent() const {
    std::uint64_t total = bytes_;
    for (const auto& [node, pf] : per_from_) total += pf.bytes;
    return total;
}

}  // namespace fl::sim
