#include "sim/network.h"

namespace fl::sim {

Network::Network(Simulator& sim, Rng rng, LinkParams defaults)
    : sim_(sim), rng_(rng), defaults_(defaults) {}

void Network::set_link(NodeId from, NodeId to, LinkParams params) {
    overrides_[{from, to}] = params;
}

void Network::set_message_faults(MessageFaultParams params, Rng rng) {
    faults_ = params;
    fault_rng_ = rng;
}

const LinkParams& Network::params_for(NodeId from, NodeId to) const {
    const auto it = overrides_.find({from, to});
    return it == overrides_.end() ? defaults_ : it->second;
}

Duration Network::sample_delay(NodeId from, NodeId to, std::size_t size_bytes) {
    const LinkParams& p = params_for(from, to);
    const double transmit_s =
        p.bandwidth_bps > 0.0 ? static_cast<double>(size_bytes) * 8.0 / p.bandwidth_bps : 0.0;
    const double jitter_s =
        rng_.normal(0.0, p.jitter_stddev.as_seconds(), /*non_negative=*/false);
    double total = p.base_latency.as_seconds() + transmit_s + jitter_s;
    if (total < 0.0) total = 0.0;
    return Duration::from_seconds(total);
}

void Network::send(NodeId from, NodeId to, std::size_t size_bytes, EventFn deliver) {
    if (!faults_.any()) {
        ++messages_;
        bytes_ += size_bytes;
        sim_.schedule_after(sample_delay(from, to, size_bytes), std::move(deliver));
        return;
    }
    // Fixed draw order (drop, delay, dup) keeps the fault stream aligned
    // with the message sequence regardless of outcomes.
    if (fault_rng_.chance(faults_.drop_prob)) {
        ++dropped_;
        return;
    }
    ++messages_;
    bytes_ += size_bytes;
    Duration delay = sample_delay(from, to, size_bytes);
    if (fault_rng_.chance(faults_.delay_prob)) {
        delay = delay + fault_rng_.exponential_duration(faults_.delay_mean);
        ++delayed_;
    }
    if (fault_rng_.chance(faults_.dup_prob)) {
        // The duplicate models a retransmitted datagram: it arrives strictly
        // after the original, offset by an exponential retransmission gap.
        ++duplicated_;
        ++messages_;
        bytes_ += size_bytes;
        const Duration dup_delay =
            delay + fault_rng_.exponential_duration(faults_.delay_mean);
        sim_.schedule_after(dup_delay, EventFn(deliver));
    }
    sim_.schedule_after(delay, std::move(deliver));
}

void Network::send_reliable(NodeId from, NodeId to, std::size_t size_bytes,
                            EventFn deliver) {
    ++messages_;
    bytes_ += size_bytes;
    sim_.schedule_after(sample_delay(from, to, size_bytes), std::move(deliver));
}

}  // namespace fl::sim
