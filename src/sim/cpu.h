// CPU service stations.
//
// Real Fabric nodes saturate: a 32-core server can only validate so many
// endorsement signatures per second.  `CpuStation` models a node's compute
// as `k` identical servers with FCFS dispatch: a submitted job starts on the
// earliest-free server (not before "now") and completes `cost` later.  Under
// light load jobs run immediately; past capacity a queue builds and sojourn
// times grow — which is what produces the latency knees in the paper's
// Figures 5 and 6.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace fl::sim {

class CpuStation {
public:
    /// `parallelism` is the number of independent servers (>= 1).
    CpuStation(Simulator& sim, unsigned parallelism);

    /// Submits a job costing `cost` CPU time; `done` fires at completion.
    void submit(Duration cost, EventFn done);

    /// Time a job submitted now would wait before starting.
    [[nodiscard]] Duration current_backlog() const;

    [[nodiscard]] unsigned parallelism() const
    { return static_cast<unsigned>(free_at_.size()); }
    [[nodiscard]] std::uint64_t jobs_completed() const { return completed_; }
    [[nodiscard]] Duration busy_time() const { return busy_; }

    /// Utilization over [origin, now]: busy server-time / (k * elapsed).
    [[nodiscard]] double utilization() const;

private:
    Simulator& sim_;
    // Min-heap of server free timestamps.
    std::priority_queue<TimePoint, std::vector<TimePoint>, std::greater<>> free_at_;
    std::uint64_t completed_ = 0;
    Duration busy_ = Duration::zero();
};

}  // namespace fl::sim
