// Node-group partitioned conservative-PDES engine.
//
// A PartitionSet advances K simulators — one per node group of a single
// channel — inside conservative synchronization windows of width L, the
// *lookahead*: the guaranteed minimum cross-group network latency.  Within
// a window [T, T+L) every group only executes events it already owns; any
// message a group sends to another group carries a timestamp >= t_send + L
// >= T + L, i.e. it lands strictly beyond the window, so no group can
// receive an event "from the past" and the windows are causally safe.
//
// Cross-group sends are posted as timestamped inter-partition messages into
// per-(source, destination) outboxes (each written only by the source
// group's worker) and flushed into the destination simulators at the window
// barrier.  Each message carries the EventKey allocated at the *sender*
// (sim/simulator.h), and every simulator pops in EventKey order, so the
// merged execution is the exact serial order: timestamp first, then the
// stable (scheduling domain, per-domain sequence) tiebreak.  Equal-time
// messages from different source groups therefore interleave exactly as
// the single-simulator engine would interleave them.
//
// With one group the engine degenerates to the plain simulator loop
// (bit-identical to Simulator::run / run_until); with K groups the result
// is byte-identical at any window placement, worker count, or layout.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace fl {
class ThreadPool;
}  // namespace fl

namespace fl::sim {

/// A cross-partition event: key allocated at the sender, executing domain
/// (the destination node) installed by the receiving simulator's run loop.
struct InterPartitionMessage {
    EventKey key;
    DomainId exec_domain = 0;
    EventFn fn;
};

class PartitionSet {
public:
    /// `sims` are borrowed (owned by the caller, e.g. core::FabricNetwork).
    /// `lookahead` must be positive when there is more than one group —
    /// a zero-latency cross-group link admits no conservative window.
    PartitionSet(std::vector<Simulator*> sims, Duration lookahead);

    PartitionSet(const PartitionSet&) = delete;
    PartitionSet& operator=(const PartitionSet&) = delete;

    /// Registers a scheduling domain (node) as belonging to `group`.
    void map_domain(DomainId d, std::size_t group);

    [[nodiscard]] std::size_t group_count() const { return sims_.size(); }
    [[nodiscard]] Duration lookahead() const { return lookahead_; }

    /// Group owning domain `d`; throws std::out_of_range if unmapped.
    [[nodiscard]] std::size_t group_of(DomainId d) const;

    /// True when `d` has been mapped.
    [[nodiscard]] bool has_domain(DomainId d) const {
        return group_of_.find(d) != group_of_.end();
    }

    [[nodiscard]] Simulator& sim_of_group(std::size_t group) { return *sims_[group]; }
    [[nodiscard]] Simulator& sim_of(DomainId d) { return *sims_[group_of(d)]; }

    /// Posts a cross-group message from `src_group`'s worker.  Safe to call
    /// concurrently from distinct source groups (each (src, dst) outbox has
    /// a single writer per window); delivered at the next flush barrier.
    void post(std::size_t src_group, std::size_t dst_group, InterPartitionMessage msg);

    /// Drains every queue and outbox.  Returns executed-event count.
    std::uint64_t run(ThreadPool* pool);

    /// Runs all groups up to and including `end` (clocks advance to `end`,
    /// mirroring Simulator::run_until) in conservative windows.  Returns
    /// executed-event count.  Outboxes are empty on return.
    std::uint64_t advance_until(TimePoint end, ThreadPool* pool);

    /// Earliest live pending event across groups (TimePoint::max() if none).
    /// Prunes cancelled heads like Simulator::next_event_time.
    [[nodiscard]] TimePoint next_event_time();

    /// Latest dequeued-event timestamp across groups.
    [[nodiscard]] TimePoint last_event_at() const;

    /// Number of synchronization windows executed so far.
    [[nodiscard]] std::uint64_t windows() const { return windows_; }

private:
    /// Delivers all outbox messages into their destination simulators.
    /// Single-threaded (barrier); per-heap key order makes delivery order
    /// irrelevant to execution order.
    void flush();

    /// Runs `fn(group)` for every group — on pool workers when a usable
    /// pool is supplied, serially otherwise.  `fn` must be thread-safe
    /// across distinct groups.
    template <typename Fn>
    void for_each_group(ThreadPool* pool, Fn&& fn);

    std::vector<Simulator*> sims_;
    Duration lookahead_;
    std::unordered_map<DomainId, std::size_t> group_of_;
    std::vector<std::vector<InterPartitionMessage>> out_;  // [src * K + dst]
    std::vector<std::uint64_t> counts_;                    // per-group scratch
    std::uint64_t windows_ = 0;
};

}  // namespace fl::sim
