#include "sim/simulator.h"

#include <stdexcept>

namespace fl::sim {

void TimerHandle::cancel() {
    if (cancelled_) *cancelled_ = true;
}

bool TimerHandle::active() const {
    return cancelled_ && !*cancelled_;
}

void Simulator::set_domain(DomainId d) {
    current_domain_ = d;
    current_seq_ = &domain_seq_[d];  // unordered_map values are pointer-stable
}

void Simulator::schedule_at(TimePoint t, EventFn fn) {
    if (t < now_) t = now_;
    queue_.push(Event{make_key(t), current_domain_, std::move(fn), nullptr});
}

void Simulator::schedule_after(Duration delay, EventFn fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    schedule_at(now_ + delay, std::move(fn));
}

TimerHandle Simulator::schedule_timer(Duration delay, EventFn fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(Event{make_key(now_ + delay), current_domain_, std::move(fn), cancelled});
    return TimerHandle{std::move(cancelled)};
}

void Simulator::schedule_keyed(EventKey key, DomainId exec_domain, EventFn fn) {
    if (key.at < now_) {
        throw std::logic_error(
            "Simulator: keyed event in the past (lookahead violation?)");
    }
    queue_.push(Event{key, exec_domain, std::move(fn), nullptr});
}

bool Simulator::run_one() {
    // The top event is copied out before popping because the callback may
    // schedule new events (mutating the queue).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.key.at;
    last_event_at_ = ev.key.at;
    if (ev.cancelled && *ev.cancelled) {
        return false;  // cancelled timers burn no execution budget
    }
    if (ev.cancelled) {
        *ev.cancelled = true;  // a fired timer is no longer active
    }
    current_key_ = ev.key;
    set_domain(ev.exec_domain);
    ev.fn();
    ++executed_;
    if (event_limit_ != 0 && executed_ > event_limit_) {
        throw std::runtime_error("Simulator: event limit exceeded (runaway experiment?)");
    }
    return true;
}

std::uint64_t Simulator::run() {
    std::uint64_t n = 0;
    while (!queue_.empty()) {
        if (run_one()) ++n;
    }
    return n;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().key.at <= deadline) {
        if (run_one()) ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

std::uint64_t Simulator::run_until_before(TimePoint end) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().key.at < end) {
        if (run_one()) ++n;
    }
    return n;
}

bool Simulator::step() {
    while (!queue_.empty()) {
        if (run_one()) return true;  // skip cancelled entries
    }
    return false;
}

TimePoint Simulator::next_event_time() {
    while (!queue_.empty()) {
        const Event& top = queue_.top();
        if (!(top.cancelled && *top.cancelled)) return top.key.at;
        // Dead entry: discard it, but only remember its time for the
        // last_event_at() accessor (where run_one's cancelled pop would have
        // landed it — that feeds e.g. audit finalization).  The execution
        // clock must NOT move: in a partitioned run this peek can happen
        // while the group lags global time, and a cancelled timer far in the
        // future must not make later (causally legal) cross-group deliveries
        // look like they are in the past.
        pruned_to_ = std::max(pruned_to_, top.key.at);
        queue_.pop();
    }
    return TimePoint::max();
}

}  // namespace fl::sim
