#include "sim/simulator.h"

#include <stdexcept>

namespace fl::sim {

void TimerHandle::cancel() {
    if (cancelled_) *cancelled_ = true;
}

bool TimerHandle::active() const {
    return cancelled_ && !*cancelled_;
}

void Simulator::schedule_at(TimePoint t, EventFn fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn), nullptr});
}

void Simulator::schedule_after(Duration delay, EventFn fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    schedule_at(now_ + delay, std::move(fn));
}

TimerHandle Simulator::schedule_timer(Duration delay, EventFn fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), cancelled});
    return TimerHandle{std::move(cancelled)};
}

bool Simulator::run_one() {
    // The top event is copied out before popping because the callback may
    // schedule new events (mutating the queue).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    last_event_at_ = ev.at;
    if (ev.cancelled && *ev.cancelled) {
        return false;  // cancelled timers burn no execution budget
    }
    if (ev.cancelled) {
        *ev.cancelled = true;  // a fired timer is no longer active
    }
    ev.fn();
    ++executed_;
    if (event_limit_ != 0 && executed_ > event_limit_) {
        throw std::runtime_error("Simulator: event limit exceeded (runaway experiment?)");
    }
    return true;
}

std::uint64_t Simulator::run() {
    std::uint64_t n = 0;
    while (!queue_.empty()) {
        if (run_one()) ++n;
    }
    return n;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().at <= deadline) {
        if (run_one()) ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

bool Simulator::step() {
    while (!queue_.empty()) {
        if (run_one()) return true;  // skip cancelled entries
    }
    return false;
}

}  // namespace fl::sim
