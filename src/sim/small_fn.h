// Small-buffer callable for simulator events.
//
// The partitioned engine runs many short synchronization windows, so event
// dispatch is on the hot path: a `std::function<void()>` heap-allocates for
// anything past its (implementation-defined, typically 16-byte) inline
// buffer, which covers almost every simulation callback (they capture `this`
// plus a handful of ids / payload handles).  `SmallFn` widens the inline
// buffer to 64 bytes so the common case never touches the allocator, while
// still falling back to the heap for oversized or throwing-move captures.
// Semantics match the `std::function` subset the simulator uses: copyable,
// movable, default-constructible, bool-testable, `void()` call signature.
// `bench/micro_dispatch.cpp` (BM_SimulatorDispatch) measures the difference.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace fl::sim {

class SmallFn {
public:
    /// Inline storage: sized for a lambda capturing `this` + ~7 words.
    static constexpr std::size_t kInlineSize = 64;

    SmallFn() noexcept = default;
    SmallFn(std::nullptr_t) noexcept {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                          std::is_invocable_r_v<void, D&>>>
    SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
        construct<D>(std::forward<F>(f));
    }

    SmallFn(const SmallFn& other) : vtable_(other.vtable_) {
        if (vtable_) vtable_->copy(storage_, other.storage_);
    }

    SmallFn(SmallFn&& other) noexcept : vtable_(other.vtable_) {
        if (vtable_) {
            vtable_->relocate(storage_, other.storage_);
            other.vtable_ = nullptr;
        }
    }

    SmallFn& operator=(const SmallFn& other) {
        if (this != &other) {
            SmallFn tmp(other);
            *this = std::move(tmp);
        }
        return *this;
    }

    SmallFn& operator=(SmallFn&& other) noexcept {
        if (this != &other) {
            reset();
            vtable_ = other.vtable_;
            if (vtable_) {
                vtable_->relocate(storage_, other.storage_);
                other.vtable_ = nullptr;
            }
        }
        return *this;
    }

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                          std::is_invocable_r_v<void, D&>>>
    SmallFn& operator=(F&& f) {
        SmallFn tmp(std::forward<F>(f));
        return *this = std::move(tmp);
    }

    ~SmallFn() { reset(); }

    void operator()() const { vtable_->invoke(storage_); }

    [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

private:
    struct VTable {
        void (*invoke)(const unsigned char* s);
        void (*copy)(unsigned char* dst, const unsigned char* src);
        void (*relocate)(unsigned char* dst, unsigned char* src) noexcept;
        void (*destroy)(unsigned char* s) noexcept;
    };

    template <typename D>
    static constexpr bool fits_inline =
        sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    struct InlineOps {
        static D* get(unsigned char* s) noexcept {
            return std::launder(reinterpret_cast<D*>(s));
        }
        static const D* get(const unsigned char* s) noexcept {
            return std::launder(reinterpret_cast<const D*>(s));
        }
        static void invoke(const unsigned char* s) { (*const_cast<D*>(get(s)))(); }
        static void copy(unsigned char* dst, const unsigned char* src) {
            ::new (static_cast<void*>(dst)) D(*get(src));
        }
        static void relocate(unsigned char* dst, unsigned char* src) noexcept {
            ::new (static_cast<void*>(dst)) D(std::move(*get(src)));
            get(src)->~D();
        }
        static void destroy(unsigned char* s) noexcept { get(s)->~D(); }
        static constexpr VTable vtable{&invoke, &copy, &relocate, &destroy};
    };

    template <typename D>
    struct HeapOps {
        static D*& slot(unsigned char* s) noexcept {
            return *std::launder(reinterpret_cast<D**>(s));
        }
        static D* const& slot(const unsigned char* s) noexcept {
            return *std::launder(reinterpret_cast<D* const*>(s));
        }
        static void invoke(const unsigned char* s) { (*slot(s))(); }
        static void copy(unsigned char* dst, const unsigned char* src) {
            ::new (static_cast<void*>(dst)) (D*)(new D(*slot(src)));
        }
        static void relocate(unsigned char* dst, unsigned char* src) noexcept {
            ::new (static_cast<void*>(dst)) (D*)(slot(src));
        }
        static void destroy(unsigned char* s) noexcept { delete slot(s); }
        static constexpr VTable vtable{&invoke, &copy, &relocate, &destroy};
    };

    template <typename D, typename F>
    void construct(F&& f) {
        if constexpr (fits_inline<D>) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
            vtable_ = &InlineOps<D>::vtable;
        } else {
            ::new (static_cast<void*>(storage_)) (D*)(new D(std::forward<F>(f)));
            vtable_ = &HeapOps<D>::vtable;
        }
    }

    void reset() noexcept {
        if (vtable_) {
            vtable_->destroy(storage_);
            vtable_ = nullptr;
        }
    }

    alignas(std::max_align_t) mutable unsigned char storage_[kInlineSize];
    const VTable* vtable_ = nullptr;
};

}  // namespace fl::sim
