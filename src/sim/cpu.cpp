#include "sim/cpu.h"

#include <algorithm>
#include <stdexcept>

namespace fl::sim {

CpuStation::CpuStation(Simulator& sim, unsigned parallelism) : sim_(sim) {
    if (parallelism == 0) {
        throw std::invalid_argument("CpuStation: parallelism must be >= 1");
    }
    for (unsigned i = 0; i < parallelism; ++i) {
        free_at_.push(TimePoint::origin());
    }
}

void CpuStation::submit(Duration cost, EventFn done) {
    if (cost < Duration::zero()) cost = Duration::zero();
    const TimePoint earliest_free = free_at_.top();
    free_at_.pop();
    const TimePoint start = std::max(sim_.now(), earliest_free);
    const TimePoint finish = start + cost;
    free_at_.push(finish);
    busy_ += cost;
    sim_.schedule_at(finish, [this, done = std::move(done)] {
        ++completed_;
        done();
    });
}

Duration CpuStation::current_backlog() const {
    const TimePoint earliest_free = free_at_.top();
    if (earliest_free <= sim_.now()) return Duration::zero();
    return earliest_free - sim_.now();
}

double CpuStation::utilization() const {
    const double elapsed = sim_.now().as_seconds();
    if (elapsed <= 0.0) return 0.0;
    return busy_.as_seconds() / (elapsed * parallelism());
}

}  // namespace fl::sim
