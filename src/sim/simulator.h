// Deterministic single-threaded discrete-event simulator.
//
// Every component of the blockchain network (clients, peers, OSNs, the mq
// broker) runs as callbacks scheduled on one virtual clock.  Events at equal
// timestamps fire in scheduling order (a monotonic sequence number breaks
// ties), so a given seed always reproduces the identical execution.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"

namespace fl::sim {

using EventFn = std::function<void()>;

/// Handle for a cancellable scheduled event (e.g. a block-cut timer that is
/// disarmed when the block fills up early).  Cheap to copy; cancelling an
/// already-fired or empty handle is a no-op.
class TimerHandle {
public:
    TimerHandle() = default;

    void cancel();
    [[nodiscard]] bool active() const;

private:
    friend class Simulator;
    explicit TimerHandle(std::shared_ptr<bool> cancelled)
        : cancelled_(std::move(cancelled)) {}
    std::shared_ptr<bool> cancelled_;
};

class Simulator {
public:
    Simulator() = default;
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    [[nodiscard]] TimePoint now() const { return now_; }

    /// Schedules `fn` to run at absolute time `t` (>= now).
    void schedule_at(TimePoint t, EventFn fn);

    /// Schedules `fn` to run `delay` after now.  Negative delays clamp to 0.
    void schedule_after(Duration delay, EventFn fn);

    /// Schedules a cancellable event.
    TimerHandle schedule_timer(Duration delay, EventFn fn);

    /// Runs until the event queue drains.  Returns the number of events run.
    std::uint64_t run();

    /// Runs events with time <= `deadline`; the clock ends at `deadline` if
    /// the queue drained earlier.  Returns the number of events run.
    std::uint64_t run_until(TimePoint deadline);

    /// Executes the single next event; false if the queue is empty.
    bool step();

    /// Timestamp of the earliest pending event, TimePoint::max() when the
    /// queue is empty.  Lets a multi-simulator engine (core/multi_channel.h)
    /// skip synchronization windows in which no channel has work.
    [[nodiscard]] TimePoint next_event_time() const {
        return queue_.empty() ? TimePoint::max() : queue_.top().at;
    }

    /// Timestamp of the most recently dequeued event — including cancelled
    /// timer pops, so after any mix of run()/run_until() calls this equals
    /// what now() reads after a plain run() (run_until additionally advances
    /// the clock to its deadline; this accessor does not).  Origin if no
    /// event was ever dequeued.
    [[nodiscard]] TimePoint last_event_at() const { return last_event_at_; }

    [[nodiscard]] bool empty() const { return queue_.empty(); }
    [[nodiscard]] std::size_t pending() const { return queue_.size(); }
    [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

    /// Safety valve for runaway experiments; 0 disables the limit.
    void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

private:
    struct Event {
        TimePoint at;
        std::uint64_t seq = 0;
        EventFn fn;
        std::shared_ptr<bool> cancelled;  // may be null

        // Min-heap order: earliest time first, then earliest scheduled.
        friend bool operator>(const Event& a, const Event& b) {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    bool run_one();

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    TimePoint now_;
    TimePoint last_event_at_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t event_limit_ = 0;
};

}  // namespace fl::sim
