// Deterministic discrete-event simulator with partition-stable event keys.
//
// Every component of the blockchain network (clients, peers, OSNs, the mq
// broker) runs as callbacks scheduled on one virtual clock.  Events are
// ordered by an `EventKey` (timestamp, scheduling domain, per-domain
// sequence number).  A *domain* is the logical node a callback runs on
// behalf of; every event scheduled while that callback executes is keyed
// under the executing domain, and each domain has its own monotonic
// sequence counter.  Because a domain's counter only advances while that
// domain executes, the key assigned to any event is independent of how the
// node set is partitioned across simulators — which is what lets the
// node-group partitioned engine (sim/partition.h) replay the exact serial
// execution order from concurrently-advanced per-group simulators.  With a
// single domain (the default, domain 0), keys degenerate to (time, schedule
// order): ties fire in scheduling order exactly as before.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "sim/small_fn.h"

namespace fl::sim {

using EventFn = SmallFn;

/// Logical scheduling domain.  The fabric layer uses the component's
/// NodeId value; standalone simulator users can ignore domains entirely.
using DomainId = std::uint64_t;

/// Global total order over events: (timestamp, scheduling domain,
/// per-domain sequence).  Keys are unique across an entire run — equal
/// (at, domain) pairs differ in seq — and are assigned identically no
/// matter how domains are partitioned across simulators.
struct EventKey {
    TimePoint at;
    DomainId domain = 0;
    std::uint64_t seq = 0;

    constexpr auto operator<=>(const EventKey&) const = default;
};

/// Handle for a cancellable scheduled event (e.g. a block-cut timer that is
/// disarmed when the block fills up early).  Cheap to copy; cancelling an
/// already-fired or empty handle is a no-op.
class TimerHandle {
public:
    TimerHandle() = default;

    void cancel();
    [[nodiscard]] bool active() const;

private:
    friend class Simulator;
    explicit TimerHandle(std::shared_ptr<bool> cancelled)
        : cancelled_(std::move(cancelled)) {}
    std::shared_ptr<bool> cancelled_;
};

class Simulator {
public:
    Simulator() { set_domain(0); }
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    [[nodiscard]] TimePoint now() const { return now_; }

    /// Schedules `fn` to run at absolute time `t` (>= now).
    void schedule_at(TimePoint t, EventFn fn);

    /// Schedules `fn` to run `delay` after now.  Negative delays clamp to 0.
    void schedule_after(Duration delay, EventFn fn);

    /// Schedules a cancellable event.
    TimerHandle schedule_timer(Duration delay, EventFn fn);

    /// Allocates the key the next event scheduled at `t` under the current
    /// domain would get (advances the domain's sequence counter).  Used by
    /// the network layer to stamp cross-partition messages at the sender so
    /// the receiver reproduces the serial merge order.
    [[nodiscard]] EventKey make_key(TimePoint t) {
        return EventKey{t, current_domain_, (*current_seq_)++};
    }

    /// Enqueues an event with a caller-provided key (from `make_key`, on
    /// this or another simulator).  `exec_domain` becomes the scheduling
    /// domain while `fn` runs.  `key.at` must be >= now().
    void schedule_keyed(EventKey key, DomainId exec_domain, EventFn fn);

    /// Sets the scheduling domain for subsequently scheduled events.  The
    /// executing event's domain is installed automatically by the run loop;
    /// setup code uses DomainScope to tag construction-time schedules.
    void set_domain(DomainId d);
    [[nodiscard]] DomainId domain() const { return current_domain_; }

    /// Key of the event currently executing (valid inside a callback).
    [[nodiscard]] const EventKey& current_key() const { return current_key_; }

    /// Runs until the event queue drains.  Returns the number of events run.
    std::uint64_t run();

    /// Runs events with time <= `deadline`; the clock ends at `deadline` if
    /// the queue drained earlier.  Returns the number of events run.
    std::uint64_t run_until(TimePoint deadline);

    /// Runs events with time strictly < `end` and does NOT advance the
    /// clock to `end` — the conservative-window body for the partitioned
    /// engine, which closes each outer window with an inclusive run_until.
    std::uint64_t run_until_before(TimePoint end);

    /// Executes the single next event; false if the queue is empty.
    bool step();

    /// Timestamp of the earliest *live* pending event, TimePoint::max()
    /// when the queue is empty.  Cancelled timers at the head are pruned,
    /// so a dead timer can neither block the multi-simulator empty-window
    /// fast path nor poison lookahead-based window placement.  Pruning
    /// never touches the execution clock: a partitioned group may be peeked
    /// while it lags global time, and cancelled entries far in its future
    /// (e.g. superseded heartbeat timers) must not fast-forward now() past
    /// deliveries other groups are still allowed to make.  Pruned times are
    /// folded into last_event_at() instead.
    [[nodiscard]] TimePoint next_event_time();

    /// Timestamp of the most recently dequeued event — including cancelled
    /// timer pops and prunes, so after any mix of run()/run_until()/
    /// next_event_time() calls this equals what now() reads after a plain
    /// run() (run_until additionally advances the clock to its deadline;
    /// this accessor does not).  Origin if no event was ever dequeued.
    [[nodiscard]] TimePoint last_event_at() const {
        return std::max(last_event_at_, pruned_to_);
    }

    [[nodiscard]] bool empty() const { return queue_.empty(); }
    [[nodiscard]] std::size_t pending() const { return queue_.size(); }
    [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

    /// Safety valve for runaway experiments; 0 disables the limit.
    void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

private:
    struct Event {
        EventKey key;
        DomainId exec_domain = 0;
        EventFn fn;
        std::shared_ptr<bool> cancelled;  // may be null

        // Min-heap order: lexicographic on (at, domain, seq).
        friend bool operator>(const Event& a, const Event& b) {
            return b.key < a.key;
        }
    };

    bool run_one();

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    TimePoint now_;
    TimePoint last_event_at_;
    TimePoint pruned_to_;  ///< latest cancelled entry discarded by a peek
    EventKey current_key_;
    DomainId current_domain_ = 0;
    std::uint64_t* current_seq_ = nullptr;  // cached &domain_seq_[current_domain_]
    std::unordered_map<DomainId, std::uint64_t> domain_seq_;
    std::uint64_t executed_ = 0;
    std::uint64_t event_limit_ = 0;
};

/// RAII scheduling-domain tag for setup code (component construction,
/// workload bootstrap): events scheduled inside the scope are keyed under
/// `d`, making bootstrap keys identical across partition layouts.
class DomainScope {
public:
    DomainScope(Simulator& sim, DomainId d) : sim_(sim), prev_(sim.domain()) {
        sim_.set_domain(d);
    }
    ~DomainScope() { sim_.set_domain(prev_); }
    DomainScope(const DomainScope&) = delete;
    DomainScope& operator=(const DomainScope&) = delete;

private:
    Simulator& sim_;
    DomainId prev_;
};

}  // namespace fl::sim
