// In-simulation message-queue broker — the Apache Kafka stand-in.
//
// Substitution note (DESIGN.md §2): Fabric's Kafka orderer relies on exactly
// three properties of Kafka topics, all provided here:
//   1. each topic is a totally-ordered, offset-addressed append log;
//   2. every consumer observes the same sequence (reading at its own pace);
//   3. multiple producers can interleave records, including control
//      messages (the time-to-cut markers), and the interleaving is the
//      same for everyone because it is fixed at append time.
//
// The broker lives at a network node; produce requests and consumer pushes
// pay network delay over the *reliable* transport (Kafka runs on TCP — a
// produced record is never lost or duplicated, only delayed).  Consumers
// receive pushes that may be reordered by network jitter, so each
// Subscription reorders by offset before exposing records — consumption
// order therefore always equals log order.
//
// Fault injection: `set_down(true)` opens an unavailability window.  Appends
// that arrive while the broker is down are deferred in arrival order and
// flushed when the window closes — the log stays total-ordered and every
// consumer still observes the same sequence, records are just late (the
// Kafka-cluster-outage model: producers block/retry, nothing is lost).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/types.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace fl::raft {
class RaftOrderingBackend;
}

namespace fl::mq {

using Offset = std::uint64_t;

/// In-order consumer view of one topic.  Records become visible after
/// broker->consumer network delay, always in offset order.
template <typename T>
class Subscription {
public:
    /// True when at least one record is ready to consume.
    [[nodiscard]] bool has_ready() const { return !ready_.empty(); }

    /// Next ready record without consuming it.
    [[nodiscard]] const T& peek() const {
        if (ready_.empty()) throw std::logic_error("Subscription::peek: empty");
        return ready_.front().second;
    }

    [[nodiscard]] Offset peek_offset() const {
        if (ready_.empty()) throw std::logic_error("Subscription::peek_offset: empty");
        return ready_.front().first;
    }

    /// Consumes and returns the next record.
    T pop() {
        if (ready_.empty()) throw std::logic_error("Subscription::pop: empty");
        T value = std::move(ready_.front().second);
        ready_.pop_front();
        ++popped_;
        return value;
    }

    /// Callback fired every time new records become ready (possibly several
    /// per call).  Used by the block generator to resume Algorithm 1.
    void set_on_ready(std::function<void()> cb) { on_ready_ = std::move(cb); }

    [[nodiscard]] std::size_t ready_count() const { return ready_.size(); }
    [[nodiscard]] Offset next_expected_offset() const { return next_offset_; }
    /// Records this consumer has pop()ed so far.  Together with the broker's
    /// topic_size this yields the consumer's queue depth (lag), the
    /// per-priority backlog series the observability layer samples.
    [[nodiscard]] std::uint64_t consumed_count() const { return popped_; }

private:
    template <typename U>
    friend class Broker;
    /// The Raft backend reuses Subscription for its committed-projection
    /// fanout, so OSNs consume both backends through one type.
    friend class fl::raft::RaftOrderingBackend;

    void on_push(Offset offset, T value) {
        pending_.emplace(offset, std::move(value));
        bool advanced = false;
        for (auto it = pending_.find(next_offset_); it != pending_.end();
             it = pending_.find(next_offset_)) {
            ready_.emplace_back(it->first, std::move(it->second));
            pending_.erase(it);
            ++next_offset_;
            advanced = true;
        }
        if (advanced && on_ready_) on_ready_();
    }

    std::map<Offset, T> pending_;           // out-of-order arrivals
    std::deque<std::pair<Offset, T>> ready_;  // in-order, unconsumed
    Offset next_offset_ = 0;
    std::uint64_t popped_ = 0;
    std::function<void()> on_ready_;
};

/// Broker configuration: where it lives and how big records are on the wire
/// (sizes only matter for transmission-delay modelling).
struct BrokerParams {
    NodeId node{9000};
    std::size_t record_overhead_bytes = 64;
};

template <typename T>
class Broker {
public:
    Broker(sim::Simulator& sim, sim::Network& net, BrokerParams params = {})
        : sim_(sim), net_(net), params_(params) {}

    Broker(const Broker&) = delete;
    Broker& operator=(const Broker&) = delete;

    /// Observability hook fired synchronously on every append (topic name,
    /// assigned offset, the record, wire size).  Type-erased so the broker
    /// stays agnostic of record semantics; null by default and guarded by a
    /// single branch, so untraced runs pay nothing.
    using AppendHook =
        std::function<void(const std::string&, Offset, const T&, std::size_t)>;
    void set_on_append(AppendHook hook) { on_append_ = std::move(hook); }

    /// Creates a topic; idempotent.
    void create_topic(const std::string& name) {
        const auto [it, inserted] = topics_.try_emplace(name);
        if (inserted) it->second.name = name;
    }

    [[nodiscard]] bool has_topic(const std::string& name) const {
        return topics_.contains(name);
    }

    /// Appends `value` to `topic` after producer->broker network delay and
    /// pushes it to all subscribers.  `size_bytes` is the payload wire size.
    void produce(const std::string& topic, NodeId producer, std::size_t size_bytes,
                 T value) {
        TopicLog& log = topic_ref(topic);
        const std::size_t wire = size_bytes + params_.record_overhead_bytes;
        net_.send_reliable(producer, params_.node, wire,
                           [this, &log, wire, value = std::move(value)]() mutable {
                               append_and_fanout(log, wire, std::move(value));
                           });
    }

    /// Appends without network delay — used by unit tests that exercise log
    /// semantics in isolation.  During an unavailability window the append
    /// is deferred like any other; the returned offset is where the record
    /// would land if the broker were up.
    Offset produce_local(const std::string& topic, std::size_t size_bytes, T value) {
        TopicLog& log = topic_ref(topic);
        Offset off = static_cast<Offset>(log.records.size());
        if (down_) {
            // Deferred appends targeting this topic flush ahead of this one,
            // so they occupy the next offsets; without this, every deferred
            // produce during one outage would claim the same slot.
            for (const Deferred& d : deferred_) {
                if (d.topic == log.name) ++off;
            }
        }
        append_and_fanout(log, size_bytes + params_.record_overhead_bytes,
                          std::move(value));
        return off;
    }

    /// Subscribes a consumer at `consumer_node` starting at `from_offset`
    /// (default: the beginning of the topic).  Records from `from_offset`
    /// onward are replayed (with network delay).  Throws std::out_of_range
    /// when `from_offset` lies past the end of the topic — requesting a
    /// position the log has never reached is a caller bug, not UB.
    std::shared_ptr<Subscription<T>> subscribe(const std::string& topic,
                                               NodeId consumer_node,
                                               Offset from_offset = 0) {
        TopicLog& log = topic_ref(topic);
        if (from_offset > log.records.size()) {
            throw std::out_of_range("Broker::subscribe: offset " +
                                    std::to_string(from_offset) + " past end of " +
                                    topic + " (size " +
                                    std::to_string(log.records.size()) + ")");
        }
        auto sub = std::make_shared<Subscription<T>>();
        sub->next_offset_ = from_offset;
        log.subscribers.push_back(Subscriber{consumer_node, sub});
        for (Offset off = from_offset; off < log.records.size(); ++off) {
            push_to(log.subscribers.back(), off, log.records[off], log.record_sizes[off]);
        }
        return sub;
    }

    /// Random-access read of one committed record.  Throws
    /// std::invalid_argument for an unknown topic and std::out_of_range for
    /// an offset the log has not reached.
    [[nodiscard]] const T& read(const std::string& topic, Offset offset) const {
        const auto it = topics_.find(topic);
        if (it == topics_.end()) {
            throw std::invalid_argument("Broker: unknown topic " + topic);
        }
        if (offset >= it->second.records.size()) {
            throw std::out_of_range("Broker::read: offset " + std::to_string(offset) +
                                    " past end of " + topic + " (size " +
                                    std::to_string(it->second.records.size()) + ")");
        }
        return it->second.records[offset];
    }

    /// Opens (true) or closes (false) an unavailability window.  Closing
    /// flushes every deferred append in its original arrival order, so the
    /// post-outage log is deterministic.
    void set_down(bool down) {
        if (down_ == down) return;
        down_ = down;
        if (down) {
            ++outages_;
            return;
        }
        std::vector<Deferred> flush;
        flush.swap(deferred_);
        for (Deferred& d : flush) {
            append_and_fanout(topic_ref(d.topic), d.wire_size, std::move(d.value));
        }
    }

    [[nodiscard]] bool is_down() const { return down_; }
    [[nodiscard]] std::uint64_t outages() const { return outages_; }
    /// Appends that arrived during unavailability windows (lifetime total).
    [[nodiscard]] std::uint64_t deferred_appends_total() const {
        return deferred_total_;
    }

    /// Number of records appended to `topic` so far.
    [[nodiscard]] std::size_t topic_size(const std::string& topic) const {
        const auto it = topics_.find(topic);
        return it == topics_.end() ? 0 : it->second.records.size();
    }

    /// Direct read access for consistency checks in tests.
    [[nodiscard]] const std::vector<T>& log_of(const std::string& topic) const {
        const auto it = topics_.find(topic);
        if (it == topics_.end()) throw std::invalid_argument("Broker: unknown topic " + topic);
        return it->second.records;
    }

    [[nodiscard]] NodeId node() const { return params_.node; }

private:
    struct Subscriber {
        NodeId node;
        /// Weak so a dropped consumer (e.g. a crashed OSN's generator) stops
        /// receiving pushes; expired entries are pruned on the next append.
        std::weak_ptr<Subscription<T>> sub;
    };

    struct TopicLog {
        std::string name;  ///< stored so the append hook never formats
        std::vector<T> records;
        std::vector<std::size_t> record_sizes;
        std::vector<Subscriber> subscribers;
    };

    struct Deferred {
        std::string topic;
        std::size_t wire_size;
        T value;
    };

    TopicLog& topic_ref(const std::string& name) {
        const auto it = topics_.find(name);
        if (it == topics_.end()) {
            throw std::invalid_argument("Broker: unknown topic " + name);
        }
        return it->second;
    }

    void append_and_fanout(TopicLog& log, std::size_t wire_size, T value) {
        if (down_) {
            deferred_.push_back(Deferred{log.name, wire_size, std::move(value)});
            ++deferred_total_;
            return;
        }
        const Offset off = static_cast<Offset>(log.records.size());
        log.records.push_back(std::move(value));
        log.record_sizes.push_back(wire_size);
        FL_TRACE("mq: " << log.name << " append @" << off << " (" << wire_size
                        << " B, " << log.subscribers.size() << " subscribers)");
        if (on_append_) on_append_(log.name, off, log.records.back(), wire_size);
        std::erase_if(log.subscribers,
                      [](const Subscriber& s) { return s.sub.expired(); });
        for (Subscriber& s : log.subscribers) {
            push_to(s, off, log.records.back(), wire_size);
        }
    }

    void push_to(const Subscriber& s, Offset off, const T& value, std::size_t wire_size) {
        // Weak pointer so a dropped subscription doesn't dangle.
        std::weak_ptr<Subscription<T>> weak = s.sub;
        net_.send_reliable(params_.node, s.node, wire_size, [weak, off, value] {
            if (auto sub = weak.lock()) sub->on_push(off, value);
        });
    }

    sim::Simulator& sim_;
    sim::Network& net_;
    BrokerParams params_;
    AppendHook on_append_;
    std::unordered_map<std::string, TopicLog> topics_;
    bool down_ = false;
    std::uint64_t outages_ = 0;
    std::uint64_t deferred_total_ = 0;
    std::vector<Deferred> deferred_;
};

}  // namespace fl::mq
