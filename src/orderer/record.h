// Records carried by the ordering-service message queues: either a
// consolidated transaction envelope or a time-to-cut (TTC) control message.
//
// TTC_BN (paper §3.3): when an OSN's local block timer expires it produces a
// TTC record carrying the current block number into *every* priority queue.
// Because the queues are totally ordered, the first TTC_BN occupies the same
// log position for every OSN, which is what restores block-cut consistency
// across OSNs with unsynchronized timers.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "ledger/transaction.h"

namespace fl::orderer {

struct OrderedRecord {
    enum class Kind { kTransaction, kTimeToCut, kConfigUpdate };

    Kind kind = Kind::kTransaction;

    /// kTransaction: the envelope (consolidated priority already stamped).
    /// Shared because the broker fans the same record out to every OSN.
    std::shared_ptr<const ledger::Envelope> envelope;

    /// kTimeToCut: block number the sender wanted to cut.
    BlockNumber ttc_block = 0;
    OsnId ttc_sender;

    /// kConfigUpdate: new block-formation quotas (already normalized to the
    /// block size).  Channel configuration transactions travel through the
    /// *highest priority* queue — "all channel configuration transactions
    /// are by default executed at the highest priority level" (paper §4) —
    /// so every OSN consumes them at the same log position and switches
    /// policy at the same block boundary.
    std::vector<std::uint32_t> new_quotas;

    [[nodiscard]] static OrderedRecord transaction(
        std::shared_ptr<const ledger::Envelope> env) {
        OrderedRecord r;
        r.kind = Kind::kTransaction;
        r.envelope = std::move(env);
        return r;
    }

    [[nodiscard]] static OrderedRecord time_to_cut(BlockNumber block, OsnId sender) {
        OrderedRecord r;
        r.kind = Kind::kTimeToCut;
        r.ttc_block = block;
        r.ttc_sender = sender;
        return r;
    }

    [[nodiscard]] static OrderedRecord config_update(std::vector<std::uint32_t> quotas) {
        OrderedRecord r;
        r.kind = Kind::kConfigUpdate;
        r.new_quotas = std::move(quotas);
        return r;
    }

    [[nodiscard]] bool is_ttc() const { return kind == Kind::kTimeToCut; }
    [[nodiscard]] bool is_config() const { return kind == Kind::kConfigUpdate; }

    [[nodiscard]] std::size_t wire_size() const {
        switch (kind) {
        case Kind::kTransaction: return envelope->wire_size();
        case Kind::kTimeToCut: return 24;
        case Kind::kConfigUpdate: return 64 + new_quotas.size() * 4;
        }
        return 24;
    }
};

}  // namespace fl::orderer
