#include "orderer/block_generator.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/log.h"
#include "obs/audit/audit.h"
#include "obs/trace.h"

namespace fl::orderer {

MultiQueueBlockGenerator::MultiQueueBlockGenerator(sim::Simulator& sim,
                                                   GeneratorConfig config,
                                                   Subscriptions subs,
                                                   TtcSender send_ttc,
                                                   CutCallback on_cut)
    : sim_(sim),
      config_(std::move(config)),
      subs_(std::move(subs)),
      send_ttc_(std::move(send_ttc)),
      on_cut_(std::move(on_cut)) {
    if (subs_.empty() || subs_.size() != config_.quotas.size()) {
        throw std::invalid_argument(
            "MultiQueueBlockGenerator: quotas/subscriptions size mismatch");
    }
    const std::uint64_t total = std::accumulate(config_.quotas.begin(),
                                                config_.quotas.end(), std::uint64_t{0});
    if (total > config_.block_size) {
        throw std::invalid_argument("MultiQueueBlockGenerator: quotas exceed block size");
    }
    if (total == 0) {
        throw std::invalid_argument("MultiQueueBlockGenerator: all quotas zero");
    }
    if (!send_ttc_ || !on_cut_) {
        throw std::invalid_argument("MultiQueueBlockGenerator: missing callbacks");
    }
    buckets_.resize(subs_.size());
    consume_tokens_ = static_cast<double>(config_.consume_burst);  // start full
    reset_block_state();
    for (const auto& sub : subs_) {
        sub->set_on_ready([this] { pump(); });
    }
}

MultiQueueBlockGenerator::~MultiQueueBlockGenerator() {
    timer_.cancel();
    consume_timer_.cancel();
    for (const auto& sub : subs_) {
        sub->set_on_ready(nullptr);
    }
}

void MultiQueueBlockGenerator::refill_tokens() {
    const double per_record = config_.consume_per_record.as_seconds();
    const double elapsed = (sim_.now() - consume_refill_at_).as_seconds();
    consume_refill_at_ = sim_.now();
    consume_tokens_ = std::min(static_cast<double>(config_.consume_burst),
                               consume_tokens_ + elapsed / per_record);
}

bool MultiQueueBlockGenerator::can_consume() {
    if (config_.consume_per_record == Duration::zero()) return true;
    refill_tokens();
    // Epsilon guards against a resume firing one float-rounding early.
    return consume_tokens_ >= 1.0 - 1e-6;
}

void MultiQueueBlockGenerator::charge_consume() {
    if (config_.consume_per_record == Duration::zero()) return;
    consume_tokens_ -= 1.0;
}

void MultiQueueBlockGenerator::schedule_consume_resume() {
    if (consume_timer_.active() || can_consume()) return;
    const double deficit = 1.0 - consume_tokens_;
    // Round up (plus a microsecond of slack) so the timer never fires
    // before a whole token has accumulated.
    const Duration wait =
        Duration::from_seconds(deficit * config_.consume_per_record.as_seconds()) +
        Duration::micros(1);
    consume_timer_ = sim_.schedule_timer(wait, [this] { pump(); });
}

void MultiQueueBlockGenerator::reset_block_state() {
    if (pending_quotas_) {
        // A committed channel-configuration update takes effect at the next
        // block boundary; every OSN consumed it at the same log position, so
        // every OSN switches at the same block number.
        config_.quotas = std::move(*pending_quotas_);
        pending_quotas_.reset();
        ++config_updates_;
    }
    remaining_ = config_.quotas;
    ttc_flag_.assign(subs_.size(), false);
    for (auto& bucket : buckets_) bucket.clear();
    collected_ = 0;
    ttc_sent_ = false;
    any_tx_seen_ = false;
    timer_.cancel();
}

bool MultiQueueBlockGenerator::scan_once() {
    // One pass of Algorithm 1's level loop (highest priority first).
    bool progressed = false;
    const std::size_t n = subs_.size();
    for (std::size_t i = 0; i < n; ++i) {
        // Consume control markers that precede real traffic even on queues
        // this block will not read (zero-quota / already-TTC'd levels):
        // stale TTCs from past blocks, and duplicate TTCs for this block.
        // Otherwise a best-effort queue whose front is an old marker would
        // hide its transactions from the timer-arming check forever.
        while (can_consume() && subs_[i]->has_ready() && subs_[i]->peek().is_ttc() &&
               subs_[i]->peek().ttc_block <= block_number_) {
            charge_consume();
            const OrderedRecord marker = subs_[i]->pop();
            progressed = true;
            if (marker.ttc_block < block_number_) {
                ++stale_ttcs_;
            } else if (!ttc_flag_[i]) {
                ttc_flag_[i] = true;
            }
            // else: duplicate TTC for this block — ignored (paper §3.3).
        }

        // READ_QUEUE(i, remaining_[i], block_number_) — Algorithm 2.
        while (!ttc_flag_[i] && remaining_[i] > 0 && subs_[i]->has_ready() &&
               can_consume()) {
            const OrderedRecord& rec = subs_[i]->peek();
            if (rec.is_ttc()) {
                if (rec.ttc_block < block_number_) {
                    charge_consume();
                    subs_[i]->pop();  // stale marker from an earlier block
                    ++stale_ttcs_;
                    progressed = true;
                    continue;
                }
                if (rec.ttc_block > block_number_) {
                    break;  // belongs to a future block; leave unconsumed
                }
                charge_consume();
                subs_[i]->pop();  // first TTC for this block: stop this queue
                ttc_flag_[i] = true;
                progressed = true;
                break;
            }
            if (rec.is_config()) {
                charge_consume();
                // Stage the new quotas; they do not occupy a transaction
                // slot and apply from the next block.  Later updates in the
                // same block override earlier ones.
                pending_quotas_ = subs_[i]->pop().new_quotas;
                progressed = true;
                continue;
            }
            charge_consume();
            buckets_[i].push_back(rec.envelope);
            if (trace_) {
                obs::TraceEvent ev;
                ev.at = sim_.now();
                ev.type = obs::EventType::kDequeue;
                ev.actor_kind = obs::ActorKind::kOsn;
                ev.actor = trace_actor_;
                ev.tx = rec.envelope->tx_id().value();
                ev.priority = static_cast<PriorityLevel>(i);
                ev.block = block_number_;
                trace_->emit(ev);
            }
            if (audit_) {
                audit_->on_dequeue(static_cast<PriorityLevel>(i),
                                   rec.envelope->tx_id().value(), sim_.now());
            }
            subs_[i]->pop();
            --remaining_[i];
            ++collected_;
            any_tx_seen_ = true;
            progressed = true;
        }

        // Surplus transfer (Algorithm 1 lines 17-23): a TTC'd level hands its
        // leftover quota to the highest-priority level not yet TTC'd.
        if (ttc_flag_[i] && remaining_[i] > 0) {
            std::size_t h = n;
            for (std::size_t j = 0; j < n; ++j) {
                if (!ttc_flag_[j]) {
                    h = j;
                    break;
                }
            }
            if (h != n) {
                ++quota_transfers_;
                if (trace_) {
                    obs::TraceEvent ev;
                    ev.at = sim_.now();
                    ev.type = obs::EventType::kQuotaTransfer;
                    ev.actor_kind = obs::ActorKind::kOsn;
                    ev.actor = trace_actor_;
                    ev.priority = static_cast<PriorityLevel>(i);  // from
                    ev.block = block_number_;
                    ev.value = h;                                 // to
                    ev.value2 = remaining_[i];                    // slots
                    trace_->emit(ev);
                }
                remaining_[h] += remaining_[i];
                remaining_[i] = 0;
                progressed = true;
            }
        }
    }
    return progressed;
}

bool MultiQueueBlockGenerator::cut_ready() const {
    // Paper cut condition 1: every level's quota satisfied.
    bool all_quota = true;
    // Paper cut condition 2: TTC received on every queue.
    bool all_ttc = true;
    for (std::size_t i = 0; i < subs_.size(); ++i) {
        if (remaining_[i] != 0) all_quota = false;
        if (!ttc_flag_[i]) all_ttc = false;
    }
    return all_quota || all_ttc;
}

void MultiQueueBlockGenerator::maybe_arm_timer() {
    if (timer_.active() || ttc_sent_) return;
    // Fabric arms the batch timer on the first message of a batch.  Beyond
    // collected transactions, a transaction waiting in a zero-quota
    // (best-effort) queue must also arm the timer, or a lone low-priority
    // transaction would never be cut.
    bool pending_tx = any_tx_seen_;
    for (const auto& sub : subs_) {
        if (pending_tx) break;
        if (sub->has_ready() && !sub->peek().is_ttc()) pending_tx = true;
    }
    if (!pending_tx) return;
    timer_ = sim_.schedule_timer(config_.timeout + config_.clock_skew,
                                 [this] { on_timeout(); });
}

void MultiQueueBlockGenerator::on_timeout() {
    if (ttc_sent_) return;
    ttc_sent_ = true;
    ++ttcs_sent_;
    FL_TRACE("generator: TTC for block " << block_number_);
    send_ttc_(block_number_);
}

CutResult MultiQueueBlockGenerator::assemble() {
    CutResult result;
    result.number = block_number_;
    result.per_level_counts.reserve(buckets_.size());
    std::size_t total = 0;
    for (const auto& bucket : buckets_) total += bucket.size();
    result.transactions.reserve(total);
    for (auto& bucket : buckets_) {
        result.per_level_counts.push_back(static_cast<std::uint32_t>(bucket.size()));
        for (auto& env : bucket) {
            result.transactions.push_back(std::move(env));
        }
    }
    return result;
}

void MultiQueueBlockGenerator::pump() {
    if (pumping_) return;  // guard against reentrancy via callbacks
    pumping_ = true;
    for (;;) {
        while (scan_once()) {
        }
        if (!cut_ready()) {
            maybe_arm_timer();
            schedule_consume_resume();
            break;
        }
        // Determine the cut cause before resetting: quota-path iff every
        // reserved slot was filled.
        bool all_quota = true;
        for (const std::uint32_t r : remaining_) {
            if (r != 0) {
                all_quota = false;
                break;
            }
        }
        CutResult result = assemble();
        result.by_timeout = !all_quota;
        FL_DEBUG("generator: cut block " << result.number << " with "
                                         << result.transactions.size() << " txs"
                                         << (result.by_timeout ? " (timeout)" : " (size)"));
        if (trace_) {
            obs::TraceEvent ev;
            ev.at = sim_.now();
            ev.type = obs::EventType::kBlockCut;
            ev.actor_kind = obs::ActorKind::kOsn;
            ev.actor = trace_actor_;
            ev.block = result.number;
            ev.value = result.transactions.size();
            ev.value2 = result.by_timeout ? 1 : 0;
            trace_->emit(ev);
        }
        ++blocks_cut_;
        ++block_number_;
        reset_block_state();
        on_cut_(std::move(result));
        // Loop: records for the next block may already be waiting.
    }
    pumping_ = false;
}

}  // namespace fl::orderer
