// Ordering Service Node (OSN).
//
// Receives endorsed envelopes broadcast by clients, runs the Priority
// Consolidator, produces each transaction into the Kafka-equivalent topic of
// its consolidated priority level, and independently runs the Multi-Queue
// Block Generator over all priority topics.  Cut blocks are assembled
// (hashes computed), chained, and delivered to the peers connected to this
// OSN.
//
// With `channel.priority_enabled == false` the same node degrades to the
// vanilla Fabric Kafka orderer: a single topic, no consolidation work, FIFO
// blocks — the baseline of every figure.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/signature.h"
#include "ledger/block.h"
#include "mq/broker.h"
#include "orderer/block_generator.h"
#include "orderer/consolidator.h"
#include "orderer/ordering_backend.h"
#include "orderer/record.h"
#include "policy/channel_config.h"
#include "sim/cpu.h"
#include "sim/network.h"

namespace fl::obs {
class TraceSink;
}

namespace fl::orderer {

struct OsnParams {
    unsigned cpu_parallelism = 4;

    /// Consume-loop cost per queue record — the ordering service's
    /// throughput bound.  2.13 ms/record puts capacity (~470 tps) right at
    /// the paper's 500 tps knee: below it the system is comfortable, at and
    /// above it queues grow in the ordering service's priority topics.
    Duration consume_per_record_cost = Duration::micros(2130);
    /// Extra consume-loop work per record in priority mode (multi-queue
    /// bookkeeping) — part of the scheme's measured overhead.
    Duration priority_consume_overhead = Duration::micros(10);

    /// Consume-loop prefetch burst (records); see GeneratorConfig.
    std::uint32_t consume_burst = 256;

    /// Per-envelope ingestion cost in baseline mode (no consolidation).
    Duration ingest_per_tx_cost = Duration::micros(20);
    /// Priority-mode extra work: consolidation bookkeeping per transaction
    /// plus signature verification per endorsement.
    Duration consolidate_per_tx_cost = Duration::micros(40);
    Duration consolidate_per_endorsement_cost = Duration::micros(25);

    /// Block assembly (hashing, serialization) — serial per OSN.
    Duration assembly_overhead_cost = Duration::micros(500);
    Duration assembly_per_tx_cost = Duration::micros(8);
    /// Extra per-block bookkeeping for the multi-queue generator.
    Duration multiqueue_per_block_cost = Duration::micros(200);

    /// This OSN's local-clock offset (the paper's unsynchronized timers).
    Duration clock_skew = Duration::zero();

    /// Verify endorsement signatures during consolidation (crash-fault
    /// orderers are trusted; committers re-verify regardless).
    bool verify_endorsements = false;

    /// Fault-injection: a byzantine orderer that stamps every transaction
    /// with the highest priority instead of the consolidated value.  The
    /// paper's §3.3 byzantine note: committers re-derive the consolidation
    /// from the signed endorser votes, so such promotions are invalidated
    /// at validation time (kBadPriorityConsolidation).
    bool byzantine_promote_all = false;
};

class Osn {
public:
    using BrokerT = mq::Broker<OrderedRecord>;

    /// Primary constructor: the OSN orders through any OrderingBackend
    /// (Kafka-style broker or the Raft cluster, DESIGN.md §15).
    Osn(sim::Simulator& sim, sim::Network& net, OrderingBackend& backend,
        const crypto::KeyStore& keys, const policy::ChannelConfig& channel,
        OsnParams params, OsnId id, NodeId node);

    /// Convenience overload for direct-broker call sites (unit tests, the
    /// pre-refactor API): owns a MqOrderingBackend adapter internally.
    Osn(sim::Simulator& sim, sim::Network& net, BrokerT& broker,
        const crypto::KeyStore& keys, const policy::ChannelConfig& channel,
        OsnParams params, OsnId id, NodeId node);

    Osn(const Osn&) = delete;
    Osn& operator=(const Osn&) = delete;

    /// Subscribes to the channel topics and starts the block generator.
    /// Topics must already exist on the broker.
    void start();

    /// Fault injection: crash the OSN.  All volatile ordering state (block
    /// generator, consume positions, chained hashes) is lost; the broker log
    /// — the durable state in the Kafka design — survives.  In-flight CPU
    /// work is invalidated via an epoch counter.  Idempotent.
    void crash();

    /// Fault injection: restart after a crash.  Re-subscribes to every topic
    /// from offset 0 and replays the log, Kafka-style: cuts are determined
    /// by log positions alone, so the rebuilt chain must match what was cut
    /// before the crash (verified against the pre-crash hashes; replayed
    /// blocks are not re-delivered to peers).  Idempotent.
    void restart();

    /// Client entry point (called after client->OSN network delay).
    void broadcast(std::shared_ptr<const ledger::Envelope> envelope);

    /// Registers a peer delivery target; blocks are pushed over the network.
    void connect_peer(NodeId peer_node,
                      std::function<void(std::shared_ptr<const ledger::Block>)> deliver);

    /// Submits a channel-configuration transaction changing the block
    /// formation policy at run time (paper §3.3's two motivating scenarios;
    /// their prototype left this unimplemented).  The update is produced
    /// into the highest-priority queue — §4: configuration transactions
    /// execute at the highest priority — so every OSN applies it at the
    /// same block boundary.  Requires priority mode and a policy with the
    /// same number of levels.  Note: delivery assumes the top level keeps a
    /// non-zero quota (true for every practical policy).
    void submit_config_update(const policy::BlockFormationPolicy& new_policy);

    /// Attaches a trace sink (null detaches); forwarded to the block
    /// generator, so this works both before and after start().
    void set_trace(obs::TraceSink* sink);

    /// Attaches the fairness-audit accountant (null detaches); forwarded to
    /// the block generator like set_trace, and re-forwarded on restart().
    void set_audit(obs::audit::AuditAccountant* audit);

    [[nodiscard]] OsnId id() const { return id_; }
    [[nodiscard]] NodeId node() const { return node_; }

    // -- statistics ---------------------------------------------------------
    [[nodiscard]] bool alive() const { return alive_; }
    [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
    [[nodiscard]] std::uint64_t restarts() const { return restarts_; }
    /// Envelopes that arrived while crashed (clients must resubmit).
    [[nodiscard]] std::uint64_t dropped_broadcasts() const { return dropped_broadcasts_; }
    /// Replayed blocks whose hash differed from the pre-crash chain — any
    /// non-zero value is a determinism bug (asserted by the chaos tests).
    [[nodiscard]] std::uint64_t replay_hash_mismatches() const {
        return replay_hash_mismatches_;
    }
    [[nodiscard]] std::uint64_t envelopes_received() const { return received_; }
    [[nodiscard]] std::uint64_t consolidation_failures() const { return consolidation_failures_; }
    [[nodiscard]] std::uint64_t blocks_delivered() const { return blocks_delivered_; }
    [[nodiscard]] const MultiQueueBlockGenerator* generator() const {
        return generator_.get();
    }
    /// Header hashes of all blocks this OSN has cut (consistency checks).
    [[nodiscard]] const std::vector<crypto::Digest>& block_hashes() const {
        return block_hashes_;
    }
    /// Per-level counts across all cut blocks.
    [[nodiscard]] const std::vector<std::uint64_t>& level_totals() const {
        return level_totals_;
    }

private:
    struct PeerRoute {
        NodeId node;
        std::function<void(std::shared_ptr<const ledger::Block>)> deliver;
    };

    Osn(sim::Simulator& sim, sim::Network& net,
        std::unique_ptr<OrderingBackend> owned, OrderingBackend* external,
        const crypto::KeyStore& keys, const policy::ChannelConfig& channel,
        OsnParams params, OsnId id, NodeId node);

    void send_ttc(BlockNumber block);
    void on_cut(CutResult result);

    sim::Simulator& sim_;
    sim::Network& net_;
    std::unique_ptr<OrderingBackend> owned_backend_;  ///< broker-overload adapter
    OrderingBackend& ordering_;
    const policy::ChannelConfig& channel_;
    OsnParams params_;
    OsnId id_;
    NodeId node_;

    sim::CpuStation ingest_cpu_;
    sim::CpuStation assembly_cpu_;  // parallelism 1: blocks assemble in order
    std::optional<Consolidator> consolidator_;
    std::unique_ptr<MultiQueueBlockGenerator> generator_;
    std::vector<PeerRoute> peers_;

    std::optional<crypto::Digest> last_hash_;
    std::vector<crypto::Digest> block_hashes_;
    std::vector<std::uint64_t> level_totals_;

    bool alive_ = true;
    /// Bumped on crash and restart; CPU-station lambdas capture the value at
    /// submission and no-op when it no longer matches (stale work).
    std::uint64_t epoch_ = 0;
    /// Pre-crash chain, moved out of block_hashes_ on restart; replayed
    /// blocks are checked against it and not re-delivered.
    std::vector<crypto::Digest> replay_expected_;
    /// Blocks whose per-level counts were already added to level_totals_
    /// (high-water mark so replay does not double-count).
    std::uint64_t levels_counted_ = 0;
    std::uint64_t crashes_ = 0;
    std::uint64_t restarts_ = 0;
    std::uint64_t dropped_broadcasts_ = 0;
    std::uint64_t replay_hash_mismatches_ = 0;

    std::uint64_t received_ = 0;
    std::uint64_t consolidation_failures_ = 0;
    std::uint64_t blocks_delivered_ = 0;

    obs::TraceSink* trace_ = nullptr;
    obs::audit::AuditAccountant* audit_ = nullptr;
};

}  // namespace fl::orderer
