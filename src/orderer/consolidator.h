// Priority Consolidator (paper §3.2): the OSN-side step that merges the
// priorities signed by individual endorsers into the single value that
// selects the transaction's queue.
//
// The consolidator optionally verifies endorsement signatures first (a
// crash-fault orderer is trusted to do this honestly; committers re-check
// regardless — see §3.3's note on byzantine configurations).
#pragma once

#include <memory>
#include <optional>

#include "crypto/signature.h"
#include "ledger/transaction.h"
#include "policy/channel_config.h"
#include "policy/consolidation_policy.h"

namespace fl::orderer {

struct ConsolidationResult {
    bool ok = false;
    PriorityLevel priority = kUnassignedPriority;
    std::string error;
};

class Consolidator {
public:
    Consolidator(const policy::ChannelConfig& channel, const crypto::KeyStore& keys,
                 bool verify_signatures = true);

    /// Consolidates the endorser votes of `envelope`.  Only endorsements
    /// with valid signatures vote when verification is on.
    [[nodiscard]] ConsolidationResult consolidate(const ledger::Envelope& envelope) const;

    [[nodiscard]] const policy::ConsolidationPolicy& policy() const { return *policy_; }

private:
    const policy::ChannelConfig& channel_;
    const crypto::KeyStore& keys_;
    std::unique_ptr<policy::ConsolidationPolicy> policy_;
    bool verify_signatures_;
};

}  // namespace fl::orderer
