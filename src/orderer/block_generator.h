// Multi-Queue Block Generator — the paper's Algorithm 1 + Algorithm 2,
// implemented event-driven over the ordering-service message queues.
//
// One generator instance runs inside every OSN.  It consumes the N priority
// topics of its channel through in-order subscriptions and assembles blocks:
//
//   * each block reserves TR[i] slots for priority level i (the block
//     formation policy quotas, summing to the block size BS);
//   * READ_QUEUE semantics (Algorithm 2): a queue is read until its quota is
//     met, it runs dry, or the first TTC marker for the current block is
//     consumed;
//   * when a level sees its TTC with quota left over, the surplus transfers
//     to the highest-priority level that has not seen a TTC yet (Algorithm 1
//     lines 17-23);
//   * the block is cut when every level has either exhausted its quota or
//     seen the block's TTC — i.e. the paper's two cut conditions;
//   * when this OSN's local batch timer (armed by the first transaction of
//     the block, as in Fabric) expires, it produces a TTC_BN into every
//     queue via `ttc_sender`; duplicate TTCs for the same block are consumed
//     and ignored, TTCs for past blocks are skipped as stale, and TTCs for
//     future blocks are left unconsumed.
//
// Within a block the generator preserves FIFO order inside each priority
// level and emits levels in priority order — a canonical layout that is
// byte-identical across OSNs, so the chain hash matches everywhere.
//
// The vanilla-Fabric baseline is the N == 1 special case (single queue,
// quota == BS), which makes overhead comparisons apples-to-apples.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "mq/broker.h"
#include "orderer/record.h"
#include "sim/simulator.h"

namespace fl::obs {
class TraceSink;
}
namespace fl::obs::audit {
class AuditAccountant;
}

namespace fl::orderer {

struct GeneratorConfig {
    /// Per-level reserved quotas TR (0 = best-effort level); sum <= BS.
    std::vector<std::uint32_t> quotas;
    /// Maximum transactions per block (BS).
    std::uint32_t block_size = 500;
    /// Local batch timeout (armed by the first transaction of a block).
    Duration timeout = Duration::seconds(1);
    /// Constant offset modelling this OSN's unsynchronized local clock.
    Duration clock_skew = Duration::zero();
    /// Time the OSN's consume loop spends per record (unmarshalling,
    /// envelope checks, batching).  This is the ordering service's
    /// throughput bound: at 2 ms/record the orderer sustains 500 tps and
    /// excess load backs up *in the queues*, upstream of block formation —
    /// which is where the multi-queue generator can discriminate by
    /// priority.  Zero disables the bound (unit tests).
    Duration consume_per_record = Duration::zero();
    /// Token-bucket burst: records the consumers may have pre-processed
    /// while the generator was arrival-limited (Kafka consumers prefetch),
    /// so a post-timeout surplus dance does not stall the pipeline.  Sized
    /// like a per-topic prefetch depth (~BS/2 across topics); much larger
    /// values would let sustained overloads hide inside the bank.
    std::uint32_t consume_burst = 256;
};

/// One cut block, pre-canonicalization already applied.
struct CutResult {
    BlockNumber number = 0;
    std::vector<std::shared_ptr<const ledger::Envelope>> transactions;
    bool by_timeout = false;
    /// transactions-per-level actually included (diagnostics/tests).
    std::vector<std::uint32_t> per_level_counts;
};

class MultiQueueBlockGenerator {
public:
    using Subscriptions =
        std::vector<std::shared_ptr<mq::Subscription<OrderedRecord>>>;
    using TtcSender = std::function<void(BlockNumber)>;
    using CutCallback = std::function<void(CutResult)>;

    /// `subs[i]` must be the subscription for priority level i.  `send_ttc`
    /// produces a TTC for the given block into every queue.  `on_cut` fires
    /// each time a block is assembled.
    MultiQueueBlockGenerator(sim::Simulator& sim, GeneratorConfig config,
                             Subscriptions subs, TtcSender send_ttc,
                             CutCallback on_cut);

    MultiQueueBlockGenerator(const MultiQueueBlockGenerator&) = delete;
    MultiQueueBlockGenerator& operator=(const MultiQueueBlockGenerator&) = delete;

    ~MultiQueueBlockGenerator();

    /// Drives Algorithm 1 as far as currently-available records allow.
    /// Invoked automatically when subscriptions signal new data; exposed for
    /// tests.
    void pump();

    /// Attaches a trace sink (null detaches).  `actor` labels the events
    /// with the owning OSN's id.  Emit sites are branch-on-null, so a
    /// detached generator does no extra work (see obs/trace.h).
    void set_trace(obs::TraceSink* sink, std::uint64_t actor) {
        trace_ = sink;
        trace_actor_ = actor;
    }

    /// Attaches the fairness-audit accountant (null detaches).  The audit
    /// layer observes dequeues on exactly one OSN's generator (they all cut
    /// identical blocks; FabricNetwork wires OSN 0) and tx-id-dedups, so
    /// crash replay cannot double-count.
    void set_audit(obs::audit::AuditAccountant* audit) { audit_ = audit; }

    [[nodiscard]] BlockNumber current_block() const { return block_number_; }
    [[nodiscard]] std::uint64_t blocks_cut() const { return blocks_cut_; }
    [[nodiscard]] std::uint64_t ttcs_sent() const { return ttcs_sent_; }
    [[nodiscard]] std::uint64_t stale_ttcs_skipped() const { return stale_ttcs_; }
    /// Algorithm 1 lines 17-23 surplus hand-offs executed so far.
    [[nodiscard]] std::uint64_t quota_transfers() const { return quota_transfers_; }
    /// Per-level subscriptions (observability: queue-depth gauges read the
    /// consumed counts off these).
    [[nodiscard]] const Subscriptions& subscriptions() const { return subs_; }
    [[nodiscard]] const std::vector<std::uint32_t>& remaining_quotas() const {
        return remaining_;
    }
    /// Quotas in force for the block currently being generated (reflects
    /// committed runtime configuration updates).
    [[nodiscard]] const std::vector<std::uint32_t>& current_quotas() const {
        return config_.quotas;
    }
    [[nodiscard]] std::uint64_t config_updates_applied() const {
        return config_updates_;
    }

private:
    [[nodiscard]] bool scan_once();       ///< one pass over all levels; true if progressed
    [[nodiscard]] bool cut_ready() const;
    void reset_block_state();
    void maybe_arm_timer();
    void on_timeout();
    CutResult assemble();
    /// Consume-loop rate limiting: false when the budget is exhausted (a
    /// resume is then scheduled automatically).
    [[nodiscard]] bool can_consume();
    void charge_consume();
    void refill_tokens();
    void schedule_consume_resume();

    sim::Simulator& sim_;
    GeneratorConfig config_;
    Subscriptions subs_;
    TtcSender send_ttc_;
    CutCallback on_cut_;

    BlockNumber block_number_ = 0;
    std::vector<std::uint32_t> remaining_;  // TR, mutated by reads/transfers
    std::vector<bool> ttc_flag_;            // TTCFLAG
    std::vector<std::vector<std::shared_ptr<const ledger::Envelope>>> buckets_;
    std::uint32_t collected_ = 0;
    bool ttc_sent_ = false;
    bool any_tx_seen_ = false;  // timer arming condition
    sim::TimerHandle timer_;
    bool pumping_ = false;
    double consume_tokens_ = 0.0;     // token bucket (records)
    TimePoint consume_refill_at_;     // last refill time
    sim::TimerHandle consume_timer_;  // pending budget-resume wakeup

    /// Staged runtime policy change (applies from the next block; paper
    /// §3.3's "modify the block formation policy during operation").
    std::optional<std::vector<std::uint32_t>> pending_quotas_;

    std::uint64_t blocks_cut_ = 0;
    std::uint64_t ttcs_sent_ = 0;
    std::uint64_t stale_ttcs_ = 0;
    std::uint64_t config_updates_ = 0;
    std::uint64_t quota_transfers_ = 0;

    obs::TraceSink* trace_ = nullptr;  // null unless a trace was requested
    std::uint64_t trace_actor_ = 0;
    obs::audit::AuditAccountant* audit_ = nullptr;
};

}  // namespace fl::orderer
