// OrderingBackend — the pluggable ordering substrate behind the OSNs.
//
// The OSNs (and everything above them) only ever needed four things from the
// Kafka-style `fl::mq::Broker`:
//
//   1. totally-ordered, offset-addressed append logs (one per priority
//      level), fed by `produce` after producer->service network delay;
//   2. offset-ordered subscriptions that replay from any committed offset —
//      the hook OSN crash/restart recovery is built on;
//   3. random-access reads over the committed prefix (consistency checks);
//   4. an unavailability surface for fault injection (`set_down`, deferred
//      appends) plus the type-erased append hook the observability and
//      audit layers share.
//
// This interface captures exactly that contract, so the broker becomes one
// implementation (`MqOrderingBackend`, a thin adapter) and the deterministic
// simulated-time Raft cluster (`fl::raft::RaftOrderingBackend`, DESIGN.md
// §15) the second.  The contract every implementation must honor:
//
//   - appends are atomic: offset assignment, the append hook and subscriber
//     fanout happen at one simulated instant, in arrival order;
//   - a record is fanned out to each live subscriber exactly once, over the
//     reliable transport, and `read`/`log_of` only ever expose records that
//     are durable (mq: appended; raft: replicated to a majority);
//   - all randomness comes from streams owned by the implementation, so a
//     fault-free run is byte-identical across backends and `--threads`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "mq/broker.h"
#include "orderer/record.h"

namespace fl::orderer {

/// Backend selection for NetworkConfig (DESIGN.md §15).
enum class OrderingBackendKind : std::uint8_t {
    kMq = 0,  ///< single Kafka-style broker (the original substrate)
    kRaft,    ///< deterministic simulated-time Raft cluster
};

[[nodiscard]] inline const char* to_string(OrderingBackendKind kind) {
    switch (kind) {
    case OrderingBackendKind::kMq: return "mq";
    case OrderingBackendKind::kRaft: return "raft";
    }
    return "unknown";
}

class OrderingBackend {
public:
    using Record = OrderedRecord;
    using SubscriptionT = mq::Subscription<OrderedRecord>;
    /// Fired synchronously on every durable append: (topic, offset, record,
    /// wire size).  Single slot, same semantics as Broker::AppendHook.
    using AppendHook = std::function<void(const std::string&, mq::Offset,
                                          const OrderedRecord&, std::size_t)>;

    virtual ~OrderingBackend() = default;

    /// Creates a topic; idempotent.
    virtual void create_topic(const std::string& name) = 0;
    [[nodiscard]] virtual bool has_topic(const std::string& name) const = 0;

    /// Appends `value` after producer->service network delay and fans it out
    /// to all subscribers once durable.
    virtual void produce(const std::string& topic, NodeId producer,
                         std::size_t size_bytes, OrderedRecord value) = 0;

    /// Appends without the producer-side network hop (unit tests).  Returns
    /// the offset the record will occupy once durable, accounting for
    /// appends still in flight (deferred or not yet committed).
    virtual mq::Offset produce_local(const std::string& topic,
                                     std::size_t size_bytes,
                                     OrderedRecord value) = 0;

    /// Subscribes `consumer_node` from `from_offset`; the committed suffix
    /// is replayed with network delay.  Throws std::out_of_range when
    /// `from_offset` lies past the end of the topic.
    virtual std::shared_ptr<SubscriptionT> subscribe(const std::string& topic,
                                                     NodeId consumer_node,
                                                     mq::Offset from_offset = 0) = 0;

    /// Random-access read of one durable record.  Throws
    /// std::invalid_argument (unknown topic) / std::out_of_range (past end).
    [[nodiscard]] virtual const OrderedRecord& read(const std::string& topic,
                                                    mq::Offset offset) const = 0;
    [[nodiscard]] virtual std::size_t topic_size(const std::string& topic) const = 0;
    [[nodiscard]] virtual const std::vector<OrderedRecord>& log_of(
        const std::string& topic) const = 0;

    /// Network address producers/consumers talk to (the broker node, or the
    /// Raft cluster's bootstrap contact).
    [[nodiscard]] virtual NodeId node() const = 0;

    virtual void set_on_append(AppendHook hook) = 0;

    // -- fault surface ------------------------------------------------------
    /// Opens/closes a whole-service unavailability window.  mq: broker
    /// outage with arrival-order deferred flush.  Raft: every node crashes
    /// (durable state survives) and recovers, with buffered submissions
    /// re-ordered once a leader re-emerges.
    virtual void set_down(bool down) = 0;
    [[nodiscard]] virtual bool is_down() const = 0;
    [[nodiscard]] virtual std::uint64_t outages() const = 0;
    /// Appends that arrived while the service could not commit them
    /// (lifetime total).
    [[nodiscard]] virtual std::uint64_t deferred_appends_total() const = 0;
};

/// Adapter presenting the Kafka-style broker through the interface.  Pure
/// forwarding — a call through the adapter schedules exactly the events the
/// direct call did, so pre-refactor byte output is preserved.
class MqOrderingBackend final : public OrderingBackend {
public:
    explicit MqOrderingBackend(mq::Broker<OrderedRecord>& broker)
        : broker_(broker) {}

    void create_topic(const std::string& name) override {
        broker_.create_topic(name);
    }
    [[nodiscard]] bool has_topic(const std::string& name) const override {
        return broker_.has_topic(name);
    }
    void produce(const std::string& topic, NodeId producer, std::size_t size_bytes,
                 OrderedRecord value) override {
        broker_.produce(topic, producer, size_bytes, std::move(value));
    }
    mq::Offset produce_local(const std::string& topic, std::size_t size_bytes,
                             OrderedRecord value) override {
        return broker_.produce_local(topic, size_bytes, std::move(value));
    }
    std::shared_ptr<SubscriptionT> subscribe(const std::string& topic,
                                             NodeId consumer_node,
                                             mq::Offset from_offset = 0) override {
        return broker_.subscribe(topic, consumer_node, from_offset);
    }
    [[nodiscard]] const OrderedRecord& read(const std::string& topic,
                                            mq::Offset offset) const override {
        return broker_.read(topic, offset);
    }
    [[nodiscard]] std::size_t topic_size(const std::string& topic) const override {
        return broker_.topic_size(topic);
    }
    [[nodiscard]] const std::vector<OrderedRecord>& log_of(
        const std::string& topic) const override {
        return broker_.log_of(topic);
    }
    [[nodiscard]] NodeId node() const override { return broker_.node(); }
    void set_on_append(AppendHook hook) override {
        broker_.set_on_append(std::move(hook));
    }
    void set_down(bool down) override { broker_.set_down(down); }
    [[nodiscard]] bool is_down() const override { return broker_.is_down(); }
    [[nodiscard]] std::uint64_t outages() const override { return broker_.outages(); }
    [[nodiscard]] std::uint64_t deferred_appends_total() const override {
        return broker_.deferred_appends_total();
    }

private:
    mq::Broker<OrderedRecord>& broker_;
};

}  // namespace fl::orderer
