#include "orderer/osn.h"

#include <stdexcept>

#include "common/log.h"
#include "obs/trace.h"

namespace fl::orderer {

Osn::Osn(sim::Simulator& sim, sim::Network& net, OrderingBackend& backend,
         const crypto::KeyStore& keys, const policy::ChannelConfig& channel,
         OsnParams params, OsnId id, NodeId node)
    : Osn(sim, net, nullptr, &backend, keys, channel, params, id, node) {}

Osn::Osn(sim::Simulator& sim, sim::Network& net, BrokerT& broker,
         const crypto::KeyStore& keys, const policy::ChannelConfig& channel,
         OsnParams params, OsnId id, NodeId node)
    : Osn(sim, net, std::make_unique<MqOrderingBackend>(broker), nullptr, keys,
          channel, params, id, node) {}

Osn::Osn(sim::Simulator& sim, sim::Network& net,
         std::unique_ptr<OrderingBackend> owned, OrderingBackend* external,
         const crypto::KeyStore& keys, const policy::ChannelConfig& channel,
         OsnParams params, OsnId id, NodeId node)
    : sim_(sim),
      net_(net),
      owned_backend_(std::move(owned)),
      ordering_(external != nullptr ? *external : *owned_backend_),
      channel_(channel),
      params_(params),
      id_(id),
      node_(node),
      ingest_cpu_(sim, params.cpu_parallelism),
      assembly_cpu_(sim, 1) {
    if (channel_.priority_enabled) {
        consolidator_.emplace(channel_, keys, params_.verify_endorsements);
    }
    level_totals_.assign(channel_.effective_levels(), 0);
}

void Osn::start() {
    const std::uint32_t levels = channel_.effective_levels();

    GeneratorConfig gen_cfg;
    gen_cfg.block_size = channel_.block_size;
    gen_cfg.timeout = channel_.block_timeout;
    gen_cfg.clock_skew = params_.clock_skew;
    gen_cfg.consume_per_record = params_.consume_per_record_cost;
    gen_cfg.consume_burst = params_.consume_burst;
    if (channel_.priority_enabled &&
        gen_cfg.consume_per_record > Duration::zero()) {
        gen_cfg.consume_per_record += params_.priority_consume_overhead;
    }
    if (channel_.priority_enabled) {
        gen_cfg.quotas = channel_.block_policy.quotas(channel_.block_size);
    } else {
        gen_cfg.quotas = {channel_.block_size};
    }

    MultiQueueBlockGenerator::Subscriptions subs;
    subs.reserve(levels);
    for (std::uint32_t level = 0; level < levels; ++level) {
        subs.push_back(ordering_.subscribe(channel_.topic_for_level(level), node_));
    }

    generator_ = std::make_unique<MultiQueueBlockGenerator>(
        sim_, std::move(gen_cfg), std::move(subs),
        [this](BlockNumber bn) { send_ttc(bn); },
        [this](CutResult result) { on_cut(std::move(result)); });
    generator_->set_trace(trace_, id_.value());
    generator_->set_audit(audit_);
}

void Osn::set_trace(obs::TraceSink* sink) {
    trace_ = sink;
    if (generator_) generator_->set_trace(trace_, id_.value());
}

void Osn::set_audit(obs::audit::AuditAccountant* audit) {
    audit_ = audit;
    if (generator_) generator_->set_audit(audit_);
}

void Osn::crash() {
    if (!alive_) return;
    alive_ = false;
    ++epoch_;
    ++crashes_;
    // Volatile state dies with the process.  Destroying the generator drops
    // its subscriptions; the broker prunes the expired weak references, so
    // no more records are pushed to this OSN until it re-subscribes.
    generator_.reset();
    last_hash_.reset();
    FL_DEBUG("osn " << id_.value() << ": crashed");
}

void Osn::restart() {
    if (alive_) return;
    alive_ = true;
    ++epoch_;
    ++restarts_;
    // The pre-crash chain becomes the replay expectation: Kafka-style
    // recovery re-consumes every topic from offset 0 and must cut the exact
    // same blocks, because cuts are determined by log positions alone.
    replay_expected_ = std::move(block_hashes_);
    block_hashes_.clear();
    FL_DEBUG("osn " << id_.value() << ": restarting, replaying "
                    << replay_expected_.size() << " blocks");
    start();
}

void Osn::broadcast(std::shared_ptr<const ledger::Envelope> envelope) {
    if (!alive_) {
        // A real crashed process never sees the request; the client's
        // resubmission logic (or a different OSN) must pick it up.
        ++dropped_broadcasts_;
        return;
    }
    ++received_;
    Duration cost;
    if (channel_.priority_enabled) {
        cost = params_.consolidate_per_tx_cost +
               params_.consolidate_per_endorsement_cost *
                   static_cast<std::int64_t>(envelope->endorsements.size());
    } else {
        cost = params_.ingest_per_tx_cost;
    }
    ingest_cpu_.submit(cost, [this, epoch = epoch_,
                              envelope = std::move(envelope)]() mutable {
        if (epoch != epoch_) return;  // crashed while this was in flight
        PriorityLevel level = 0;
        if (channel_.priority_enabled) {
            const ConsolidationResult result = consolidator_->consolidate(*envelope);
            if (!result.ok) {
                ++consolidation_failures_;
                FL_DEBUG("osn " << id_.value() << ": consolidation failed for tx "
                                << envelope->tx_id().value() << ": " << result.error);
                if (trace_) {
                    obs::TraceEvent ev;
                    ev.at = sim_.now();
                    ev.type = obs::EventType::kConsolidateFail;
                    ev.actor_kind = obs::ActorKind::kOsn;
                    ev.actor = id_.value();
                    ev.tx = envelope->tx_id().value();
                    trace_->emit(ev);
                }
                return;  // rejected before ordering, as an invalid submission
            }
            level = params_.byzantine_promote_all ? 0 : result.priority;
            if (trace_) {
                obs::TraceEvent ev;
                ev.at = sim_.now();
                ev.type = obs::EventType::kConsolidate;
                ev.actor_kind = obs::ActorKind::kOsn;
                ev.actor = id_.value();
                ev.tx = envelope->tx_id().value();
                ev.priority = level;
                trace_->emit(ev);
            }
            // Stamp the consolidated priority on the ordered copy.
            auto stamped = std::make_shared<ledger::Envelope>(*envelope);
            stamped->consolidated_priority = level;
            envelope = std::move(stamped);
        }
        const std::size_t wire = envelope->wire_size();
        ordering_.produce(channel_.topic_for_level(level), node_, wire,
                        OrderedRecord::transaction(std::move(envelope)));
    });
}

void Osn::send_ttc(BlockNumber block) {
    const std::uint32_t levels = channel_.effective_levels();
    for (std::uint32_t level = 0; level < levels; ++level) {
        ordering_.produce(channel_.topic_for_level(level), node_, 24,
                        OrderedRecord::time_to_cut(block, id_));
    }
}

void Osn::on_cut(CutResult result) {
    // High-water guard: a post-restart replay re-cuts blocks 0..N, whose
    // per-level counts were already recorded before the crash.
    if (result.number >= levels_counted_) {
        for (std::size_t i = 0;
             i < result.per_level_counts.size() && i < level_totals_.size(); ++i) {
            level_totals_[i] += result.per_level_counts[i];
        }
        levels_counted_ = result.number + 1;
    }

    Duration cost = params_.assembly_overhead_cost +
                    params_.assembly_per_tx_cost *
                        static_cast<std::int64_t>(result.transactions.size());
    if (channel_.priority_enabled) {
        cost += params_.multiqueue_per_block_cost;
    }
    assembly_cpu_.submit(cost, [this, epoch = epoch_, result = std::move(result)] {
        if (epoch != epoch_) return;  // crashed while this was in flight
        std::vector<ledger::Envelope> txs;
        txs.reserve(result.transactions.size());
        for (const auto& env : result.transactions) {
            txs.push_back(*env);
        }
        ledger::Block block = ledger::make_block(
            result.number, last_hash_ ? &*last_hash_ : nullptr, std::move(txs));
        block.cut_at = sim_.now();
        block.cut_by_timeout = result.by_timeout;
        last_hash_ = block.header.hash();
        block_hashes_.push_back(*last_hash_);

        if (result.number < replay_expected_.size()) {
            // Replaying a block cut before the crash: the log determines the
            // cut, so the hash must match; peers already have it, so it is
            // not re-delivered (they would reject the duplicate anyway).
            if (*last_hash_ != replay_expected_[result.number]) {
                ++replay_hash_mismatches_;
                FL_DEBUG("osn " << id_.value() << ": replay hash mismatch at block "
                                << result.number);
            }
            return;
        }

        auto shared = std::make_shared<const ledger::Block>(std::move(block));
        for (const PeerRoute& route : peers_) {
            // Block delivery models an ordered reliable stream (gRPC Deliver)
            // — exempt from injected message faults.
            net_.send_reliable(node_, route.node, shared->wire_size(),
                               [deliver = route.deliver, shared] { deliver(shared); });
        }
        ++blocks_delivered_;
    });
}

void Osn::submit_config_update(const policy::BlockFormationPolicy& new_policy) {
    if (!channel_.priority_enabled) {
        throw std::logic_error("Osn::submit_config_update: priorities disabled");
    }
    if (new_policy.levels() != channel_.effective_levels()) {
        throw std::invalid_argument(
            "Osn::submit_config_update: level count mismatch");
    }
    OrderedRecord record =
        OrderedRecord::config_update(new_policy.quotas(channel_.block_size));
    const std::size_t wire = record.wire_size();
    ordering_.produce(channel_.topic_for_level(0), node_, wire, std::move(record));
}

void Osn::connect_peer(
    NodeId peer_node, std::function<void(std::shared_ptr<const ledger::Block>)> deliver) {
    peers_.push_back(PeerRoute{peer_node, std::move(deliver)});
}

}  // namespace fl::orderer
