#include "orderer/consolidator.h"

#include <vector>

#include "common/log.h"
#include "peer/endorser.h"

namespace fl::orderer {

Consolidator::Consolidator(const policy::ChannelConfig& channel,
                           const crypto::KeyStore& keys, bool verify_signatures)
    : channel_(channel),
      keys_(keys),
      policy_(policy::make_consolidation_policy(channel.consolidation_spec)),
      verify_signatures_(verify_signatures) {}

ConsolidationResult Consolidator::consolidate(const ledger::Envelope& envelope) const {
    ConsolidationResult out;
    std::vector<PriorityLevel> votes;
    votes.reserve(envelope.endorsements.size());
    for (const ledger::Endorsement& e : envelope.endorsements) {
        if (verify_signatures_ &&
            !peer::verify_endorsement(envelope.proposal, envelope.rwset, e, keys_)) {
            FL_TRACE("consolidator: tx " << envelope.tx_id().value()
                                         << " dropped endorsement by "
                                         << e.endorser_identity << " (bad signature)");
            continue;
        }
        votes.push_back(e.priority);
    }
    if (votes.empty()) {
        out.error = "no valid endorsements";
        FL_DEBUG("consolidator: tx " << envelope.tx_id().value()
                                     << " rejected: no valid endorsements");
        return out;
    }
    const std::optional<PriorityLevel> level =
        policy_->consolidate(votes, channel_.effective_levels());
    if (!level) {
        out.error = "consolidation policy unsatisfied (" + policy_->name() + ")";
        FL_DEBUG("consolidator: tx " << envelope.tx_id().value()
                                     << " rejected: policy " << policy_->name()
                                     << " unsatisfied over " << votes.size()
                                     << " votes");
        return out;
    }
    out.ok = true;
    out.priority = *level;
    FL_TRACE("consolidator: tx " << envelope.tx_id().value() << " -> level "
                                 << out.priority << " from " << votes.size()
                                 << " votes");
    return out;
}

}  // namespace fl::orderer
