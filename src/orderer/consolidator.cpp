#include "orderer/consolidator.h"

#include <vector>

#include "peer/endorser.h"

namespace fl::orderer {

Consolidator::Consolidator(const policy::ChannelConfig& channel,
                           const crypto::KeyStore& keys, bool verify_signatures)
    : channel_(channel),
      keys_(keys),
      policy_(policy::make_consolidation_policy(channel.consolidation_spec)),
      verify_signatures_(verify_signatures) {}

ConsolidationResult Consolidator::consolidate(const ledger::Envelope& envelope) const {
    ConsolidationResult out;
    std::vector<PriorityLevel> votes;
    votes.reserve(envelope.endorsements.size());
    for (const ledger::Endorsement& e : envelope.endorsements) {
        if (verify_signatures_ &&
            !peer::verify_endorsement(envelope.proposal, envelope.rwset, e, keys_)) {
            continue;
        }
        votes.push_back(e.priority);
    }
    if (votes.empty()) {
        out.error = "no valid endorsements";
        return out;
    }
    const std::optional<PriorityLevel> level =
        policy_->consolidate(votes, channel_.effective_levels());
    if (!level) {
        out.error = "consolidation policy unsatisfied (" + policy_->name() + ")";
        return out;
    }
    out.ok = true;
    out.priority = *level;
    return out;
}

}  // namespace fl::orderer
