#include "core/multi_channel.h"

#include <stdexcept>
#include <unordered_set>

#include "common/rng.h"
#include "obs/audit/fairness.h"
#include "obs/metric_registry.h"

namespace fl::core {

namespace {

double jain_of_u64(const std::vector<std::uint64_t>& counts) {
    std::vector<double> shares;
    shares.reserve(counts.size());
    for (std::uint64_t c : counts) shares.push_back(static_cast<double>(c));
    return obs::audit::jain_index(shares);
}

template <typename T>
T sum_of(const std::vector<T>& v) {
    T total{};
    for (const T& x : v) total += x;
    return total;
}

}  // namespace

ChannelId MultiChannelConfig::resolved_id(std::size_t index) const {
    const ChannelSpec& spec = channels.at(index);
    if (spec.id.value() != 0) return spec.id;
    return ChannelId{base.channel.id.value() + index};
}

NetworkConfig MultiChannelConfig::channel_config(std::size_t index) const {
    const ChannelSpec& spec = channels.at(index);
    NetworkConfig cfg = base;
    cfg.channel.id = resolved_id(index);
    if (spec.priority_enabled) cfg.channel.priority_enabled = *spec.priority_enabled;
    if (spec.priority_levels) cfg.channel.priority_levels = *spec.priority_levels;
    if (spec.block_policy) cfg.channel.block_policy = *spec.block_policy;
    if (spec.consolidation_spec) cfg.channel.consolidation_spec = *spec.consolidation_spec;
    if (spec.block_size) cfg.channel.block_size = *spec.block_size;
    if (spec.block_timeout) cfg.channel.block_timeout = *spec.block_timeout;
    if (spec.ordering_backend) cfg.ordering_backend = *spec.ordering_backend;
    return cfg;
}

void MultiChannelConfig::validate() const {
    if (channels.empty()) {
        throw std::invalid_argument(
            "MultiChannelConfig: at least one channel is required");
    }
    if (sync_window <= Duration::zero()) {
        throw std::invalid_argument(
            "MultiChannelConfig: sync_window must be positive");
    }
    std::unordered_set<std::uint64_t> ids;
    for (std::size_t i = 0; i < channels.size(); ++i) {
        if (!ids.insert(resolved_id(i).value()).second) {
            throw std::invalid_argument(
                "MultiChannelConfig: duplicate channel id " +
                std::to_string(resolved_id(i).value()));
        }
    }
}

MultiChannelConfig MultiChannelConfig::uniform(NetworkConfig base, std::size_t n) {
    MultiChannelConfig cfg;
    cfg.base = std::move(base);
    cfg.channels.assign(n, ChannelSpec{});
    return cfg;
}

std::uint64_t channel_seed(std::uint64_t run_seed, std::size_t index) {
    if (index == 0) return run_seed;  // 1-channel run == legacy bytes
    // Decorrelate from every other derive_seed consumer (sweep points use the
    // raw run seed as base) before drawing the per-channel stream.
    return derive_seed(run_seed ^ 0x4348414E4E454C53ull /* "CHANNELS" */,
                       static_cast<std::uint64_t>(index));
}

double CrossChannelMeter::channel_jain_overall() const {
    return jain_of_u64(committed_per_channel);
}

double CrossChannelMeter::client_jain_overall() const {
    return jain_of_u64(completed_per_client);
}

double CrossChannelMeter::org_cpu_jain_overall() const {
    return obs::audit::jain_index(endorse_cpu_per_org);
}

MultiChannelNetwork::MultiChannelNetwork(MultiChannelConfig config)
    : config_(std::move(config)) {
    config_.validate();
    nets_.reserve(config_.channel_count());
    for (std::size_t i = 0; i < config_.channel_count(); ++i) {
        NetworkConfig cfg = config_.channel_config(i);
        cfg.seed = channel_seed(config_.base.seed, i);
        nets_.push_back(std::make_unique<FabricNetwork>(std::move(cfg)));
    }
    const std::size_t n = nets_.size();
    prev_committed_.assign(n, 0);
    prev_org_cpu_.assign(config_.base.orgs, 0.0);
    prev_client_completed_.assign(config_.base.clients, 0);
    meter_.committed_per_channel.assign(n, 0);
    meter_.endorse_cpu_per_org.assign(config_.base.orgs, 0.0);
    meter_.completed_per_client.assign(config_.base.clients, 0);
}

void MultiChannelNetwork::register_metrics(obs::MetricRegistry& registry) {
    for (std::size_t i = 0; i < nets_.size(); ++i) {
        nets_[i]->register_metrics(
            registry, "ch" + std::to_string(channel_id(i).value()) + "_");
    }
}

std::uint64_t MultiChannelNetwork::run(ThreadPool* pool) {
    const std::int64_t w = config_.sync_window.as_nanos();
    const std::size_t n = nets_.size();
    std::vector<std::uint64_t> counts(n, 0);
    std::uint64_t executed = 0;

    // Composition with the intra-channel partitioned engine (DESIGN.md §17):
    // each channel advances via FabricNetwork::advance_until, which runs the
    // channel's own node-group windows inside this engine's cell.  The pool
    // is spent on whichever axis has the parallelism — across channels when
    // there are several, across one channel's node groups when there is one
    // (nesting both would stack fork-joins for no extra concurrency).
    ThreadPool* const intra_pool = n == 1 ? pool : nullptr;

    for (;;) {
        // Earliest pending event across channels decides the next window on
        // the origin-anchored grid; fully drained channels report max().
        TimePoint earliest = TimePoint::max();
        for (const auto& net : nets_) {
            const TimePoint t = net->next_event_time();
            if (t < earliest) earliest = t;
        }
        if (earliest == TimePoint::max()) break;

        const TimePoint window_end =
            TimePoint::from_nanos((earliest.as_nanos() / w + 1) * w);

        // Advance every channel to the window boundary.  Channels share no
        // state, so per-channel results cannot depend on the interleaving;
        // counts are written into pre-sized slots, never shared accumulators.
        if (pool != nullptr && n > 1) {
            parallel_for_each(*pool, n, [&](std::size_t c) {
                counts[c] = nets_[c]->advance_until(window_end, nullptr);
            });
        } else {
            for (std::size_t c = 0; c < n; ++c) {
                counts[c] = nets_[c]->advance_until(window_end, intra_pool);
            }
        }
        for (std::uint64_t c : counts) executed += c;

        ++windows_;
        boundary_sample(window_end);
    }
    return executed;
}

void MultiChannelNetwork::boundary_sample(TimePoint window_end) {
    const std::size_t n = nets_.size();
    const std::uint32_t orgs = config_.base.orgs;
    const std::uint32_t per_org = config_.base.peers_per_org;
    const std::uint32_t clients = config_.base.clients;

    // Cumulative readings at this boundary (single-threaded, channel order).
    std::vector<std::uint64_t> committed(n, 0);
    std::vector<double> org_cpu(orgs, 0.0);
    std::vector<std::uint64_t> client_done(clients, 0);
    for (std::size_t c = 0; c < n; ++c) {
        FabricNetwork& net = *nets_[c];
        committed[c] = net.peers().empty() ? 0 : net.peers()[0]->txs_valid();
        for (std::size_t p = 0; p < net.peers().size(); ++p) {
            const std::size_t org = per_org == 0 ? 0 : p / per_org;
            if (org < org_cpu.size()) {
                org_cpu[org] +=
                    static_cast<double>(net.peers()[p]->endorse_cpu_busy().as_nanos()) /
                    1e9;
            }
        }
        for (std::size_t k = 0; k < net.clients().size() && k < client_done.size();
             ++k) {
            client_done[k] += net.clients()[k]->completed();
        }
    }

    CrossChannelMeter::Window win;
    win.end = window_end;
    win.committed_per_channel.resize(n);
    win.endorse_cpu_per_org.resize(orgs);
    win.completed_per_client.resize(clients);
    for (std::size_t c = 0; c < n; ++c) {
        win.committed_per_channel[c] = committed[c] - prev_committed_[c];
    }
    for (std::size_t o = 0; o < orgs; ++o) {
        win.endorse_cpu_per_org[o] = org_cpu[o] - prev_org_cpu_[o];
    }
    for (std::size_t k = 0; k < clients; ++k) {
        win.completed_per_client[k] = client_done[k] - prev_client_completed_[k];
    }
    win.channel_jain = jain_of_u64(win.committed_per_channel);
    win.client_jain = jain_of_u64(win.completed_per_client);

    if (sum_of(win.committed_per_channel) > 0 &&
        win.channel_jain < meter_.channel_jain_min) {
        meter_.channel_jain_min = win.channel_jain;
    }
    if (sum_of(win.completed_per_client) > 0 &&
        win.client_jain < meter_.client_jain_min) {
        meter_.client_jain_min = win.client_jain;
    }

    meter_.committed_per_channel = committed;
    meter_.endorse_cpu_per_org = org_cpu;
    meter_.completed_per_client = client_done;
    meter_.windows.push_back(std::move(win));

    prev_committed_ = std::move(committed);
    prev_org_cpu_ = std::move(org_cpu);
    prev_client_completed_ = std::move(client_done);
}

}  // namespace fl::core
