// Experiment metrics: per-priority, per-client and per-chaincode latency
// distributions plus throughput and validity accounting — the quantities
// Hyperledger Caliper reports in the paper's evaluation.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "client/client.h"
#include "common/stats.h"

namespace fl::obs::audit {
struct AuditReport;
}

namespace fl::core {

/// Where a class's latency goes: full distribution per pipeline phase
/// (mean() is exact — Histogram keeps RunningStats alongside the buckets —
/// so the phase_means_by_priority JSON block is unchanged by the upgrade
/// from plain means to distributions).
struct PhaseStats {
    Histogram endorsement;
    Histogram ordering;
    Histogram validation;
    Histogram notification;
};

/// Graceful-degradation counters (DESIGN.md §11): how much client-side
/// retry work a class of transactions needed.  All zero in fault-free runs.
struct DegradationCounts {
    std::uint64_t endorse_retries = 0;
    std::uint64_t resubmissions = 0;
};

class MetricsCollector {
public:
    /// Records one completed transaction.
    void record(const client::TxRecord& record);

    [[nodiscard]] const Histogram& overall() const { return overall_; }
    [[nodiscard]] const std::map<PriorityLevel, Histogram>& by_priority() const {
        return by_priority_;
    }
    [[nodiscard]] const std::map<ClientId, Histogram>& by_client() const {
        return by_client_;
    }
    [[nodiscard]] const std::map<std::string, Histogram>& by_chaincode() const {
        return by_chaincode_;
    }
    /// Per-priority latency breakdown over the pipeline phases.
    [[nodiscard]] const std::map<PriorityLevel, PhaseStats>& phases_by_priority() const {
        return phases_by_priority_;
    }

    [[nodiscard]] std::uint64_t committed_valid() const { return valid_; }
    [[nodiscard]] std::uint64_t committed_invalid() const { return invalid_; }
    [[nodiscard]] std::uint64_t client_failures() const { return client_failures_; }
    [[nodiscard]] std::uint64_t total() const {
        return valid_ + invalid_ + client_failures_;
    }

    // -- degradation accounting (counted for every record, including
    // client-side failures) -------------------------------------------------
    [[nodiscard]] std::uint64_t endorse_retries_total() const {
        return endorse_retries_total_;
    }
    [[nodiscard]] std::uint64_t resubmissions_total() const {
        return resubmissions_total_;
    }
    /// Submissions that gave up collecting endorsements.
    [[nodiscard]] std::uint64_t endorse_timeout_failures() const {
        return endorse_timeout_failures_;
    }
    /// Submissions that gave up waiting for a commit notification.
    [[nodiscard]] std::uint64_t commit_timeout_failures() const {
        return commit_timeout_failures_;
    }
    [[nodiscard]] const std::map<std::string, DegradationCounts>&
    degradation_by_chaincode() const {
        return degradation_by_chaincode_;
    }

    /// Mean end-to-end latency (seconds) of committed transactions.
    [[nodiscard]] double avg_latency() const { return overall_.mean(); }

    /// Mean latency of one priority level, 0 if the level saw no traffic.
    [[nodiscard]] double avg_latency_for_priority(PriorityLevel level) const;

    /// Mean latency of one client's transactions.
    [[nodiscard]] double avg_latency_for_client(ClientId client) const;

    /// Committed-transaction throughput over the measurement span.
    [[nodiscard]] double throughput_tps() const;

    [[nodiscard]] TimePoint first_submit() const { return first_submit_; }
    [[nodiscard]] TimePoint last_complete() const { return last_complete_; }

private:
    Histogram overall_;
    std::map<PriorityLevel, Histogram> by_priority_;
    std::map<ClientId, Histogram> by_client_;
    std::map<std::string, Histogram> by_chaincode_;
    std::map<PriorityLevel, PhaseStats> phases_by_priority_;
    std::map<std::string, DegradationCounts> degradation_by_chaincode_;
    std::uint64_t valid_ = 0;
    std::uint64_t invalid_ = 0;
    std::uint64_t client_failures_ = 0;
    std::uint64_t endorse_retries_total_ = 0;
    std::uint64_t resubmissions_total_ = 0;
    std::uint64_t endorse_timeout_failures_ = 0;
    std::uint64_t commit_timeout_failures_ = 0;
    TimePoint first_submit_ = TimePoint::max();
    TimePoint last_complete_;
};

/// Serializes one collector as a JSON object: counts, throughput, and the
/// latency distributions (mean and percentiles) overall, per priority level,
/// per client and per chaincode, plus the per-priority phase breakdown.
/// Everything emitted derives from simulated time, so the bytes depend only
/// on the run's seed and configuration — never on wall-clock or scheduling.
/// Used by the sweep harness's per-point BENCH_*.json output.
void write_metrics_json(std::ostream& os, const MetricsCollector& metrics);

/// Same, with an optional fairness-audit report appended as an "audit"
/// object (obs/audit/audit.h).  Passing nullptr emits byte-identical output
/// to the two-argument overload, so un-audited runs keep their exact bytes.
void write_metrics_json(std::ostream& os, const MetricsCollector& metrics,
                        const obs::audit::AuditReport* audit);

}  // namespace fl::core
