#include "core/metrics.h"

#include <ostream>

#include "common/json.h"
#include "obs/audit/audit.h"

namespace fl::core {

namespace {

/// One latency distribution as {count, mean, p50, p95, p99, min, max,
/// underflow, overflow} — the saturation counters flag values the histogram
/// clamped into its edge buckets (percentiles there are not trustworthy).
void write_histogram(JsonWriter& json, const Histogram& hist) {
    json.begin_object();
    json.field("count", hist.count());
    json.field("mean_s", hist.mean());
    json.field("p50_s", hist.median());
    json.field("p95_s", hist.percentile(95.0));
    json.field("p99_s", hist.percentile(99.0));
    json.field("min_s", hist.min());
    json.field("max_s", hist.max());
    json.field("underflow", hist.underflow());
    json.field("overflow", hist.overflow());
    json.end_object();
}

}  // namespace

void MetricsCollector::record(const client::TxRecord& record) {
    first_submit_ = std::min(first_submit_, record.submitted_at);
    last_complete_ = std::max(last_complete_, record.completed_at);

    // Degradation counters cover every terminal record — committed, aborted
    // and failed alike — so they must accumulate before the early returns.
    if (record.endorse_retries > 0 || record.resubmissions > 0) {
        endorse_retries_total_ += record.endorse_retries;
        resubmissions_total_ += record.resubmissions;
        DegradationCounts& d = degradation_by_chaincode_[record.chaincode];
        d.endorse_retries += record.endorse_retries;
        d.resubmissions += record.resubmissions;
    }
    if (record.code == TxValidationCode::kEndorsementTimeout) {
        ++endorse_timeout_failures_;
    } else if (record.code == TxValidationCode::kCommitTimeout) {
        ++commit_timeout_failures_;
    }

    if (record.failed_before_ordering) {
        ++client_failures_;
        return;
    }
    if (!is_valid(record.code)) {
        ++invalid_;
        return;
    }
    ++valid_;
    const double latency = record.latency().as_seconds();
    overall_.add(latency);
    by_priority_.try_emplace(record.priority).first->second.add(latency);
    by_client_.try_emplace(record.client).first->second.add(latency);
    by_chaincode_.try_emplace(record.chaincode).first->second.add(latency);

    PhaseStats& phases = phases_by_priority_[record.priority];
    phases.endorsement.add(record.endorsement_phase().as_seconds());
    phases.ordering.add(record.ordering_phase().as_seconds());
    phases.validation.add(record.validation_phase().as_seconds());
    phases.notification.add(record.notification_phase().as_seconds());
}

double MetricsCollector::avg_latency_for_priority(PriorityLevel level) const {
    const auto it = by_priority_.find(level);
    return it == by_priority_.end() ? 0.0 : it->second.mean();
}

double MetricsCollector::avg_latency_for_client(ClientId client) const {
    const auto it = by_client_.find(client);
    return it == by_client_.end() ? 0.0 : it->second.mean();
}

double MetricsCollector::throughput_tps() const {
    if (valid_ == 0 || last_complete_ <= first_submit_) return 0.0;
    return static_cast<double>(valid_) /
           (last_complete_ - first_submit_).as_seconds();
}

void write_metrics_json(std::ostream& os, const MetricsCollector& metrics) {
    write_metrics_json(os, metrics, nullptr);
}

void write_metrics_json(std::ostream& os, const MetricsCollector& metrics,
                        const obs::audit::AuditReport* audit) {
    JsonWriter json(os);
    json.begin_object();
    json.field("committed_valid", metrics.committed_valid());
    json.field("committed_invalid", metrics.committed_invalid());
    json.field("client_failures", metrics.client_failures());

    // Degradation block: always present (zeros in fault-free runs) so the
    // schema is stable across fault and no-fault configurations.
    json.key("degradation");
    json.begin_object();
    json.field("endorse_retries", metrics.endorse_retries_total());
    json.field("resubmissions", metrics.resubmissions_total());
    json.field("endorse_timeout_failures", metrics.endorse_timeout_failures());
    json.field("commit_timeout_failures", metrics.commit_timeout_failures());
    json.key("by_chaincode");
    json.begin_object();
    for (const auto& [name, d] : metrics.degradation_by_chaincode()) {
        json.key(name);
        json.begin_object();
        json.field("endorse_retries", d.endorse_retries);
        json.field("resubmissions", d.resubmissions);
        json.end_object();
    }
    json.end_object();
    json.end_object();

    json.field("throughput_tps", metrics.throughput_tps());

    json.key("latency");
    write_histogram(json, metrics.overall());

    json.key("latency_by_priority");
    json.begin_object();
    for (const auto& [level, hist] : metrics.by_priority()) {
        json.key(level == kUnassignedPriority ? "unassigned"
                                              : std::to_string(level));
        write_histogram(json, hist);
    }
    json.end_object();

    json.key("latency_by_client");
    json.begin_object();
    for (const auto& [client, hist] : metrics.by_client()) {
        json.key(std::to_string(client.value()));
        write_histogram(json, hist);
    }
    json.end_object();

    json.key("latency_by_chaincode");
    json.begin_object();
    for (const auto& [name, hist] : metrics.by_chaincode()) {
        json.key(name);
        write_histogram(json, hist);
    }
    json.end_object();

    json.key("phase_means_by_priority");
    json.begin_object();
    for (const auto& [level, phases] : metrics.phases_by_priority()) {
        json.key(level == kUnassignedPriority ? "unassigned"
                                              : std::to_string(level));
        json.begin_object();
        json.field("endorsement_s", phases.endorsement.mean());
        json.field("ordering_s", phases.ordering.mean());
        json.field("validation_s", phases.validation.mean());
        json.field("notification_s", phases.notification.mean());
        json.end_object();
    }
    json.end_object();

    // Full per-phase distributions (p50/p95/p99/...): means alone hide the
    // tail inflation the paper's Figure 6 fairness argument is about.
    json.key("phase_latency_by_priority");
    json.begin_object();
    for (const auto& [level, phases] : metrics.phases_by_priority()) {
        json.key(level == kUnassignedPriority ? "unassigned"
                                              : std::to_string(level));
        json.begin_object();
        json.key("endorsement");
        write_histogram(json, phases.endorsement);
        json.key("ordering");
        write_histogram(json, phases.ordering);
        json.key("validation");
        write_histogram(json, phases.validation);
        json.key("notification");
        write_histogram(json, phases.notification);
        json.end_object();
    }
    json.end_object();

    if (audit != nullptr) {
        json.key("audit");
        obs::audit::write_audit_json(json, *audit);
    }
    json.end_object();
}

}  // namespace fl::core
