#include "core/metrics.h"

namespace fl::core {

void MetricsCollector::record(const client::TxRecord& record) {
    first_submit_ = std::min(first_submit_, record.submitted_at);
    last_complete_ = std::max(last_complete_, record.completed_at);

    if (record.failed_before_ordering) {
        ++client_failures_;
        return;
    }
    if (!is_valid(record.code)) {
        ++invalid_;
        return;
    }
    ++valid_;
    const double latency = record.latency().as_seconds();
    overall_.add(latency);
    by_priority_.try_emplace(record.priority).first->second.add(latency);
    by_client_.try_emplace(record.client).first->second.add(latency);
    by_chaincode_.try_emplace(record.chaincode).first->second.add(latency);

    PhaseStats& phases = phases_by_priority_[record.priority];
    phases.endorsement.add(record.endorsement_phase().as_seconds());
    phases.ordering.add(record.ordering_phase().as_seconds());
    phases.validation.add(record.validation_phase().as_seconds());
    phases.notification.add(record.notification_phase().as_seconds());
}

double MetricsCollector::avg_latency_for_priority(PriorityLevel level) const {
    const auto it = by_priority_.find(level);
    return it == by_priority_.end() ? 0.0 : it->second.mean();
}

double MetricsCollector::avg_latency_for_client(ClientId client) const {
    const auto it = by_client_.find(client);
    return it == by_client_.end() ? 0.0 : it->second.mean();
}

double MetricsCollector::throughput_tps() const {
    if (valid_ == 0 || last_complete_ <= first_submit_) return 0.0;
    return static_cast<double>(valid_) /
           (last_complete_ - first_submit_).as_seconds();
}

}  // namespace fl::core
