// Multi-channel simulation and the channel-sharded parallel engine.
//
// Fabric channels are independent ledgers by construction (Androulaki et
// al., PAPERS.md): a channel has its own ordering log, its own chain, its
// own world state.  We model an N-channel network as N fully independent
// FabricNetworks — each with its own Simulator, broker/Raft cluster, peers,
// OSNs and clients — built from one shared base NetworkConfig plus a
// per-channel ChannelSpec override (block policy, priority levels,
// consolidation, block cutting, ordering backend).
//
// The engine advances all channels through conservative time windows on a
// fixed grid (multiples of sync_window anchored at the origin):
//
//   while any channel has pending events:
//     window := the grid cell containing the earliest pending event
//     every channel runs run_until(window end)     <- serial, or one pool
//                                                     worker per channel
//     barrier
//     cross-channel meters sample at the boundary  <- serial, channel order
//
// Determinism argument (DESIGN.md §16): channels share no mutable state —
// no event scheduled on channel A can read or write channel B — so within a
// window the per-channel executions are embarrassingly parallel and each
// channel's event order is exactly what the serial engine produces.  The
// only cross-channel touch points are the boundary meters (shared client
// principals and shared per-org endorser CPU), which read — never write —
// after the barrier, in channel order, on one thread.  Hence every
// per-channel observable (metrics JSON, trace bytes, ledger fingerprints)
// and the cross-channel meter series are bit-identical between the serial
// and parallel engines at any pool size and any sync_window, and a
// 1-channel run is bit-identical to a plain FabricNetwork::run() drain.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/config.h"
#include "core/fabric_network.h"

namespace fl::core {

/// Per-channel overrides applied on top of MultiChannelConfig::base.  Unset
/// fields default to the base NetworkConfig's channel settings — the
/// "per-channel policy defaulting" contract tested in
/// tests/core/multi_channel_test.cpp.
struct ChannelSpec {
    /// 0 = auto-assign base.channel.id + index (so a single default-spec
    /// channel keeps the base id and legacy byte-identity).
    ChannelId id{0};
    std::optional<bool> priority_enabled;
    std::optional<std::uint32_t> priority_levels;
    std::optional<policy::BlockFormationPolicy> block_policy;
    std::optional<std::string> consolidation_spec;
    std::optional<std::uint32_t> block_size;
    std::optional<Duration> block_timeout;
    std::optional<orderer::OrderingBackendKind> ordering_backend;
};

struct MultiChannelConfig {
    /// Template for every channel: node counts, cost model, seed, faults.
    NetworkConfig base;
    /// One entry per channel; must be non-empty with distinct resolved ids.
    std::vector<ChannelSpec> channels{ChannelSpec{}};
    /// Conservative synchronization window of the sharded engine.  Pure
    /// engine knob: per-channel results are identical for any positive
    /// value; only the cross-channel meter's sampling cadence changes.
    Duration sync_window = Duration::millis(250);

    [[nodiscard]] std::size_t channel_count() const { return channels.size(); }

    /// The id channel `index` actually runs with (explicit or auto).
    [[nodiscard]] ChannelId resolved_id(std::size_t index) const;

    /// The full single-channel NetworkConfig for channel `index`: the base
    /// with the spec's overrides applied.  The seed is left untouched —
    /// callers derive per-channel seeds via channel_seed().
    [[nodiscard]] NetworkConfig channel_config(std::size_t index) const;

    /// Throws std::invalid_argument on an ill-formed config: no channels,
    /// duplicate resolved channel ids, or a non-positive sync_window.
    void validate() const;

    /// N channels, all default specs (auto ids base.channel.id + i).
    [[nodiscard]] static MultiChannelConfig uniform(NetworkConfig base,
                                                    std::size_t n);
};

/// Seed for channel `index` of a run seeded `run_seed`.  Channel 0 keeps
/// `run_seed` unchanged — a 1-channel run reproduces the single-network
/// engine byte for byte — and later channels draw independent SplitMix64
/// streams.
[[nodiscard]] std::uint64_t channel_seed(std::uint64_t run_seed,
                                         std::size_t index);

/// Cross-channel observations sampled at the engine's window boundaries —
/// the conservative-window "touch points".  Everything here is read-only
/// over deterministic per-channel counters, so the series is byte-stable
/// across engines, pool sizes and --threads.
struct CrossChannelMeter {
    struct Window {
        TimePoint end;
        /// Transactions committed (valid, peer 0) per channel this window.
        std::vector<std::uint64_t> committed_per_channel;
        /// Endorse-station busy seconds per org, summed across channels
        /// this window — the shared endorser CPU meter (orgs exist on every
        /// channel; their compute budget is one pool in a real deployment).
        std::vector<double> endorse_cpu_per_org;
        /// Completions per client principal summed across channels this
        /// window — client index c on every channel is one shared
        /// principal.
        std::vector<std::uint64_t> completed_per_client;
        /// Jain's index over committed_per_channel / completed_per_client.
        double channel_jain = 1.0;
        double client_jain = 1.0;
    };

    std::vector<Window> windows;
    std::vector<std::uint64_t> committed_per_channel;  ///< cumulative
    std::vector<double> endorse_cpu_per_org;           ///< cumulative seconds
    std::vector<std::uint64_t> completed_per_client;   ///< cumulative
    /// Minimum per-window Jain across windows with any activity.
    double channel_jain_min = 1.0;
    double client_jain_min = 1.0;

    /// Jain over the cumulative per-channel committed counts.
    [[nodiscard]] double channel_jain_overall() const;
    /// Jain over the cumulative per-principal completion counts.
    [[nodiscard]] double client_jain_overall() const;
    /// Jain over the cumulative per-org endorse CPU totals.
    [[nodiscard]] double org_cpu_jain_overall() const;
};

/// N independent per-channel FabricNetworks plus the sharded engine.
class MultiChannelNetwork {
public:
    /// Validates `config` (see MultiChannelConfig::validate) and builds
    /// every channel's network with seed channel_seed(config.base.seed, i).
    explicit MultiChannelNetwork(MultiChannelConfig config);

    MultiChannelNetwork(const MultiChannelNetwork&) = delete;
    MultiChannelNetwork& operator=(const MultiChannelNetwork&) = delete;

    [[nodiscard]] std::size_t channel_count() const { return nets_.size(); }
    [[nodiscard]] FabricNetwork& channel(std::size_t index) {
        return *nets_[index];
    }
    [[nodiscard]] const FabricNetwork& channel(std::size_t index) const {
        return *nets_[index];
    }
    [[nodiscard]] ChannelId channel_id(std::size_t index) const {
        return config_.resolved_id(index);
    }
    [[nodiscard]] const MultiChannelConfig& config() const { return config_; }

    /// Registers every channel's standard gauge set under a "ch<id>_"
    /// prefix, so N channels coexist in one registry without name clashes.
    void register_metrics(obs::MetricRegistry& registry);

    /// Drains every channel through the conservative-window engine.
    /// `pool == nullptr` is the serial reference engine (channels advance
    /// in index order within each window); otherwise each channel's window
    /// runs as one pool task.  Identical per-channel and meter results
    /// either way.  Returns the number of events executed by this call.
    std::uint64_t run(ThreadPool* pool = nullptr);

    [[nodiscard]] std::uint64_t windows_executed() const { return windows_; }
    [[nodiscard]] const CrossChannelMeter& meter() const { return meter_; }

private:
    void boundary_sample(TimePoint window_end);

    MultiChannelConfig config_;
    std::vector<std::unique_ptr<FabricNetwork>> nets_;
    CrossChannelMeter meter_;
    std::uint64_t windows_ = 0;

    // Previous-boundary snapshots for window deltas.
    std::vector<std::uint64_t> prev_committed_;         // per channel
    std::vector<double> prev_org_cpu_;                  // per org (aggregate)
    std::vector<std::uint64_t> prev_client_completed_;  // per principal
};

}  // namespace fl::core
