// FabricNetwork — builds and owns a complete simulated network: the
// discrete-event simulator(s), the network fabric, the mq broker (Kafka),
// the key store (PKI), the chaincode registry, and all peers, OSNs and
// clients, fully wired per a NetworkConfig.
//
// This is the library's main entry point:
//
//   fl::core::NetworkConfig cfg;                 // paper defaults
//   fl::core::FabricNetwork net(cfg);
//   fl::core::MetricsCollector metrics;
//   net.set_tx_sink([&](const auto& r) { metrics.record(r); });
//   net.clients()[0]->submit("asset_transfer", "create", {"alice", "100"});
//   net.run();                                   // drain the simulation
//
// Partitioned engine (DESIGN.md §17): `config.partition` splits the node
// set into groups — each group gets its own sim::Simulator and the groups
// advance concurrently on pool workers inside conservative lookahead
// windows (sim/partition.h).  Output is byte-identical at every layout and
// worker count; PartitionScheme::kSingle (the default) is the plain serial
// engine.  In multi-group mode the per-simulator accessor `simulator()`
// throws — use run(pool)/advance_until/next_event_time/last_event_at.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "chaincode/registry.h"
#include "client/client.h"
#include "core/config.h"
#include "core/metrics.h"
#include "crypto/signature.h"
#include "fault/fault_spec.h"
#include "mq/broker.h"
#include "orderer/ordering_backend.h"
#include "orderer/osn.h"
#include "raft/raft.h"
#include "peer/peer.h"
#include "sim/network.h"
#include "sim/partition.h"
#include "sim/simulator.h"

namespace fl {
class ThreadPool;
}
namespace fl::obs {
class MetricRegistry;
class TraceSink;
}  // namespace fl::obs
namespace fl::obs::audit {
class AuditAccountant;
}

namespace fl::core {

class FabricNetwork {
public:
    explicit FabricNetwork(NetworkConfig config);
    ~FabricNetwork();

    FabricNetwork(const FabricNetwork&) = delete;
    FabricNetwork& operator=(const FabricNetwork&) = delete;

    /// The simulator — single-group (serial) engines only; throws
    /// std::logic_error when the network runs partitioned (no single
    /// "the" clock exists).  Use the engine-level accessors below instead.
    [[nodiscard]] sim::Simulator& simulator();
    [[nodiscard]] const NetworkConfig& config() const { return config_; }

    /// Number of partition groups (1 = serial engine).
    [[nodiscard]] std::size_t partition_groups() const { return sims_.size(); }
    /// The engine lookahead (minimum cross-group link floor).
    [[nodiscard]] Duration lookahead() const { return partitions_->lookahead(); }
    /// Synchronization windows executed so far (0 for the serial engine).
    [[nodiscard]] std::uint64_t partition_windows() const {
        return partitions_->windows();
    }
    /// Group simulator owning `node`'s scheduling domain.
    [[nodiscard]] sim::Simulator& sim_of(NodeId node) {
        return partitions_->sim_of(node.value());
    }
    /// Partition group owning `node`.
    [[nodiscard]] std::size_t group_of(NodeId node) const {
        return partitions_->group_of(node.value());
    }

    [[nodiscard]] std::vector<std::unique_ptr<peer::Peer>>& peers() { return peers_; }
    [[nodiscard]] std::vector<std::unique_ptr<orderer::Osn>>& osns() { return osns_; }
    [[nodiscard]] std::vector<std::unique_ptr<client::Client>>& clients() {
        return clients_;
    }
    [[nodiscard]] const chaincode::Registry& registry() const { return registry_; }
    [[nodiscard]] const crypto::KeyStore& keys() const { return keys_; }
    /// The ordering substrate, whichever backend is configured.
    [[nodiscard]] orderer::OrderingBackend& ordering() { return *ordering_; }
    /// The Kafka-style broker; throws std::logic_error under the Raft
    /// backend (legacy accessor — prefer ordering()).
    [[nodiscard]] mq::Broker<orderer::OrderedRecord>& broker();
    /// The Raft cluster, or null when the mq backend is configured.
    [[nodiscard]] raft::RaftOrderingBackend* raft_backend() {
        return raft_backend_.get();
    }
    [[nodiscard]] sim::Network& network() { return *net_; }

    /// Registers a completion callback wired to every client.  Partitioned
    /// runs buffer records per group and replay them to the sink in the
    /// serial completion order at every engine-call boundary.
    void set_tx_sink(std::function<void(const client::TxRecord&)> sink);

    /// Attaches a trace sink to every component (clients, peers, OSNs and
    /// the broker); null detaches everywhere.  The sink only records —
    /// attaching it schedules no simulator events, so results are
    /// byte-identical with and without a trace.  Partitioned runs record
    /// into per-group sinks and merge into `sink` in serial emission order
    /// at every engine-call boundary.
    void set_trace_sink(obs::TraceSink* sink);

    /// Attaches the fairness-audit accountant to every component: all
    /// clients (submit/terminal service events), all peers (endorse and
    /// validation CPU, state I/O, commit order), the broker append hook
    /// (ordering bandwidth + arrival order) and OSN 0's block generator
    /// (dequeue order — all OSNs cut identical blocks, so one observer
    /// suffices and crash replay cannot double-count).  Null detaches.
    /// Like set_trace_sink, attaching schedules no simulator events.
    /// Throws in multi-group mode: the accountant observes global order
    /// across every component, so audited runs use the serial engine
    /// (byte-identical by the partition-equivalence contract).
    void set_audit(obs::audit::AuditAccountant* audit);

    /// Registers the standard gauge set (per-priority queue depth and block
    /// fill, generator/validator/consolidation counters) on `registry`.
    /// Gauges read live component state; sample them via a
    /// TimeSeriesRecorder on this network's simulator.
    void register_metrics(obs::MetricRegistry& registry) {
        register_metrics(registry, std::string{});
    }
    /// Same, with every gauge name prefixed (identifier characters only,
    /// e.g. "ch7_") so multiple networks — one per channel in a
    /// MultiChannelNetwork — share one registry without name collisions.
    void register_metrics(obs::MetricRegistry& registry, const std::string& prefix);

    /// Runs the simulation until all scheduled work drains.  `pool`
    /// parallelizes partition groups (ignored by the serial engine; null
    /// runs every group on the calling thread — byte-identical either way).
    void run(ThreadPool* pool = nullptr);

    /// Runs all groups up to and including `end` (clocks finish at `end`);
    /// returns the number of events executed.  The multi-channel engine's
    /// per-window step.
    std::uint64_t advance_until(TimePoint end, ThreadPool* pool = nullptr);

    /// Earliest live pending event across groups; TimePoint::max() if idle.
    [[nodiscard]] TimePoint next_event_time() { return partitions_->next_event_time(); }

    /// Latest dequeued-event timestamp across groups (see
    /// Simulator::last_event_at for the exact semantics).
    [[nodiscard]] TimePoint last_event_at() const { return partitions_->last_event_at(); }

    /// Events executed across all groups.
    [[nodiscard]] std::uint64_t events_executed() const;

    /// Seeds a committed key on every peer (bootstrap for contended
    /// workloads); must be called before any traffic.
    void seed_state(const std::string& key, const std::string& value);

    /// Submits a channel-configuration transaction that changes the block
    /// formation policy at run time; all OSNs switch at the same block
    /// boundary (the paper's §3.3 online-reconfiguration scenarios).
    void update_block_policy(const policy::BlockFormationPolicy& new_policy);

    // -- consistency checks (used by tests & examples) -----------------------
    /// True iff every peer holds the identical chain.
    [[nodiscard]] bool chains_identical() const;
    /// True iff every peer holds the identical world state.
    [[nodiscard]] bool states_identical() const;
    /// True iff every OSN produced the identical block-hash sequence.
    [[nodiscard]] bool osn_blocks_identical() const;
    /// Weaker form for runs where an OSN is down at drain time: every OSN's
    /// block-hash sequence must be a prefix of the longest one (surviving
    /// OSNs emit byte-identical sequences; a crashed one just stopped early).
    [[nodiscard]] bool osn_blocks_prefix_consistent() const;

    /// Faults applied so far (scheduled component faults, not per-message).
    [[nodiscard]] std::uint64_t faults_applied() const {
        return faults_applied_.load(std::memory_order_relaxed);
    }
    /// The resolved fault schedule (explicit + profile-generated, sorted).
    [[nodiscard]] const std::vector<fault::ScheduledFault>& fault_schedule() const {
        return fault_schedule_;
    }

private:
    /// Resolved node→group layout for this config.
    struct PartitionPlan {
        std::size_t group_count = 1;
        std::size_t ordering_group = 0;
        std::vector<std::pair<std::uint64_t, std::size_t>> node_group;
    };

    void build();
    [[nodiscard]] PartitionPlan resolve_partition_plan() const;
    /// Scheduling domain a fault event runs under (its target component).
    [[nodiscard]] std::uint64_t fault_domain(const fault::ScheduledFault& f) const;
    void apply_fault(const fault::ScheduledFault& f, std::size_t group);
    /// (Re)installs the broker append hook composing the current trace sink
    /// and audit accountant (the broker holds a single hook slot).
    void install_broker_hook();
    /// The sink a component in `group` should emit to (null when untraced).
    [[nodiscard]] obs::TraceSink* group_trace(std::size_t group);
    /// Merges per-group trace/tx buffers into the user sinks in serial
    /// emission order.  No-op for the serial engine (sinks wired directly).
    void drain_observers();

    NetworkConfig config_;
    Rng rng_;
    std::vector<std::unique_ptr<sim::Simulator>> sims_;  ///< one per group
    std::unique_ptr<sim::PartitionSet> partitions_;
    std::size_t ordering_group_ = 0;
    std::unique_ptr<sim::Network> net_;
    std::unique_ptr<mq::Broker<orderer::OrderedRecord>> broker_;  ///< kMq only
    std::unique_ptr<orderer::MqOrderingBackend> mq_backend_;      ///< kMq only
    std::unique_ptr<raft::RaftOrderingBackend> raft_backend_;     ///< kRaft only
    orderer::OrderingBackend* ordering_ = nullptr;  ///< the active backend
    crypto::KeyStore keys_;
    chaincode::Registry registry_;

    std::vector<std::unique_ptr<peer::Peer>> peers_;
    std::vector<std::unique_ptr<orderer::Osn>> osns_;
    std::vector<std::unique_ptr<client::Client>> clients_;

    std::vector<fault::ScheduledFault> fault_schedule_;
    std::atomic<std::uint64_t> faults_applied_{0};
    obs::TraceSink* trace_ = nullptr;  ///< user sink (kFault events)
    obs::audit::AuditAccountant* audit_ = nullptr;

    /// Multi-group observer buffering (empty for the serial engine).
    std::vector<std::unique_ptr<obs::TraceSink>> group_sinks_;
    struct BufferedTxRecord {
        sim::EventKey key;
        client::TxRecord rec;
    };
    std::vector<std::vector<BufferedTxRecord>> tx_buffers_;  ///< per group
    std::function<void(const client::TxRecord&)> user_tx_sink_;
};

}  // namespace fl::core
