// Top-level network configuration — everything an experiment varies.
//
// Defaults reproduce the paper's setup (§5.1): 4 organizations with one
// peer each, 3 OSNs, 3 clients, 3 priority levels, block size 500, block
// timeout 1 s, block formation policy 2:3:1, consolidation k-of-n with k=2.
#pragma once

#include <cstdint>
#include <map>

#include "client/client.h"
#include "common/time.h"
#include "fault/fault_spec.h"
#include "orderer/ordering_backend.h"
#include "orderer/osn.h"
#include "peer/peer.h"
#include "peer/priority_calculator.h"
#include "policy/channel_config.h"
#include "raft/params.h"
#include "sim/network.h"

namespace fl::core {

// Node address bases: peers, OSNs, clients and the ordering endpoint all
// share one NodeId space (used as the scheduling-domain id by the
// partitioned engine, so they are part of the deterministic contract).
inline constexpr std::uint64_t kPeerNodeBase = 100;
inline constexpr std::uint64_t kOsnNodeBase = 200;
inline constexpr std::uint64_t kClientNodeBase = 300;
inline constexpr std::uint64_t kBrokerNode = 9000;

/// How a channel's components map onto partition groups (DESIGN.md §17).
enum class PartitionScheme : std::uint8_t {
    kSingle,   ///< one group — the serial engine (default)
    kRoles,    ///< clients | one group per peer org | ordering service
    kPerNode,  ///< each client and each peer alone; ordering service together
    kCustom,   ///< explicit node→group map (`PartitionConfig::groups`)
};

/// Partition layout for one channel.  The layout NEVER changes the
/// simulated execution (event keys are layout-independent); it only decides
/// which node groups may advance concurrently.  The ordering service
/// (broker or Raft cluster + every OSN) must share one group: OSNs call
/// into the backend synchronously (subscribe replay, produce, read).
struct PartitionConfig {
    PartitionScheme scheme = PartitionScheme::kSingle;
    /// kCustom only: node id value → group index (0-based, contiguous).
    /// Nodes absent from the map are rejected at build time.
    std::map<std::uint64_t, std::size_t> groups;
};

struct NetworkConfig {
    std::uint32_t orgs = 4;
    std::uint32_t peers_per_org = 1;
    std::uint32_t osns = 3;
    std::uint32_t clients = 3;

    policy::ChannelConfig channel;

    /// Endorsements required: 0 = every org must endorse (the paper's peers
    /// all endorse every transaction), otherwise k-of-n over orgs.
    std::uint32_t endorsement_k = 0;

    /// Master seed; every component derives an independent stream from it.
    std::uint64_t seed = 42;

    /// OSN local timers drift apart by up to this much (uniform per OSN) —
    /// the divergence hazard the TTC protocol exists to fix.
    Duration max_osn_clock_skew = Duration::millis(120);

    /// Per-endorser priority calculator; defaults to the static per-
    /// chaincode assignment when unset.
    peer::CalculatorFactory calculator_factory;

    // Cost/latency model (see DESIGN.md §6).
    peer::PeerParams peer_params;
    orderer::OsnParams osn_params;
    client::ClientParams client_params;
    sim::LinkParams link_params;

    /// Fault injection (DESIGN.md §11).  Inert by default: enabled() false
    /// means no fault streams are split, no fault events are scheduled, and
    /// the run is byte-identical to a pre-fault-subsystem build.
    fault::FaultSpec faults;

    /// Ordering substrate (DESIGN.md §15): the Kafka-style broker (default)
    /// or the deterministic simulated-time Raft cluster.  Fault-free runs
    /// are byte-identical across the two.
    orderer::OrderingBackendKind ordering_backend = orderer::OrderingBackendKind::kMq;
    /// Raft cluster tunables; only read when ordering_backend == kRaft.
    raft::RaftParams raft;

    /// Node-group partition layout for the intra-channel parallel engine
    /// (DESIGN.md §17).  Byte-identical output at every layout; kSingle
    /// runs the plain single-simulator loop.  Configs that arm message
    /// faults or attach a global-order audit are demoted to kSingle at
    /// build time (both observe cross-group shared state).
    PartitionConfig partition;

    /// Total number of peers in the network.
    [[nodiscard]] std::uint32_t total_peers() const { return orgs * peers_per_org; }
};

}  // namespace fl::core
