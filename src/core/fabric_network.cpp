#include "core/fabric_network.h"

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace fl::core {

namespace {
constexpr std::uint64_t kPeerNodeBase = 100;
constexpr std::uint64_t kOsnNodeBase = 200;
constexpr std::uint64_t kClientNodeBase = 300;
constexpr std::uint64_t kBrokerNode = 9000;
}  // namespace

FabricNetwork::FabricNetwork(NetworkConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      registry_(chaincode::Registry::with_standard_contracts(
          config_.channel.effective_levels())) {
    if (config_.orgs == 0 || config_.peers_per_org == 0 || config_.osns == 0 ||
        config_.clients == 0) {
        throw std::invalid_argument("NetworkConfig: all component counts must be >= 1");
    }
    build();
}

void FabricNetwork::build() {
    net_ = std::make_unique<sim::Network>(sim_, rng_.split("network"),
                                          config_.link_params);
    mq::BrokerParams broker_params;
    broker_params.node = NodeId{kBrokerNode};
    broker_ = std::make_unique<mq::Broker<orderer::OrderedRecord>>(sim_, *net_,
                                                                   broker_params);

    keys_.set_seed(config_.seed ^ 0x4B45595345454431ull);  // "KEYSEED1"

    // Endorsement policy: k-of-n over the organizations (0 = all orgs).
    const std::uint32_t k =
        config_.endorsement_k == 0 ? config_.orgs
                                   : std::min(config_.endorsement_k, config_.orgs);
    config_.channel.endorsement_policy =
        policy::EndorsementPolicy::k_of_n_orgs(k, config_.orgs);

    // Topics: one per priority level (a single one in baseline mode).
    for (std::uint32_t level = 0; level < config_.channel.effective_levels(); ++level) {
        broker_->create_topic(config_.channel.topic_for_level(level));
    }

    peer::CalculatorFactory factory = config_.calculator_factory;
    if (!factory) {
        factory = [] { return std::make_unique<peer::StaticChaincodeCalculator>(); };
    }

    // Peers.
    for (std::uint32_t org = 0; org < config_.orgs; ++org) {
        for (std::uint32_t p = 0; p < config_.peers_per_org; ++p) {
            const std::uint64_t index = org * config_.peers_per_org + p;
            crypto::Identity identity{
                "org" + std::to_string(org) + ".peer" + std::to_string(p), OrgId{org}};
            keys_.register_identity(identity);
            peers_.push_back(std::make_unique<peer::Peer>(
                sim_, *net_, keys_, registry_, config_.channel, config_.peer_params,
                PeerId{index}, NodeId{kPeerNodeBase + index}, identity, factory(),
                rng_.split("peer" + std::to_string(index))));
        }
    }

    // OSNs, each with its own local-clock skew.
    for (std::uint32_t i = 0; i < config_.osns; ++i) {
        crypto::Identity identity{"osn" + std::to_string(i), OrgId{0}};
        keys_.register_identity(identity);
        orderer::OsnParams params = config_.osn_params;
        params.clock_skew = Duration::from_seconds(
            rng_.split("osnskew" + std::to_string(i))
                .uniform(0.0, config_.max_osn_clock_skew.as_seconds()));
        osns_.push_back(std::make_unique<orderer::Osn>(
            sim_, *net_, *broker_, keys_, config_.channel, params, OsnId{i},
            NodeId{kOsnNodeBase + i}));
    }

    // Each peer receives blocks from one OSN (round-robin).
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        peer::Peer* p = peers_[i].get();
        osns_[i % osns_.size()]->connect_peer(
            p->node(),
            [p](std::shared_ptr<const ledger::Block> block) {
                p->deliver_block(std::move(block));
            });
    }

    // Clients: endorse at every peer, anchor at a round-robin peer.
    for (std::uint32_t c = 0; c < config_.clients; ++c) {
        crypto::Identity identity{"client" + std::to_string(c),
                                  OrgId{c % config_.orgs}};
        keys_.register_identity(identity);
        clients_.push_back(std::make_unique<client::Client>(
            sim_, *net_, keys_, config_.channel, config_.client_params, ClientId{c},
            NodeId{kClientNodeBase + c}, identity,
            rng_.split("client" + std::to_string(c))));

        std::vector<peer::Peer*> endorsers;
        endorsers.reserve(peers_.size());
        for (const auto& p : peers_) {
            endorsers.push_back(p.get());
        }
        std::vector<orderer::Osn*> osn_ptrs;
        osn_ptrs.reserve(osns_.size());
        for (const auto& o : osns_) {
            osn_ptrs.push_back(o.get());
        }
        clients_.back()->connect(std::move(endorsers), std::move(osn_ptrs),
                                 peers_[c % peers_.size()].get());
    }

    // Start the ordering service last so subscriptions see a clean log.
    for (const auto& osn : osns_) {
        osn->start();
    }

    // Guard against runaway configurations (events scale with tx volume).
    sim_.set_event_limit(500'000'000);
}

void FabricNetwork::set_tx_sink(std::function<void(const client::TxRecord&)> sink) {
    for (const auto& c : clients_) {
        c->set_on_complete(sink);
    }
}

void FabricNetwork::set_trace_sink(obs::TraceSink* sink) {
    for (const auto& c : clients_) c->set_trace(sink);
    for (const auto& p : peers_) p->set_trace(sink);
    for (const auto& o : osns_) o->set_trace(sink);
    if (sink == nullptr) {
        broker_->set_on_append(nullptr);
        return;
    }
    // The broker is record-agnostic, so the topic->level mapping lives here.
    std::unordered_map<std::string, PriorityLevel> levels;
    for (std::uint32_t l = 0; l < config_.channel.effective_levels(); ++l) {
        levels.emplace(config_.channel.topic_for_level(l), l);
    }
    broker_->set_on_append(
        [sink, levels = std::move(levels), sim = &sim_](
            const std::string& topic, mq::Offset offset,
            const orderer::OrderedRecord& rec, std::size_t wire) {
            if (rec.is_config()) return;  // config updates carry no tx id
            obs::TraceEvent ev;
            ev.at = sim->now();
            ev.actor_kind = obs::ActorKind::kBroker;
            ev.actor = 0;
            if (const auto it = levels.find(topic); it != levels.end()) {
                ev.priority = it->second;
            }
            ev.value = offset;
            ev.value2 = wire;
            if (rec.is_ttc()) {
                ev.type = obs::EventType::kTtcEnqueue;
                ev.block = rec.ttc_block;
            } else {
                ev.type = obs::EventType::kEnqueue;
                ev.tx = rec.envelope->tx_id().value();
            }
            sink->emit(ev);
        });
}

void FabricNetwork::register_metrics(obs::MetricRegistry& registry) {
    // Queue depth (consumer lag) per priority level, seen by OSN 0's
    // generator: records appended minus records its subscription consumed.
    const orderer::Osn* osn0 = osns_.front().get();
    for (std::uint32_t l = 0; l < config_.channel.effective_levels(); ++l) {
        const std::string topic = config_.channel.topic_for_level(l);
        registry.add_gauge(
            "queue_depth_p" + std::to_string(l), [this, osn0, topic, l] {
                const auto* gen = osn0->generator();
                const std::uint64_t consumed =
                    gen ? gen->subscriptions()[l]->consumed_count() : 0;
                return static_cast<double>(broker_->topic_size(topic)) -
                       static_cast<double>(consumed);
            });
    }
    for (std::uint32_t l = 0; l < config_.channel.effective_levels(); ++l) {
        registry.add_gauge("block_fill_p" + std::to_string(l), [osn0, l] {
            return static_cast<double>(osn0->level_totals()[l]);
        });
    }
    registry.add_gauge("blocks_cut", [osn0] {
        const auto* gen = osn0->generator();
        return gen ? static_cast<double>(gen->blocks_cut()) : 0.0;
    });
    registry.add_gauge("quota_transfers", [osn0] {
        const auto* gen = osn0->generator();
        return gen ? static_cast<double>(gen->quota_transfers()) : 0.0;
    });
    registry.add_gauge("ttcs_sent", [this] {
        double total = 0.0;
        for (const auto& o : osns_) {
            if (const auto* gen = o->generator()) {
                total += static_cast<double>(gen->ttcs_sent());
            }
        }
        return total;
    });
    registry.add_gauge("stale_ttcs", [this] {
        double total = 0.0;
        for (const auto& o : osns_) {
            if (const auto* gen = o->generator()) {
                total += static_cast<double>(gen->stale_ttcs_skipped());
            }
        }
        return total;
    });
    registry.add_gauge("mvcc_priority_wins", [this] {
        double total = 0.0;
        for (const auto& p : peers_) {
            total += static_cast<double>(p->mvcc_priority_wins());
        }
        return total;
    });
    registry.add_gauge("mvcc_fifo_wins", [this] {
        double total = 0.0;
        for (const auto& p : peers_) {
            total += static_cast<double>(p->mvcc_fifo_wins());
        }
        return total;
    });
    registry.add_gauge("txs_valid", [this] {
        return static_cast<double>(peers_.front()->txs_valid());
    });
    registry.add_gauge("txs_invalid", [this] {
        return static_cast<double>(peers_.front()->txs_invalid());
    });
    registry.add_gauge("endorse_failures", [this] {
        double total = 0.0;
        for (const auto& c : clients_) {
            total += static_cast<double>(c->client_side_failures());
        }
        return total;
    });
    registry.add_gauge("consolidation_failures", [this] {
        double total = 0.0;
        for (const auto& o : osns_) {
            total += static_cast<double>(o->consolidation_failures());
        }
        return total;
    });
}

void FabricNetwork::update_block_policy(const policy::BlockFormationPolicy& new_policy) {
    osns_.front()->submit_config_update(new_policy);
}

void FabricNetwork::seed_state(const std::string& key, const std::string& value) {
    for (const auto& p : peers_) {
        p->seed_state(key, value);
    }
}

bool FabricNetwork::chains_identical() const {
    for (std::size_t i = 1; i < peers_.size(); ++i) {
        if (peers_[i]->chain().chain_fingerprint() !=
            peers_[0]->chain().chain_fingerprint()) {
            return false;
        }
        if (peers_[i]->chain().height() != peers_[0]->chain().height()) {
            return false;
        }
    }
    return true;
}

bool FabricNetwork::states_identical() const {
    for (std::size_t i = 1; i < peers_.size(); ++i) {
        if (peers_[i]->state().fingerprint() != peers_[0]->state().fingerprint()) {
            return false;
        }
    }
    return true;
}

bool FabricNetwork::osn_blocks_identical() const {
    for (std::size_t i = 1; i < osns_.size(); ++i) {
        if (osns_[i]->block_hashes() != osns_[0]->block_hashes()) {
            return false;
        }
    }
    return true;
}

}  // namespace fl::core
