#include "core/fabric_network.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "fault/injector.h"
#include "obs/audit/audit.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace fl::core {

FabricNetwork::FabricNetwork(NetworkConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      registry_(chaincode::Registry::with_standard_contracts(
          config_.channel.effective_levels())) {
    if (config_.orgs == 0 || config_.peers_per_org == 0 || config_.osns == 0 ||
        config_.clients == 0) {
        throw std::invalid_argument("NetworkConfig: all component counts must be >= 1");
    }
    build();
}

FabricNetwork::~FabricNetwork() = default;

sim::Simulator& FabricNetwork::simulator() {
    if (sims_.size() != 1) {
        throw std::logic_error(
            "FabricNetwork::simulator: partitioned engine has no single clock — "
            "use run()/advance_until/next_event_time/last_event_at or sim_of()");
    }
    return *sims_[0];
}

FabricNetwork::PartitionPlan FabricNetwork::resolve_partition_plan() const {
    // All node addresses in this network, by role.  The ordering service —
    // every OSN plus the broker or the whole Raft cluster — must share one
    // group: OSNs call into the backend synchronously (core/config.h).
    std::vector<std::uint64_t> client_nodes;
    std::vector<std::uint64_t> peer_nodes;
    std::vector<std::uint64_t> ordering_nodes;
    for (std::uint32_t c = 0; c < config_.clients; ++c) {
        client_nodes.push_back(kClientNodeBase + c);
    }
    for (std::uint32_t i = 0; i < config_.total_peers(); ++i) {
        peer_nodes.push_back(kPeerNodeBase + i);
    }
    for (std::uint32_t i = 0; i < config_.osns; ++i) {
        ordering_nodes.push_back(kOsnNodeBase + i);
    }
    if (config_.ordering_backend == orderer::OrderingBackendKind::kRaft) {
        // Raft node 0 shares the broker's well-known address (raft/raft.h).
        for (std::uint32_t i = 0; i < config_.raft.nodes; ++i) {
            ordering_nodes.push_back(raft::kRaftNodeBase + i);
        }
    } else {
        ordering_nodes.push_back(kBrokerNode);
    }

    // Message faults draw per-send from one shared fault stream — a
    // cross-group hazard — so such configs demote to the serial engine
    // (byte-identical by the partition-equivalence contract anyway).
    PartitionScheme scheme = config_.partition.scheme;
    if (config_.faults.messages.any()) {
        scheme = PartitionScheme::kSingle;
    }

    std::map<std::uint64_t, std::size_t> groups;  // node -> group (deduped)
    PartitionPlan plan;
    switch (scheme) {
    case PartitionScheme::kSingle:
        plan.group_count = 1;
        plan.ordering_group = 0;
        for (const std::uint64_t n : client_nodes) groups[n] = 0;
        for (const std::uint64_t n : peer_nodes) groups[n] = 0;
        for (const std::uint64_t n : ordering_nodes) groups[n] = 0;
        break;
    case PartitionScheme::kRoles:
        // clients | one group per peer org | ordering service.
        plan.group_count = static_cast<std::size_t>(config_.orgs) + 2;
        plan.ordering_group = plan.group_count - 1;
        for (const std::uint64_t n : client_nodes) groups[n] = 0;
        for (std::size_t i = 0; i < peer_nodes.size(); ++i) {
            groups[peer_nodes[i]] = 1 + i / config_.peers_per_org;
        }
        for (const std::uint64_t n : ordering_nodes) groups[n] = plan.ordering_group;
        break;
    case PartitionScheme::kPerNode:
        plan.group_count = client_nodes.size() + peer_nodes.size() + 1;
        plan.ordering_group = plan.group_count - 1;
        for (std::size_t c = 0; c < client_nodes.size(); ++c) {
            groups[client_nodes[c]] = c;
        }
        for (std::size_t i = 0; i < peer_nodes.size(); ++i) {
            groups[peer_nodes[i]] = client_nodes.size() + i;
        }
        for (const std::uint64_t n : ordering_nodes) groups[n] = plan.ordering_group;
        break;
    case PartitionScheme::kCustom: {
        const auto& m = config_.partition.groups;
        const auto lookup = [&m](std::uint64_t node) {
            const auto it = m.find(node);
            if (it == m.end()) {
                throw std::invalid_argument(
                    "PartitionConfig::groups: node " + std::to_string(node) +
                    " has no group assignment");
            }
            return it->second;
        };
        for (const std::uint64_t n : client_nodes) groups[n] = lookup(n);
        for (const std::uint64_t n : peer_nodes) groups[n] = lookup(n);
        // One entry (any ordering address) places the whole ordering
        // service; split assignments are rejected.
        plan.ordering_group = lookup(ordering_nodes.front());
        for (const std::uint64_t n : ordering_nodes) {
            if (const auto it = m.find(n);
                it != m.end() && it->second != plan.ordering_group) {
                throw std::invalid_argument(
                    "PartitionConfig::groups: the ordering service (OSNs + "
                    "broker/Raft) must share one group");
            }
            groups[n] = plan.ordering_group;
        }
        std::size_t max_group = 0;
        for (const auto& [node, g] : groups) max_group = std::max(max_group, g);
        plan.group_count = max_group + 1;
        std::vector<char> used(plan.group_count, 0);
        for (const auto& [node, g] : groups) used[g] = 1;
        if (std::find(used.begin(), used.end(), 0) != used.end()) {
            throw std::invalid_argument(
                "PartitionConfig::groups: group indices must be contiguous "
                "starting at 0");
        }
        break;
    }
    }
    plan.node_group.assign(groups.begin(), groups.end());
    return plan;
}

void FabricNetwork::build() {
    const PartitionPlan plan = resolve_partition_plan();
    ordering_group_ = plan.ordering_group;
    sims_.reserve(plan.group_count);
    for (std::size_t g = 0; g < plan.group_count; ++g) {
        sims_.push_back(std::make_unique<sim::Simulator>());
    }
    std::vector<sim::Simulator*> raw;
    raw.reserve(sims_.size());
    for (const auto& s : sims_) raw.push_back(s.get());
    // Lookahead = the guaranteed cross-group latency floor.  With one group
    // the value is unused (serial fast path); with more, the PartitionSet
    // constructor rejects a non-positive floor (zero-latency links admit no
    // conservative window).
    partitions_ = std::make_unique<sim::PartitionSet>(
        std::move(raw), sim::Network::link_floor(config_.link_params));
    for (const auto& [node, group] : plan.node_group) {
        partitions_->map_domain(node, group);
    }

    net_ = std::make_unique<sim::Network>(*sims_[0], rng_.split("network"),
                                          config_.link_params);
    // Always attached — even single-group — so the jitter stream layout is
    // identical at every partition scheme (per-from streams, sim/network.h).
    net_->attach_partitions(partitions_.get());
    for (const auto& [node, group] : plan.node_group) {
        net_->register_node(NodeId{node});
    }

    sim::Simulator& osim = *sims_[ordering_group_];
    if (config_.ordering_backend == orderer::OrderingBackendKind::kRaft) {
        // The Raft rng is derived straight from the seed (like the key
        // store's), NOT split from rng_: Rng::split advances the parent, so
        // splitting here would shift every later component stream and break
        // the mq-vs-raft byte-identity contract (DESIGN.md §15).
        sim::DomainScope scope(osim, kBrokerNode);
        raft_backend_ = std::make_unique<raft::RaftOrderingBackend>(
            osim, *net_, Rng(config_.seed ^ 0x5241465453454431ull),  // "RAFTSED1"
            config_.raft);
        ordering_ = raft_backend_.get();
    } else {
        mq::BrokerParams broker_params;
        broker_params.node = NodeId{kBrokerNode};
        sim::DomainScope scope(osim, kBrokerNode);
        broker_ = std::make_unique<mq::Broker<orderer::OrderedRecord>>(
            osim, *net_, broker_params);
        mq_backend_ = std::make_unique<orderer::MqOrderingBackend>(*broker_);
        ordering_ = mq_backend_.get();
    }

    keys_.set_seed(config_.seed ^ 0x4B45595345454431ull);  // "KEYSEED1"

    // Endorsement policy: k-of-n over the organizations (0 = all orgs).
    const std::uint32_t k =
        config_.endorsement_k == 0 ? config_.orgs
                                   : std::min(config_.endorsement_k, config_.orgs);
    config_.channel.endorsement_policy =
        policy::EndorsementPolicy::k_of_n_orgs(k, config_.orgs);

    // Topics: one per priority level (a single one in baseline mode).
    for (std::uint32_t level = 0; level < config_.channel.effective_levels(); ++level) {
        ordering_->create_topic(config_.channel.topic_for_level(level));
    }

    peer::CalculatorFactory factory = config_.calculator_factory;
    if (!factory) {
        factory = [] { return std::make_unique<peer::StaticChaincodeCalculator>(); };
    }

    // Peers — each constructed on its group's simulator, under its own
    // scheduling domain so any constructor-scheduled event keys identically
    // at every layout.
    for (std::uint32_t org = 0; org < config_.orgs; ++org) {
        for (std::uint32_t p = 0; p < config_.peers_per_org; ++p) {
            const std::uint64_t index = org * config_.peers_per_org + p;
            const std::uint64_t node = kPeerNodeBase + index;
            crypto::Identity identity{
                "org" + std::to_string(org) + ".peer" + std::to_string(p), OrgId{org}};
            keys_.register_identity(identity);
            sim::Simulator& psim = partitions_->sim_of(node);
            sim::DomainScope scope(psim, node);
            peers_.push_back(std::make_unique<peer::Peer>(
                psim, *net_, keys_, registry_, config_.channel, config_.peer_params,
                PeerId{index}, NodeId{node}, identity, factory(),
                rng_.split("peer" + std::to_string(index))));
        }
    }

    // OSNs, each with its own local-clock skew; all on the ordering group.
    for (std::uint32_t i = 0; i < config_.osns; ++i) {
        crypto::Identity identity{"osn" + std::to_string(i), OrgId{0}};
        keys_.register_identity(identity);
        orderer::OsnParams params = config_.osn_params;
        params.clock_skew = Duration::from_seconds(
            rng_.split("osnskew" + std::to_string(i))
                .uniform(0.0, config_.max_osn_clock_skew.as_seconds()));
        sim::DomainScope scope(osim, kOsnNodeBase + i);
        osns_.push_back(std::make_unique<orderer::Osn>(
            osim, *net_, *ordering_, keys_, config_.channel, params, OsnId{i},
            NodeId{kOsnNodeBase + i}));
    }

    // Each peer receives blocks from one OSN (round-robin).
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        peer::Peer* p = peers_[i].get();
        osns_[i % osns_.size()]->connect_peer(
            p->node(),
            [p](std::shared_ptr<const ledger::Block> block) {
                p->deliver_block(std::move(block));
            });
    }

    // Clients: endorse at every peer, anchor at a round-robin peer.
    for (std::uint32_t c = 0; c < config_.clients; ++c) {
        const std::uint64_t node = kClientNodeBase + c;
        crypto::Identity identity{"client" + std::to_string(c),
                                  OrgId{c % config_.orgs}};
        keys_.register_identity(identity);
        sim::Simulator& csim = partitions_->sim_of(node);
        sim::DomainScope scope(csim, node);
        clients_.push_back(std::make_unique<client::Client>(
            csim, *net_, keys_, config_.channel, config_.client_params, ClientId{c},
            NodeId{node}, identity, rng_.split("client" + std::to_string(c))));

        std::vector<peer::Peer*> endorsers;
        endorsers.reserve(peers_.size());
        for (const auto& p : peers_) {
            endorsers.push_back(p.get());
        }
        std::vector<orderer::Osn*> osn_ptrs;
        osn_ptrs.reserve(osns_.size());
        for (const auto& o : osns_) {
            osn_ptrs.push_back(o.get());
        }
        clients_.back()->connect(std::move(endorsers), std::move(osn_ptrs),
                                 peers_[c % peers_.size()].get());
    }

    // Start the ordering service last so subscriptions see a clean log.
    // Generator timers scheduled here key under the OSN's domain.
    for (std::size_t i = 0; i < osns_.size(); ++i) {
        sim::DomainScope scope(osim, kOsnNodeBase + i);
        osns_[i]->start();
    }

    // Fault injection — gated so fault-free configs split no extra rng
    // streams and schedule no extra events (byte-identity contract).
    if (config_.faults.enabled()) {
        if (config_.faults.messages.any()) {
            // Only reachable in single-group mode (the plan demoted above).
            net_->set_message_faults(config_.faults.messages, rng_.split("msgfault"));
        }
        fault_schedule_ = config_.faults.schedule;
        if (config_.faults.profile) {
            const std::vector<fault::ScheduledFault> generated =
                fault::make_fault_schedule(*config_.faults.profile,
                                           rng_.split("faultplan"), config_.osns,
                                           config_.total_peers(),
                                           raft_backend_ ? config_.raft.nodes : 0);
            fault_schedule_.insert(fault_schedule_.end(), generated.begin(),
                                   generated.end());
        }
        std::stable_sort(fault_schedule_.begin(), fault_schedule_.end(),
                         [](const fault::ScheduledFault& a,
                            const fault::ScheduledFault& b) { return a.at < b.at; });
        // Each fault event runs on its target component's group, under the
        // target's domain (layout-identical keys, no cross-group access).
        for (const fault::ScheduledFault& f : fault_schedule_) {
            const std::uint64_t d = fault_domain(f);
            const std::size_t g = partitions_->group_of(d);
            sim::Simulator& s = *sims_[g];
            sim::DomainScope scope(s, d);
            s.schedule_after(f.at, [this, f, g] { apply_fault(f, g); });
        }
    }

    // Guard against runaway configurations (events scale with tx volume).
    for (const auto& s : sims_) {
        s->set_event_limit(500'000'000);
    }

    // Multi-group observer buffering: per-group sinks journal the executing
    // event's key with every emission; drain_observers() merges them into
    // the user sinks in exact serial emission order.
    if (sims_.size() > 1) {
        group_sinks_.reserve(sims_.size());
        for (const auto& s : sims_) {
            auto sink = std::make_unique<obs::TraceSink>();
            sink->set_order_source(s.get());
            group_sinks_.push_back(std::move(sink));
        }
        tx_buffers_.resize(sims_.size());
    }
}

std::uint64_t FabricNetwork::fault_domain(const fault::ScheduledFault& f) const {
    switch (f.kind) {
    case fault::FaultKind::kOsnCrash:
    case fault::FaultKind::kOsnRestart:
        return kOsnNodeBase + f.target % osns_.size();
    case fault::FaultKind::kEndorserDown:
    case fault::FaultKind::kEndorserUp:
    case fault::FaultKind::kEndorserSlow:
    case fault::FaultKind::kEndorserNormal:
        return kPeerNodeBase + f.target % peers_.size();
    default:
        // Broker and Raft faults act on the ordering service as a whole.
        return kBrokerNode;
    }
}

void FabricNetwork::apply_fault(const fault::ScheduledFault& f, std::size_t group) {
    faults_applied_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t actor = 0;
    obs::ActorKind kind = obs::ActorKind::kOsn;
    switch (f.kind) {
    case fault::FaultKind::kOsnCrash: {
        const std::size_t i = f.target % osns_.size();
        osns_[i]->crash();
        actor = i;
        break;
    }
    case fault::FaultKind::kOsnRestart: {
        const std::size_t i = f.target % osns_.size();
        osns_[i]->restart();
        actor = i;
        break;
    }
    case fault::FaultKind::kEndorserDown: {
        const std::size_t i = f.target % peers_.size();
        peers_[i]->set_endorser_down(true);
        actor = i;
        kind = obs::ActorKind::kPeer;
        break;
    }
    case fault::FaultKind::kEndorserUp: {
        const std::size_t i = f.target % peers_.size();
        peers_[i]->set_endorser_down(false);
        actor = i;
        kind = obs::ActorKind::kPeer;
        break;
    }
    case fault::FaultKind::kEndorserSlow: {
        const std::size_t i = f.target % peers_.size();
        peers_[i]->set_endorse_slowdown(f.factor);
        actor = i;
        kind = obs::ActorKind::kPeer;
        break;
    }
    case fault::FaultKind::kEndorserNormal: {
        const std::size_t i = f.target % peers_.size();
        peers_[i]->set_endorse_slowdown(1.0);
        actor = i;
        kind = obs::ActorKind::kPeer;
        break;
    }
    case fault::FaultKind::kBrokerDown:
        ordering_->set_down(true);
        kind = obs::ActorKind::kBroker;
        break;
    case fault::FaultKind::kBrokerUp:
        ordering_->set_down(false);
        kind = obs::ActorKind::kBroker;
        break;
    // Raft-backend faults: no-ops under mq, so a schedule mixing both kinds
    // can drive either backend.
    case fault::FaultKind::kRaftLeaderKill:
        if (raft_backend_) raft_backend_->kill_leader();
        kind = obs::ActorKind::kRaft;
        break;
    case fault::FaultKind::kRaftNodeCrash:
        if (raft_backend_) {
            const std::uint32_t i = f.target % raft_backend_->node_count();
            raft_backend_->crash_node(i);
            actor = i;
        }
        kind = obs::ActorKind::kRaft;
        break;
    case fault::FaultKind::kRaftNodeRestart:
        if (raft_backend_) {
            raft_backend_->restart_node(f.target);
            actor = f.target == raft::kAllNodes
                        ? 0
                        : f.target % raft_backend_->node_count();
        }
        kind = obs::ActorKind::kRaft;
        break;
    case fault::FaultKind::kRaftPartition:
        if (raft_backend_) {
            const std::uint32_t i = f.target % raft_backend_->node_count();
            raft_backend_->partition_node(i);
            actor = i;
        }
        kind = obs::ActorKind::kRaft;
        break;
    case fault::FaultKind::kRaftHeal:
        if (raft_backend_) raft_backend_->heal_partitions();
        kind = obs::ActorKind::kRaft;
        break;
    case fault::FaultKind::kRaftDrop:
        if (raft_backend_) raft_backend_->set_drop_prob(f.factor);
        kind = obs::ActorKind::kRaft;
        break;
    }
    if (obs::TraceSink* sink = group_trace(group)) {
        obs::TraceEvent ev;
        ev.at = sims_[group]->now();
        ev.type = obs::EventType::kFault;
        ev.actor_kind = kind;
        ev.actor = actor;
        ev.value = static_cast<std::uint64_t>(f.kind);
        ev.value2 = f.target;
        sink->emit(ev);
    }
}

mq::Broker<orderer::OrderedRecord>& FabricNetwork::broker() {
    if (!broker_) {
        throw std::logic_error(
            "FabricNetwork::broker: Raft backend configured — use ordering()");
    }
    return *broker_;
}

void FabricNetwork::set_tx_sink(std::function<void(const client::TxRecord&)> sink) {
    if (sims_.size() == 1) {
        for (const auto& c : clients_) {
            c->set_on_complete(sink);
        }
        return;
    }
    user_tx_sink_ = std::move(sink);
    for (std::size_t c = 0; c < clients_.size(); ++c) {
        if (!user_tx_sink_) {
            clients_[c]->set_on_complete(nullptr);
            continue;
        }
        const std::size_t g = partitions_->group_of(kClientNodeBase + c);
        clients_[c]->set_on_complete([this, g](const client::TxRecord& r) {
            tx_buffers_[g].push_back({sims_[g]->current_key(), r});
        });
    }
}

obs::TraceSink* FabricNetwork::group_trace(std::size_t group) {
    if (trace_ == nullptr) return nullptr;
    return sims_.size() == 1 ? trace_ : group_sinks_[group].get();
}

void FabricNetwork::set_trace_sink(obs::TraceSink* sink) {
    trace_ = sink;  // kFault events + the merge target in multi-group mode
    for (std::size_t c = 0; c < clients_.size(); ++c) {
        clients_[c]->set_trace(group_trace(partitions_->group_of(kClientNodeBase + c)));
    }
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        peers_[i]->set_trace(group_trace(partitions_->group_of(kPeerNodeBase + i)));
    }
    for (const auto& o : osns_) o->set_trace(group_trace(ordering_group_));
    if (raft_backend_) {
        raft_backend_->set_trace(group_trace(ordering_group_));  // election events
    }
    if (audit_) audit_->set_trace(sink);  // detector events (single-group only)
    install_broker_hook();
}

void FabricNetwork::set_audit(obs::audit::AuditAccountant* audit) {
    if (audit != nullptr && sims_.size() > 1) {
        throw std::logic_error(
            "FabricNetwork::set_audit: the audit accountant observes global "
            "order across every component — audited runs use the serial engine "
            "(PartitionScheme::kSingle); results are byte-identical");
    }
    audit_ = audit;
    if (audit_) audit_->set_trace(trace_);
    for (const auto& c : clients_) c->set_audit(audit);
    for (const auto& p : peers_) p->set_audit(audit);
    // One dequeue observer: all OSNs cut identical blocks, so the audit
    // replays OSN 0's generator decisions against the shadow scheduler.
    osns_.front()->set_audit(audit);
    install_broker_hook();
}

void FabricNetwork::install_broker_hook() {
    obs::TraceSink* sink = group_trace(ordering_group_);
    obs::audit::AuditAccountant* audit = audit_;
    if (sink == nullptr && audit == nullptr) {
        ordering_->set_on_append(nullptr);
        return;
    }
    // The broker is record-agnostic, so the topic->level mapping lives here.
    std::unordered_map<std::string, PriorityLevel> levels;
    for (std::uint32_t l = 0; l < config_.channel.effective_levels(); ++l) {
        levels.emplace(config_.channel.topic_for_level(l), l);
    }
    ordering_->set_on_append(
        [sink, audit, levels = std::move(levels), sim = sims_[ordering_group_].get()](
            const std::string& topic, mq::Offset offset,
            const orderer::OrderedRecord& rec, std::size_t wire) {
            if (rec.is_config()) return;  // config updates carry no tx id
            PriorityLevel level = kUnassignedPriority;
            if (const auto it = levels.find(topic); it != levels.end()) {
                level = it->second;
            }
            if (audit && !rec.is_ttc()) {
                // Wire bytes are paid per append, resubmissions included;
                // arrival order is first-append only (on_enqueue dedups).
                audit->charge(obs::audit::ResourceKind::kOrderingBandwidth,
                              rec.envelope->proposal.client.value(),
                              rec.envelope->proposal.chaincode,
                              static_cast<double>(wire), sim->now());
                audit->on_enqueue(level, rec.envelope->tx_id().value(), sim->now());
            }
            if (sink == nullptr) return;
            obs::TraceEvent ev;
            ev.at = sim->now();
            ev.actor_kind = obs::ActorKind::kBroker;
            ev.actor = 0;
            ev.priority = level;
            ev.value = offset;
            ev.value2 = wire;
            if (rec.is_ttc()) {
                ev.type = obs::EventType::kTtcEnqueue;
                ev.block = rec.ttc_block;
            } else {
                ev.type = obs::EventType::kEnqueue;
                ev.tx = rec.envelope->tx_id().value();
            }
            sink->emit(ev);
        });
}

void FabricNetwork::run(ThreadPool* pool) {
    partitions_->run(pool);
    drain_observers();
}

std::uint64_t FabricNetwork::advance_until(TimePoint end, ThreadPool* pool) {
    const std::uint64_t executed = partitions_->advance_until(end, pool);
    drain_observers();
    return executed;
}

std::uint64_t FabricNetwork::events_executed() const {
    std::uint64_t total = 0;
    for (const auto& s : sims_) total += s->events_executed();
    return total;
}

void FabricNetwork::drain_observers() {
    if (sims_.size() == 1) return;  // sinks wired directly, nothing buffered

    // Serial emission order: every buffered entry carries the EventKey of
    // the simulator event that produced it; global heap-pop order equals
    // lexicographic key order, and within one event emissions happen in
    // buffer order — so sorting by (key, group, index) reconstructs the
    // exact order a single-simulator run would have emitted.  (The group
    // component of the tiebreak never actually decides: one event executes
    // in exactly one group.)
    struct Ref {
        sim::EventKey key;
        std::size_t group;
        std::size_t idx;
    };
    const auto by_serial_order = [](const Ref& a, const Ref& b) {
        if (a.key != b.key) return a.key < b.key;
        if (a.group != b.group) return a.group < b.group;
        return a.idx < b.idx;
    };

    std::size_t total_traces = 0;
    for (const auto& s : group_sinks_) total_traces += s->size();
    if (total_traces > 0) {
        std::vector<Ref> refs;
        refs.reserve(total_traces);
        for (std::size_t g = 0; g < group_sinks_.size(); ++g) {
            const auto& keys = group_sinks_[g]->keys();
            for (std::size_t i = 0; i < keys.size(); ++i) {
                refs.push_back({keys[i], g, i});
            }
        }
        std::sort(refs.begin(), refs.end(), by_serial_order);
        if (trace_ != nullptr) {
            for (const Ref& r : refs) {
                trace_->emit(group_sinks_[r.group]->events()[r.idx]);
            }
        }
        for (const auto& s : group_sinks_) s->clear();
    }

    std::size_t total_txs = 0;
    for (const auto& b : tx_buffers_) total_txs += b.size();
    if (total_txs > 0) {
        std::vector<Ref> refs;
        refs.reserve(total_txs);
        for (std::size_t g = 0; g < tx_buffers_.size(); ++g) {
            for (std::size_t i = 0; i < tx_buffers_[g].size(); ++i) {
                refs.push_back({tx_buffers_[g][i].key, g, i});
            }
        }
        std::sort(refs.begin(), refs.end(), by_serial_order);
        if (user_tx_sink_) {
            for (const Ref& r : refs) {
                user_tx_sink_(tx_buffers_[r.group][r.idx].rec);
            }
        }
        for (auto& b : tx_buffers_) b.clear();
    }
}

void FabricNetwork::register_metrics(obs::MetricRegistry& registry,
                                     const std::string& prefix) {
    // Queue depth (consumer lag) per priority level, seen by OSN 0's
    // generator: records appended minus records its subscription consumed.
    const orderer::Osn* osn0 = osns_.front().get();
    for (std::uint32_t l = 0; l < config_.channel.effective_levels(); ++l) {
        const std::string topic = config_.channel.topic_for_level(l);
        registry.add_gauge(
            prefix + "queue_depth_p" + std::to_string(l), [this, osn0, topic, l] {
                const auto* gen = osn0->generator();
                const std::uint64_t consumed =
                    gen ? gen->subscriptions()[l]->consumed_count() : 0;
                return static_cast<double>(ordering_->topic_size(topic)) -
                       static_cast<double>(consumed);
            });
    }
    for (std::uint32_t l = 0; l < config_.channel.effective_levels(); ++l) {
        registry.add_gauge(prefix + "block_fill_p" + std::to_string(l), [osn0, l] {
            return static_cast<double>(osn0->level_totals()[l]);
        });
    }
    registry.add_gauge(prefix + "blocks_cut", [osn0] {
        const auto* gen = osn0->generator();
        return gen ? static_cast<double>(gen->blocks_cut()) : 0.0;
    });
    registry.add_gauge(prefix + "quota_transfers", [osn0] {
        const auto* gen = osn0->generator();
        return gen ? static_cast<double>(gen->quota_transfers()) : 0.0;
    });
    registry.add_gauge(prefix + "ttcs_sent", [this] {
        double total = 0.0;
        for (const auto& o : osns_) {
            if (const auto* gen = o->generator()) {
                total += static_cast<double>(gen->ttcs_sent());
            }
        }
        return total;
    });
    registry.add_gauge(prefix + "stale_ttcs", [this] {
        double total = 0.0;
        for (const auto& o : osns_) {
            if (const auto* gen = o->generator()) {
                total += static_cast<double>(gen->stale_ttcs_skipped());
            }
        }
        return total;
    });
    registry.add_gauge(prefix + "mvcc_priority_wins", [this] {
        double total = 0.0;
        for (const auto& p : peers_) {
            total += static_cast<double>(p->mvcc_priority_wins());
        }
        return total;
    });
    registry.add_gauge(prefix + "mvcc_fifo_wins", [this] {
        double total = 0.0;
        for (const auto& p : peers_) {
            total += static_cast<double>(p->mvcc_fifo_wins());
        }
        return total;
    });
    registry.add_gauge(prefix + "txs_valid", [this] {
        return static_cast<double>(peers_.front()->txs_valid());
    });
    registry.add_gauge(prefix + "txs_invalid", [this] {
        return static_cast<double>(peers_.front()->txs_invalid());
    });
    registry.add_gauge(prefix + "endorse_failures", [this] {
        double total = 0.0;
        for (const auto& c : clients_) {
            total += static_cast<double>(c->client_side_failures());
        }
        return total;
    });
    registry.add_gauge(prefix + "consolidation_failures", [this] {
        double total = 0.0;
        for (const auto& o : osns_) {
            total += static_cast<double>(o->consolidation_failures());
        }
        return total;
    });
    // Degradation gauges (appended — tests look gauges up by name, so new
    // entries never shift existing series).  All zero in fault-free runs.
    registry.add_gauge(prefix + "endorse_timeouts", [this] {
        double total = 0.0;
        for (const auto& c : clients_) total += static_cast<double>(c->endorse_timeouts());
        return total;
    });
    registry.add_gauge(prefix + "endorse_retries", [this] {
        double total = 0.0;
        for (const auto& c : clients_) total += static_cast<double>(c->endorse_retries());
        return total;
    });
    registry.add_gauge(prefix + "resubmissions", [this] {
        double total = 0.0;
        for (const auto& c : clients_) total += static_cast<double>(c->resubmissions());
        return total;
    });
    registry.add_gauge(prefix + "commit_timeouts", [this] {
        double total = 0.0;
        for (const auto& c : clients_) total += static_cast<double>(c->commit_timeouts());
        return total;
    });
    registry.add_gauge(prefix + "osn_crashes", [this] {
        double total = 0.0;
        for (const auto& o : osns_) total += static_cast<double>(o->crashes());
        return total;
    });
    registry.add_gauge(prefix + "osn_restarts", [this] {
        double total = 0.0;
        for (const auto& o : osns_) total += static_cast<double>(o->restarts());
        return total;
    });
    registry.add_gauge(prefix + "messages_dropped", [this] {
        return static_cast<double>(net_->messages_dropped());
    });
    registry.add_gauge(prefix + "messages_duplicated", [this] {
        return static_cast<double>(net_->messages_duplicated());
    });
    registry.add_gauge(prefix + "broker_deferred_appends", [this] {
        return static_cast<double>(ordering_->deferred_appends_total());
    });
    // Parallel-validation gauges (appended, same contract as above).  All
    // zero in ValidationMode::kSerial, and — since the wave schedule is a
    // pure function of block contents — identical at every pool size.
    registry.add_gauge(prefix + "validation_parallel_blocks", [this] {
        return static_cast<double>(peers_.front()->blocks_wave_validated());
    });
    registry.add_gauge(prefix + "validation_parallel_waves", [this] {
        return static_cast<double>(peers_.front()->validation_waves());
    });
    registry.add_gauge(prefix + "validation_conflict_edges", [this] {
        return static_cast<double>(peers_.front()->conflict_edges());
    });
    registry.add_gauge(prefix + "validation_parallel_txs", [this] {
        return static_cast<double>(peers_.front()->txs_parallel_checked());
    });
    registry.add_gauge(prefix + "validation_largest_component", [this] {
        return static_cast<double>(peers_.front()->largest_conflict_component());
    });

    // Sharded world-state gauges (peer 0).  Only the deterministic counters
    // are exported — lock *acquisitions* are a pure function of the access
    // sequence, so these samples stay byte-identical at any --threads; the
    // host-dependent try-lock contention counters deliberately never appear
    // here (DESIGN.md §13).
    registry.add_gauge(prefix + "state_keys", [this] {
        return static_cast<double>(peers_.front()->state().key_count());
    });
    registry.add_gauge(prefix + "state_bytes", [this] {
        return static_cast<double>(peers_.front()->state().approx_memory_bytes());
    });
    registry.add_gauge(prefix + "state_shard_max_keys", [this] {
        return static_cast<double>(peers_.front()->state().max_shard_keys());
    });
    registry.add_gauge(prefix + "state_shard_read_locks", [this] {
        return static_cast<double>(peers_.front()->state().total_stats().read_locks);
    });
    registry.add_gauge(prefix + "state_shard_write_locks", [this] {
        return static_cast<double>(
            peers_.front()->state().total_stats().write_locks);
    });
    registry.add_gauge(prefix + "state_shard_hottest_reads", [this] {
        const ledger::WorldState& state = peers_.front()->state();
        std::uint64_t hottest = 0;
        for (std::size_t i = 0; i < state.shard_count(); ++i) {
            hottest = std::max(hottest, state.shard_stats(i).read_locks);
        }
        return static_cast<double>(hottest);
    });

    // Fairness-audit gauges: live detector counters, 0 when no accountant is
    // attached (the gauges read through the member so set_audit ordering
    // relative to register_metrics does not matter).
    registry.add_gauge(prefix + "audit_priority_inversions", [this] {
        return audit_ ? static_cast<double>(audit_->priority_inversions()) : 0.0;
    });
    registry.add_gauge(prefix + "audit_starvations", [this] {
        return audit_ ? static_cast<double>(audit_->starvation_incidents()) : 0.0;
    });
    registry.add_gauge(prefix + "audit_alarm_trips", [this] {
        return audit_ ? static_cast<double>(audit_->alarm_trips()) : 0.0;
    });
    registry.add_gauge(prefix + "audit_windows_closed", [this] {
        return audit_ ? static_cast<double>(audit_->windows_closed()) : 0.0;
    });

    // Raft-backend gauges (appended, same never-shift contract).  All zero
    // under the mq backend, so mq metrics JSON gains only constant columns.
    registry.add_gauge(prefix + "raft_term", [this] {
        return raft_backend_ ? static_cast<double>(raft_backend_->current_term())
                             : 0.0;
    });
    registry.add_gauge(prefix + "raft_leader_changes", [this] {
        return raft_backend_ ? static_cast<double>(raft_backend_->leader_changes())
                             : 0.0;
    });
    registry.add_gauge(prefix + "raft_elections", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->elections_started())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_commit_index", [this] {
        return raft_backend_ ? static_cast<double>(raft_backend_->commit_index())
                             : 0.0;
    });
    registry.add_gauge(prefix + "raft_replication_lag", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->replication_lag())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_snapshot_installs", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->snapshot_installs())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_resubmissions", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->leader_resubmissions())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_dup_commits_skipped", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->duplicate_commits_skipped())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_messages_dropped", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->messages_dropped())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_consensus_messages", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->consensus_messages())
                   : 0.0;
    });
}

void FabricNetwork::update_block_policy(const policy::BlockFormationPolicy& new_policy) {
    // Tag the synchronous submit with OSN 0's domain (the submitting
    // component) so the resulting event keys are layout-identical.
    sim::DomainScope scope(*sims_[ordering_group_], kOsnNodeBase);
    osns_.front()->submit_config_update(new_policy);
}

void FabricNetwork::seed_state(const std::string& key, const std::string& value) {
    for (const auto& p : peers_) {
        p->seed_state(key, value);
    }
}

bool FabricNetwork::chains_identical() const {
    for (std::size_t i = 1; i < peers_.size(); ++i) {
        if (peers_[i]->chain().chain_fingerprint() !=
            peers_[0]->chain().chain_fingerprint()) {
            return false;
        }
        if (peers_[i]->chain().height() != peers_[0]->chain().height()) {
            return false;
        }
    }
    return true;
}

bool FabricNetwork::states_identical() const {
    for (std::size_t i = 1; i < peers_.size(); ++i) {
        if (peers_[i]->state().fingerprint() != peers_[0]->state().fingerprint()) {
            return false;
        }
    }
    return true;
}

bool FabricNetwork::osn_blocks_identical() const {
    for (std::size_t i = 1; i < osns_.size(); ++i) {
        if (osns_[i]->block_hashes() != osns_[0]->block_hashes()) {
            return false;
        }
    }
    return true;
}

bool FabricNetwork::osn_blocks_prefix_consistent() const {
    const std::vector<crypto::Digest>* longest = &osns_[0]->block_hashes();
    for (std::size_t i = 1; i < osns_.size(); ++i) {
        if (osns_[i]->block_hashes().size() > longest->size()) {
            longest = &osns_[i]->block_hashes();
        }
    }
    for (const auto& o : osns_) {
        const std::vector<crypto::Digest>& h = o->block_hashes();
        if (!std::equal(h.begin(), h.end(), longest->begin())) {
            return false;
        }
    }
    return true;
}

}  // namespace fl::core
