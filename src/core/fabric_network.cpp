#include "core/fabric_network.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "fault/injector.h"
#include "obs/audit/audit.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace fl::core {

namespace {
constexpr std::uint64_t kPeerNodeBase = 100;
constexpr std::uint64_t kOsnNodeBase = 200;
constexpr std::uint64_t kClientNodeBase = 300;
constexpr std::uint64_t kBrokerNode = 9000;
}  // namespace

FabricNetwork::FabricNetwork(NetworkConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      registry_(chaincode::Registry::with_standard_contracts(
          config_.channel.effective_levels())) {
    if (config_.orgs == 0 || config_.peers_per_org == 0 || config_.osns == 0 ||
        config_.clients == 0) {
        throw std::invalid_argument("NetworkConfig: all component counts must be >= 1");
    }
    build();
}

void FabricNetwork::build() {
    net_ = std::make_unique<sim::Network>(sim_, rng_.split("network"),
                                          config_.link_params);
    if (config_.ordering_backend == orderer::OrderingBackendKind::kRaft) {
        // The Raft rng is derived straight from the seed (like the key
        // store's), NOT split from rng_: Rng::split advances the parent, so
        // splitting here would shift every later component stream and break
        // the mq-vs-raft byte-identity contract (DESIGN.md §15).
        raft_backend_ = std::make_unique<raft::RaftOrderingBackend>(
            sim_, *net_, Rng(config_.seed ^ 0x5241465453454431ull),  // "RAFTSED1"
            config_.raft);
        ordering_ = raft_backend_.get();
    } else {
        mq::BrokerParams broker_params;
        broker_params.node = NodeId{kBrokerNode};
        broker_ = std::make_unique<mq::Broker<orderer::OrderedRecord>>(
            sim_, *net_, broker_params);
        mq_backend_ = std::make_unique<orderer::MqOrderingBackend>(*broker_);
        ordering_ = mq_backend_.get();
    }

    keys_.set_seed(config_.seed ^ 0x4B45595345454431ull);  // "KEYSEED1"

    // Endorsement policy: k-of-n over the organizations (0 = all orgs).
    const std::uint32_t k =
        config_.endorsement_k == 0 ? config_.orgs
                                   : std::min(config_.endorsement_k, config_.orgs);
    config_.channel.endorsement_policy =
        policy::EndorsementPolicy::k_of_n_orgs(k, config_.orgs);

    // Topics: one per priority level (a single one in baseline mode).
    for (std::uint32_t level = 0; level < config_.channel.effective_levels(); ++level) {
        ordering_->create_topic(config_.channel.topic_for_level(level));
    }

    peer::CalculatorFactory factory = config_.calculator_factory;
    if (!factory) {
        factory = [] { return std::make_unique<peer::StaticChaincodeCalculator>(); };
    }

    // Peers.
    for (std::uint32_t org = 0; org < config_.orgs; ++org) {
        for (std::uint32_t p = 0; p < config_.peers_per_org; ++p) {
            const std::uint64_t index = org * config_.peers_per_org + p;
            crypto::Identity identity{
                "org" + std::to_string(org) + ".peer" + std::to_string(p), OrgId{org}};
            keys_.register_identity(identity);
            peers_.push_back(std::make_unique<peer::Peer>(
                sim_, *net_, keys_, registry_, config_.channel, config_.peer_params,
                PeerId{index}, NodeId{kPeerNodeBase + index}, identity, factory(),
                rng_.split("peer" + std::to_string(index))));
        }
    }

    // OSNs, each with its own local-clock skew.
    for (std::uint32_t i = 0; i < config_.osns; ++i) {
        crypto::Identity identity{"osn" + std::to_string(i), OrgId{0}};
        keys_.register_identity(identity);
        orderer::OsnParams params = config_.osn_params;
        params.clock_skew = Duration::from_seconds(
            rng_.split("osnskew" + std::to_string(i))
                .uniform(0.0, config_.max_osn_clock_skew.as_seconds()));
        osns_.push_back(std::make_unique<orderer::Osn>(
            sim_, *net_, *ordering_, keys_, config_.channel, params, OsnId{i},
            NodeId{kOsnNodeBase + i}));
    }

    // Each peer receives blocks from one OSN (round-robin).
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        peer::Peer* p = peers_[i].get();
        osns_[i % osns_.size()]->connect_peer(
            p->node(),
            [p](std::shared_ptr<const ledger::Block> block) {
                p->deliver_block(std::move(block));
            });
    }

    // Clients: endorse at every peer, anchor at a round-robin peer.
    for (std::uint32_t c = 0; c < config_.clients; ++c) {
        crypto::Identity identity{"client" + std::to_string(c),
                                  OrgId{c % config_.orgs}};
        keys_.register_identity(identity);
        clients_.push_back(std::make_unique<client::Client>(
            sim_, *net_, keys_, config_.channel, config_.client_params, ClientId{c},
            NodeId{kClientNodeBase + c}, identity,
            rng_.split("client" + std::to_string(c))));

        std::vector<peer::Peer*> endorsers;
        endorsers.reserve(peers_.size());
        for (const auto& p : peers_) {
            endorsers.push_back(p.get());
        }
        std::vector<orderer::Osn*> osn_ptrs;
        osn_ptrs.reserve(osns_.size());
        for (const auto& o : osns_) {
            osn_ptrs.push_back(o.get());
        }
        clients_.back()->connect(std::move(endorsers), std::move(osn_ptrs),
                                 peers_[c % peers_.size()].get());
    }

    // Start the ordering service last so subscriptions see a clean log.
    for (const auto& osn : osns_) {
        osn->start();
    }

    // Fault injection — gated so fault-free configs split no extra rng
    // streams and schedule no extra events (byte-identity contract).
    if (config_.faults.enabled()) {
        if (config_.faults.messages.any()) {
            net_->set_message_faults(config_.faults.messages, rng_.split("msgfault"));
        }
        fault_schedule_ = config_.faults.schedule;
        if (config_.faults.profile) {
            const std::vector<fault::ScheduledFault> generated =
                fault::make_fault_schedule(*config_.faults.profile,
                                           rng_.split("faultplan"), config_.osns,
                                           config_.total_peers(),
                                           raft_backend_ ? config_.raft.nodes : 0);
            fault_schedule_.insert(fault_schedule_.end(), generated.begin(),
                                   generated.end());
        }
        std::stable_sort(fault_schedule_.begin(), fault_schedule_.end(),
                         [](const fault::ScheduledFault& a,
                            const fault::ScheduledFault& b) { return a.at < b.at; });
        for (const fault::ScheduledFault& f : fault_schedule_) {
            sim_.schedule_after(f.at, [this, f] { apply_fault(f); });
        }
    }

    // Guard against runaway configurations (events scale with tx volume).
    sim_.set_event_limit(500'000'000);
}

void FabricNetwork::apply_fault(const fault::ScheduledFault& f) {
    ++faults_applied_;
    std::uint64_t actor = 0;
    obs::ActorKind kind = obs::ActorKind::kOsn;
    switch (f.kind) {
    case fault::FaultKind::kOsnCrash: {
        const std::size_t i = f.target % osns_.size();
        osns_[i]->crash();
        actor = i;
        break;
    }
    case fault::FaultKind::kOsnRestart: {
        const std::size_t i = f.target % osns_.size();
        osns_[i]->restart();
        actor = i;
        break;
    }
    case fault::FaultKind::kEndorserDown: {
        const std::size_t i = f.target % peers_.size();
        peers_[i]->set_endorser_down(true);
        actor = i;
        kind = obs::ActorKind::kPeer;
        break;
    }
    case fault::FaultKind::kEndorserUp: {
        const std::size_t i = f.target % peers_.size();
        peers_[i]->set_endorser_down(false);
        actor = i;
        kind = obs::ActorKind::kPeer;
        break;
    }
    case fault::FaultKind::kEndorserSlow: {
        const std::size_t i = f.target % peers_.size();
        peers_[i]->set_endorse_slowdown(f.factor);
        actor = i;
        kind = obs::ActorKind::kPeer;
        break;
    }
    case fault::FaultKind::kEndorserNormal: {
        const std::size_t i = f.target % peers_.size();
        peers_[i]->set_endorse_slowdown(1.0);
        actor = i;
        kind = obs::ActorKind::kPeer;
        break;
    }
    case fault::FaultKind::kBrokerDown:
        ordering_->set_down(true);
        kind = obs::ActorKind::kBroker;
        break;
    case fault::FaultKind::kBrokerUp:
        ordering_->set_down(false);
        kind = obs::ActorKind::kBroker;
        break;
    // Raft-backend faults: no-ops under mq, so a schedule mixing both kinds
    // can drive either backend.
    case fault::FaultKind::kRaftLeaderKill:
        if (raft_backend_) raft_backend_->kill_leader();
        kind = obs::ActorKind::kRaft;
        break;
    case fault::FaultKind::kRaftNodeCrash:
        if (raft_backend_) {
            const std::uint32_t i = f.target % raft_backend_->node_count();
            raft_backend_->crash_node(i);
            actor = i;
        }
        kind = obs::ActorKind::kRaft;
        break;
    case fault::FaultKind::kRaftNodeRestart:
        if (raft_backend_) {
            raft_backend_->restart_node(f.target);
            actor = f.target == raft::kAllNodes
                        ? 0
                        : f.target % raft_backend_->node_count();
        }
        kind = obs::ActorKind::kRaft;
        break;
    case fault::FaultKind::kRaftPartition:
        if (raft_backend_) {
            const std::uint32_t i = f.target % raft_backend_->node_count();
            raft_backend_->partition_node(i);
            actor = i;
        }
        kind = obs::ActorKind::kRaft;
        break;
    case fault::FaultKind::kRaftHeal:
        if (raft_backend_) raft_backend_->heal_partitions();
        kind = obs::ActorKind::kRaft;
        break;
    case fault::FaultKind::kRaftDrop:
        if (raft_backend_) raft_backend_->set_drop_prob(f.factor);
        kind = obs::ActorKind::kRaft;
        break;
    }
    if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = obs::EventType::kFault;
        ev.actor_kind = kind;
        ev.actor = actor;
        ev.value = static_cast<std::uint64_t>(f.kind);
        ev.value2 = f.target;
        trace_->emit(ev);
    }
}

mq::Broker<orderer::OrderedRecord>& FabricNetwork::broker() {
    if (!broker_) {
        throw std::logic_error(
            "FabricNetwork::broker: Raft backend configured — use ordering()");
    }
    return *broker_;
}

void FabricNetwork::set_tx_sink(std::function<void(const client::TxRecord&)> sink) {
    for (const auto& c : clients_) {
        c->set_on_complete(sink);
    }
}

void FabricNetwork::set_trace_sink(obs::TraceSink* sink) {
    trace_ = sink;  // kFault events
    for (const auto& c : clients_) c->set_trace(sink);
    for (const auto& p : peers_) p->set_trace(sink);
    for (const auto& o : osns_) o->set_trace(sink);
    if (raft_backend_) raft_backend_->set_trace(sink);  // election events
    if (audit_) audit_->set_trace(sink);  // detector events
    install_broker_hook();
}

void FabricNetwork::set_audit(obs::audit::AuditAccountant* audit) {
    audit_ = audit;
    if (audit_) audit_->set_trace(trace_);
    for (const auto& c : clients_) c->set_audit(audit);
    for (const auto& p : peers_) p->set_audit(audit);
    // One dequeue observer: all OSNs cut identical blocks, so the audit
    // replays OSN 0's generator decisions against the shadow scheduler.
    osns_.front()->set_audit(audit);
    install_broker_hook();
}

void FabricNetwork::install_broker_hook() {
    obs::TraceSink* sink = trace_;
    obs::audit::AuditAccountant* audit = audit_;
    if (sink == nullptr && audit == nullptr) {
        ordering_->set_on_append(nullptr);
        return;
    }
    // The broker is record-agnostic, so the topic->level mapping lives here.
    std::unordered_map<std::string, PriorityLevel> levels;
    for (std::uint32_t l = 0; l < config_.channel.effective_levels(); ++l) {
        levels.emplace(config_.channel.topic_for_level(l), l);
    }
    ordering_->set_on_append(
        [sink, audit, levels = std::move(levels), sim = &sim_](
            const std::string& topic, mq::Offset offset,
            const orderer::OrderedRecord& rec, std::size_t wire) {
            if (rec.is_config()) return;  // config updates carry no tx id
            PriorityLevel level = kUnassignedPriority;
            if (const auto it = levels.find(topic); it != levels.end()) {
                level = it->second;
            }
            if (audit && !rec.is_ttc()) {
                // Wire bytes are paid per append, resubmissions included;
                // arrival order is first-append only (on_enqueue dedups).
                audit->charge(obs::audit::ResourceKind::kOrderingBandwidth,
                              rec.envelope->proposal.client.value(),
                              rec.envelope->proposal.chaincode,
                              static_cast<double>(wire), sim->now());
                audit->on_enqueue(level, rec.envelope->tx_id().value(), sim->now());
            }
            if (sink == nullptr) return;
            obs::TraceEvent ev;
            ev.at = sim->now();
            ev.actor_kind = obs::ActorKind::kBroker;
            ev.actor = 0;
            ev.priority = level;
            ev.value = offset;
            ev.value2 = wire;
            if (rec.is_ttc()) {
                ev.type = obs::EventType::kTtcEnqueue;
                ev.block = rec.ttc_block;
            } else {
                ev.type = obs::EventType::kEnqueue;
                ev.tx = rec.envelope->tx_id().value();
            }
            sink->emit(ev);
        });
}

void FabricNetwork::register_metrics(obs::MetricRegistry& registry,
                                     const std::string& prefix) {
    // Queue depth (consumer lag) per priority level, seen by OSN 0's
    // generator: records appended minus records its subscription consumed.
    const orderer::Osn* osn0 = osns_.front().get();
    for (std::uint32_t l = 0; l < config_.channel.effective_levels(); ++l) {
        const std::string topic = config_.channel.topic_for_level(l);
        registry.add_gauge(
            prefix + "queue_depth_p" + std::to_string(l), [this, osn0, topic, l] {
                const auto* gen = osn0->generator();
                const std::uint64_t consumed =
                    gen ? gen->subscriptions()[l]->consumed_count() : 0;
                return static_cast<double>(ordering_->topic_size(topic)) -
                       static_cast<double>(consumed);
            });
    }
    for (std::uint32_t l = 0; l < config_.channel.effective_levels(); ++l) {
        registry.add_gauge(prefix + "block_fill_p" + std::to_string(l), [osn0, l] {
            return static_cast<double>(osn0->level_totals()[l]);
        });
    }
    registry.add_gauge(prefix + "blocks_cut", [osn0] {
        const auto* gen = osn0->generator();
        return gen ? static_cast<double>(gen->blocks_cut()) : 0.0;
    });
    registry.add_gauge(prefix + "quota_transfers", [osn0] {
        const auto* gen = osn0->generator();
        return gen ? static_cast<double>(gen->quota_transfers()) : 0.0;
    });
    registry.add_gauge(prefix + "ttcs_sent", [this] {
        double total = 0.0;
        for (const auto& o : osns_) {
            if (const auto* gen = o->generator()) {
                total += static_cast<double>(gen->ttcs_sent());
            }
        }
        return total;
    });
    registry.add_gauge(prefix + "stale_ttcs", [this] {
        double total = 0.0;
        for (const auto& o : osns_) {
            if (const auto* gen = o->generator()) {
                total += static_cast<double>(gen->stale_ttcs_skipped());
            }
        }
        return total;
    });
    registry.add_gauge(prefix + "mvcc_priority_wins", [this] {
        double total = 0.0;
        for (const auto& p : peers_) {
            total += static_cast<double>(p->mvcc_priority_wins());
        }
        return total;
    });
    registry.add_gauge(prefix + "mvcc_fifo_wins", [this] {
        double total = 0.0;
        for (const auto& p : peers_) {
            total += static_cast<double>(p->mvcc_fifo_wins());
        }
        return total;
    });
    registry.add_gauge(prefix + "txs_valid", [this] {
        return static_cast<double>(peers_.front()->txs_valid());
    });
    registry.add_gauge(prefix + "txs_invalid", [this] {
        return static_cast<double>(peers_.front()->txs_invalid());
    });
    registry.add_gauge(prefix + "endorse_failures", [this] {
        double total = 0.0;
        for (const auto& c : clients_) {
            total += static_cast<double>(c->client_side_failures());
        }
        return total;
    });
    registry.add_gauge(prefix + "consolidation_failures", [this] {
        double total = 0.0;
        for (const auto& o : osns_) {
            total += static_cast<double>(o->consolidation_failures());
        }
        return total;
    });
    // Degradation gauges (appended — tests look gauges up by name, so new
    // entries never shift existing series).  All zero in fault-free runs.
    registry.add_gauge(prefix + "endorse_timeouts", [this] {
        double total = 0.0;
        for (const auto& c : clients_) total += static_cast<double>(c->endorse_timeouts());
        return total;
    });
    registry.add_gauge(prefix + "endorse_retries", [this] {
        double total = 0.0;
        for (const auto& c : clients_) total += static_cast<double>(c->endorse_retries());
        return total;
    });
    registry.add_gauge(prefix + "resubmissions", [this] {
        double total = 0.0;
        for (const auto& c : clients_) total += static_cast<double>(c->resubmissions());
        return total;
    });
    registry.add_gauge(prefix + "commit_timeouts", [this] {
        double total = 0.0;
        for (const auto& c : clients_) total += static_cast<double>(c->commit_timeouts());
        return total;
    });
    registry.add_gauge(prefix + "osn_crashes", [this] {
        double total = 0.0;
        for (const auto& o : osns_) total += static_cast<double>(o->crashes());
        return total;
    });
    registry.add_gauge(prefix + "osn_restarts", [this] {
        double total = 0.0;
        for (const auto& o : osns_) total += static_cast<double>(o->restarts());
        return total;
    });
    registry.add_gauge(prefix + "messages_dropped", [this] {
        return static_cast<double>(net_->messages_dropped());
    });
    registry.add_gauge(prefix + "messages_duplicated", [this] {
        return static_cast<double>(net_->messages_duplicated());
    });
    registry.add_gauge(prefix + "broker_deferred_appends", [this] {
        return static_cast<double>(ordering_->deferred_appends_total());
    });
    // Parallel-validation gauges (appended, same contract as above).  All
    // zero in ValidationMode::kSerial, and — since the wave schedule is a
    // pure function of block contents — identical at every pool size.
    registry.add_gauge(prefix + "validation_parallel_blocks", [this] {
        return static_cast<double>(peers_.front()->blocks_wave_validated());
    });
    registry.add_gauge(prefix + "validation_parallel_waves", [this] {
        return static_cast<double>(peers_.front()->validation_waves());
    });
    registry.add_gauge(prefix + "validation_conflict_edges", [this] {
        return static_cast<double>(peers_.front()->conflict_edges());
    });
    registry.add_gauge(prefix + "validation_parallel_txs", [this] {
        return static_cast<double>(peers_.front()->txs_parallel_checked());
    });
    registry.add_gauge(prefix + "validation_largest_component", [this] {
        return static_cast<double>(peers_.front()->largest_conflict_component());
    });

    // Sharded world-state gauges (peer 0).  Only the deterministic counters
    // are exported — lock *acquisitions* are a pure function of the access
    // sequence, so these samples stay byte-identical at any --threads; the
    // host-dependent try-lock contention counters deliberately never appear
    // here (DESIGN.md §13).
    registry.add_gauge(prefix + "state_keys", [this] {
        return static_cast<double>(peers_.front()->state().key_count());
    });
    registry.add_gauge(prefix + "state_bytes", [this] {
        return static_cast<double>(peers_.front()->state().approx_memory_bytes());
    });
    registry.add_gauge(prefix + "state_shard_max_keys", [this] {
        return static_cast<double>(peers_.front()->state().max_shard_keys());
    });
    registry.add_gauge(prefix + "state_shard_read_locks", [this] {
        return static_cast<double>(peers_.front()->state().total_stats().read_locks);
    });
    registry.add_gauge(prefix + "state_shard_write_locks", [this] {
        return static_cast<double>(
            peers_.front()->state().total_stats().write_locks);
    });
    registry.add_gauge(prefix + "state_shard_hottest_reads", [this] {
        const ledger::WorldState& state = peers_.front()->state();
        std::uint64_t hottest = 0;
        for (std::size_t i = 0; i < state.shard_count(); ++i) {
            hottest = std::max(hottest, state.shard_stats(i).read_locks);
        }
        return static_cast<double>(hottest);
    });

    // Fairness-audit gauges: live detector counters, 0 when no accountant is
    // attached (the gauges read through the member so set_audit ordering
    // relative to register_metrics does not matter).
    registry.add_gauge(prefix + "audit_priority_inversions", [this] {
        return audit_ ? static_cast<double>(audit_->priority_inversions()) : 0.0;
    });
    registry.add_gauge(prefix + "audit_starvations", [this] {
        return audit_ ? static_cast<double>(audit_->starvation_incidents()) : 0.0;
    });
    registry.add_gauge(prefix + "audit_alarm_trips", [this] {
        return audit_ ? static_cast<double>(audit_->alarm_trips()) : 0.0;
    });
    registry.add_gauge(prefix + "audit_windows_closed", [this] {
        return audit_ ? static_cast<double>(audit_->windows_closed()) : 0.0;
    });

    // Raft-backend gauges (appended, same never-shift contract).  All zero
    // under the mq backend, so mq metrics JSON gains only constant columns.
    registry.add_gauge(prefix + "raft_term", [this] {
        return raft_backend_ ? static_cast<double>(raft_backend_->current_term())
                             : 0.0;
    });
    registry.add_gauge(prefix + "raft_leader_changes", [this] {
        return raft_backend_ ? static_cast<double>(raft_backend_->leader_changes())
                             : 0.0;
    });
    registry.add_gauge(prefix + "raft_elections", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->elections_started())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_commit_index", [this] {
        return raft_backend_ ? static_cast<double>(raft_backend_->commit_index())
                             : 0.0;
    });
    registry.add_gauge(prefix + "raft_replication_lag", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->replication_lag())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_snapshot_installs", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->snapshot_installs())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_resubmissions", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->leader_resubmissions())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_dup_commits_skipped", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->duplicate_commits_skipped())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_messages_dropped", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->messages_dropped())
                   : 0.0;
    });
    registry.add_gauge(prefix + "raft_consensus_messages", [this] {
        return raft_backend_
                   ? static_cast<double>(raft_backend_->consensus_messages())
                   : 0.0;
    });
}

void FabricNetwork::update_block_policy(const policy::BlockFormationPolicy& new_policy) {
    osns_.front()->submit_config_update(new_policy);
}

void FabricNetwork::seed_state(const std::string& key, const std::string& value) {
    for (const auto& p : peers_) {
        p->seed_state(key, value);
    }
}

bool FabricNetwork::chains_identical() const {
    for (std::size_t i = 1; i < peers_.size(); ++i) {
        if (peers_[i]->chain().chain_fingerprint() !=
            peers_[0]->chain().chain_fingerprint()) {
            return false;
        }
        if (peers_[i]->chain().height() != peers_[0]->chain().height()) {
            return false;
        }
    }
    return true;
}

bool FabricNetwork::states_identical() const {
    for (std::size_t i = 1; i < peers_.size(); ++i) {
        if (peers_[i]->state().fingerprint() != peers_[0]->state().fingerprint()) {
            return false;
        }
    }
    return true;
}

bool FabricNetwork::osn_blocks_identical() const {
    for (std::size_t i = 1; i < osns_.size(); ++i) {
        if (osns_[i]->block_hashes() != osns_[0]->block_hashes()) {
            return false;
        }
    }
    return true;
}

bool FabricNetwork::osn_blocks_prefix_consistent() const {
    const std::vector<crypto::Digest>* longest = &osns_[0]->block_hashes();
    for (std::size_t i = 1; i < osns_.size(); ++i) {
        if (osns_[i]->block_hashes().size() > longest->size()) {
            longest = &osns_[i]->block_hashes();
        }
    }
    for (const auto& o : osns_) {
        const std::vector<crypto::Digest>& h = o->block_hashes();
        if (!std::equal(h.begin(), h.end(), longest->begin())) {
            return false;
        }
    }
    return true;
}

}  // namespace fl::core
