#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace fl {

void RunningStats::add(double x) {
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double RunningStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const {
    return std::sqrt(variance());
}

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n = static_cast<double>(n_);
    const auto m = static_cast<double>(other.n_);
    const double combined = n + m;
    m2_ = m2_ + other.m2_ + delta * delta * n * m / combined;
    mean_ = (n * mean_ + m * other.mean_) / combined;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

Histogram::Histogram(double min_value, double max_value, int buckets_per_decade)
    : min_value_(min_value),
      max_value_(max_value),
      log_min_(std::log10(min_value)),
      bucket_width_log_(1.0 / buckets_per_decade) {
    if (min_value <= 0.0 || max_value <= min_value || buckets_per_decade < 1) {
        throw std::invalid_argument("Histogram: bad construction parameters");
    }
    const double decades = std::log10(max_value) - log_min_;
    const auto n = static_cast<std::size_t>(std::ceil(decades * buckets_per_decade)) + 2;
    buckets_.assign(n, 0);
}

std::size_t Histogram::bucket_index(double value) const {
    if (value <= min_value_) return 0;
    const double idx = (std::log10(value) - log_min_) / bucket_width_log_;
    auto i = static_cast<std::size_t>(idx) + 1;
    return std::min(i, buckets_.size() - 1);
}

double Histogram::bucket_upper_bound(std::size_t idx) const {
    if (idx == 0) return min_value_;
    return std::pow(10.0, log_min_ + static_cast<double>(idx) * bucket_width_log_);
}

void Histogram::add(double value) {
    if (value < min_value_) {
        ++underflow_;  // clamped into bucket 0
    } else if (value > max_value_) {
        ++overflow_;  // clamped into the last bucket
    }
    ++buckets_[bucket_index(value)];
    ++total_;
    stats_.add(value);
}

double Histogram::percentile(double p) const {
    if (total_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target && buckets_[i] > 0) {
            return std::min(bucket_upper_bound(i), stats_.max());
        }
    }
    return stats_.max();
}

void Histogram::merge(const Histogram& other) {
    if (buckets_.size() != other.buckets_.size()) {
        throw std::invalid_argument("Histogram::merge: incompatible layouts");
    }
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        buckets_[i] += other.buckets_[i];
    }
    total_ += other.total_;
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    stats_.merge(other.stats_);
}

double RunAggregator::ci95_half_width() const {
    if (stats_.count() < 2) return 0.0;
    return 1.96 * stats_.stddev() / std::sqrt(static_cast<double>(stats_.count()));
}

std::string format_fixed(double v, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

}  // namespace fl
