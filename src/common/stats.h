// Online statistics: running moments and a log-bucketed latency histogram
// with percentile queries, plus a small multi-run aggregator used by the
// benchmark harness to average experiments (the paper averages 10 runs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace fl {

/// Welford online mean/variance with min/max tracking.
class RunningStats {
public:
    void add(double x);

    [[nodiscard]] std::uint64_t count() const { return n_; }
    [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
    [[nodiscard]] double variance() const;  ///< sample variance (n-1)
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
    [[nodiscard]] double sum() const { return sum_; }

    /// Merge another accumulator into this one (parallel Welford).
    void merge(const RunningStats& other);

private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Log-bucketed histogram over positive values (latencies in seconds).
/// Buckets grow geometrically from `min_value` with `buckets_per_decade`
/// buckets per factor-of-10, giving bounded relative error on percentiles.
class Histogram {
public:
    explicit Histogram(double min_value = 1e-6, double max_value = 1e4,
                       int buckets_per_decade = 50);

    void add(double value);
    void add(Duration d) { add(d.as_seconds()); }

    [[nodiscard]] std::uint64_t count() const { return total_; }
    [[nodiscard]] double percentile(double p) const;  ///< p in [0,100]
    [[nodiscard]] double median() const { return percentile(50.0); }
    [[nodiscard]] double mean() const { return stats_.mean(); }
    [[nodiscard]] double min() const { return stats_.min(); }
    [[nodiscard]] double max() const { return stats_.max(); }
    [[nodiscard]] const RunningStats& stats() const { return stats_; }

    /// Values outside [min_value, max_value] are clamped into the edge
    /// buckets (mean/min/max stay exact); these counters make that
    /// saturation visible instead of silently distorting percentiles.
    [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
    [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

    void merge(const Histogram& other);

private:
    [[nodiscard]] std::size_t bucket_index(double value) const;
    [[nodiscard]] double bucket_upper_bound(std::size_t idx) const;

    double min_value_;
    double max_value_;
    double log_min_;
    double bucket_width_log_;  // log10 width of one bucket
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    RunningStats stats_;
};

/// Aggregates one scalar metric across repeated experiment runs and reports
/// mean and a 95% normal-approximation confidence half-width.
class RunAggregator {
public:
    void add_run(double value) { stats_.add(value); }

    [[nodiscard]] double mean() const { return stats_.mean(); }
    [[nodiscard]] double ci95_half_width() const;
    [[nodiscard]] std::uint64_t runs() const { return stats_.count(); }

private:
    RunningStats stats_;
};

/// Fixed-point style formatting helpers for report tables.
[[nodiscard]] std::string format_fixed(double v, int decimals);

}  // namespace fl
