#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace fl {

namespace {
// Atomic so parallel sweep workers (common/thread_pool.h) can read the level
// without a data race; the level is still meant to be set once, up front.
std::atomic<LogLevel> g_level = LogLevel::kOff;

const char* level_name(LogLevel level) {
    switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

std::optional<LogLevel> parse_log_level(std::string_view name) {
    if (name == "trace") return LogLevel::kTrace;
    if (name == "debug") return LogLevel::kDebug;
    if (name == "info") return LogLevel::kInfo;
    if (name == "warn") return LogLevel::kWarn;
    if (name == "error") return LogLevel::kError;
    if (name == "off") return LogLevel::kOff;
    return std::nullopt;
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace fl
