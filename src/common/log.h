// Minimal leveled logger.  Off by default so benchmark loops stay tight; the
// examples and tests can raise the level to trace the transaction flow.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace fl {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log level.  Stored atomically so parallel sweep workers can
/// read it; still intended to be set once, up front.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses "trace" | "debug" | "info" | "warn" | "error" | "off"
/// (case-sensitive, like every other CLI token here); nullopt on anything
/// else so callers can reject unknown names instead of guessing.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

#define FL_LOG(level, expr)                                              \
    do {                                                                 \
        if (static_cast<int>(level) >= static_cast<int>(::fl::log_level())) { \
            std::ostringstream fl_log_oss_;                              \
            fl_log_oss_ << expr;                                         \
            ::fl::detail::log_line(level, fl_log_oss_.str());            \
        }                                                                \
    } while (0)

#define FL_TRACE(expr) FL_LOG(::fl::LogLevel::kTrace, expr)
#define FL_DEBUG(expr) FL_LOG(::fl::LogLevel::kDebug, expr)
#define FL_INFO(expr) FL_LOG(::fl::LogLevel::kInfo, expr)
#define FL_WARN(expr) FL_LOG(::fl::LogLevel::kWarn, expr)
#define FL_ERROR(expr) FL_LOG(::fl::LogLevel::kError, expr)

}  // namespace fl
