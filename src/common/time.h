// Simulated time.
//
// The discrete-event simulator advances a virtual clock; nothing in the
// library ever reads the wall clock.  Time points and durations are distinct
// strong types backed by signed 64-bit nanosecond counts, which gives
// ~292 years of range — far beyond any experiment.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace fl {

class Duration {
public:
    constexpr Duration() = default;

    [[nodiscard]] static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
    [[nodiscard]] static constexpr Duration micros(std::int64_t u) { return Duration{u * 1'000}; }
    [[nodiscard]] static constexpr Duration millis(std::int64_t m) { return Duration{m * 1'000'000}; }
    [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
    /// Fractional seconds, e.g. Duration::from_seconds(0.0015) == 1.5 ms.
    [[nodiscard]] static constexpr Duration from_seconds(double s) {
        return Duration{static_cast<std::int64_t>(s * 1e9)};
    }
    [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
    [[nodiscard]] static constexpr Duration max() {
        return Duration{std::numeric_limits<std::int64_t>::max()};
    }

    [[nodiscard]] constexpr std::int64_t as_nanos() const { return ns_; }
    [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(ns_) / 1e9; }
    [[nodiscard]] constexpr double as_millis() const { return static_cast<double>(ns_) / 1e6; }

    constexpr auto operator<=>(const Duration&) const = default;

    constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
    constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
    constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
    constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
    constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
    constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

private:
    constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
    std::int64_t ns_ = 0;
};

class TimePoint {
public:
    constexpr TimePoint() = default;

    [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{}; }
    [[nodiscard]] static constexpr TimePoint from_nanos(std::int64_t ns) { return TimePoint{ns}; }
    [[nodiscard]] static constexpr TimePoint max() {
        return TimePoint{std::numeric_limits<std::int64_t>::max()};
    }

    [[nodiscard]] constexpr std::int64_t as_nanos() const { return ns_; }
    [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(ns_) / 1e9; }

    constexpr auto operator<=>(const TimePoint&) const = default;

    constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.as_nanos()}; }
    constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.as_nanos()}; }
    constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }
    constexpr TimePoint& operator+=(Duration d) { ns_ += d.as_nanos(); return *this; }

private:
    constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
    std::int64_t ns_ = 0;
};

}  // namespace fl
