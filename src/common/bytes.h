// Byte-buffer alias and hex helpers used by the crypto and ledger layers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fl {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lowercase hex encoding of a byte span.
[[nodiscard]] std::string to_hex(BytesView data);

/// Parse a hex string (case-insensitive).  Throws std::invalid_argument on
/// odd length or non-hex characters.
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// Copy a UTF-8/ASCII string into a byte buffer.
[[nodiscard]] Bytes to_bytes(std::string_view s);

/// Interpret a byte buffer as a string (for test readability only).
[[nodiscard]] std::string to_string(BytesView data);

/// Append helpers used when building canonical serializations.
void append(Bytes& out, BytesView more);
void append(Bytes& out, std::string_view s);
void append_u32(Bytes& out, std::uint32_t v);  ///< big-endian
void append_u64(Bytes& out, std::uint64_t v);  ///< big-endian

}  // namespace fl
