// Minimal streaming JSON writer with deterministic formatting.
//
// The sweep harness's contract is that a BENCH_*.json file is byte-identical
// for the same base seed at any --threads, so this writer is deliberately
// boring: fixed 2-space indentation, keys emitted in the order the caller
// writes them (callers iterate ordered containers), doubles printed with
// "%.17g" (round-trip exact, no locale surprises as long as the process
// stays in the default "C" locale — nothing in this codebase changes it).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fl {

/// Round-trip-exact, locale-independent double rendering ("null" for
/// non-finite values, which JSON cannot represent).
inline std::string json_number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

class JsonWriter {
public:
    explicit JsonWriter(std::ostream& os) : os_(os) {}

    void begin_object() { open('{'); }
    void end_object() { close('}'); }
    void begin_array() { open('['); }
    void end_array() { close(']'); }

    /// Object-member key; must be followed by exactly one value/container.
    void key(std::string_view k) {
        separate();
        os_ << '"';
        escape(k);
        os_ << "\": ";
        pending_key_ = true;
    }

    void value(std::string_view s) {
        separate();
        os_ << '"';
        escape(s);
        os_ << '"';
    }
    void value(const char* s) { value(std::string_view(s)); }
    void value(double v) {
        separate();
        os_ << json_number(v);
    }
    void value(std::uint64_t v) {
        separate();
        os_ << v;
    }
    void value(bool v) {
        separate();
        os_ << (v ? "true" : "false");
    }

    /// Splices pre-rendered JSON (e.g. a core::write_metrics_json dump) as
    /// one value.  The fragment keeps its own indentation.
    void raw(std::string_view rendered) {
        separate();
        os_ << rendered;
    }

    void field(std::string_view k, std::string_view v) { key(k); value(v); }
    void field(std::string_view k, const char* v) { key(k); value(v); }
    void field(std::string_view k, double v) { key(k); value(v); }
    void field(std::string_view k, std::uint64_t v) { key(k); value(v); }
    void field(std::string_view k, bool v) { key(k); value(v); }

private:
    void open(char c) {
        separate();
        os_ << c;
        counts_.push_back(0);
    }
    void close(char c) {
        const bool had_items = counts_.back() > 0;
        counts_.pop_back();
        if (had_items) {
            os_ << '\n';
            indent();
        }
        os_ << c;
    }
    /// Emits the comma/newline/indent owed before the next item.  A value
    /// directly after key() sits on the key's line instead.
    void separate() {
        if (pending_key_) {
            pending_key_ = false;
            return;
        }
        if (counts_.empty()) return;
        if (counts_.back() > 0) os_ << ',';
        os_ << '\n';
        ++counts_.back();
        indent();
    }
    void indent() {
        for (std::size_t i = 0; i < counts_.size(); ++i) os_ << "  ";
    }
    void escape(std::string_view s) {
        for (const char c : s) {
            switch (c) {
            case '"': os_ << "\\\""; break;
            case '\\': os_ << "\\\\"; break;
            case '\n': os_ << "\\n"; break;
            case '\t': os_ << "\\t"; break;
            case '\r': os_ << "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os_ << buf;
                } else {
                    os_ << c;
                }
            }
        }
    }

    std::ostream& os_;
    std::vector<std::size_t> counts_;  // items emitted per open container
    bool pending_key_ = false;
};

}  // namespace fl
