#include "common/rng.h"

#include <cmath>

namespace fl {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

/// FNV-1a over a label, used to decorrelate split streams.
std::uint64_t hash_label(std::string_view label) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : label) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    for (auto& s : state_) {
        s = splitmix64(seed);
    }
}

std::uint64_t Rng::next_u64() {
    // xoshiro256**
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) return r % bound;
    }
}

double Rng::next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
    double u = next_double();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev, bool non_negative) {
    // Irwin–Hall sum of 12 uniforms: mean 6, variance 1.
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += next_double();
    double v = mean + stddev * (s - 6.0);
    if (non_negative && v < 0.0) v = 0.0;
    return v;
}

bool Rng::chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
}

Duration Rng::exponential_duration(Duration mean) {
    return Duration::from_seconds(exponential(mean.as_seconds()));
}

Rng Rng::split(std::string_view label) {
    return Rng(next_u64() ^ hash_label(label));
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
    // SplitMix64 advances its state by the golden-ratio increment per draw,
    // so the stream's index-th state is directly addressable.
    std::uint64_t state = base_seed + index * 0x9E3779B97F4A7C15ull;
    return splitmix64(state);
}

}  // namespace fl
