#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace fl {

namespace {

/// Which pool (and worker index) the current thread belongs to, so submit()
/// can route to the local deque instead of the injector.
thread_local ThreadPool* t_pool = nullptr;
thread_local std::size_t t_worker = 0;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        queues_.push_back(std::make_unique<Queue>());
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(sleep_mutex_);
        stopping_ = true;
    }
    sleep_cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

void ThreadPool::submit(std::function<void()> task) {
    Queue& q = (t_pool == this) ? *queues_[t_worker] : injector_;
    {
        std::lock_guard lock(q.mutex);
        q.tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1);
    // Empty critical section: pairs the notify with the waiters' predicate
    // check so a submit between check and wait cannot be missed.
    { std::lock_guard lock(sleep_mutex_); }
    sleep_cv_.notify_one();
}

bool ThreadPool::pop_back(Queue& q, std::function<void()>& task) {
    std::lock_guard lock(q.mutex);
    if (q.tasks.empty()) return false;
    task = std::move(q.tasks.back());
    q.tasks.pop_back();
    return true;
}

bool ThreadPool::pop_front(Queue& q, std::function<void()>& task) {
    std::lock_guard lock(q.mutex);
    if (q.tasks.empty()) return false;
    task = std::move(q.tasks.front());
    q.tasks.pop_front();
    return true;
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
    if (pop_back(*queues_[self], task)) return true;
    if (pop_front(injector_, task)) return true;
    // Steal oldest-first from the other workers, starting at the neighbour so
    // thieves spread over victims instead of all hitting worker 0.
    for (std::size_t k = 1; k < queues_.size(); ++k) {
        const std::size_t victim = (self + k) % queues_.size();
        if (pop_front(*queues_[victim], task)) return true;
    }
    return false;
}

void ThreadPool::worker_loop(std::size_t self) {
    t_pool = this;
    t_worker = self;
    std::function<void()> task;
    for (;;) {
        if (try_pop(self, task)) {
            pending_.fetch_sub(1);
            task();
            task = nullptr;
            continue;
        }
        std::unique_lock lock(sleep_mutex_);
        sleep_cv_.wait(lock,
                       [this] { return stopping_ || pending_.load() > 0; });
        if (stopping_ && pending_.load() == 0) return;
    }
}

void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& body) {
    if (count == 0) return;

    struct Shared {
        std::atomic<std::size_t> next{0};
        std::mutex mutex;
        std::condition_variable done_cv;
        std::exception_ptr error;
        /// Participants currently inside the claim loop.  A runner registers
        /// BEFORE its first claim, so any claimed index is covered by a
        /// registered runner — the caller's exit condition below is safe.
        std::size_t runners = 0;
    };
    auto shared = std::make_shared<Shared>();

    // Claims indices until the counter runs past `count`.  Captures `shared`
    // by value (keeps the synchronization state alive for late-starting
    // helpers) and `body` by reference: `body` is only dereferenced after a
    // successful claim, which cannot happen once the caller has returned —
    // by then every index is claimed, so late helpers bail out immediately.
    const auto run = [shared, &body, count] {
        {
            std::lock_guard lock(shared->mutex);
            ++shared->runners;
        }
        for (;;) {
            const std::size_t i = shared->next.fetch_add(1);
            if (i >= count) break;
            try {
                body(i);
            } catch (...) {
                std::lock_guard lock(shared->mutex);
                if (!shared->error) shared->error = std::current_exception();
                // Poison the index counter so nobody claims further work.
                shared->next.store(count);
            }
        }
        std::lock_guard lock(shared->mutex);
        if (--shared->runners == 0) shared->done_cv.notify_all();
    };

    // The caller works too, so one index needs no helper at all.
    const std::size_t helpers = std::min(pool.size(), count - 1);
    for (std::size_t h = 0; h < helpers; ++h) {
        pool.submit(run);
    }

    run();

    // The caller's own run() only returns once every index is claimed, so
    // waiting for runners == 0 waits exactly for bodies still executing on
    // other workers.  Helpers that never got scheduled are NOT waited for —
    // they find no work when they eventually run — which is what makes this
    // safe to call from inside a pool task: a saturated pool of callers can
    // no longer deadlock waiting on each other's queued helpers (validators
    // inside sweep-point tasks rely on this, see peer/validator.cpp).
    std::unique_lock lock(shared->mutex);
    shared->done_cv.wait(lock, [&shared] { return shared->runners == 0; });
    if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace fl
