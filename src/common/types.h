// Strongly-typed identifiers and core enumerations shared by every module.
//
// Each entity kind in the network (organization, peer, orderer node, client,
// channel, transaction, block) gets its own id type so they cannot be mixed
// up at call sites.  Ids are cheap value types (a single integer) with full
// comparison support and std::hash specializations.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace fl {

/// CRTP-free strong integer id.  `Tag` distinguishes unrelated id spaces.
template <typename Tag>
class StrongId {
public:
    constexpr StrongId() = default;
    constexpr explicit StrongId(std::uint64_t v) : value_(v) {}

    [[nodiscard]] constexpr std::uint64_t value() const { return value_; }

    constexpr auto operator<=>(const StrongId&) const = default;

private:
    std::uint64_t value_ = 0;
};

struct OrgTag {};
struct PeerTag {};
struct OsnTag {};
struct ClientTag {};
struct ChannelTag {};
struct TxTag {};
struct NodeTag {};

using OrgId = StrongId<OrgTag>;
using PeerId = StrongId<PeerTag>;
using OsnId = StrongId<OsnTag>;
using ClientId = StrongId<ClientTag>;
using ChannelId = StrongId<ChannelTag>;
using TxId = StrongId<TxTag>;
/// Uniform node address used by the network layer (peers, OSNs, clients and
/// the mq broker all live in one address space).
using NodeId = StrongId<NodeTag>;

/// Block sequence number within a channel's chain.
using BlockNumber = std::uint64_t;

/// Priority level of a transaction.  Level 0 is the *highest* priority;
/// higher numbers mean lower priority, mirroring the paper's
/// "queues ordered from highest to lowest priority".
using PriorityLevel = std::uint32_t;

/// Sentinel for "no priority assigned yet".
inline constexpr PriorityLevel kUnassignedPriority = 0xFFFFFFFFu;

/// Validation outcome of a transaction at commit time (Fabric validation
/// codes, reduced to the cases the paper's pipeline produces).
enum class TxValidationCode : std::uint8_t {
    kValid = 0,
    kMvccReadConflict,       ///< a read version no longer matches state
    kPhantomReadConflict,    ///< range read invalidated
    kWriteConflict,          ///< lost ww-race inside the block
    kEndorsementPolicyFailure,
    kBadPriorityConsolidation,
    kBadSignature,
    kDuplicateTxId,
    /// Client gave up collecting endorsements (retries exhausted) — a
    /// graceful-degradation terminal state, not a validator verdict.
    kEndorsementTimeout,
    /// Client gave up waiting for a commit notification after exhausting
    /// its resubmissions; the transaction may or may not have committed.
    kCommitTimeout,
};

[[nodiscard]] constexpr bool is_valid(TxValidationCode c) {
    return c == TxValidationCode::kValid;
}

[[nodiscard]] std::string to_string(TxValidationCode c);

inline std::string to_string(TxValidationCode c) {
    switch (c) {
    case TxValidationCode::kValid: return "VALID";
    case TxValidationCode::kMvccReadConflict: return "MVCC_READ_CONFLICT";
    case TxValidationCode::kPhantomReadConflict: return "PHANTOM_READ_CONFLICT";
    case TxValidationCode::kWriteConflict: return "WRITE_CONFLICT";
    case TxValidationCode::kEndorsementPolicyFailure: return "ENDORSEMENT_POLICY_FAILURE";
    case TxValidationCode::kBadPriorityConsolidation: return "BAD_PRIORITY_CONSOLIDATION";
    case TxValidationCode::kBadSignature: return "BAD_SIGNATURE";
    case TxValidationCode::kDuplicateTxId: return "DUPLICATE_TXID";
    case TxValidationCode::kEndorsementTimeout: return "ENDORSEMENT_TIMEOUT";
    case TxValidationCode::kCommitTimeout: return "COMMIT_TIMEOUT";
    }
    return "UNKNOWN";
}

}  // namespace fl

namespace std {
template <typename Tag>
struct hash<fl::StrongId<Tag>> {
    size_t operator()(const fl::StrongId<Tag>& id) const noexcept {
        return std::hash<std::uint64_t>{}(id.value());
    }
};
}  // namespace std
