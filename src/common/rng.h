// Deterministic, splittable random number generation.
//
// Experiments must be exactly reproducible across runs and platforms, so we
// implement our own PRNG (xoshiro256**) seeded via SplitMix64 instead of
// relying on unspecified standard-library engines/distributions.  `Rng::split`
// derives an independent stream for a child component, so adding a component
// never perturbs the random sequence seen by others.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/time.h"

namespace fl {

class Rng {
public:
    /// Seeds the generator.  Equal seeds produce equal sequences.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Uniform in [0, bound).  bound == 0 returns 0.
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Exponentially distributed value with the given mean (> 0).
    double exponential(double mean);

    /// Approximately normal (sum of uniforms), clamped to >= 0 when
    /// `non_negative` — used for latency jitter.
    double normal(double mean, double stddev, bool non_negative = true);

    /// True with probability p (clamped to [0,1]).
    bool chance(double p);

    /// Exponentially distributed duration with the given mean.
    Duration exponential_duration(Duration mean);

    /// Derives an independent child generator; the label decorrelates
    /// children split from the same parent state.
    [[nodiscard]] Rng split(std::string_view label);

private:
    std::uint64_t state_[4];
};

/// The `index`-th output of the SplitMix64 stream seeded with `base_seed` —
/// a well-mixed, collision-free seed for work unit `index` of a sweep.
/// Random access (no need to step through indices 0..index-1) makes the
/// derivation independent of the order in which a thread pool schedules the
/// units: same (base_seed, index) ⇒ same seed, always.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::uint64_t index);

}  // namespace fl
