// Work-stealing thread pool and a blocking parallel-for helper.
//
// The simulator itself stays single-threaded (determinism depends on it); the
// pool exists one layer up, where work splits into *independent* units — one
// sweep point = one simulation with its own Simulator, FabricNetwork and
// MetricsCollector — that share nothing and can run on any worker in any
// order.  Each worker owns a deque: the owner pushes/pops at the back (LIFO,
// cache-warm), idle workers steal from the front of a victim's deque (FIFO,
// oldest first), and external threads submit through a shared injector queue.
//
// Results must not depend on scheduling: callers write into pre-sized slots
// indexed by work-unit id (see `parallel_for_each` and `harness::run_sweep`),
// never into shared accumulators.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fl {

class ThreadPool {
public:
    /// Spawns `threads` workers; 0 means `std::thread::hardware_concurrency()`
    /// (at least 1).
    explicit ThreadPool(unsigned threads = 0);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Drains every queued task, then joins the workers.
    ~ThreadPool();

    /// Enqueues a task.  Called from a worker of this pool the task goes to
    /// that worker's own deque (LIFO); otherwise to the injector queue.
    void submit(std::function<void()> task);

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Queued-but-not-started tasks (approximate; for tests/diagnostics).
    [[nodiscard]] std::size_t pending() const { return pending_.load(); }

private:
    struct Queue {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void worker_loop(std::size_t self);
    bool try_pop(std::size_t self, std::function<void()>& task);
    static bool pop_back(Queue& q, std::function<void()>& task);
    static bool pop_front(Queue& q, std::function<void()>& task);

    std::vector<std::unique_ptr<Queue>> queues_;  // one per worker
    Queue injector_;                              // external submissions

    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    bool stopping_ = false;
    std::atomic<std::size_t> pending_{0};

    std::vector<std::thread> workers_;
};

/// Invokes `body(0) .. body(count - 1)` across the pool's workers (the
/// calling thread participates too) and blocks until every call returned.
/// Indices are claimed dynamically, so unequal per-index costs balance out.
///
/// If any invocation throws, no further indices are claimed (in-flight ones
/// finish) and the first captured exception is rethrown here.  `count == 0`
/// returns immediately without touching the pool.
///
/// Safe to call from inside a pool task (nested fork-join): the caller only
/// waits for bodies actively executing on other workers, never for queued
/// helper tasks — a saturated pool of concurrent callers cannot deadlock.
/// The parallel block validator (peer/validator.cpp) relies on this to
/// borrow the sweep pool from within a simulation step.  Nested calls whose
/// bodies themselves fork recurse at most as deep as the call structure.
void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& body);

}  // namespace fl
