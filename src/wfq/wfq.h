// Weighted fair queueing schedulers — the theory behind the paper's
// Algorithm 1 (weighted-fair block formation) and Algorithm 2 (READ_QUEUE
// with time-to-cut coordination).
//
// The paper adopts "a weighted fair queueing strategy [Demers et al. '89]"
// at block granularity.  This module provides the packet-granularity
// reference disciplines so tests and bench/ablation_wfq can quantify how
// closely the Multi-Queue Block Generator (orderer/block_generator.h, the
// production implementation of Algorithms 1+2) tracks ideal weighted shares:
//
//   * WfqScheduler  — start-time fair queueing (SFQ): virtual-time tagged,
//     the standard practical approximation of bit-by-bit round robin.  The
//     ideal the paper's scheme approximates; commentary on each member maps
//     it to the corresponding Algorithm 1 concept.
//   * WrrScheduler  — weighted round robin with deficit counters (DRR),
//     which is exactly what Algorithm 1's per-block quotas TR[i] amount to:
//     one block = one round, one quota = one quantum.
//   * FifoScheduler — the vanilla Fabric baseline discipline (single Kafka
//     topic, no isolation) every figure normalizes against.
//
// How the paper's two algorithms project onto these disciplines:
//
//   Algorithm 1 (CreateBlock) — for block BN, read each priority queue i up
//   to its reserved quota TR[i] (lines 4-9: the WRR round); if level i hit
//   its time-to-cut marker with quota to spare, transfer the surplus to the
//   highest level still being read (lines 17-23: a deficit hand-off DRR does
//   not have — it keeps *blocks* full when one class idles); cut when every
//   level met its quota or its TTC (the round barrier).
//
//   Algorithm 2 (READ_QUEUE) — the per-queue read loop: stop at quota
//   exhaustion, queue dry, or the first TTC_BN marker; consume-and-ignore
//   duplicate TTCs.  Because the TTC markers sit at fixed offsets in the
//   totally-ordered topics, every OSN executes the identical round and cuts
//   the identical block even with unsynchronized local timers.
//
// All schedulers here are templates over an opaque item type and are
// single-threaded (the simulator serializes access; parallel sweeps give
// each experiment point its own scheduler instances — see harness/sweep.h).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

namespace fl::wfq {

/// Common result of a dequeue: which flow the item came from.
template <typename T>
struct Scheduled {
    std::size_t flow = 0;
    T item;
};

/// Start-time fair queueing (SFQ) — Goyal et al.'s practical WFQ variant:
/// each packet gets a start tag max(V, flow finish tag) and a finish tag
/// start + cost/weight; dequeue picks the smallest start tag and advances V
/// to it.  Guarantees the SFQ fairness bound:
///   |W_i(t)/w_i - W_j(t)/w_j| <= cost_max/w_i + cost_max/w_j
/// for continuously backlogged flows i, j.
///
/// Relation to the paper: this is the ideal the Multi-Queue Block Generator
/// trades away for block granularity.  SFQ interleaves flows *within* what
/// would be one block (gap bounded by one packet per unit weight); Algorithm
/// 1 serves each level's whole quota contiguously, so within a block the gap
/// can reach a full quota TR[i] — but over whole blocks the shares converge
/// to the same weights (bench/ablation_wfq measures both effects).
template <typename T>
class WfqScheduler {
public:
    /// `weights[i]` > 0 is flow i's share.
    explicit WfqScheduler(std::vector<double> weights) : flows_(weights.size()) {
        if (weights.empty()) throw std::invalid_argument("WfqScheduler: no flows");
        for (std::size_t i = 0; i < weights.size(); ++i) {
            if (weights[i] <= 0.0) {
                throw std::invalid_argument("WfqScheduler: weights must be positive");
            }
            flows_[i].weight = weights[i];
        }
    }

    void enqueue(std::size_t flow, double cost, T item) {
        Flow& f = flow_ref(flow);
        // Start tag: an idle flow re-joins at the current virtual time (no
        // credit for idling — same reason Algorithm 1 gives an empty level
        // no carry-over: its unused quota moves to another level instead).
        const double start = std::max(virtual_time_, f.last_finish);
        // Finish tag: weight scales the virtual service time, so a weight-3
        // flow's tags advance 3x slower than a weight-1 flow's — the
        // packet-granular analogue of TR[i] being 3/5 vs 1/5 of the block.
        const double finish = start + cost / f.weight;
        f.last_finish = finish;
        f.queue.push_back(Packet{start, finish, cost, std::move(item)});
        ++size_;
    }

    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
    [[nodiscard]] std::size_t backlog(std::size_t flow) const {
        return flow_ref(flow).queue.size();
    }

    /// Dequeues the packet with the smallest start tag (ties to the lowest
    /// flow index, i.e. the highest priority class).  This per-packet
    /// selection is what Algorithm 1 batches: one CreateBlock round emits
    /// the same multiset of transactions SFQ would emit over the next BS
    /// dequeues (when all levels stay backlogged), just grouped by level.
    std::optional<Scheduled<T>> dequeue() {
        if (size_ == 0) return std::nullopt;
        std::size_t best = flows_.size();
        for (std::size_t i = 0; i < flows_.size(); ++i) {
            if (flows_[i].queue.empty()) continue;
            if (best == flows_.size() ||
                flows_[i].queue.front().start < flows_[best].queue.front().start) {
                best = i;
            }
        }
        Flow& f = flows_[best];
        Packet pkt = std::move(f.queue.front());
        f.queue.pop_front();
        --size_;
        virtual_time_ = std::max(virtual_time_, pkt.start);
        served_work_.resize(flows_.size(), 0.0);
        served_work_[best] += pkt.cost;
        return Scheduled<T>{best, std::move(pkt.item)};
    }

    /// Dequeues the head packet of a *specific* flow, advancing the virtual
    /// clock exactly as dequeue() would had SFQ picked it.  This is the
    /// shadow-scheduler hook for the fairness audit (obs/audit): the real
    /// block generator decides which level to serve, the audit replays that
    /// decision here, and any gap between a flow's head start tag and V is
    /// the service lag the real scheduler has accumulated versus ideal SFQ.
    std::optional<T> dequeue_flow(std::size_t flow) {
        Flow& f = flow_ref(flow);
        if (f.queue.empty()) return std::nullopt;
        Packet pkt = std::move(f.queue.front());
        f.queue.pop_front();
        --size_;
        virtual_time_ = std::max(virtual_time_, pkt.start);
        served_work_.resize(flows_.size(), 0.0);
        served_work_[flow] += pkt.cost;
        return std::move(pkt.item);
    }

    /// Weighted service lag of `flow`: how far the flow's head-of-line start
    /// tag trails the virtual clock, scaled by its weight so lags compare
    /// across flows in units of work.  Zero for idle flows (SFQ gives no
    /// credit for idling, so an empty flow is by definition not lagging).
    [[nodiscard]] double service_lag(std::size_t flow) const {
        const Flow& f = flow_ref(flow);
        if (f.queue.empty()) return 0.0;
        return std::max(0.0, f.weight * (virtual_time_ - f.queue.front().start));
    }

    /// Total cost served from `flow` so far (for fairness-bound tests).
    [[nodiscard]] double served(std::size_t flow) const {
        if (flow >= served_work_.size()) return 0.0;
        return served_work_[flow];
    }

    [[nodiscard]] double weight(std::size_t flow) const { return flow_ref(flow).weight; }

    /// Current virtual time (start tag of the last served packet) — the WFQ
    /// clock the observability layer samples to plot scheduling progress.
    [[nodiscard]] double virtual_time() const { return virtual_time_; }

private:
    struct Packet {
        double start = 0.0;
        double finish = 0.0;
        double cost = 0.0;
        T item;
    };
    struct Flow {
        double weight = 1.0;
        double last_finish = 0.0;
        std::deque<Packet> queue;
    };

    Flow& flow_ref(std::size_t flow) {
        if (flow >= flows_.size()) throw std::out_of_range("WfqScheduler: bad flow");
        return flows_[flow];
    }
    const Flow& flow_ref(std::size_t flow) const {
        if (flow >= flows_.size()) throw std::out_of_range("WfqScheduler: bad flow");
        return flows_[flow];
    }

    std::vector<Flow> flows_;
    std::vector<double> served_work_;
    double virtual_time_ = 0.0;
    std::size_t size_ = 0;
};

/// Weighted round robin with per-flow quantum = weight * base_quantum and
/// DRR deficit counters.  This is the discipline the Multi-Queue Block
/// Generator implements at block granularity: quota TR[i] = quantum, block
/// = round, and Algorithm 2's READ_QUEUE loop ("read level i until quota
/// met or queue dry") is one visit of the round-robin scan below.  What the
/// production generator adds on top of plain WRR/DRR is Algorithm 1 lines
/// 17-23 (TTC-triggered surplus transfer between levels inside a round) and
/// Algorithm 2's TTC cut markers for cross-OSN determinism — neither exists
/// here because a packet scheduler has no notion of "this round must end
/// now on every replica".
template <typename T>
class WrrScheduler {
public:
    WrrScheduler(std::vector<double> weights, double base_quantum = 1.0)
        : flows_(weights.size()), base_quantum_(base_quantum) {
        if (weights.empty()) throw std::invalid_argument("WrrScheduler: no flows");
        if (base_quantum <= 0.0) {
            throw std::invalid_argument("WrrScheduler: base_quantum must be positive");
        }
        for (std::size_t i = 0; i < weights.size(); ++i) {
            if (weights[i] < 0.0) {
                throw std::invalid_argument("WrrScheduler: negative weight");
            }
            flows_[i].weight = weights[i];
        }
    }

    void enqueue(std::size_t flow, double cost, T item) {
        if (flow >= flows_.size()) throw std::out_of_range("WrrScheduler: bad flow");
        flows_[flow].queue.push_back(Item{cost, std::move(item)});
        ++size_;
    }

    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] std::size_t size() const { return size_; }

    std::optional<Scheduled<T>> dequeue() {
        if (size_ == 0) return std::nullopt;
        for (std::size_t scanned = 0; scanned < 2 * flows_.size(); ++scanned) {
            Flow& f = flows_[current_];
            // Serve the current flow while its deficit covers the head item
            // — Algorithm 2's "txCount < TR[i]" check, with the deficit
            // playing the role of the block quota's remaining slots.
            if (!f.queue.empty() && f.deficit >= f.queue.front().cost) {
                Item it = std::move(f.queue.front());
                f.queue.pop_front();
                f.deficit -= it.cost;
                --size_;
                served_.resize(flows_.size(), 0.0);
                served_[current_] += it.cost;
                return Scheduled<T>{current_, std::move(it.item)};
            }
            // Move to the next flow, refreshing its deficit (DRR semantics;
            // empty flows carry no deficit so they cannot burst later).
            if (f.queue.empty()) f.deficit = 0.0;
            current_ = (current_ + 1) % flows_.size();
            flows_[current_].deficit += flows_[current_].weight * base_quantum_;
        }
        // Degenerate: every backlogged flow has weight 0 — serve the first.
        for (std::size_t i = 0; i < flows_.size(); ++i) {
            if (!flows_[i].queue.empty()) {
                Item it = std::move(flows_[i].queue.front());
                flows_[i].queue.pop_front();
                --size_;
                served_.resize(flows_.size(), 0.0);
                served_[i] += it.cost;
                return Scheduled<T>{i, std::move(it.item)};
            }
        }
        return std::nullopt;
    }

    [[nodiscard]] double served(std::size_t flow) const {
        if (flow >= served_.size()) return 0.0;
        return served_[flow];
    }

private:
    struct Item {
        double cost = 0.0;
        T item;
    };
    struct Flow {
        double weight = 1.0;
        double deficit = 0.0;
        std::deque<Item> queue;
    };

    std::vector<Flow> flows_;
    std::vector<double> served_;
    double base_quantum_;
    std::size_t current_ = 0;
    std::size_t size_ = 0;
};

/// Single FIFO queue — the vanilla Fabric ordering discipline (one Kafka
/// topic per channel, blocks cut purely by size/timeout).  Offers no
/// isolation: each class's service share equals its *arrival* share, which
/// is why a flooding client degrades everyone (paper Figure 6, §5.5).
template <typename T>
class FifoScheduler {
public:
    void enqueue(std::size_t flow, double cost, T item) {
        queue_.push_back(Entry{flow, cost, std::move(item)});
    }

    [[nodiscard]] bool empty() const { return queue_.empty(); }
    [[nodiscard]] std::size_t size() const { return queue_.size(); }

    std::optional<Scheduled<T>> dequeue() {
        if (queue_.empty()) return std::nullopt;
        Entry e = std::move(queue_.front());
        queue_.pop_front();
        served_[e.flow] += e.cost;
        return Scheduled<T>{e.flow, std::move(e.item)};
    }

    [[nodiscard]] double served(std::size_t flow) const {
        const auto it = served_.find(flow);
        return it == served_.end() ? 0.0 : it->second;
    }

private:
    struct Entry {
        std::size_t flow = 0;
        double cost = 0.0;
        T item;
    };
    std::deque<Entry> queue_;
    std::map<std::size_t, double> served_;
};

}  // namespace fl::wfq
