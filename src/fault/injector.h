// Seeded fault-schedule generator: FaultProfile -> sorted ScheduledFault
// list.  Pure function of (profile, rng state, component counts) — the
// simulator is not involved, so schedules can be generated, inspected and
// asserted on in isolation (tests/fault/injector_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fault/fault_spec.h"

namespace fl::fault {

/// Realises `profile` into a concrete schedule.  Each outage draws a start
/// uniform in [0, horizon), a duration from the exponential with the
/// configured mean, and a target uniform over the component count; the
/// matching recovery event is always emitted (possibly past the horizon).
/// The result is sorted by (time, kind, target) so applying it in order is
/// deterministic even when two faults coincide.  `raft_nodes` sizes the
/// targets of the Raft fault categories; the default 0 keeps pre-Raft call
/// sites byte-identical (Raft categories draw but emit nothing).
[[nodiscard]] std::vector<ScheduledFault> make_fault_schedule(
    const FaultProfile& profile, Rng rng, std::uint32_t osns, std::uint32_t peers,
    std::uint32_t raft_nodes = 0);

}  // namespace fl::fault
