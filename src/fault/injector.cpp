#include "fault/injector.h"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace fl::fault {

const char* to_string(FaultKind kind) {
    switch (kind) {
    case FaultKind::kOsnCrash: return "osn_crash";
    case FaultKind::kOsnRestart: return "osn_restart";
    case FaultKind::kEndorserDown: return "endorser_down";
    case FaultKind::kEndorserUp: return "endorser_up";
    case FaultKind::kEndorserSlow: return "endorser_slow";
    case FaultKind::kEndorserNormal: return "endorser_normal";
    case FaultKind::kBrokerDown: return "broker_down";
    case FaultKind::kBrokerUp: return "broker_up";
    case FaultKind::kRaftLeaderKill: return "raft_leader_kill";
    case FaultKind::kRaftNodeCrash: return "raft_node_crash";
    case FaultKind::kRaftNodeRestart: return "raft_node_restart";
    case FaultKind::kRaftPartition: return "raft_partition";
    case FaultKind::kRaftHeal: return "raft_heal";
    case FaultKind::kRaftDrop: return "raft_drop";
    }
    return "unknown";
}

namespace {

/// floor(expected) events plus one more with probability frac(expected) —
/// exactly one chance() draw per category, so the stream layout is fixed.
std::uint64_t realise_count(double expected, Rng& rng) {
    if (expected <= 0.0) {
        // Still burn the draw: the stream position after each category must
        // not depend on the rate values, only on the profile's shape.
        (void)rng.chance(0.0);
        return 0;
    }
    const double whole = std::floor(expected);
    const double frac = expected - whole;
    return static_cast<std::uint64_t>(whole) + (rng.chance(frac) ? 1u : 0u);
}

struct OutageDraws {
    Duration start;
    Duration duration;
    std::uint32_t target;
};

/// Fixed draw order per outage: start, duration, target.
OutageDraws draw_outage(const FaultProfile& profile, Duration mean,
                        std::uint32_t components, Rng& rng) {
    OutageDraws d;
    d.start = Duration::from_seconds(
        rng.uniform(0.0, profile.horizon.as_seconds()));
    d.duration = rng.exponential_duration(mean);
    d.target = static_cast<std::uint32_t>(rng.next_below(components));
    return d;
}

}  // namespace

std::vector<ScheduledFault> make_fault_schedule(const FaultProfile& profile,
                                                Rng rng, std::uint32_t osns,
                                                std::uint32_t peers,
                                                std::uint32_t raft_nodes) {
    std::vector<ScheduledFault> out;

    const std::uint64_t crashes = realise_count(profile.expected_osn_crashes, rng);
    for (std::uint64_t i = 0; i < crashes && osns > 0; ++i) {
        const OutageDraws d =
            draw_outage(profile, profile.osn_downtime_mean, osns, rng);
        out.push_back({d.start, FaultKind::kOsnCrash, d.target, 1.0});
        out.push_back({d.start + d.duration, FaultKind::kOsnRestart, d.target, 1.0});
    }

    const std::uint64_t outages =
        realise_count(profile.expected_endorser_outages, rng);
    for (std::uint64_t i = 0; i < outages && peers > 0; ++i) {
        const OutageDraws d =
            draw_outage(profile, profile.endorser_downtime_mean, peers, rng);
        out.push_back({d.start, FaultKind::kEndorserDown, d.target, 1.0});
        out.push_back({d.start + d.duration, FaultKind::kEndorserUp, d.target, 1.0});
    }

    const std::uint64_t slowdowns =
        realise_count(profile.expected_endorser_slowdowns, rng);
    for (std::uint64_t i = 0; i < slowdowns && peers > 0; ++i) {
        const OutageDraws d =
            draw_outage(profile, profile.endorser_slow_mean, peers, rng);
        out.push_back({d.start, FaultKind::kEndorserSlow, d.target,
                       profile.endorser_slow_factor});
        out.push_back(
            {d.start + d.duration, FaultKind::kEndorserNormal, d.target, 1.0});
    }

    const std::uint64_t broker = realise_count(profile.expected_broker_outages, rng);
    for (std::uint64_t i = 0; i < broker; ++i) {
        const OutageDraws d =
            draw_outage(profile, profile.broker_outage_mean, 1, rng);
        out.push_back({d.start, FaultKind::kBrokerDown, 0, 1.0});
        out.push_back({d.start + d.duration, FaultKind::kBrokerUp, 0, 1.0});
    }

    // Raft categories draw after every pre-existing category, so profiles
    // that leave them at zero rate produce byte-identical schedules to the
    // pre-Raft injector (each category still burns its one chance() draw).
    const std::uint64_t kills =
        realise_count(profile.expected_raft_leader_kills, rng);
    for (std::uint64_t i = 0; i < kills && raft_nodes > 0; ++i) {
        const OutageDraws d =
            draw_outage(profile, profile.raft_leader_downtime_mean, raft_nodes, rng);
        // The victim is whichever node leads at fire time, so the recovery
        // revives all crashed nodes rather than the (meaningless) drawn
        // target; the target draw is still burned for stream-layout fixity.
        out.push_back({d.start, FaultKind::kRaftLeaderKill, 0, 1.0});
        out.push_back(
            {d.start + d.duration, FaultKind::kRaftNodeRestart, 0xFFFFFFFFu, 1.0});
    }

    const std::uint64_t partitions =
        realise_count(profile.expected_raft_partitions, rng);
    for (std::uint64_t i = 0; i < partitions && raft_nodes > 0; ++i) {
        const OutageDraws d =
            draw_outage(profile, profile.raft_partition_mean, raft_nodes, rng);
        out.push_back({d.start, FaultKind::kRaftPartition, d.target, 1.0});
        out.push_back({d.start + d.duration, FaultKind::kRaftHeal, 0, 1.0});
    }

    const std::uint64_t drops =
        realise_count(profile.expected_raft_drop_windows, rng);
    for (std::uint64_t i = 0; i < drops && raft_nodes > 0; ++i) {
        const OutageDraws d =
            draw_outage(profile, profile.raft_drop_window_mean, raft_nodes, rng);
        out.push_back({d.start, FaultKind::kRaftDrop, 0, profile.raft_drop_prob});
        out.push_back({d.start + d.duration, FaultKind::kRaftDrop, 0, 0.0});
    }

    std::sort(out.begin(), out.end(),
              [](const ScheduledFault& a, const ScheduledFault& b) {
                  return std::tuple(a.at.as_nanos(), static_cast<int>(a.kind),
                                    a.target) <
                         std::tuple(b.at.as_nanos(), static_cast<int>(b.kind),
                                    b.target);
              });
    return out;
}

}  // namespace fl::fault
