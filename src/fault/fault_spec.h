// Deterministic fault-injection vocabulary.
//
// A FaultSpec describes *what goes wrong* in a run: message-level faults on
// the unreliable transport (drop / duplicate / extra delay), plus a schedule
// of component faults (OSN crash + restart, endorser outage / slow-down,
// broker unavailability windows).  The schedule can be written out
// explicitly (ScheduledFault list) or generated from rate parameters
// (FaultProfile) by the seeded injector — either way the whole chaos run is
// a pure function of (config, seed): fault times come from the simulated
// clock and fault decisions from dedicated SplitMix64-derived Rng streams,
// so the same spec and seed reproduce the identical fault timeline at any
// --threads value (DESIGN.md §11).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.h"
#include "sim/network.h"

namespace fl::fault {

/// Component fault taxonomy.  Every "down" kind has a matching "up" kind so
/// schedules can always pair outage with recovery.
enum class FaultKind : std::uint8_t {
    kOsnCrash = 0,    ///< OSN loses volatile state; target = OSN index
    kOsnRestart,      ///< OSN rejoins, replays its topics from offset 0
    kEndorserDown,    ///< peer stops answering proposals; target = peer index
    kEndorserUp,      ///< peer answers proposals again
    kEndorserSlow,    ///< peer endorsement CPU cost scaled by `factor`
    kEndorserNormal,  ///< peer endorsement cost back to configured value
    kBrokerDown,      ///< broker defers all appends (cluster outage)
    kBrokerUp,        ///< broker flushes deferred appends, resumes
    // Raft-backend faults (no-ops under the mq backend).  Appended so the
    // numeric values of the kinds above — serialized in traces — never move.
    kRaftLeaderKill,   ///< crash whichever Raft node currently leads
    kRaftNodeCrash,    ///< crash Raft node `target` (durable state survives)
    kRaftNodeRestart,  ///< restart Raft node `target`; 0xFFFFFFFF = all crashed
    kRaftPartition,    ///< isolate Raft node `target` from its peers
    kRaftHeal,         ///< clear all Raft partitions
    kRaftDrop,         ///< set Raft peer-message drop probability to `factor`
};
[[nodiscard]] const char* to_string(FaultKind kind);

/// One fault occurrence, anchored in simulated time.
struct ScheduledFault {
    Duration at;                ///< offset from simulation start
    FaultKind kind = FaultKind::kOsnCrash;
    std::uint32_t target = 0;   ///< component index (mod component count)
    double factor = 1.0;        ///< slow-down multiplier for kEndorserSlow
};

/// Rate parameters for the seeded injector.  `expected_*` are expectations,
/// not hard counts: the injector realises floor(e) events plus one more with
/// probability frac(e), so sweeping a rate produces smoothly varying
/// schedules.  Every outage is paired with its recovery (which may land
/// past `horizon` — recovery is never dropped).
struct FaultProfile {
    Duration horizon = Duration::seconds(30);  ///< faults start within [0, horizon)

    double expected_osn_crashes = 0.0;
    Duration osn_downtime_mean = Duration::seconds(3);

    double expected_endorser_outages = 0.0;
    Duration endorser_downtime_mean = Duration::seconds(2);

    double expected_endorser_slowdowns = 0.0;
    Duration endorser_slow_mean = Duration::seconds(2);
    double endorser_slow_factor = 4.0;

    double expected_broker_outages = 0.0;
    Duration broker_outage_mean = Duration::millis(500);

    // Raft chaos axes (all appended after the categories above, so enabling
    // them never shifts the draws of an existing profile).  Leader kills
    // pair with a restart-all-crashed recovery; partitions pair with a heal;
    // drop windows raise the Raft peer-message loss rate to `raft_drop_prob`
    // for the window, then restore it to zero.
    double expected_raft_leader_kills = 0.0;
    Duration raft_leader_downtime_mean = Duration::seconds(2);

    double expected_raft_partitions = 0.0;
    Duration raft_partition_mean = Duration::seconds(2);

    double expected_raft_drop_windows = 0.0;
    Duration raft_drop_window_mean = Duration::seconds(1);
    double raft_drop_prob = 0.05;
};

/// Everything fault-related in one place; hangs off NetworkConfig.
/// Default-constructed it is inert — enabled() false, zero overhead, and a
/// fault-free run is byte-identical to a build without the subsystem.
struct FaultSpec {
    sim::MessageFaultParams messages;       ///< unreliable-transport faults
    std::vector<ScheduledFault> schedule;   ///< explicit fault plan
    std::optional<FaultProfile> profile;    ///< seeded random plan (appended)

    [[nodiscard]] bool enabled() const {
        return messages.any() || !schedule.empty() || profile.has_value();
    }
};

}  // namespace fl::fault
