// Raft ordering-backend tunables.  Split from raft.h so NetworkConfig can
// embed the struct without pulling the whole consensus implementation into
// every translation unit that touches core/config.h.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace fl::raft {

struct RaftParams {
    /// Cluster size.  3 tolerates one failure (the production Fabric
    /// minimum); 5 tolerates two.  1 degenerates to a replicated log with a
    /// permanent leader.
    std::uint32_t nodes = 3;

    /// Election timeout drawn uniform in [min, max) per arming, from each
    /// node's own seeded stream — randomized enough to break split votes,
    /// deterministic enough to keep chaos JSON byte-identical (DESIGN.md
    /// §15).  Raft's canonical 150–300 ms.
    Duration election_timeout_min = Duration::millis(150);
    Duration election_timeout_max = Duration::millis(300);

    /// Leader re-sync cadence while some reachable follower is behind and
    /// acks are being lost (message drops).  Quiescence-gated: never armed
    /// when every reachable follower is caught up, so the simulation still
    /// drains.
    Duration retry_interval = Duration::millis(50);

    /// A node compacts its log once more than this many committed entries
    /// sit above its snapshot; a follower whose next index falls below the
    /// leader's snapshot is caught up via InstallSnapshot.
    std::uint64_t snapshot_threshold = 4096;

    /// Seeded per-message drop probability between Raft peers (the
    /// unreliable-path chaos axis); also settable mid-run by the fault
    /// injector (kRaftDrop).
    double drop_prob = 0.0;
};

}  // namespace fl::raft
