#include "raft/raft.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "common/log.h"
#include "obs/trace.h"

namespace fl::raft {

namespace {

/// Consensus backplane link: the Raft peers of one ordering service sit on
/// the same rack, so replication latency is negligible next to the data
/// path's jittered client/OSN links.  Zero delay also makes the fault-free
/// replicate-ack-commit cascade complete at the same simulated instant as
/// the produce arrival — the mq byte-identity argument (DESIGN.md §15).
sim::LinkParams consensus_link() {
    sim::LinkParams link;
    link.base_latency = Duration::zero();
    link.bandwidth_bps = 1e18;
    link.jitter_stddev = Duration::zero();
    return link;
}

/// Same wire framing as mq::BrokerParams::record_overhead_bytes, so both
/// backends charge identical bytes on the shared data-path links.
constexpr std::size_t kRecordOverheadBytes = 64;

constexpr std::size_t kAppendHeaderBytes = 48;
constexpr std::size_t kPerEntryHeaderBytes = 24;
constexpr std::size_t kReplyBytes = 32;
constexpr std::size_t kVoteBytes = 24;
constexpr std::size_t kSnapshotBytes = 64;

}  // namespace

RaftOrderingBackend::RaftOrderingBackend(sim::Simulator& sim, sim::Network& net,
                                         Rng rng, RaftParams params)
    : sim_(sim),
      net_(net),
      params_(params),
      raft_net_(sim, rng.split("raftnet"), consensus_link()),
      drop_rng_(rng.split("raftdrop")),
      drop_prob_(params.drop_prob) {
    if (params_.nodes == 0) params_.nodes = 1;
    if (params_.election_timeout_max <= params_.election_timeout_min) {
        params_.election_timeout_max =
            params_.election_timeout_min + Duration::millis(1);
    }
    nodes_.resize(params_.nodes);
    partitioned_.assign(params_.nodes, false);
    for (std::uint32_t i = 0; i < params_.nodes; ++i) {
        nodes_[i].rng = rng.split("raftnode" + std::to_string(i));
    }
    // Node 0 bootstraps as leader of term 1 — modelling an election that
    // completed before the experiment window opens.  Fault-free runs
    // therefore never buffer a produce, and the cluster contact address
    // (kRaftNodeBase) is the leader from the first event on.
    Node& boot = nodes_[0];
    boot.role = Role::kLeader;
    boot.next.assign(params_.nodes, 1);
    boot.match.assign(params_.nodes, 0);
    boot.acked_commit.assign(params_.nodes, 0);
    leader_ = 0;
}

// -- log geometry -----------------------------------------------------------

std::uint64_t RaftOrderingBackend::term_at(const Node& n, std::uint64_t idx) const {
    if (idx == 0) return 0;
    if (idx == n.snap_index) return n.snap_term;
    return n.log.at(idx - n.snap_index - 1).term;
}

const RaftOrderingBackend::Entry& RaftOrderingBackend::entry_at(
    const Node& n, std::uint64_t idx) const {
    return n.log.at(idx - n.snap_index - 1);
}

// -- OrderingBackend surface ------------------------------------------------

void RaftOrderingBackend::create_topic(const std::string& name) {
    if (topic_ids_.contains(name)) return;
    const auto id = static_cast<std::uint32_t>(topics_.size());
    topics_.push_back(TopicLog{});
    topics_.back().name = name;
    topic_ids_.emplace(name, id);
}

bool RaftOrderingBackend::has_topic(const std::string& name) const {
    return topic_ids_.contains(name);
}

RaftOrderingBackend::TopicLog& RaftOrderingBackend::topic_ref(
    const std::string& name) {
    const auto it = topic_ids_.find(name);
    if (it == topic_ids_.end()) {
        throw std::invalid_argument("RaftOrderingBackend: unknown topic " + name);
    }
    return topics_[it->second];
}

const RaftOrderingBackend::TopicLog& RaftOrderingBackend::topic_ref(
    const std::string& name) const {
    const auto it = topic_ids_.find(name);
    if (it == topic_ids_.end()) {
        throw std::invalid_argument("RaftOrderingBackend: unknown topic " + name);
    }
    return topics_[it->second];
}

void RaftOrderingBackend::produce(const std::string& topic, NodeId producer,
                                  std::size_t size_bytes,
                                  orderer::OrderedRecord value) {
    const std::uint32_t tid = topic_ids_.at(topic);
    const std::size_t wire = size_bytes + kRecordOverheadBytes;
    // Same call shape as the mq broker: one reliable hop from the producer
    // to the cluster contact, so the main network draws the identical jitter
    // sequence under either backend.
    net_.send_reliable(producer, node(), wire,
                       [this, tid, wire, value = std::move(value)]() mutable {
                           submit(tid, wire, std::move(value));
                       });
}

mq::Offset RaftOrderingBackend::produce_local(const std::string& topic,
                                              std::size_t size_bytes,
                                              orderer::OrderedRecord value) {
    const std::uint32_t tid = topic_ids_.at(topic);
    const std::size_t wire = size_bytes + kRecordOverheadBytes;
    mq::Offset off = static_cast<mq::Offset>(topics_[tid].records.size());
    if (const auto it = pending_by_topic_.find(tid); it != pending_by_topic_.end()) {
        off += it->second;  // in-flight submissions land first
    }
    submit(tid, wire, std::move(value));
    return off;
}

std::shared_ptr<RaftOrderingBackend::SubscriptionT> RaftOrderingBackend::subscribe(
    const std::string& topic, NodeId consumer_node, mq::Offset from_offset) {
    TopicLog& log = topic_ref(topic);
    if (from_offset > log.records.size()) {
        throw std::out_of_range("RaftOrderingBackend::subscribe: offset " +
                                std::to_string(from_offset) + " past end of " +
                                topic + " (size " +
                                std::to_string(log.records.size()) + ")");
    }
    auto sub = std::make_shared<SubscriptionT>();
    sub->next_offset_ = from_offset;
    log.subscribers.push_back(Subscriber{consumer_node, sub});
    for (mq::Offset off = from_offset; off < log.records.size(); ++off) {
        push_to(log, log.subscribers.back(), off, log.sizes[off]);
    }
    return sub;
}

const orderer::OrderedRecord& RaftOrderingBackend::read(const std::string& topic,
                                                        mq::Offset offset) const {
    const TopicLog& log = topic_ref(topic);
    if (offset >= log.records.size()) {
        throw std::out_of_range("RaftOrderingBackend::read: offset " +
                                std::to_string(offset) + " past end of " + topic +
                                " (size " + std::to_string(log.records.size()) +
                                ")");
    }
    return log.records[offset];
}

std::size_t RaftOrderingBackend::topic_size(const std::string& topic) const {
    const auto it = topic_ids_.find(topic);
    return it == topic_ids_.end() ? 0 : topics_[it->second].records.size();
}

const std::vector<orderer::OrderedRecord>& RaftOrderingBackend::log_of(
    const std::string& topic) const {
    return topic_ref(topic).records;
}

void RaftOrderingBackend::set_down(bool down) {
    if (down_ == down) return;
    down_ = down;
    if (down) {
        ++outages_;
        down_revive_.clear();
        for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
            if (nodes_[i].alive) {
                down_revive_.push_back(i);
                crash_node(i);
            }
        }
        return;
    }
    for (const std::uint32_t i : down_revive_) {
        restart_node(i);
    }
    down_revive_.clear();
}

// -- client path ------------------------------------------------------------

void RaftOrderingBackend::submit(std::uint32_t topic, std::size_t wire,
                                 orderer::OrderedRecord rec) {
    const std::uint64_t seq = ++next_seq_;
    const auto [it, inserted] =
        pending_.emplace(seq, PendingSubmit{topic, wire, std::move(rec)});
    ++pending_by_topic_[topic];
    if (leader_alive()) {
        leader_append(leader_, seq, it->second);
    } else {
        // Leaderless window (crash, outage, not-yet-elected): buffer in
        // arrival order; the next elected leader proposes the backlog.
        ++buffered_submits_;
    }
    // Followers keep a (seeded) election timer armed while uncommitted work
    // exists — this is the leader-failure detector, and the only way a
    // minority-partitioned leader's stalled submissions trigger the
    // majority side to elect a successor.
    arm_elections_everywhere();
}

void RaftOrderingBackend::leader_append(std::uint32_t l, std::uint64_t seq,
                                        const PendingSubmit& p) {
    Node& ldr = nodes_[l];
    Entry e;
    e.term = ldr.term;
    e.seq = seq;
    e.topic = p.topic;
    e.wire = p.wire;
    e.record = p.record;
    ldr.log.push_back(std::move(e));
    sync_followers(l);
    advance_commit(l);  // single-node clusters commit synchronously
    maybe_arm_retry(l);
}

// -- consensus transport ----------------------------------------------------

void RaftOrderingBackend::rpc(std::uint32_t from, std::uint32_t to,
                              std::size_t bytes, std::function<void()> handler) {
    Node& dst = nodes_[to];
    if (!dst.alive) return;  // a dead process receives nothing
    if (is_partitioned(from, to)) {
        ++messages_dropped_;
        return;
    }
    if (drop_prob_ > 0.0 && drop_rng_.chance(drop_prob_)) {
        ++messages_dropped_;
        return;
    }
    raft_net_.send_reliable(
        node_id(from), node_id(to), bytes,
        [this, to, epoch = dst.epoch, handler = std::move(handler)] {
            // Epoch guard: datagrams sent before a crash never reach the
            // restarted incarnation (mirrors the OSN in-flight-work guard).
            if (!nodes_[to].alive || nodes_[to].epoch != epoch) return;
            handler();
        });
}

// -- replication ------------------------------------------------------------

void RaftOrderingBackend::sync_followers(std::uint32_t l) {
    Node& ldr = nodes_[l];
    for (std::uint32_t f = 0; f < nodes_.size(); ++f) {
        if (f == l || !nodes_[f].alive) continue;
        if (ldr.next[f] > last_index(ldr) && ldr.acked_commit[f] >= ldr.commit) {
            continue;  // caught up and knows it — nothing to tell
        }
        send_append(l, f);
    }
}

void RaftOrderingBackend::send_append(std::uint32_t l, std::uint32_t f) {
    Node& ldr = nodes_[l];
    if (!nodes_[f].alive) return;
    if (ldr.next[f] <= ldr.snap_index) {
        send_install(l, f);
        return;
    }
    const std::uint64_t prev = ldr.next[f] - 1;
    const std::uint64_t prev_term = term_at(ldr, prev);
    std::vector<Entry> entries;
    std::size_t bytes = kAppendHeaderBytes;
    for (std::uint64_t idx = prev + 1; idx <= last_index(ldr); ++idx) {
        entries.push_back(entry_at(ldr, idx));
        bytes += entries.back().wire + kPerEntryHeaderBytes;
    }
    rpc(l, f, bytes,
        [this, f, l, term = ldr.term, prev, prev_term,
         entries = std::move(entries), commit = ldr.commit]() mutable {
            on_append_request(f, l, term, prev, prev_term, std::move(entries),
                              commit);
        });
}

void RaftOrderingBackend::on_append_request(std::uint32_t me, std::uint32_t from,
                                            std::uint64_t req_term,
                                            std::uint64_t prev,
                                            std::uint64_t prev_term,
                                            std::vector<Entry> entries,
                                            std::uint64_t leader_commit) {
    Node& n = nodes_[me];
    if (req_term < n.term) {
        // Stale leader: refuse and carry our newer term so it steps down.
        rpc(me, from, kReplyBytes,
            [this, from, me, term = n.term] {
                on_append_reply(from, me, term, false, 0, 0, 0);
            });
        return;
    }
    if (req_term > n.term || n.role != Role::kFollower) {
        step_down(me, req_term);
    }
    n.election_timer.cancel();  // heard from the leader of our term

    bool ok = false;
    std::uint64_t match = 0;
    std::uint64_t hint = 0;
    // The snapshotted prefix is committed, hence matches by definition; skip
    // any batch overlap below it.
    if (prev < n.snap_index) {
        const std::uint64_t skip =
            std::min<std::uint64_t>(n.snap_index - prev, entries.size());
        entries.erase(entries.begin(),
                      entries.begin() + static_cast<std::ptrdiff_t>(skip));
        prev += skip;
        if (prev == n.snap_index) prev_term = n.snap_term;
    }
    if (prev > last_index(n)) {
        hint = last_index(n);  // follower is short: jump straight back
    } else if (prev > n.snap_index && term_at(n, prev) != prev_term) {
        hint = prev - 1;  // conflicting history: back up one
    } else if (prev < n.snap_index) {
        ok = true;  // batch ended inside our snapshot — all committed
        match = prev + entries.size();
    } else {
        ok = true;
        std::uint64_t idx = prev;
        for (Entry& e : entries) {
            ++idx;
            if (idx <= last_index(n)) {
                if (term_at(n, idx) == e.term) continue;  // already present
                // Conflict: truncate our uncommitted suffix (Raft §5.3).
                n.log.erase(n.log.begin() +
                                static_cast<std::ptrdiff_t>(idx - n.snap_index - 1),
                            n.log.end());
                ++truncations_;
            }
            n.log.push_back(std::move(e));
        }
        match = idx;
        const std::uint64_t new_commit =
            std::min<std::uint64_t>(leader_commit, last_index(n));
        if (new_commit > n.commit) n.commit = new_commit;
        maybe_compact();
    }
    rpc(me, from, kReplyBytes,
        [this, from, me, term = n.term, ok, match, hint, commit = n.commit] {
            on_append_reply(from, me, term, ok, match, hint, commit);
        });
    maybe_arm_election(me);
}

void RaftOrderingBackend::on_append_reply(std::uint32_t l, std::uint32_t f,
                                          std::uint64_t reply_term, bool ok,
                                          std::uint64_t match, std::uint64_t hint,
                                          std::uint64_t follower_commit) {
    Node& ldr = nodes_[l];
    if (!ldr.alive || ldr.role != Role::kLeader) return;
    if (reply_term > ldr.term) {
        step_down(l, reply_term);
        return;
    }
    if (reply_term < ldr.term) return;  // stale reply from an older exchange
    ldr.acked_commit[f] = follower_commit;
    if (ok) {
        if (match > ldr.match[f]) ldr.match[f] = match;
        ldr.next[f] = std::max<std::uint64_t>(ldr.next[f], ldr.match[f] + 1);
        advance_commit(l);
        if (ldr.next[f] <= last_index(ldr) || ldr.acked_commit[f] < ldr.commit) {
            send_append(l, f);  // ship the rest / publish the new commit
        }
    } else {
        ldr.next[f] = std::max<std::uint64_t>(
            1, std::min<std::uint64_t>(hint + 1, ldr.next[f] - 1));
        send_append(l, f);
    }
    maybe_arm_retry(l);
}

void RaftOrderingBackend::send_install(std::uint32_t l, std::uint32_t f) {
    Node& ldr = nodes_[l];
    rpc(l, f, kSnapshotBytes,
        [this, f, l, term = ldr.term, s_idx = ldr.snap_index,
         s_term = ldr.snap_term] {
            Node& n = nodes_[f];
            if (term < n.term) {
                rpc(f, l, kReplyBytes, [this, l, f, t = n.term] {
                    on_append_reply(l, f, t, false, 0, 0, 0);
                });
                return;
            }
            if (term > n.term || n.role != Role::kFollower) step_down(f, term);
            n.election_timer.cancel();
            if (s_idx > n.snap_index) {
                if (s_idx >= last_index(n)) {
                    n.log.clear();
                } else {
                    n.log.erase(n.log.begin(),
                                n.log.begin() + static_cast<std::ptrdiff_t>(
                                                    s_idx - n.snap_index));
                }
                n.snap_index = s_idx;
                n.snap_term = s_term;
                if (s_idx > n.commit) n.commit = s_idx;
                ++snapshot_installs_;
                trace_event(
                    static_cast<std::uint8_t>(obs::EventType::kRaftSnapshot), f,
                    s_idx, s_term);
            }
            rpc(f, l, kReplyBytes,
                [this, l, f, t = n.term, m = n.snap_index, c = n.commit] {
                    on_append_reply(l, f, t, true, m, 0, c);
                });
            maybe_arm_election(f);
        });
}

void RaftOrderingBackend::advance_commit(std::uint32_t l) {
    Node& ldr = nodes_[l];
    std::vector<std::uint64_t> reached;
    reached.reserve(nodes_.size());
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
        // A crashed follower's durable log still holds what it acked.
        reached.push_back(i == l ? last_index(ldr) : ldr.match[i]);
    }
    std::sort(reached.begin(), reached.end(), std::greater<>());
    const std::uint64_t candidate = reached[majority() - 1];
    // Only entries of the leader's own term commit by counting (§5.4.2);
    // earlier-term entries commit transitively underneath them.
    if (candidate > ldr.commit && term_at(ldr, candidate) == ldr.term) {
        ldr.commit = candidate;
        apply_committed(l);
        sync_followers(l);  // publish the new commit index
    }
}

void RaftOrderingBackend::apply_committed(std::uint32_t l) {
    Node& ldr = nodes_[l];
    while (applied_ < ldr.commit) {
        ++applied_;
        apply_entry(entry_at(ldr, applied_));
    }
    maybe_compact();
}

void RaftOrderingBackend::apply_entry(const Entry& e) {
    if (e.seq == 0) return;  // leader no-op: term boundary only
    const auto it = pending_.find(e.seq);
    if (it == pending_.end()) {
        // Already applied under an earlier log index: a leader-change
        // retry committed twice in the log; the session dedup makes
        // delivery exactly-once.
        ++dup_commits_skipped_;
        return;
    }
    TopicLog& log = topics_[e.topic];
    const auto off = static_cast<mq::Offset>(log.records.size());
    log.records.push_back(e.record);
    log.sizes.push_back(e.wire);
    FL_TRACE("raft: " << log.name << " apply @" << off << " (seq " << e.seq
                      << ", " << e.wire << " B)");
    if (on_append_) on_append_(log.name, off, log.records.back(), e.wire);
    std::erase_if(log.subscribers,
                  [](const Subscriber& s) { return s.sub.expired(); });
    for (const Subscriber& s : log.subscribers) {
        push_to(log, s, off, e.wire);
    }
    if (const auto cnt = pending_by_topic_.find(e.topic);
        cnt != pending_by_topic_.end() && cnt->second > 0) {
        --cnt->second;
    }
    pending_.erase(it);
}

void RaftOrderingBackend::push_to(TopicLog& log, const Subscriber& s,
                                  mq::Offset off, std::size_t wire) {
    // Fanout originates at the node that applied the entry (the current
    // leader, or the bootstrap contact when leaderless during replay).
    const NodeId from = leader_alive() ? node_id(leader_) : node();
    std::weak_ptr<SubscriptionT> weak = s.sub;
    const orderer::OrderedRecord& value = log.records[off];
    net_.send_reliable(from, s.node, wire, [weak, off, value] {
        if (auto sub = weak.lock()) sub->on_push(off, value);
    });
}

void RaftOrderingBackend::maybe_compact() {
    if (params_.snapshot_threshold == 0) return;
    for (Node& n : nodes_) {
        if (!n.alive) continue;  // a crashed process cannot compact
        const std::uint64_t point = std::min(n.commit, applied_);
        if (point <= n.snap_index) continue;
        if (point - n.snap_index < params_.snapshot_threshold) continue;
        n.snap_term = term_at(n, point);
        n.log.erase(n.log.begin(),
                    n.log.begin() + static_cast<std::ptrdiff_t>(point - n.snap_index));
        n.snap_index = point;
        ++compactions_;
    }
}

// -- elections --------------------------------------------------------------

void RaftOrderingBackend::maybe_arm_election(std::uint32_t i) {
    Node& n = nodes_[i];
    if (!n.alive || n.role == Role::kLeader) return;
    if (n.election_timer.active()) return;
    if (!has_pending_work()) return;  // quiescence gate: nothing to elect for
    const double timeout_s =
        n.rng.uniform(params_.election_timeout_min.as_seconds(),
                      params_.election_timeout_max.as_seconds());
    n.election_timer = sim_.schedule_timer(
        Duration::from_seconds(timeout_s), [this, i, epoch = n.epoch] {
            Node& node = nodes_[i];
            if (!node.alive || node.epoch != epoch) return;
            if (node.role == Role::kLeader) return;
            if (!has_pending_work()) return;  // backlog drained meanwhile
            start_election(i);
        });
}

void RaftOrderingBackend::arm_elections_everywhere() {
    if (!has_pending_work()) return;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
        maybe_arm_election(i);
    }
}

void RaftOrderingBackend::start_election(std::uint32_t i) {
    Node& n = nodes_[i];
    n.role = Role::kCandidate;
    ++n.term;
    n.voted_for = i;
    n.votes_granted = 1;
    ++elections_;
    trace_event(static_cast<std::uint8_t>(obs::EventType::kRaftElection), i,
                n.term, 0);
    FL_DEBUG("raft: node " << i << " starts election, term " << n.term);
    if (n.votes_granted >= majority()) {
        become_leader(i);
        return;
    }
    for (std::uint32_t f = 0; f < nodes_.size(); ++f) {
        if (f == i) continue;
        rpc(i, f, kVoteBytes,
            [this, f, i, term = n.term, last_idx = last_index(n),
             last_trm = term_at(n, last_index(n))] {
                on_vote_request(f, i, term, last_idx, last_trm);
            });
    }
    maybe_arm_election(i);  // re-arm for the split-vote retry
}

void RaftOrderingBackend::on_vote_request(std::uint32_t me, std::uint32_t cand,
                                          std::uint64_t cand_term,
                                          std::uint64_t cand_last_idx,
                                          std::uint64_t cand_last_term) {
    Node& n = nodes_[me];
    if (cand_term > n.term) step_down(me, cand_term);
    bool grant = false;
    if (cand_term == n.term && n.role == Role::kFollower &&
        (!n.voted_for || *n.voted_for == cand)) {
        // Election restriction (§5.4.1): only grant to logs at least as
        // up-to-date as ours, so a leader always holds every committed entry.
        const std::uint64_t my_last_term = term_at(n, last_index(n));
        const bool up_to_date =
            cand_last_term > my_last_term ||
            (cand_last_term == my_last_term && cand_last_idx >= last_index(n));
        if (up_to_date) {
            grant = true;
            n.voted_for = cand;
            n.election_timer.cancel();
            maybe_arm_election(me);
        }
    }
    rpc(me, cand, kVoteBytes, [this, cand, term = n.term, grant] {
        on_vote_reply(cand, term, grant);
    });
}

void RaftOrderingBackend::on_vote_reply(std::uint32_t cand,
                                        std::uint64_t reply_term, bool granted) {
    Node& n = nodes_[cand];
    if (!n.alive || n.role != Role::kCandidate) return;
    if (reply_term > n.term) {
        step_down(cand, reply_term);
        return;
    }
    if (reply_term < n.term) return;
    if (granted && ++n.votes_granted >= majority()) {
        become_leader(cand);
    }
}

void RaftOrderingBackend::become_leader(std::uint32_t i) {
    Node& n = nodes_[i];
    n.role = Role::kLeader;
    n.election_timer.cancel();
    n.next.assign(nodes_.size(), last_index(n) + 1);
    n.match.assign(nodes_.size(), 0);
    n.acked_commit.assign(nodes_.size(), 0);
    leader_ = i;
    ++leader_changes_;
    trace_event(static_cast<std::uint8_t>(obs::EventType::kRaftLeaderElected), i,
                n.term, leader_changes_);
    FL_DEBUG("raft: node " << i << " elected leader, term " << n.term);
    // No-op entry of the new term so the previous terms' entries underneath
    // it commit by counting (§5.4.2).
    Entry noop;
    noop.term = n.term;
    n.log.push_back(std::move(noop));
    // Client-session retry: re-propose every uncommitted submission the new
    // log does not already carry, in arrival order.  Commit-time seq dedup
    // keeps delivery exactly-once even when the old leader's copy survives.
    std::unordered_set<std::uint64_t> in_log;
    for (const Entry& e : n.log) {
        if (e.seq != 0) in_log.insert(e.seq);
    }
    for (const auto& [seq, p] : pending_) {
        if (in_log.contains(seq)) continue;
        ++resubmissions_;
        leader_append(i, seq, p);
    }
    sync_followers(i);
    advance_commit(i);
    maybe_arm_retry(i);
}

void RaftOrderingBackend::step_down(std::uint32_t i, std::uint64_t new_term) {
    Node& n = nodes_[i];
    if (new_term > n.term) {
        n.term = new_term;
        n.voted_for.reset();
    }
    n.role = Role::kFollower;
    n.votes_granted = 0;
    n.retry_timer.cancel();
    if (leader_ == i) leader_ = kNoLeader;
    maybe_arm_election(i);
}

// -- retries + topology -----------------------------------------------------

bool RaftOrderingBackend::needs_retry(std::uint32_t l) const {
    const Node& ldr = nodes_[l];
    for (std::uint32_t f = 0; f < nodes_.size(); ++f) {
        if (f == l || !nodes_[f].alive || is_partitioned(l, f)) continue;
        if (ldr.next[f] <= last_index(ldr)) return true;
        if (ldr.acked_commit[f] < ldr.commit) return true;
    }
    return false;
}

void RaftOrderingBackend::maybe_arm_retry(std::uint32_t l) {
    Node& n = nodes_[l];
    if (!n.alive || n.role != Role::kLeader) return;
    if (n.retry_timer.active()) return;
    if (!needs_retry(l)) return;
    n.retry_timer =
        sim_.schedule_timer(params_.retry_interval, [this, l, epoch = n.epoch] {
            Node& node = nodes_[l];
            if (!node.alive || node.epoch != epoch) return;
            if (node.role != Role::kLeader) return;
            if (!needs_retry(l)) return;  // acks arrived meanwhile — drain
            sync_followers(l);
            maybe_arm_retry(l);
        });
}

void RaftOrderingBackend::on_topology_change() {
    if (leader_alive()) {
        sync_followers(leader_);
        maybe_arm_retry(leader_);
        return;
    }
    arm_elections_everywhere();
}

// -- fault injection --------------------------------------------------------

void RaftOrderingBackend::kill_leader() {
    if (!leader_alive()) return;
    crash_node(leader_);
}

void RaftOrderingBackend::crash_node(std::uint32_t i) {
    Node& n = nodes_[i];
    if (!n.alive) return;
    n.alive = false;
    ++n.epoch;  // invalidates every in-flight rpc addressed to this node
    n.election_timer.cancel();
    n.retry_timer.cancel();
    n.role = Role::kFollower;
    n.votes_granted = 0;
    ++crashes_;
    if (leader_ == i) leader_ = kNoLeader;
    FL_DEBUG("raft: node " << i << " crashed");
    arm_elections_everywhere();
}

void RaftOrderingBackend::restart_node(std::uint32_t i) {
    if (i == kAllNodes) {
        for (std::uint32_t j = 0; j < nodes_.size(); ++j) {
            if (!nodes_[j].alive) restart_node(j);
        }
        return;
    }
    i %= nodes_.size();
    Node& n = nodes_[i];
    if (n.alive) return;
    n.alive = true;
    ++n.epoch;
    n.role = Role::kFollower;
    n.votes_granted = 0;
    ++restarts_;
    FL_DEBUG("raft: node " << i << " restarted (term " << n.term << ", log to "
                           << last_index(n) << ")");
    on_topology_change();
}

void RaftOrderingBackend::partition_node(std::uint32_t i) {
    partitioned_[i % nodes_.size()] = true;
    arm_elections_everywhere();
}

void RaftOrderingBackend::heal_partitions() {
    partitioned_.assign(nodes_.size(), false);
    on_topology_change();
}

void RaftOrderingBackend::set_drop_prob(double p) {
    drop_prob_ = p;
    if (p <= 0.0) on_topology_change();  // re-sync whatever the drops lost
}

// -- statistics -------------------------------------------------------------

std::optional<std::uint32_t> RaftOrderingBackend::leader() const {
    if (!leader_alive()) return std::nullopt;
    return leader_;
}

std::uint64_t RaftOrderingBackend::current_term() const {
    std::uint64_t t = 0;
    for (const Node& n : nodes_) t = std::max(t, n.term);
    return t;
}

std::uint64_t RaftOrderingBackend::replication_lag() const {
    if (!leader_alive()) return 0;
    const Node& ldr = nodes_[leader_];
    std::uint64_t lag = 0;
    for (std::uint32_t f = 0; f < nodes_.size(); ++f) {
        if (f == leader_ || !nodes_[f].alive) continue;
        const std::uint64_t match = ldr.match[f];
        if (last_index(ldr) > match) lag = std::max(lag, last_index(ldr) - match);
    }
    return lag;
}

bool RaftOrderingBackend::committed_prefixes_consistent() const {
    for (std::uint32_t a = 0; a < nodes_.size(); ++a) {
        for (std::uint32_t b = a + 1; b < nodes_.size(); ++b) {
            const Node& na = nodes_[a];
            const Node& nb = nodes_[b];
            const std::uint64_t lo = std::max(na.snap_index, nb.snap_index) + 1;
            const std::uint64_t hi =
                std::min({last_index(na), last_index(nb), applied_});
            for (std::uint64_t idx = lo; idx <= hi; ++idx) {
                const Entry& ea = entry_at(na, idx);
                const Entry& eb = entry_at(nb, idx);
                if (ea.term != eb.term || ea.seq != eb.seq) return false;
            }
        }
    }
    return true;
}

void RaftOrderingBackend::trace_event(std::uint8_t type, std::uint64_t actor,
                                      std::uint64_t value,
                                      std::uint64_t value2) const {
    if (trace_ == nullptr) return;
    obs::TraceEvent ev;
    ev.at = sim_.now();
    ev.type = static_cast<obs::EventType>(type);
    ev.actor_kind = obs::ActorKind::kRaft;
    ev.actor = actor;
    ev.value = value;
    ev.value2 = value2;
    trace_->emit(ev);
}

}  // namespace fl::raft
