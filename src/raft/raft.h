// Deterministic simulated-time Raft ordering backend (DESIGN.md §15).
//
// A cluster of N in-simulation Raft nodes replaces the single Kafka-style
// broker behind the OrderingBackend interface.  The replicated state machine
// is the set of priority-topic logs: a client `produce` becomes a Raft log
// entry; once the entry is replicated to a majority and committed it is
// applied — appended to its topic's committed projection and fanned out to
// subscribers exactly once.  OSN crash/restart replay, TTC semantics, the
// append hook and the consistency checks all read the committed projection,
// so everything above the interface is backend-agnostic.
//
// Determinism contract (the whole point of this implementation):
//   - consensus messages travel over a dedicated zero-latency sim::Network
//     whose jitter stream, and the per-message drop stream, and every
//     node's election-timeout stream, are split from one Rng owned by the
//     cluster — the main network's draw sequence is untouched, which is
//     what makes fault-free Raft runs byte-identical to the mq backend;
//   - election timeouts are seeded-uniform in [min, max) per arming, so
//     leader changes, terms and the entire chaos timeline are a pure
//     function of (config, seed);
//   - timers are quiescence-gated: election and retry timers are armed only
//     while uncommitted client submissions exist (or a reachable follower
//     lags), so the event queue drains and `Simulator::run()` terminates.
//
// Failure semantics:
//   - crash preserves durable Raft state (term, vote, log, snapshot) and
//     invalidates in-flight work via a per-node epoch, mirroring the OSN
//     crash()/restart() discipline;
//   - a partitioned minority leader keeps accepting submissions that can
//     never commit; the cluster retries every uncommitted submission on the
//     next elected leader (Raft's client-session pattern), and commit-time
//     seq dedup makes the retry exactly-once — this is what keeps TTC
//     markers exactly-once under leader change;
//   - snapshots compact node logs only; the committed projection is the
//     state machine and is retained in full so OSN restart can re-subscribe
//     from offset 0.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "mq/broker.h"
#include "orderer/ordering_backend.h"
#include "orderer/record.h"
#include "raft/params.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace fl::obs {
class TraceSink;
}

namespace fl::raft {

/// Raft node addresses: node i lives at kRaftNodeBase + i.  Node 0 shares
/// the mq broker's address (9000) and bootstraps as leader of term 1, so
/// fault-free produce/fanout traffic traverses the identical links in the
/// identical order as the mq backend (the byte-identity argument).
inline constexpr std::uint64_t kRaftNodeBase = 9000;

/// Target sentinel for restart faults: revive every crashed node.
inline constexpr std::uint32_t kAllNodes = 0xFFFFFFFFu;

enum class Role : std::uint8_t { kFollower = 0, kCandidate, kLeader };

class RaftOrderingBackend final : public orderer::OrderingBackend {
public:
    /// `net` is the main simulation network (produce + subscriber fanout —
    /// the same links the mq broker uses); consensus traffic runs on an
    /// internal zero-delay network.  `rng` must be independent of every
    /// other component stream (FabricNetwork derives it from a seed xor).
    RaftOrderingBackend(sim::Simulator& sim, sim::Network& net, Rng rng,
                        RaftParams params);

    RaftOrderingBackend(const RaftOrderingBackend&) = delete;
    RaftOrderingBackend& operator=(const RaftOrderingBackend&) = delete;

    // -- OrderingBackend ----------------------------------------------------
    void create_topic(const std::string& name) override;
    [[nodiscard]] bool has_topic(const std::string& name) const override;
    void produce(const std::string& topic, NodeId producer, std::size_t size_bytes,
                 orderer::OrderedRecord value) override;
    mq::Offset produce_local(const std::string& topic, std::size_t size_bytes,
                             orderer::OrderedRecord value) override;
    std::shared_ptr<SubscriptionT> subscribe(const std::string& topic,
                                             NodeId consumer_node,
                                             mq::Offset from_offset = 0) override;
    [[nodiscard]] const orderer::OrderedRecord& read(const std::string& topic,
                                                     mq::Offset offset) const override;
    [[nodiscard]] std::size_t topic_size(const std::string& topic) const override;
    [[nodiscard]] const std::vector<orderer::OrderedRecord>& log_of(
        const std::string& topic) const override;
    [[nodiscard]] NodeId node() const override { return NodeId{kRaftNodeBase}; }
    void set_on_append(AppendHook hook) override { on_append_ = std::move(hook); }

    /// Whole-cluster outage: every node crashes (durable state survives);
    /// closing the window restarts them and re-elects.  Submissions during
    /// the window are buffered in arrival order (deferred_appends_total).
    void set_down(bool down) override;
    [[nodiscard]] bool is_down() const override { return down_; }
    [[nodiscard]] std::uint64_t outages() const override { return outages_; }
    [[nodiscard]] std::uint64_t deferred_appends_total() const override {
        return buffered_submits_;
    }

    // -- fault injection ----------------------------------------------------
    /// Crashes the current leader (no-op when leaderless).
    void kill_leader();
    void crash_node(std::uint32_t i);
    /// Restarts node i, or every crashed node when i == kAllNodes.
    void restart_node(std::uint32_t i);
    /// Isolates node i from all peers on the consensus network (client
    /// submissions still reach it — the stale-leader scenario).
    void partition_node(std::uint32_t i);
    /// Clears all partitions and triggers a leader-driven re-sync.
    void heal_partitions();
    /// Seeded per-message drop probability between Raft peers.
    void set_drop_prob(double p);

    void set_trace(obs::TraceSink* sink) { trace_ = sink; }

    // -- statistics (gauges + gates) ----------------------------------------
    [[nodiscard]] std::optional<std::uint32_t> leader() const;
    [[nodiscard]] std::uint64_t current_term() const;
    [[nodiscard]] std::uint64_t leader_changes() const { return leader_changes_; }
    [[nodiscard]] std::uint64_t elections_started() const { return elections_; }
    [[nodiscard]] std::uint64_t commit_index() const { return applied_; }
    /// Leader's last log index minus the slowest *alive* follower's match
    /// index; 0 when leaderless.
    [[nodiscard]] std::uint64_t replication_lag() const;
    [[nodiscard]] std::uint64_t snapshot_installs() const { return snapshot_installs_; }
    [[nodiscard]] std::uint64_t log_truncations() const { return truncations_; }
    [[nodiscard]] std::uint64_t compactions() const { return compactions_; }
    /// Uncommitted submissions re-proposed by a newly elected leader.
    [[nodiscard]] std::uint64_t leader_resubmissions() const { return resubmissions_; }
    /// Committed entries skipped because their seq already applied (the
    /// exactly-once guard firing; > 0 only under leader change).
    [[nodiscard]] std::uint64_t duplicate_commits_skipped() const {
        return dup_commits_skipped_;
    }
    [[nodiscard]] std::uint64_t messages_dropped() const { return messages_dropped_; }
    [[nodiscard]] std::uint64_t consensus_messages() const {
        return raft_net_.messages_sent();
    }
    [[nodiscard]] std::uint64_t node_crashes() const { return crashes_; }
    [[nodiscard]] std::uint64_t node_restarts() const { return restarts_; }
    [[nodiscard]] bool node_alive(std::uint32_t i) const { return nodes_[i].alive; }
    [[nodiscard]] std::uint64_t node_term(std::uint32_t i) const {
        return nodes_[i].term;
    }
    [[nodiscard]] std::uint32_t node_count() const {
        return static_cast<std::uint32_t>(nodes_.size());
    }
    /// Uncommitted client submissions (buffered or in some leader's log).
    [[nodiscard]] std::size_t pending_submissions() const { return pending_.size(); }

    /// Safety check for the chaos gates: every pair of node logs must agree
    /// on every index both contain at or below the cluster commit point
    /// (Raft's Log Matching property over the committed prefix).
    [[nodiscard]] bool committed_prefixes_consistent() const;

private:
    static constexpr std::uint32_t kNoLeader = 0xFFFFFFFFu;
    static constexpr std::uint32_t kNoopTopic = 0xFFFFFFFFu;

    struct Entry {
        std::uint64_t term = 0;
        std::uint64_t seq = 0;  ///< client-session id; 0 for leader no-ops
        std::uint32_t topic = kNoopTopic;
        std::size_t wire = 0;
        orderer::OrderedRecord record;
    };

    struct PendingSubmit {
        std::uint32_t topic = 0;
        std::size_t wire = 0;
        orderer::OrderedRecord record;
    };

    struct Node {
        // Durable state (survives crash; Raft's persisted triple + log).
        std::uint64_t term = 1;
        std::optional<std::uint32_t> voted_for;
        std::vector<Entry> log;        ///< global indices [snap+1, snap+size]
        std::uint64_t snap_index = 0;  ///< entries covered by the snapshot
        std::uint64_t snap_term = 0;
        // Volatile state.
        Role role = Role::kFollower;
        bool alive = true;
        std::uint64_t epoch = 0;  ///< bumped on crash/restart; guards in-flight work
        std::uint64_t commit = 0;
        std::uint32_t votes_granted = 0;
        // Leader-volatile state (reinitialized on election).
        std::vector<std::uint64_t> next;
        std::vector<std::uint64_t> match;
        std::vector<std::uint64_t> acked_commit;  ///< follower's acked commit index
        sim::TimerHandle election_timer;
        sim::TimerHandle retry_timer;
        Rng rng{0};  ///< election-timeout stream
    };

    struct Subscriber {
        NodeId node;
        std::weak_ptr<SubscriptionT> sub;
    };

    struct TopicLog {
        std::string name;
        std::vector<orderer::OrderedRecord> records;
        std::vector<std::size_t> sizes;
        std::vector<Subscriber> subscribers;
    };

    // Log geometry helpers (global, 1-based indices).
    [[nodiscard]] std::uint64_t last_index(const Node& n) const {
        return n.snap_index + n.log.size();
    }
    [[nodiscard]] std::uint64_t term_at(const Node& n, std::uint64_t idx) const;
    [[nodiscard]] const Entry& entry_at(const Node& n, std::uint64_t idx) const;
    [[nodiscard]] NodeId node_id(std::uint32_t i) const {
        return NodeId{kRaftNodeBase + i};
    }
    [[nodiscard]] std::uint32_t majority() const {
        return static_cast<std::uint32_t>(nodes_.size() / 2 + 1);
    }
    [[nodiscard]] bool is_partitioned(std::uint32_t a, std::uint32_t b) const {
        return partitioned_[a] || partitioned_[b];
    }
    [[nodiscard]] bool has_pending_work() const { return !pending_.empty(); }
    [[nodiscard]] bool leader_alive() const {
        return leader_ != kNoLeader && nodes_[leader_].alive;
    }

    // Client path.
    void submit(std::uint32_t topic, std::size_t wire, orderer::OrderedRecord rec);
    void leader_append(std::uint32_t l, std::uint64_t seq, const PendingSubmit& p);

    // Consensus message plumbing (unreliable path: partitions + seeded drop).
    void rpc(std::uint32_t from, std::uint32_t to, std::size_t bytes,
             std::function<void()> handler);

    // AppendEntries / InstallSnapshot.
    void sync_followers(std::uint32_t l);
    void send_append(std::uint32_t l, std::uint32_t f);
    void on_append_request(std::uint32_t me, std::uint32_t from,
                           std::uint64_t req_term, std::uint64_t prev,
                           std::uint64_t prev_term, std::vector<Entry> entries,
                           std::uint64_t leader_commit);
    void on_append_reply(std::uint32_t l, std::uint32_t f, std::uint64_t reply_term,
                         bool ok, std::uint64_t match, std::uint64_t hint,
                         std::uint64_t follower_commit);
    void send_install(std::uint32_t l, std::uint32_t f);
    void advance_commit(std::uint32_t l);
    void apply_committed(std::uint32_t l);
    void apply_entry(const Entry& e);
    void maybe_compact();

    // Elections.
    void maybe_arm_election(std::uint32_t i);
    void arm_elections_everywhere();
    void start_election(std::uint32_t i);
    void on_vote_request(std::uint32_t me, std::uint32_t cand,
                         std::uint64_t cand_term, std::uint64_t cand_last_idx,
                         std::uint64_t cand_last_term);
    void on_vote_reply(std::uint32_t cand, std::uint64_t reply_term, bool granted);
    void become_leader(std::uint32_t i);
    void step_down(std::uint32_t i, std::uint64_t new_term);

    // Retry (message loss) + topology changes.
    [[nodiscard]] bool needs_retry(std::uint32_t l) const;
    void maybe_arm_retry(std::uint32_t l);
    void on_topology_change();

    // Projection.
    TopicLog& topic_ref(const std::string& name);
    [[nodiscard]] const TopicLog& topic_ref(const std::string& name) const;
    void push_to(TopicLog& log, const Subscriber& s, mq::Offset off,
                 std::size_t wire);
    void trace_event(std::uint8_t type, std::uint64_t actor, std::uint64_t value,
                     std::uint64_t value2) const;

    sim::Simulator& sim_;
    sim::Network& net_;  ///< main network: produce + subscriber fanout
    RaftParams params_;
    sim::Network raft_net_;  ///< consensus backplane (zero latency, own rng)
    Rng drop_rng_;
    double drop_prob_ = 0.0;

    std::vector<Node> nodes_;
    std::vector<bool> partitioned_;
    std::uint32_t leader_ = 0;  ///< router's view: newest elected leader

    // Client sessions: seq -> uncommitted submission, in seq (arrival) order.
    std::map<std::uint64_t, PendingSubmit> pending_;
    std::uint64_t next_seq_ = 0;
    std::unordered_map<std::uint32_t, std::uint64_t> pending_by_topic_;

    // Committed projection (the replicated state machine).
    std::vector<TopicLog> topics_;
    std::unordered_map<std::string, std::uint32_t> topic_ids_;
    std::uint64_t applied_ = 0;  ///< cluster commit/apply point (global index)

    AppendHook on_append_;
    obs::TraceSink* trace_ = nullptr;

    bool down_ = false;
    std::vector<std::uint32_t> down_revive_;  ///< nodes crashed by set_down(true)
    std::uint64_t outages_ = 0;
    std::uint64_t buffered_submits_ = 0;
    std::uint64_t leader_changes_ = 0;
    std::uint64_t elections_ = 0;
    std::uint64_t snapshot_installs_ = 0;
    std::uint64_t truncations_ = 0;
    std::uint64_t compactions_ = 0;
    std::uint64_t resubmissions_ = 0;
    std::uint64_t dup_commits_skipped_ = 0;
    std::uint64_t messages_dropped_ = 0;
    std::uint64_t crashes_ = 0;
    std::uint64_t restarts_ = 0;
};

}  // namespace fl::raft
