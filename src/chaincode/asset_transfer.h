// Asset-transfer chaincode — the canonical "move value between accounts"
// contract (the payments workload from the paper's introduction).
//
// Functions:
//   create <account> <balance>          — create an account
//   mint <account> <amount>             — create-or-top-up (reads 1, writes 1)
//   transfer <from> <to> <amount>       — move balance (reads 2, writes 2)
//   query <account>                     — read-only balance lookup
#pragma once

#include "chaincode/chaincode.h"

namespace fl::chaincode {

class AssetTransferChaincode final : public Chaincode {
public:
    [[nodiscard]] std::string name() const override { return "asset_transfer"; }

    Response invoke(TxContext& ctx, const std::string& function,
                    std::span<const std::string> args) override;
};

}  // namespace fl::chaincode
