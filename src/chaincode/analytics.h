// Analytics chaincode — periodic report generation over a key range (the
// "periodic generation of reports ... and analytics operations" of §1).
// Read-heavy: scans a prefix, writes one summary key.  Its wide range reads
// make it the most conflict-prone workload, which exercises the prioritized
// validator.
//
// Functions:
//   ingest <series> <point_id> <value>   — store a data point
//   report <series> <report_id>          — scan the series, write a summary
#pragma once

#include "chaincode/chaincode.h"

namespace fl::chaincode {

class AnalyticsChaincode final : public Chaincode {
public:
    [[nodiscard]] std::string name() const override { return "analytics"; }

    Response invoke(TxContext& ctx, const std::string& function,
                    std::span<const std::string> args) override;
};

}  // namespace fl::chaincode
