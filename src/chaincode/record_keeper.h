// Record-keeper chaincode — bulk record-keeping/logging transactions.
//
// This is the workload from the paper's motivating incident: "floods of
// record keeping transactions on blockchain was keeping some of the
// business critical transactions from going through".  Pure blind writes,
// so these transactions never conflict and never get invalidated — they
// only consume ordering/validation capacity.
//
// Functions:
//   log <record_id> <payload>     — append a record (blind write)
//   get <record_id>               — read a record
#pragma once

#include "chaincode/chaincode.h"

namespace fl::chaincode {

class RecordKeeperChaincode final : public Chaincode {
public:
    [[nodiscard]] std::string name() const override { return "record_keeper"; }

    Response invoke(TxContext& ctx, const std::string& function,
                    std::span<const std::string> args) override;
};

}  // namespace fl::chaincode
