// Chaincode registry — the set of contracts deployed on a channel, plus the
// deploy-time metadata the paper attaches to each chaincode: its static
// priority level (§3 "transactions pertaining to different chaincodes could
// statically be assigned different priorities at the time of chaincode
// deployment").
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "chaincode/chaincode.h"
#include "common/types.h"

namespace fl::chaincode {

struct DeployedChaincode {
    std::unique_ptr<Chaincode> code;
    /// Static priority assigned at deployment (0 = highest).
    PriorityLevel static_priority = 0;
};

class Registry {
public:
    /// Deploys `code` with the given static priority.  Throws on duplicate
    /// names.
    void deploy(std::unique_ptr<Chaincode> code, PriorityLevel static_priority);

    [[nodiscard]] bool has(const std::string& name) const;

    /// The deployed contract; throws std::invalid_argument if absent.
    [[nodiscard]] Chaincode& get(const std::string& name) const;

    /// Deploy-time static priority; throws std::invalid_argument if absent.
    [[nodiscard]] PriorityLevel static_priority(const std::string& name) const;

    [[nodiscard]] std::size_t size() const { return deployed_.size(); }

    /// Installs the four stock contracts with a conventional priority order:
    /// asset_transfer=0 (critical), supply_chain=1, analytics=1,
    /// record_keeper=2 (bulk).  `levels` clamps priorities to [0, levels).
    static Registry with_standard_contracts(std::uint32_t levels = 3);

private:
    std::unordered_map<std::string, DeployedChaincode> deployed_;
};

}  // namespace fl::chaincode
