// Supply-chain chaincode — shipments, status updates, custodian handoffs and
// provenance tracking (the heterogeneous enterprise workload of §1).
//
// Functions:
//   create_shipment <id> <origin> <dest>       — register a shipment
//   update_status <id> <status>                — rmw on the shipment record
//   handoff <id> <new_custodian>               — rmw changing custody
//   track <id>                                 — range read of event history
#pragma once

#include "chaincode/chaincode.h"

namespace fl::chaincode {

class SupplyChainChaincode final : public Chaincode {
public:
    [[nodiscard]] std::string name() const override { return "supply_chain"; }

    Response invoke(TxContext& ctx, const std::string& function,
                    std::span<const std::string> args) override;
};

}  // namespace fl::chaincode
