#include "chaincode/supply_chain.h"

namespace fl::chaincode {

namespace {

std::string shipment_key(const std::string& id) { return "ship/" + id + "/meta"; }
std::string event_prefix(const std::string& id) { return "ship/" + id + "/ev/"; }

/// Zero-padded sequence so events sort lexicographically in scan order.
std::string event_key(const std::string& id, std::size_t seq) {
    std::string n = std::to_string(seq);
    return event_prefix(id) + std::string(8 - std::min<std::size_t>(8, n.size()), '0') + n;
}

std::string seq_key(const std::string& id) { return "ship/" + id + "/seq"; }

}  // namespace

Response SupplyChainChaincode::invoke(TxContext& ctx, const std::string& function,
                                      std::span<const std::string> args) {
    if (function == "create_shipment") {
        if (args.size() != 3) {
            return Response::failure("create_shipment: want <id> <origin> <dest>");
        }
        if (ctx.get(shipment_key(args[0]))) {
            return Response::failure("create_shipment: already exists");
        }
        ctx.put(shipment_key(args[0]),
                "origin=" + args[1] + ";dest=" + args[2] + ";status=created;custodian=" + args[1]);
        ctx.put(seq_key(args[0]), "0");
        ctx.put(event_key(args[0], 0), "created");
        return Response::success();
    }
    if (function == "update_status" || function == "handoff") {
        if (args.size() != 2) {
            return Response::failure(function + ": want <id> <value>");
        }
        const auto meta = ctx.get(shipment_key(args[0]));
        if (!meta) return Response::failure(function + ": unknown shipment");
        const auto seq_raw = ctx.get(seq_key(args[0]));
        const std::size_t seq = seq_raw ? std::stoul(*seq_raw) + 1 : 1;

        const std::string field = function == "update_status" ? "status" : "custodian";
        ctx.put(shipment_key(args[0]), *meta + ";" + field + "=" + args[1]);
        ctx.put(seq_key(args[0]), std::to_string(seq));
        ctx.put(event_key(args[0], seq), field + "=" + args[1]);
        return Response::success();
    }
    if (function == "track") {
        if (args.size() != 1) return Response::failure("track: want <id>");
        const auto events = ctx.range(event_prefix(args[0]), event_prefix(args[0]) + "\x7f");
        std::string history;
        for (const auto& [key, value] : events) {
            if (!history.empty()) history += ",";
            history += value;
        }
        return Response::success(history);
    }
    return Response::failure("supply_chain: unknown function " + function);
}

}  // namespace fl::chaincode
