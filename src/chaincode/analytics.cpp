#include "chaincode/analytics.h"

#include <charconv>

namespace fl::chaincode {

namespace {
std::string point_prefix(const std::string& series) { return "an/" + series + "/p/"; }
}  // namespace

Response AnalyticsChaincode::invoke(TxContext& ctx, const std::string& function,
                                    std::span<const std::string> args) {
    if (function == "ingest") {
        if (args.size() != 3) {
            return Response::failure("ingest: want <series> <point_id> <value>");
        }
        ctx.put(point_prefix(args[0]) + args[1], args[2]);
        return Response::success();
    }
    if (function == "report") {
        if (args.size() != 2) return Response::failure("report: want <series> <report_id>");
        const auto points = ctx.range(point_prefix(args[0]), point_prefix(args[0]) + "\x7f");
        double sum = 0.0;
        std::size_t n = 0;
        for (const auto& [key, value] : points) {
            double v = 0.0;
            const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
            if (ec == std::errc{}) {
                sum += v;
                ++n;
            }
        }
        const double avg = n > 0 ? sum / static_cast<double>(n) : 0.0;
        ctx.put("an/" + args[0] + "/report/" + args[1],
                "n=" + std::to_string(n) + ";avg=" + std::to_string(avg));
        return Response::success();
    }
    return Response::failure("analytics: unknown function " + function);
}

}  // namespace fl::chaincode
