#include "chaincode/registry.h"

#include <algorithm>
#include <stdexcept>

#include "chaincode/analytics.h"
#include "chaincode/asset_transfer.h"
#include "chaincode/record_keeper.h"
#include "chaincode/supply_chain.h"

namespace fl::chaincode {

void Registry::deploy(std::unique_ptr<Chaincode> code, PriorityLevel static_priority) {
    if (!code) throw std::invalid_argument("Registry::deploy: null chaincode");
    const std::string name = code->name();
    const auto [it, inserted] =
        deployed_.emplace(name, DeployedChaincode{std::move(code), static_priority});
    if (!inserted) {
        throw std::invalid_argument("Registry::deploy: duplicate chaincode " + name);
    }
}

bool Registry::has(const std::string& name) const {
    return deployed_.contains(name);
}

Chaincode& Registry::get(const std::string& name) const {
    const auto it = deployed_.find(name);
    if (it == deployed_.end()) {
        throw std::invalid_argument("Registry: unknown chaincode " + name);
    }
    return *it->second.code;
}

PriorityLevel Registry::static_priority(const std::string& name) const {
    const auto it = deployed_.find(name);
    if (it == deployed_.end()) {
        throw std::invalid_argument("Registry: unknown chaincode " + name);
    }
    return it->second.static_priority;
}

Registry Registry::with_standard_contracts(std::uint32_t levels) {
    if (levels == 0) throw std::invalid_argument("Registry: levels must be >= 1");
    const auto clamp = [levels](PriorityLevel p) {
        return std::min<PriorityLevel>(p, levels - 1);
    };
    Registry r;
    r.deploy(std::make_unique<AssetTransferChaincode>(), clamp(0));
    r.deploy(std::make_unique<SupplyChainChaincode>(), clamp(1));
    r.deploy(std::make_unique<AnalyticsChaincode>(), clamp(1));
    r.deploy(std::make_unique<RecordKeeperChaincode>(), clamp(2));
    return r;
}

}  // namespace fl::chaincode
