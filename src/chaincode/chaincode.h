// Chaincode (smart contract) execution interface.
//
// Endorsers "simulate" a transaction: the chaincode runs against the peer's
// committed world state through a TxContext that records every read (with
// its MVCC version) and buffers every write — producing the read-write set
// that travels in the endorsement.  Writes are never applied here; only the
// committer applies them after validation.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ledger/rwset.h"
#include "ledger/world_state.h"

namespace fl::chaincode {

/// Result of a chaincode invocation.
struct Response {
    bool ok = true;
    std::string message;

    [[nodiscard]] static Response success(std::string msg = {}) {
        return Response{true, std::move(msg)};
    }
    [[nodiscard]] static Response failure(std::string msg) {
        return Response{false, std::move(msg)};
    }
};

/// Tracked state access handed to an executing chaincode.
///
/// Read-your-own-writes: a get() after a put() in the same transaction sees
/// the pending value and records no extra read (Fabric's tx simulator
/// behaves the same way).
class TxContext {
public:
    explicit TxContext(const ledger::WorldState& state) : state_(state) {}

    /// Committed (or locally pending) value of `key`.
    [[nodiscard]] std::optional<std::string> get(const std::string& key);

    /// Buffers a write of `key`.
    void put(const std::string& key, std::string value);

    /// Buffers a delete of `key`.
    void del(const std::string& key);

    /// Tracked range scan over [start_key, end_key) of *committed* state
    /// (pending writes are not folded in, matching Fabric).
    std::vector<std::pair<std::string, std::string>> range(
        const std::string& start_key, const std::string& end_key);

    /// The accumulated read-write set.
    [[nodiscard]] ledger::ReadWriteSet take_rwset() &&;
    [[nodiscard]] const ledger::ReadWriteSet& rwset() const { return rwset_; }

private:
    [[nodiscard]] const ledger::KvWrite* pending_write(const std::string& key) const;

    const ledger::WorldState& state_;
    ledger::ReadWriteSet rwset_;
};

/// A deployed smart contract.
class Chaincode {
public:
    virtual ~Chaincode() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Executes `function(args)` against `ctx`.
    virtual Response invoke(TxContext& ctx, const std::string& function,
                            std::span<const std::string> args) = 0;
};

}  // namespace fl::chaincode
