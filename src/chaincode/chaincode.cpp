#include "chaincode/chaincode.h"

namespace fl::chaincode {

const ledger::KvWrite* TxContext::pending_write(const std::string& key) const {
    // Last write wins within a transaction; scan from the back.
    for (auto it = rwset_.writes.rbegin(); it != rwset_.writes.rend(); ++it) {
        if (it->key == key) return &*it;
    }
    return nullptr;
}

std::optional<std::string> TxContext::get(const std::string& key) {
    if (const ledger::KvWrite* w = pending_write(key)) {
        if (w->is_delete) return std::nullopt;
        return w->value;
    }
    // Record the read version exactly once per key.
    const bool already_read =
        std::any_of(rwset_.reads.begin(), rwset_.reads.end(),
                    [&key](const ledger::KvRead& r) { return r.key == key; });
    if (!already_read) {
        rwset_.reads.push_back(ledger::KvRead{key, state_.version_of(key)});
    }
    return state_.get(key);
}

void TxContext::put(const std::string& key, std::string value) {
    rwset_.writes.push_back(ledger::KvWrite{key, std::move(value), false});
}

void TxContext::del(const std::string& key) {
    rwset_.writes.push_back(ledger::KvWrite{key, {}, true});
}

std::vector<std::pair<std::string, std::string>> TxContext::range(
    const std::string& start_key, const std::string& end_key) {
    ledger::RangeRead rr;
    rr.start_key = start_key;
    rr.end_key = end_key;
    rr.observed = state_.range(start_key, end_key);

    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(rr.observed.size());
    for (const ledger::KvRead& r : rr.observed) {
        if (auto v = state_.get(r.key)) {
            out.emplace_back(r.key, *v);
        }
    }
    rwset_.range_reads.push_back(std::move(rr));
    return out;
}

ledger::ReadWriteSet TxContext::take_rwset() && {
    return std::move(rwset_);
}

}  // namespace fl::chaincode
