#include "chaincode/asset_transfer.h"

#include <charconv>

namespace fl::chaincode {

namespace {

std::optional<long long> parse_int(const std::string& s) {
    long long v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
    return v;
}

std::string account_key(const std::string& account) {
    return "acct/" + account;
}

}  // namespace

Response AssetTransferChaincode::invoke(TxContext& ctx, const std::string& function,
                                        std::span<const std::string> args) {
    if (function == "create") {
        if (args.size() != 2) return Response::failure("create: want <account> <balance>");
        if (!parse_int(args[1])) return Response::failure("create: bad balance");
        ctx.put(account_key(args[0]), args[1]);
        return Response::success();
    }
    if (function == "mint") {
        // Create-or-top-up: the scale harness's Zipfian workload issues mints
        // against a huge account space where any given account may or may not
        // exist yet, so "create" (blind overwrite) and "transfer" (fails on
        // unknown accounts) both fit badly.
        if (args.size() != 2) return Response::failure("mint: want <account> <amount>");
        const auto amount = parse_int(args[1]);
        if (!amount || *amount < 0) return Response::failure("mint: bad amount");
        const auto raw = ctx.get(account_key(args[0]));
        long long balance = 0;
        if (raw) {
            const auto existing = parse_int(*raw);
            if (!existing) return Response::failure("mint: corrupt balance");
            balance = *existing;
        }
        ctx.put(account_key(args[0]), std::to_string(balance + *amount));
        return Response::success();
    }
    if (function == "transfer") {
        if (args.size() != 3) return Response::failure("transfer: want <from> <to> <amount>");
        const auto amount = parse_int(args[2]);
        if (!amount || *amount < 0) return Response::failure("transfer: bad amount");

        const auto from_raw = ctx.get(account_key(args[0]));
        if (!from_raw) return Response::failure("transfer: unknown account " + args[0]);
        const auto to_raw = ctx.get(account_key(args[1]));
        if (!to_raw) return Response::failure("transfer: unknown account " + args[1]);

        const auto from_bal = parse_int(*from_raw);
        const auto to_bal = parse_int(*to_raw);
        if (!from_bal || !to_bal) return Response::failure("transfer: corrupt balance");
        if (*from_bal < *amount) return Response::failure("transfer: insufficient funds");

        ctx.put(account_key(args[0]), std::to_string(*from_bal - *amount));
        ctx.put(account_key(args[1]), std::to_string(*to_bal + *amount));
        return Response::success();
    }
    if (function == "query") {
        if (args.size() != 1) return Response::failure("query: want <account>");
        const auto v = ctx.get(account_key(args[0]));
        if (!v) return Response::failure("query: unknown account " + args[0]);
        return Response::success(*v);
    }
    return Response::failure("asset_transfer: unknown function " + function);
}

}  // namespace fl::chaincode
