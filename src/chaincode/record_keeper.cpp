#include "chaincode/record_keeper.h"

namespace fl::chaincode {

Response RecordKeeperChaincode::invoke(TxContext& ctx, const std::string& function,
                                       std::span<const std::string> args) {
    if (function == "log") {
        if (args.size() != 2) return Response::failure("log: want <record_id> <payload>");
        ctx.put("rec/" + args[0], args[1]);
        return Response::success();
    }
    if (function == "get") {
        if (args.size() != 1) return Response::failure("get: want <record_id>");
        const auto v = ctx.get("rec/" + args[0]);
        if (!v) return Response::failure("get: no such record");
        return Response::success(*v);
    }
    return Response::failure("record_keeper: unknown function " + function);
}

}  // namespace fl::chaincode
