#include "ledger/block_store.h"

#include <stdexcept>

namespace fl::ledger {

void BlockStore::append(Block block) {
    if (block.header.number != chain_.size()) {
        throw std::invalid_argument("BlockStore::append: non-sequential block number");
    }
    if (!chain_.empty() && block.header.previous_hash != chain_.back().header.hash()) {
        throw std::invalid_argument("BlockStore::append: previous-hash mismatch");
    }
    if (block.header.data_hash != block.compute_data_hash()) {
        throw std::invalid_argument("BlockStore::append: data-hash mismatch");
    }
    chain_.push_back(std::move(block));
}

const Block& BlockStore::at(BlockNumber n) const {
    if (n >= chain_.size()) {
        throw std::out_of_range("BlockStore::at: block number beyond tip");
    }
    return chain_[n];
}

const Block& BlockStore::last() const {
    if (chain_.empty()) {
        throw std::out_of_range("BlockStore::last: empty chain");
    }
    return chain_.back();
}

std::optional<crypto::Digest> BlockStore::tip_hash() const {
    if (chain_.empty()) return std::nullopt;
    return chain_.back().header.hash();
}

bool BlockStore::verify_chain() const {
    for (std::size_t i = 0; i < chain_.size(); ++i) {
        const Block& b = chain_[i];
        if (b.header.number != i) return false;
        if (i > 0 && b.header.previous_hash != chain_[i - 1].header.hash()) return false;
        if (b.header.data_hash != b.compute_data_hash()) return false;
    }
    return true;
}

std::size_t BlockStore::total_transactions() const {
    std::size_t n = 0;
    for (const Block& b : chain_) n += b.size();
    return n;
}

std::uint64_t BlockStore::chain_fingerprint() const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const Block& b : chain_) {
        const crypto::Digest d = b.header.hash();
        for (std::uint8_t byte : d) {
            h ^= byte;
            h *= 0x100000001b3ull;
        }
    }
    return h;
}

}  // namespace fl::ledger
