// Single-map reference world state — the pre-sharding implementation, kept
// verbatim as the differential oracle for the striped WorldState.
//
// tests/ledger/sharded_state_test.cpp replays identical randomized write
// streams into both stores and requires get/version_of/range/
// validate_reads/key_count/fingerprint to agree at every shard count
// (including the 1-shard degenerate case).  Nothing in the production
// pipeline uses this class; it exists so the sharded store's determinism
// contract (DESIGN.md §13) stays machine-checked instead of argued.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "ledger/rwset.h"

namespace fl::ledger {

class ReferenceWorldState {
public:
    [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
    [[nodiscard]] std::optional<Version> version_of(const std::string& key) const;
    void apply(const KvWrite& write, Version version);
    void apply_all(const ReadWriteSet& rwset, Version version);
    [[nodiscard]] std::vector<KvRead> range(const std::string& start_key,
                                            const std::string& end_key) const;
    [[nodiscard]] bool validate_reads(const ReadWriteSet& rwset) const;
    [[nodiscard]] std::size_t key_count() const { return state_.size(); }
    [[nodiscard]] std::uint64_t fingerprint() const;

private:
    struct Entry {
        std::string value;
        Version version;
    };
    std::map<std::string, Entry, std::less<>> state_;
};

}  // namespace fl::ledger
