#include "ledger/transaction.h"

namespace fl::ledger {

Bytes Proposal::serialize() const {
    Bytes out;
    append_u64(out, tx_id.value());
    append_u64(out, channel.value());
    append_u64(out, client.value());
    append_u32(out, static_cast<std::uint32_t>(client_identity.size()));
    append(out, client_identity);
    append_u32(out, static_cast<std::uint32_t>(chaincode.size()));
    append(out, chaincode);
    append_u32(out, static_cast<std::uint32_t>(function.size()));
    append(out, function);
    append_u32(out, static_cast<std::uint32_t>(args.size()));
    for (const std::string& a : args) {
        append_u32(out, static_cast<std::uint32_t>(a.size()));
        append(out, a);
    }
    return out;
}

std::size_t Proposal::wire_size() const {
    std::size_t n = 64 + client_identity.size() + chaincode.size() + function.size();
    for (const std::string& a : args) n += a.size() + 4;
    return n;
}

Bytes Envelope::endorsement_payload(const Proposal& proposal,
                                    const ReadWriteSet& rwset,
                                    PriorityLevel priority) {
    Bytes out = proposal.serialize();
    append(out, BytesView(rwset.serialize()));
    append_u32(out, priority);
    return out;
}

crypto::Digest Envelope::digest() const {
    crypto::Sha256 ctx;
    const Bytes prop = proposal.serialize();
    ctx.update(BytesView(prop.data(), prop.size()));
    const Bytes rw = rwset.serialize();
    ctx.update(BytesView(rw.data(), rw.size()));
    for (const Endorsement& e : endorsements) {
        ctx.update(e.endorser_identity);
        ctx.update(BytesView(e.signature.mac.data(), e.signature.mac.size()));
    }
    return ctx.finish();
}

std::size_t Envelope::wire_size() const {
    // proposal + rwset + ~200 B per endorsement (cert ref + sig) + overhead
    return proposal.wire_size() + rwset.wire_size() + endorsements.size() * 200 + 128;
}

}  // namespace fl::ledger
