// Transaction data structures along Fabric's execute-order-validate flow:
// Proposal -> (endorsement phase) -> Endorsement* -> Envelope -> (ordering)
// -> position in a Block -> (validation) -> TxValidationCode.
//
// Following the paper (§4), the transaction data structure carries a
// priority field: each Endorsement holds the priority its endorser assigned
// (signed), and the Envelope later receives the consolidated priority
// assigned by the ordering service.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/time.h"
#include "common/types.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "ledger/rwset.h"

namespace fl::ledger {

/// Client request to execute a chaincode function.
struct Proposal {
    TxId tx_id;
    ChannelId channel;
    ClientId client;
    std::string client_identity;
    std::string chaincode;
    std::string function;
    std::vector<std::string> args;
    TimePoint created_at;

    /// Canonical bytes signed by endorsers (together with their response).
    [[nodiscard]] Bytes serialize() const;
    [[nodiscard]] std::size_t wire_size() const;
};

/// One endorser's signed response: simulated execution result + the priority
/// this endorser's Priority Calculator assigned (paper §3.1).
struct Endorsement {
    std::string endorser_identity;
    OrgId org;
    PriorityLevel priority = kUnassignedPriority;
    crypto::Digest response_hash{};  ///< hash(proposal || rwset || priority)
    crypto::Signature signature;

    friend bool operator==(const Endorsement&, const Endorsement&) = default;
};

/// The message a client broadcasts to the ordering service after collecting
/// endorsements.
struct Envelope {
    Proposal proposal;
    ReadWriteSet rwset;
    std::vector<Endorsement> endorsements;
    crypto::Signature client_signature;

    /// Consolidated priority; assigned by the OSN's Priority Consolidator
    /// (paper §3.2), kUnassignedPriority until then.
    PriorityLevel consolidated_priority = kUnassignedPriority;

    /// Simulation bookkeeping: when the client handed the envelope to the
    /// ordering service (latency measurements subtract proposal.created_at).
    TimePoint broadcast_at;

    [[nodiscard]] TxId tx_id() const { return proposal.tx_id; }

    /// Bytes covered by endorser signatures for this endorser's priority.
    [[nodiscard]] static Bytes endorsement_payload(const Proposal& proposal,
                                                   const ReadWriteSet& rwset,
                                                   PriorityLevel priority);

    /// Digest identifying this transaction in Merkle trees / the chain.
    [[nodiscard]] crypto::Digest digest() const;

    [[nodiscard]] std::size_t wire_size() const;
};

}  // namespace fl::ledger
