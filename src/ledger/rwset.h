// Read-write sets and key versions — Fabric's MVCC building blocks.
//
// Endorsers record, for every simulated chaincode execution, the version of
// each key read and the keys/values written.  Committers later re-check the
// read versions against current state; any mismatch invalidates the
// transaction (MVCC_READ_CONFLICT).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace fl::ledger {

/// Version of a committed key: the block and intra-block position of the
/// transaction that last wrote it.  A key never written has no version.
struct Version {
    BlockNumber block = 0;
    std::uint32_t tx_num = 0;

    friend auto operator<=>(const Version&, const Version&) = default;
};

/// A read of `key` that observed `version` (nullopt = key absent).
struct KvRead {
    std::string key;
    std::optional<Version> version;

    friend bool operator==(const KvRead&, const KvRead&) = default;
};

/// A write (or delete) of `key`.
struct KvWrite {
    std::string key;
    std::string value;
    bool is_delete = false;

    friend bool operator==(const KvWrite&, const KvWrite&) = default;
};

/// A range read over [start_key, end_key) used for phantom detection: the
/// reader records every matching key+version; at validation time the same
/// scan must produce the same result.
struct RangeRead {
    std::string start_key;
    std::string end_key;
    std::vector<KvRead> observed;

    friend bool operator==(const RangeRead&, const RangeRead&) = default;
};

struct ReadWriteSet {
    std::vector<KvRead> reads;
    std::vector<KvWrite> writes;
    std::vector<RangeRead> range_reads;

    friend bool operator==(const ReadWriteSet&, const ReadWriteSet&) = default;

    [[nodiscard]] bool empty() const {
        return reads.empty() && writes.empty() && range_reads.empty();
    }

    /// True if `this` and `other` conflict: other's writes intersect our
    /// reads (rw) or writes (ww).
    [[nodiscard]] bool conflicts_with(const ReadWriteSet& other) const;

    /// Canonical byte serialization (hashed into endorsement responses).
    [[nodiscard]] Bytes serialize() const;

    /// Approximate wire size in bytes (for network-delay modelling).
    [[nodiscard]] std::size_t wire_size() const;
};

}  // namespace fl::ledger
