#include "ledger/block.h"

namespace fl::ledger {

crypto::Digest BlockHeader::hash() const {
    Bytes buf;
    append_u64(buf, number);
    append(buf, BytesView(previous_hash.data(), previous_hash.size()));
    append(buf, BytesView(data_hash.data(), data_hash.size()));
    return crypto::sha256(BytesView(buf.data(), buf.size()));
}

crypto::Digest Block::compute_data_hash() const {
    std::vector<crypto::Digest> leaves;
    leaves.reserve(transactions.size());
    for (const Envelope& tx : transactions) {
        leaves.push_back(tx.digest());
    }
    return crypto::merkle_root(leaves);
}

std::size_t Block::wire_size() const {
    std::size_t n = 128;  // header + metadata
    for (const Envelope& tx : transactions) {
        n += tx.wire_size();
    }
    return n;
}

Block make_block(BlockNumber number, const crypto::Digest* previous_hash,
                 std::vector<Envelope> txs) {
    Block b;
    b.header.number = number;
    if (previous_hash != nullptr) {
        b.header.previous_hash = *previous_hash;
    }
    b.transactions = std::move(txs);
    b.header.data_hash = b.compute_data_hash();
    return b;
}

}  // namespace fl::ledger
