// Versioned key-value world state with MVCC semantics (Fabric's state DB) —
// striped over N concurrent shards.
//
// Every committed write stamps its key with the (block, tx_num) Version of
// the writing transaction.  Endorsers read through a StateReader that
// records key versions into a read set; committers validate those versions
// against the current state before applying writes.
//
// Sharding (DESIGN.md §13).  Keys are distributed over `shard_count` shards
// by a stable FNV-1a hash; each shard is an ordered map guarded by its own
// std::shared_mutex, so readers of different keys proceed concurrently and
// writers serialize per shard only.  This is what lets the wave-parallel
// validator's MVCC prechecks (peer/validator.cpp phase 2) fan out over
// millions of accounts without a global lock, per the Fabric bottleneck
// studies in PAPERS.md (arXiv 2008.05946: the state DB dominates once
// validation itself is parallel).
//
// Determinism contract: sharding is an *implementation* of the same
// key→(value, version) map — every observable (get, version_of, range,
// validate_reads, key_count, fingerprint) is a pure function of the map
// contents.  range() and fingerprint() merge the per-shard ordered maps
// back into global key order, so their results are byte-identical to the
// single-map reference implementation (ledger/reference_state.h) at any
// shard count — the randomized differential in
// tests/ledger/sharded_state_test.cpp pins this.
//
// Instrumentation: each shard counts lock acquisitions (deterministic: a
// pure function of the access sequence the simulation generates) separately
// from try-lock failures ("contended" — host-scheduling dependent, never
// serialized into deterministic JSON; see DESIGN.md §13).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "ledger/rwset.h"

namespace fl::ledger {

struct VersionedValue {
    std::string value;
    Version version;
};

class WorldState {
public:
    /// Default stripe width: a power of two comfortably above the widest
    /// validator pool we run (8), keeping expected same-shard collisions of
    /// concurrent readers low while the cross-shard merge stays cheap
    /// (DESIGN.md §13 has the selection argument and measured sweep).
    static constexpr std::size_t kDefaultShards = 16;

    /// Per-entry bookkeeping constant for approx_memory_bytes(): two
    /// std::string headers + Version + red-black tree node overhead.
    static constexpr std::uint64_t kPerEntryOverhead = 112;

    explicit WorldState(std::size_t shard_count = kDefaultShards);

    WorldState(const WorldState&) = delete;
    WorldState& operator=(const WorldState&) = delete;

    /// Committed value of `key`, if present.
    [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

    /// Committed version of `key`, nullopt if the key is absent.
    [[nodiscard]] std::optional<Version> version_of(const std::string& key) const;

    /// Applies one write at `version` (insert/overwrite or delete).
    void apply(const KvWrite& write, Version version);

    /// Applies all writes of a validated transaction.
    void apply_all(const ReadWriteSet& rwset, Version version);

    /// All present keys in [start_key, end_key) with their versions, in
    /// global key order (deterministic cross-shard merge).
    [[nodiscard]] std::vector<KvRead> range(const std::string& start_key,
                                            const std::string& end_key) const;

    /// True iff every read (and range read) in `rwset` still observes the
    /// same versions — Fabric's MVCC check.
    [[nodiscard]] bool validate_reads(const ReadWriteSet& rwset) const;

    [[nodiscard]] std::size_t key_count() const;

    /// Order-insensitive fingerprint of the full state; equal states on two
    /// peers hash equal, independent of shard count.  Used by consistency
    /// checks; streams the shards in merged key order.
    [[nodiscard]] std::uint64_t fingerprint() const;

    // -- sharding introspection (scale harness & gauges) --------------------

    /// Deterministic per-shard statistics.  keys/bytes and the lock
    /// *acquisition* counters are pure functions of the access sequence;
    /// the *contended* counters depend on host thread scheduling and must
    /// never enter thread-count-compared output.
    struct ShardStats {
        std::uint64_t keys = 0;
        std::uint64_t bytes = 0;  ///< payload bytes (keys + values)
        std::uint64_t read_locks = 0;
        std::uint64_t write_locks = 0;
        std::uint64_t read_contended = 0;   ///< host-dependent
        std::uint64_t write_contended = 0;  ///< host-dependent
    };

    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
    [[nodiscard]] ShardStats shard_stats(std::size_t shard) const;
    /// Sums of shard_stats over all shards.
    [[nodiscard]] ShardStats total_stats() const;
    /// Largest per-shard key count (stripe balance indicator).
    [[nodiscard]] std::uint64_t max_shard_keys() const;

    /// Deterministic estimate of the store's resident footprint: payload
    /// bytes plus kPerEntryOverhead per entry (documented in DESIGN.md §13;
    /// host RSS is reported separately by bench/scale_state).
    [[nodiscard]] std::uint64_t approx_memory_bytes() const;

private:
    struct Shard {
        mutable std::shared_mutex mutex;
        std::map<std::string, VersionedValue, std::less<>> entries;
        std::uint64_t bytes = 0;  ///< guarded by mutex
        // Relaxed counters: totals are deterministic (see header comment);
        // sampling only ever happens between simulator events.
        mutable std::atomic<std::uint64_t> read_locks{0};
        mutable std::atomic<std::uint64_t> write_locks{0};
        mutable std::atomic<std::uint64_t> read_contended{0};
        mutable std::atomic<std::uint64_t> write_contended{0};
    };

    [[nodiscard]] Shard& shard_for(std::string_view key);
    [[nodiscard]] const Shard& shard_for(std::string_view key) const;
    [[nodiscard]] static std::shared_lock<std::shared_mutex> read_lock(
        const Shard& shard);
    [[nodiscard]] static std::unique_lock<std::shared_mutex> write_lock(
        const Shard& shard);
    void apply_locked(Shard& shard, const KvWrite& write, Version version);

    /// Shards are immovable (mutex, atomics), hence unique_ptr storage.
    std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fl::ledger
