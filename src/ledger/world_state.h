// Versioned key-value world state with MVCC semantics (Fabric's state DB).
//
// Every committed write stamps its key with the (block, tx_num) Version of
// the writing transaction.  Endorsers read through a StateReader that
// records key versions into a read set; committers validate those versions
// against the current state before applying writes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"
#include "ledger/rwset.h"

namespace fl::ledger {

struct VersionedValue {
    std::string value;
    Version version;
};

class WorldState {
public:
    /// Committed value of `key`, if present.
    [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

    /// Committed version of `key`, nullopt if the key is absent.
    [[nodiscard]] std::optional<Version> version_of(const std::string& key) const;

    /// Applies one write at `version` (insert/overwrite or delete).
    void apply(const KvWrite& write, Version version);

    /// Applies all writes of a validated transaction.
    void apply_all(const ReadWriteSet& rwset, Version version);

    /// All present keys in [start_key, end_key) with their versions,
    /// in key order.
    [[nodiscard]] std::vector<KvRead> range(const std::string& start_key,
                                            const std::string& end_key) const;

    /// True iff every read (and range read) in `rwset` still observes the
    /// same versions — Fabric's MVCC check.
    [[nodiscard]] bool validate_reads(const ReadWriteSet& rwset) const;

    [[nodiscard]] std::size_t key_count() const { return state_.size(); }

    /// Order-insensitive fingerprint of the full state; equal states on two
    /// peers hash equal.  Used by consistency tests.
    [[nodiscard]] std::uint64_t fingerprint() const;

private:
    std::map<std::string, VersionedValue, std::less<>> state_;
};

}  // namespace fl::ledger
