#include "ledger/reference_state.h"

namespace fl::ledger {

std::optional<std::string> ReferenceWorldState::get(const std::string& key) const {
    const auto it = state_.find(key);
    if (it == state_.end()) return std::nullopt;
    return it->second.value;
}

std::optional<Version> ReferenceWorldState::version_of(const std::string& key) const {
    const auto it = state_.find(key);
    if (it == state_.end()) return std::nullopt;
    return it->second.version;
}

void ReferenceWorldState::apply(const KvWrite& write, Version version) {
    if (write.is_delete) {
        state_.erase(write.key);
        return;
    }
    state_[write.key] = Entry{write.value, version};
}

void ReferenceWorldState::apply_all(const ReadWriteSet& rwset, Version version) {
    for (const KvWrite& w : rwset.writes) {
        apply(w, version);
    }
}

std::vector<KvRead> ReferenceWorldState::range(const std::string& start_key,
                                               const std::string& end_key) const {
    std::vector<KvRead> out;
    for (auto it = state_.lower_bound(start_key);
         it != state_.end() && it->first < end_key; ++it) {
        out.push_back(KvRead{it->first, it->second.version});
    }
    return out;
}

bool ReferenceWorldState::validate_reads(const ReadWriteSet& rwset) const {
    for (const KvRead& r : rwset.reads) {
        if (version_of(r.key) != r.version) return false;
    }
    for (const RangeRead& rr : rwset.range_reads) {
        if (range(rr.start_key, rr.end_key) != rr.observed) return false;
    }
    return true;
}

std::uint64_t ReferenceWorldState::fingerprint() const {
    // FNV-1a over the sorted (key, value, version) stream; std::map iterates
    // in key order so the fingerprint is canonical.  The sharded
    // WorldState::fingerprint must reproduce this bit for bit.
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::string_view s) {
        for (char c : s) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 0x100000001b3ull;
        }
        h ^= 0xFF;
        h *= 0x100000001b3ull;
    };
    for (const auto& [key, entry] : state_) {
        mix(key);
        mix(entry.value);
        h ^= entry.version.block * 0x9E3779B97F4A7C15ull + entry.version.tx_num;
        h *= 0x100000001b3ull;
    }
    return h;
}

}  // namespace fl::ledger
