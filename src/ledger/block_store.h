// Append-only block store with hash-chain integrity checking — each peer's
// copy of the distributed ledger.
#pragma once

#include <optional>
#include <vector>

#include "ledger/block.h"

namespace fl::ledger {

class BlockStore {
public:
    /// Appends `block`.  Throws std::invalid_argument if the block number or
    /// previous-hash does not extend the current chain tip, or if the data
    /// hash does not match the transaction list.
    void append(Block block);

    [[nodiscard]] std::size_t height() const { return chain_.size(); }
    [[nodiscard]] bool empty() const { return chain_.empty(); }

    [[nodiscard]] const Block& at(BlockNumber n) const;
    [[nodiscard]] const Block& last() const;

    [[nodiscard]] std::optional<crypto::Digest> tip_hash() const;

    /// Walks the whole chain re-verifying hashes; true iff intact.
    [[nodiscard]] bool verify_chain() const;

    /// Total transactions across all blocks.
    [[nodiscard]] std::size_t total_transactions() const;

    /// Fingerprint over all header hashes — equal iff two stores hold the
    /// identical chain.
    [[nodiscard]] std::uint64_t chain_fingerprint() const;

private:
    std::vector<Block> chain_;
};

}  // namespace fl::ledger
