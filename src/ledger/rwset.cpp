#include "ledger/rwset.h"

#include <algorithm>
#include <unordered_set>

namespace fl::ledger {

bool ReadWriteSet::conflicts_with(const ReadWriteSet& other) const {
    std::unordered_set<std::string_view> other_writes;
    other_writes.reserve(other.writes.size());
    for (const KvWrite& w : other.writes) {
        other_writes.insert(w.key);
    }
    for (const KvRead& r : reads) {                     // rw conflict
        if (other_writes.contains(r.key)) return true;
    }
    for (const KvWrite& w : writes) {                   // ww conflict
        if (other_writes.contains(w.key)) return true;
    }
    for (const RangeRead& rr : range_reads) {           // phantom-ish overlap
        for (const KvWrite& w : other.writes) {
            if (w.key >= rr.start_key && w.key < rr.end_key) return true;
        }
    }
    return false;
}

Bytes ReadWriteSet::serialize() const {
    Bytes out;
    append_u32(out, static_cast<std::uint32_t>(reads.size()));
    for (const KvRead& r : reads) {
        append_u32(out, static_cast<std::uint32_t>(r.key.size()));
        append(out, r.key);
        if (r.version) {
            out.push_back(1);
            append_u64(out, r.version->block);
            append_u32(out, r.version->tx_num);
        } else {
            out.push_back(0);
        }
    }
    append_u32(out, static_cast<std::uint32_t>(writes.size()));
    for (const KvWrite& w : writes) {
        append_u32(out, static_cast<std::uint32_t>(w.key.size()));
        append(out, w.key);
        out.push_back(w.is_delete ? 1 : 0);
        append_u32(out, static_cast<std::uint32_t>(w.value.size()));
        append(out, w.value);
    }
    append_u32(out, static_cast<std::uint32_t>(range_reads.size()));
    for (const RangeRead& rr : range_reads) {
        append_u32(out, static_cast<std::uint32_t>(rr.start_key.size()));
        append(out, rr.start_key);
        append_u32(out, static_cast<std::uint32_t>(rr.end_key.size()));
        append(out, rr.end_key);
        append_u32(out, static_cast<std::uint32_t>(rr.observed.size()));
        for (const KvRead& r : rr.observed) {
            append_u32(out, static_cast<std::uint32_t>(r.key.size()));
            append(out, r.key);
            if (r.version) {
                out.push_back(1);
                append_u64(out, r.version->block);
                append_u32(out, r.version->tx_num);
            } else {
                out.push_back(0);
            }
        }
    }
    return out;
}

std::size_t ReadWriteSet::wire_size() const {
    std::size_t n = 12;
    for (const KvRead& r : reads) n += r.key.size() + 13;
    for (const KvWrite& w : writes) n += w.key.size() + w.value.size() + 9;
    for (const RangeRead& rr : range_reads) {
        n += rr.start_key.size() + rr.end_key.size() + 12;
        for (const KvRead& r : rr.observed) n += r.key.size() + 13;
    }
    return n;
}

}  // namespace fl::ledger
