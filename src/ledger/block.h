// Blocks and block metadata.
//
// A block is an ordered list of envelopes plus a header chaining it to its
// predecessor.  After validation, committers fill in per-transaction
// validation codes (Fabric stores these as a bit array in block metadata).
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "ledger/transaction.h"

namespace fl::ledger {

struct BlockHeader {
    BlockNumber number = 0;
    crypto::Digest previous_hash{};
    crypto::Digest data_hash{};  ///< Merkle root over transaction digests

    /// Hash of this header (the value chained into the next block).
    [[nodiscard]] crypto::Digest hash() const;
};

struct Block {
    BlockHeader header;
    std::vector<Envelope> transactions;

    /// Filled by committers during validation; empty until then.
    std::vector<TxValidationCode> validation_codes;

    /// Simulation bookkeeping: when the ordering service cut this block.
    TimePoint cut_at;
    /// True when Algorithm 1 terminated via TTC messages (timeout path)
    /// rather than by filling every quota (size path).
    bool cut_by_timeout = false;

    [[nodiscard]] std::size_t size() const { return transactions.size(); }

    /// Recomputes the Merkle root over the current transaction list.
    [[nodiscard]] crypto::Digest compute_data_hash() const;

    /// Approximate wire size for delivery-delay modelling.
    [[nodiscard]] std::size_t wire_size() const;
};

/// Builds a block over `txs` chained after `previous` (nullptr for genesis).
[[nodiscard]] Block make_block(BlockNumber number, const crypto::Digest* previous_hash,
                               std::vector<Envelope> txs);

}  // namespace fl::ledger
