#include "ledger/world_state.h"

#include <algorithm>
#include <queue>

namespace fl::ledger {

namespace {

/// Stable shard selector: FNV-1a 64 over the key bytes.  Must never change —
/// per-shard statistics in archived BENCH_*.json depend on it.
std::uint64_t key_hash(std::string_view key) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

}  // namespace

WorldState::WorldState(std::size_t shard_count) {
    shards_.reserve(std::max<std::size_t>(shard_count, 1));
    for (std::size_t i = 0; i < std::max<std::size_t>(shard_count, 1); ++i) {
        shards_.push_back(std::make_unique<Shard>());
    }
}

WorldState::Shard& WorldState::shard_for(std::string_view key) {
    return *shards_[key_hash(key) % shards_.size()];
}

const WorldState::Shard& WorldState::shard_for(std::string_view key) const {
    return *shards_[key_hash(key) % shards_.size()];
}

std::shared_lock<std::shared_mutex> WorldState::read_lock(const Shard& shard) {
    shard.read_locks.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
        shard.read_contended.fetch_add(1, std::memory_order_relaxed);
        lock.lock();
    }
    return lock;
}

std::unique_lock<std::shared_mutex> WorldState::write_lock(const Shard& shard) {
    shard.write_locks.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::shared_mutex> lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
        shard.write_contended.fetch_add(1, std::memory_order_relaxed);
        lock.lock();
    }
    return lock;
}

std::optional<std::string> WorldState::get(const std::string& key) const {
    const Shard& shard = shard_for(key);
    const auto lock = read_lock(shard);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) return std::nullopt;
    return it->second.value;
}

std::optional<Version> WorldState::version_of(const std::string& key) const {
    const Shard& shard = shard_for(key);
    const auto lock = read_lock(shard);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) return std::nullopt;
    return it->second.version;
}

void WorldState::apply_locked(Shard& shard, const KvWrite& write,
                              Version version) {
    auto it = shard.entries.find(write.key);
    if (write.is_delete) {
        if (it != shard.entries.end()) {
            shard.bytes -= it->first.size() + it->second.value.size();
            shard.entries.erase(it);
        }
        return;
    }
    if (it == shard.entries.end()) {
        shard.bytes += write.key.size() + write.value.size();
        shard.entries.emplace(write.key, VersionedValue{write.value, version});
    } else {
        shard.bytes += write.value.size();
        shard.bytes -= it->second.value.size();
        it->second = VersionedValue{write.value, version};
    }
}

void WorldState::apply(const KvWrite& write, Version version) {
    Shard& shard = shard_for(write.key);
    const auto lock = write_lock(shard);
    apply_locked(shard, write, version);
}

void WorldState::apply_all(const ReadWriteSet& rwset, Version version) {
    for (const KvWrite& w : rwset.writes) {
        apply(w, version);
    }
}

std::vector<KvRead> WorldState::range(const std::string& start_key,
                                      const std::string& end_key) const {
    // Each shard contributes its sorted slice; keys are unique across
    // shards, so one global sort re-establishes exactly the order a single
    // map would have produced.
    std::vector<KvRead> out;
    for (const auto& shard : shards_) {
        const auto lock = read_lock(*shard);
        for (auto it = shard->entries.lower_bound(start_key);
             it != shard->entries.end() && it->first < end_key; ++it) {
            out.push_back(KvRead{it->first, it->second.version});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const KvRead& a, const KvRead& b) { return a.key < b.key; });
    return out;
}

bool WorldState::validate_reads(const ReadWriteSet& rwset) const {
    for (const KvRead& r : rwset.reads) {
        if (version_of(r.key) != r.version) return false;
    }
    for (const RangeRead& rr : rwset.range_reads) {
        if (range(rr.start_key, rr.end_key) != rr.observed) return false;
    }
    return true;
}

std::size_t WorldState::key_count() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        const auto lock = read_lock(*shard);
        total += shard->entries.size();
    }
    return total;
}

std::uint64_t WorldState::fingerprint() const {
    // FNV-1a over the globally sorted (key, value, version) stream.  The
    // shards are individually sorted, so a k-way merge over their iterators
    // visits keys in exactly the order the single-map reference does —
    // equal contents hash equal at any shard count.
    std::vector<std::shared_lock<std::shared_mutex>> locks;
    locks.reserve(shards_.size());
    for (const auto& shard : shards_) {
        locks.push_back(read_lock(*shard));
    }

    using Iter = std::map<std::string, VersionedValue, std::less<>>::const_iterator;
    struct Cursor {
        Iter it;
        Iter end;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(shards_.size());
    for (const auto& shard : shards_) {
        if (!shard->entries.empty()) {
            cursors.push_back(Cursor{shard->entries.begin(), shard->entries.end()});
        }
    }
    const auto greater_key = [&cursors](std::size_t a, std::size_t b) {
        return cursors[a].it->first > cursors[b].it->first;
    };
    std::priority_queue<std::size_t, std::vector<std::size_t>,
                        decltype(greater_key)>
        heap(greater_key);
    for (std::size_t i = 0; i < cursors.size(); ++i) heap.push(i);

    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::string_view s) {
        for (char c : s) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 0x100000001b3ull;
        }
        h ^= 0xFF;
        h *= 0x100000001b3ull;
    };
    while (!heap.empty()) {
        const std::size_t i = heap.top();
        heap.pop();
        const auto& [key, vv] = *cursors[i].it;
        mix(key);
        mix(vv.value);
        h ^= vv.version.block * 0x9E3779B97F4A7C15ull + vv.version.tx_num;
        h *= 0x100000001b3ull;
        if (++cursors[i].it != cursors[i].end) heap.push(i);
    }
    return h;
}

WorldState::ShardStats WorldState::shard_stats(std::size_t shard) const {
    const Shard& s = *shards_[shard];
    const auto lock = read_lock(s);
    ShardStats stats;
    stats.keys = s.entries.size();
    stats.bytes = s.bytes;
    stats.read_locks = s.read_locks.load(std::memory_order_relaxed);
    stats.write_locks = s.write_locks.load(std::memory_order_relaxed);
    stats.read_contended = s.read_contended.load(std::memory_order_relaxed);
    stats.write_contended = s.write_contended.load(std::memory_order_relaxed);
    return stats;
}

WorldState::ShardStats WorldState::total_stats() const {
    ShardStats total;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const ShardStats s = shard_stats(i);
        total.keys += s.keys;
        total.bytes += s.bytes;
        total.read_locks += s.read_locks;
        total.write_locks += s.write_locks;
        total.read_contended += s.read_contended;
        total.write_contended += s.write_contended;
    }
    return total;
}

std::uint64_t WorldState::max_shard_keys() const {
    std::uint64_t max_keys = 0;
    for (const auto& shard : shards_) {
        const auto lock = read_lock(*shard);
        max_keys = std::max<std::uint64_t>(max_keys, shard->entries.size());
    }
    return max_keys;
}

std::uint64_t WorldState::approx_memory_bytes() const {
    std::uint64_t bytes = 0;
    for (const auto& shard : shards_) {
        const auto lock = read_lock(*shard);
        bytes += shard->bytes + shard->entries.size() * kPerEntryOverhead;
    }
    return bytes;
}

}  // namespace fl::ledger
