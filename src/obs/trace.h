// Deterministic tracing for the simulated network.
//
// Components emit typed TraceEvents (plain structs, no strings) into a
// TraceSink; the sink stitches them into per-transaction lifecycle spans and
// serializes either Chrome trace-event JSON (loadable in Perfetto / chrome://
// tracing) or a compact JSONL form (one event per line).
//
// Determinism contract (same as the sweep harness, DESIGN.md §9/§10): every
// timestamp is simulated time, events are stored in emission order, and the
// emission order of a run depends only on the seed — so the serialized trace
// is byte-identical for a given seed at any --threads value.
//
// Cost contract: components hold a `TraceSink*` that is null unless a trace
// was requested.  Every emit site is `if (trace_) trace_->emit({...})` over
// POD fields — no string formatting, no allocation beyond the event vector —
// so an untraced run does no observable extra work (regression target:
// bench/micro_ordering).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace fl::obs {

/// Sentinels for "event is not about a transaction / block".
inline constexpr std::uint64_t kNoTx = std::numeric_limits<std::uint64_t>::max();
inline constexpr std::uint64_t kNoBlock = std::numeric_limits<std::uint64_t>::max();

/// Event taxonomy — one entry per pipeline step the paper's evaluation
/// reasons about (see DESIGN.md §10 for the full field semantics).
enum class EventType : std::uint8_t {
    kSubmit = 0,       ///< client built a proposal           (client, tx)
    kEndorseReply,     ///< one peer finished endorsing       (peer, tx, priority=vote, value=ok)
    kBroadcast,        ///< client sent envelope to an OSN    (client, tx, value=wire bytes)
    kConsolidate,      ///< OSN consolidated the votes        (osn, tx, priority=level)
    kConsolidateFail,  ///< consolidation rejected the tx     (osn, tx)
    kEnqueue,          ///< tx appended to a priority topic   (broker, tx, priority, value=offset, value2=wire)
    kTtcEnqueue,       ///< TTC marker appended to a topic    (broker, priority, block, value=offset)
    kDequeue,          ///< generator consumed the tx          (osn, tx, priority, block)
    kQuotaTransfer,    ///< Algorithm 1 surplus hand-off      (osn, block, priority=from, value=to, value2=slots)
    kBlockCut,         ///< generator cut a block             (osn, block, value=txs, value2=by_timeout)
    kCommit,           ///< tx validated + committed          (peer, tx, priority, block)
    kAbort,            ///< tx invalidated at commit          (peer, tx, priority, block, code=reason)
    kComplete,         ///< commit notice reached the client  (client, tx, priority, block, code)
    kClientFail,       ///< failed before ordering            (client, tx, code)
    kEndorseTimeout,   ///< endorsement collection timed out  (client, tx, value=attempt)
    kRetry,            ///< client re-sent the proposals      (client, tx, value=new attempt)
    kResubmit,         ///< envelope re-broadcast to an OSN   (client, tx, value=resubmission #)
    kFault,            ///< injected fault applied            (actor by kind, value=fault::FaultKind, value2=target)
    kConflictGraph,    ///< parallel validator scheduled a block (peer, block, value=components, value2=edges)
    kValidationWave,   ///< one conflict-resolution wave ran  (peer, block, value=wave index, value2=txs in wave)
    kPriorityInversion,  ///< audit: commit order violated priority/arrival order (audit, tx, priority, block, value=arrival seq, value2=prior seq)
    kStarvation,         ///< audit: client saw no service in a window (audit, actor=client, value=pending, value2=incident #)
    kUnfairnessAlarm,    ///< audit: Jain below threshold K windows  (audit, value=jain micro-units, value2=streak)
    kRaftElection,       ///< raft: node started an election        (raft, actor=node, value=term)
    kRaftLeaderElected,  ///< raft: node won an election            (raft, actor=node, value=term, value2=leader change #)
    kRaftSnapshot,       ///< raft: follower installed a snapshot   (raft, actor=node, value=snap index, value2=snap term)
};
[[nodiscard]] const char* to_string(EventType type);

enum class ActorKind : std::uint8_t { kClient = 0, kPeer, kOsn, kBroker, kAudit, kRaft };
[[nodiscard]] const char* to_string(ActorKind kind);

/// One typed event.  POD on purpose: emit sites fill integer fields only.
struct TraceEvent {
    TimePoint at;
    EventType type = EventType::kSubmit;
    ActorKind actor_kind = ActorKind::kClient;
    std::uint64_t actor = 0;        ///< client/peer/osn id; 0 for the broker
    std::uint64_t tx = kNoTx;       ///< transaction id, kNoTx if not tx-scoped
    PriorityLevel priority = kUnassignedPriority;
    std::uint64_t block = kNoBlock;
    TxValidationCode code = TxValidationCode::kValid;
    std::uint64_t value = 0;   ///< type-specific (see the enum comments)
    std::uint64_t value2 = 0;  ///< type-specific
};

/// Append-only event store + exporters.  Single-threaded, like everything
/// inside one simulation.
class TraceSink {
public:
    void emit(const TraceEvent& event) {
        events_.push_back(event);
        if (order_source_) keys_.push_back(order_source_->current_key());
    }

    /// Journals the executing event's key alongside every emission
    /// (partitioned engine): per-group sinks record (key, emission index)
    /// so the engine can merge them into the exact serial emission order.
    void set_order_source(const sim::Simulator* sim) { order_source_ = sim; }
    [[nodiscard]] const std::vector<sim::EventKey>& keys() const { return keys_; }

    /// Tags the sink with the channel its events belong to (multi-channel
    /// runs attach one sink per channel; core/multi_channel.h).  A tagged
    /// sink emits a "ch" field on every JSONL line and a top-level
    /// "channel" key in the Chrome JSON; an untagged sink serializes
    /// byte-identically to the pre-channel format.
    void set_channel(std::uint64_t channel) {
        channel_ = channel;
        has_channel_ = true;
    }
    [[nodiscard]] bool has_channel() const { return has_channel_; }
    [[nodiscard]] std::uint64_t channel() const { return channel_; }

    [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
    [[nodiscard]] std::size_t size() const { return events_.size(); }
    [[nodiscard]] bool empty() const { return events_.empty(); }
    void clear() {
        events_.clear();
        keys_.clear();
    }

    /// Chrome trace-event JSON (Perfetto-loadable): per-tx lifecycle spans
    /// (endorse → order → validate → notify) on a "tx lifecycle" process
    /// plus every raw event as an instant on its actor's track.
    void write_chrome_json(std::ostream& os) const;

    /// Compact form: one JSON object per line, in emission order.
    void write_jsonl(std::ostream& os) const;

private:
    std::vector<TraceEvent> events_;
    std::vector<sim::EventKey> keys_;
    const sim::Simulator* order_source_ = nullptr;
    std::uint64_t channel_ = 0;
    bool has_channel_ = false;
};

}  // namespace fl::obs
