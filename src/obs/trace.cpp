#include "obs/trace.h"

#include <map>
#include <ostream>
#include <string>

#include "common/json.h"

namespace fl::obs {

const char* to_string(EventType type) {
    switch (type) {
    case EventType::kSubmit: return "submit";
    case EventType::kEndorseReply: return "endorse_reply";
    case EventType::kBroadcast: return "broadcast";
    case EventType::kConsolidate: return "consolidate";
    case EventType::kConsolidateFail: return "consolidate_fail";
    case EventType::kEnqueue: return "enqueue";
    case EventType::kTtcEnqueue: return "ttc_enqueue";
    case EventType::kDequeue: return "dequeue";
    case EventType::kQuotaTransfer: return "quota_transfer";
    case EventType::kBlockCut: return "block_cut";
    case EventType::kCommit: return "commit";
    case EventType::kAbort: return "abort";
    case EventType::kComplete: return "complete";
    case EventType::kClientFail: return "client_fail";
    case EventType::kEndorseTimeout: return "endorse_timeout";
    case EventType::kRetry: return "retry";
    case EventType::kResubmit: return "resubmit";
    case EventType::kFault: return "fault";
    case EventType::kConflictGraph: return "conflict_graph";
    case EventType::kValidationWave: return "validation_wave";
    case EventType::kPriorityInversion: return "priority_inversion";
    case EventType::kStarvation: return "starvation";
    case EventType::kUnfairnessAlarm: return "unfairness_alarm";
    case EventType::kRaftElection: return "raft_election";
    case EventType::kRaftLeaderElected: return "raft_leader_elected";
    case EventType::kRaftSnapshot: return "raft_snapshot";
    }
    return "unknown";
}

const char* to_string(ActorKind kind) {
    switch (kind) {
    case ActorKind::kClient: return "client";
    case ActorKind::kPeer: return "peer";
    case ActorKind::kOsn: return "osn";
    case ActorKind::kBroker: return "broker";
    case ActorKind::kAudit: return "audit";
    case ActorKind::kRaft: return "raft";
    }
    return "unknown";
}

namespace {

/// Chrome trace timestamps are microseconds; keep sub-µs precision as a
/// fraction (json_number is %.17g — deterministic and round-trip exact).
std::string us(std::int64_t ns) { return json_number(static_cast<double>(ns) / 1000.0); }

/// Process ids for the Chrome export: 1 = stitched tx lifecycle, then one
/// process per actor kind so instants group into readable tracks.
int pid_of(ActorKind kind) { return 2 + static_cast<int>(kind); }

/// Lifecycle milestones of one transaction, harvested from the raw events.
struct TxLife {
    std::int64_t submit = -1;
    std::int64_t broadcast = -1;
    std::int64_t commit = -1;  ///< first kCommit or kAbort at any peer
    std::int64_t complete = -1;
    std::int64_t client_fail = -1;
    std::uint64_t block = kNoBlock;
    PriorityLevel priority = kUnassignedPriority;
    TxValidationCode code = TxValidationCode::kValid;
    bool aborted = false;
};

/// Emits one "X" (complete span) line.  `first` tracks the array comma.
void write_span(std::ostream& os, bool& first, const char* name, std::uint64_t tx,
                std::int64_t begin_ns, std::int64_t end_ns, const TxLife& life) {
    if (end_ns < begin_ns) return;
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":")" << name << R"(","cat":"tx","ph":"X","pid":1,"tid":)" << tx
       << R"(,"ts":)" << us(begin_ns) << R"(,"dur":)" << us(end_ns - begin_ns)
       << R"(,"args":{"tx":)" << tx;
    if (life.priority != kUnassignedPriority) os << R"(,"prio":)" << life.priority;
    if (life.block != kNoBlock) os << R"(,"block":)" << life.block;
    if (!is_valid(life.code)) os << R"(,"code":")" << to_string(life.code) << '"';
    os << "}}";
}

void write_metadata(std::ostream& os, bool& first, int pid, const char* name) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":"process_name","ph":"M","pid":)" << pid
       << R"(,"args":{"name":")" << name << R"("}})";
}

void write_instant(std::ostream& os, bool& first, const TraceEvent& e) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":")" << to_string(e.type) << R"(","cat":"raw","ph":"i","s":"t","pid":)"
       << pid_of(e.actor_kind) << R"(,"tid":)" << e.actor << R"(,"ts":)"
       << us(e.at.as_nanos()) << R"(,"args":{)";
    bool first_arg = true;
    const auto arg = [&](const char* key) -> std::ostream& {
        if (!first_arg) os << ',';
        first_arg = false;
        os << '"' << key << "\":";
        return os;
    };
    if (e.tx != kNoTx) arg("tx") << e.tx;
    if (e.priority != kUnassignedPriority) arg("prio") << e.priority;
    if (e.block != kNoBlock) arg("block") << e.block;
    if (!is_valid(e.code)) arg("code") << '"' << to_string(e.code) << '"';
    if (e.value != 0) arg("value") << e.value;
    if (e.value2 != 0) arg("value2") << e.value2;
    os << "}}";
}

}  // namespace

void TraceSink::write_chrome_json(std::ostream& os) const {
    // Harvest lifecycle milestones.  std::map keys keep the span section in
    // ascending tx / block order — part of the byte-determinism contract.
    std::map<std::uint64_t, TxLife> txs;
    std::map<std::uint64_t, std::int64_t> block_cuts;  // earliest cut per block
    for (const TraceEvent& e : events_) {
        const std::int64_t t = e.at.as_nanos();
        if (e.type == EventType::kBlockCut && e.block != kNoBlock) {
            const auto [it, inserted] = block_cuts.try_emplace(e.block, t);
            if (!inserted && t < it->second) it->second = t;
            continue;
        }
        if (e.tx == kNoTx) continue;
        TxLife& life = txs[e.tx];
        switch (e.type) {
        case EventType::kSubmit:
            if (life.submit < 0) life.submit = t;
            break;
        case EventType::kBroadcast:
            if (life.broadcast < 0) life.broadcast = t;
            break;
        case EventType::kCommit:
        case EventType::kAbort:
            if (life.commit < 0) {
                life.commit = t;
                life.block = e.block;
                life.priority = e.priority;
                life.code = e.code;
                life.aborted = e.type == EventType::kAbort;
            }
            break;
        case EventType::kComplete:
            if (life.complete < 0) life.complete = t;
            break;
        case EventType::kClientFail:
            if (life.client_fail < 0) {
                life.client_fail = t;
                life.code = e.code;
            }
            break;
        default:
            break;
        }
    }

    os << "{\"displayTimeUnit\":\"ms\",";
    if (has_channel_) os << "\"channel\":" << channel_ << ',';
    os << "\"traceEvents\":[\n";
    bool first = true;
    write_metadata(os, first, 1, "tx lifecycle");
    write_metadata(os, first, pid_of(ActorKind::kClient), "clients");
    write_metadata(os, first, pid_of(ActorKind::kPeer), "peers");
    write_metadata(os, first, pid_of(ActorKind::kOsn), "osns");
    write_metadata(os, first, pid_of(ActorKind::kBroker), "broker");

    for (const auto& [tx, life] : txs) {
        if (life.submit >= 0 && life.client_fail >= 0) {
            write_span(os, first, "endorse (failed)", tx, life.submit,
                       life.client_fail, life);
            continue;
        }
        if (life.submit >= 0 && life.broadcast >= 0) {
            write_span(os, first, "endorse", tx, life.submit, life.broadcast, life);
        }
        const auto cut = life.block != kNoBlock ? block_cuts.find(life.block)
                                                : block_cuts.end();
        if (life.broadcast >= 0 && cut != block_cuts.end()) {
            write_span(os, first, "order", tx, life.broadcast, cut->second, life);
        }
        if (cut != block_cuts.end() && life.commit >= 0) {
            write_span(os, first, life.aborted ? "validate (abort)" : "validate",
                       tx, cut->second, life.commit, life);
        }
        if (life.commit >= 0 && life.complete >= 0) {
            write_span(os, first, "notify", tx, life.commit, life.complete, life);
        }
    }

    for (const TraceEvent& e : events_) {
        write_instant(os, first, e);
    }
    os << "\n]}\n";
}

void TraceSink::write_jsonl(std::ostream& os) const {
    for (const TraceEvent& e : events_) {
        os << "{";
        if (has_channel_) os << R"("ch":)" << channel_ << ',';
        os << R"("t_ns":)" << e.at.as_nanos() << R"(,"type":")" << to_string(e.type)
           << R"(","actor":")" << to_string(e.actor_kind) << R"(","actor_id":)"
           << e.actor;
        if (e.tx != kNoTx) os << R"(,"tx":)" << e.tx;
        if (e.priority != kUnassignedPriority) os << R"(,"prio":)" << e.priority;
        if (e.block != kNoBlock) os << R"(,"block":)" << e.block;
        if (!is_valid(e.code)) os << R"(,"code":")" << to_string(e.code) << '"';
        if (e.value != 0) os << R"(,"value":)" << e.value;
        if (e.value2 != 0) os << R"(,"value2":)" << e.value2;
        os << "}\n";
    }
}

}  // namespace fl::obs
