#include "obs/metric_registry.h"

#include <ostream>
#include <stdexcept>

#include "common/json.h"

namespace fl::obs {

void MetricRegistry::add_gauge(std::string name, GaugeFn fn) {
    if (!fn) throw std::invalid_argument("MetricRegistry: null gauge " + name);
    names_.push_back(std::move(name));
    gauges_.push_back(std::move(fn));
}

std::vector<double> MetricRegistry::sample() const {
    std::vector<double> values;
    values.reserve(gauges_.size());
    for (const GaugeFn& fn : gauges_) {
        values.push_back(fn());
    }
    return values;
}

TimeSeriesRecorder::TimeSeriesRecorder(sim::Simulator& sim, MetricRegistry registry,
                                       Duration cadence)
    : sim_(sim), registry_(std::move(registry)), cadence_(cadence) {
    if (cadence <= Duration::zero()) {
        throw std::invalid_argument("TimeSeriesRecorder: cadence must be positive");
    }
}

void TimeSeriesRecorder::start() {
    if (started_) return;
    started_ = true;
    samples_.push_back(Sample{sim_.now().as_nanos(), registry_.sample()});
    if (!sim_.empty()) {
        sim_.schedule_after(cadence_, [this] { tick(); });
    }
}

void TimeSeriesRecorder::tick() {
    samples_.push_back(Sample{sim_.now().as_nanos(), registry_.sample()});
    // Re-arm only while real work remains; otherwise the recorder would keep
    // the drained simulation alive forever.
    if (!sim_.empty()) {
        sim_.schedule_after(cadence_, [this] { tick(); });
    }
}

void TimeSeriesRecorder::write_jsonl(std::ostream& os) const {
    const std::vector<std::string>& names = registry_.names();
    for (const Sample& s : samples_) {
        os << R"({"t_s":)" << json_number(static_cast<double>(s.t_ns) / 1e9);
        for (std::size_t i = 0; i < names.size() && i < s.values.size(); ++i) {
            os << ",\"" << names[i] << "\":" << json_number(s.values[i]);
        }
        os << "}\n";
    }
}

}  // namespace fl::obs
