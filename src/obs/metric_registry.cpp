#include "obs/metric_registry.h"

#include <ostream>
#include <stdexcept>

#include "common/json.h"

namespace fl::obs {

void MetricRegistry::add_gauge(std::string name, GaugeFn fn) {
    if (!fn) throw std::invalid_argument("MetricRegistry: null gauge " + name);
    for (const std::string& existing : names_) {
        if (existing == name) {
            throw std::invalid_argument("MetricRegistry: duplicate gauge " + name);
        }
    }
    names_.push_back(std::move(name));
    gauges_.push_back(std::move(fn));
}

std::vector<double> MetricRegistry::sample() const {
    std::vector<double> values;
    values.reserve(gauges_.size());
    for (const GaugeFn& fn : gauges_) {
        values.push_back(fn());
    }
    return values;
}

TimeSeriesRecorder::TimeSeriesRecorder(sim::Simulator& sim, MetricRegistry registry,
                                       Duration cadence)
    : sim_(sim), registry_(std::move(registry)), cadence_(cadence) {
    if (cadence <= Duration::zero()) {
        throw std::invalid_argument("TimeSeriesRecorder: cadence must be positive");
    }
}

void TimeSeriesRecorder::start() {
    if (started_) return;
    started_ = true;
    samples_.push_back(Sample{sim_.now().as_nanos(), registry_.sample()});
    if (!sim_.empty()) {
        sim_.schedule_after(cadence_, [this] { tick(); });
    }
}

void TimeSeriesRecorder::tick() {
    samples_.push_back(Sample{sim_.now().as_nanos(), registry_.sample()});
    // Re-arm only while real work remains; otherwise the recorder would keep
    // the drained simulation alive forever.
    if (!sim_.empty()) {
        sim_.schedule_after(cadence_, [this] { tick(); });
    }
}

void TimeSeriesRecorder::write_jsonl(std::ostream& os) const {
    const std::vector<std::string>& names = registry_.names();
    for (const Sample& s : samples_) {
        os << R"({"t_s":)" << json_number(static_cast<double>(s.t_ns) / 1e9);
        for (std::size_t i = 0; i < names.size() && i < s.values.size(); ++i) {
            os << ",\"" << names[i] << "\":" << json_number(s.values[i]);
        }
        os << "}\n";
    }
    // Footer: per-series summary stats so a consumer need not re-derive the
    // envelope of each gauge from the samples.  One line, keyed "summary" —
    // flat sample lines never carry that key, so the framing stays parseable
    // line-by-line.
    os << R"({"summary":{)";
    for (std::size_t i = 0; i < names.size(); ++i) {
        double lo = 0.0;
        double hi = 0.0;
        double sum = 0.0;
        double last = 0.0;
        std::size_t n = 0;
        for (const Sample& s : samples_) {
            if (i >= s.values.size()) continue;
            const double v = s.values[i];
            if (n == 0 || v < lo) lo = v;
            if (n == 0 || v > hi) hi = v;
            sum += v;
            last = v;
            ++n;
        }
        if (i != 0) os << ",";
        os << "\"" << names[i] << R"(":{"min":)" << json_number(lo)
           << ",\"max\":" << json_number(hi) << ",\"mean\":"
           << json_number(n == 0 ? 0.0 : sum / static_cast<double>(n))
           << ",\"last\":" << json_number(last) << "}";
    }
    os << "}}\n";
}

}  // namespace fl::obs
