// Simulated-time time-series probes.
//
// A MetricRegistry is an insertion-ordered list of named gauges — closures
// that read a counter or queue depth off a live component.  A
// TimeSeriesRecorder samples every gauge on a fixed simulated-time cadence
// and serializes the samples as JSONL (one flat object per line).
//
// Determinism: sampling is read-only, so it cannot change any simulation
// result; the recorder's tick events shift later events' sequence numbers
// uniformly, which preserves their relative order (sim/simulator.h breaks
// timestamp ties by scheduling order).  Sample times are multiples of the
// cadence in simulated time, so the serialized series is byte-identical for
// a given seed at any --threads value.
//
// Termination: the recorder re-arms itself only while other events are still
// pending, so it can never keep a drained simulation alive — the final tick
// fires once after the workload finishes and stops.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace fl::obs {

class MetricRegistry {
public:
    using GaugeFn = std::function<double()>;

    /// Registers a gauge; sampled in registration order.  `name` must be a
    /// JSON-safe identifier (letters, digits, underscores) and unique —
    /// re-registering a name throws std::invalid_argument (a duplicate key
    /// would silently shadow the first series in every JSONL consumer).
    void add_gauge(std::string name, GaugeFn fn);

    [[nodiscard]] const std::vector<std::string>& names() const { return names_; }
    [[nodiscard]] std::size_t size() const { return gauges_.size(); }

    /// Reads every gauge, in registration order.
    [[nodiscard]] std::vector<double> sample() const;

private:
    std::vector<std::string> names_;
    std::vector<GaugeFn> gauges_;
};

class TimeSeriesRecorder {
public:
    struct Sample {
        std::int64_t t_ns = 0;
        std::vector<double> values;  ///< registry order
    };

    /// Takes ownership of the registry; the gauges' captured component
    /// pointers must outlive every tick (i.e. the network they read).
    TimeSeriesRecorder(sim::Simulator& sim, MetricRegistry registry,
                       Duration cadence);

    /// Samples immediately and schedules ticks every `cadence` of simulated
    /// time.  Call after the workload is scheduled: ticks re-arm only while
    /// the simulator has other pending events.
    void start();

    [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
    [[nodiscard]] const MetricRegistry& registry() const { return registry_; }

    /// One flat JSON object per sample: {"t_s": ..., "<gauge>": ..., ...},
    /// then one footer line {"summary":{"<gauge>":{min,max,mean,last},...}}
    /// with per-series stats over the captured samples.
    void write_jsonl(std::ostream& os) const;

private:
    void tick();

    sim::Simulator& sim_;
    MetricRegistry registry_;
    Duration cadence_;
    std::vector<Sample> samples_;
    bool started_ = false;
};

}  // namespace fl::obs
