#include "obs/audit/audit.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/json.h"
#include "obs/audit/fairness.h"

namespace fl::obs::audit {

const char* to_string(ResourceKind kind) {
    switch (kind) {
    case ResourceKind::kEndorseCpu: return "endorse_cpu";
    case ResourceKind::kOrderingBandwidth: return "ordering_bandwidth";
    case ResourceKind::kValidationCpu: return "validation_cpu";
    case ResourceKind::kStateIo: return "state_io";
    }
    return "unknown";
}

AuditAccountant::AuditAccountant(AuditConfig config) : cfg_(std::move(config)) {
    if (cfg_.window <= Duration::zero()) {
        throw std::invalid_argument("AuditAccountant: window must be positive");
    }
    if (cfg_.starvation_window <= Duration::zero()) {
        throw std::invalid_argument("AuditAccountant: starvation window must be positive");
    }
    if (cfg_.alarm_consecutive == 0) {
        throw std::invalid_argument("AuditAccountant: alarm_consecutive must be >= 1");
    }
    window_end_ = TimePoint::origin() + cfg_.window;

    shadow_flow_of_level_.assign(cfg_.level_weights.size(), -1);
    std::vector<double> shadow_weights;
    for (std::size_t i = 0; i < cfg_.level_weights.size(); ++i) {
        if (cfg_.level_weights[i] > 0.0) {
            shadow_flow_of_level_[i] = static_cast<int>(shadow_weights.size());
            shadow_weights.push_back(cfg_.level_weights[i]);
        }
    }
    if (!shadow_weights.empty()) {
        shadow_ = std::make_unique<wfq::WfqScheduler<std::uint64_t>>(shadow_weights);
    }
    if (!cfg_.level_weights.empty()) {
        ensure_level(static_cast<PriorityLevel>(cfg_.level_weights.size() - 1));
    }
}

void AuditAccountant::ensure_level(PriorityLevel level) {
    const std::size_t need = static_cast<std::size_t>(level) + 1;
    if (next_arrival_seq_.size() >= need) return;
    next_arrival_seq_.resize(need, 0);
    last_committed_seq_.resize(need, 0);
    ordered_per_level_.resize(need, 0);
    max_service_lag_.resize(need, 0.0);
}

double AuditAccountant::entitlement_of(std::uint64_t client) const {
    if (cfg_.entitlements.empty()) return 1.0;
    const auto it = cfg_.entitlements.find(client);
    return it == cfg_.entitlements.end() ? 0.0 : it->second;
}

void AuditAccountant::advance_to(TimePoint at) {
    while (at >= window_end_) {
        close_window(window_end_);
        window_end_ += cfg_.window;
    }
}

void AuditAccountant::charge(ResourceKind resource, std::uint64_t client,
                             const std::string& chaincode, double units, TimePoint at) {
    if (finalized_ || units <= 0.0) return;
    advance_to(at);
    window_activity_ = true;
    ResourceState& r = resources_[static_cast<std::size_t>(resource)];
    r.total += units;
    r.by_client[client] += units;
    r.by_chaincode[chaincode] += units;
    r.window_by_client[client] += units;
}

void AuditAccountant::on_submit(std::uint64_t client, TimePoint at) {
    if (finalized_) return;
    advance_to(at);
    window_activity_ = true;
    ClientState& c = clients_[client];
    if (c.submits == 0 && c.terminals == 0) c.last_service = at;
    ++c.submits;
    ++c.window_submits;
}

void AuditAccountant::on_client_terminal(std::uint64_t client, TimePoint at) {
    if (finalized_) return;
    advance_to(at);
    window_activity_ = true;
    ClientState& c = clients_[client];
    ++c.terminals;
    ++c.window_terminals;
    c.last_service = at;
    c.starved = false;
}

void AuditAccountant::on_enqueue(PriorityLevel level, std::uint64_t tx, TimePoint at) {
    if (finalized_) return;
    advance_to(at);
    window_activity_ = true;
    level = normalize_level(level);
    ensure_level(level);
    // A resubmitted envelope re-appends under the same tx id; ordering
    // bookkeeping keeps the first arrival (FIFO position is set by the
    // original append — the broker never un-appends).
    if (arrivals_.count(tx) != 0) return;
    const std::uint64_t seq = ++next_arrival_seq_[level];
    arrivals_.emplace(tx, ArrivalInfo{level, seq});
    if (level < shadow_flow_of_level_.size()) {
        const int flow = shadow_flow_of_level_[level];
        if (flow >= 0) shadow_->enqueue(static_cast<std::size_t>(flow), 1.0, tx);
    }
}

void AuditAccountant::on_dequeue(PriorityLevel level, std::uint64_t tx, TimePoint at) {
    if (finalized_) return;
    advance_to(at);
    window_activity_ = true;
    level = normalize_level(level);
    ensure_level(level);
    // Crash replay re-consumes the log; count each tx once.
    if (!dequeued_.insert(tx).second) return;
    ++ordered_per_level_[level];
    if (level < shadow_flow_of_level_.size() && shadow_flow_of_level_[level] >= 0) {
        // Replay the real generator's decision on the shadow SFQ clock, then
        // sample how far every tracked flow's head now trails virtual time —
        // that gap is service the real scheduler owes the flow vs ideal SFQ.
        shadow_->dequeue_flow(static_cast<std::size_t>(shadow_flow_of_level_[level]));
        for (std::size_t l = 0; l < shadow_flow_of_level_.size(); ++l) {
            const int flow = shadow_flow_of_level_[l];
            if (flow < 0) continue;
            max_service_lag_[l] = std::max(
                max_service_lag_[l], shadow_->service_lag(static_cast<std::size_t>(flow)));
        }
    }
}

void AuditAccountant::on_commit_order(std::uint64_t block, std::uint64_t tx,
                                      PriorityLevel level, TimePoint at) {
    if (finalized_) return;
    advance_to(at);
    window_activity_ = true;
    level = normalize_level(level);
    ensure_level(level);
    // Every peer reports the same blocks in the same order; the first
    // sighting of a tx id is canonical.  Dedup must be by tx, not block:
    // a second peer's (re)delivery of block N is call-indistinguishable
    // from the first peer's commit loop.
    if (!committed_.insert(tx).second) return;

    // (a) Intra-level FIFO: within one priority level, commit order must
    // follow broker arrival order (Algorithm 2 reads each queue in order).
    const auto it = arrivals_.find(tx);
    if (it != arrivals_.end()) {
        const std::uint64_t seq = it->second.seq;
        const PriorityLevel arrival_level = it->second.level;
        ensure_level(arrival_level);
        const std::uint64_t last = last_committed_seq_[arrival_level];
        if (last != 0 && seq < last) {
            ++fifo_violations_;
            if (trace_) {
                TraceEvent ev;
                ev.at = at;
                ev.type = EventType::kPriorityInversion;
                ev.actor_kind = ActorKind::kAudit;
                ev.tx = tx;
                ev.priority = arrival_level;
                ev.block = block;
                ev.value = seq;
                ev.value2 = last;
                trace_->emit(ev);
            }
        }
        last_committed_seq_[arrival_level] = std::max(last, seq);
    }

    // (b) Within a block, levels must be non-decreasing (the canonical block
    // layout serves whole quotas highest-priority first).
    if (block != commit_block_) {
        commit_block_ = block;
        commit_block_level_ = level;
    } else if (level < commit_block_level_) {
        ++block_order_violations_;
        if (trace_) {
            TraceEvent ev;
            ev.at = at;
            ev.type = EventType::kPriorityInversion;
            ev.actor_kind = ActorKind::kAudit;
            ev.tx = tx;
            ev.priority = level;
            ev.block = block;
            ev.value = level;
            ev.value2 = commit_block_level_;
            trace_->emit(ev);
        }
    } else {
        commit_block_level_ = level;
    }
}

void AuditAccountant::close_window(TimePoint at) {
    ++windows_closed_;

    // Per-resource window Jain (clients that used any of the resource this
    // window; a window with < 2 active clients has no fairness question).
    for (ResourceState& r : resources_) {
        if (r.window_by_client.size() >= 2) {
            std::vector<double> xs;
            xs.reserve(r.window_by_client.size());
            for (const auto& [client, used] : r.window_by_client) xs.push_back(used);
            r.jain_window_min = std::min(r.jain_window_min, jain_index(xs));
            ++r.windows_evaluated;
        }
        r.window_by_client.clear();
    }

    // Unfairness alarm: Jain over entitlement-normalized service rates of
    // *backlogged* clients.  Fewer than two backlogged clients means there
    // is no victim pair to compare — that window resets the streak (a
    // sporadic false-backlog window must not accumulate toward a trip).
    std::vector<double> service;
    for (const auto& [client, c] : clients_) {
        const double arrivals = static_cast<double>(c.window_submits);
        const double served = static_cast<double>(c.window_terminals);
        const double slack =
            std::max(cfg_.backlog_slack_min, cfg_.backlog_slack_frac * arrivals);
        const double entitled = entitlement_of(client);
        if (entitled <= 0.0) continue;
        if (arrivals > served + slack) service.push_back(served / entitled);
    }
    if (service.size() >= 2) {
        ++alarm_windows_evaluated_;
        const double j = jain_index(service);
        alarm_jain_min_ = std::min(alarm_jain_min_, j);
        if (j < cfg_.jain_alarm_threshold) {
            ++alarm_windows_breached_;
            ++alarm_streak_;
            if (alarm_streak_ == cfg_.alarm_consecutive) {
                ++alarm_trips_;
                if (trace_) {
                    TraceEvent ev;
                    ev.at = at;
                    ev.type = EventType::kUnfairnessAlarm;
                    ev.actor_kind = ActorKind::kAudit;
                    ev.value = static_cast<std::uint64_t>(j * 1e6);
                    ev.value2 = alarm_streak_;
                    trace_->emit(ev);
                }
            }
        } else {
            alarm_streak_ = 0;
        }
    } else {
        alarm_streak_ = 0;
    }

    // Starvation watchdog: pending work and no terminal event within the
    // starvation window.  One incident per starvation episode — a terminal
    // event ends the episode and re-arms the client.
    for (auto& [client, c] : clients_) {
        const std::uint64_t pending = c.submits - std::min(c.submits, c.terminals);
        if (pending == 0 || c.starved) continue;
        if (at - c.last_service >= cfg_.starvation_window) {
            c.starved = true;
            ++c.incidents;
            ++starvation_incidents_;
            if (trace_) {
                TraceEvent ev;
                ev.at = at;
                ev.type = EventType::kStarvation;
                ev.actor_kind = ActorKind::kAudit;
                ev.actor = client;
                ev.value = pending;
                ev.value2 = c.incidents;
                trace_->emit(ev);
            }
        }
    }

    // Shadow lag can also grow while a level goes unserved; sample at the
    // window edge too, not only on dequeues.
    for (std::size_t l = 0; l < shadow_flow_of_level_.size(); ++l) {
        const int flow = shadow_flow_of_level_[l];
        if (flow < 0) continue;
        max_service_lag_[l] = std::max(
            max_service_lag_[l], shadow_->service_lag(static_cast<std::size_t>(flow)));
    }

    for (auto& [client, c] : clients_) {
        c.window_submits = 0;
        c.window_terminals = 0;
    }
    window_activity_ = false;
}

void AuditAccountant::finalize(TimePoint now) {
    if (finalized_) return;
    advance_to(now);
    if (window_activity_) close_window(now);
    finalized_ = true;

    report_.window_s = cfg_.window.as_seconds();
    report_.starvation_window_s = cfg_.starvation_window.as_seconds();
    report_.jain_threshold = cfg_.jain_alarm_threshold;
    report_.alarm_k = cfg_.alarm_consecutive;
    report_.windows_closed = windows_closed_;

    for (std::size_t i = 0; i < kResourceCount; ++i) {
        const ResourceState& r = resources_[i];
        ResourceReport& out = report_.resources[i];
        out.total = r.total;
        out.by_client = r.by_client;
        out.by_chaincode = r.by_chaincode;
        out.jain_window_min = r.jain_window_min;
        out.windows_evaluated = r.windows_evaluated;
        std::vector<double> xs;
        xs.reserve(r.by_client.size());
        for (const auto& [client, used] : r.by_client) xs.push_back(used);
        out.jain_overall = jain_index(xs);
    }

    double weight_sum = 0.0;
    for (const double w : cfg_.level_weights) {
        if (w > 0.0) weight_sum += w;
    }
    std::uint64_t total_ordered = 0;
    for (const std::uint64_t n : ordered_per_level_) total_ordered += n;
    report_.levels.resize(ordered_per_level_.size());
    for (std::size_t l = 0; l < ordered_per_level_.size(); ++l) {
        LevelReport& out = report_.levels[l];
        out.ordered = ordered_per_level_[l];
        out.share = total_ordered == 0
                        ? 0.0
                        : static_cast<double>(out.ordered) / static_cast<double>(total_ordered);
        out.entitled = (l < cfg_.level_weights.size() && cfg_.level_weights[l] > 0.0 &&
                        weight_sum > 0.0)
                           ? cfg_.level_weights[l] / weight_sum
                           : 0.0;
        out.deviation = out.share - out.entitled;
        out.max_service_lag = max_service_lag_[l];
    }
    report_.shadow_virtual_time = shadow_ ? shadow_->virtual_time() : 0.0;

    report_.fifo_violations = fifo_violations_;
    report_.block_order_violations = block_order_violations_;
    report_.priority_inversions = fifo_violations_ + block_order_violations_;

    report_.starvation_incidents = starvation_incidents_;
    for (const auto& [client, c] : clients_) {
        if (c.incidents > 0) report_.starved_clients.emplace(client, c.incidents);
    }

    report_.alarm_trips = alarm_trips_;
    report_.alarm_windows_breached = alarm_windows_breached_;
    report_.alarm_windows_evaluated = alarm_windows_evaluated_;
    report_.alarm_jain_min = alarm_jain_min_;
}

void write_audit_json(JsonWriter& json, const AuditReport& report) {
    json.begin_object();
    json.field("window_s", report.window_s);
    json.field("starvation_window_s", report.starvation_window_s);
    json.field("jain_threshold", report.jain_threshold);
    json.field("alarm_k", report.alarm_k);
    json.field("windows_closed", report.windows_closed);

    json.key("resources");
    json.begin_object();
    for (std::size_t i = 0; i < kResourceCount; ++i) {
        const ResourceReport& r = report.resources[i];
        json.key(to_string(static_cast<ResourceKind>(i)));
        json.begin_object();
        json.field("total", r.total);
        json.field("jain_overall", r.jain_overall);
        json.field("jain_window_min", r.jain_window_min);
        json.field("windows_evaluated", r.windows_evaluated);
        json.key("by_client");
        json.begin_object();
        for (const auto& [client, used] : r.by_client) {
            json.field(std::to_string(client), used);
        }
        json.end_object();
        json.key("by_chaincode");
        json.begin_object();
        for (const auto& [chaincode, used] : r.by_chaincode) {
            json.field(chaincode, used);
        }
        json.end_object();
        json.end_object();
    }
    json.end_object();

    json.key("levels");
    json.begin_array();
    for (const LevelReport& l : report.levels) {
        json.begin_object();
        json.field("ordered", l.ordered);
        json.field("share", l.share);
        json.field("entitled", l.entitled);
        json.field("deviation", l.deviation);
        json.field("max_service_lag", l.max_service_lag);
        json.end_object();
    }
    json.end_array();
    json.field("shadow_virtual_time", report.shadow_virtual_time);

    json.field("fifo_violations", report.fifo_violations);
    json.field("block_order_violations", report.block_order_violations);
    json.field("priority_inversions", report.priority_inversions);

    json.field("starvation_incidents", report.starvation_incidents);
    json.key("starved_clients");
    json.begin_object();
    for (const auto& [client, incidents] : report.starved_clients) {
        json.field(std::to_string(client), incidents);
    }
    json.end_object();

    json.field("alarm_trips", report.alarm_trips);
    json.field("alarm_windows_breached", report.alarm_windows_breached);
    json.field("alarm_windows_evaluated", report.alarm_windows_evaluated);
    json.field("alarm_jain_min", report.alarm_jain_min);
    json.end_object();
}

}  // namespace fl::obs::audit
