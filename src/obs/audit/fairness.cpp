#include "obs/audit/fairness.h"

#include <stdexcept>

namespace fl::obs::audit {

double jain_index(const std::vector<double>& shares) {
    if (shares.size() < 2) return 1.0;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double x : shares) {
        if (x < 0.0) x = 0.0;
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq == 0.0) return 1.0;
    return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

std::vector<double> normalize_by_entitlement(const std::vector<double>& shares,
                                             const std::vector<double>& entitlements) {
    if (shares.size() != entitlements.size()) {
        throw std::invalid_argument("normalize_by_entitlement: size mismatch");
    }
    std::vector<double> out(shares.size(), 0.0);
    for (std::size_t i = 0; i < shares.size(); ++i) {
        if (entitlements[i] > 0.0) out[i] = shares[i] / entitlements[i];
    }
    return out;
}

}  // namespace fl::obs::audit
