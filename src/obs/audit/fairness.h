// Fairness math for the audit subsystem — pure functions, no state.
//
// The central quantity is Jain's fairness index (Jain, Chiu, Hawe 1984):
//
//   J(x_1..x_n) = (sum x_i)^2 / (n * sum x_i^2)
//
// J is scale-free, ranges over [1/n, 1], hits 1.0 exactly when every x_i is
// equal, and degrades smoothly as shares diverge — which is why "Fair and
// Efficient Gossip in Hyperledger Fabric" (PAPERS.md) uses it to quantify
// per-peer dissemination fairness instead of eyeballing curves.  We apply
// the same index to per-client resource shares and per-client service rates
// (entitlement-normalized, so unequal quotas still score 1.0 when honored).
#pragma once

#include <vector>

namespace fl::obs::audit {

/// Jain's index over the given shares.  Conventions for the degenerate
/// cases, chosen so detectors fail safe (report "fair" when there is
/// nothing to compare):
///   * empty or single-element input -> 1.0 (fairness of one party is moot)
///   * all-zero input -> 1.0 (nobody served: equally bad is still equal)
/// Negative shares are invalid input and are clamped to zero.
[[nodiscard]] double jain_index(const std::vector<double>& shares);

/// shares[i] / entitlements[i] with guards: a non-positive entitlement maps
/// the share to 0 (the flow is not entitled to anything, so any service is
/// "extra" and must not dominate the index).  Sizes must match.
[[nodiscard]] std::vector<double> normalize_by_entitlement(
    const std::vector<double>& shares, const std::vector<double>& entitlements);

}  // namespace fl::obs::audit
