// Resource-accounting and fairness-audit subsystem.
//
// The paper's thesis is that its weighted-fair multi-queue block formation
// (Algorithm 1/2) preserves resource fairness and priority order under load.
// bench/fig6_fairness demonstrates this with latency curves; this module
// *measures* it: simulated cost units are attributed to each client and
// chaincode at every pipeline stage, rolling fairness indices and violation
// detectors run online over audit windows, and the result is a deterministic
// `audit` block in write_metrics_json plus typed trace events — the shape of
// per-stage attribution argued for by "Performance Characterization and
// Bottleneck Analysis of Hyperledger Fabric" (PAPERS.md).
//
// Determinism contract (DESIGN.md §14): the accountant is passive.  It
// schedules no simulator events, draws no randomness, and holds no Simulator
// reference — every hook carries an explicit `at` timestamp and windows close
// lazily when an observation (or finalize) crosses a window boundary.  Its
// entire state is therefore a pure function of the event stream, which is a
// pure function of (seed, config), so the audit JSON inherits the
// byte-identical-at-any---threads guarantee for free.
//
// Cost contract: like TraceSink, components hold an `AuditAccountant*` that
// is null unless --audit was requested; every hook site is
// `if (audit_) audit_->...` over integer/double fields.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "obs/trace.h"
#include "wfq/wfq.h"

namespace fl {
class JsonWriter;
}

namespace fl::obs::audit {

/// The four simulated resources the pipeline spends on a transaction's
/// behalf.  Indices are stable (serialized to JSON in this order).
enum class ResourceKind : std::uint8_t {
    kEndorseCpu = 0,     ///< endorsement execute+sign seconds, all peers
    kOrderingBandwidth,  ///< wire bytes appended to the ordering broker
    kValidationCpu,      ///< per-tx validation seconds, all peers
    kStateIo,            ///< world-state writes applied (valid txs only)
};
inline constexpr std::size_t kResourceCount = 4;
[[nodiscard]] const char* to_string(ResourceKind kind);

struct AuditConfig {
    /// Rolling audit window; fairness indices and the detectors are
    /// evaluated once per window close.
    Duration window = Duration::seconds(1);
    /// A client with pending work and no terminal event for this long is
    /// starved.
    Duration starvation_window = Duration::seconds(3);
    /// Unfairness alarm: service-Jain below this ...
    double jain_alarm_threshold = 0.85;
    /// ... for this many consecutive evaluated windows trips the alarm.
    std::uint32_t alarm_consecutive = 3;
    /// A client is "backlogged" in a window iff
    ///   arrivals > served + max(backlog_slack_min, backlog_slack_frac * arrivals)
    /// — the slack absorbs pipeline latency (work submitted near the window
    /// edge completes next window) so saturated-but-served clients don't
    /// read as victims.
    double backlog_slack_frac = 0.25;
    double backlog_slack_min = 2.0;
    /// Per-client service entitlements (client id -> weight).  Empty means
    /// equal entitlement across every client observed submitting.
    std::map<std::uint64_t, double> entitlements;
    /// Per-level weights for the shadow SFQ scheduler (the ideal the block
    /// generator approximates).  Levels with weight <= 0 (best-effort under
    /// a "1:1:0" policy) are excluded from the shadow: ideal SFQ has no
    /// notion of a zero-weight flow, so their service lag reports 0.
    std::vector<double> level_weights;
};

/// Per-resource slice of the final report.
struct ResourceReport {
    double total = 0.0;
    /// Jain over cumulative per-client usage (clients that used any).
    double jain_overall = 1.0;
    /// Minimum per-window Jain across windows with >= 2 active clients.
    double jain_window_min = 1.0;
    std::uint64_t windows_evaluated = 0;
    std::map<std::uint64_t, double> by_client;
    std::map<std::string, double> by_chaincode;
};

/// Per-priority-level slice: observed ordering share vs quota entitlement.
struct LevelReport {
    std::uint64_t ordered = 0;  ///< txs the block generator consumed
    double share = 0.0;         ///< ordered / total ordered
    double entitled = 0.0;      ///< normalized level weight
    double deviation = 0.0;     ///< share - entitled
    double max_service_lag = 0.0;  ///< worst shadow-SFQ lag, work units (txs)
};

struct AuditReport {
    double window_s = 0.0;
    double starvation_window_s = 0.0;
    double jain_threshold = 0.0;
    std::uint64_t alarm_k = 0;
    std::uint64_t windows_closed = 0;

    std::array<ResourceReport, kResourceCount> resources;
    std::vector<LevelReport> levels;
    double shadow_virtual_time = 0.0;

    std::uint64_t fifo_violations = 0;
    std::uint64_t block_order_violations = 0;
    std::uint64_t priority_inversions = 0;  ///< fifo + block order

    std::uint64_t starvation_incidents = 0;
    std::map<std::uint64_t, std::uint64_t> starved_clients;  ///< client -> incidents

    std::uint64_t alarm_trips = 0;
    std::uint64_t alarm_windows_breached = 0;
    std::uint64_t alarm_windows_evaluated = 0;
    double alarm_jain_min = 1.0;
};

/// Serializes `report` as one JSON object (keys in declaration order, all
/// containers ordered) — deterministic bytes for the sweep contract.
void write_audit_json(JsonWriter& json, const AuditReport& report);

/// The accountant.  One instance per experiment run, single-threaded like
/// everything inside one simulation.  Wire with FabricNetwork::set_audit();
/// call finalize(sim.now()) after the run drains, then read report().
class AuditAccountant {
public:
    explicit AuditAccountant(AuditConfig config);

    /// Optional: detectors additionally emit kPriorityInversion /
    /// kStarvation / kUnfairnessAlarm events into this sink.
    void set_trace(TraceSink* sink) { trace_ = sink; }

    // -- resource meters ----------------------------------------------------
    void charge(ResourceKind resource, std::uint64_t client,
                const std::string& chaincode, double units, TimePoint at);

    // -- pipeline observations ----------------------------------------------
    /// Client built + broadcast a proposal.
    void on_submit(std::uint64_t client, TimePoint at);
    /// Client reached a terminal state for one tx (commit notice, abort
    /// notice, or client-side failure) — this is "service" for the
    /// starvation watchdog and the unfairness alarm.
    void on_client_terminal(std::uint64_t client, TimePoint at);
    /// Broker appended the tx to priority topic `level` (resubmissions of
    /// the same tx id are ignored for ordering bookkeeping; charge() their
    /// bandwidth separately — the wire cost is real every time).
    void on_enqueue(PriorityLevel level, std::uint64_t tx, TimePoint at);
    /// Block generator consumed the tx from `level` (crash-replay safe:
    /// duplicate tx ids are ignored).
    void on_dequeue(PriorityLevel level, std::uint64_t tx, TimePoint at);
    /// A peer committed/aborted the tx at `block` — feeds the
    /// priority-inversion detector.  Every peer reports; the first sighting
    /// of each tx id is canonical (all peers commit identical blocks).
    void on_commit_order(std::uint64_t block, std::uint64_t tx,
                         PriorityLevel level, TimePoint at);

    /// Close all windows up to `now` (plus a final partial window if it saw
    /// activity) and freeze the report.  Idempotent.
    void finalize(TimePoint now);

    [[nodiscard]] const AuditReport& report() const { return report_; }

    // -- live counters (gauge hooks; valid before finalize) ------------------
    [[nodiscard]] std::uint64_t priority_inversions() const {
        return fifo_violations_ + block_order_violations_;
    }
    [[nodiscard]] std::uint64_t starvation_incidents() const {
        return starvation_incidents_;
    }
    [[nodiscard]] std::uint64_t alarm_trips() const { return alarm_trips_; }
    [[nodiscard]] std::uint64_t windows_closed() const { return windows_closed_; }

private:
    struct ClientState {
        std::uint64_t submits = 0;
        std::uint64_t terminals = 0;
        std::uint64_t window_submits = 0;
        std::uint64_t window_terminals = 0;
        TimePoint last_service;  ///< init = first submit; reset on terminal
        bool starved = false;
        std::uint64_t incidents = 0;
    };
    struct ResourceState {
        double total = 0.0;
        std::map<std::uint64_t, double> by_client;
        std::map<std::string, double> by_chaincode;
        std::map<std::uint64_t, double> window_by_client;
        double jain_window_min = 1.0;
        std::uint64_t windows_evaluated = 0;
    };
    struct ArrivalInfo {
        PriorityLevel level = 0;
        std::uint64_t seq = 0;  ///< 1-based FIFO position within the level
    };

    void advance_to(TimePoint at);
    void close_window(TimePoint at);
    /// The un-prioritized (FIFO) pipeline carries the kUnassignedPriority
    /// sentinel; account it as the single level 0 (never index by the
    /// sentinel — ensure_level would try to allocate 2^32 slots).
    [[nodiscard]] static PriorityLevel normalize_level(PriorityLevel level) {
        return level == kUnassignedPriority ? 0 : level;
    }
    void ensure_level(PriorityLevel level);
    [[nodiscard]] double entitlement_of(std::uint64_t client) const;

    AuditConfig cfg_;
    TraceSink* trace_ = nullptr;

    // Window machinery.
    TimePoint window_end_;
    std::uint64_t windows_closed_ = 0;
    bool window_activity_ = false;
    bool finalized_ = false;

    // Meters + per-client service accounting (ordered: serialized).
    std::array<ResourceState, kResourceCount> resources_;
    std::map<std::uint64_t, ClientState> clients_;

    // Ordering bookkeeping (per level, index = PriorityLevel).
    std::vector<std::uint64_t> next_arrival_seq_;
    std::vector<std::uint64_t> last_committed_seq_;  ///< seq+1; 0 = none yet
    std::vector<std::uint64_t> ordered_per_level_;
    std::vector<double> max_service_lag_;
    std::unordered_map<std::uint64_t, ArrivalInfo> arrivals_;
    std::unordered_set<std::uint64_t> dequeued_;
    std::unordered_set<std::uint64_t> committed_;

    // Priority-inversion detector.
    std::uint64_t fifo_violations_ = 0;
    std::uint64_t block_order_violations_ = 0;
    std::uint64_t commit_block_ = kNoBlock;  ///< block of the last new commit
    PriorityLevel commit_block_level_ = 0;   ///< last level seen in that block

    // Starvation watchdog.
    std::uint64_t starvation_incidents_ = 0;

    // Unfairness alarm.
    std::uint32_t alarm_streak_ = 0;
    std::uint64_t alarm_trips_ = 0;
    std::uint64_t alarm_windows_breached_ = 0;
    std::uint64_t alarm_windows_evaluated_ = 0;
    double alarm_jain_min_ = 1.0;

    // Shadow ideal scheduler (levels with weight > 0 only).
    std::unique_ptr<wfq::WfqScheduler<std::uint64_t>> shadow_;
    std::vector<int> shadow_flow_of_level_;  ///< -1 = excluded

    AuditReport report_;
};

}  // namespace fl::obs::audit
