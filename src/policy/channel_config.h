// Channel configuration (paper §3/§4): the per-channel parameters fixed at
// channel-creation time — number of priority levels, the block formation
// policy, the priority consolidation policy, the endorsement policy, and the
// block-cutting parameters.  `priority_enabled = false` configures the
// vanilla-Fabric baseline (single FIFO queue, no consolidation, block-order
// validation) that every figure normalizes against.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.h"
#include "common/types.h"
#include "policy/block_formation_policy.h"
#include "policy/endorsement_policy.h"

namespace fl::policy {

struct ChannelConfig {
    ChannelId id{1};

    /// Number of priority levels N (ignored when !priority_enabled).
    std::uint32_t priority_levels = 3;

    /// False = vanilla Fabric: one FIFO queue, FIFO blocks, no priorities.
    bool priority_enabled = true;

    /// TR ratios for the multi-queue block generator.
    BlockFormationPolicy block_policy{std::vector<std::uint32_t>{2, 3, 1}};

    /// Spec for make_consolidation_policy(); evaluated by OSNs and re-checked
    /// by committers.
    std::string consolidation_spec = "kofn:2";

    EndorsementPolicy endorsement_policy = EndorsementPolicy::k_of_n_orgs(2, 4);

    /// Block cutting: maximum transactions per block (BS) and batch timeout.
    std::uint32_t block_size = 500;
    Duration block_timeout = Duration::seconds(1);

    /// Kafka topic name for priority level `level` on this channel.
    [[nodiscard]] std::string topic_for_level(PriorityLevel level) const {
        return "ch" + std::to_string(id.value()) + "-p" + std::to_string(level);
    }

    /// Effective level count: 1 when priorities are disabled.
    [[nodiscard]] std::uint32_t effective_levels() const {
        return priority_enabled ? priority_levels : 1;
    }
};

}  // namespace fl::policy
