#include "policy/endorsement_policy.h"

#include <algorithm>
#include <stdexcept>

namespace fl::policy {

bool EndorsementPolicy::satisfied_by(const std::set<OrgId>& orgs) const {
    return eval(*root_, orgs);
}

bool EndorsementPolicy::eval(const Node& node, const std::set<OrgId>& orgs) {
    switch (node.kind) {
    case Kind::kOrg:
        return orgs.contains(node.org);
    case Kind::kOutOf: {
        std::size_t satisfied = 0;
        for (const NodePtr& child : node.children) {
            if (eval(*child, orgs)) {
                if (++satisfied >= node.k) return true;
            }
        }
        return satisfied >= node.k;  // covers k == 0
    }
    }
    return false;
}

std::size_t EndorsementPolicy::min_orgs_required() const {
    return min_cost(*root_);
}

std::size_t EndorsementPolicy::min_cost(const Node& node) {
    switch (node.kind) {
    case Kind::kOrg:
        return 1;
    case Kind::kOutOf: {
        // Upper bound on the true minimum (children may share orgs); exact
        // for the disjoint-org policies used in practice.
        std::vector<std::size_t> costs;
        costs.reserve(node.children.size());
        for (const NodePtr& child : node.children) {
            costs.push_back(min_cost(*child));
        }
        std::sort(costs.begin(), costs.end());
        std::size_t total = 0;
        for (std::size_t i = 0; i < node.k && i < costs.size(); ++i) {
            total += costs[i];
        }
        return total;
    }
    }
    return 0;
}

void EndorsementPolicy::print(const Node& node, std::string& out) {
    switch (node.kind) {
    case Kind::kOrg:
        out += "Org(" + std::to_string(node.org.value()) + ")";
        return;
    case Kind::kOutOf:
        out += "OutOf(" + std::to_string(node.k);
        for (const NodePtr& child : node.children) {
            out += ", ";
            print(*child, out);
        }
        out += ")";
        return;
    }
}

std::string EndorsementPolicy::to_string() const {
    std::string out;
    print(*root_, out);
    return out;
}

EndorsementPolicy EndorsementPolicy::org(OrgId o) {
    auto node = std::make_shared<Node>();
    node->kind = Kind::kOrg;
    node->org = o;
    return EndorsementPolicy(std::move(node));
}

EndorsementPolicy EndorsementPolicy::out_of(std::size_t k,
                                            std::vector<EndorsementPolicy> children) {
    if (children.empty()) {
        throw std::invalid_argument("EndorsementPolicy::out_of: no children");
    }
    if (k > children.size()) {
        throw std::invalid_argument("EndorsementPolicy::out_of: k exceeds children");
    }
    auto node = std::make_shared<Node>();
    node->kind = Kind::kOutOf;
    node->k = k;
    node->children.reserve(children.size());
    for (EndorsementPolicy& child : children) {
        node->children.push_back(std::move(child.root_));
    }
    return EndorsementPolicy(std::move(node));
}

EndorsementPolicy EndorsementPolicy::all_of(std::vector<EndorsementPolicy> children) {
    const std::size_t k = children.size();
    return out_of(k, std::move(children));
}

EndorsementPolicy EndorsementPolicy::any_of(std::vector<EndorsementPolicy> children) {
    return out_of(1, std::move(children));
}

EndorsementPolicy EndorsementPolicy::k_of_n_orgs(std::size_t k, std::size_t n) {
    if (n == 0) throw std::invalid_argument("k_of_n_orgs: n must be >= 1");
    std::vector<EndorsementPolicy> children;
    children.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        children.push_back(org(OrgId{i}));
    }
    return out_of(k, std::move(children));
}

}  // namespace fl::policy
