// Endorsement policies: boolean expressions over organization principals,
// mirroring Fabric's signature policies (AND / OR / k-out-of over orgs).
//
// A transaction satisfies the policy when the set of organizations whose
// endorsements carry valid signatures satisfies the expression.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"

namespace fl::policy {

class EndorsementPolicy {
public:
    /// True iff the endorsing `orgs` satisfy the policy.
    [[nodiscard]] bool satisfied_by(const std::set<OrgId>& orgs) const;

    /// Smallest number of distinct orgs that can satisfy the policy —
    /// clients use it to pick how many endorsers to contact.
    [[nodiscard]] std::size_t min_orgs_required() const;

    /// Human-readable form, e.g. "OutOf(2, Org(0), Org(1), Org(2))".
    [[nodiscard]] std::string to_string() const;

    // -- builders ----------------------------------------------------------
    [[nodiscard]] static EndorsementPolicy org(OrgId o);
    [[nodiscard]] static EndorsementPolicy all_of(std::vector<EndorsementPolicy> children);
    [[nodiscard]] static EndorsementPolicy any_of(std::vector<EndorsementPolicy> children);
    [[nodiscard]] static EndorsementPolicy out_of(std::size_t k,
                                                  std::vector<EndorsementPolicy> children);

    /// Convenience: k distinct signatures out of orgs {0..n-1}.
    [[nodiscard]] static EndorsementPolicy k_of_n_orgs(std::size_t k, std::size_t n);

private:
    enum class Kind { kOrg, kOutOf };

    struct Node;
    using NodePtr = std::shared_ptr<const Node>;
    struct Node {
        Kind kind = Kind::kOrg;
        OrgId org;
        std::size_t k = 0;  // for kOutOf: required child count
        std::vector<NodePtr> children;
    };

    explicit EndorsementPolicy(NodePtr root) : root_(std::move(root)) {}

    static bool eval(const Node& node, const std::set<OrgId>& orgs);
    static std::size_t min_cost(const Node& node);
    static void print(const Node& node, std::string& out);

    NodePtr root_;
};

}  // namespace fl::policy
