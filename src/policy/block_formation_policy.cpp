#include "policy/block_formation_policy.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fl::policy {

BlockFormationPolicy::BlockFormationPolicy(std::vector<std::uint32_t> weights)
    : weights_(std::move(weights)) {
    if (weights_.empty()) {
        throw std::invalid_argument("BlockFormationPolicy: no levels");
    }
    const std::uint64_t total =
        std::accumulate(weights_.begin(), weights_.end(), std::uint64_t{0});
    if (total == 0) {
        throw std::invalid_argument("BlockFormationPolicy: all weights zero");
    }
}

BlockFormationPolicy BlockFormationPolicy::parse(const std::string& spec) {
    std::vector<std::uint32_t> weights;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t colon = spec.find(':', pos);
        const std::string token =
            spec.substr(pos, colon == std::string::npos ? std::string::npos : colon - pos);
        if (token.empty()) {
            throw std::invalid_argument("BlockFormationPolicy::parse: empty component in '" +
                                        spec + "'");
        }
        weights.push_back(static_cast<std::uint32_t>(std::stoul(token)));
        if (colon == std::string::npos) break;
        pos = colon + 1;
    }
    return BlockFormationPolicy(std::move(weights));
}

std::vector<std::uint32_t> BlockFormationPolicy::quotas(std::uint32_t block_size) const {
    const std::uint64_t total =
        std::accumulate(weights_.begin(), weights_.end(), std::uint64_t{0});
    std::vector<std::uint32_t> out(weights_.size(), 0);

    // Largest-remainder apportionment over the non-zero weights.
    std::vector<std::pair<double, std::size_t>> remainders;  // (-remainder, level)
    std::uint32_t assigned = 0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        if (weights_[i] == 0) continue;
        const double exact = static_cast<double>(block_size) *
                             static_cast<double>(weights_[i]) / static_cast<double>(total);
        out[i] = static_cast<std::uint32_t>(exact);
        assigned += out[i];
        remainders.emplace_back(-(exact - static_cast<double>(out[i])), i);
    }
    // Ties in remainder go to the higher-priority (smaller index) level.
    std::sort(remainders.begin(), remainders.end());
    std::uint32_t leftover = block_size - assigned;
    for (std::size_t j = 0; leftover > 0; j = (j + 1) % remainders.size()) {
        ++out[remainders[j].second];
        --leftover;
    }
    return out;
}

std::vector<double> BlockFormationPolicy::fractions() const {
    const std::uint64_t total =
        std::accumulate(weights_.begin(), weights_.end(), std::uint64_t{0});
    std::vector<double> out;
    out.reserve(weights_.size());
    for (std::uint32_t w : weights_) {
        out.push_back(static_cast<double>(w) / static_cast<double>(total));
    }
    return out;
}

std::string BlockFormationPolicy::to_string() const {
    std::string s;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        if (i > 0) s += ":";
        s += std::to_string(weights_[i]);
    }
    return s;
}

}  // namespace fl::policy
