// Block formation policy (paper §3.3): the ratio TR in which transactions of
// each priority level are included in a block.  Part of the channel
// configuration.
//
// A weight of 0 marks a *best-effort* level: it receives no reserved quota
// and is only served from surplus transferred off levels that ran dry
// (paper's "<100:0:0>" example).  Non-zero weights are normalized so the
// reserved quotas sum exactly to the block size (the paper's assumption
// sum_i TR[i] = BS).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace fl::policy {

class BlockFormationPolicy {
public:
    /// `weights[i]` is the relative share of priority level i (0 = highest).
    /// At least one weight must be non-zero.
    explicit BlockFormationPolicy(std::vector<std::uint32_t> weights);

    /// Parses "2:3:1" style specs.
    [[nodiscard]] static BlockFormationPolicy parse(const std::string& spec);

    [[nodiscard]] std::uint32_t levels() const {
        return static_cast<std::uint32_t>(weights_.size());
    }
    [[nodiscard]] const std::vector<std::uint32_t>& weights() const { return weights_; }

    /// Per-level transaction quotas summing exactly to `block_size`.
    /// Zero-weight (best-effort) levels receive quota 0.  Rounding remainders
    /// go to the highest-priority non-zero levels first.
    [[nodiscard]] std::vector<std::uint32_t> quotas(std::uint32_t block_size) const;

    /// Weight fractions (0 for best-effort levels).
    [[nodiscard]] std::vector<double> fractions() const;

    [[nodiscard]] std::string to_string() const;

private:
    std::vector<std::uint32_t> weights_;
};

}  // namespace fl::policy
