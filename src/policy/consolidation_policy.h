// Priority consolidation policies (paper §3.2).
//
// Endorsers may assign different priorities to the same transaction; the
// ordering service consolidates them into a single value under a policy
// fixed at chaincode deployment.  The paper names two families, both
// implemented here plus order-statistic variants:
//   * k-of-n agreement: at least k endorsers must assign the *same*
//     priority, otherwise the transaction is invalid;
//   * aggregation: average the values and round to the nearest level.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "common/types.h"

namespace fl::policy {

class ConsolidationPolicy {
public:
    virtual ~ConsolidationPolicy() = default;

    /// Consolidates endorser-assigned priorities into one value, or nullopt
    /// when the policy deems the transaction invalid (e.g. insufficient
    /// agreement).  `levels` is the number of configured priority levels;
    /// results are clamped to [0, levels).
    [[nodiscard]] virtual std::optional<PriorityLevel> consolidate(
        std::span<const PriorityLevel> votes, std::uint32_t levels) const = 0;

    [[nodiscard]] virtual std::string name() const = 0;
};

/// At least `k` endorsers must agree on the same priority value; the agreed
/// value wins (the most-agreed value if several reach k — ties resolve to
/// the higher priority, i.e. the numerically smaller level).
class KOfNMatchPolicy final : public ConsolidationPolicy {
public:
    explicit KOfNMatchPolicy(std::size_t k);

    [[nodiscard]] std::optional<PriorityLevel> consolidate(
        std::span<const PriorityLevel> votes, std::uint32_t levels) const override;
    [[nodiscard]] std::string name() const override;

private:
    std::size_t k_;
};

/// Mean of the votes rounded to the nearest integer level.
class AveragePolicy final : public ConsolidationPolicy {
public:
    [[nodiscard]] std::optional<PriorityLevel> consolidate(
        std::span<const PriorityLevel> votes, std::uint32_t levels) const override;
    [[nodiscard]] std::string name() const override { return "average"; }
};

/// Median vote (lower median on even counts).
class MedianPolicy final : public ConsolidationPolicy {
public:
    [[nodiscard]] std::optional<PriorityLevel> consolidate(
        std::span<const PriorityLevel> votes, std::uint32_t levels) const override;
    [[nodiscard]] std::string name() const override { return "median"; }
};

/// Most favourable vote wins (numerically smallest level).
class BestPolicy final : public ConsolidationPolicy {
public:
    [[nodiscard]] std::optional<PriorityLevel> consolidate(
        std::span<const PriorityLevel> votes, std::uint32_t levels) const override;
    [[nodiscard]] std::string name() const override { return "best"; }
};

/// Least favourable vote wins (numerically largest level) — conservative.
class WorstPolicy final : public ConsolidationPolicy {
public:
    [[nodiscard]] std::optional<PriorityLevel> consolidate(
        std::span<const PriorityLevel> votes, std::uint32_t levels) const override;
    [[nodiscard]] std::string name() const override { return "worst"; }
};

/// Factory from a spec string: "kofn:2", "average", "median", "best",
/// "worst".  Throws std::invalid_argument on unknown specs.
[[nodiscard]] std::unique_ptr<ConsolidationPolicy> make_consolidation_policy(
    const std::string& spec);

}  // namespace fl::policy
