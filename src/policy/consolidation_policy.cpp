#include "policy/consolidation_policy.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

namespace fl::policy {

namespace {

PriorityLevel clamp_level(std::uint64_t v, std::uint32_t levels) {
    return static_cast<PriorityLevel>(std::min<std::uint64_t>(v, levels - 1));
}

}  // namespace

KOfNMatchPolicy::KOfNMatchPolicy(std::size_t k) : k_(k) {
    if (k == 0) throw std::invalid_argument("KOfNMatchPolicy: k must be >= 1");
}

std::optional<PriorityLevel> KOfNMatchPolicy::consolidate(
    std::span<const PriorityLevel> votes, std::uint32_t levels) const {
    if (votes.empty()) return std::nullopt;
    std::map<PriorityLevel, std::size_t> counts;  // ordered: smaller level first
    for (PriorityLevel v : votes) {
        ++counts[v];
    }
    std::optional<PriorityLevel> winner;
    std::size_t best_count = 0;
    for (const auto& [level, count] : counts) {
        // Strict > keeps the first (highest-priority) level on ties.
        if (count >= k_ && count > best_count) {
            winner = level;
            best_count = count;
        }
    }
    if (!winner) return std::nullopt;
    return clamp_level(*winner, levels);
}

std::string KOfNMatchPolicy::name() const {
    return "kofn:" + std::to_string(k_);
}

std::optional<PriorityLevel> AveragePolicy::consolidate(
    std::span<const PriorityLevel> votes, std::uint32_t levels) const {
    if (votes.empty()) return std::nullopt;
    double sum = 0.0;
    for (PriorityLevel v : votes) sum += v;
    const double avg = sum / static_cast<double>(votes.size());
    return clamp_level(static_cast<std::uint64_t>(std::llround(avg)), levels);
}

std::optional<PriorityLevel> MedianPolicy::consolidate(
    std::span<const PriorityLevel> votes, std::uint32_t levels) const {
    if (votes.empty()) return std::nullopt;
    std::vector<PriorityLevel> sorted(votes.begin(), votes.end());
    std::sort(sorted.begin(), sorted.end());
    return clamp_level(sorted[(sorted.size() - 1) / 2], levels);
}

std::optional<PriorityLevel> BestPolicy::consolidate(
    std::span<const PriorityLevel> votes, std::uint32_t levels) const {
    if (votes.empty()) return std::nullopt;
    return clamp_level(*std::min_element(votes.begin(), votes.end()), levels);
}

std::optional<PriorityLevel> WorstPolicy::consolidate(
    std::span<const PriorityLevel> votes, std::uint32_t levels) const {
    if (votes.empty()) return std::nullopt;
    return clamp_level(*std::max_element(votes.begin(), votes.end()), levels);
}

std::unique_ptr<ConsolidationPolicy> make_consolidation_policy(const std::string& spec) {
    if (spec.rfind("kofn:", 0) == 0) {
        const std::size_t k = std::stoul(spec.substr(5));
        return std::make_unique<KOfNMatchPolicy>(k);
    }
    if (spec == "average") return std::make_unique<AveragePolicy>();
    if (spec == "median") return std::make_unique<MedianPolicy>();
    if (spec == "best") return std::make_unique<BestPolicy>();
    if (spec == "worst") return std::make_unique<WorstPolicy>();
    throw std::invalid_argument("make_consolidation_policy: unknown spec " + spec);
}

}  // namespace fl::policy
