#include "crypto/hmac.h"

#include <array>

namespace fl::crypto {

Digest hmac_sha256(BytesView key, BytesView message) {
    constexpr std::size_t kBlockSize = 64;

    std::array<std::uint8_t, kBlockSize> key_block{};
    if (key.size() > kBlockSize) {
        const Digest hashed = sha256(key);
        std::copy(hashed.begin(), hashed.end(), key_block.begin());
    } else {
        std::copy(key.begin(), key.end(), key_block.begin());
    }

    std::array<std::uint8_t, kBlockSize> ipad;
    std::array<std::uint8_t, kBlockSize> opad;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
        opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
    }

    Sha256 inner;
    inner.update(BytesView(ipad.data(), ipad.size()));
    inner.update(message);
    const Digest inner_digest = inner.finish();

    Sha256 outer;
    outer.update(BytesView(opad.data(), opad.size()));
    outer.update(BytesView(inner_digest.data(), inner_digest.size()));
    return outer.finish();
}

Digest hmac_sha256(std::string_view key, std::string_view message) {
    return hmac_sha256(
        BytesView(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
        BytesView(reinterpret_cast<const std::uint8_t*>(message.data()), message.size()));
}

}  // namespace fl::crypto
