#include "crypto/signature.h"

#include <stdexcept>

namespace fl::crypto {

Bytes KeyStore::derive_secret(const std::string& name) const {
    Bytes seed_bytes;
    append_u64(seed_bytes, seed_);
    append(seed_bytes, name);
    const Digest d = sha256(BytesView(seed_bytes.data(), seed_bytes.size()));
    return Bytes(d.begin(), d.end());
}

void KeyStore::register_identity(const Identity& identity) {
    if (identity.name.empty()) {
        throw std::invalid_argument("KeyStore: empty identity name");
    }
    secrets_.emplace(identity.name, derive_secret(identity.name));
    orgs_.emplace(identity.name, identity.org);
}

bool KeyStore::has_identity(const std::string& name) const {
    return secrets_.contains(name);
}

std::optional<OrgId> KeyStore::org_of(const std::string& name) const {
    const auto it = orgs_.find(name);
    if (it == orgs_.end()) return std::nullopt;
    return it->second;
}

Signature KeyStore::sign(const std::string& signer, BytesView message) const {
    const auto it = secrets_.find(signer);
    if (it == secrets_.end()) {
        throw std::invalid_argument("KeyStore::sign: unknown identity " + signer);
    }
    return Signature{signer,
                     hmac_sha256(BytesView(it->second.data(), it->second.size()), message)};
}

bool KeyStore::verify(const Signature& sig, BytesView message) const {
    const auto it = secrets_.find(sig.signer);
    if (it == secrets_.end()) return false;
    return hmac_sha256(BytesView(it->second.data(), it->second.size()), message) == sig.mac;
}

}  // namespace fl::crypto
