// Binary Merkle tree over transaction digests.  Blocks carry the Merkle root
// of their transaction list as the data hash, as Fabric's block header does
// (Fabric hashes the serialized data; a Merkle root is the standard
// equivalent that additionally supports inclusion proofs).
#pragma once

#include <optional>
#include <vector>

#include "crypto/sha256.h"

namespace fl::crypto {

/// One step of an inclusion proof: sibling digest + side flag.
struct ProofStep {
    Digest sibling;
    bool sibling_is_left = false;
};

using MerkleProof = std::vector<ProofStep>;

/// Root of a list of leaf digests.  Odd nodes are promoted (Bitcoin-style
/// duplication is deliberately avoided to keep proofs unambiguous).
/// An empty list hashes to sha256("") so the root is always defined.
[[nodiscard]] Digest merkle_root(const std::vector<Digest>& leaves);

/// Inclusion proof for leaf `index`; std::nullopt if index out of range.
[[nodiscard]] std::optional<MerkleProof> merkle_proof(
    const std::vector<Digest>& leaves, std::size_t index);

/// Verifies that `leaf` at the proof's position hashes up to `root`.
[[nodiscard]] bool verify_proof(const Digest& leaf, const MerkleProof& proof,
                                const Digest& root);

}  // namespace fl::crypto
