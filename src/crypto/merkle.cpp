#include "crypto/merkle.h"

namespace fl::crypto {

namespace {

Digest hash_pair(const Digest& left, const Digest& right) {
    Sha256 ctx;
    ctx.update(BytesView(left.data(), left.size()));
    ctx.update(BytesView(right.data(), right.size()));
    return ctx.finish();
}

}  // namespace

Digest merkle_root(const std::vector<Digest>& leaves) {
    if (leaves.empty()) {
        return sha256(std::string_view{});
    }
    std::vector<Digest> level = leaves;
    while (level.size() > 1) {
        std::vector<Digest> next;
        next.reserve((level.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(hash_pair(level[i], level[i + 1]));
        }
        if (level.size() % 2 == 1) {
            next.push_back(level.back());  // promote odd node
        }
        level = std::move(next);
    }
    return level.front();
}

std::optional<MerkleProof> merkle_proof(const std::vector<Digest>& leaves,
                                        std::size_t index) {
    if (index >= leaves.size()) return std::nullopt;
    MerkleProof proof;
    std::vector<Digest> level = leaves;
    std::size_t pos = index;
    while (level.size() > 1) {
        const bool has_sibling = (pos % 2 == 0) ? (pos + 1 < level.size()) : true;
        if (has_sibling) {
            ProofStep step;
            if (pos % 2 == 0) {
                step.sibling = level[pos + 1];
                step.sibling_is_left = false;
            } else {
                step.sibling = level[pos - 1];
                step.sibling_is_left = true;
            }
            proof.push_back(step);
        }
        std::vector<Digest> next;
        next.reserve((level.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(hash_pair(level[i], level[i + 1]));
        }
        if (level.size() % 2 == 1) {
            next.push_back(level.back());
        }
        pos /= 2;
        level = std::move(next);
    }
    return proof;
}

bool verify_proof(const Digest& leaf, const MerkleProof& proof, const Digest& root) {
    Digest acc = leaf;
    for (const ProofStep& step : proof) {
        acc = step.sibling_is_left ? hash_pair(step.sibling, acc)
                                   : hash_pair(acc, step.sibling);
    }
    return acc == root;
}

}  // namespace fl::crypto
