// Simulated signature scheme and membership service (MSP stand-in).
//
// Substitution note (see DESIGN.md §2): Fabric uses X.509/ECDSA via its MSP.
// The evaluation only needs signatures that (a) bind a signer identity to a
// message, (b) are verifiable by other nodes, and (c) cost simulated time.
// `SimSig` is HMAC-SHA-256 under a per-identity secret held in a KeyStore
// that plays the role of the PKI: within the simulation a signature cannot
// be forged without the identity's secret, which honest code never leaks.
// The *time* cost of signing/verifying is charged separately by the
// simulator's CPU model, so using HMAC instead of ECDSA does not perturb any
// measured result.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/types.h"
#include "crypto/hmac.h"

namespace fl::crypto {

/// A network identity: "org3.peer1", "org0.client2", "osn0", ...
struct Identity {
    std::string name;
    OrgId org;

    friend bool operator==(const Identity&, const Identity&) = default;
};

/// Signature value plus the claimed signer.
struct Signature {
    std::string signer;
    Digest mac{};

    friend bool operator==(const Signature&, const Signature&) = default;
};

/// Registry of identity secrets — the simulation's PKI root of trust.
/// One instance is shared by all nodes of a network; only the signing path
/// reads the secret for its own identity, and the verifying path consults
/// the store the way a real verifier would consult a certificate chain.
class KeyStore {
public:
    /// Registers an identity, generating a deterministic per-name secret
    /// derived from the store seed.  Re-registering is idempotent.
    void register_identity(const Identity& identity);

    /// Sets the seed that derives identity secrets (call before registering).
    void set_seed(std::uint64_t seed) { seed_ = seed; }

    [[nodiscard]] bool has_identity(const std::string& name) const;
    [[nodiscard]] std::optional<OrgId> org_of(const std::string& name) const;

    [[nodiscard]] Signature sign(const std::string& signer, BytesView message) const;
    [[nodiscard]] bool verify(const Signature& sig, BytesView message) const;

    [[nodiscard]] std::size_t size() const { return secrets_.size(); }

private:
    [[nodiscard]] Bytes derive_secret(const std::string& name) const;

    std::uint64_t seed_ = 0x5EC0DE5EC0DE5EC0ull;
    std::unordered_map<std::string, Bytes> secrets_;
    std::unordered_map<std::string, OrgId> orgs_;
};

}  // namespace fl::crypto
