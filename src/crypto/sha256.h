// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for transaction ids, block hashes and the ledger hash chain.  Verified
// against the NIST test vectors in tests/crypto/sha256_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace fl::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
public:
    Sha256();

    Sha256& update(BytesView data);
    Sha256& update(std::string_view s);

    /// Finalizes and returns the digest.  The context must not be reused
    /// after calling finish() without reset().
    [[nodiscard]] Digest finish();

    void reset();

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t buffer_len_ = 0;
    std::uint64_t total_len_ = 0;
};

/// One-shot convenience hashers.
[[nodiscard]] Digest sha256(BytesView data);
[[nodiscard]] Digest sha256(std::string_view s);

/// Hex string of a digest.
[[nodiscard]] std::string to_hex(const Digest& d);

/// Digest as a Bytes buffer.
[[nodiscard]] Bytes to_bytes(const Digest& d);

}  // namespace fl::crypto
