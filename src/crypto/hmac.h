// HMAC-SHA-256 (RFC 2104), verified against the RFC 4231 test vectors.
// Backs the simulated signature scheme.
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace fl::crypto {

[[nodiscard]] Digest hmac_sha256(BytesView key, BytesView message);
[[nodiscard]] Digest hmac_sha256(std::string_view key, std::string_view message);

}  // namespace fl::crypto
