#include "harness/channels.h"

#include <memory>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"
#include "obs/trace.h"

namespace fl::harness {

MultiChannelResult run_multi_channel(const MultiChannelSpec& spec,
                                     ThreadPool* pool) {
    if (!spec.make_workload) {
        throw std::invalid_argument("run_multi_channel: no workload factory");
    }
    core::MultiChannelConfig config = spec.config;
    config.base.seed = spec.seed;
    if (spec.audit) {
        // The audit accountant observes global order, so audited channels run
        // on the serial per-channel engine.  Sound by the partition-
        // equivalence contract: the engines are byte-identical.
        config.base.partition = {};
    }
    core::MultiChannelNetwork engine(std::move(config));
    const std::size_t n = engine.channel_count();

    MultiChannelResult result;
    result.channels.resize(n);  // stable slots — sinks capture references

    // Per-channel setup in run_once's exact order: tx sink, audit, workload
    // driver, instrumentation.  Attach-only steps schedule no events and draw
    // no rng, so each channel's byte stream matches a standalone run_once.
    std::vector<std::unique_ptr<obs::audit::AuditAccountant>> audits(n);
    std::vector<std::unique_ptr<obs::TraceSink>> traces(n);
    std::vector<std::unique_ptr<WorkloadDriver>> drivers;
    drivers.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        core::FabricNetwork& net = engine.channel(i);
        ChannelRunResult& ch = result.channels[i];
        ch.id = engine.channel_id(i);

        net.set_tx_sink(
            [&ch](const client::TxRecord& r) { ch.metrics.record(r); });

        if (spec.audit) {
            obs::audit::AuditConfig audit_cfg = *spec.audit;
            if (audit_cfg.level_weights.empty()) {
                const auto& channel = net.config().channel;
                audit_cfg.level_weights = channel.priority_enabled
                                              ? channel.block_policy.fractions()
                                              : std::vector<double>{1.0};
            }
            audits[i] =
                std::make_unique<obs::audit::AuditAccountant>(std::move(audit_cfg));
            net.set_audit(audits[i].get());
        }

        Workload workload = spec.make_workload(i);
        const std::uint64_t cseed = core::channel_seed(spec.seed, i);
        drivers.push_back(std::make_unique<WorkloadDriver>(
            net, std::move(workload), Rng(cseed ^ 0x574B4C44ull)));
        drivers.back()->start();

        if (spec.capture_trace) {
            traces[i] = std::make_unique<obs::TraceSink>();
            // Tag only real multi-channel runs: a 1-channel capture must stay
            // byte-identical to the single-network harness.
            if (n > 1) traces[i]->set_channel(ch.id.value());
            net.set_trace_sink(traces[i].get());
        }
        if (spec.instrument) spec.instrument(net, i);
    }

    result.events_executed = engine.run(pool);
    result.windows = engine.windows_executed();

    for (std::size_t i = 0; i < n; ++i) {
        core::FabricNetwork& net = engine.channel(i);
        ChannelRunResult& ch = result.channels[i];

        if (audits[i]) {
            // run_once finalizes at Simulator::now() after run(), which lands
            // on the last executed event; the windowed engine bumps now() to
            // the window boundary, so finalize at last_event_at() for parity.
            audits[i]->finalize(net.last_event_at());
            ch.audit = audits[i]->report();
        }

        ch.chain_fingerprint = net.peers().front()->chain().chain_fingerprint();
        ch.state_fingerprint = net.peers().front()->state().fingerprint();
        ch.blocks = net.peers().front()->chain().height();
        ch.txs_invalid = net.peers().front()->txs_invalid();
        ch.consistent = net.chains_identical() && net.states_identical() &&
                        net.osn_blocks_identical();

        if (spec.capture_metrics_json) {
            std::ostringstream os;
            core::write_metrics_json(os, ch.metrics,
                                     ch.audit ? &*ch.audit : nullptr);
            ch.metrics_json = os.str();
        }
        if (traces[i]) {
            std::ostringstream os;
            traces[i]->write_jsonl(os);
            ch.trace_jsonl = os.str();
        }
    }

    result.meter = engine.meter();
    return result;
}

}  // namespace fl::harness
