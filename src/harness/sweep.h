// Parallel experiment sweeps with deterministic seeding.
//
// The paper's evaluation is a grid of *independent* simulation runs — block
// policies × peer counts × send rates × fairness weights.  A sweep names
// each grid point (an ExperimentPoint wrapping an ExperimentSpec), and
// run_sweep fans the points across a common/thread_pool.h work-stealing pool.
//
// Determinism contract (regression-tested in tests/harness/sweep_test.cpp):
// the same SweepSpec with the same base_seed produces bit-identical results
// — including the serialized BENCH_*.json — at any --threads value, because
//   1. every point's seed is derived from (base_seed, seed_group) via the
//      SplitMix64 random-access derivation in common/rng.h, independent of
//      which worker runs it or when;
//   2. each point owns its Simulator, FabricNetwork and MetricsCollector and
//      writes only its own pre-sized results slot, so output order is the
//      point order, never the completion order;
//   3. nothing in a point reads wall-clock time — all latencies are
//      simulated time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace fl::harness {

/// One grid point of a sweep.
struct ExperimentPoint {
    /// Row label for tables and JSON (e.g. "rate=500/priority").
    std::string label;
    /// Named sweep coordinates, emitted into JSON (e.g. {"send_rate", 500}).
    std::vector<std::pair<std::string, double>> params;
    ExperimentSpec spec;  ///< spec.base_seed is overwritten by the derived seed
    /// Points sharing a seed_group receive the same derived seed — used to
    /// pair a treatment run with the baseline it is normalized against so
    /// both see identical arrival processes.  Default: the point's index.
    std::optional<std::uint64_t> seed_group;
};

struct SweepSpec {
    std::string name;  ///< bench name, e.g. "fig5_send_rate" (JSON header)
    std::vector<ExperimentPoint> points;
    std::uint64_t base_seed = 1000;
    /// Worker threads; 0 = std::thread::hardware_concurrency().
    unsigned threads = 0;
};

struct PointResult {
    std::size_t index = 0;
    std::string label;
    std::vector<std::pair<std::string, double>> params;
    std::uint64_t seed = 0;  ///< derived seed the point actually ran with
    AggregateResult result;
};

/// Seed for a point: the `group`-th output of the SplitMix64 stream seeded
/// with `base_seed` (see fl::derive_seed).
[[nodiscard]] std::uint64_t point_seed(std::uint64_t base_seed,
                                       std::uint64_t group);

/// Runs every point on a thread pool and returns results ordered like
/// spec.points.  Throws std::invalid_argument on an ill-formed spec; a
/// point's exception (if any) propagates after in-flight points finish.
/// Points configured with ValidationMode::kParallel and no explicit
/// validation_pool borrow the sweep's pool (nested fork-join); this changes
/// host wall-clock only, never results.
[[nodiscard]] std::vector<PointResult> run_sweep(const SweepSpec& spec);

/// Writes the whole sweep as JSON: header (name, base_seed, point count)
/// plus one entry per point with its params, derived seed, aggregate
/// metrics, probe counters and (when kept) per-run metrics dumps.  Bytes
/// depend only on (spec, results), never on --threads or wall-clock.
void write_sweep_json(std::ostream& os, const SweepSpec& spec,
                      const std::vector<PointResult>& results);

// ---------------------------------------------------------------------------
// Command-line front-end shared by the bench drivers.

struct SweepCli {
    unsigned threads = 0;            ///< --threads N (0 = hardware_concurrency)
    std::uint64_t base_seed = 0;     ///< --seed S
    std::string json_path;           ///< --json PATH
    bool json_enabled = true;        ///< --no-json clears it
    std::optional<unsigned> runs;          ///< --runs R (overrides env)
    std::optional<std::uint64_t> total_txs;  ///< --txs T (overrides env)
    std::string trace_path;          ///< --trace PATH (empty = no trace)
    std::string timeseries_path;     ///< --timeseries PATH (empty = none)
    std::size_t trace_point = 0;     ///< --trace-point N (which grid point)
    bool audit = false;              ///< --audit (fairness audit on every point)
    std::uint64_t audit_window_ms = 1000;  ///< --audit-window MS
    bool audit_window_seen = false;  ///< --audit-window appeared explicitly

    [[nodiscard]] unsigned runs_or(unsigned default_runs) const {
        return runs ? *runs : runs_from_env(default_runs);
    }
    [[nodiscard]] std::uint64_t txs_or(std::uint64_t default_total) const {
        return total_txs ? *total_txs : total_txs_from_env(default_total);
    }
    /// The audit configuration selected by --audit/--audit-window (window
    /// default 1000 ms), regardless of whether --audit was passed.
    [[nodiscard]] obs::audit::AuditConfig audit_config() const {
        obs::audit::AuditConfig cfg;
        cfg.window = Duration::millis(static_cast<std::int64_t>(audit_window_ms));
        return cfg;
    }
};

/// Applies cli's audit selection to every point: --audit attaches the
/// default audit config to points that have none; an explicit
/// --audit-window overrides the window of every audited point (including
/// benches that pre-configure their own audit).  No-op otherwise.
void apply_audit_cli(SweepSpec& spec, const SweepCli& cli);

/// Strict base-10 unsigned parser for CLI values: digits only — no sign
/// (so "-1" is rejected instead of wrapping), no whitespace, no trailing
/// garbage — and range-checked.  Returns nullopt on any defect.
[[nodiscard]] std::optional<std::uint64_t> parse_cli_u64(const char* raw);

/// A bench-specific unsigned CLI flag (e.g. scale_state's --accounts),
/// parsed by parse_sweep_cli with the same strict digits-only contract as
/// the shared flags: malformed/out-of-range values print a message plus
/// usage and exit 2.  `value` holds the default going in and the parsed
/// value coming out; `seen` reports whether the flag appeared at all.
struct BenchFlag {
    std::string name;   ///< including dashes, e.g. "--accounts"
    std::string help;   ///< one-line usage text
    std::uint64_t value = 0;
    bool positive = false;  ///< reject 0 ("must be >= 1")
    std::uint64_t max = UINT64_MAX;  ///< inclusive; reject above
    bool seen = false;
};

/// Parses --threads/--seed/--json/--no-json/--runs/--txs plus the
/// observability flags
/// --trace/--timeseries/--trace-point/--audit/--audit-window/--log-level
/// (--help prints usage and exits; an unknown --log-level name is rejected
/// at the CLI).  Malformed numbers and zero/negative --threads/--runs/--txs
/// print a clear message and exit with code 2.  `bench_name` sets the
/// default JSON path (BENCH_local_<name>.json) and `default_seed` the
/// default --seed.
[[nodiscard]] SweepCli parse_sweep_cli(int argc, char** argv,
                                       std::uint64_t default_seed,
                                       const std::string& bench_name);

/// Overload taking bench-specific flags; each matched flag's `value`/`seen`
/// is updated in place and its help line joins the --help text.
[[nodiscard]] SweepCli parse_sweep_cli(int argc, char** argv,
                                       std::uint64_t default_seed,
                                       const std::string& bench_name,
                                       const std::vector<BenchFlag*>& extra);

/// Writes the sweep JSON to cli.json_path unless --no-json; announces the
/// path on `status` (stdout in the benches).  Returns true when written.
bool emit_sweep_json(const SweepCli& cli, const SweepSpec& spec,
                     const std::vector<PointResult>& results,
                     std::ostream& status);

// ---------------------------------------------------------------------------
// Trace / time-series capture for bench drivers.

/// State for capturing one instrumented run out of a sweep: the trace sink
/// plus (when requested) the sampling recorder.  Must outlive run_sweep.
/// Only run 0 of the selected point is instrumented, so the capture sees a
/// single network and the bytes are independent of --threads (the sink is
/// only touched from the worker that owns that point, and run_sweep joins
/// all workers before the files are written).
struct TraceCapture {
    obs::TraceSink sink;
    std::unique_ptr<obs::TimeSeriesRecorder> recorder;
    /// Simulated-time sampling cadence for --timeseries.
    Duration cadence = Duration::millis(100);
};

/// Installs an instrument hook on the point selected by cli.trace_point when
/// --trace and/or --timeseries were given; no-op otherwise.  An out-of-range
/// --trace-point falls back to point 0 with a warning on `status`.
void arm_trace_capture(SweepSpec& spec, const SweepCli& cli,
                       TraceCapture& capture, std::ostream& status);

/// Writes the captured trace (Chrome trace-event JSON, or JSONL when the
/// path ends in ".jsonl") and/or the time-series JSONL after the sweep
/// completes.  Returns true if any file was written.
bool emit_trace_files(const SweepCli& cli, const TraceCapture& capture,
                      std::ostream& status);

}  // namespace fl::harness
