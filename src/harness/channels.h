// Multi-channel experiment runner: drives N channels of a
// core::MultiChannelNetwork to completion — serially or on the
// channel-sharded parallel engine — and captures every per-channel artifact
// the byte-determinism contract covers: the metrics JSON, the trace JSONL
// and the ledger fingerprints.
//
// Parity contract (tested in tests/core/multi_channel_test.cpp and gated in
// bench/scale_channels): the serial engine (pool == nullptr) and the
// parallel engine produce bit-identical artifacts for every channel, and a
// fault-free 1-channel run is bit-identical to harness::run_once on the
// same config+seed — same metrics JSON, same (untagged) trace bytes, same
// chain/state fingerprints.  That holds because this runner mirrors
// run_once's per-channel construction order exactly: network → tx sink →
// audit → WorkloadDriver(Rng(channel seed ^ 0x574B4C44)) → start →
// instrument/trace → drain → audit finalize at the last event time.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/multi_channel.h"
#include "harness/workload.h"
#include "obs/audit/audit.h"

namespace fl::harness {

struct MultiChannelSpec {
    core::MultiChannelConfig config;
    /// Builds the workload for channel `index` (fresh generator state per
    /// channel).  Required.
    std::function<Workload(std::size_t)> make_workload;
    /// Run seed; channel i runs with core::channel_seed(seed, i).
    std::uint64_t seed = 42;

    /// Captures the per-channel metrics JSON (core::write_metrics_json).
    bool capture_metrics_json = true;
    /// Captures the per-channel trace JSONL.  Sinks are channel-tagged only
    /// when the run has more than one channel, so a 1-channel capture stays
    /// byte-identical to the single-network harness.
    bool capture_trace = false;
    /// Attaches a per-channel fairness audit (level weights default from
    /// each channel's block policy, exactly like harness::run_once).
    std::optional<obs::audit::AuditConfig> audit;
    /// Observability hook per channel, invoked after that channel's workload
    /// is scheduled but before the simulation drains.
    std::function<void(core::FabricNetwork&, std::size_t)> instrument;
};

/// Everything observable about one channel of a multi-channel run.
struct ChannelRunResult {
    ChannelId id;
    core::MetricsCollector metrics;
    std::string metrics_json;  ///< when capture_metrics_json
    std::string trace_jsonl;   ///< when capture_trace
    std::uint64_t chain_fingerprint = 0;  ///< peer 0 block chain
    std::uint64_t state_fingerprint = 0;  ///< peer 0 world state
    std::uint64_t blocks = 0;
    std::uint64_t txs_invalid = 0;
    bool consistent = false;  ///< chains + states + OSN logs agree in-channel
    std::optional<obs::audit::AuditReport> audit;
};

struct MultiChannelResult {
    std::vector<ChannelRunResult> channels;
    core::CrossChannelMeter meter;
    std::uint64_t events_executed = 0;
    std::uint64_t windows = 0;
};

/// Runs every channel to completion.  `pool == nullptr` selects the serial
/// reference engine; otherwise the channel-sharded parallel engine.  The
/// returned artifacts are byte-identical either way (DESIGN.md §16).
[[nodiscard]] MultiChannelResult run_multi_channel(const MultiChannelSpec& spec,
                                                   ThreadPool* pool = nullptr);

}  // namespace fl::harness
