// Experiment runner: builds a fresh network per run (new seed), drives a
// workload to completion, collects metrics, and aggregates across runs —
// the paper's "each experiment 10 times, 15000 transactions per run, report
// the average".
//
// Each run owns its Simulator, FabricNetwork and MetricsCollector and shares
// no state with other runs, which is what lets `harness::run_sweep`
// (harness/sweep.h) execute independent experiment points on a thread pool
// without changing any result.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/fabric_network.h"
#include "core/metrics.h"
#include "harness/workload.h"
#include "obs/audit/audit.h"

namespace fl::harness {

struct ExperimentSpec {
    core::NetworkConfig config;
    /// Builds the workload for one run (fresh generator state per run).
    std::function<Workload()> make_workload;
    unsigned runs = 5;
    std::uint64_t base_seed = 1000;

    /// Optional per-completed-transaction probe, called from the tx sink with
    /// the drained network available; accumulate custom counters into `extra`
    /// (they aggregate across runs into AggregateResult::extra).
    std::function<void(const client::TxRecord&, core::FabricNetwork&,
                       std::map<std::string, double>&)>
        tx_probe;
    /// Optional post-run probe over the drained network (chain shape, OSN
    /// counters, ...); accumulates into the same `extra` map.
    std::function<void(core::FabricNetwork&, std::map<std::string, double>&)>
        run_probe;
    /// When true, run_experiment keeps a per-run JSON metrics dump (see
    /// core::write_metrics_json) in AggregateResult::run_metrics_json.
    bool keep_run_metrics = false;

    /// Observability hook, invoked once per run after the workload is
    /// scheduled but before the simulation drains — the point where a trace
    /// sink or a TimeSeriesRecorder can attach to the live network (the
    /// recorder needs pending events to arm its sampling timer against).
    /// The second argument is the run index (0-based).
    std::function<void(core::FabricNetwork&, unsigned)> instrument;

    /// When set, each run attaches a fresh AuditAccountant (obs/audit) with
    /// this configuration.  The level_weights field is derived automatically
    /// from the run's block formation policy when left empty.  The audit is
    /// purely observational — results with and without it are identical —
    /// and its report lands in RunResult::audit plus, with keep_run_metrics,
    /// as an "audit" block inside the per-run metrics JSON.
    std::optional<obs::audit::AuditConfig> audit;
};

/// Results of a single run.
struct RunResult {
    core::MetricsCollector metrics;
    bool chains_identical = false;
    bool states_identical = false;
    bool osn_blocks_identical = false;
    std::uint64_t blocks = 0;
    std::uint64_t txs_invalid = 0;
    std::uint64_t consolidation_failures = 0;
    std::vector<std::uint64_t> level_totals;  ///< per-level txs ordered (OSN 0)
    std::map<std::string, double> extra;      ///< probe-filled counters
    /// Finalized fairness-audit report (only when ExperimentSpec::audit).
    std::optional<obs::audit::AuditReport> audit;
};

/// Per-run means of the pipeline-phase latencies, aggregated across runs.
struct PhaseAggregate {
    RunAggregator endorsement;
    RunAggregator ordering;
    RunAggregator validation;
    RunAggregator notification;
};

/// Aggregates across runs.
struct AggregateResult {
    RunAggregator overall_latency;                           ///< seconds
    std::map<PriorityLevel, RunAggregator> latency_by_priority;
    std::map<std::uint64_t, RunAggregator> latency_by_client;  ///< key: client id
    std::map<PriorityLevel, PhaseAggregate> phases_by_priority;
    RunAggregator throughput_tps;
    RunAggregator blocks_per_run;
    std::uint64_t total_committed = 0;
    std::uint64_t total_invalid = 0;
    std::uint64_t total_client_failures = 0;
    std::uint64_t total_consolidation_failures = 0;
    bool all_consistent = true;
    /// Per-run means of the probe counters in RunResult::extra.
    std::map<std::string, RunAggregator> extra;
    /// Per-run metrics dumps (only when ExperimentSpec::keep_run_metrics).
    std::vector<std::string> run_metrics_json;
    /// Per-run audit reports (only when ExperimentSpec::audit).
    std::vector<obs::audit::AuditReport> audit_reports;

    [[nodiscard]] double priority_latency(PriorityLevel level) const {
        const auto it = latency_by_priority.find(level);
        return it == latency_by_priority.end() ? 0.0 : it->second.mean();
    }
    [[nodiscard]] double client_latency(std::uint64_t client) const {
        const auto it = latency_by_client.find(client);
        return it == latency_by_client.end() ? 0.0 : it->second.mean();
    }
    /// Mean of a probe counter across runs (0 when the key never appeared).
    [[nodiscard]] double extra_mean(const std::string& key) const;
    /// Sum of a probe counter across runs.
    [[nodiscard]] double extra_total(const std::string& key) const;
};

/// Executes one run with the given seed.  `run_index` is forwarded to
/// ExperimentSpec::instrument.  `pool` parallelizes partition groups when
/// the config requests a multi-group layout (core::PartitionConfig);
/// results are byte-identical at every pool size, including null.  Specs
/// with an audit run on the serial engine (the accountant observes global
/// order), which changes nothing by the same equivalence contract.
[[nodiscard]] RunResult run_once(const ExperimentSpec& spec, std::uint64_t seed,
                                 unsigned run_index = 0,
                                 ThreadPool* pool = nullptr);

/// Backward-compatible overload without probes.
[[nodiscard]] RunResult run_once(core::NetworkConfig config,
                                 const std::function<Workload()>& make_workload,
                                 std::uint64_t seed);

/// Executes spec.runs runs (seeds base_seed, base_seed+1, ...) and aggregates.
[[nodiscard]] AggregateResult run_experiment(const ExperimentSpec& spec);

/// Number of repetitions: the FAIRLEDGER_RUNS environment variable when set,
/// otherwise `default_runs` (the paper uses 10; benches default lower to
/// keep CI fast — see EXPERIMENTS.md).
[[nodiscard]] unsigned runs_from_env(unsigned default_runs);

/// Total transactions per run: FAIRLEDGER_TOTAL_TXS or `default_total`.
[[nodiscard]] std::uint64_t total_txs_from_env(std::uint64_t default_total);

}  // namespace fl::harness
