// Experiment runner: builds a fresh network per run (new seed), drives a
// workload to completion, collects metrics, and aggregates across runs —
// the paper's "each experiment 10 times, 15000 transactions per run, report
// the average".
#pragma once

#include <functional>
#include <map>

#include "core/fabric_network.h"
#include "core/metrics.h"
#include "harness/workload.h"

namespace fl::harness {

struct ExperimentSpec {
    core::NetworkConfig config;
    /// Builds the workload for one run (fresh generator state per run).
    std::function<Workload()> make_workload;
    unsigned runs = 5;
    std::uint64_t base_seed = 1000;
};

/// Results of a single run.
struct RunResult {
    core::MetricsCollector metrics;
    bool chains_identical = false;
    bool states_identical = false;
    bool osn_blocks_identical = false;
    std::uint64_t blocks = 0;
    std::uint64_t txs_invalid = 0;
    std::uint64_t consolidation_failures = 0;
    std::vector<std::uint64_t> level_totals;  ///< per-level txs ordered (OSN 0)
};

/// Aggregates across runs.
struct AggregateResult {
    RunAggregator overall_latency;                           ///< seconds
    std::map<PriorityLevel, RunAggregator> latency_by_priority;
    std::map<std::uint64_t, RunAggregator> latency_by_client;  ///< key: client id
    RunAggregator throughput_tps;
    std::uint64_t total_committed = 0;
    std::uint64_t total_invalid = 0;
    std::uint64_t total_client_failures = 0;
    bool all_consistent = true;

    [[nodiscard]] double priority_latency(PriorityLevel level) const {
        const auto it = latency_by_priority.find(level);
        return it == latency_by_priority.end() ? 0.0 : it->second.mean();
    }
    [[nodiscard]] double client_latency(std::uint64_t client) const {
        const auto it = latency_by_client.find(client);
        return it == latency_by_client.end() ? 0.0 : it->second.mean();
    }
};

/// Executes one run with the given seed.
[[nodiscard]] RunResult run_once(core::NetworkConfig config,
                                 const std::function<Workload()>& make_workload,
                                 std::uint64_t seed);

/// Executes spec.runs runs (seeds base_seed, base_seed+1, ...) and aggregates.
[[nodiscard]] AggregateResult run_experiment(const ExperimentSpec& spec);

/// Number of repetitions: the FAIRLEDGER_RUNS environment variable when set,
/// otherwise `default_runs` (the paper uses 10; benches default lower to
/// keep CI fast — see EXPERIMENTS.md).
[[nodiscard]] unsigned runs_from_env(unsigned default_runs);

/// Total transactions per run: FAIRLEDGER_TOTAL_TXS or `default_total`.
[[nodiscard]] std::uint64_t total_txs_from_env(std::uint64_t default_total);

}  // namespace fl::harness
